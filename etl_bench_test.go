package peoplesnet

// ETL benchmarks: ingest throughput (bulk load vs live follow vs
// steady-state append) and the indexed-vs-fullscan cost of the
// repeated §3/§4 queries the paper's analyses issue. The fullscan
// variants read raw blocks the way the seed analyses did; the indexed
// variants resolve through the etl store's posting lists and
// materialized aggregates. Same world-caching and scale knobs as
// bench_test.go.

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/core"
	"peoplesnet/internal/etl"
)

var (
	etlOnce      sync.Once
	etlBenchView *etl.Store
)

// etlStore indexes the cached bench world exactly once.
func etlStore(b *testing.B) (*World, *etl.Store) {
	w, _ := world(b)
	etlOnce.Do(func() { etlBenchView = etl.FromChain(w.Chain) })
	return w, etlBenchView
}

// --- ingest ---------------------------------------------------------------

func BenchmarkETLIngest_Bulk(b *testing.B) {
	w, _ := world(b)
	blocks := len(w.Chain.Blocks())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := etl.New(etl.Config{})
		if err := s.BulkLoad(w.Chain); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(blocks)*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
}

func BenchmarkETLIngest_Follow(b *testing.B) {
	w, _ := world(b)
	blocks := len(w.Chain.Blocks())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := etl.New(etl.Config{})
		f := s.FollowChain(w.Chain)
		// Close waits for the catch-up drain, so the whole history has
		// been ingested through the subscription path when it returns.
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		if s.Height() != w.Chain.Height() {
			b.Fatalf("follower stopped at %d, chain at %d", s.Height(), w.Chain.Height())
		}
	}
	b.ReportMetric(float64(blocks)*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkETLIngest_Append measures the steady-state per-block cost
// on an already-loaded store — the O(N)-for-N-new-blocks incremental
// path, including aggregate updates and periodic segment sealing.
func BenchmarkETLIngest_Append(b *testing.B) {
	w, _ := world(b)
	s := etl.New(etl.Config{})
	if err := s.BulkLoad(w.Chain); err != nil {
		b.Fatal(err)
	}
	tip := s.Height()
	txns := []chain.Txn{&chain.Payment{Payer: "bench-a", Payee: "bench-b", AmountBones: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := &chain.Block{Height: tip + 1 + int64(i), Txns: txns}
		if err := s.Append(blk); err != nil {
			b.Fatal(err)
		}
	}
}

// --- repeated queries: indexed vs fullscan --------------------------------

// Transaction mix (§3, Table 1): materialized aggregate vs full scan.
func BenchmarkETLQuery_TxnMix_Indexed(b *testing.B) {
	_, s := etlStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.TxnMix()) == 0 {
			b.Fatal("empty mix")
		}
	}
}

func BenchmarkETLQuery_TxnMix_Fullscan(b *testing.B) {
	w, _ := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(w.Chain.TxnMix()) == 0 {
			b.Fatal("empty mix")
		}
	}
}

// Resale series (§4.3.3, Fig 7): every transfer_hotspot txn, via the
// per-type posting lists vs a full scan.
func BenchmarkETLQuery_Transfers_Indexed(b *testing.B) {
	_, s := etlStore(b)
	f := etl.Filter{Types: []chain.TxnType{chain.TxnTransferHotspot}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		s.Scan(etl.All(), f, func(int64, chain.Txn) bool { n++; return true })
		if n == 0 {
			b.Fatal("no transfers")
		}
	}
}

func BenchmarkETLQuery_Transfers_Fullscan(b *testing.B) {
	w, _ := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		w.Chain.ScanType(chain.TxnTransferHotspot, func(int64, chain.Txn) bool { n++; return true })
		if n == 0 {
			b.Fatal("no transfers")
		}
	}
}

// Hotspot timeline (§4.1): one hotspot's assert/transfer history via
// its actor posting lists vs a full scan with a mention check.
func BenchmarkETLQuery_HotspotTimeline_Indexed(b *testing.B) {
	w, s := etlStore(b)
	f := etl.Filter{
		Types:  []chain.TxnType{chain.TxnAssertLocation, chain.TxnTransferHotspot},
		Actors: []string{w.World.Hotspots[0].Address},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		s.Scan(etl.All(), f, func(int64, chain.Txn) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty timeline")
		}
	}
}

func BenchmarkETLQuery_HotspotTimeline_Fullscan(b *testing.B) {
	w, _ := world(b)
	addr := w.World.Hotspots[0].Address
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		w.Chain.Scan(func(h int64, t chain.Txn) bool {
			switch v := t.(type) {
			case *chain.AssertLocation:
				if v.Gateway == addr {
					n++
				}
			case *chain.TransferHotspot:
				if v.Gateway == addr {
					n++
				}
			}
			return true
		})
		if n == 0 {
			b.Fatal("empty timeline")
		}
	}
}

// Adds per day (§4.2, Fig 5): materialized rollup vs recount.
func BenchmarkETLQuery_AddsPerDay_Indexed(b *testing.B) {
	_, s := etlStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.AddsPerDay()) == 0 {
			b.Fatal("no adds")
		}
	}
}

func BenchmarkETLQuery_AddsPerDay_Fullscan(b *testing.B) {
	w, _ := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adds := make(map[int64]int64)
		w.Chain.ScanType(chain.TxnAddGateway, func(h int64, _ chain.Txn) bool {
			adds[h/chain.BlocksPerDay]++
			return true
		})
		if len(adds) == 0 {
			b.Fatal("no adds")
		}
	}
}

// Wallet balance history (§4.3): core.BalanceHistory through the
// actor posting lists vs through raw chain scans. Rewards dominate a
// wallet's timeline, so this pair indexes reward entries fully
// (IndexRewardEntries — the memory-for-speed dial); with the lean
// default, actor scans still inspect every rewards txn and gain
// little here.
func BenchmarkETLQuery_BalanceHistory_Indexed(b *testing.B) {
	w, _ := world(b)
	s := etl.New(etl.Config{IndexRewardEntries: true})
	if err := s.BulkLoad(w.Chain); err != nil {
		b.Fatal(err)
	}
	d := &core.Dataset{Chain: s.View()}
	owner := w.World.Owners[0].Address
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.BalanceHistory(owner)
	}
}

func BenchmarkETLQuery_BalanceHistory_Fullscan(b *testing.B) {
	w, _ := world(b)
	d := &core.Dataset{Chain: w.Chain}
	owner := w.World.Owners[0].Address
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.BalanceHistory(owner)
	}
}

// Full-history visit: single-goroutine Scan vs the segment worker
// pool. Parallelism only pays off above the per-segment dispatch cost,
// which is what this pair quantifies.
func BenchmarkETLScan_Sequential(b *testing.B) {
	_, s := etlStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		s.Scan(etl.All(), etl.Filter{}, func(int64, chain.Txn) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty scan")
		}
	}
}

// --- cold start: durable reload vs re-index --------------------------------

// Cold start is the paper's "ETL replica restart" cost: how long until
// the analyses can query again after the process dies. The reindex
// path replays the chain file and rebuilds every posting list; the
// reload path mmap-free reads the sealed segment files plus their
// index sidecars and merges per-segment aggregates — no per-txn work.
// Both start from disk, nothing cached in the process.

var (
	coldOnce     sync.Once
	coldChainPth string
	coldStoreDir string
	coldErr      error
)

// coldFixtures writes the bench world's chain to a JSON-lines file and
// builds a durable store from it, once, under a shared temp dir.
func coldFixtures(b *testing.B) (chainPath, storeDir string) {
	w, _ := world(b)
	coldOnce.Do(func() {
		dir, err := os.MkdirTemp("", "peoplesnet-coldstart")
		if err != nil {
			coldErr = err
			return
		}
		coldChainPth = filepath.Join(dir, "chain.jsonl")
		coldStoreDir = filepath.Join(dir, "store")
		f, err := os.Create(coldChainPth)
		if err != nil {
			coldErr = err
			return
		}
		if _, err := w.Chain.WriteTo(f); err != nil {
			f.Close()
			coldErr = err
			return
		}
		if coldErr = f.Close(); coldErr != nil {
			return
		}
		s, err := etl.Open(coldStoreDir, etl.Config{})
		if err != nil {
			coldErr = err
			return
		}
		if coldErr = s.BulkLoad(w.Chain); coldErr != nil {
			return
		}
		coldErr = s.Close()
	})
	if coldErr != nil {
		b.Fatal(coldErr)
	}
	return coldChainPth, coldStoreDir
}

func BenchmarkETLColdStart_Reindex(b *testing.B) {
	chainPath, _ := coldFixtures(b)
	want := benchRes.Chain.Height()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(chainPath)
		if err != nil {
			b.Fatal(err)
		}
		c, err := chain.ReadChain(f)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		if s := etl.FromChain(c); s.Height() != want {
			b.Fatalf("reindexed to %d, want %d", s.Height(), want)
		}
	}
}

func BenchmarkETLColdStart_Reload(b *testing.B) {
	_, storeDir := coldFixtures(b)
	want := benchRes.Chain.Height()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := etl.Open(storeDir, etl.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if h := s.Health(); h.Quarantined > 0 || len(h.Gaps) > 0 {
			b.Fatalf("unexpected damage on reload: %+v", h)
		}
		if s.Height() != want {
			b.Fatalf("reloaded to %d, want %d", s.Height(), want)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- storage engine v2: size, lazy cold start, checkpointed replay --------
//
// The BenchmarkStore* family backs EXPERIMENTS.md "Storage engine v2"
// and `make store-bench`: compressed-posting store size, cold-start
// time-to-first-query with lazy segment loading vs a full preload, and
// ledger replay resumed from a checkpoint vs replayed from genesis.

// BenchmarkStoreSize reports the v2 store's size profile: total
// on-disk bytes per block, compressed posting bytes, and bytes per
// posting entry (v1 spent 12 bytes per entry in memory and two
// absolute uvarints on disk — the compression-ratio baseline).
func BenchmarkStoreSize(b *testing.B) {
	_, storeDir := coldFixtures(b)
	s, err := etl.Open(storeDir, etl.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var st etl.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = s.Stats()
	}
	b.StopTimer()
	if st.Blocks == 0 || st.PostingsBytes == 0 {
		b.Fatalf("degenerate stats: %+v", st)
	}
	var diskBytes int64
	entries, err := os.ReadDir(storeDir)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			b.Fatal(err)
		}
		diskBytes += info.Size()
	}
	postings := st.TypePostings + st.ActorPostings + st.SharedPostings
	b.ReportMetric(float64(diskBytes)/float64(st.Blocks), "store_B/block")
	b.ReportMetric(float64(st.PostingsBytes), "postings_B")
	b.ReportMetric(float64(st.PostingsBytes)/float64(postings), "postings_B/entry")
}

// Cold-start time-to-first-query: open the store and answer one
// tail-window indexed query. The lazy path reads the WAL tail plus the
// touched segments only; the preload pin materializes every segment
// first — the v1 open behavior.
func coldFirstQuery(b *testing.B, preload bool) {
	_, storeDir := coldFixtures(b)
	want := benchRes.Chain.Height()
	// The simulated tail carries state-channel closes and rewards at
	// every scale; denser types (PoC, payments) thin out near the tip.
	f := etl.Filter{Types: []chain.TxnType{chain.TxnStateChannelClose, chain.TxnRewards}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := etl.Open(storeDir, etl.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if preload {
			s.Preload()
		}
		tip := s.Height()
		if tip != want {
			b.Fatalf("reloaded to %d, want %d", tip, want)
		}
		var n int64
		s.Scan(etl.Range{From: tip - 63, To: tip}, f, func(int64, chain.Txn) bool { n++; return true })
		if n == 0 {
			b.Fatal("first query matched nothing")
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreColdStart_LazyFirstQuery(b *testing.B)    { coldFirstQuery(b, false) }
func BenchmarkStoreColdStart_PreloadFirstQuery(b *testing.B) { coldFirstQuery(b, true) }

// Ledger replay: resumed from the checkpoint written at the sealed
// boundary vs replayed from genesis. The full pin deletes the
// checkpoint before each open (replay rewrites it on the way out).
func BenchmarkStoreReplay_Checkpointed(b *testing.B) {
	_, storeDir := coldFixtures(b)
	s, err := etl.Open(storeDir, etl.Config{})
	if err != nil {
		b.Fatal(err)
	}
	// Seed the checkpoint so every timed iteration resumes from it.
	if _, err := s.ReplayLedger(); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := etl.Open(storeDir, etl.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.ReplayLedger(); err != nil {
			b.Fatal(err)
		}
		if h := s.Health(); !strings.Contains(h.CheckpointNote, "replayed from checkpoint") {
			b.Fatalf("replay was not checkpointed: %q", h.CheckpointNote)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreReplay_Full(b *testing.B) {
	_, storeDir := coldFixtures(b)
	ckpt := filepath.Join(storeDir, "ledger.ckpt")
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		os.Remove(ckpt)
		b.StartTimer()
		s, err := etl.Open(storeDir, etl.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.ReplayLedger(); err != nil {
			b.Fatal(err)
		}
		if h := s.Health(); !strings.Contains(h.CheckpointNote, "full replay") {
			b.Fatalf("replay unexpectedly checkpointed: %q", h.CheckpointNote)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkETLScan_Parallel(b *testing.B) {
	_, s := etlStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n atomic.Int64
		s.ScanParallel(etl.All(), etl.Filter{}, 8, func(int64, chain.Txn) bool { n.Add(1); return true })
		if n.Load() == 0 {
			b.Fatal("empty scan")
		}
	}
}

// The auto-pick path: workers=0 lets the store estimate matched work
// from its index counters and available CPUs, falling back to the
// ordered sequential visit below the crossover. Compare against the
// _Sequential and _Parallel pins above to verify the heuristic lands
// on the right side at this scale and CPU count.
func BenchmarkETLScan_Auto(b *testing.B) {
	_, s := etlStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n atomic.Int64
		s.ScanParallel(etl.All(), etl.Filter{}, 0, func(int64, chain.Txn) bool { n.Add(1); return true })
		if n.Load() == 0 {
			b.Fatal("empty scan")
		}
	}
}
