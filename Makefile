GO ?= go

.PHONY: build test race bench bench-etl bench-json bench-trend bench-fed bench-mttr bench-live store-bench fmt vet lint lint-fix-scan check recovery fuzz-smoke fed-smoke chaos-smoke live-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper tables & figures (EXPERIMENTS.md); add PEOPLESNET_BENCH_SCALE=paper
# for the full 44k-hotspot world.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# ETL ingest/query benchmarks only (EXPERIMENTS.md "ETL store" section).
bench-etl:
	$(GO) test -run xxx -bench 'BenchmarkETL' -benchtime 200x .

# Machine-readable benchmark record: run the full suite and write
# BENCH_<date>.json (name, ns/op, allocs, world scale) — the
# provenance file behind every number quoted in EXPERIMENTS.md.
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run xxx -bench . -benchmem . | ./bin/benchjson -scale $${PEOPLESNET_BENCH_SCALE:-small}

# Trend gate: diff the two newest BENCH_*.json records and fail loudly
# if any benchmark's ns/op regressed by more than 20%.
bench-trend:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	./bin/benchjson -trend

# Live materialized analytics: batch-refresh baseline vs per-block
# incremental cost and snapshot cost (EXPERIMENTS.md "Streaming
# Study"). Writes BENCH_<date>.json like bench-json, so the ns/block
# and allocs/block metrics fall under the bench-trend gate.
bench-live:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run xxx -bench 'BenchmarkMeasure$$|BenchmarkLiveStudy' -benchmem . | ./bin/benchjson -scale $${PEOPLESNET_BENCH_SCALE:-small}

# Storage engine v2 numbers (EXPERIMENTS.md "Storage engine v2"):
# postings compression ratio, cold-start time-to-first-query vs full
# preload, and checkpointed vs full ledger replay.
store-bench:
	$(GO) test -run xxx -bench 'BenchmarkStore' -benchtime 10x .

# Federated query tier under load: P50/P99 per query class, routing
# precision, 1/2/4/8-shard scaling, every result verified against the
# raw-chain oracle (EXPERIMENTS.md "Federated fan-out" section).
bench-fed:
	$(GO) run ./cmd/fedload -scale $${PEOPLESNET_BENCH_SCALE:-small}

# Fixture modules under internal/analysis/testdata hold deliberately
# bad code for the linter's own tests; fmt skips them (vet and build
# already do, since the toolchain ignores testdata trees).
fmt:
	@files=$$(gofmt -l . | grep -v '/testdata/' || true); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

# Repo-invariant static analysis (internal/analysis): fsdiscipline,
# determinism, txnexhaustive, closecheck, mutexguard, tickerstop. Also
# runs under `go vet -vettool=bin/peoplesnetlint ./...`.
lint:
	$(GO) build -o bin/peoplesnetlint ./cmd/peoplesnetlint
	./bin/peoplesnetlint ./...

# Audit every //lint:allow suppression in the tree, with its reason.
lint-fix-scan:
	$(GO) build -o bin/peoplesnetlint ./cmd/peoplesnetlint
	./bin/peoplesnetlint -suppressions ./...

# Crash-recovery matrix: every mutating I/O op of the ingest workload
# becomes a crash site (plus torn writes and bit flips); recovery must
# be lossless or an explicitly quarantined gap that Repair closes.
recovery:
	$(GO) test -race -run 'Durable|Reopen|CrashRecovery|BitFlip|Sidecar|Follower|AppendNonContiguous' ./internal/etl/

# Coverage-guided fuzzing over the codecs: the chain block decoder
# must decode-or-error on arbitrary bytes, the wire primitives must
# round-trip any write script exactly, the wire reader must never
# panic on garbage, and the v2 store codecs (compressed postings,
# ledger checkpoint) must round-trip clean input and reject hostile
# input without panicking. (`go test -fuzz` takes one target per run.)
fuzz-smoke:
	$(GO) test -fuzz FuzzDecodeBlock -fuzztime 10s -run xxx ./internal/chain/
	$(GO) test -fuzz FuzzWireRoundTrip -fuzztime 5s -run xxx ./internal/wire/
	$(GO) test -fuzz FuzzReaderNoPanic -fuzztime 5s -run xxx ./internal/wire/
	$(GO) test -fuzz FuzzPostingRoundTrip -fuzztime 10s -run xxx ./internal/etl/
	$(GO) test -fuzz FuzzDecodeCheckpoint -fuzztime 5s -run xxx ./internal/etl/

# Federation smoke: 4 height-sliced and 4 region-sliced in-process
# shards answer the full query matrix under the race detector, every
# result compared bit-for-bit against the single-store baseline.
fed-smoke:
	$(GO) test -race -run TestFederationSmoke ./internal/fed/

# Chaos smoke: the seeded fed-layer fault matrix under the race
# detector — kill mid-tail, persist-path crash, torn WAL write, sealed
# segment bit flip, stalled shard, producer disconnect — each against
# supervised durable clusters; recovery must reconverge and answer the
# full query corpus bit-identically to the raw-chain oracle. -short
# skips the all-layouts kill sweep (the long tail; `make race` runs it).
chaos-smoke:
	$(GO) test -race -short -run 'TestFedChaos|TestDurableFollowerResume|TestSupervisor' ./internal/fed/

# Follower MTTR: kill a durable supervised shard and measure
# re-convergence, cold re-ingest vs checkpoint resume
# (EXPERIMENTS.md "Follower MTTR" section).
bench-mttr:
	$(GO) run ./cmd/fedload -scale $${PEOPLESNET_BENCH_SCALE:-small} -mttr -trials 5

# Live-study smoke: the prefix-equivalence suite under the race
# detector — the live fold must stay bit-identical to the batch
# measurement at every height, through store tails and follower
# retries.
live-smoke:
	$(GO) test -race -run 'TestLiveStudy' ./internal/live/

check: fmt vet lint build race recovery fuzz-smoke fed-smoke chaos-smoke live-smoke
