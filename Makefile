GO ?= go

.PHONY: build test race bench fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper tables & figures (EXPERIMENTS.md); add PEOPLESNET_BENCH_SCALE=paper
# for the full 44k-hotspot world.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# ETL ingest/query benchmarks only (EXPERIMENTS.md "ETL store" section).
bench-etl:
	$(GO) test -run xxx -bench 'BenchmarkETL' -benchtime 200x .

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build race
