package peoplesnet

import (
	"fmt"
	"strings"

	"peoplesnet/internal/names"
)

// RenderText produces a human-readable reproduction report: one block
// per paper artifact, with the paper's reference values inline for
// comparison.
func (s *Study) RenderText() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("== §3 Transaction mix ==")
	w("total txns (notional): %d   PoC share: %.2f%%   [paper: 59,092,640 total, 99.2%% PoC]",
		s.Summary.TotalTxns, s.Summary.PoCFraction*100)

	w("")
	w("== Fig 2: location changes per hotspot ==")
	w("never moved: %.1f%%   ≤2 moves: %.1f%%   >5 moves: %.1f%%   max: %d (%s)",
		s.Moves.NeverMovedFrac*100, s.Moves.AtMostTwoFrac*100, s.Moves.MoreThanFive*100,
		s.Moves.MaxMoves, names.FromAddress(s.Moves.MaxMover))
	w("[paper: 71.9%% never move; movers mostly 1–2 times; one 20-move outlier]")

	w("")
	w("== Fig 3: move distances ==")
	w("%s", s.Moves.DistancesKm.Render("move distance", " km"))
	w(">500 km moves: %d (longest %.0f km)", len(s.Moves.LongMoves), longestMove(s))
	w("(0,0) assertions: %d, first-time %.0f%%, still at (0,0): %d   [paper: 372, 89%%, 0 online]",
		s.Moves.ZeroAssertions, s.Moves.ZeroFirstFrac*100, s.Moves.StillAtZero)

	w("")
	w("== Fig 4: blocks between relocations ==")
	w("within a day: %.1f%%   within a week: %.1f%%   within a month: %.1f%%   [paper: 17.9 / 35.8 / 63.2%%]",
		s.Moves.WithinDayFrac*100, s.Moves.WithinWeekFrac*100, s.Moves.WithinMoFrac*100)

	w("")
	w("== Fig 5: network growth ==")
	w("total connected: %d   final adds/day: %.0f   peak day: %.0f",
		s.Growth.Total, s.Growth.FinalRate, s.Growth.PeakDaily)
	w("%s", s.Growth.Daily.Render(72))

	w("")
	w("== §4.3: ownership ==")
	w("owners: %d   own 1: %.1f%%   own 2: %.1f%%   own 3: %.1f%%   ≤3: %.1f%%   ≥5: %.1f%%   max: %d",
		s.Ownership.Owners, s.Ownership.OwnOneFrac*100, s.Ownership.OwnTwoFrac*100,
		s.Ownership.OwnThreeFrac*100, s.Ownership.AtMostThree*100, s.Ownership.FiveOrMore*100,
		s.Ownership.MaxOwned)
	w("[paper: ~9,000 owners; 62.1 / 14.6 / 7%%; 83.7%% ≤3; 10.3%% ≥5; max 1,903]")
	w("bulk owners (≥10 hotspots): %d", len(s.Ownership.Bulk))
	for i, o := range s.Ownership.Bulk {
		if i >= 6 {
			w("  …")
			break
		}
		w("  %-18s %4d hotspots  %6.0f HNT  %8d data pkts  [%s]",
			o.Address[:minInt(18, len(o.Address))], o.Hotspots,
			float64(o.HNTBones)/1e8, o.DataPackets, o.Class)
	}

	w("")
	w("== Fig 7: resale market ==")
	w("transfers: %d   hotspots transferred: %d (%.1f%%)   ≤2 transfers: %.1f%%   zero-DC: %.1f%%",
		s.Resale.TotalTransfers, s.Resale.TransferredHotspots, s.Resale.TransferredFrac*100,
		s.Resale.AtMostTwoFrac*100, s.Resale.ZeroDCFrac*100)
	w("[paper: 3,819 transfers; 8.6%% of hotspots; 95.4%% ≤2; 95.8%% zero-DC]")
	w("%s", s.Resale.PerMonth.Render(40))

	w("")
	w("== Fig 8: data traffic ==")
	w("total packets: %d   console SC share: %.2f%%   final rate: %.1f pkt/s",
		s.Traffic.TotalPackets, s.Traffic.ConsoleShare*100, s.Traffic.FinalPktPerSec)
	w("[paper: OUI 1+2 = 81.18%% of SC txns; ≈14 pkt/s at the end]")
	if s.Traffic.SpikeStartBlock > 0 {
		w("arbitrage spike: blocks %d–%d (days %d–%d), peak %.0f pkts/close   [paper: Aug 12–Sep 6 2020]",
			s.Traffic.SpikeStartBlock, s.Traffic.SpikeEndBlock,
			s.Traffic.SpikeStartBlock/1440, s.Traffic.SpikeEndBlock/1440, s.Traffic.SpikePeak)
	}
	w("routers: %d OUIs (%d Helium Console)   [paper: 10 OUIs, 2 Helium]",
		s.Routers.OUIs, s.Routers.ConsoleOUIs)

	w("")
	w("== Table 1 / Fig 9: backhaul ISPs ==")
	w("public hotspots: %d over %d ASNs   cloud-hosted: %d   [paper: 454 ASNs; DO 72 + AWS 44 cloud]",
		s.ISPs.PublicHotspots, len(s.ISPs.ASNs), s.ISPs.CloudHotspots)
	for i, row := range s.ISPs.TopISPs {
		w("  %2d. %-14s %5d", i+1, row.ISP, row.Hotspots)
	}
	w("cities: %d   single-ASN: %d (%.0f%%)   single-ASN with ≥2 hotspots: %d",
		s.ISPs.Cities, s.ISPs.SingleASNCities,
		frac(s.ISPs.SingleASNCities, s.ISPs.Cities)*100, s.ISPs.SingleASNMulti)
	w("[paper: 3,958 cities; 1,588 single-ASN; 414 of those with ≥2]")

	w("")
	w("== Fig 10/11: relays ==")
	w("peers: %d   relayed: %d (%.2f%%)   max fan-out: %d   [paper: 27,281 peers, 55.48%%, max 46]",
		s.Relays.Stats.Total, s.Relays.Stats.Relayed,
		s.Relays.Stats.RelayedFraction()*100, s.Relays.Stats.MaxFanOut)
	if s.Relays.Stats.DistancesKm != nil && s.Relays.Stats.DistancesKm.N() > 0 {
		w("%s", s.Relays.Stats.DistancesKm.Render("relay→peer distance", " km"))
	}
	w("KS vs %d random reassignments: %.3f (small ⇒ selection is random, the paper's finding)",
		len(s.Relays.RandomTrials), s.Relays.MaxKS)

	w("")
	w("== §7: incentive audit ==")
	w("silent movers found: %d   lying witnesses: %d   clique suspects: %d",
		len(s.Audit.SilentMovers), len(s.Audit.LyingWitness), len(s.Audit.CliqueSuspects))
	for i, m := range s.Audit.SilentMovers {
		if i >= 3 {
			w("  …")
			break
		}
		w("  %q asserted %v but witnesses cluster %.0f km away over %d receipts",
			names.FromAddress(m.Hotspot), m.AssertedAt, m.MedianWitnessKm, m.Receipts)
	}
	for i, l := range s.Audit.LyingWitness {
		if i >= 3 {
			w("  …")
			break
		}
		w("  witness %q max RSSI %.0f dBm (%d absurd, %d too-strong of %d reports)",
			names.FromAddress(l.Witness), l.MaxRSSI, l.Absurd, l.TooStrong, l.Reports)
	}

	w("")
	w("== §9.1: if the top ISP flips the switch ==")
	ban := s.Dataset.AssessISPBan("Spectrum", "US")
	w("a Spectrum residential-ToS crackdown takes down %d of %d visible US hotspots (%.0f%%)   [paper: ≥17%%]",
		ban.VisibleAffected, ban.CountryPublic, ban.Fraction*100)
	return b.String()
}

func longestMove(s *Study) float64 {
	if len(s.Moves.LongMoves) == 0 {
		return 0
	}
	return s.Moves.LongMoves[0].DistanceKm
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
