package geo

import (
	"math"
	"sync"
)

// Raster computes what fraction of a landmass polygon is covered by a
// set of coverage shapes (circles and polygons), by sampling the
// landmass on a regular lat/lon grid. This is how Figure 12's
// "% of contiguous US landmass covered" numbers are produced.
//
// CellKm sets the sampling pitch. Coverage features in this study are
// as small as 300 m circles, far below any grid we can afford over the
// whole CONUS, so Raster counts a cell as covered in proportion to the
// shape area when a shape is smaller than a cell (area-weighted
// sub-cell accounting) rather than by center containment alone.
type Raster struct {
	Landmass Polygon
	CellKm   float64
}

// coverShape is one coverage feature: either a circle or a polygon.
type coverShape struct {
	isCircle bool
	center   Point
	radiusKm float64
	poly     Polygon
	bounds   BoundingBox
}

// CoverageSet accumulates coverage features and evaluates the covered
// fraction of a landmass. Features may overlap; overlapping area is
// counted once.
type CoverageSet struct {
	mu     sync.Mutex
	shapes []coverShape
}

// AddCircle adds a disc of radiusKm around center.
func (cs *CoverageSet) AddCircle(center Point, radiusKm float64) {
	if radiusKm <= 0 {
		return
	}
	b := BoundsOf(Circle(center, radiusKm, 8).Vertices)
	cs.mu.Lock()
	cs.shapes = append(cs.shapes, coverShape{isCircle: true, center: center, radiusKm: radiusKm, bounds: b})
	cs.mu.Unlock()
}

// AddPolygon adds a polygonal coverage region. Degenerate polygons
// (fewer than 3 vertices) are ignored.
func (cs *CoverageSet) AddPolygon(p Polygon) {
	if len(p.Vertices) < 3 {
		return
	}
	cs.mu.Lock()
	cs.shapes = append(cs.shapes, coverShape{poly: p, bounds: p.Bounds()})
	cs.mu.Unlock()
}

// Size returns the number of shapes in the set.
func (cs *CoverageSet) Size() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.shapes)
}

// covers reports whether the shape covers point p.
func (s *coverShape) covers(p Point) bool {
	if !s.bounds.Contains(p) {
		return false
	}
	if s.isCircle {
		return HaversineKm(s.center, p) <= s.radiusKm
	}
	return s.poly.Contains(p)
}

// areaKm2 returns the shape's own area.
func (s *coverShape) areaKm2() float64 {
	if s.isCircle {
		return math.Pi * s.radiusKm * s.radiusKm
	}
	return s.poly.AreaKm2()
}

// Result of a coverage evaluation.
type CoverageResult struct {
	LandmassKm2 float64 // area of the landmass polygon
	CoveredKm2  float64 // covered area within the landmass
	Fraction    float64 // CoveredKm2 / LandmassKm2
	GridCells   int     // number of landmass sample cells evaluated
}

// Evaluate computes the covered fraction of r.Landmass by cs.
//
// Cells whose center lies in the landmass are tested against the shape
// index. A cell counts as fully covered if its center is covered by
// any shape. Shapes much smaller than a cell would otherwise alias to
// zero, so shapes whose bounding box fits entirely inside one cell
// contribute min(shapeArea, cellArea) to a sub-cell total instead,
// deduplicated per cell to avoid double counting dense clusters beyond
// one full cell.
func (r Raster) Evaluate(cs *CoverageSet) CoverageResult {
	land := r.Landmass
	bounds := land.Bounds()
	kmPerDegLat := 2 * math.Pi * EarthRadiusKm / 360
	dLat := r.CellKm / kmPerDegLat
	cellArea := r.CellKm * r.CellKm

	cs.mu.Lock()
	shapes := append([]coverShape(nil), cs.shapes...)
	cs.mu.Unlock()

	// Partition shapes: "large" shapes are tested per cell center;
	// "small" shapes contribute area directly to the cell that holds
	// their center.
	var large []*coverShape
	type subCell struct{ areaSum float64 }
	small := make(map[[2]int]*subCell)
	cellOf := func(p Point, refLat float64) [2]int {
		kmPerDegLon := kmPerDegLat * math.Cos(deg2rad(refLat))
		dLon := r.CellKm / kmPerDegLon
		return [2]int{
			int(math.Floor((p.Lat - bounds.MinLat) / dLat)),
			int(math.Floor((p.Lon - bounds.MinLon) / dLon)),
		}
	}
	for i := range shapes {
		s := &shapes[i]
		spanLat := (s.bounds.MaxLat - s.bounds.MinLat) * kmPerDegLat
		kmPerDegLon := kmPerDegLat * math.Cos(deg2rad((s.bounds.MinLat+s.bounds.MaxLat)/2))
		spanLon := (s.bounds.MaxLon - s.bounds.MinLon) * kmPerDegLon
		if spanLat < r.CellKm && spanLon < r.CellKm {
			c := Point{
				Lat: (s.bounds.MinLat + s.bounds.MaxLat) / 2,
				Lon: (s.bounds.MinLon + s.bounds.MaxLon) / 2,
			}
			if !land.Contains(c) {
				continue
			}
			key := cellOf(c, c.Lat)
			sc := small[key]
			if sc == nil {
				sc = &subCell{}
				small[key] = sc
			}
			sc.areaSum += s.areaKm2()
		} else {
			large = append(large, s)
		}
	}

	// Walk the grid. Parallelize across latitude rows.
	nRows := int(math.Ceil((bounds.MaxLat - bounds.MinLat) / dLat))
	if nRows < 1 {
		nRows = 1
	}
	type rowResult struct {
		landCells    int
		coveredCells int
		coveredKeys  map[[2]int]bool
	}
	results := make([]rowResult, nRows)
	var wg sync.WaitGroup
	workers := 8
	rowCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for row := range rowCh {
				lat := bounds.MinLat + (float64(row)+0.5)*dLat
				kmPerDegLon := kmPerDegLat * math.Cos(deg2rad(lat))
				dLon := r.CellKm / kmPerDegLon
				res := rowResult{coveredKeys: make(map[[2]int]bool)}
				for lon := bounds.MinLon + dLon/2; lon <= bounds.MaxLon; lon += dLon {
					p := Point{Lat: lat, Lon: lon}
					if !land.Contains(p) {
						continue
					}
					res.landCells++
					for _, s := range large {
						if s.covers(p) {
							res.coveredCells++
							res.coveredKeys[cellOf(p, lat)] = true
							break
						}
					}
				}
				results[row] = res
			}
		}()
	}
	for row := 0; row < nRows; row++ {
		rowCh <- row
	}
	close(rowCh)
	wg.Wait()

	landCells, coveredCells := 0, 0
	coveredByLarge := make(map[[2]int]bool)
	for _, res := range results {
		landCells += res.landCells
		coveredCells += res.coveredCells
		for k := range res.coveredKeys {
			coveredByLarge[k] = true
		}
	}

	// Add the sub-cell contributions for cells not already covered by
	// a large shape. Cap each cell at one cell-area.
	subArea := 0.0
	for key, sc := range small {
		if coveredByLarge[key] {
			continue
		}
		a := sc.areaSum
		if a > cellArea {
			a = cellArea
		}
		subArea += a
	}

	landArea := land.AreaKm2()
	covered := float64(coveredCells)*cellArea + subArea
	if covered > landArea {
		covered = landArea
	}
	frac := 0.0
	if landArea > 0 {
		frac = covered / landArea
	}
	return CoverageResult{
		LandmassKm2: landArea,
		CoveredKm2:  covered,
		Fraction:    frac,
		GridCells:   landCells,
	}
}
