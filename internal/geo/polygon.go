package geo

import (
	"math"
	"sort"
)

// Polygon is a simple (non-self-intersecting) polygon on the sphere,
// given as a ring of vertices in order (either winding). The closing
// edge from the last vertex back to the first is implicit.
//
// Polygons in this study are regional (PoC witness hulls, metro areas,
// the contiguous-US landmass), so edges are treated as short rhumb
// segments on an equirectangular projection centered on the polygon:
// accurate to well under a percent at these scales and much cheaper
// than full spherical polygon math.
type Polygon struct {
	Vertices []Point
}

// NewPolygon copies the vertex ring into a Polygon.
func NewPolygon(vertices []Point) Polygon {
	return Polygon{Vertices: append([]Point(nil), vertices...)}
}

// centroidLat returns the mean latitude, used to scale longitudes for
// the local equirectangular projection.
func (pg Polygon) centroidLat() float64 {
	if len(pg.Vertices) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range pg.Vertices {
		sum += v.Lat
	}
	return sum / float64(len(pg.Vertices))
}

// project maps p to local planar km coordinates around refLat.
func project(p Point, refLat float64) (x, y float64) {
	kmPerDegLat := 2 * math.Pi * EarthRadiusKm / 360
	kmPerDegLon := kmPerDegLat * math.Cos(deg2rad(refLat))
	return p.Lon * kmPerDegLon, p.Lat * kmPerDegLat
}

// AreaKm2 returns the polygon's area in square kilometers using the
// shoelace formula on the local projection. The result is always
// non-negative; degenerate polygons (<3 vertices) have zero area.
func (pg Polygon) AreaKm2() float64 {
	if len(pg.Vertices) < 3 {
		return 0
	}
	ref := pg.centroidLat()
	area := 0.0
	n := len(pg.Vertices)
	for i := 0; i < n; i++ {
		x1, y1 := project(pg.Vertices[i], ref)
		x2, y2 := project(pg.Vertices[(i+1)%n], ref)
		area += x1*y2 - x2*y1
	}
	return math.Abs(area) / 2
}

// Contains reports whether p is inside the polygon (ray casting on the
// local projection). Points exactly on an edge may be classified
// either way; the rasterizer's resolution dominates any edge effects.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.Vertices[i], pg.Vertices[j]
		if (vi.Lat > p.Lat) != (vj.Lat > p.Lat) {
			slope := (vj.Lon-vi.Lon)*(p.Lat-vi.Lat)/(vj.Lat-vi.Lat) + vi.Lon
			if p.Lon < slope {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// Bounds returns the polygon's bounding box.
func (pg Polygon) Bounds() BoundingBox { return BoundsOf(pg.Vertices) }

// GeoJSONCoordinates renders the ring in GeoJSON Polygon coordinate
// order ([lon, lat], closed ring).
func (pg Polygon) GeoJSONCoordinates() [][][2]float64 {
	if len(pg.Vertices) == 0 {
		return nil
	}
	ring := make([][2]float64, 0, len(pg.Vertices)+1)
	for _, v := range pg.Vertices {
		ring = append(ring, [2]float64{v.Lon, v.Lat})
	}
	ring = append(ring, ring[0]) // close the ring
	return [][][2]float64{ring}
}

// Circle approximates a geodesic circle of the given radius around
// center as an n-gon polygon. n must be >= 3.
func Circle(center Point, radiusKm float64, n int) Polygon {
	if n < 3 {
		n = 3
	}
	verts := make([]Point, n)
	for i := 0; i < n; i++ {
		verts[i] = Destination(center, float64(i)*360/float64(n), radiusKm)
	}
	return Polygon{Vertices: verts}
}

// ConvexHull returns the convex hull of pts as a Polygon, computed
// with Andrew's monotone chain on the local equirectangular
// projection. Duplicate points are tolerated. Fewer than 3 distinct
// points yield a degenerate polygon with the distinct points as
// vertices (zero area).
func ConvexHull(pts []Point) Polygon {
	if len(pts) == 0 {
		return Polygon{}
	}
	sorted := append([]Point(nil), pts...)
	sortPoints(sorted)
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		last := uniq[len(uniq)-1]
		if p.Lat != last.Lat || p.Lon != last.Lon {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return Polygon{Vertices: append([]Point(nil), uniq...)}
	}
	cross := func(o, a, b Point) float64 {
		return (a.Lon-o.Lon)*(b.Lat-o.Lat) - (a.Lat-o.Lat)*(b.Lon-o.Lon)
	}
	var hull []Point
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(uniq) - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return Polygon{Vertices: hull[:len(hull)-1]}
}

func sortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Lon != pts[j].Lon {
			return pts[i].Lon < pts[j].Lon
		}
		return pts[i].Lat < pts[j].Lat
	})
}
