// Package geo implements the spherical geometry needed by the study:
// great-circle distances between hotspots, destination points for walk
// traces, convex hulls around PoC witnesses, polygon areas and
// point-in-polygon tests for landmass coverage, and a rasterizer that
// turns a set of coverage shapes into a "% of contiguous US covered"
// number (Figure 12).
//
// Coordinates are WGS84-style latitude/longitude in degrees on a
// spherical Earth of radius 6371.0088 km (the IUGG mean radius). The
// paper's analyses operate at hundreds of meters and above, where the
// spherical approximation error (<0.5%) is irrelevant.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the IUGG mean Earth radius.
const EarthRadiusKm = 6371.0088

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// IsZero reports whether p is the (0,0) "null island" coordinate that
// hotspots assert when they have no GPS fix (§4.1).
func (p Point) IsZero() bool { return p.Lat == 0 && p.Lon == 0 }

// Valid reports whether p is a plausible coordinate.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

func (p Point) String() string {
	return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// HaversineKm returns the great-circle distance between a and b in
// kilometers.
func HaversineKm(a, b Point) float64 {
	lat1, lon1 := deg2rad(a.Lat), deg2rad(a.Lon)
	lat2, lon2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// HaversineM returns the great-circle distance in meters.
func HaversineM(a, b Point) float64 { return HaversineKm(a, b) * 1000 }

// InitialBearing returns the initial great-circle bearing from a to b
// in degrees clockwise from north, in [0, 360).
func InitialBearing(a, b Point) float64 {
	lat1, lon1 := deg2rad(a.Lat), deg2rad(a.Lon)
	lat2, lon2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	brng := rad2deg(math.Atan2(y, x))
	return math.Mod(brng+360, 360)
}

// Destination returns the point reached by travelling distKm along the
// great circle from p at the given initial bearing (degrees from
// north).
func Destination(p Point, bearingDeg, distKm float64) Point {
	lat1, lon1 := deg2rad(p.Lat), deg2rad(p.Lon)
	brng := deg2rad(bearingDeg)
	d := distKm / EarthRadiusKm
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(math.Sin(brng)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2))
	lon2 = math.Mod(lon2+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: rad2deg(lat2), Lon: rad2deg(lon2)}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Point) Point {
	lat1, lon1 := deg2rad(a.Lat), deg2rad(a.Lon)
	lat2, lon2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLon := lon2 - lon1
	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	lon3 = math.Mod(lon3+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: rad2deg(lat3), Lon: rad2deg(lon3)}
}

// BoundingBox is an axis-aligned lat/lon rectangle. It does not handle
// antimeridian crossing; the study's regions (CONUS, metro areas) do
// not cross it.
type BoundingBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Contains reports whether p lies inside the box (inclusive).
func (b BoundingBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Expand grows the box to include p.
func (b *BoundingBox) Expand(p Point) {
	if b.MinLat == 0 && b.MaxLat == 0 && b.MinLon == 0 && b.MaxLon == 0 {
		b.MinLat, b.MaxLat, b.MinLon, b.MaxLon = p.Lat, p.Lat, p.Lon, p.Lon
		return
	}
	b.MinLat = math.Min(b.MinLat, p.Lat)
	b.MaxLat = math.Max(b.MaxLat, p.Lat)
	b.MinLon = math.Min(b.MinLon, p.Lon)
	b.MaxLon = math.Max(b.MaxLon, p.Lon)
}

// BoundsOf returns the bounding box of pts. It panics on an empty
// input.
func BoundsOf(pts []Point) BoundingBox {
	if len(pts) == 0 {
		panic("geo: BoundsOf empty slice")
	}
	b := BoundingBox{MinLat: pts[0].Lat, MaxLat: pts[0].Lat, MinLon: pts[0].Lon, MaxLon: pts[0].Lon}
	for _, p := range pts[1:] {
		b.Expand(p)
	}
	return b
}
