package geo

import (
	"math"
	"testing"
)

func TestRasterFullCoverage(t *testing.T) {
	land := equatorSquare() // ~111x111 km
	cs := &CoverageSet{}
	cs.AddCircle(Point{0.5, 0.5}, 200) // covers everything
	res := Raster{Landmass: land, CellKm: 5}.Evaluate(cs)
	if res.Fraction < 0.95 || res.Fraction > 1.0 {
		t.Fatalf("full coverage fraction = %v", res.Fraction)
	}
	if res.GridCells == 0 {
		t.Fatal("no grid cells evaluated")
	}
}

func TestRasterNoCoverage(t *testing.T) {
	land := equatorSquare()
	cs := &CoverageSet{}
	res := Raster{Landmass: land, CellKm: 5}.Evaluate(cs)
	if res.Fraction != 0 {
		t.Fatalf("empty coverage fraction = %v", res.Fraction)
	}
}

func TestRasterHalfCoverage(t *testing.T) {
	land := equatorSquare()
	cs := &CoverageSet{}
	// Cover the southern half with a polygon.
	cs.AddPolygon(NewPolygon([]Point{{0, 0}, {0, 1}, {0.5, 1}, {0.5, 0}}))
	res := Raster{Landmass: land, CellKm: 2}.Evaluate(cs)
	if math.Abs(res.Fraction-0.5) > 0.03 {
		t.Fatalf("half coverage fraction = %v", res.Fraction)
	}
}

func TestRasterSubCellShapes(t *testing.T) {
	// 300 m circles in a 111x111 km landmass with a 5 km grid: the
	// center-containment test would see nothing, but the sub-cell
	// accounting must register the area.
	land := equatorSquare()
	cs := &CoverageSet{}
	for i := 0; i < 10; i++ {
		cs.AddCircle(Point{0.1 + float64(i)*0.08, 0.5}, 0.3)
	}
	res := Raster{Landmass: land, CellKm: 5}.Evaluate(cs)
	wantArea := 10 * math.Pi * 0.3 * 0.3
	if res.CoveredKm2 < wantArea*0.8 || res.CoveredKm2 > wantArea*1.2 {
		t.Fatalf("sub-cell covered area = %v km², want ~%v", res.CoveredKm2, wantArea)
	}
}

func TestRasterOverlapNotDoubleCounted(t *testing.T) {
	land := equatorSquare()
	cs := &CoverageSet{}
	// Two identical large circles: fraction must match one circle.
	cs.AddCircle(Point{0.5, 0.5}, 20)
	cs.AddCircle(Point{0.5, 0.5}, 20)
	res2 := Raster{Landmass: land, CellKm: 2}.Evaluate(cs)

	one := &CoverageSet{}
	one.AddCircle(Point{0.5, 0.5}, 20)
	res1 := Raster{Landmass: land, CellKm: 2}.Evaluate(one)

	if math.Abs(res1.Fraction-res2.Fraction) > 0.001 {
		t.Fatalf("duplicated circle changed fraction: %v vs %v", res1.Fraction, res2.Fraction)
	}
}

func TestRasterIgnoresShapesOutsideLandmass(t *testing.T) {
	land := equatorSquare()
	cs := &CoverageSet{}
	cs.AddCircle(Point{40, 40}, 50) // far away
	res := Raster{Landmass: land, CellKm: 5}.Evaluate(cs)
	if res.Fraction != 0 {
		t.Fatalf("outside shape contributed coverage: %v", res.Fraction)
	}
}

func TestCoverageSetIgnoresDegenerate(t *testing.T) {
	cs := &CoverageSet{}
	cs.AddCircle(Point{0, 0}, 0)
	cs.AddCircle(Point{0, 0}, -1)
	cs.AddPolygon(Polygon{})
	cs.AddPolygon(NewPolygon([]Point{{0, 0}, {1, 1}}))
	if cs.Size() != 0 {
		t.Fatalf("degenerate shapes were added: %d", cs.Size())
	}
}
