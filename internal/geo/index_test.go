package geo

import (
	"sort"
	"testing"

	"peoplesnet/internal/stats"
)

func TestSpatialIndexExactness(t *testing.T) {
	// Index results must match a brute-force scan exactly.
	rng := stats.NewRNG(11)
	idx := NewSpatialIndex(25)
	pts := make([]Point, 2000)
	for i := range pts {
		pts[i] = Point{Lat: 30 + rng.Float64()*10, Lon: -120 + rng.Float64()*20}
		idx.Add(i, pts[i])
	}
	if idx.Len() != 2000 {
		t.Fatalf("len = %d", idx.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := Point{Lat: 30 + rng.Float64()*10, Lon: -120 + rng.Float64()*20}
		radius := 5 + rng.Float64()*100
		got := idx.Near(q, radius)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if HaversineKm(q, p) <= radius {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: id mismatch", trial)
			}
		}
	}
}

func TestSpatialIndexEdgeCases(t *testing.T) {
	idx := NewSpatialIndex(10)
	if got := idx.Near(Point{0, 0}, 10); got != nil {
		t.Fatal("empty index returned results")
	}
	idx.Add(1, Point{0, 0})
	if got := idx.Near(Point{0, 0}, 0); got != nil {
		t.Fatal("zero radius returned results")
	}
	if got := idx.Near(Point{0, 0}, -5); got != nil {
		t.Fatal("negative radius returned results")
	}
	got := idx.Near(Point{0, 0.001}, 1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("nearby query = %v", got)
	}
}

func TestSpatialIndexHighLatitude(t *testing.T) {
	// Longitude compression near the poles must not lose results.
	idx := NewSpatialIndex(25)
	p := Point{Lat: 69.5, Lon: 18.9} // Tromsø-ish
	q := Destination(p, 90, 40)      // 40 km east
	idx.Add(0, p)
	got := idx.Near(q, 45)
	if len(got) != 1 {
		t.Fatalf("high-latitude neighbour missed: %v", got)
	}
}
