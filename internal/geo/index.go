package geo

import "math"

// SpatialIndex buckets points into a fixed lat/lon grid for fast
// radius queries — the PoC engine uses it to find candidate witnesses
// near a challengee without scanning the whole fleet.
//
// The index is build-then-query: Add everything, then call Near.
// It is not safe for concurrent mutation.
type SpatialIndex struct {
	cellDeg float64
	buckets map[[2]int][]indexEntry
	n       int
}

type indexEntry struct {
	id int
	p  Point
}

// NewSpatialIndex creates an index with buckets roughly cellKm wide
// (sized at the equator; buckets get narrower in ground distance at
// high latitude, which only makes queries slightly over-inclusive —
// results are exact because candidates are distance-filtered).
func NewSpatialIndex(cellKm float64) *SpatialIndex {
	kmPerDeg := 2 * math.Pi * EarthRadiusKm / 360
	return &SpatialIndex{
		cellDeg: cellKm / kmPerDeg,
		buckets: make(map[[2]int][]indexEntry),
	}
}

func (s *SpatialIndex) key(p Point) [2]int {
	return [2]int{
		int(math.Floor(p.Lat / s.cellDeg)),
		int(math.Floor(p.Lon / s.cellDeg)),
	}
}

// Add registers a point under an integer id (typically a slice index).
func (s *SpatialIndex) Add(id int, p Point) {
	k := s.key(p)
	s.buckets[k] = append(s.buckets[k], indexEntry{id: id, p: p})
	s.n++
}

// Len returns the number of indexed points.
func (s *SpatialIndex) Len() int { return s.n }

// Near returns the ids of all points within radiusKm of p, in
// unspecified order.
func (s *SpatialIndex) Near(p Point, radiusKm float64) []int {
	if radiusKm <= 0 {
		return nil
	}
	kmPerDeg := 2 * math.Pi * EarthRadiusKm / 360
	dLat := radiusKm / kmPerDeg
	cosLat := math.Cos(deg2rad(p.Lat))
	if cosLat < 0.01 {
		cosLat = 0.01
	}
	dLon := radiusKm / (kmPerDeg * cosLat)

	minK := s.key(Point{Lat: p.Lat - dLat, Lon: p.Lon - dLon})
	maxK := s.key(Point{Lat: p.Lat + dLat, Lon: p.Lon + dLon})
	var out []int
	for ki := minK[0]; ki <= maxK[0]; ki++ {
		for kj := minK[1]; kj <= maxK[1]; kj++ {
			for _, e := range s.buckets[[2]int{ki, kj}] {
				if HaversineKm(p, e.p) <= radiusKm {
					out = append(out, e.id)
				}
			}
		}
	}
	return out
}
