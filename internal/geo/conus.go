package geo

// ContiguousUS returns a simplified polygon of the contiguous United
// States landmass (CONUS), used as the denominator for Figure 12's
// coverage percentages. The ring traces the coasts and borders with
// ~40 vertices; its area evaluates to roughly 8.1 million km²,
// matching the commonly cited CONUS land+water figure (8.08 M km²)
// within a few percent, which is the precision that matters for
// coverage fractions of 0.1–3%.
//
// Vertex order: starting at the Pacific Northwest, down the west
// coast, across the southern border, around Florida, up the east
// coast, and back along the Canadian border.
func ContiguousUS() Polygon {
	return NewPolygon([]Point{
		{48.39, -124.72}, // Cape Flattery, WA
		{46.26, -124.07}, // Oregon coast
		{41.75, -124.20}, // northern California coast
		{38.95, -123.74}, // Point Arena
		{36.60, -121.90}, // Monterey
		{34.45, -120.47}, // Point Conception
		{32.53, -117.12}, // San Diego / Tijuana
		{32.72, -114.72}, // Yuma, AZ
		{31.33, -111.07}, // AZ/Sonora border
		{31.78, -106.50}, // El Paso
		{29.56, -104.40}, // Big Bend
		{26.05, -97.52},  // Brownsville, TX
		{27.80, -97.05},  // Corpus Christi bay
		{29.55, -94.50},  // Galveston
		{29.25, -91.10},  // Louisiana coast
		{30.20, -88.50},  // Mississippi sound
		{30.40, -86.60},  // Florida panhandle
		{29.00, -83.10},  // Big Bend, FL
		{26.50, -82.20},  // SW Florida
		{25.20, -80.90},  // Everglades
		{25.15, -80.25},  // Miami
		{27.20, -80.15},  // Port St. Lucie
		{28.80, -80.70},  // Cape Canaveral
		{30.70, -81.40},  // GA/FL coast
		{32.05, -80.85},  // Savannah
		{33.85, -78.55},  // Myrtle Beach
		{35.25, -75.52},  // Cape Hatteras
		{36.90, -76.00},  // Virginia Beach
		{38.95, -74.90},  // Cape May
		{40.50, -73.95},  // New York
		{41.25, -71.85},  // Rhode Island
		{42.05, -70.20},  // Cape Cod
		{43.05, -70.70},  // NH coast
		{44.80, -66.95},  // easternmost Maine
		{47.35, -68.30},  // northern Maine
		{45.00, -71.50},  // NH/Quebec
		{45.00, -74.70},  // St. Lawrence
		{43.65, -79.00},  // Niagara
		{42.30, -83.10},  // Detroit
		{46.50, -84.40},  // Sault Ste. Marie
		{48.20, -88.40},  // Lake Superior
		{49.00, -95.15},  // Northwest Angle
		{49.00, -123.05}, // WA/BC border
	})
}

// ConusAreaKm2 is the approximate reference area of the contiguous US
// used in the paper's coverage denominators.
const ConusAreaKm2 = 8.08e6

// MetroArea describes a synthetic metropolitan area used by the world
// generator: a population-weighted disc where hotspots concentrate.
type MetroArea struct {
	Name       string
	Center     Point
	RadiusKm   float64
	Population int // used as an adoption weight
	CountryISO string
}

// InConus reports whether p falls inside the simplified CONUS polygon.
func InConus(p Point) bool {
	conus := ContiguousUS()
	return conus.Contains(p)
}
