package geo

import (
	"math"
	"testing"

	"peoplesnet/internal/stats"
)

// A ~1 degree square near the equator is about 111.2 x 111.2 km.
func equatorSquare() Polygon {
	return NewPolygon([]Point{{0, 0}, {0, 1}, {1, 1}, {1, 0}})
}

func TestPolygonArea(t *testing.T) {
	sq := equatorSquare()
	got := sq.AreaKm2()
	want := 111.195 * 111.195
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("square area = %v, want ~%v", got, want)
	}
}

func TestPolygonAreaDegenerate(t *testing.T) {
	if (Polygon{}).AreaKm2() != 0 {
		t.Error("empty polygon area != 0")
	}
	line := NewPolygon([]Point{{0, 0}, {1, 1}})
	if line.AreaKm2() != 0 {
		t.Error("2-vertex polygon area != 0")
	}
}

func TestPolygonContains(t *testing.T) {
	sq := equatorSquare()
	if !sq.Contains(Point{0.5, 0.5}) {
		t.Error("center not contained")
	}
	if sq.Contains(Point{1.5, 0.5}) || sq.Contains(Point{0.5, -0.5}) {
		t.Error("outside point contained")
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// An L-shape: the notch at (0.75, 0.75) must be outside.
	l := NewPolygon([]Point{{0, 0}, {0, 1}, {0.5, 1}, {0.5, 0.5}, {1, 0.5}, {1, 0}})
	if !l.Contains(Point{0.25, 0.25}) {
		t.Error("inside of L not contained")
	}
	if l.Contains(Point{0.75, 0.75}) {
		t.Error("notch of L contained")
	}
}

func TestCircleApproximation(t *testing.T) {
	c := Circle(Point{33, -117}, 10, 64)
	got := c.AreaKm2()
	want := math.Pi * 100
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("circle area = %v, want ~%v", got, want)
	}
	// All vertices equidistant from center.
	for _, v := range c.Vertices {
		d := HaversineKm(Point{33, -117}, v)
		if math.Abs(d-10) > 0.05 {
			t.Fatalf("vertex distance = %v", d)
		}
	}
}

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {0, 1}, {1, 1}, {1, 0}, {0.5, 0.5}, {0.2, 0.7}}
	hull := ConvexHull(pts)
	if len(hull.Vertices) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(hull.Vertices), hull.Vertices)
	}
	want := 111.195 * 111.195
	if got := hull.AreaKm2(); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("hull area = %v", got)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); len(h.Vertices) != 0 {
		t.Error("hull of nothing should be empty")
	}
	if h := ConvexHull([]Point{{1, 1}}); len(h.Vertices) != 1 {
		t.Error("hull of one point should have one vertex")
	}
	if h := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}}); len(h.Vertices) != 1 {
		t.Error("hull of duplicates should dedupe")
	}
	two := ConvexHull([]Point{{0, 0}, {1, 1}})
	if len(two.Vertices) != 2 || two.AreaKm2() != 0 {
		t.Error("hull of two points should be a zero-area segment")
	}
	collinear := ConvexHull([]Point{{0, 0}, {0.5, 0.5}, {1, 1}})
	if collinear.AreaKm2() > 1e-6 {
		t.Errorf("collinear hull area = %v", collinear.AreaKm2())
	}
}

// Property: every input point is inside or on the hull (with epsilon
// expansion via containment of slightly-shrunk points toward the
// centroid).
func TestConvexHullContainsInputs(t *testing.T) {
	r := stats.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{30 + r.Float64(), -117 + r.Float64()}
		}
		hull := ConvexHull(pts)
		if len(hull.Vertices) < 3 {
			continue
		}
		// Centroid of hull.
		var cx, cy float64
		for _, v := range hull.Vertices {
			cx += v.Lon
			cy += v.Lat
		}
		cx /= float64(len(hull.Vertices))
		cy /= float64(len(hull.Vertices))
		for _, p := range pts {
			shrunk := Point{
				Lat: p.Lat + (cy-p.Lat)*1e-9,
				Lon: p.Lon + (cx-p.Lon)*1e-9,
			}
			if !hull.Contains(shrunk) {
				t.Fatalf("trial %d: point %v escapes hull %v", trial, p, hull.Vertices)
			}
		}
	}
}

// Property: hull area >= area of any triangle of input points.
func TestConvexHullAreaDominates(t *testing.T) {
	r := stats.NewRNG(8)
	for trial := 0; trial < 30; trial++ {
		pts := make([]Point, 10)
		for i := range pts {
			pts[i] = Point{40 + r.Float64()*0.5, -100 + r.Float64()*0.5}
		}
		hull := ConvexHull(pts)
		ha := hull.AreaKm2()
		tri := NewPolygon([]Point{pts[0], pts[1], pts[2]})
		if tri.AreaKm2() > ha+1e-6 {
			t.Fatalf("triangle area %v exceeds hull area %v", tri.AreaKm2(), ha)
		}
	}
}

func TestConusPolygon(t *testing.T) {
	conus := ContiguousUS()
	area := conus.AreaKm2()
	if area < 7.2e6 || area > 9.2e6 {
		t.Fatalf("CONUS area = %.3g km², want within ~12%% of %.3g", area, ConusAreaKm2)
	}
	inside := []Point{
		{39.7392, -104.9903}, // Denver
		{41.8781, -87.6298},  // Chicago
		{32.7157, -117.1611}, // San Diego (coastal; simplified polygon must include it)
		{40.7128, -74.0060},  // New York
	}
	for _, p := range inside {
		if !conus.Contains(p) {
			t.Errorf("CONUS should contain %v", p)
		}
	}
	outside := []Point{
		{51.5074, -0.1278},   // London
		{19.4326, -99.1332},  // Mexico City
		{61.2181, -149.9003}, // Anchorage
		{21.3069, -157.8583}, // Honolulu
		{45.4215, -75.6972},  // Ottawa
	}
	for _, p := range outside {
		if conus.Contains(p) {
			t.Errorf("CONUS should not contain %v", p)
		}
	}
}
