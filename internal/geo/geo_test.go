package geo

import (
	"math"
	"testing"
	"testing/quick"

	"peoplesnet/internal/stats"
)

// Known city coordinates for distance sanity checks.
var (
	sanDiego = Point{32.7157, -117.1611}
	chicago  = Point{41.8781, -87.6298}
	london   = Point{51.5074, -0.1278}
	sydney   = Point{-33.8688, 151.2093}
)

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		a, b     Point
		wantKm   float64
		tolerate float64
	}{
		{sanDiego, chicago, 2785, 30},
		{sanDiego, london, 8779, 60},
		{london, sydney, 16994, 100},
		{sanDiego, sanDiego, 0, 0.001},
	}
	for _, c := range cases {
		got := HaversineKm(c.a, c.b)
		if math.Abs(got-c.wantKm) > c.tolerate {
			t.Errorf("Haversine(%v, %v) = %.1f km, want %.0f±%.0f", c.a, c.b, got, c.wantKm, c.tolerate)
		}
	}
}

func TestHaversineSymmetry(t *testing.T) {
	err := quick.Check(func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := Point{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		d1, d2 := HaversineKm(a, b), HaversineKm(b, a)
		return math.Abs(d1-d2) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	r := stats.NewRNG(1)
	for i := 0; i < 500; i++ {
		a := Point{r.Float64()*170 - 85, r.Float64()*360 - 180}
		b := Point{r.Float64()*170 - 85, r.Float64()*360 - 180}
		c := Point{r.Float64()*170 - 85, r.Float64()*360 - 180}
		if HaversineKm(a, c) > HaversineKm(a, b)+HaversineKm(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	r := stats.NewRNG(2)
	for i := 0; i < 500; i++ {
		start := Point{r.Float64()*120 - 60, r.Float64()*360 - 180}
		bearing := r.Float64() * 360
		dist := r.Float64() * 1000
		end := Destination(start, bearing, dist)
		got := HaversineKm(start, end)
		if math.Abs(got-dist) > dist*0.001+0.001 {
			t.Fatalf("Destination distance = %v, want %v (start=%v bearing=%v)", got, dist, start, bearing)
		}
	}
}

func TestDestinationNorth(t *testing.T) {
	p := Destination(Point{0, 0}, 0, 111.195)
	if math.Abs(p.Lat-1) > 0.01 || math.Abs(p.Lon) > 0.01 {
		t.Fatalf("1 degree north = %v", p)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	if b := InitialBearing(Point{0, 0}, Point{1, 0}); math.Abs(b) > 0.01 {
		t.Errorf("north bearing = %v", b)
	}
	if b := InitialBearing(Point{0, 0}, Point{0, 1}); math.Abs(b-90) > 0.01 {
		t.Errorf("east bearing = %v", b)
	}
	if b := InitialBearing(Point{0, 0}, Point{-1, 0}); math.Abs(b-180) > 0.01 {
		t.Errorf("south bearing = %v", b)
	}
	if b := InitialBearing(Point{0, 0}, Point{0, -1}); math.Abs(b-270) > 0.01 {
		t.Errorf("west bearing = %v", b)
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(Point{0, 0}, Point{0, 10})
	if math.Abs(m.Lat) > 0.001 || math.Abs(m.Lon-5) > 0.001 {
		t.Fatalf("midpoint = %v", m)
	}
	d1 := HaversineKm(sanDiego, Midpoint(sanDiego, chicago))
	d2 := HaversineKm(chicago, Midpoint(sanDiego, chicago))
	if math.Abs(d1-d2) > 1 {
		t.Fatalf("midpoint not equidistant: %v vs %v", d1, d2)
	}
}

func TestPointValidity(t *testing.T) {
	if !(Point{45, 45}).Valid() {
		t.Error("valid point rejected")
	}
	if (Point{91, 0}).Valid() || (Point{0, 181}).Valid() {
		t.Error("invalid point accepted")
	}
	if !(Point{}).IsZero() {
		t.Error("zero point not detected")
	}
	if (Point{0.1, 0}).IsZero() {
		t.Error("non-zero point detected as zero")
	}
}

func TestBoundingBox(t *testing.T) {
	b := BoundsOf([]Point{{1, 2}, {-3, 7}, {5, -1}})
	if b.MinLat != -3 || b.MaxLat != 5 || b.MinLon != -1 || b.MaxLon != 7 {
		t.Fatalf("bounds = %+v", b)
	}
	if !b.Contains(Point{0, 0}) {
		t.Error("box should contain origin")
	}
	if b.Contains(Point{10, 0}) {
		t.Error("box should not contain (10,0)")
	}
}

func TestBoundsOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BoundsOf(nil) did not panic")
		}
	}()
	BoundsOf(nil)
}
