// Package wire provides the primitive byte codec shared by the
// chain's binary block encoding and the ETL store's on-disk formats
// (segment files, index sidecars, write-ahead log).
//
// Reader never panics on malformed input: it carries a sticky error,
// returns zero values after the first failure, and bounds
// length-prefixed counts by the bytes remaining so corrupted inputs
// cannot drive huge allocations.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends primitive values to Buf.
type Writer struct{ Buf []byte }

func (w *Writer) U8(v uint8)       { w.Buf = append(w.Buf, v) }
func (w *Writer) Uvarint(v uint64) { w.Buf = binary.AppendUvarint(w.Buf, v) }
func (w *Writer) Varint(v int64)   { w.Buf = binary.AppendVarint(w.Buf, v) }
func (w *Writer) F64(v float64)    { w.Buf = binary.BigEndian.AppendUint64(w.Buf, math.Float64bits(v)) }

func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

func (w *Writer) Str(s string) {
	w.Uvarint(uint64(len(s)))
	w.Buf = append(w.Buf, s...)
}

func (w *Writer) Strs(ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.Str(s)
	}
}

// Bytes appends a length-prefixed byte slice. The ETL store's
// compressed posting lists travel through it as opaque blobs.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.Buf = append(w.Buf, b...)
}

// Reader consumes primitive values from a byte slice with a sticky
// error: after the first failure every read returns a zero value, so
// decode paths can defer a single error check.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Fail records an error if none is set yet.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.Fail(fmt.Errorf("truncated input at byte %d", r.off))
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.Fail(fmt.Errorf("bad uvarint at byte %d", r.off))
		return 0
	}
	r.off += n
	return v
}

func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.Fail(fmt.Errorf("bad varint at byte %d", r.off))
		return 0
	}
	r.off += n
	return v
}

func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.Fail(fmt.Errorf("truncated float at byte %d", r.off))
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *Reader) Bool() bool { return r.U8() != 0 }

func (r *Reader) Str() string {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Bytes reads a length-prefixed byte slice written by Writer.Bytes.
// The returned slice aliases the Reader's underlying buffer — callers
// that outlive the buffer must copy.
func (r *Reader) Bytes() []byte {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *Reader) Strs() []string {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.Str()
	}
	return out
}

// Count reads an element count and bounds it by the bytes remaining
// (each element occupies at least minBytes), so corrupted counts fail
// fast instead of driving huge allocations.
func (r *Reader) Count(minBytes int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if remain := len(r.buf) - r.off; v > uint64(remain/minBytes) {
		r.Fail(fmt.Errorf("count %d exceeds %d remaining bytes", v, remain))
		return 0
	}
	return int(v)
}
