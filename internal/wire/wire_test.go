package wire

import (
	"math"
	"strings"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0)
	w.U8(255)
	w.Uvarint(0)
	w.Uvarint(math.MaxUint64)
	w.Varint(0)
	w.Varint(math.MinInt64)
	w.Varint(math.MaxInt64)
	w.F64(0)
	w.F64(-108.5)
	w.F64(math.Inf(1))
	w.Bool(true)
	w.Bool(false)
	w.Str("")
	w.Str("hs-α £ \x00\xff")
	w.Strs(nil)
	w.Strs([]string{"eui-1", "", "eui-2"})
	w.Bytes(nil)
	w.Bytes([]byte{0x00, 0xff, 0x7f})

	r := NewReader(w.Buf)
	if got := r.U8(); got != 0 {
		t.Errorf("U8 = %d, want 0", got)
	}
	if got := r.U8(); got != 255 {
		t.Errorf("U8 = %d, want 255", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("Uvarint = %d, want MaxUint64", got)
	}
	for _, want := range []int64{0, math.MinInt64, math.MaxInt64} {
		if got := r.Varint(); got != want {
			t.Errorf("Varint = %d, want %d", got, want)
		}
	}
	for _, want := range []float64{0, -108.5, math.Inf(1)} {
		if got := r.F64(); got != want {
			t.Errorf("F64 = %g, want %g", got, want)
		}
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool pair did not round-trip as true, false")
	}
	if got := r.Str(); got != "" {
		t.Errorf("Str = %q, want empty", got)
	}
	if got := r.Str(); got != "hs-α £ \x00\xff" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Strs(); got != nil {
		t.Errorf("Strs = %v, want nil", got)
	}
	got := r.Strs()
	if len(got) != 3 || got[0] != "eui-1" || got[1] != "" || got[2] != "eui-2" {
		t.Errorf("Strs = %q", got)
	}
	if b := r.Bytes(); b != nil {
		t.Errorf("Bytes = %v, want nil", b)
	}
	if b := r.Bytes(); len(b) != 3 || b[0] != 0x00 || b[1] != 0xff || b[2] != 0x7f {
		t.Errorf("Bytes = %v", b)
	}
	if r.Err() != nil {
		t.Fatalf("round trip errored: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

// NaN payload bits must survive the trip even though NaN != NaN.
func TestF64NaNBits(t *testing.T) {
	bits := uint64(0x7ff800000000beef)
	var w Writer
	w.F64(math.Float64frombits(bits))
	r := NewReader(w.Buf)
	if got := math.Float64bits(r.F64()); got != bits || r.Err() != nil {
		t.Fatalf("NaN bits %#x, want %#x (err %v)", got, bits, r.Err())
	}
}

// The sticky error means reads past the first failure return zeroes
// and the original error survives.
func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{7})
	if got := r.U8(); got != 7 || r.Err() != nil {
		t.Fatalf("first read = %d, err %v", got, r.Err())
	}
	if got := r.U8(); got != 0 || r.Err() == nil {
		t.Fatal("read past end did not fail")
	}
	first := r.Err()
	_ = r.Uvarint()
	_ = r.Str()
	_ = r.F64()
	if r.Err() != first {
		t.Fatalf("sticky error replaced: %v → %v", first, r.Err())
	}
	if !strings.Contains(first.Error(), "truncated") {
		t.Fatalf("unexpected error text %q", first)
	}
}

func TestCountBoundsAllocation(t *testing.T) {
	var w Writer
	w.Uvarint(1 << 50)
	r := NewReader(w.Buf)
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("oversized count = %d, err %v; want 0 and error", n, r.Err())
	}
}

// wireOps is the op vocabulary FuzzWireRoundTrip scripts over; each
// op consumes a few script bytes for its value.
const wireOps = 8

// FuzzWireRoundTrip interprets the fuzz input as a script of typed
// writes, encodes them with Writer, then reads them back in order:
// every value must round-trip exactly with no bytes left over — for
// any script the fuzzer can invent.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte("\x02\xff\xff\xff\xff\xff\xff\xff\xff\x06\x03abc"))
	f.Fuzz(func(t *testing.T, script []byte) {
		type val struct {
			op byte
			u  uint64
			i  int64
			fb uint64 // F64 compared by bits so NaN payloads count
			s  string
			ss []string
		}
		take := func(pos *int, n int) []byte {
			if *pos+n > len(script) {
				n = len(script) - *pos
			}
			b := script[*pos : *pos+n]
			*pos += n
			return b
		}
		le := func(b []byte) (v uint64) {
			for i, x := range b {
				v |= uint64(x) << (8 * i)
			}
			return v
		}

		var vals []val
		var w Writer
		for pos := 0; pos < len(script); {
			v := val{op: script[pos] % wireOps}
			pos++
			switch v.op {
			case 0:
				v.u = le(take(&pos, 1))
				w.U8(uint8(v.u))
			case 1:
				v.u = le(take(&pos, 8))
				w.Uvarint(v.u)
			case 2:
				v.i = int64(le(take(&pos, 8)))
				w.Varint(v.i)
			case 3:
				v.fb = le(take(&pos, 8))
				w.F64(math.Float64frombits(v.fb))
			case 4:
				v.u = le(take(&pos, 1)) & 1
				w.Bool(v.u == 1)
			case 5:
				n := int(le(take(&pos, 1))) % 32
				v.s = string(take(&pos, n))
				w.Str(v.s)
			case 6:
				n := int(le(take(&pos, 1))) % 4
				for i := 0; i < n; i++ {
					m := int(le(take(&pos, 1))) % 8
					v.ss = append(v.ss, string(take(&pos, m)))
				}
				w.Strs(v.ss)
			case 7:
				n := int(le(take(&pos, 1))) % 32
				v.s = string(take(&pos, n))
				w.Bytes([]byte(v.s))
			}
			vals = append(vals, v)
		}

		r := NewReader(w.Buf)
		for i, v := range vals {
			switch v.op {
			case 0:
				if got := r.U8(); uint64(got) != v.u {
					t.Fatalf("op %d: U8 = %d, want %d", i, got, v.u)
				}
			case 1:
				if got := r.Uvarint(); got != v.u {
					t.Fatalf("op %d: Uvarint = %d, want %d", i, got, v.u)
				}
			case 2:
				if got := r.Varint(); got != v.i {
					t.Fatalf("op %d: Varint = %d, want %d", i, got, v.i)
				}
			case 3:
				if got := math.Float64bits(r.F64()); got != v.fb {
					t.Fatalf("op %d: F64 bits %#x, want %#x", i, got, v.fb)
				}
			case 4:
				if got := r.Bool(); got != (v.u == 1) {
					t.Fatalf("op %d: Bool = %v, want %v", i, got, v.u == 1)
				}
			case 5:
				if got := r.Str(); got != v.s {
					t.Fatalf("op %d: Str = %q, want %q", i, got, v.s)
				}
			case 6:
				got := r.Strs()
				if len(got) != len(v.ss) {
					t.Fatalf("op %d: Strs len %d, want %d", i, len(got), len(v.ss))
				}
				for j := range v.ss {
					if got[j] != v.ss[j] {
						t.Fatalf("op %d: Strs[%d] = %q, want %q", i, j, got[j], v.ss[j])
					}
				}
			case 7:
				if got := r.Bytes(); string(got) != v.s {
					t.Fatalf("op %d: Bytes = %q, want %q", i, got, v.s)
				}
			}
			if r.Err() != nil {
				t.Fatalf("op %d (%d): read errored on writer-produced bytes: %v", i, v.op, r.Err())
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left after reading every value back", r.Remaining())
		}
	})
}

// FuzzReaderNoPanic reads an arbitrary op sequence from arbitrary
// bytes: the Reader must never panic or over-allocate, only error.
func FuzzReaderNoPanic(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 5, 6, 3}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, ops, data []byte) {
		r := NewReader(data)
		for _, op := range ops {
			switch op % wireOps {
			case 0:
				r.U8()
			case 1:
				r.Uvarint()
			case 2:
				r.Varint()
			case 3:
				r.F64()
			case 4:
				r.Bool()
			case 5:
				r.Str()
			case 6:
				r.Strs()
			case 7:
				r.Bytes()
			}
		}
		if r.Remaining() < 0 || r.Remaining() > len(data) {
			t.Fatalf("Remaining() = %d out of [0, %d]", r.Remaining(), len(data))
		}
	})
}
