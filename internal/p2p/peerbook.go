// Package p2p models the Helium peer-to-peer swarm that §6.2 of the
// paper analyses: peer identities, the two peerbook listen-address
// formats (/ip4/… for publicly reachable hotspots and
// /p2p/…/p2p-circuit/… for NAT'd hotspots behind libp2p circuit
// relays), relay selection policies, and — for integration testing — a
// real TCP transport in which relays actually forward bytes between
// peers on the loopback interface.
package p2p

import (
	"crypto/sha256"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/stats"
)

// PeerID is a hotspot's p2p identity (derived from its chain address).
type PeerID string

// PeerIDFrom derives the p2p identity for a chain address.
func PeerIDFrom(chainAddr string) PeerID {
	sum := sha256.Sum256([]byte("p2p:" + chainAddr))
	return PeerID(fmt.Sprintf("13%x", sum[:16]))
}

// ListenAddr is one peerbook entry. Exactly one of the two formats the
// paper describes (§6.2):
//
//	/ip4/<addr>/tcp/<port>
//	/p2p/<relay>/p2p-circuit/p2p/<peer>
type ListenAddr struct {
	// Direct fields.
	IP   netip.Addr
	Port int
	// Relay fields.
	Relay PeerID
	Peer  PeerID
}

// Relayed reports whether the entry is a circuit-relay address.
func (a ListenAddr) Relayed() bool { return a.Relay != "" }

// String renders the canonical multiaddr form.
func (a ListenAddr) String() string {
	if a.Relayed() {
		return fmt.Sprintf("/p2p/%s/p2p-circuit/p2p/%s", a.Relay, a.Peer)
	}
	return fmt.Sprintf("/ip4/%s/tcp/%d", a.IP, a.Port)
}

// ParseListenAddr parses either multiaddr form.
func ParseListenAddr(s string) (ListenAddr, error) {
	parts := strings.Split(strings.TrimPrefix(s, "/"), "/")
	switch {
	case len(parts) == 4 && parts[0] == "ip4" && parts[2] == "tcp":
		ip, err := netip.ParseAddr(parts[1])
		if err != nil {
			return ListenAddr{}, fmt.Errorf("p2p: bad ip4 addr %q: %w", parts[1], err)
		}
		port, err := strconv.Atoi(parts[3])
		if err != nil || port < 1 || port > 65535 {
			return ListenAddr{}, fmt.Errorf("p2p: bad port %q", parts[3])
		}
		return ListenAddr{IP: ip, Port: port}, nil
	case len(parts) == 5 && parts[0] == "p2p" && parts[2] == "p2p-circuit" && parts[3] == "p2p":
		if parts[1] == "" || parts[4] == "" {
			return ListenAddr{}, fmt.Errorf("p2p: empty peer id in %q", s)
		}
		return ListenAddr{Relay: PeerID(parts[1]), Peer: PeerID(parts[4])}, nil
	default:
		return ListenAddr{}, fmt.Errorf("p2p: unrecognized multiaddr %q", s)
	}
}

// Entry is one hotspot's row in the peerbook.
type Entry struct {
	Peer     PeerID
	Addr     ListenAddr
	Location geo.Point // asserted location, used by the distance analyses
}

// Peerbook is the swarm-wide address registry the DeWi database
// mirrors and the paper scrapes.
type Peerbook struct {
	mu      sync.RWMutex
	entries map[PeerID]Entry
}

// NewPeerbook returns an empty peerbook.
func NewPeerbook() *Peerbook {
	return &Peerbook{entries: make(map[PeerID]Entry)}
}

// Put inserts or replaces an entry.
func (pb *Peerbook) Put(e Entry) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	pb.entries[e.Peer] = e
}

// Get returns the entry for a peer.
func (pb *Peerbook) Get(p PeerID) (Entry, bool) {
	pb.mu.RLock()
	defer pb.mu.RUnlock()
	e, ok := pb.entries[p]
	return e, ok
}

// Len returns the number of entries.
func (pb *Peerbook) Len() int {
	pb.mu.RLock()
	defer pb.mu.RUnlock()
	return len(pb.entries)
}

// Entries returns all rows sorted by peer ID.
func (pb *Peerbook) Entries() []Entry {
	pb.mu.RLock()
	defer pb.mu.RUnlock()
	out := make([]Entry, 0, len(pb.entries))
	for _, e := range pb.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// RelaySelector chooses a relay for a NAT'd peer from the public
// candidates.
type RelaySelector interface {
	// Select returns the chosen relay for peer (located at loc).
	Select(loc geo.Point, candidates []Entry, rng *stats.RNG) (PeerID, bool)
}

// RandomRelay reproduces the production behaviour the paper
// establishes in Fig 11: peers choose relays uniformly at random with
// no geospatial consideration.
type RandomRelay struct{}

// Select implements RelaySelector.
func (RandomRelay) Select(_ geo.Point, candidates []Entry, rng *stats.RNG) (PeerID, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	return candidates[rng.Intn(len(candidates))].Peer, true
}

// NearestRelay is the ablation policy: choose among the k nearest
// public peers (k > 1 spreads load so one relay does not capture a
// whole neighbourhood — the local-robustness concern in §6.2).
type NearestRelay struct{ K int }

// Select implements RelaySelector.
func (n NearestRelay) Select(loc geo.Point, candidates []Entry, rng *stats.RNG) (PeerID, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	k := n.K
	if k < 1 {
		k = 1
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	sorted := append([]Entry(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool {
		return geo.HaversineKm(loc, sorted[i].Location) < geo.HaversineKm(loc, sorted[j].Location)
	})
	return sorted[rng.Intn(k)].Peer, true
}

// Stats produced by AnalyzeRelays: the inputs to Fig 10 and Fig 11.
type RelayStats struct {
	Total       int              // peers with non-empty listen addrs
	Relayed     int              // peers on circuit addresses
	FanOut      *stats.Histogram // peers per relay (Fig 10)
	DistancesKm *stats.CDF       // relay→peer distances (Fig 11a)
	MaxFanOut   int
}

// RelayedFraction returns Relayed/Total.
func (s RelayStats) RelayedFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Relayed) / float64(s.Total)
}

// AnalyzeRelays computes relay prevalence, fan-out, and relay→peer
// distances from the peerbook.
func AnalyzeRelays(pb *Peerbook) RelayStats {
	entries := pb.Entries()
	st := RelayStats{
		FanOut:      stats.NewHistogram(),
		DistancesKm: &stats.CDF{},
	}
	perRelay := make(map[PeerID]int)
	for _, e := range entries {
		st.Total++
		if !e.Addr.Relayed() {
			continue
		}
		st.Relayed++
		perRelay[e.Addr.Relay]++
		if relayEntry, ok := pb.Get(e.Addr.Relay); ok {
			if !e.Location.IsZero() && !relayEntry.Location.IsZero() {
				st.DistancesKm.Add(geo.HaversineKm(e.Location, relayEntry.Location))
			}
		}
	}
	for _, n := range perRelay {
		st.FanOut.Observe(n)
		if n > st.MaxFanOut {
			st.MaxFanOut = n
		}
	}
	return st
}

// RandomizedAssignment reassigns every relayed peer to a uniformly
// random public relay and returns the resulting distance CDF. Fig 11b
// runs this five times to show the actual assignment is statistically
// indistinguishable from random.
func RandomizedAssignment(pb *Peerbook, rng *stats.RNG) *stats.CDF {
	entries := pb.Entries()
	var public []Entry
	var relayed []Entry
	for _, e := range entries {
		if e.Addr.Relayed() {
			relayed = append(relayed, e)
		} else {
			public = append(public, e)
		}
	}
	cdf := &stats.CDF{}
	if len(public) == 0 {
		return cdf
	}
	for _, e := range relayed {
		r := public[rng.Intn(len(public))]
		if !e.Location.IsZero() && !r.Location.IsZero() {
			cdf.Add(geo.HaversineKm(e.Location, r.Location))
		}
	}
	return cdf
}
