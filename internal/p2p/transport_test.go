package p2p

import (
	"bytes"
	"testing"
	"time"
)

func recvMessage(t *testing.T, n *Node) Message {
	t.Helper()
	select {
	case m := <-n.Inbox():
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
		return Message{}
	}
}

func TestDirectSend(t *testing.T) {
	a := NewNode("13a")
	b := NewNode("13b")
	defer a.Close()
	defer b.Close()

	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(addr, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m := recvMessage(t, b)
	if m.From != "13a" || !bytes.Equal(m.Payload, []byte("hello")) || m.ViaRelay {
		t.Fatalf("message = %+v", m)
	}
}

func TestCircuitRelay(t *testing.T) {
	relay := NewNode("13relay")
	nated := NewNode("13nat") // never listens: behind NAT
	sender := NewNode("13sender")
	defer relay.Close()
	defer nated.Close()
	defer sender.Close()

	relayAddr, err := relay.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := nated.RegisterWithRelay(relayAddr); err != nil {
		t.Fatal(err)
	}
	// Give the relay a moment to record the registration.
	deadline := time.Now().Add(2 * time.Second)
	for relay.RelayedCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if relay.RelayedCount() != 1 {
		t.Fatalf("relay count = %d", relay.RelayedCount())
	}

	if err := sender.SendViaRelay(relayAddr, "13nat", []byte("via-circuit")); err != nil {
		t.Fatal(err)
	}
	m := recvMessage(t, nated)
	if m.From != "13sender" || !bytes.Equal(m.Payload, []byte("via-circuit")) || !m.ViaRelay {
		t.Fatalf("relayed message = %+v", m)
	}
}

func TestRelayRefusesUnknownTarget(t *testing.T) {
	relay := NewNode("13relay")
	sender := NewNode("13sender")
	defer relay.Close()
	defer sender.Close()

	relayAddr, err := relay.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.SendViaRelay(relayAddr, "13ghost", []byte("x")); err == nil {
		t.Fatal("circuit to unregistered peer succeeded")
	}
}

func TestRelayFanOutMany(t *testing.T) {
	relay := NewNode("13relay")
	defer relay.Close()
	relayAddr, err := relay.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(PeerID(string(rune('a' + i))))
		defer nodes[i].Close()
		if err := nodes[i].RegisterWithRelay(relayAddr); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for relay.RelayedCount() < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if relay.RelayedCount() != n {
		t.Fatalf("fan-out = %d, want %d", relay.RelayedCount(), n)
	}
	// Every registered node is reachable through the circuit.
	sender := NewNode("13sender")
	defer sender.Close()
	for i := range nodes {
		if err := sender.SendViaRelay(relayAddr, nodes[i].ID, []byte{byte(i)}); err != nil {
			t.Fatalf("send to node %d: %v", i, err)
		}
	}
	for i := range nodes {
		m := recvMessage(t, nodes[i])
		if !m.ViaRelay || len(m.Payload) != 1 || m.Payload[0] != byte(i) {
			t.Fatalf("node %d got %+v", i, m)
		}
	}
}

func TestRelayDeregistrationOnDisconnect(t *testing.T) {
	relay := NewNode("13relay")
	defer relay.Close()
	relayAddr, _ := relay.Listen("127.0.0.1:0")

	nated := NewNode("13nat")
	if err := nated.RegisterWithRelay(relayAddr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for relay.RelayedCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	nated.Close()
	deadline = time.Now().Add(2 * time.Second)
	for relay.RelayedCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if relay.RelayedCount() != 0 {
		t.Fatal("relay kept a dead registration")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	n := NewNode("13x")
	n.Listen("127.0.0.1:0")
	n.Close()
	n.Close() // must not panic or deadlock
}
