package p2p

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// This file implements a miniature but real p2p transport over TCP:
// nodes listen, exchange identities, relay-register, and forward
// application messages through circuit relays, mirroring how a NAT'd
// Helium hotspot stays reachable (§6.2). Integration tests run dozens
// of nodes on the loopback interface; the simulator uses only the
// peerbook model above, so large worlds never open sockets.
//
// Wire protocol: length-prefixed JSON envelopes.
//
//	HELLO    {from}                 — identity exchange on connect
//	REGISTER {from}                 — a NAT'd peer asks to be relayed
//	DIAL     {target}               — ask a relay to bridge to target
//	RELAYED  {from, payload}        — payload forwarded via circuit
//	MSG      {from, payload}        — direct application payload
//	ERROR    {reason}

type envelope struct {
	Kind    string `json:"kind"`
	From    PeerID `json:"from,omitempty"`
	Target  PeerID `json:"target,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

func writeEnvelope(w io.Writer, e envelope) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(raw)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// maxEnvelopeSize bounds a frame; LoRa payloads are tiny, so anything
// large is a protocol error, not data.
const maxEnvelopeSize = 1 << 20

func readEnvelope(r *bufio.Reader) (envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return envelope{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxEnvelopeSize {
		return envelope{}, fmt.Errorf("p2p: envelope of %d bytes exceeds limit", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return envelope{}, err
	}
	var e envelope
	if err := json.Unmarshal(raw, &e); err != nil {
		return envelope{}, err
	}
	return e, nil
}

// Message is an application payload delivered to a node.
type Message struct {
	From    PeerID
	Payload []byte
	// ViaRelay is set when the message arrived through a circuit.
	ViaRelay bool
}

// Node is one live p2p participant. Public nodes listen on TCP and can
// serve as circuit relays; NAT'd nodes (no listener) stay reachable by
// registering with a relay.
type Node struct {
	ID PeerID

	// clock drives transport deadlines and test waits; set once at
	// construction (SystemClock) or via SetClock before the node is
	// used, never mutated concurrently.
	clock Clock

	mu        sync.Mutex
	ln        net.Listener
	relayed   map[PeerID]net.Conn // peers registered through us
	relayConn net.Conn            // our outbound registration, if NAT'd
	pb        *Peerbook           // gossip state (AttachPeerbook)
	inbox     chan Message
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewNode creates a node with the given identity, running on the
// system clock.
func NewNode(id PeerID) *Node {
	return &Node{
		ID:      id,
		clock:   SystemClock{},
		relayed: make(map[PeerID]net.Conn),
		inbox:   make(chan Message, 256),
		closed:  make(chan struct{}),
	}
}

// SetClock replaces the node's clock. Call before the node is used;
// the clock is read concurrently afterwards.
func (n *Node) SetClock(c Clock) { n.clock = c }

// Inbox delivers application messages received by the node.
func (n *Node) Inbox() <-chan Message { return n.inbox }

// Listen starts accepting connections on addr ("127.0.0.1:0" in
// tests) and returns the bound address.
func (n *Node) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn handles one inbound connection for its lifetime.
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	r := bufio.NewReader(conn)
	var remote PeerID
	for {
		e, err := readEnvelope(r)
		if err != nil {
			if remote != "" {
				n.mu.Lock()
				if n.relayed[remote] == conn {
					delete(n.relayed, remote)
				}
				n.mu.Unlock()
			}
			return
		}
		switch e.Kind {
		case "HELLO":
			remote = e.From
		case "REGISTER":
			remote = e.From
			n.mu.Lock()
			n.relayed[e.From] = conn
			n.mu.Unlock()
		case "MSG":
			n.deliver(Message{From: e.From, Payload: e.Payload})
		case "GOSSIP":
			n.mergeGossip(e.Payload)
		case "RELAYED":
			n.deliver(Message{From: e.From, Payload: e.Payload, ViaRelay: true})
		case "DIAL":
			// Bridge: forward the payload to the registered target.
			n.mu.Lock()
			target := n.relayed[e.Target]
			n.mu.Unlock()
			if target == nil {
				_ = writeEnvelope(conn, envelope{Kind: "ERROR", Reason: "no such peer registered"})
				continue
			}
			if err := writeEnvelope(target, envelope{Kind: "RELAYED", From: e.From, Payload: e.Payload}); err != nil {
				_ = writeEnvelope(conn, envelope{Kind: "ERROR", Reason: "relay write failed"})
			}
		}
	}
}

func (n *Node) deliver(m Message) {
	select {
	case n.inbox <- m:
	case <-n.closed:
	}
}

// dialTimeout bounds connection setup in tests.
const dialTimeout = 5 * time.Second

// Send delivers payload directly to the public address addr.
func (n *Node) Send(addr string, payload []byte) error {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := writeEnvelope(conn, envelope{Kind: "HELLO", From: n.ID}); err != nil {
		return err
	}
	return writeEnvelope(conn, envelope{Kind: "MSG", From: n.ID, Payload: payload})
}

// RegisterWithRelay opens a persistent connection to a relay and
// registers this (NAT'd) node for inbound circuit delivery. Messages
// relayed to us arrive on the Inbox.
func (n *Node) RegisterWithRelay(relayAddr string) error {
	conn, err := net.DialTimeout("tcp", relayAddr, dialTimeout)
	if err != nil {
		return err
	}
	if err := writeEnvelope(conn, envelope{Kind: "REGISTER", From: n.ID}); err != nil {
		conn.Close()
		return err
	}
	n.mu.Lock()
	old := n.relayConn
	n.relayConn = conn
	n.mu.Unlock()
	if old != nil {
		old.Close()
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		r := bufio.NewReader(conn)
		for {
			e, err := readEnvelope(r)
			if err != nil {
				return
			}
			if e.Kind == "RELAYED" {
				n.deliver(Message{From: e.From, Payload: e.Payload, ViaRelay: true})
			}
		}
	}()
	return nil
}

// ErrRelayRefused is returned when the relay reports a bridge failure.
var ErrRelayRefused = errors.New("p2p: relay refused circuit")

// SendViaRelay asks the relay at relayAddr to forward payload to the
// registered target peer.
func (n *Node) SendViaRelay(relayAddr string, target PeerID, payload []byte) error {
	conn, err := net.DialTimeout("tcp", relayAddr, dialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := writeEnvelope(conn, envelope{Kind: "HELLO", From: n.ID}); err != nil {
		return err
	}
	if err := writeEnvelope(conn, envelope{Kind: "DIAL", From: n.ID, Target: target, Payload: payload}); err != nil {
		return err
	}
	// A successful bridge sends nothing back; errors come as ERROR.
	// Poll briefly for an error frame.
	conn.SetReadDeadline(n.clock.Now().Add(50 * time.Millisecond))
	r := bufio.NewReader(conn)
	if e, err := readEnvelope(r); err == nil && e.Kind == "ERROR" {
		return fmt.Errorf("%w: %s", ErrRelayRefused, e.Reason)
	}
	return nil
}

// RelayedCount returns how many peers are currently registered through
// this node (its Fig 10 fan-out).
func (n *Node) RelayedCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.relayed)
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.mu.Lock()
		if n.ln != nil {
			n.ln.Close()
		}
		if n.relayConn != nil {
			n.relayConn.Close()
		}
		for _, c := range n.relayed {
			c.Close()
		}
		n.mu.Unlock()
		n.wg.Wait()
	})
}
