package p2p

import (
	"net/netip"
	"testing"
	"time"

	"peoplesnet/internal/geo"
)

func entryFor(i int) Entry {
	id := PeerIDFrom("gossip-peer-" + string(rune('a'+i)))
	return Entry{
		Peer:     id,
		Addr:     ListenAddr{IP: netip.AddrFrom4([4]byte{84, 0, byte(i), 1}), Port: 44158},
		Location: geo.Point{Lat: 30 + float64(i), Lon: -100 - float64(i)},
	}
}

func TestGossipMergesUnknownPeers(t *testing.T) {
	a := NewNode("13a")
	b := NewNode("13b")
	defer a.Close()
	defer b.Close()

	pbA := NewPeerbook()
	for i := 0; i < 8; i++ {
		pbA.Put(entryFor(i))
	}
	a.AttachPeerbook(pbA)

	pbB := NewPeerbook()
	pbB.Put(entryFor(0)) // one overlap
	b.AttachPeerbook(pbB)

	addr, err := b.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.GossipTo(addr, 0); err != nil {
		t.Fatal(err)
	}
	if !b.WaitPeerbookSize(8, 3*time.Second) {
		t.Fatalf("peerbook only reached %d entries", pbB.Len())
	}
	// Locations survived the wire format.
	got, ok := pbB.Get(entryFor(3).Peer)
	if !ok || got.Location.Lat != 33 {
		t.Fatalf("merged entry = %+v", got)
	}
}

func TestGossipFirstSeenWins(t *testing.T) {
	a := NewNode("13a")
	b := NewNode("13b")
	defer a.Close()
	defer b.Close()

	pbA := NewPeerbook()
	e := entryFor(1)
	e.Location = geo.Point{Lat: 99, Lon: 99} // conflicting claim
	pbA.Put(e)
	a.AttachPeerbook(pbA)

	pbB := NewPeerbook()
	pbB.Put(entryFor(1)) // existing view
	b.AttachPeerbook(pbB)

	addr, _ := b.Listen("127.0.0.1:0")
	if err := a.GossipTo(addr, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	got, _ := pbB.Get(entryFor(1).Peer)
	if got.Location.Lat != 31 {
		t.Fatalf("existing entry overwritten: %+v", got)
	}
}

func TestGossipChainConvergence(t *testing.T) {
	// a knows everything; gossip a→b, then b→c: c converges without
	// ever talking to a.
	nodes := make([]*Node, 3)
	books := make([]*Peerbook, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		nodes[i] = NewNode(PeerID(string(rune('x' + i))))
		defer nodes[i].Close()
		books[i] = NewPeerbook()
		nodes[i].AttachPeerbook(books[i])
		var err error
		addrs[i], err = nodes[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		books[0].Put(entryFor(i))
	}
	if err := nodes[0].GossipTo(addrs[1], 0); err != nil {
		t.Fatal(err)
	}
	if !nodes[1].WaitPeerbookSize(10, 3*time.Second) {
		t.Fatal("b did not converge")
	}
	if err := nodes[1].GossipTo(addrs[2], 0); err != nil {
		t.Fatal(err)
	}
	if !nodes[2].WaitPeerbookSize(10, 3*time.Second) {
		t.Fatal("c did not converge")
	}
}

func TestGossipWithoutPeerbook(t *testing.T) {
	a := NewNode("13a")
	defer a.Close()
	if err := a.GossipTo("127.0.0.1:1", 0); err == nil {
		t.Fatal("gossip without peerbook succeeded")
	}
	// Receiving gossip without a peerbook must not panic.
	b := NewNode("13b")
	defer b.Close()
	addr, _ := b.Listen("127.0.0.1:0")
	src := NewNode("13src")
	defer src.Close()
	src.AttachPeerbook(NewPeerbook())
	if err := src.GossipTo(addr, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
}

func TestGossipBatchLimit(t *testing.T) {
	a := NewNode("13a")
	b := NewNode("13b")
	defer a.Close()
	defer b.Close()
	pbA := NewPeerbook()
	for i := 0; i < 10; i++ {
		pbA.Put(entryFor(i))
	}
	a.AttachPeerbook(pbA)
	pbB := NewPeerbook()
	b.AttachPeerbook(pbB)
	addr, _ := b.Listen("127.0.0.1:0")
	if err := a.GossipTo(addr, 4); err != nil {
		t.Fatal(err)
	}
	if !b.WaitPeerbookSize(4, 3*time.Second) {
		t.Fatal("batch not delivered")
	}
	time.Sleep(50 * time.Millisecond)
	if pbB.Len() != 4 {
		t.Fatalf("batch limit ignored: %d entries", pbB.Len())
	}
}
