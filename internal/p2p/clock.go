package p2p

import "time"

// Clock abstracts the wall clock so transport deadlines and test waits
// can be driven deterministically. Production nodes run on SystemClock;
// tests inject a fake to make timing reproducible. This is the one
// sanctioned real-time boundary in the package — everything else must
// go through an injected Clock, which is what the determinism analyzer
// in internal/analysis enforces.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// SystemClock is the production Clock: the process wall clock.
type SystemClock struct{}

// Now returns the current wall-clock time.
func (SystemClock) Now() time.Time {
	return time.Now() //lint:allow determinism -- the single sanctioned wall-clock read; everything else injects Clock
}

// Sleep pauses the calling goroutine.
func (SystemClock) Sleep(d time.Duration) { time.Sleep(d) }
