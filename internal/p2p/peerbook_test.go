package p2p

import (
	"net/netip"
	"testing"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/stats"
)

func TestPeerIDDeterministic(t *testing.T) {
	if PeerIDFrom("addr1") != PeerIDFrom("addr1") {
		t.Fatal("peer id not deterministic")
	}
	if PeerIDFrom("addr1") == PeerIDFrom("addr2") {
		t.Fatal("peer id collision")
	}
}

func TestListenAddrRoundTrip(t *testing.T) {
	direct := ListenAddr{IP: netip.MustParseAddr("84.0.1.2"), Port: 44158}
	if direct.Relayed() {
		t.Fatal("direct addr marked relayed")
	}
	s := direct.String()
	if s != "/ip4/84.0.1.2/tcp/44158" {
		t.Fatalf("direct string = %q", s)
	}
	back, err := ParseListenAddr(s)
	if err != nil || back != direct {
		t.Fatalf("round trip = %+v, %v", back, err)
	}

	relay := ListenAddr{Relay: "13aa", Peer: "13bb"}
	if !relay.Relayed() {
		t.Fatal("relay addr not marked relayed")
	}
	rs := relay.String()
	if rs != "/p2p/13aa/p2p-circuit/p2p/13bb" {
		t.Fatalf("relay string = %q", rs)
	}
	back2, err := ParseListenAddr(rs)
	if err != nil || back2 != relay {
		t.Fatalf("relay round trip = %+v, %v", back2, err)
	}
}

func TestParseListenAddrErrors(t *testing.T) {
	bad := []string{
		"",
		"/ip4/999.1.1.1/tcp/44158",
		"/ip4/84.0.0.1/tcp/zero",
		"/ip4/84.0.0.1/tcp/0",
		"/ip4/84.0.0.1/udp/44158",
		"/p2p//p2p-circuit/p2p/13bb",
		"/p2p/13aa/p2p-circuit/p2p/",
		"/p2p/13aa/circuit/p2p/13bb",
		"/dns4/example.com/tcp/1",
	}
	for _, s := range bad {
		if _, err := ParseListenAddr(s); err == nil {
			t.Fatalf("parsed invalid multiaddr %q", s)
		}
	}
}

func TestPeerbookBasics(t *testing.T) {
	pb := NewPeerbook()
	e := Entry{Peer: "13x", Addr: ListenAddr{IP: netip.MustParseAddr("84.0.0.1"), Port: 44158}}
	pb.Put(e)
	if pb.Len() != 1 {
		t.Fatal("len wrong")
	}
	got, ok := pb.Get("13x")
	if !ok || got.Peer != "13x" {
		t.Fatal("get failed")
	}
	if _, ok := pb.Get("nope"); ok {
		t.Fatal("missing peer found")
	}
	// Replacement, not duplication.
	pb.Put(e)
	if pb.Len() != 1 {
		t.Fatal("put duplicated")
	}
}

// buildSwarm creates publicN public peers scattered over CONUS-ish
// coordinates and relayedN NAT'd peers assigned via sel.
func buildSwarm(publicN, relayedN int, sel RelaySelector, rng *stats.RNG) *Peerbook {
	pb := NewPeerbook()
	var public []Entry
	for i := 0; i < publicN; i++ {
		e := Entry{
			Peer: PeerIDFrom(string(rune('A'+i%26)) + string(rune(i))),
			Addr: ListenAddr{IP: netip.AddrFrom4([4]byte{84, byte(i >> 8), byte(i), 1}), Port: 44158},
			Location: geo.Point{
				Lat: 30 + rng.Float64()*15,
				Lon: -120 + rng.Float64()*45,
			},
		}
		public = append(public, e)
		pb.Put(e)
	}
	for i := 0; i < relayedN; i++ {
		loc := geo.Point{Lat: 30 + rng.Float64()*15, Lon: -120 + rng.Float64()*45}
		id := PeerIDFrom("nat" + string(rune(i)) + string(rune(i>>8)))
		relay, ok := sel.Select(loc, public, rng)
		if !ok {
			continue
		}
		pb.Put(Entry{
			Peer:     id,
			Addr:     ListenAddr{Relay: relay, Peer: id},
			Location: loc,
		})
	}
	return pb
}

func TestAnalyzeRelays(t *testing.T) {
	rng := stats.NewRNG(1)
	pb := buildSwarm(200, 250, RandomRelay{}, rng)
	st := AnalyzeRelays(pb)
	if st.Total != 450 {
		t.Fatalf("total = %d", st.Total)
	}
	if st.Relayed != 250 {
		t.Fatalf("relayed = %d", st.Relayed)
	}
	frac := st.RelayedFraction()
	if frac < 0.55 || frac > 0.56 {
		t.Fatalf("relayed fraction = %v", frac)
	}
	if st.DistancesKm.N() == 0 {
		t.Fatal("no distances recorded")
	}
	if st.FanOut.Total() == 0 || st.MaxFanOut < 1 {
		t.Fatal("fan-out empty")
	}
}

func TestRandomVsNearestDistances(t *testing.T) {
	rng := stats.NewRNG(2)
	random := AnalyzeRelays(buildSwarm(300, 300, RandomRelay{}, rng))
	nearest := AnalyzeRelays(buildSwarm(300, 300, NearestRelay{K: 1}, rng))
	if nearest.DistancesKm.Median() >= random.DistancesKm.Median() {
		t.Fatalf("nearest median %v should beat random median %v",
			nearest.DistancesKm.Median(), random.DistancesKm.Median())
	}
	// Nearest-1 should be drastically shorter.
	if nearest.DistancesKm.Median() > random.DistancesKm.Median()/3 {
		t.Fatalf("nearest not dramatically shorter: %v vs %v",
			nearest.DistancesKm.Median(), random.DistancesKm.Median())
	}
}

func TestRandomizedAssignmentMatchesRandomPolicy(t *testing.T) {
	// Fig 11's argument: when the actual policy is random, the
	// observed distance CDF is statistically indistinguishable from
	// random reassignments (small KS statistic).
	rng := stats.NewRNG(3)
	pb := buildSwarm(300, 500, RandomRelay{}, rng)
	actual := AnalyzeRelays(pb).DistancesKm
	sim := RandomizedAssignment(pb, rng)
	if d := actual.KolmogorovSmirnov(sim); d > 0.1 {
		t.Fatalf("KS between actual-random and simulated-random = %v", d)
	}
	// And when the actual policy is nearest, the KS must be large.
	pbN := buildSwarm(300, 500, NearestRelay{K: 1}, rng)
	actualN := AnalyzeRelays(pbN).DistancesKm
	simN := RandomizedAssignment(pbN, rng)
	if d := actualN.KolmogorovSmirnov(simN); d < 0.3 {
		t.Fatalf("KS between nearest and random = %v, want large", d)
	}
}

func TestSelectorEdgeCases(t *testing.T) {
	rng := stats.NewRNG(4)
	if _, ok := (RandomRelay{}).Select(geo.Point{}, nil, rng); ok {
		t.Fatal("random selector returned relay with no candidates")
	}
	if _, ok := (NearestRelay{K: 3}).Select(geo.Point{}, nil, rng); ok {
		t.Fatal("nearest selector returned relay with no candidates")
	}
	one := []Entry{{Peer: "13only"}}
	if got, ok := (NearestRelay{K: 10}).Select(geo.Point{}, one, rng); !ok || got != "13only" {
		t.Fatal("nearest selector with k > candidates failed")
	}
	if got, ok := (NearestRelay{K: 0}).Select(geo.Point{}, one, rng); !ok || got != "13only" {
		t.Fatal("nearest selector with k=0 should clamp to 1")
	}
}

func TestRandomizedAssignmentNoPublic(t *testing.T) {
	pb := NewPeerbook()
	pb.Put(Entry{Peer: "13a", Addr: ListenAddr{Relay: "13r", Peer: "13a"}})
	cdf := RandomizedAssignment(pb, stats.NewRNG(5))
	if cdf.N() != 0 {
		t.Fatal("assignment with no public peers should be empty")
	}
}
