package p2p

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/stats"
)

// Peerbook gossip: the anti-entropy exchange that keeps every miner's
// view of the swarm converging (the DeWi database the paper scrapes is
// one such convergent view). A node pushes a batch of its peerbook
// rows to a peer; the receiver merges anything it hasn't seen.
//
// Wire form: a GOSSIP envelope whose payload is a JSON array of
// gossipEntry rows (multiaddrs as strings, exactly the formats §6.2
// parses).

type gossipEntry struct {
	Peer string  `json:"peer"`
	Addr string  `json:"addr"`
	Lat  float64 `json:"lat"`
	Lon  float64 `json:"lon"`
}

// AttachPeerbook gives the node a peerbook to serve and merge gossip
// into. Must be called before gossip use.
func (n *Node) AttachPeerbook(pb *Peerbook) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pb = pb
}

// GossipTo pushes up to batch entries of this node's peerbook to the
// peer listening at addr.
func (n *Node) GossipTo(addr string, batch int) error {
	n.mu.Lock()
	pb := n.pb
	n.mu.Unlock()
	if pb == nil {
		return fmt.Errorf("p2p: no peerbook attached")
	}
	entries := pb.Entries()
	if batch > 0 && len(entries) > batch {
		entries = entries[:batch]
	}
	wire := make([]gossipEntry, 0, len(entries))
	for _, e := range entries {
		wire = append(wire, gossipEntry{
			Peer: string(e.Peer),
			Addr: e.Addr.String(),
			Lat:  e.Location.Lat,
			Lon:  e.Location.Lon,
		})
	}
	payload, err := json.Marshal(wire)
	if err != nil {
		return err
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := writeEnvelope(conn, envelope{Kind: "HELLO", From: n.ID}); err != nil {
		return err
	}
	return writeEnvelope(conn, envelope{Kind: "GOSSIP", From: n.ID, Payload: payload})
}

// mergeGossip folds received rows into the node's peerbook. Unknown
// peers are added; known peers keep their existing entry (first-seen
// wins, which is enough for anti-entropy convergence in tests).
func (n *Node) mergeGossip(payload []byte) {
	n.mu.Lock()
	pb := n.pb
	n.mu.Unlock()
	if pb == nil {
		return
	}
	var rows []gossipEntry
	if err := json.Unmarshal(payload, &rows); err != nil {
		return
	}
	for _, r := range rows {
		if r.Peer == "" {
			continue
		}
		if _, known := pb.Get(PeerID(r.Peer)); known {
			continue
		}
		addr, err := ParseListenAddr(r.Addr)
		if err != nil {
			continue
		}
		pb.Put(Entry{
			Peer:     PeerID(r.Peer),
			Addr:     addr,
			Location: geo.Point{Lat: r.Lat, Lon: r.Lon},
		})
	}
}

// GossipRounds drives a deterministic anti-entropy schedule over a set
// of live nodes: each round, every node — visited in a seeded-random
// order — pushes up to batch rows of its peerbook to one
// seeded-randomly chosen peer. addrs[i] is the dial address of
// nodes[i]. The schedule (who gossips to whom, in which order) is a
// pure function of the RNG stream, so two runs with equal seeds
// converge to identical peer books; peerbook merges are first-seen-
// wins and every node carries consistent rows, so delivery timing
// cannot change the converged contents.
func GossipRounds(nodes []*Node, addrs []string, rounds, batch int, rng *stats.RNG) error {
	if len(nodes) != len(addrs) {
		return fmt.Errorf("p2p: %d nodes but %d addrs", len(nodes), len(addrs))
	}
	if len(nodes) < 2 {
		return nil
	}
	for r := 0; r < rounds; r++ {
		for _, i := range rng.Perm(len(nodes)) {
			j := rng.Intn(len(nodes) - 1)
			if j >= i {
				j++ // uniform over peers other than self
			}
			if err := nodes[i].GossipTo(addrs[j], batch); err != nil {
				return fmt.Errorf("p2p: gossip round %d, node %d -> %d: %w", r, i, j, err)
			}
		}
	}
	return nil
}

// WaitPeerbookSize polls until the node's peerbook reaches size n or
// the timeout passes, for tests. The node's clock paces the poll.
func (node *Node) WaitPeerbookSize(n int, timeout time.Duration) bool {
	deadline := node.clock.Now().Add(timeout)
	for node.clock.Now().Before(deadline) {
		node.mu.Lock()
		pb := node.pb
		node.mu.Unlock()
		if pb != nil && pb.Len() >= n {
			return true
		}
		node.clock.Sleep(5 * time.Millisecond)
	}
	return false
}
