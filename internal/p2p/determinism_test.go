package p2p

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/stats"
)

// runGossipWorld spins up n live TCP nodes, seeds each peerbook with
// the node's own row (logical multiaddr and location derived from the
// RNG, so the books' contents are a pure function of the seed), runs a
// seeded gossip schedule to convergence, and returns every node's
// final peerbook rows.
func runGossipWorld(t *testing.T, seed uint64, n int) [][]Entry {
	t.Helper()
	rng := stats.NewRNG(seed)

	nodes := make([]*Node, n)
	addrs := make([]string, n) // live loopback dial addresses
	for i := range nodes {
		nodes[i] = NewNode(PeerIDFrom(fmt.Sprintf("gossip-world-%d", i)))
		addr, err := nodes[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		addrs[i] = addr
		defer nodes[i].Close()

		// The peerbook row carries a logical address, not the
		// OS-assigned TCP port, so converged books are comparable
		// across runs.
		logical, err := ParseListenAddr(fmt.Sprintf("/ip4/10.0.0.%d/tcp/%d", i+1, 4000+i))
		if err != nil {
			t.Fatalf("logical addr %d: %v", i, err)
		}
		pb := NewPeerbook()
		pb.Put(Entry{
			Peer: nodes[i].ID,
			Addr: logical,
			Location: geo.Point{
				Lat: 25 + 24*rng.Float64(),
				Lon: -124 + 57*rng.Float64(),
			},
		})
		nodes[i].AttachPeerbook(pb)
	}

	// Enough rounds for anti-entropy to flood every row everywhere
	// with overwhelming probability; WaitPeerbookSize below confirms.
	if err := GossipRounds(nodes, addrs, 4*n, 0, rng); err != nil {
		t.Fatal(err)
	}
	books := make([][]Entry, n)
	for i, node := range nodes {
		if !node.WaitPeerbookSize(n, 5*time.Second) {
			t.Fatalf("node %d book stuck at %d/%d entries", i, node.pb.Len(), n)
		}
		books[i] = node.pb.Entries()
	}
	return books
}

// TestGossipDeterministic is the p2p reproducibility contract: two
// gossip runs with the same seed converge to identical peer books —
// same peers, same addresses, same asserted locations — and a
// different seed produces observably different books.
func TestGossipDeterministic(t *testing.T) {
	const n = 8
	a := runGossipWorld(t, 42, n)
	b := runGossipWorld(t, 42, n)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed gossip runs diverged:\nrun1: %+v\nrun2: %+v", a[0], b[0])
	}
	c := runGossipWorld(t, 43, n)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical peer books; seed is not reaching the world")
	}
}
