// Package simnet generates a complete synthetic Helium world — the
// substitute for the live network the paper measures. A seeded run
// produces the full ledger history from the July 29, 2019 genesis
// through late May 2021: hotspot adoption and growth (§4.2), ownership
// structure including commercial fleets and mining pools (§4.3), the
// move and resale dynamics of §4.1/§4.3.3, ISP attachment and the
// relay swarm of §6, sampled Proof-of-Coverage activity with the §7
// cheating behaviours, and the data-traffic history of §5 including
// the August 2020 arbitrage spike.
//
// The generator is calibrated so the measurement engine
// (internal/core) reproduces the shapes — and in most cases the
// headline numbers — of every figure and table in the paper.
package simnet

import (
	"time"

	"peoplesnet/internal/chain"
)

// Config parameterizes a world. The zero value is unusable; start
// from DefaultConfig or TestConfig.
type Config struct {
	Seed uint64

	// Shards is how many worker goroutines Generate runs the
	// per-region simulation steps on; 0 (or negative) auto-picks
	// GOMAXPROCS. The generated chain is bit-identical for every
	// value: the world is always decomposed into the same fixed set of
	// geographic regions, each with its own label-split RNG stream,
	// and per-day event buffers merge in a deterministic
	// (day, region, sequence) order — Shards only chooses how many OS
	// threads execute those regions concurrently.
	Shards int

	// Start and Days bound the simulated timeline. The paper's window
	// is 2019-07-29 through 2021-05-26 (667 days).
	Start time.Time
	Days  int

	// TargetHotspots is the number of connected hotspots at the end of
	// the timeline (the paper observes ≈44,000 on May 26, 2021).
	TargetHotspots int

	// Towns is the number of synthetic small cities beyond the major
	// metros (§6.1 sees 3,958 cities with ≥1 hotspot).
	Towns int

	// TailASNs sizes the long tail of small ISPs (Fig 9: 454 ASNs).
	TailASNs int

	// InternationalLaunchDay is the day index when non-US cities begin
	// accepting hotspots (summer 2020).
	InternationalLaunchDay int

	// IntlShareEnd is the fraction of daily adds going international
	// by the end of the timeline (paper: 14k of 34k online outside the
	// US by May 2021).
	IntlShareEnd float64

	// OnlineFraction is the share of connected hotspots that stay
	// online (paper: 34k of 44k).
	OnlineFraction float64

	// PoCSamplePerDay is how many PoC challenges the generator
	// materializes per day at the end of the timeline (scaled down
	// earlier with network size). Each materialized receipt represents
	// PoCWeight real receipts for transaction-mix accounting.
	PoCSamplePerDay int
	// PoCWeight is the notional number of real PoC transactions each
	// sampled receipt stands for.
	PoCWeight float64

	// Cheats.
	SilentMoverFrac float64 // hotspots that move physically but never re-assert
	RSSIForgerFrac  float64
	AbsurdRSSIFrac  float64
	CliqueCount     int // number of gossip cliques
	CliqueSize      int

	// Traffic model.
	// PacketsPerSecondEnd is the aggregate user traffic at the end of
	// the window (paper: ≈14 packets/second, Fig 8).
	PacketsPerSecondEnd float64
	// ConsoleShare is the fraction of state-channel activity belonging
	// to OUI 1+2 (paper: 81.18%).
	ConsoleShare float64
	// ThirdPartyOUIs is how many non-Console OUIs register (paper: 10
	// total, 2 for Helium).
	ThirdPartyOUIs int
	// ArbitrageMultiplier scales the Aug 12–Sep 6 2020 spam spike
	// relative to the organic traffic of that era.
	ArbitrageMultiplier float64

	// Ownership model.
	NewOwnerProb     float64 // chance a new hotspot creates a new owner
	PoolCount        int     // Denver-style mining pools
	PoolTargetSize   int
	CommercialFleets []CommercialFleet

	// Resale model.
	ResaleFrac       float64 // fraction of hotspots ever transferred (8.6%)
	ResaleStartDay   int     // transfer_hotspot txn introduction (~Dec 2020)
	ResaleZeroDCProb float64 // 95.8% of transfers move 0 DC
	ResaleExportProb float64 // transferred hotspot moves abroad

	// Move model (§4.1).
	NeverMoveFrac float64 // 71.9%
	ZeroZeroCount int     // total (0,0) assertions (372)

	// Outages injects §6.1-style regional ISP failures: every hotspot
	// on the named ISP in the named city drops offline for the given
	// days (the July 2020 Spectrum outage took out ~87% of LA's
	// hotspots for a few hours; day-granularity here).
	Outages []OutageEvent
}

// OutageEvent is one regional ISP failure.
type OutageEvent struct {
	Day  int
	Days int
	City string
	ISP  string
}

// CommercialFleet describes a Careband/nowi-style deployment: a real
// application with clustered hotspots and steady device traffic.
type CommercialFleet struct {
	Name     string
	City     string
	Hotspots int
	Devices  int
}

// DefaultConfig reproduces the paper's world at full scale.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                   seed,
		Start:                  chain.DefaultGenesis,
		Days:                   667,
		TargetHotspots:         44_000,
		Towns:                  5_500,
		TailASNs:               437,
		InternationalLaunchDay: 340, // ~July 2020
		// IntlShareEnd is the share of *new-owner* deployments going
		// international at the end of the window. Existing owners keep
		// deploying at home (mostly the US), which damps the realized
		// fraction to the paper's ≈41% online-international share.
		IntlShareEnd:        0.95,
		OnlineFraction:      0.78,
		PoCSamplePerDay:     300,
		PoCWeight:           600,
		SilentMoverFrac:     0.004,
		RSSIForgerFrac:      0.01,
		AbsurdRSSIFrac:      0.002,
		CliqueCount:         3,
		CliqueSize:          5,
		PacketsPerSecondEnd: 14,
		ConsoleShare:        0.8118,
		ThirdPartyOUIs:      8,
		ArbitrageMultiplier: 30,
		NewOwnerProb:        0.205,
		PoolCount:           6,
		PoolTargetSize:      140,
		CommercialFleets: []CommercialFleet{
			{Name: "careband", City: "Chicago", Hotspots: 25, Devices: 120},
			{Name: "nowi", City: "Stonington", Hotspots: 61, Devices: 200},
		},
		ResaleFrac:       0.086,
		ResaleStartDay:   500, // ~Dec 2020
		ResaleZeroDCProb: 0.958,
		ResaleExportProb: 0.35,
		NeverMoveFrac:    0.719,
		ZeroZeroCount:    372,
	}
}

// TestConfig is a scaled-down world (≈1/20) for tests: same shapes,
// seconds instead of minutes to generate.
func TestConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.TargetHotspots = 2_200
	c.Towns = 400
	c.TailASNs = 90
	c.PoCSamplePerDay = 40
	c.PoCWeight = 600
	c.PoolCount = 3
	c.PoolTargetSize = 40
	c.ZeroZeroCount = 20
	// At 1/20 scale the sampled PoC stream visits each hotspot far
	// less often, so plant proportionally more cheats to keep the §7
	// audits exercised at any seed.
	c.SilentMoverFrac = 0.012
	c.AbsurdRSSIFrac = 0.006
	c.CommercialFleets = []CommercialFleet{
		{Name: "careband", City: "Chicago", Hotspots: 12, Devices: 30},
		{Name: "nowi", City: "Stonington", Hotspots: 15, Devices: 40},
	}
	return c
}
