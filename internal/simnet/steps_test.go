package simnet

import (
	"testing"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/econ"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/stats"
)

// newSim builds a simulator shell without running the daily loop, for
// unit-testing individual step models.
func newSim(t *testing.T, cfg Config) *simulator {
	t.Helper()
	w := newWorld(cfg)
	c := chain.NewChain(cfg.Start)
	c.Ledger().SetPoCInterval(1)
	return &simulator{
		cfg: cfg, w: w, c: c,
		res: &Result{Cfg: cfg, Chain: c, World: w},
		rng: stats.NewRNG(cfg.Seed).Split("coordinator"),
	}
}

func TestGrowthCurveCalibration(t *testing.T) {
	cfg := TestConfig(1)
	s := newSim(t, cfg)
	total := 0
	mid := 0
	for d := 0; d < cfg.Days; d++ {
		n := s.growthAdds(d)
		total += n
		if d == cfg.Days*587/667 {
			mid = total
		}
	}
	// Cumulative lands near the target.
	if total < cfg.TargetHotspots*8/10 || total > cfg.TargetHotspots*12/10 {
		t.Fatalf("cumulative adds = %d, target %d", total, cfg.TargetHotspots)
	}
	// The paper's mid-point ratio (≈45% of final count at 88% of the
	// timeline) — the exponential shape.
	ratio := float64(mid) / float64(total)
	if ratio < 0.3 || ratio > 0.6 {
		t.Fatalf("mid/end ratio = %v", ratio)
	}
}

func TestMoveIntervalDistribution(t *testing.T) {
	s := newSim(t, TestConfig(2))
	n := 20000
	within1, within7, within30 := 0, 0, 0
	for i := 0; i < n; i++ {
		dt := moveInterval(s.rng)
		if dt < 0 {
			t.Fatal("negative interval")
		}
		if dt < 1 {
			within1++
		}
		if dt < 7 {
			within7++
		}
		if dt < 30 {
			within30++
		}
	}
	// Fig 4 targets: 17.9 / 35.8 / 63.2 %.
	day := float64(within1) / float64(n)
	week := float64(within7) / float64(n)
	month := float64(within30) / float64(n)
	if day < 0.14 || day > 0.22 {
		t.Fatalf("within-day = %v, want ≈0.179", day)
	}
	if week < 0.30 || week > 0.42 {
		t.Fatalf("within-week = %v, want ≈0.358", week)
	}
	if month < 0.55 || month > 0.72 {
		t.Fatalf("within-month = %v, want ≈0.632", month)
	}
}

func TestIntlShareRamp(t *testing.T) {
	cfg := TestConfig(3)
	s := newSim(t, cfg)
	if s.intlShare(0) != 0 || s.intlShare(cfg.InternationalLaunchDay-1) != 0 {
		t.Fatal("international share before launch")
	}
	end := s.intlShare(cfg.Days - 1)
	if end < cfg.IntlShareEnd*0.9 {
		t.Fatalf("end share = %v, want ≈%v", end, cfg.IntlShareEnd)
	}
	mid := s.intlShare((cfg.InternationalLaunchDay + cfg.Days) / 2)
	if mid <= 0 || mid >= end {
		t.Fatalf("ramp not monotone: mid %v end %v", mid, end)
	}
}

func TestPacketsPerDayArbitrageWindow(t *testing.T) {
	cfg := TestConfig(4)
	s := newSim(t, cfg)
	// Populate enough hotspots for nonzero organic traffic.
	for i := 0; i < cfg.TargetHotspots/10; i++ {
		s.w.Hotspots = append(s.w.Hotspots, &HotspotState{Index: i})
	}
	dcLive := s.dayOf(econ.DCPaymentsLiveDate)
	preConsole, _, preSpam := s.packetsPerDay(dcLive - 5)
	_, _, spam := s.packetsPerDay(dcLive + 3)
	_, _, tail := s.packetsPerDay(s.dayOf(econ.HIP10Date) + 5)
	_, _, after := s.packetsPerDay(s.dayOf(econ.HIP10Date) + 30)
	if preSpam != 0 {
		t.Fatal("spam before DC payments went live")
	}
	if spam <= preConsole*5 {
		t.Fatalf("spam %d not dwarfing organic %d during window", spam, preConsole)
	}
	if tail >= spam || tail == 0 {
		t.Fatalf("HIP10 tail should decay: window %d tail %d", spam, tail)
	}
	if after != 0 {
		t.Fatalf("spam persists after tail: %d", after)
	}
}

func TestMakerEras(t *testing.T) {
	if maker(10) != "OG-Helium" || maker(300) != "RAK" {
		t.Fatal("early maker eras wrong")
	}
	late := map[string]bool{}
	for d := 500; d < 520; d++ {
		late[maker(d)] = true
	}
	if len(late) < 3 {
		t.Fatalf("late-era vendor diversity = %v", late)
	}
}

func TestCityGeography(t *testing.T) {
	w := newWorld(TestConfig(5))
	rng := stats.NewRNG(5)
	if len(w.usCityIdx)+len(w.intlCityIdx) != len(w.Cities) {
		t.Fatal("city partition broken")
	}
	// Launch gating: pickCity never returns international pre-launch.
	for i := 0; i < 300; i++ {
		c := w.pickCity(rng, 0, true)
		if w.Cities[c].Country != "US" {
			t.Fatalf("pre-launch pick: %s (%s)", w.Cities[c].Name, w.Cities[c].Country)
		}
	}
	// Post-launch intl picks are international.
	intl := w.pickCity(rng, 400, true)
	if w.Cities[intl].Country == "US" {
		t.Fatal("post-launch intl pick returned US")
	}
	// Placement stays within the city radius.
	for i := 0; i < 100; i++ {
		ci := w.pickCity(rng, 0, false)
		p := w.placeInCity(rng, ci)
		if geo.HaversineKm(p, w.Cities[ci].Center) > w.Cities[ci].RadiusKm()+0.1 {
			t.Fatalf("placement outside radius for %s", w.Cities[ci].Name)
		}
	}
}

func TestCityRadiusScaling(t *testing.T) {
	big := City{Population: 5_000_000}
	small := City{Population: 4_000}
	if big.RadiusKm() <= small.RadiusKm() {
		t.Fatal("city radius should grow with population")
	}
}

func TestOwnerClassString(t *testing.T) {
	if Individual.String() != "individual" || MiningPool.String() != "mining-pool" ||
		MegaOwner.String() != "mega-owner" || OwnerClass(42).String() == "" {
		t.Fatal("owner class strings wrong")
	}
}
