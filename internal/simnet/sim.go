package simnet

import (
	"fmt"
	"math"
	"sort"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/econ"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/p2p"
	"peoplesnet/internal/poc"
)

// Result is a generated world: the chain every §4–§7 analysis reads,
// plus the side state the paper obtains from the p2p network and IP
// measurements (peerbook, ISP attachments, city assignment).
type Result struct {
	Cfg      Config
	Chain    *chain.Chain
	World    *World
	Peerbook *p2p.Peerbook

	// MaterializedPoC and NotionalPoC track PoC sampling: each
	// materialized receipt stands for Cfg.PoCWeight real transactions
	// when reproducing §3's transaction mix.
	MaterializedPoC int64
	NotionalPoC     int64

	// OnlineByDay / ConnectedByDay / USOnlineByDay feed Fig 5.
	ConnectedByDay []int
	OnlineByDay    []int
	USOnlineByDay  []int
}

// simulator carries the loop state.
type simulator struct {
	cfg Config
	w   *World
	c   *chain.Chain
	res *Result

	engine    *poc.Engine
	fleet     *poc.Fleet
	fleetDay  int
	onlineIdx []int // indexes of online hotspots at last fleet build

	consoleWallet string
	exchange      string
	thirdOUIs     []ouiState

	// cliques tracks unfilled gossip cliques: city index → clique id.
	cliqueCity  int
	cliqueFill  map[int]int
	megaOwner   *Owner
	outlier     *HotspotState
	pools       []*poolState
	fleetOwners map[string][]*Owner

	scNonce      int64
	dayTxns      []chain.Txn
	zeroLeft     int
	rewardPol    econ.RewardPolicy
	prices       econ.PriceSeries
	resaleQueue  []resaleEvent
	dataHotspots []int // recent data-ferrying hotspot indexes

	// dayActivity accumulates per-day reward inputs.
	dayChallenger map[string]int
	dayBeacons    map[string]int
	dayWitness    map[string]float64
	dayDataDC     map[string]int64
}

type ouiState struct {
	oui     uint32
	wallet  string
	bornDay int
}

type poolState struct {
	owner   *Owner
	city    int
	target  int
	bornDay int
}

// Generate builds the world. It is deterministic in cfg.Seed.
func Generate(cfg Config) (*Result, error) {
	if cfg.Days <= 0 || cfg.TargetHotspots <= 0 {
		return nil, fmt.Errorf("simnet: invalid config (days=%d, target=%d)", cfg.Days, cfg.TargetHotspots)
	}
	w := newWorld(cfg)
	c := chain.NewChain(cfg.Start)
	c.Ledger().SetPoCInterval(1) // sampled challenges are sparse already

	s := &simulator{
		cfg: cfg, w: w, c: c,
		res:           &Result{Cfg: cfg, Chain: c, World: w},
		engine:        poc.NewEngine(),
		consoleWallet: "sim1console-wallet",
		exchange:      "sim1exchange",
		cliqueFill:    map[int]int{},
		fleetOwners:   map[string][]*Owner{},
	}
	// 70 km keeps the elevated-antenna witness tail (Fig 13) while
	// candidate subsampling bounds per-challenge work in dense metros.
	s.engine.ConsiderRadiusKm = 70
	s.engine.MaxCandidates = 150
	s.zeroLeft = cfg.ZeroZeroCount
	s.prices = econ.GeneratePrices(cfg.Start, cfg.Days, w.rng.Split())
	s.rewardPol = econ.RewardPolicy{
		Split:             econ.DefaultSplit(),
		USDPerHNT:         2, // updated daily from the price series
		SecuritiesAccount: "sim1helium-securities",
	}

	// Genesis block: console OUIs, funding, exchange.
	genesis := []chain.Txn{
		&chain.DCCoinbase{Payee: s.consoleWallet, AmountDC: 1 << 50},
		&chain.SecurityCoinbase{Payee: s.exchange, AmountBones: 1 << 50},
		&chain.OUIRegistration{OUI: 1, Owner: s.consoleWallet},
		&chain.OUIRegistration{OUI: 2, Owner: s.consoleWallet},
	}
	if _, err := c.AppendBlock(1, genesis); err != nil {
		return nil, err
	}

	// Third-party OUIs appear over the timeline; OUI numbers are
	// handed out in registration (birth) order.
	ouiSpan := maxi(1, cfg.Days-150)
	for i := 0; i < cfg.ThirdPartyOUIs; i++ {
		s.thirdOUIs = append(s.thirdOUIs, ouiState{
			wallet:  fmt.Sprintf("sim1router-%02d", i),
			bornDay: mini(cfg.Days-1, 100+w.rng.Intn(ouiSpan)),
		})
	}
	sort.Slice(s.thirdOUIs, func(i, j int) bool { return s.thirdOUIs[i].bornDay < s.thirdOUIs[j].bornDay })
	for i := range s.thirdOUIs {
		s.thirdOUIs[i].oui = uint32(3 + i)
	}

	// Mining pools.
	poolCities := []string{"Denver", "Denver", "Phoenix", "Atlanta", "Seattle", "Dallas"}
	for i := 0; i < cfg.PoolCount; i++ {
		cityName := poolCities[i%len(poolCities)]
		cityIdx, ok := w.cityByName(cityName)
		if !ok {
			cityIdx = w.usCityIdx[0]
		}
		s.pools = append(s.pools, &poolState{
			city: cityIdx, target: cfg.PoolTargetSize, bornDay: 250 + w.rng.Intn(200),
		})
	}
	// A clique city for colluding witnesses.
	s.cliqueCity, _ = w.cityByName("Phoenix")

	// The daily loop.
	for day := 0; day < cfg.Days; day++ {
		s.beginDay()
		s.stepGrowth(day)
		s.stepMoves(day)
		s.stepResale(day)
		s.stepOUIs(day)
		s.stepPoC(day)
		s.stepTraffic(day)
		s.stepRewards(day)
		s.stepChurn(day)
		if err := s.flushDay(day); err != nil {
			return nil, fmt.Errorf("simnet: day %d: %w", day, err)
		}
		s.recordDay(day)
	}
	s.buildPeerbook()
	return s.res, nil
}

func (s *simulator) beginDay() {
	s.dayTxns = s.dayTxns[:0]
	s.dayChallenger = map[string]int{}
	s.dayBeacons = map[string]int{}
	s.dayWitness = map[string]float64{}
	s.dayDataDC = map[string]int64{}
}

// emit schedules a txn for the current day. Emission order is
// preserved into block order, so intra-day dependencies (an add
// before the close that pays its hotspot, assert nonces) always hold;
// flushDay spreads the sequence across the day's 24 hourly blocks.
func (s *simulator) emit(t chain.Txn) {
	s.dayTxns = append(s.dayTxns, t)
}

// flushDay appends the day's transactions as hourly blocks, mapping
// emission index i of n to hour i·24/n.
func (s *simulator) flushDay(day int) error {
	n := len(s.dayTxns)
	if n == 0 {
		return nil
	}
	i := 0
	for i < n {
		hour := i * 24 / n
		j := i
		for j < n && j*24/n == hour {
			j++
		}
		txns := append([]chain.Txn(nil), s.dayTxns[i:j]...)
		height := int64(day*24+hour)*60 + 2 // +2 clears the genesis block at height 1
		if _, err := s.c.AppendBlock(height, txns); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// growthAdds returns how many hotspots arrive on the given day:
// exponential growth calibrated to reach TargetHotspots, with
// batch-arrival noise (Fig 5's spiky daily series).
func (s *simulator) growthAdds(day int) int {
	days := float64(s.cfg.Days)
	r := 6.7 / days // ⇒ cumulative ratio matching the paper's curve
	norm := (math.Exp(r*days) - 1) / r
	base := float64(s.cfg.TargetHotspots) * math.Exp(r*float64(day)) / norm
	// Batch noise: supply-constrained shipments land in lumps. The
	// 1.15 divisor removes the lumps' mean so cumulative adds still
	// land on TargetHotspots.
	lump := 1.0
	if s.w.rng.Bool(0.1) {
		lump = 1.5 + s.w.rng.Float64()*2
	}
	return s.w.rng.Poisson(base * lump / 1.15)
}

func (s *simulator) recordDay(day int) {
	connected := len(s.w.Hotspots)
	online, usOnline := 0, 0
	for _, h := range s.w.Hotspots {
		if h.Online {
			online++
			if s.w.Cities[h.City].Country == "US" {
				usOnline++
			}
		}
	}
	s.res.ConnectedByDay = append(s.res.ConnectedByDay, connected)
	s.res.OnlineByDay = append(s.res.OnlineByDay, online)
	s.res.USOnlineByDay = append(s.res.USOnlineByDay, usOnline)
}

// buildPeerbook snapshots the final p2p swarm: public hotspots listen
// on /ip4 addresses; NAT'd ones pick a random public relay (§6.2).
func (s *simulator) buildPeerbook() {
	pb := p2p.NewPeerbook()
	var public []p2p.Entry
	var nated []*HotspotState
	for _, h := range s.w.Hotspots {
		if !h.Online {
			continue
		}
		h.PeerID = p2p.PeerIDFrom(h.Address)
		if h.Attachment.NATed || !h.Attachment.PublicIP.IsValid() {
			nated = append(nated, h)
			continue
		}
		e := p2p.Entry{
			Peer:     h.PeerID,
			Addr:     p2p.ListenAddr{IP: h.Attachment.PublicIP, Port: h.Attachment.Port},
			Location: h.Asserted,
		}
		public = append(public, e)
		pb.Put(e)
	}
	// Relay choice is uniform over public peers (the paper's Fig 11
	// conclusion) except for a thin popularity bias: a handful of
	// nodes end up relaying dozens of peers for reasons the paper
	// could not determine (Fig 10, max 46). Since the popular set is
	// itself geographically random, the distance CDF stays
	// indistinguishable from uniform.
	sel := p2p.RandomRelay{}
	var popular []p2p.PeerID
	for i := 0; i < 10 && i < len(public); i++ {
		popular = append(popular, public[s.w.rng.Intn(len(public))].Peer)
	}
	for _, h := range nated {
		var relay p2p.PeerID
		if len(popular) > 0 && s.w.rng.Bool(0.012) {
			relay = popular[s.w.rng.Intn(len(popular))]
		} else {
			var ok bool
			relay, ok = sel.Select(h.Asserted, public, s.w.rng)
			if !ok {
				continue
			}
		}
		pb.Put(p2p.Entry{
			Peer:     h.PeerID,
			Addr:     p2p.ListenAddr{Relay: relay, Peer: h.PeerID},
			Location: h.Asserted,
		})
	}
	s.res.Peerbook = pb
}

// assertCell encodes a point at the on-chain resolution.
func assertCell(p geo.Point) h3lite.Cell {
	return h3lite.FromLatLon(p, 12)
}
