package simnet

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/econ"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/p2p"
	"peoplesnet/internal/poc"
	"peoplesnet/internal/stats"
)

// Result is a generated world: the chain every §4–§7 analysis reads,
// plus the side state the paper obtains from the p2p network and IP
// measurements (peerbook, ISP attachments, city assignment).
type Result struct {
	Cfg      Config
	Chain    *chain.Chain
	World    *World
	Peerbook *p2p.Peerbook

	// MaterializedPoC and NotionalPoC track PoC sampling: each
	// materialized receipt stands for Cfg.PoCWeight real transactions
	// when reproducing §3's transaction mix.
	MaterializedPoC int64
	NotionalPoC     int64

	// OnlineByDay / ConnectedByDay / USOnlineByDay feed Fig 5.
	ConnectedByDay []int
	OnlineByDay    []int
	USOnlineByDay  []int
}

// simulator is the coordinator of sharded generation. It owns every
// order-dependent global: the owner roster and address counter, the
// growth curve, funding, OUI/router and state-channel transactions,
// resale execution, rewards, the ledger itself. Each day it plans the
// day's adds, dispatches them to the per-region workers (region.go),
// waits at the barrier, and merges the regions' outputs in fixed
// region order before flushing blocks.
type simulator struct {
	cfg Config
	w   *World
	c   *chain.Chain
	res *Result

	rng     *stats.RNG // coordinator decision stream
	engine  *poc.Engine
	regions []*regionSim
	workers int

	consoleWallet string
	exchange      string
	thirdOUIs     []ouiState

	cliqueCity     int
	megaOwner      *Owner
	outlierPlanned bool
	pools          []*poolState
	fleetOwners    map[string][]*Owner

	scNonce      int64
	zeroLeft     int
	rewardPol    econ.RewardPolicy
	prices       econ.PriceSeries
	resaleQueue  []resaleEvent
	dataHotspots []int // recent data-ferrying hotspot indexes

	// earlyBuf collects the coordinator's pre-barrier transactions
	// (funding, OUI registrations), lateBuf its post-barrier ones
	// (resales, traffic, rewards). The day's merge order is
	// earlyBuf ++ region buffers (region order) ++ lateBuf, so intra-
	// day dependencies hold: wallets are funded before their hotspots
	// appear, and adds precede the channel closes that pay them.
	earlyBuf dayBuffer
	lateBuf  dayBuffer
	cur      *dayBuffer // where emit() lands in the current phase

	// Merged per-day reward inputs (regions summed at the barrier,
	// traffic DC added by the coordinator).
	dayChallenger map[string]int
	dayBeacons    map[string]int
	dayWitness    map[string]float64
	dayDataDC     map[string]int64

	// flush scratch, reused across days.
	mergedTxns   []chain.Txn
	mergedHashes []string
}

type ouiState struct {
	oui     uint32
	wallet  string
	bornDay int
}

type poolState struct {
	owner   *Owner
	city    int
	target  int
	bornDay int
}

// Generate builds the world. It is deterministic in cfg.Seed — and in
// cfg.Seed only: cfg.Shards changes how many goroutines execute the
// fixed region decomposition, never the output (golden_test.go pins
// this).
func Generate(cfg Config) (*Result, error) {
	if cfg.Days <= 0 || cfg.TargetHotspots <= 0 {
		return nil, fmt.Errorf("simnet: invalid config (days=%d, target=%d)", cfg.Days, cfg.TargetHotspots)
	}
	master := stats.NewRNG(cfg.Seed)
	w := newWorld(cfg)
	c := chain.NewChain(cfg.Start)
	c.Ledger().SetPoCInterval(1) // sampled challenges are sparse already

	s := &simulator{
		cfg: cfg, w: w, c: c,
		res:           &Result{Cfg: cfg, Chain: c, World: w},
		rng:           master.Split("coordinator"),
		engine:        poc.NewEngine(),
		consoleWallet: "sim1console-wallet",
		exchange:      "sim1exchange",
		fleetOwners:   map[string][]*Owner{},
	}
	// 70 km keeps the elevated-antenna witness tail (Fig 13) while
	// candidate subsampling bounds per-challenge work in dense metros.
	s.engine.ConsiderRadiusKm = 70
	s.engine.MaxCandidates = 150
	s.zeroLeft = cfg.ZeroZeroCount
	s.prices = econ.GeneratePrices(cfg.Start, cfg.Days, master.Split("prices"))
	s.rewardPol = econ.RewardPolicy{
		Split:             econ.DefaultSplit(),
		USDPerHNT:         2, // updated daily from the price series
		SecuritiesAccount: "sim1helium-securities",
	}

	s.workers = cfg.Shards
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	if s.workers > regionCount {
		s.workers = regionCount
	}

	// Genesis block: console OUIs, funding, exchange.
	genesis := []chain.Txn{
		&chain.DCCoinbase{Payee: s.consoleWallet, AmountDC: 1 << 50},
		&chain.SecurityCoinbase{Payee: s.exchange, AmountBones: 1 << 50},
		&chain.OUIRegistration{OUI: 1, Owner: s.consoleWallet},
		&chain.OUIRegistration{OUI: 2, Owner: s.consoleWallet},
	}
	if _, err := c.AppendBlock(1, genesis); err != nil {
		return nil, err
	}

	// Third-party OUIs appear over the timeline; OUI numbers are
	// handed out in registration (birth) order.
	ouiSpan := max(1, cfg.Days-150)
	for i := 0; i < cfg.ThirdPartyOUIs; i++ {
		s.thirdOUIs = append(s.thirdOUIs, ouiState{
			wallet:  fmt.Sprintf("sim1router-%02d", i),
			bornDay: min(cfg.Days-1, 100+s.rng.Intn(ouiSpan)),
		})
	}
	sort.Slice(s.thirdOUIs, func(i, j int) bool { return s.thirdOUIs[i].bornDay < s.thirdOUIs[j].bornDay })
	for i := range s.thirdOUIs {
		s.thirdOUIs[i].oui = uint32(3 + i)
	}

	// Mining pools.
	poolCities := []string{"Denver", "Denver", "Phoenix", "Atlanta", "Seattle", "Dallas"}
	for i := 0; i < cfg.PoolCount; i++ {
		cityName := poolCities[i%len(poolCities)]
		cityIdx, ok := w.cityByName(cityName)
		if !ok {
			cityIdx = w.usCityIdx[0]
		}
		s.pools = append(s.pools, &poolState{
			city: cityIdx, target: cfg.PoolTargetSize, bornDay: 250 + s.rng.Intn(200),
		})
	}
	// A clique city for colluding witnesses.
	s.cliqueCity, _ = w.cityByName("Phoenix")

	// The regions. Each gets its own labelled RNG stream split from
	// the master seed, so its randomness is identical whether one
	// goroutine runs all regions or each has its own.
	s.regions = make([]*regionSim, regionCount)
	for i := range s.regions {
		s.regions[i] = newRegionSim(i, s, master)
	}

	// The daily loop: plan (coordinator) → simulate (region workers)
	// → merge and settle (coordinator) → flush blocks.
	for day := 0; day < cfg.Days; day++ {
		s.beginDay()
		s.stepGrowth(day)
		s.stepOUIs(day)
		s.runRegions(day)
		s.mergeRegions(day)
		s.stepResale(day)
		s.stepTraffic(day)
		s.stepRewards(day)
		s.stepOutages(day)
		if err := s.flushDay(day); err != nil {
			return nil, fmt.Errorf("simnet: day %d: %w", day, err)
		}
		s.recordDay(day)
	}
	s.buildPeerbook(master.Split("peerbook"))
	return s.res, nil
}

func (s *simulator) beginDay() {
	s.earlyBuf.reset()
	s.lateBuf.reset()
	s.cur = &s.earlyBuf
	for _, r := range s.regions {
		r.inbox = r.inbox[:0]
	}
	s.dayChallenger = map[string]int{}
	s.dayBeacons = map[string]int{}
	s.dayWitness = map[string]float64{}
	s.dayDataDC = map[string]int64{}
}

// emit schedules a coordinator transaction for the current day, into
// the buffer of the current phase (earlyBuf before the worker barrier,
// lateBuf after). Emission order is preserved into block order, so
// intra-day dependencies (a funding coinbase before the add it pays
// for, an add before the close that pays its hotspot) always hold.
func (s *simulator) emit(t chain.Txn) {
	s.cur.emit(t)
}

// runRegions executes the day's worker phase: every region's runDay,
// on up to s.workers goroutines. Regions are claimed from an atomic
// counter — which regions run on which goroutine varies, but regions
// share no mutable state and each owns its RNG stream, so scheduling
// cannot affect the outputs.
func (s *simulator) runRegions(day int) {
	if s.workers <= 1 {
		for _, r := range s.regions {
			r.runDay(day)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(s.regions) {
					return
				}
				s.regions[n].runDay(day)
			}
		}()
	}
	wg.Wait()
}

// mergeRegions settles the worker phase at the day barrier, in fixed
// region order: allocate the deferred public IPs, sum the reward
// accounting, queue the resale plans, count PoC, and apply region
// migrations. After this the coordinator's post-phase (resale,
// traffic, rewards) sees a consistent world.
func (s *simulator) mergeRegions(day int) {
	s.cur = &s.lateBuf
	for _, r := range s.regions {
		for _, h := range r.pendingIP {
			s.w.Registry.AssignIP(&h.Attachment)
		}
		s.resaleQueue = append(s.resaleQueue, r.resalePlans...)
		s.res.MaterializedPoC += 2 * r.challenges
		s.res.NotionalPoC += r.challenges * int64(2*s.cfg.PoCWeight)
		for a, n := range r.dayChallenger {
			s.dayChallenger[a] += n
		}
		for a, n := range r.dayBeacons {
			s.dayBeacons[a] += n
		}
		for a, q := range r.dayWitness {
			s.dayWitness[a] += q
		}
	}
	// Migrations last, so a region's emigrant list still refers to the
	// membership its worker saw.
	for _, r := range s.regions {
		for _, idx := range r.emigrants {
			h := s.w.Hotspots[idx]
			nr := regionOfPoint(h.Actual)
			if nr == h.region {
				continue
			}
			s.regions[h.region].removeMember(idx)
			s.regions[nr].hotspots = append(s.regions[nr].hotspots, idx)
			h.region = nr
		}
	}
}

// stepOutages applies any §6.1 regional ISP outage transitions for the
// day. Outage injection consumes no randomness, so adding an
// OutageEvent perturbs nothing else.
func (s *simulator) stepOutages(day int) {
	for _, ev := range s.cfg.Outages {
		switch day {
		case ev.Day:
			s.setRegionalOutage(ev, true)
		case ev.Day + max(1, ev.Days):
			s.setRegionalOutage(ev, false)
		}
	}
}

// flushDay merges the day's buffers — coordinator early, regions in
// region order, coordinator late — and appends the sequence as hourly
// blocks, mapping merged index i of n to hour i·24/n. Per-transaction
// hashes were computed at emission (on the worker goroutines for
// region transactions), so the append path only hashes block headers.
func (s *simulator) flushDay(day int) error {
	s.mergedTxns = s.mergedTxns[:0]
	s.mergedHashes = s.mergedHashes[:0]
	appendBuf := func(b *dayBuffer) {
		s.mergedTxns = append(s.mergedTxns, b.txns...)
		s.mergedHashes = append(s.mergedHashes, b.hashes...)
	}
	appendBuf(&s.earlyBuf)
	for _, r := range s.regions {
		appendBuf(&r.buf)
	}
	appendBuf(&s.lateBuf)

	n := len(s.mergedTxns)
	if n == 0 {
		return nil
	}
	i := 0
	for i < n {
		hour := i * 24 / n
		j := i
		for j < n && j*24/n == hour {
			j++
		}
		txns := append([]chain.Txn(nil), s.mergedTxns[i:j]...)
		height := int64(day*24+hour)*60 + 2 // +2 clears the genesis block at height 1
		if _, err := s.c.AppendBlockHashed(height, txns, s.mergedHashes[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// growthAdds returns how many hotspots arrive on the given day:
// exponential growth calibrated to reach TargetHotspots, with
// batch-arrival noise (Fig 5's spiky daily series).
func (s *simulator) growthAdds(day int) int {
	days := float64(s.cfg.Days)
	r := 6.7 / days // ⇒ cumulative ratio matching the paper's curve
	norm := (math.Exp(r*days) - 1) / r
	base := float64(s.cfg.TargetHotspots) * math.Exp(r*float64(day)) / norm
	// Batch noise: supply-constrained shipments land in lumps. The
	// 1.15 divisor removes the lumps' mean so cumulative adds still
	// land on TargetHotspots.
	lump := 1.0
	if s.rng.Bool(0.1) {
		lump = 1.5 + s.rng.Float64()*2
	}
	return s.rng.Poisson(base * lump / 1.15)
}

func (s *simulator) recordDay(day int) {
	connected := len(s.w.Hotspots)
	online, usOnline := 0, 0
	for _, h := range s.w.Hotspots {
		if h.Online {
			online++
			if s.w.Cities[h.City].Country == "US" {
				usOnline++
			}
		}
	}
	s.res.ConnectedByDay = append(s.res.ConnectedByDay, connected)
	s.res.OnlineByDay = append(s.res.OnlineByDay, online)
	s.res.USOnlineByDay = append(s.res.USOnlineByDay, usOnline)
}

// buildPeerbook snapshots the final p2p swarm: public hotspots listen
// on /ip4 addresses; NAT'd ones pick a random public relay (§6.2).
func (s *simulator) buildPeerbook(rng *stats.RNG) {
	pb := p2p.NewPeerbook()
	var public []p2p.Entry
	var nated []*HotspotState
	for _, h := range s.w.Hotspots {
		if !h.Online {
			continue
		}
		h.PeerID = p2p.PeerIDFrom(h.Address)
		if h.Attachment.NATed || !h.Attachment.PublicIP.IsValid() {
			nated = append(nated, h)
			continue
		}
		e := p2p.Entry{
			Peer:     h.PeerID,
			Addr:     p2p.ListenAddr{IP: h.Attachment.PublicIP, Port: h.Attachment.Port},
			Location: h.Asserted,
		}
		public = append(public, e)
		pb.Put(e)
	}
	// Relay choice is uniform over public peers (the paper's Fig 11
	// conclusion) except for a thin popularity bias: a handful of
	// nodes end up relaying dozens of peers for reasons the paper
	// could not determine (Fig 10, max 46). Since the popular set is
	// itself geographically random, the distance CDF stays
	// indistinguishable from uniform.
	sel := p2p.RandomRelay{}
	var popular []p2p.PeerID
	for i := 0; i < 10 && i < len(public); i++ {
		popular = append(popular, public[rng.Intn(len(public))].Peer)
	}
	for _, h := range nated {
		var relay p2p.PeerID
		if len(popular) > 0 && rng.Bool(0.012) {
			relay = popular[rng.Intn(len(popular))]
		} else {
			var ok bool
			relay, ok = sel.Select(h.Asserted, public, rng)
			if !ok {
				continue
			}
		}
		pb.Put(p2p.Entry{
			Peer:     h.PeerID,
			Addr:     p2p.ListenAddr{Relay: relay, Peer: h.PeerID},
			Location: h.Asserted,
		})
	}
	s.res.Peerbook = pb
}

// assertCell encodes a point at the on-chain resolution.
func assertCell(p geo.Point) h3lite.Cell {
	return h3lite.FromLatLon(p, 12)
}

// sortMovesByDay day-sorts a move plan (stable: planned order breaks
// same-day ties).
func sortMovesByDay(moves []moveEvent) {
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].Day < moves[j].Day })
}
