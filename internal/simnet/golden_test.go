package simnet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// chainFingerprint folds every block's (height, hash) into one
// canonical digest of the whole ledger history.
func chainFingerprint(r *Result) string {
	h := sha256.New()
	for _, b := range r.Chain.Blocks() {
		fmt.Fprintf(h, "%d %s\n", b.Height, b.Hash)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// miniConfig is the small world used for shard-invariance and golden
// checks: big enough to exercise every subsystem (growth, moves, PoC,
// resale, traffic), small enough to generate in well under a second.
func miniConfig(seed uint64) Config {
	cfg := TestConfig(seed)
	cfg.Days = 120
	cfg.TargetHotspots = 300
	return cfg
}

// TestShardCountInvariance is the tentpole contract: cfg.Shards picks
// how many goroutines execute the fixed region decomposition, and
// nothing else. The same seed must produce the bit-identical block
// sequence at every worker count. Run under -race this also exercises
// the worker-phase ownership discipline.
func TestShardCountInvariance(t *testing.T) {
	results := map[int]*Result{}
	for _, shards := range []int{1, 4, regionCount} {
		cfg := miniConfig(11)
		cfg.Shards = shards
		res, err := Generate(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		results[shards] = res
	}
	ref := results[1].Chain.Blocks()
	for _, shards := range []int{4, regionCount} {
		got := results[shards].Chain.Blocks()
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: %d blocks, sequential made %d", shards, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Height != ref[i].Height || got[i].Hash != ref[i].Hash {
				t.Fatalf("shards=%d: block %d diverged: height %d/%d hash %s/%s",
					shards, i, got[i].Height, ref[i].Height, got[i].Hash, ref[i].Hash)
			}
		}
	}
}

// TestGoldenChainHashes pins the canonical chain digest per (seed,
// scale). Any change to the generator's draw order, the region
// decomposition, the merge order, or the transaction wire encoding
// shows up here as a hash mismatch — bump the constants only for a
// deliberate world change, never to quiet an accidental one.
func TestGoldenChainHashes(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		shards int
		want   string
	}{
		{"mini-seed7-seq", miniConfig(7), 1, "758e8f156270c475275ce36740831bda"},
		{"mini-seed7-sharded", miniConfig(7), 4, "758e8f156270c475275ce36740831bda"},
		{"mini-seed11-seq", miniConfig(11), 1, "0e5ed4ae98a14cd0b78f234f654231a5"},
		{"mini-seed11-sharded", miniConfig(11), regionCount, "0e5ed4ae98a14cd0b78f234f654231a5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Shards = tc.shards
			res, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := chainFingerprint(res); got != tc.want {
				t.Fatalf("chain fingerprint = %s, want %s", got, tc.want)
			}
		})
	}
}

// TestGoldenTestWorld pins the full 1/20-scale world every other test
// in this package reads (TestConfig(7), all 667 days).
func TestGoldenTestWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("full test world")
	}
	const want = "dff07029cc8a8adf2a26f452ab3f5637"
	if got := chainFingerprint(testWorld(t)); got != want {
		t.Fatalf("test-world fingerprint = %s, want %s", got, want)
	}
}
