package simnet

import (
	"peoplesnet/internal/chain"
	"peoplesnet/internal/econ"
)

// stepTraffic emits the day's state-channel activity (§5). The
// Console (OUI 1/2) closes a channel roughly every two hours; third
// party routers close a few times a day. Each close's packet count is
// the era's traffic apportioned to that window, attributed to the
// hotspots that plausibly ferried it.
func (s *simulator) stepTraffic(day int) {
	consolePkts, thirdPkts, spamPkts := s.packetsPerDay(day)
	if consolePkts+thirdPkts+spamPkts == 0 {
		return
	}
	s.refreshDataHotspots(day)

	// Console: 12 closes per day (every 2 hours ≈ 120 blocks, Fig 8).
	closes := 12
	perClose := consolePkts / int64(closes)
	for i := 0; i < closes; i++ {
		pkts := perClose
		if pkts <= 0 && consolePkts > 0 && i == 0 {
			pkts = consolePkts // tiny days collapse into one close
		}
		if i == 0 {
			// The spam spike rides the Console (users spamming their
			// own devices, §5.3.2); put the day's spam in one channel
			// so the spike is visible per close.
			pkts += spamPkts
		}
		if pkts <= 0 {
			continue
		}
		s.emitChannel(day, s.consoleWallet, 1+uint32(i%2), pkts, spamPkts > 0 && i == 0)
	}

	// Third-party routers.
	if thirdPkts > 0 && len(s.thirdOUIs) > 0 {
		var live []ouiState
		for _, o := range s.thirdOUIs {
			if o.bornDay <= day {
				live = append(live, o)
			}
		}
		for i, o := range live {
			share := thirdPkts / int64(len(live))
			if i == 0 {
				share += thirdPkts % int64(len(live))
			}
			if share <= 0 {
				continue
			}
			s.emitChannel(day, o.wallet, o.oui, share, false)
		}
	}
}

// refreshDataHotspots keeps a pool of hotspots that carry user data:
// commercial fleet hotspots plus a sample of online urban hotspots.
func (s *simulator) refreshDataHotspots(day int) {
	if day%7 != 0 && len(s.dataHotspots) > 0 {
		return
	}
	s.dataHotspots = s.dataHotspots[:0]
	for _, o := range s.w.Owners {
		if o.Class == Commercial {
			s.dataHotspots = append(s.dataHotspots, o.Hotspots...)
		}
	}
	// Plus random online hotspots owned by individuals. Pools and the
	// mega owner do not serve application traffic — that absence is
	// exactly the §4.3 balance/data heuristic the analysis infers
	// their class from.
	want := 40
	for tries := 0; tries < 400 && len(s.dataHotspots) < want+1; tries++ {
		h := s.w.Hotspots[s.rng.Intn(len(s.w.Hotspots))]
		if h.Online && !h.Cloud && s.w.Owners[h.OwnerIdx].Class == Individual {
			s.dataHotspots = append(s.dataHotspots, h.Index)
		}
	}
}

// emitChannel opens and closes one state channel covering pkts
// packets. Open and close land in the same day (the Console's 2-hour
// cadence); longer-lived third-party channels are compressed the same
// way, which only coarsens Fig 8's x-axis, not its shape.
func (s *simulator) emitChannel(day int, wallet string, oui uint32, pkts int64, spam bool) {
	rng := s.rng
	s.scNonce++
	id := chain.SCID(wallet, s.scNonce)
	dc := pkts // ~24-byte packets: 1 DC each
	s.emit(&chain.StateChannelOpen{
		ID: id, Owner: wallet, OUI: oui, AmountDC: dc + dc/10 + 10, ExpireWithin: 240,
	})

	// Attribute packets to hotspots.
	cl := &chain.StateChannelClose{ID: id, Owner: wallet}
	n := 1 + rng.Intn(12)
	if len(s.dataHotspots) == 0 {
		return
	}
	if spam {
		// Spam goes through a handful of spammer-owned hotspots.
		n = 1 + rng.Intn(3)
	}
	assigned := int64(0)
	for i := 0; i < n; i++ {
		hIdx := s.dataHotspots[rng.Intn(len(s.dataHotspots))]
		share := pkts / int64(n)
		if i == n-1 {
			share = pkts - assigned
		}
		if share <= 0 {
			continue
		}
		assigned += share
		cl.Summaries = append(cl.Summaries, chain.SCSummary{
			Hotspot: s.w.Hotspots[hIdx].Address,
			Packets: share,
			DC:      share,
		})
		s.dayDataDC[s.w.Hotspots[hIdx].Address] += share
	}
	s.emit(cl)
}

// stepRewards mints the day's rewards from the sampled activity
// (§2.4), switching HIP10 behaviour on at its activation date.
func (s *simulator) stepRewards(day int) {
	if len(s.dayChallenger)+len(s.dayBeacons)+len(s.dayWitness)+len(s.dayDataDC) == 0 {
		return
	}
	pol := s.rewardPol
	pol.HIP10 = day >= s.dayOf(econ.HIP10Date)
	// The HIP10 cap converts DC to HNT at the oracle price, which
	// follows the speculative run-up (§2.4).
	pol.USDPerHNT = s.prices.At(s.cfg.Start.AddDate(0, 0, day))
	s.c.Ledger().SetOraclePrice(pol.USDPerHNT)
	act := econ.EpochActivity{
		ChallengesByChallenger: s.dayChallenger,
		ChallengeesBeaconed:    s.dayBeacons,
		WitnessQuality:         s.dayWitness,
		DataDC:                 s.dayDataDC,
	}
	owner := func(hs string) (string, bool) {
		h, ok := s.c.Ledger().GetHotspot(hs)
		if !ok {
			return "", false
		}
		return h.Owner, true
	}
	entries := pol.ComputeRewards(int64(day), act, owner)
	// Scale to a day's worth of epochs (48 × 30-minute epochs).
	for i := range entries {
		entries[i].AmountBones *= 48
	}
	if len(entries) > 0 {
		s.emit(&chain.Rewards{Epoch: int64(day), Entries: entries})
	}

	// A weekly consensus-group election keeps the maintenance side of
	// the chain populated (§2.2; not analyzed by the study).
	if day%7 == 3 && len(s.w.Hotspots) >= 16 {
		members := make([]string, 0, 16)
		seen := map[int]bool{}
		for tries := 0; tries < 200 && len(members) < 16; tries++ {
			i := s.rng.Intn(len(s.w.Hotspots))
			if seen[i] || !s.w.Hotspots[i].Online {
				continue
			}
			seen[i] = true
			members = append(members, s.w.Hotspots[i].Address)
		}
		if len(members) > 0 {
			s.emit(&chain.ConsensusGroup{Epoch: int64(day), Members: members})
		}
	}

	// Pools and the mega owner encash weekly (§4.3's balance
	// heuristic): sweep their balance to the exchange.
	if day%7 == 6 {
		for _, o := range s.w.Owners {
			if !o.Encashes {
				continue
			}
			bal := s.c.Ledger().GetAccount(o.Address).HNTBones
			// Leave the coinbase fee reserve; sweep earnings only.
			reserve := int64(50 * chain.BonesPerHNT)
			if bal > reserve+chain.BonesPerHNT {
				s.emit(&chain.Payment{Payer: o.Address, Payee: s.exchange, AmountBones: bal - reserve})
			}
		}
	}
}

// setRegionalOutage flips every matching hotspot's liveness; the
// outage flag remembers which hotspots to restore (permanently-churned
// hotspots stay down).
func (s *simulator) setRegionalOutage(ev OutageEvent, down bool) {
	s.w.Registry.SetOutage(ev.ISP, ev.City, down)
	for _, h := range s.w.Hotspots {
		if h.Attachment.ISP == nil || h.Attachment.ISP.Name != ev.ISP {
			continue
		}
		if s.w.Cities[h.City].Name != ev.City {
			continue
		}
		if down && h.Online {
			h.Online = false
			h.outage = true
		} else if !down && h.outage {
			h.Online = true
			h.outage = false
		}
	}
}
