package simnet

import (
	"fmt"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/stats"
)

// regionCount is the fixed number of logical simulation regions the
// world is partitioned into. It is a constant — independent of
// cfg.Shards — so the region decomposition, and therefore every RNG
// stream and the merged ledger, is identical no matter how many
// workers execute the regions. 24 regions keep the largest region
// well under ~15% of the fleet (EXPERIMENTS.md "World generation"),
// which bounds the critical path of the parallel day step.
const regionCount = 24

// regionOfPoint maps a location to its region: a ~4°×4° geographic
// grid cell, hashed onto the region set. Grid cells are much wider
// than the 70 km PoC consider radius, so challenge/witness locality
// stays almost entirely intra-region, while the hash spreads the
// hundreds of populated cells evenly across regions.
func regionOfPoint(p geo.Point) int {
	gy := uint64((p.Lat + 90) / 4)  // lat ∈ [-90, 90] → non-negative
	gx := uint64((p.Lon + 180) / 4) // lon ∈ [-180, 180]
	h := gy*0x9e3779b97f4a7c15 ^ gx*0xc2b2ae3d27d4eb4f
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % regionCount)
}

// City is one population center hotspots can appear in.
type City struct {
	Name       string
	Country    string
	Center     geo.Point
	Population int
	// Env is the dominant radio environment.
	EnvUrban bool
}

// majorCities seeds the geography with real metros. US cities carry
// the early network (launch summer 2019); international cities only
// accept hotspots after the international launch (summer 2020, §4.2).
var majorCities = []City{
	{"New York", "US", geo.Point{Lat: 40.7128, Lon: -74.0060}, 8_400_000, true},
	{"Los Angeles", "US", geo.Point{Lat: 34.0522, Lon: -118.2437}, 3_900_000, true},
	{"Chicago", "US", geo.Point{Lat: 41.8781, Lon: -87.6298}, 2_700_000, true},
	{"Houston", "US", geo.Point{Lat: 29.7604, Lon: -95.3698}, 2_300_000, true},
	{"Phoenix", "US", geo.Point{Lat: 33.4484, Lon: -112.0740}, 1_600_000, true},
	{"Philadelphia", "US", geo.Point{Lat: 39.9526, Lon: -75.1652}, 1_600_000, true},
	{"San Antonio", "US", geo.Point{Lat: 29.4241, Lon: -98.4936}, 1_500_000, true},
	{"San Diego", "US", geo.Point{Lat: 32.7157, Lon: -117.1611}, 1_400_000, true},
	{"Dallas", "US", geo.Point{Lat: 32.7767, Lon: -96.7970}, 1_300_000, true},
	{"San Jose", "US", geo.Point{Lat: 37.3382, Lon: -121.8863}, 1_000_000, true},
	{"Austin", "US", geo.Point{Lat: 30.2672, Lon: -97.7431}, 960_000, true},
	{"San Francisco", "US", geo.Point{Lat: 37.7749, Lon: -122.4194}, 880_000, true},
	{"Seattle", "US", geo.Point{Lat: 47.6062, Lon: -122.3321}, 740_000, true},
	{"Denver", "US", geo.Point{Lat: 39.7392, Lon: -104.9903}, 710_000, true},
	{"Boston", "US", geo.Point{Lat: 42.3601, Lon: -71.0589}, 690_000, true},
	{"Miami", "US", geo.Point{Lat: 25.7617, Lon: -80.1918}, 470_000, true},
	{"Atlanta", "US", geo.Point{Lat: 33.7490, Lon: -84.3880}, 500_000, true},
	{"Portland", "US", geo.Point{Lat: 45.5152, Lon: -122.6784}, 650_000, true},
	{"Minneapolis", "US", geo.Point{Lat: 44.9778, Lon: -93.2650}, 430_000, true},
	{"Tampa", "US", geo.Point{Lat: 27.9506, Lon: -82.4572}, 400_000, true},
	{"Mesa", "US", geo.Point{Lat: 33.4152, Lon: -111.8315}, 500_000, false},
	{"Stonington", "US", geo.Point{Lat: 41.3359, Lon: -71.9062}, 18_000, false},
	{"London", "UK", geo.Point{Lat: 51.5074, Lon: -0.1278}, 9_000_000, true},
	{"Birmingham", "UK", geo.Point{Lat: 52.4862, Lon: -1.8904}, 1_100_000, true},
	{"Berlin", "DE", geo.Point{Lat: 52.5200, Lon: 13.4050}, 3_700_000, true},
	{"Munich", "DE", geo.Point{Lat: 48.1351, Lon: 11.5820}, 1_500_000, true},
	{"Paris", "FR", geo.Point{Lat: 48.8566, Lon: 2.3522}, 2_100_000, true},
	{"Madrid", "ES", geo.Point{Lat: 40.4168, Lon: -3.7038}, 3_200_000, true},
	{"Palma", "ES", geo.Point{Lat: 39.5696, Lon: 2.6502}, 420_000, false},
	{"Rome", "IT", geo.Point{Lat: 41.9028, Lon: 12.4964}, 2_800_000, true},
	{"Milan", "IT", geo.Point{Lat: 45.4642, Lon: 9.1900}, 1_400_000, true},
	{"Amsterdam", "NL", geo.Point{Lat: 52.3676, Lon: 4.9041}, 870_000, true},
	{"Toronto", "CA", geo.Point{Lat: 43.6532, Lon: -79.3832}, 2_900_000, true},
	{"Vancouver", "CA", geo.Point{Lat: 49.2827, Lon: -123.1207}, 680_000, true},
	{"Sydney", "AU", geo.Point{Lat: -33.8688, Lon: 151.2093}, 5_300_000, true},
	{"Shenzhen", "CN", geo.Point{Lat: 22.5431, Lon: 114.0579}, 12_500_000, true},
}

// usTownAnchors spread synthetic small towns across CONUS population
// regions (rough corridors, avoiding oceans).
var usTownAnchors = []geo.Point{
	{Lat: 40.5, Lon: -74.5}, {Lat: 39.0, Lon: -77.2}, {Lat: 35.3, Lon: -80.9},
	{Lat: 33.6, Lon: -84.5}, {Lat: 28.6, Lon: -81.4}, {Lat: 41.6, Lon: -87.3},
	{Lat: 39.8, Lon: -86.2}, {Lat: 36.2, Lon: -86.8}, {Lat: 32.9, Lon: -96.8},
	{Lat: 29.9, Lon: -95.5}, {Lat: 39.6, Lon: -105.0}, {Lat: 33.5, Lon: -112.2},
	{Lat: 34.1, Lon: -117.8}, {Lat: 37.5, Lon: -121.9}, {Lat: 45.5, Lon: -122.7},
	{Lat: 47.4, Lon: -122.2}, {Lat: 41.3, Lon: -96.0}, {Lat: 44.9, Lon: -93.3},
	{Lat: 42.9, Lon: -78.8}, {Lat: 40.4, Lon: -80.0},
}

var intlTownAnchors = map[string][]geo.Point{
	"UK": {{Lat: 53.4, Lon: -2.2}, {Lat: 51.45, Lon: -2.58}},
	"DE": {{Lat: 50.9, Lon: 6.96}, {Lat: 53.55, Lon: 9.99}},
	"FR": {{Lat: 45.76, Lon: 4.84}, {Lat: 43.3, Lon: 5.37}},
	"ES": {{Lat: 41.39, Lon: 2.17}, {Lat: 37.39, Lon: -5.98}},
	"IT": {{Lat: 45.07, Lon: 7.69}, {Lat: 40.85, Lon: 14.27}},
	"NL": {{Lat: 51.92, Lon: 4.48}},
	"CA": {{Lat: 45.50, Lon: -73.57}, {Lat: 51.05, Lon: -114.07}},
	"AU": {{Lat: -37.81, Lon: 144.96}},
	"CN": {{Lat: 31.23, Lon: 121.47}},
}

// BuildCities constructs the geography: major metros plus nTowns
// synthetic small towns scattered near the anchors. The returned
// slice is ordered US-first so launch gating can slice it.
func BuildCities(nTowns int, rng *stats.RNG) []City {
	cities := append([]City(nil), majorCities...)
	countries := []string{"US", "US", "US", "US", "US", "US", "UK", "DE", "FR", "ES", "IT", "NL", "CA", "AU", "CN"}
	for i := 0; i < nTowns; i++ {
		country := countries[rng.Intn(len(countries))]
		var anchor geo.Point
		if country == "US" {
			anchor = usTownAnchors[rng.Intn(len(usTownAnchors))]
		} else {
			as := intlTownAnchors[country]
			anchor = as[rng.Intn(len(as))]
		}
		center := geo.Destination(anchor, rng.Float64()*360, 5+rng.Float64()*120)
		cities = append(cities, City{
			Name:       fmt.Sprintf("%s-town-%04d", country, i),
			Country:    country,
			Center:     center,
			Population: 2_000 + int(rng.Pareto(3000, 1.2)),
			EnvUrban:   false,
		})
	}
	return cities
}

// RadiusKm returns the city's hotspot-placement radius, scaling with
// population.
func (c City) RadiusKm() float64 {
	switch {
	case c.Population > 3_000_000:
		return 25
	case c.Population > 1_000_000:
		return 16
	case c.Population > 300_000:
		return 10
	case c.Population > 50_000:
		return 5
	default:
		return 2.5
	}
}
