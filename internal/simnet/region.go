package simnet

// region.go is the worker half of sharded world generation. The world
// is partitioned into regionCount fixed geographic regions; each
// regionSim owns the hotspots deployed in its territory and runs the
// embarrassingly-local daily steps — placement and cheat profiles for
// newly planned hotspots, scheduled moves, PoC challenges, and churn —
// against its own label-split RNG stream, emitting transactions into a
// private per-day buffer. The coordinator (sim.go) dispatches add
// orders before the day's worker phase and merges buffers, activity
// maps, resale plans, and region migrations after it, in fixed region
// order, so the assembled ledger is bit-identical no matter how many
// goroutines execute the regions.
//
// Thread-safety during the worker phase rests on ownership, not locks:
// a region writes only its member hotspots' fields and its own
// buffers; shared structures (cities, markets, owner roster, other
// regions' members) are read-only between day barriers. Everything
// order-dependent — address minting, public-IP allocation, the ledger
// itself — stays on the coordinator.

import (
	"math"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/ipgeo"
	"peoplesnet/internal/poc"
	"peoplesnet/internal/stats"
)

// dayBuffer accumulates one producer's transactions for the current
// day. Each transaction is hashed at emission — for region buffers
// that happens on the worker goroutine, which is what parallelizes the
// block-hashing cost (previously about a third of Generate) along with
// the simulation steps. Emitted transactions must be fully built:
// mutating one after emit would desynchronize it from its hash.
type dayBuffer struct {
	txns   []chain.Txn
	hashes []string
}

func (b *dayBuffer) emit(t chain.Txn) {
	b.txns = append(b.txns, t)
	b.hashes = append(b.hashes, chain.Hash(t))
}

func (b *dayBuffer) reset() {
	b.txns = b.txns[:0]
	b.hashes = b.hashes[:0]
}

// addOrder is the coordinator's instruction to a region: finish a
// newly planned hotspot whose ownership, city, and address were
// decided centrally — place it, roll its antenna and cheat profile,
// attach its line, plan its moves and resales, and emit its
// add/assert transactions.
type addOrder struct {
	hIdx      int
	zeroFirst bool // first assert is the (0,0) GPS artifact
	outlier   bool // the paper's twenty-move outlier hotspot
}

// regionSim is one region's simulation state and per-day outputs.
type regionSim struct {
	idx        int
	cfg        Config
	w          *World
	rng        *stats.RNG
	engine     *poc.Engine
	cliqueCity int

	// hotspots lists member indexes in admission order; membership
	// changes only at day barriers (coordinator dispatch + migration),
	// so per-day iteration order is deterministic.
	hotspots []int

	// inbox holds the day's add orders, dispatched by the coordinator.
	inbox []addOrder

	fleet     *poc.Fleet
	fleetDay  int
	onlineIdx []int

	// cliqueFill tracks unfilled gossip cliques. The clique city
	// belongs to exactly one region, so the counter is region-local.
	cliqueFill map[int]int

	// Per-day outputs, merged by the coordinator at the barrier.
	buf         dayBuffer
	pendingIP   []*HotspotState // reachable attachments awaiting an IP
	emigrants   []int           // members whose Actual left the region
	resalePlans []resaleEvent
	challenges  int64

	dayChallenger map[string]int
	dayBeacons    map[string]int
	dayWitness    map[string]float64
}

func newRegionSim(idx int, s *simulator, master *stats.RNG) *regionSim {
	return &regionSim{
		idx:           idx,
		cfg:           s.cfg,
		w:             s.w,
		rng:           master.Split(regionLabel(idx)),
		engine:        s.engine,
		cliqueCity:    s.cliqueCity,
		cliqueFill:    map[int]int{},
		dayChallenger: map[string]int{},
		dayBeacons:    map[string]int{},
		dayWitness:    map[string]float64{},
	}
}

// regionLabel names a region's RNG stream.
func regionLabel(idx int) string {
	return "region-" + string([]byte{byte('0' + idx/10), byte('0' + idx%10)})
}

// runDay executes the region's share of one simulated day. Called
// concurrently across regions; touches only region-owned state.
func (r *regionSim) runDay(day int) {
	r.buf.reset()
	r.pendingIP = r.pendingIP[:0]
	r.emigrants = r.emigrants[:0]
	r.resalePlans = r.resalePlans[:0]
	r.challenges = 0
	clear(r.dayChallenger)
	clear(r.dayBeacons)
	clear(r.dayWitness)

	for _, o := range r.inbox {
		r.finalizeAdd(day, o)
	}
	r.stepMoves(day)
	r.stepPoC(day)
	r.stepChurn(day)
}

// finalizeAdd is the region half of a hotspot add: placement, ISP
// line, cheats, move/resale plans, and the add/assert transactions.
func (r *regionSim) finalizeAdd(day int, o addOrder) {
	w := r.w
	h := w.Hotspots[o.hIdx]
	owner := w.Owners[h.OwnerIdx]
	city := h.City

	loc := w.placeInCity(r.rng, city)
	if owner.Class == MiningPool {
		// Pools space hotspots out for reward efficiency (§4.3.2):
		// resample until ≥1 km from the pool's other hotspots. Only
		// placed members still in this region are compared — the
		// pool's city cluster; members that moved away are irrelevant
		// and belong to workers that may be mid-write.
		for tries := 0; tries < 8; tries++ {
			ok := true
			for _, idx := range owner.Hotspots {
				other := w.Hotspots[idx]
				if other.region != r.idx || other.AssertNonce == 0 {
					continue
				}
				if geo.HaversineKm(loc, other.Asserted) < 1.0 {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			loc = w.placeInCity(r.rng, city)
		}
	}
	h.Actual = loc

	// ISP line now; the public IP is allocated by the coordinator at
	// the day barrier (allocation order is part of the world).
	h.Attachment = ipgeo.AttachLine(w.market(city), r.rng)
	r.pendingIP = append(r.pendingIP, h)

	// A few percent of handlers install elevated, high-gain antennas,
	// producing the long witness-distance tail of Fig 13.
	h.Elevated = r.rng.Bool(0.04)

	// Cheats.
	if r.rng.Bool(r.cfg.RSSIForgerFrac) {
		h.Cheat.ForgeRSSI = true
	}
	if r.rng.Bool(r.cfg.AbsurdRSSIFrac) {
		h.Cheat.AbsurdRSSI = true
	}
	if city == r.cliqueCity && r.cfg.CliqueCount > 0 {
		for cl := 1; cl <= r.cfg.CliqueCount; cl++ {
			if r.cliqueFill[cl] < r.cfg.CliqueSize {
				r.cliqueFill[cl]++
				h.Cheat.Clique = cl
				break
			}
		}
	}

	r.buf.emit(&chain.AddGateway{Gateway: h.Address, Owner: owner.Address, Maker: maker(day)})

	// First assertion: usually the real spot, occasionally the (0,0)
	// GPS-failure artifact that gets corrected later (§4.1).
	first := loc
	if o.zeroFirst {
		first = geo.Point{}
	}
	h.Asserted = first
	h.Cell = assertCell(first)
	h.AssertNonce = 1
	r.buf.emit(&chain.AssertLocation{
		Gateway: h.Address, Owner: owner.Address, Location: h.Cell, Nonce: 1,
	})

	r.planMoves(h, day, o.zeroFirst, o.outlier)
	r.planResale(h, day)
}

// planMoves schedules a hotspot's relocations at creation time.
func (r *regionSim) planMoves(h *HotspotState, day int, zeroFirst, outlier bool) {
	rng := r.rng
	var moves []moveEvent

	if zeroFirst {
		// The (0,0) artifact is corrected quickly with a real assert.
		moves = append(moves, moveEvent{Day: day + 1 + rng.Intn(5), Dest: h.Actual})
	}

	if !rng.Bool(r.cfg.NeverMoveFrac) {
		// How many (non-correction) moves: most movers move once or
		// twice (the two free asserts), few more than five.
		n := 1
		u := rng.Float64()
		switch {
		case u < 0.62:
			n = 1
		case u < 0.85:
			n = 2
		case u < 0.95:
			n = 3 + rng.Intn(2)
		default:
			n = 5 + rng.Geometric(0.5)
		}
		from := h.Actual
		for i := 0; i < n; i++ {
			dt := moveInterval(rng)
			moveDay := day + dt
			if i > 0 {
				moveDay = moves[len(moves)-1].Day + dt
			}
			var dest geo.Point
			switch {
			case i == 0 && rng.Bool(0.7):
				// Test-then-deploy: a short local hop.
				dest = geo.Destination(from, rng.Float64()*360, 0.2+rng.Float64()*8)
			case rng.Bool(0.1) && r.cfg.ZeroZeroCount > 0 && rng.Bool(0.05):
				// Rare relocation *to* (0,0) (fat-finger / test).
				dest = geo.Point{}
			case rng.Bool(0.12):
				// Long-distance move: resale-driven US→EU export or a
				// cross-country hop (Fig 3c).
				dest = r.longMoveDest(moveDay)
			default:
				dest = geo.Destination(from, rng.Float64()*360, 1+rng.Float64()*40)
			}
			moves = append(moves, moveEvent{Day: moveDay, Dest: dest})
			if !dest.IsZero() {
				from = dest
			}
		}
	}

	// Silent movers relocate physically without asserting (§7.1). The
	// move must land inside the observation window to be detectable.
	if rng.Bool(r.cfg.SilentMoverFrac) && day < r.cfg.Days-60 {
		moveDay := day + 30 + rng.Intn(max(30, r.cfg.Days-day-45))
		moves = append(moves, moveEvent{
			Day: moveDay, Dest: r.longMoveDest(moveDay), Silent: true,
		})
	}

	// The paper's twenty-move outlier, owned by a large account.
	if outlier {
		from := h.Actual
		for i := 0; i < 20; i++ {
			from = geo.Destination(from, rng.Float64()*360, 5+rng.Float64()*300)
			moves = append(moves, moveEvent{Day: day + 2 + i*4, Dest: from})
		}
	}
	// Execution scans the plan in order; keep it day-sorted so a
	// far-future move cannot block earlier ones.
	sortMovesByDay(moves)
	h.Moves = moves
}

// longMoveDest picks a far destination: Europe once international
// sales open, else across the US. Destinations are population-
// weighted — hardware moves to where people (and other hotspots)
// are, which is also what makes silent movers detectable (§7.1's
// examples resurface in New York, not in an empty town).
func (r *regionSim) longMoveDest(day int) geo.Point {
	return r.w.placeInCity(r.rng, r.w.pickCity(r.rng, day, r.rng.Bool(0.7)))
}

// stepMoves executes scheduled relocations of this region's members.
func (r *regionSim) stepMoves(day int) {
	w := r.w
	for _, idx := range r.hotspots {
		h := w.Hotspots[idx]
		if h.MoveIdx >= len(h.Moves) || h.Moves[h.MoveIdx].Day > day {
			continue
		}
		for h.MoveIdx < len(h.Moves) && h.Moves[h.MoveIdx].Day <= day {
			mv := h.Moves[h.MoveIdx]
			h.MoveIdx++
			h.Actual = mv.Dest
			if mv.Dest.IsZero() {
				h.Actual = h.Asserted // (0,0) asserts don't move hardware
			}
			if mv.Silent {
				continue // physical move, no transaction (§7.1)
			}
			h.Asserted = mv.Dest
			h.Cell = assertCell(mv.Dest)
			h.AssertNonce++
			r.buf.emit(&chain.AssertLocation{
				Gateway:  h.Address,
				Owner:    w.Owners[h.OwnerIdx].Address,
				Location: h.Cell,
				Nonce:    h.AssertNonce,
			})
			// Moving to another city re-homes the backhaul. Before the
			// international launch no hardware operates abroad, so a
			// border-adjacent hop cannot re-home to a foreign metro.
			if city := w.nearestCity(mv.Dest); city >= 0 && city != h.City && !mv.Dest.IsZero() {
				if w.Cities[city].Country == "US" || day >= r.cfg.InternationalLaunchDay {
					h.City = city
					h.Attachment = ipgeo.AttachLine(w.market(city), r.rng)
					r.pendingIP = append(r.pendingIP, h)
				}
			}
		}
		// A move (silent ones included — §7.1's detectability depends
		// on the mover resurfacing among its new physical neighbors)
		// may land in another region's territory; hand the hotspot
		// over at the day barrier.
		if regionOfPoint(h.Actual) != r.idx {
			r.emigrants = append(r.emigrants, idx)
		}
	}
}

// planResale schedules ownership transfers (§4.3.3) into the region's
// per-day plan list; the coordinator merges plans into the global
// resale queue at the barrier (buyers are drawn globally).
func (r *regionSim) planResale(h *HotspotState, day int) {
	rng := r.rng
	if !rng.Bool(r.cfg.ResaleFrac) {
		return
	}
	first := r.cfg.ResaleStartDay + rng.Intn(max(1, r.cfg.Days-r.cfg.ResaleStartDay))
	if first <= day {
		first = day + 30
	}
	n := 1
	u := rng.Float64()
	switch {
	case u < 0.70:
		n = 1
	case u < 0.954:
		n = 2
	default:
		n = 3 + rng.Intn(5)
	}
	for i := 0; i < n; i++ {
		r.resalePlans = append(r.resalePlans, resaleEvent{Day: first + i*(20+rng.Intn(60)), Hotspot: h.Index})
	}
}

// rebuildFleet refreshes the region's PoC spatial index (weekly).
func (r *regionSim) rebuildFleet(day int) {
	sites := make([]*poc.Site, 0, len(r.hotspots))
	r.onlineIdx = r.onlineIdx[:0]
	for _, idx := range r.hotspots {
		h := r.w.Hotspots[idx]
		if h.Cloud {
			continue // validators never radio
		}
		site := h.Site(r.w.Cities[h.City].EnvUrban)
		sites = append(sites, site)
		if h.Online {
			r.onlineIdx = append(r.onlineIdx, len(sites)-1)
		}
	}
	r.fleet = poc.NewFleet(sites)
	r.fleetDay = day
}

// stepPoC samples the region's share of the day's challenges.
// Challenger and challengee are drawn from the region's online
// members — the same local structure as a global uniform draw, since
// candidates subsample around the challengee either way, and regions
// are grid cells far wider than the 70 km consider radius.
func (r *regionSim) stepPoC(day int) {
	if len(r.hotspots) < 3 {
		return
	}
	if r.fleet == nil || day-r.fleetDay >= 7 {
		r.rebuildFleet(day)
	}
	if len(r.onlineIdx) < 2 {
		return
	}
	rng := r.rng
	// Challenge volume scales with the region's share of the target
	// fleet, so the global daily volume still tracks network size.
	frac := float64(len(r.hotspots)) / float64(r.cfg.TargetHotspots)
	k := int(math.Ceil(float64(r.cfg.PoCSamplePerDay) * frac))
	usedChallenger := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		ci := r.onlineIdx[rng.Intn(len(r.onlineIdx))]
		ti := r.onlineIdx[rng.Intn(len(r.onlineIdx))]
		if ci == ti || usedChallenger[ci] {
			continue // one challenge per challenger per day (interval rule)
		}
		usedChallenger[ci] = true
		challenger := r.fleet.Sites[ci]
		challengee := r.fleet.Sites[ti]
		rcpt := r.engine.RunChallenge(r.fleet, challenger, challengee, rng)
		// Secret nonces are unique across (day, region, sequence).
		nonce := (int64(day)*regionCount+int64(r.idx))*100_000 + int64(i)
		r.buf.emit(&chain.PoCRequest{Challenger: challenger.Address, SecretHash: chain.SCID(challenger.Address, nonce)})
		r.buf.emit(rcpt.ToTxn())
		r.challenges++

		// Reward accounting, merged (summed) at the barrier.
		r.dayChallenger[challenger.Address]++
		r.dayBeacons[challengee.Address]++
		for _, wt := range rcpt.Witnesses {
			if wt.Valid {
				r.dayWitness[wt.Witness]++
			}
		}
	}
}

// stepChurn applies the daily permanent-churn hazard to the region's
// members so the end-state online fraction matches §4.2 (≈34k of 44k).
// Under the exponential adoption curve (rate 6.7/Days) the mean
// hotspot age at the end is ≈Days/6.7, so a survival target of
// OnlineFraction at mean age needs hazard = −ln(f)·6.7/Days.
func (r *regionSim) stepChurn(day int) {
	hazard := -math.Log(r.cfg.OnlineFraction) * 6.7 / float64(r.cfg.Days)
	for _, idx := range r.hotspots {
		h := r.w.Hotspots[idx]
		if h.Online && !h.Cloud && !h.outage && r.rng.Bool(hazard) {
			h.Online = false
		}
	}
}

// removeMember drops a hotspot from the region's roster, preserving
// admission order. Called only by the coordinator at day barriers.
func (r *regionSim) removeMember(idx int) {
	for i, v := range r.hotspots {
		if v == idx {
			r.hotspots = append(r.hotspots[:i], r.hotspots[i+1:]...)
			return
		}
	}
}

// moveInterval samples days between relocations to match Fig 4:
// 17.9% within a day, 35.8% within a week, 63.2% within a month.
func moveInterval(rng *stats.RNG) int {
	u := rng.Float64()
	switch {
	case u < 0.179:
		return 0 // same day (hour-level spacing)
	case u < 0.358:
		return 1 + rng.Intn(6)
	case u < 0.632:
		return 7 + rng.Intn(23)
	default:
		return 30 + int(rng.Exponential(1.0/60))
	}
}
