package simnet

import (
	"fmt"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/ipgeo"
	"peoplesnet/internal/p2p"
	"peoplesnet/internal/poc"
	"peoplesnet/internal/radio"
	"peoplesnet/internal/stats"
)

// OwnerClass labels why a wallet holds hotspots (§4.3).
type OwnerClass int

// Owner classes.
const (
	Individual  OwnerClass = iota // one-or-few hotspots at home
	MiningPool                    // city-clustered profit fleets
	Commercial                    // application operators (Careband, nowi)
	MegaOwner                     // the 1,903-hotspot account
	ValidatorOp                   // cloud-hosted validator lookalikes
)

func (c OwnerClass) String() string {
	switch c {
	case Individual:
		return "individual"
	case MiningPool:
		return "mining-pool"
	case Commercial:
		return "commercial"
	case MegaOwner:
		return "mega-owner"
	case ValidatorOp:
		return "validator-op"
	default:
		return fmt.Sprintf("owner_class_%d", int(c))
	}
}

// Owner is one wallet.
type Owner struct {
	Index    int
	Address  string
	Class    OwnerClass
	HomeCity int
	Hotspots []int
	// Encashes: pools cash HNT out promptly; application users hold
	// (the balance heuristic of §4.3).
	Encashes bool
	Fleet    string // commercial fleet name, if any
}

// moveEvent is a scheduled relocation.
type moveEvent struct {
	Day  int
	Dest geo.Point
	// ZeroZero marks a (0,0) assertion (GPS failure / test).
	ZeroZero bool
	// Silent means the hotspot physically moves but never re-asserts
	// (§7.1's Joyful Pink Skunk).
	Silent bool
}

// HotspotState is a hotspot's runtime record.
type HotspotState struct {
	Index    int
	Address  string
	OwnerIdx int
	City     int
	AddedDay int

	Asserted geo.Point
	Actual   geo.Point
	Cell     h3lite.Cell

	AssertNonce int
	Online      bool
	Cloud       bool // validator lookalike on a cloud ASN

	Moves     []moveEvent
	MoveIdx   int
	Transfers int

	// Elevated marks the advanced-antenna, high-altitude installs the
	// paper notes witnessing at 60–110 km (§8.2.1 footnote 16).
	Elevated bool

	Cheat poc.CheatProfile

	Attachment ipgeo.Attachment
	PeerID     p2p.PeerID

	// outage marks a temporary regional ISP failure (restored when it
	// lifts), as opposed to permanent churn.
	outage bool

	// region is the simulation region currently responsible for this
	// hotspot (its moves, PoC participation, and churn). Assigned at
	// creation from the deployment city; updated only at day barriers
	// when a physical move lands in another region's territory.
	// -1 for cloud validators, which no region simulates.
	region int
}

// Site converts the hotspot into a PoC site view.
func (h *HotspotState) Site(cityUrban bool) *poc.Site {
	env := radio.Suburban
	gain := 3.0
	if cityUrban {
		env = radio.Urban
	}
	if h.Elevated {
		env = radio.Rural // clear horizon dominates local clutter
		gain = 8
	}
	return &poc.Site{
		Address:  h.Address,
		Asserted: h.Asserted,
		Actual:   h.Actual,
		Cell:     h.Cell,
		Online:   h.Online,
		Env:      env,
		GainDBi:  gain,
		Cheat:    h.Cheat,
	}
}

// World is the evolving simulation state. It holds no RNG of its own:
// every randomized method takes the caller's stream explicitly, so the
// coordinator and each region worker draw from their own label-split
// generators and never contend on (or perturb) a shared one.
type World struct {
	Cfg      Config
	Cities   []City
	Registry *ipgeo.Registry

	Owners   []*Owner
	Hotspots []*HotspotState

	// markets holds every city's ISP market, prebuilt at world
	// construction (index-aligned with Cities) so workers read them
	// without synchronization.
	markets []ipgeo.Market

	// regionOfCity maps a city index to the simulation region owning
	// deployments there (index-aligned with Cities).
	regionOfCity []int

	// usCityIdx / intlCityIdx partition city indexes for launch
	// gating.
	usCityIdx   []int
	intlCityIdx []int

	addrCounter int
}

// newWorld builds the static geography and registries. Each sub-model
// draws from its own labelled split of the master seed, so the streams
// are stable however construction is reordered.
func newWorld(cfg Config) *World {
	master := stats.NewRNG(cfg.Seed)
	w := &World{
		Cfg:      cfg,
		Registry: ipgeo.NewRegistry(master.Split("ipgeo-registry"), cfg.TailASNs),
	}
	w.Cities = BuildCities(cfg.Towns, master.Split("cities"))
	for i, c := range w.Cities {
		if c.Country == "US" {
			w.usCityIdx = append(w.usCityIdx, i)
		} else {
			w.intlCityIdx = append(w.intlCityIdx, i)
		}
	}
	mrng := master.Split("markets")
	w.markets = make([]ipgeo.Market, len(w.Cities))
	w.regionOfCity = make([]int, len(w.Cities))
	for i, c := range w.Cities {
		w.markets[i] = w.Registry.BuildMarket(c.Name, c.Country, c.Population, mrng)
		w.regionOfCity[i] = regionOfPoint(c.Center)
	}
	return w
}

// newAddress mints a unique chain address. Real addresses are key
// hashes; the simulator's are sequential for speed and determinism,
// which no analysis depends on.
func (w *World) newAddress(kind string) string {
	w.addrCounter++
	return fmt.Sprintf("sim1%s%07d", kind, w.addrCounter)
}

// market returns the city's prebuilt ISP market.
func (w *World) market(cityIdx int) ipgeo.Market {
	return w.markets[cityIdx]
}

// pickCity selects a city for a new deployment: population-weighted,
// respecting the international launch gate.
func (w *World) pickCity(rng *stats.RNG, day int, wantIntl bool) int {
	pool := w.usCityIdx
	if wantIntl && day >= w.Cfg.InternationalLaunchDay {
		pool = w.intlCityIdx
	}
	// Population-weighted pick via a few tournament rounds — cheaper
	// than building a full weight slice per call and heavy-headed
	// enough to favour metros.
	best := pool[rng.Intn(len(pool))]
	for i := 0; i < 3; i++ {
		cand := pool[rng.Intn(len(pool))]
		if w.Cities[cand].Population > w.Cities[best].Population {
			best = cand
		}
	}
	return best
}

// cityByName finds a city index by name (commercial fleets pin their
// city).
func (w *World) cityByName(name string) (int, bool) {
	for i, c := range w.Cities {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// placeInCity samples a deployment location inside the city's radius,
// biased toward the center.
func (w *World) placeInCity(rng *stats.RNG, cityIdx int) geo.Point {
	c := w.Cities[cityIdx]
	dist := c.RadiusKm() * rng.Float64() * rng.Float64() // center-biased
	return geo.Destination(c.Center, rng.Float64()*360, dist)
}

// newOwner creates an owner homed in a city.
func (w *World) newOwner(class OwnerClass, cityIdx int) *Owner {
	o := &Owner{
		Index:    len(w.Owners),
		Address:  w.newAddress("own"),
		Class:    class,
		HomeCity: cityIdx,
		Encashes: class == MiningPool || class == MegaOwner,
	}
	w.Owners = append(w.Owners, o)
	return o
}
