package simnet

import (
	"testing"

	"peoplesnet/internal/chain"
)

// genTest caches one generated test world per package test run.
var cachedResult *Result

func testWorld(t *testing.T) *Result {
	t.Helper()
	if cachedResult != nil {
		return cachedResult
	}
	res, err := Generate(TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	cachedResult = res
	return res
}

func TestGenerateBasics(t *testing.T) {
	res := testWorld(t)
	n := len(res.World.Hotspots)
	target := res.Cfg.TargetHotspots
	if n < target*7/10 || n > target*14/10 {
		t.Fatalf("hotspots = %d, want ≈%d", n, target)
	}
	if res.Chain.Height() <= 0 || res.Chain.TxnCount() == 0 {
		t.Fatal("chain empty")
	}
	if len(res.ConnectedByDay) != res.Cfg.Days {
		t.Fatalf("daily series length = %d", len(res.ConnectedByDay))
	}
	// Connected counts are monotone.
	for i := 1; i < len(res.ConnectedByDay); i++ {
		if res.ConnectedByDay[i] < res.ConnectedByDay[i-1] {
			t.Fatal("connected series decreased")
		}
	}
}

func TestGrowthShape(t *testing.T) {
	res := testWorld(t)
	days := res.Cfg.Days
	// The paper's ratio: ~20k connected on day 587 of 667 vs 44k at
	// the end — i.e., cumulative at 88% of the timeline is ≈45% of the
	// final count. Scaled worlds keep the exponent, so test the ratio.
	mid := res.ConnectedByDay[days*587/667]
	end := res.ConnectedByDay[days-1]
	ratio := float64(mid) / float64(end)
	if ratio < 0.32 || ratio > 0.60 {
		t.Fatalf("mid/end connected ratio = %v, want ≈0.45", ratio)
	}
}

func TestOnlineFraction(t *testing.T) {
	res := testWorld(t)
	days := res.Cfg.Days
	frac := float64(res.OnlineByDay[days-1]) / float64(res.ConnectedByDay[days-1])
	if frac < 0.65 || frac > 0.92 {
		t.Fatalf("online fraction = %v, want ≈%v", frac, res.Cfg.OnlineFraction)
	}
}

func TestInternationalGrowth(t *testing.T) {
	res := testWorld(t)
	days := res.Cfg.Days
	launch := res.Cfg.InternationalLaunchDay
	// Before the international launch everything online is US.
	if us, all := res.USOnlineByDay[launch-1], res.OnlineByDay[launch-1]; us != all {
		t.Fatalf("pre-launch: %d US of %d online", us, all)
	}
	// By the end a substantial share is international.
	us, all := res.USOnlineByDay[days-1], res.OnlineByDay[days-1]
	intlFrac := 1 - float64(us)/float64(all)
	if intlFrac < 0.15 || intlFrac > 0.6 {
		t.Fatalf("final international fraction = %v, want ≈0.4", intlFrac)
	}
}

func TestOwnershipDistribution(t *testing.T) {
	res := testWorld(t)
	counts := map[int]int{}
	totalOwners := 0
	maxOwned := 0
	for _, o := range res.World.Owners {
		n := len(o.Hotspots)
		if n == 0 {
			continue
		}
		totalOwners++
		counts[n]++
		if n > maxOwned {
			maxOwned = n
		}
	}
	if totalOwners == 0 {
		t.Fatal("no owners")
	}
	one := float64(counts[1]) / float64(totalOwners)
	// Paper §4.3: 62.1% own exactly one.
	if one < 0.45 || one < 0.0 || one > 0.8 {
		t.Fatalf("single-hotspot owners = %v, want ≈0.62", one)
	}
	atMost3 := float64(counts[1]+counts[2]+counts[3]) / float64(totalOwners)
	if atMost3 < 0.7 {
		t.Fatalf("owners with ≤3 = %v, want ≈0.84", atMost3)
	}
	// A dominant mega owner exists.
	if maxOwned < res.Cfg.TargetHotspots/50 {
		t.Fatalf("max owned = %d, want a mega owner", maxOwned)
	}
}

func TestTxnMixDominatedByPoC(t *testing.T) {
	res := testWorld(t)
	mix := res.Chain.TxnMix()
	poc := mix[chain.TxnPoCRequest] + mix[chain.TxnPoCReceipt]
	if poc == 0 {
		t.Fatal("no PoC transactions")
	}
	if res.MaterializedPoC != poc {
		t.Fatalf("materialized %d != chain PoC %d", res.MaterializedPoC, poc)
	}
	// Notional mix (§3): PoC ≈ 99.2% of all transactions.
	other := res.Chain.TxnCount() - poc
	notionalTotal := res.NotionalPoC + other
	frac := float64(res.NotionalPoC) / float64(notionalTotal)
	if frac < 0.97 || frac > 0.999 {
		t.Fatalf("notional PoC share = %v, want ≈0.992", frac)
	}
}

func TestMoveStatistics(t *testing.T) {
	res := testWorld(t)
	never, total := 0, 0
	for _, h := range res.World.Hotspots {
		if h.Cloud {
			continue
		}
		total++
		// AssertNonce 1 = only the initial assert.
		if h.AssertNonce <= 1 {
			never++
		}
	}
	frac := float64(never) / float64(total)
	if frac < 0.55 || frac > 0.85 {
		t.Fatalf("never-moved fraction = %v, want ≈0.72", frac)
	}
}

func TestResaleStatistics(t *testing.T) {
	res := testWorld(t)
	transferred, total := 0, 0
	var transferTxns int64
	for _, h := range res.World.Hotspots {
		if h.Cloud {
			continue
		}
		total++
		if h.Transfers > 0 {
			transferred++
		}
	}
	res.Chain.ScanType(chain.TxnTransferHotspot, func(_ int64, tx chain.Txn) bool {
		transferTxns++
		return true
	})
	frac := float64(transferred) / float64(total)
	// Paper: 8.6% of hotspots transferred. Late-added hotspots haven't
	// hit their scheduled dates, so allow slack below.
	if frac < 0.02 || frac > 0.15 {
		t.Fatalf("transferred fraction = %v, want ≈0.086", frac)
	}
	if transferTxns == 0 {
		t.Fatal("no transfer transactions on chain")
	}
	// Zero-DC transfers dominate (95.8%).
	var zero, all int64
	res.Chain.ScanType(chain.TxnTransferHotspot, func(_ int64, tx chain.Txn) bool {
		tr := tx.(*chain.TransferHotspot)
		all++
		if tr.AmountBones == 0 {
			zero++
		}
		return true
	})
	if float64(zero)/float64(all) < 0.9 {
		t.Fatalf("zero-DC transfer share = %v", float64(zero)/float64(all))
	}
}

func TestPeerbookRelaysPrevalent(t *testing.T) {
	res := testWorld(t)
	if res.Peerbook.Len() == 0 {
		t.Fatal("empty peerbook")
	}
	relayed := 0
	for _, e := range res.Peerbook.Entries() {
		if e.Addr.Relayed() {
			relayed++
		}
	}
	frac := float64(relayed) / float64(res.Peerbook.Len())
	// Paper §6.2: 55.48% relayed.
	if frac < 0.4 || frac > 0.7 {
		t.Fatalf("relayed fraction = %v, want ≈0.55", frac)
	}
}

func TestTrafficSpikeDuringArbitrage(t *testing.T) {
	res := testWorld(t)
	// Sum packets per close before, during, and after the arbitrage
	// window and require the spike shape of Fig 8.
	var during, after int64
	res.Chain.ScanType(chain.TxnStateChannelClose, func(h int64, tx chain.Txn) bool {
		cl := tx.(*chain.StateChannelClose)
		day := int(h / (24 * 60))
		switch {
		case day >= 379 && day < 392:
			during += cl.TotalPackets()
		case day >= 420 && day < 433:
			after += cl.TotalPackets()
		}
		return true
	})
	if during == 0 {
		t.Fatal("no traffic during the arbitrage window")
	}
	if during < after*3 {
		t.Fatalf("arbitrage window (%d pkts) should dwarf the weeks after (%d)", during, after)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := TestConfig(11)
	cfg.Days = 120
	cfg.TargetHotspots = 300
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Chain.TxnCount() != b.Chain.TxnCount() || len(a.World.Hotspots) != len(b.World.Hotspots) {
		t.Fatal("same seed diverged")
	}
	cfg2 := cfg
	cfg2.Seed = 12
	c, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Chain.TxnCount() == c.Chain.TxnCount() {
		t.Fatal("different seeds suspiciously identical")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestCheatersExist(t *testing.T) {
	res := testWorld(t)
	forgers, silent, clique := 0, 0, 0
	for _, h := range res.World.Hotspots {
		if h.Cheat.ForgeRSSI {
			forgers++
		}
		if h.Cheat.Clique > 0 {
			clique++
		}
		for _, mv := range h.Moves {
			if mv.Silent {
				silent++
				break
			}
		}
	}
	if forgers == 0 || silent == 0 || clique == 0 {
		t.Fatalf("cheats missing: forgers=%d silent=%d clique=%d", forgers, silent, clique)
	}
}

func TestCommercialFleetsDeployed(t *testing.T) {
	res := testWorld(t)
	byFleet := map[string]int{}
	for _, o := range res.World.Owners {
		if o.Class == Commercial {
			byFleet[o.Fleet] += len(o.Hotspots)
		}
	}
	for _, f := range res.Cfg.CommercialFleets {
		if byFleet[f.Name] == 0 {
			t.Fatalf("fleet %s has no hotspots", f.Name)
		}
	}
}

func TestValidatorsOnCloudASNs(t *testing.T) {
	res := testWorld(t)
	cloud := 0
	for _, h := range res.World.Hotspots {
		if h.Cloud {
			cloud++
			if h.Attachment.NATed || !h.Attachment.PublicIP.IsValid() {
				t.Fatal("validator without public cloud IP")
			}
		}
	}
	if cloud == 0 {
		t.Fatal("no validator lookalikes")
	}
}

func TestRegionalOutageEvent(t *testing.T) {
	// First pass: find the (city, ISP) pair with the most online
	// hotspots — the outage target (the paper's case was Spectrum in
	// Los Angeles). Outage injection consumes no randomness, so the
	// second pass regenerates the identical world plus the outage.
	cfg := TestConfig(17)
	cfg.Days = 450
	cfg.TargetHotspots = 1200
	base, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ city, isp string }
	counts := map[pair]int{}
	for _, h := range base.World.Hotspots {
		if h.AddedDay < 380 && h.Online && h.Attachment.ISP != nil {
			counts[pair{base.World.Cities[h.City].Name, h.Attachment.ISP.Name}]++
		}
	}
	var target pair
	victims := 0
	for p, n := range counts {
		if n > victims {
			target, victims = p, n
		}
	}
	if victims < 5 {
		t.Fatalf("no concentrated (city, ISP) pair found: max %d", victims)
	}

	cfg.Outages = []OutageEvent{{Day: 400, Days: 3, City: target.city, ISP: target.isp}}
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := res.OnlineByDay[399]
	during := res.OnlineByDay[400]
	after := res.OnlineByDay[404]
	if during >= before {
		t.Fatalf("no dip for %v (%d victims): before %d during %d", target, victims, before, during)
	}
	dip := before - during
	if dip < victims/3 {
		t.Fatalf("dip %d too small for ~%d victims", dip, victims)
	}
	if after <= during {
		t.Fatalf("no recovery: during %d after %d", during, after)
	}
	// Without the outage the same days show no comparable dip.
	baseDip := base.OnlineByDay[399] - base.OnlineByDay[400]
	if baseDip >= dip {
		t.Fatalf("control world dipped as much (%d) as the outage world (%d)", baseDip, dip)
	}
}
