package simnet

import (
	"math"
	"sort"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/econ"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/poc"
)

// ---------------------------------------------------------------------------
// Growth & ownership (§4.2, §4.3)

// stepGrowth adds the day's new hotspots.
func (s *simulator) stepGrowth(day int) {
	adds := s.growthAdds(day)
	for i := 0; i < adds; i++ {
		s.addHotspot(day)
	}
	// Validator lookalikes trickle in near the end of the window
	// (§6.1: cloud-hosted "hotspots" on Digital Ocean and Amazon).
	if day > s.cfg.Days-120 && s.w.rng.Bool(validatorPerDayProb(s.cfg)) {
		s.addValidator(day)
	}
}

func validatorPerDayProb(cfg Config) float64 {
	// ≈116 validators at full scale over the final 120 days.
	target := float64(cfg.TargetHotspots) * 116.0 / 44_000
	return target / 120
}

// chooseOwner decides who owns a new hotspot.
func (s *simulator) chooseOwner(day int) *Owner {
	rng := s.w.rng

	// Mega owner absorbs a share of late adds (max owner 1,903 by
	// May 2021, §4.3).
	if day > s.cfg.Days-110 {
		if s.megaOwner == nil {
			city, _ := s.w.cityByName("Dallas")
			s.megaOwner = s.w.newOwner(MegaOwner, city)
			s.fundOwner(s.megaOwner, day)
		}
		if rng.Bool(0.066) {
			return s.megaOwner
		}
	}
	// Active pools claim their fills.
	for _, p := range s.pools {
		if day >= p.bornDay && len(p.ownerHotspots(s)) < p.target && rng.Bool(0.05) {
			if p.owner == nil {
				p.owner = s.w.newOwner(MiningPool, p.city)
				s.fundOwner(p.owner, day)
			}
			return p.owner
		}
	}
	// Commercial fleets ramp in their windows.
	for _, f := range s.cfg.CommercialFleets {
		owned := 0
		for _, o := range s.fleetOwners[f.Name] {
			owned += len(o.Hotspots)
		}
		if owned < f.Hotspots && day > s.cfg.Days/2 && rng.Bool(0.02) {
			owners := s.fleetOwners[f.Name]
			// nowi-style fleets split across several wallets (§4.3.1).
			if len(owners) == 0 || (len(owners) < 1+f.Hotspots/13 && rng.Bool(0.3)) {
				city, ok := s.w.cityByName(f.City)
				if !ok {
					city = s.w.usCityIdx[0]
				}
				o := s.w.newOwner(Commercial, city)
				o.Fleet = f.Name
				s.fundOwner(o, day)
				owners = append(owners, o)
				s.fleetOwners[f.Name] = owners
			}
			return owners[rng.Intn(len(owners))]
		}
	}
	// Otherwise: fresh individual or preferential attachment.
	if rng.Bool(s.cfg.NewOwnerProb) || len(s.w.Owners) == 0 {
		intl := rng.Bool(s.intlShare(day))
		o := s.w.newOwner(Individual, s.w.pickCity(day, intl))
		s.fundOwner(o, day)
		return o
	}
	// Preferential attachment over individuals: weight ∝ owned^1.05.
	best := s.w.Owners[rng.Intn(len(s.w.Owners))]
	for tries := 0; tries < 12; tries++ {
		cand := s.w.Owners[rng.Intn(len(s.w.Owners))]
		if cand.Class != Individual {
			continue
		}
		if best.Class != Individual ||
			math.Pow(float64(len(cand.Hotspots)+1), 1.05)*rng.Float64() >
				math.Pow(float64(len(best.Hotspots)+1), 1.05)*rng.Float64() {
			best = cand
		}
	}
	if best.Class != Individual {
		o := s.w.newOwner(Individual, s.w.pickCity(day, rng.Bool(s.intlShare(day))))
		s.fundOwner(o, day)
		return o
	}
	return best
}

func (p *poolState) ownerHotspots(s *simulator) []int {
	if p.owner == nil {
		return nil
	}
	return p.owner.Hotspots
}

// intlShare ramps the international fraction of new adds from 0 at
// launch day to IntlShareEnd at the end (§4.2).
func (s *simulator) intlShare(day int) float64 {
	if day < s.cfg.InternationalLaunchDay {
		return 0
	}
	span := float64(s.cfg.Days - s.cfg.InternationalLaunchDay)
	return s.cfg.IntlShareEnd * float64(day-s.cfg.InternationalLaunchDay) / span
}

// fundOwner seeds a wallet with fee money via coinbase txns.
func (s *simulator) fundOwner(o *Owner, day int) {
	s.emit(&chain.DCCoinbase{Payee: o.Address, AmountDC: 500_000_000})
	s.emit(&chain.SecurityCoinbase{Payee: o.Address, AmountBones: 50 * chain.BonesPerHNT})
}

// addHotspot creates one hotspot: ownership, placement, ISP attach,
// move plan, cheat profile, and the add/assert transactions.
func (s *simulator) addHotspot(day int) *HotspotState {
	rng := s.w.rng
	owner := s.chooseOwner(day)

	// Placement: pools and commercial fleets deploy in their city;
	// individuals deploy at home (occasionally travelling).
	city := owner.HomeCity
	if owner.Class == Individual && rng.Bool(0.08) {
		city = s.w.pickCity(day, rng.Bool(s.intlShare(day)))
	}
	if owner.Class == MegaOwner {
		city = s.w.pickCity(day, false) // distributed across the US (Fig 6)
	}
	loc := s.w.placeInCity(city)
	if owner.Class == MiningPool {
		// Pools space hotspots out for reward efficiency (§4.3.2):
		// resample until ≥1 km from the pool's other hotspots.
		for tries := 0; tries < 8; tries++ {
			ok := true
			for _, idx := range owner.Hotspots {
				if geo.HaversineKm(loc, s.w.Hotspots[idx].Asserted) < 1.0 {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			loc = s.w.placeInCity(city)
		}
	}

	h := &HotspotState{
		Index:    len(s.w.Hotspots),
		Address:  s.w.newAddress("hs"),
		OwnerIdx: owner.Index,
		City:     city,
		AddedDay: day,
		Actual:   loc,
		Online:   true,
	}
	owner.Hotspots = append(owner.Hotspots, h.Index)
	s.w.Hotspots = append(s.w.Hotspots, h)

	// ISP attachment.
	h.Attachment = s.w.Registry.Attach(s.w.market(city), rng)

	// A few percent of handlers install elevated, high-gain antennas,
	// producing the long witness-distance tail of Fig 13.
	h.Elevated = rng.Bool(0.04)

	// Cheats.
	if rng.Bool(s.cfg.RSSIForgerFrac) {
		h.Cheat.ForgeRSSI = true
	}
	if rng.Bool(s.cfg.AbsurdRSSIFrac) {
		h.Cheat.AbsurdRSSI = true
	}
	if city == s.cliqueCity && s.cfg.CliqueCount > 0 {
		for cl := 1; cl <= s.cfg.CliqueCount; cl++ {
			if s.cliqueFill[cl] < s.cfg.CliqueSize {
				s.cliqueFill[cl]++
				h.Cheat.Clique = cl
				break
			}
		}
	}

	s.emit(&chain.AddGateway{Gateway: h.Address, Owner: owner.Address, Maker: maker(day)})

	// First assertion: usually the real spot, occasionally the (0,0)
	// GPS-failure artifact that gets corrected later (§4.1).
	first := loc
	zeroFirst := s.zeroLeft > 0 && rng.Bool(float64(s.cfg.ZeroZeroCount)/float64(s.cfg.TargetHotspots))
	if zeroFirst {
		s.zeroLeft--
		first = geo.Point{}
	}
	h.Asserted = first
	h.Cell = assertCell(first)
	h.AssertNonce = 1
	s.emit(&chain.AssertLocation{
		Gateway: h.Address, Owner: owner.Address, Location: h.Cell, Nonce: 1,
	})

	s.planMoves(h, owner, day, zeroFirst)
	s.planResale(h, day)
	return h
}

// maker labels vendor batches by era.
func maker(day int) string {
	switch {
	case day < 200:
		return "OG-Helium"
	case day < 450:
		return "RAK"
	case day%3 == 0:
		return "Bobcat"
	case day%3 == 1:
		return "Nebra"
	default:
		return "SenseCAP"
	}
}

// addValidator creates a cloud-hosted validator lookalike: appears as
// a hotspot on the chain, never witnesses or ferries data.
func (s *simulator) addValidator(day int) {
	rng := s.w.rng
	owner := s.w.newOwner(ValidatorOp, s.w.usCityIdx[rng.Intn(len(s.w.usCityIdx))])
	s.fundOwner(owner, day)
	h := &HotspotState{
		Index:    len(s.w.Hotspots),
		Address:  s.w.newAddress("va"),
		OwnerIdx: owner.Index,
		City:     owner.HomeCity,
		AddedDay: day,
		Online:   true,
		Cloud:    true,
	}
	owner.Hotspots = append(owner.Hotspots, h.Index)
	s.w.Hotspots = append(s.w.Hotspots, h)
	h.Attachment = s.w.Registry.AttachCloud(rng)
	// Validators assert nothing — they are the "hotspots that never
	// transmit packets" of §4.1.
	s.emit(&chain.AddGateway{Gateway: h.Address, Owner: owner.Address, Maker: "validator"})
}

// ---------------------------------------------------------------------------
// Moves (§4.1) & resale (§4.3.3)

// planMoves schedules a hotspot's relocations at creation time.
func (s *simulator) planMoves(h *HotspotState, owner *Owner, day int, zeroFirst bool) {
	rng := s.w.rng
	var moves []moveEvent

	if zeroFirst {
		// The (0,0) artifact is corrected quickly with a real assert.
		moves = append(moves, moveEvent{Day: day + 1 + rng.Intn(5), Dest: h.Actual})
	}

	if !rng.Bool(s.cfg.NeverMoveFrac) {
		// How many (non-correction) moves: most movers move once or
		// twice (the two free asserts), few more than five.
		n := 1
		u := rng.Float64()
		switch {
		case u < 0.62:
			n = 1
		case u < 0.85:
			n = 2
		case u < 0.95:
			n = 3 + rng.Intn(2)
		default:
			n = 5 + rng.Geometric(0.5)
		}
		from := h.Actual
		for i := 0; i < n; i++ {
			dt := s.moveInterval()
			moveDay := day + dt
			if i > 0 {
				moveDay = moves[len(moves)-1].Day + dt
			}
			var dest geo.Point
			switch {
			case i == 0 && rng.Bool(0.7):
				// Test-then-deploy: a short local hop.
				dest = geo.Destination(from, rng.Float64()*360, 0.2+rng.Float64()*8)
			case rng.Bool(0.1) && s.cfg.ZeroZeroCount > 0 && rng.Bool(0.05):
				// Rare relocation *to* (0,0) (fat-finger / test).
				dest = geo.Point{}
			case rng.Bool(0.12):
				// Long-distance move: resale-driven US→EU export or a
				// cross-country hop (Fig 3c).
				dest = s.longMoveDest(moveDay)
			default:
				dest = geo.Destination(from, rng.Float64()*360, 1+rng.Float64()*40)
			}
			moves = append(moves, moveEvent{Day: moveDay, Dest: dest})
			if !dest.IsZero() {
				from = dest
			}
		}
	}

	// Silent movers relocate physically without asserting (§7.1). The
	// move must land inside the observation window to be detectable.
	if rng.Bool(s.cfg.SilentMoverFrac) && day < s.cfg.Days-60 {
		moveDay := day + 30 + rng.Intn(maxi(30, s.cfg.Days-day-45))
		moves = append(moves, moveEvent{
			Day: moveDay, Dest: s.longMoveDest(moveDay), Silent: true,
		})
	}

	// The paper's twenty-move outlier, owned by a large account.
	if s.outlier == nil && owner.Class == MegaOwner {
		s.outlier = h
		from := h.Actual
		for i := 0; i < 20; i++ {
			from = geo.Destination(from, rng.Float64()*360, 5+rng.Float64()*300)
			moves = append(moves, moveEvent{Day: day + 2 + i*4, Dest: from})
		}
	}
	// Execution scans the plan in order; keep it day-sorted so a
	// far-future move cannot block earlier ones.
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].Day < moves[j].Day })
	h.Moves = moves
}

// moveInterval samples days between relocations to match Fig 4:
// 17.9% within a day, 35.8% within a week, 63.2% within a month.
func (s *simulator) moveInterval() int {
	rng := s.w.rng
	u := rng.Float64()
	switch {
	case u < 0.179:
		return 0 // same day (hour-level spacing)
	case u < 0.358:
		return 1 + rng.Intn(6)
	case u < 0.632:
		return 7 + rng.Intn(23)
	default:
		return 30 + int(rng.Exponential(1.0/60))
	}
}

// longMoveDest picks a far destination: Europe once international
// sales open, else across the US. Destinations are population-
// weighted — hardware moves to where people (and other hotspots)
// are, which is also what makes silent movers detectable (§7.1's
// examples resurface in New York, not in an empty town).
func (s *simulator) longMoveDest(day int) geo.Point {
	return s.w.placeInCity(s.w.pickCity(day, s.w.rng.Bool(0.7)))
}

// stepMoves executes scheduled relocations.
func (s *simulator) stepMoves(day int) {
	for _, h := range s.w.Hotspots {
		for h.MoveIdx < len(h.Moves) && h.Moves[h.MoveIdx].Day <= day {
			mv := h.Moves[h.MoveIdx]
			h.MoveIdx++
			h.Actual = mv.Dest
			if mv.Dest.IsZero() {
				h.Actual = h.Asserted // (0,0) asserts don't move hardware
			}
			if mv.Silent {
				continue // physical move, no transaction (§7.1)
			}
			h.Asserted = mv.Dest
			h.Cell = assertCell(mv.Dest)
			h.AssertNonce++
			s.emit(&chain.AssertLocation{
				Gateway:  h.Address,
				Owner:    s.w.Owners[h.OwnerIdx].Address,
				Location: h.Cell,
				Nonce:    h.AssertNonce,
			})
			// Moving to another city re-homes the backhaul. Before the
			// international launch no hardware operates abroad, so a
			// border-adjacent hop cannot re-home to a foreign metro.
			if city := s.nearestCity(mv.Dest); city >= 0 && city != h.City && !mv.Dest.IsZero() {
				if s.w.Cities[city].Country == "US" || day >= s.cfg.InternationalLaunchDay {
					h.City = city
					h.Attachment = s.w.Registry.Attach(s.w.market(city), s.w.rng)
				}
			}
		}
	}
}

// nearestCity finds the closest city within 150 km, or -1.
func (s *simulator) nearestCity(p geo.Point) int {
	best, bestKm := -1, 150.0
	// Scan majors only — towns are tiny and the re-homing effect is
	// what matters, not exactness.
	for i := range s.w.Cities {
		if i >= len(majorCities) {
			break
		}
		if d := geo.HaversineKm(p, s.w.Cities[i].Center); d < bestKm {
			best, bestKm = i, d
		}
	}
	return best
}

// planResale schedules ownership transfers (§4.3.3).
func (s *simulator) planResale(h *HotspotState, day int) {
	rng := s.w.rng
	if !rng.Bool(s.cfg.ResaleFrac) {
		return
	}
	first := s.cfg.ResaleStartDay + rng.Intn(maxi(1, s.cfg.Days-s.cfg.ResaleStartDay))
	if first <= day {
		first = day + 30
	}
	n := 1
	u := rng.Float64()
	switch {
	case u < 0.70:
		n = 1
	case u < 0.954:
		n = 2
	default:
		n = 3 + rng.Intn(5)
	}
	for i := 0; i < n; i++ {
		s.resaleQueue = append(s.resaleQueue, resaleEvent{Day: first + i*(20+rng.Intn(60)), Hotspot: h.Index})
	}
}

type resaleEvent struct {
	Day     int
	Hotspot int
}

// stepResale executes due transfers.
func (s *simulator) stepResale(day int) {
	rng := s.w.rng
	rest := s.resaleQueue[:0]
	for _, ev := range s.resaleQueue {
		if ev.Day > day {
			rest = append(rest, ev)
			continue
		}
		if ev.Day < day { // missed (should not happen); drop
			continue
		}
		h := s.w.Hotspots[ev.Hotspot]
		seller := s.w.Owners[h.OwnerIdx]
		// Buyer: usually a fresh owner; sometimes an active flipper.
		var buyer *Owner
		if rng.Bool(0.8) || len(s.w.Owners) < 4 {
			intl := rng.Bool(s.intlShare(day)) // exports skew late
			buyer = s.w.newOwner(Individual, s.w.pickCity(day, intl))
			s.fundOwner(buyer, day)
		} else {
			buyer = s.w.Owners[rng.Intn(len(s.w.Owners))]
			if buyer == seller {
				rest = append(rest, resaleEvent{Day: day + 1, Hotspot: ev.Hotspot})
				continue
			}
		}
		amount := int64(0)
		if !rng.Bool(s.cfg.ResaleZeroDCProb) {
			amount = int64(5+rng.Intn(30)) * chain.BonesPerHNT
		}
		s.emit(&chain.TransferHotspot{
			Gateway: h.Address, Seller: seller.Address, Buyer: buyer.Address, AmountBones: amount,
		})
		// Bookkeeping.
		removeHotspot(seller, h.Index)
		buyer.Hotspots = append(buyer.Hotspots, h.Index)
		h.OwnerIdx = buyer.Index
		h.Transfers++
		// Exported hotspots relocate to the buyer's home (Fig 3c).
		if rng.Bool(s.cfg.ResaleExportProb) {
			dest := s.w.placeInCity(buyer.HomeCity)
			h.Moves = append(h.Moves, moveEvent{Day: day + 3 + rng.Intn(20), Dest: dest})
		}
	}
	s.resaleQueue = rest
}

func removeHotspot(o *Owner, idx int) {
	for i, v := range o.Hotspots {
		if v == idx {
			o.Hotspots = append(o.Hotspots[:i], o.Hotspots[i+1:]...)
			return
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// OUIs (§5.2)

func (s *simulator) stepOUIs(day int) {
	for _, o := range s.thirdOUIs {
		if o.bornDay == day {
			s.emit(&chain.DCCoinbase{Payee: o.wallet, AmountDC: 1 << 40})
			s.emit(&chain.OUIRegistration{OUI: o.oui, Owner: o.wallet})
		}
	}
}

// ---------------------------------------------------------------------------
// PoC (§2.3, §7)

// rebuildFleet refreshes the PoC spatial index (weekly).
func (s *simulator) rebuildFleet(day int) {
	sites := make([]*poc.Site, 0, len(s.w.Hotspots))
	s.onlineIdx = s.onlineIdx[:0]
	for _, h := range s.w.Hotspots {
		if h.Cloud {
			continue // validators never radio
		}
		site := h.Site(s.w.Cities[h.City].EnvUrban)
		sites = append(sites, site)
		if h.Online {
			s.onlineIdx = append(s.onlineIdx, len(sites)-1)
		}
	}
	s.fleet = poc.NewFleet(sites)
	s.fleetDay = day
}

func (s *simulator) stepPoC(day int) {
	if len(s.w.Hotspots) < 3 {
		return
	}
	if s.fleet == nil || day-s.fleetDay >= 7 {
		s.rebuildFleet(day)
	}
	if len(s.onlineIdx) < 2 {
		return
	}
	rng := s.w.rng
	// Challenge volume scales with network size.
	frac := float64(len(s.w.Hotspots)) / float64(s.cfg.TargetHotspots)
	k := int(math.Ceil(float64(s.cfg.PoCSamplePerDay) * frac))
	usedChallenger := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		ci := s.onlineIdx[rng.Intn(len(s.onlineIdx))]
		ti := s.onlineIdx[rng.Intn(len(s.onlineIdx))]
		if ci == ti || usedChallenger[ci] {
			continue // one challenge per challenger per day (interval rule)
		}
		usedChallenger[ci] = true
		challenger := s.fleet.Sites[ci]
		challengee := s.fleet.Sites[ti]
		rcpt := s.engine.RunChallenge(s.fleet, challenger, challengee, rng)
		s.emit(&chain.PoCRequest{Challenger: challenger.Address, SecretHash: chain.SCID(challenger.Address, int64(day*1000+i))})
		s.emit(rcpt.ToTxn())
		s.res.MaterializedPoC += 2
		s.res.NotionalPoC += int64(2 * s.cfg.PoCWeight)

		// Reward accounting.
		s.dayChallenger[challenger.Address]++
		s.dayBeacons[challengee.Address]++
		for _, w := range rcpt.Witnesses {
			if w.Valid {
				s.dayWitness[w.Witness]++
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Traffic (§5)

// packetsPerDay models organic traffic growth toward the final
// ~14 pkt/s, plus the HIP10 arbitrage spike (Fig 8).
func (s *simulator) packetsPerDay(day int) (console, third, spam int64) {
	frac := float64(len(s.w.Hotspots)) / float64(s.cfg.TargetHotspots)
	organic := s.cfg.PacketsPerSecondEnd * 86400 * math.Pow(frac, 1.4)
	// Third-party routers ramp late (§5.3.1).
	thirdShare := 0.0
	if day > s.cfg.Days*2/3 {
		thirdShare = (1 - s.cfg.ConsoleShare) * float64(day-s.cfg.Days*2/3) / float64(s.cfg.Days/3)
	}
	console = int64(organic * (1 - thirdShare))
	third = int64(organic * thirdShare)

	// Arbitrage window: DC payments live (Aug 12) → HIP10 (Aug 24),
	// decaying tail to Sep 6 (§5.3.2).
	dcLive := s.dayOf(econ.DCPaymentsLiveDate)
	hip10 := s.dayOf(econ.HIP10Date)
	tailEnd := hip10 + 13
	if day >= dcLive && day < tailEnd {
		mult := s.cfg.ArbitrageMultiplier
		if day >= hip10 {
			mult *= math.Exp(-float64(day-hip10) / 4)
		}
		spam = int64(organic * mult)
	}
	return
}

// dayOf converts a calendar date into a day index of the timeline.
func (s *simulator) dayOf(t time.Time) int {
	return int(t.Sub(s.cfg.Start).Hours() / 24)
}
