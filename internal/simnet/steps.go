package simnet

// steps.go is the coordinator half of the daily loop: everything whose
// order matters globally — owner choice and address minting, funding,
// validator adds, OUI registrations, resale execution. The
// embarrassingly-local per-hotspot steps live in region.go and run on
// the region workers.

import (
	"math"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/econ"
	"peoplesnet/internal/geo"
)

// ---------------------------------------------------------------------------
// Growth & ownership (§4.2, §4.3)

// stepGrowth plans the day's new hotspots: the coordinator decides
// ownership, city, and address (order-dependent global state), then
// dispatches each add to its region's inbox for placement, line
// attachment, and transaction emission during the worker phase.
func (s *simulator) stepGrowth(day int) {
	adds := s.growthAdds(day)
	for i := 0; i < adds; i++ {
		s.planAdd(day)
	}
	// Validator lookalikes trickle in near the end of the window
	// (§6.1: cloud-hosted "hotspots" on Digital Ocean and Amazon).
	if day > s.cfg.Days-120 && s.rng.Bool(validatorPerDayProb(s.cfg)) {
		s.addValidator(day)
	}
}

func validatorPerDayProb(cfg Config) float64 {
	// ≈116 validators at full scale over the final 120 days.
	target := float64(cfg.TargetHotspots) * 116.0 / 44_000
	return target / 120
}

// chooseOwner decides who owns a new hotspot.
func (s *simulator) chooseOwner(day int) *Owner {
	rng := s.rng

	// Mega owner absorbs a share of late adds (max owner 1,903 by
	// May 2021, §4.3).
	if day > s.cfg.Days-110 {
		if s.megaOwner == nil {
			city, _ := s.w.cityByName("Dallas")
			s.megaOwner = s.w.newOwner(MegaOwner, city)
			s.fundOwner(s.megaOwner, day)
		}
		if rng.Bool(0.066) {
			return s.megaOwner
		}
	}
	// Active pools claim their fills.
	for _, p := range s.pools {
		if day >= p.bornDay && len(p.ownerHotspots(s)) < p.target && rng.Bool(0.05) {
			if p.owner == nil {
				p.owner = s.w.newOwner(MiningPool, p.city)
				s.fundOwner(p.owner, day)
			}
			return p.owner
		}
	}
	// Commercial fleets ramp in their windows.
	for _, f := range s.cfg.CommercialFleets {
		owned := 0
		for _, o := range s.fleetOwners[f.Name] {
			owned += len(o.Hotspots)
		}
		if owned < f.Hotspots && day > s.cfg.Days/2 && rng.Bool(0.02) {
			owners := s.fleetOwners[f.Name]
			// nowi-style fleets split across several wallets (§4.3.1).
			if len(owners) == 0 || (len(owners) < 1+f.Hotspots/13 && rng.Bool(0.3)) {
				city, ok := s.w.cityByName(f.City)
				if !ok {
					city = s.w.usCityIdx[0]
				}
				o := s.w.newOwner(Commercial, city)
				o.Fleet = f.Name
				s.fundOwner(o, day)
				owners = append(owners, o)
				s.fleetOwners[f.Name] = owners
			}
			return owners[rng.Intn(len(owners))]
		}
	}
	// Otherwise: fresh individual or preferential attachment.
	if rng.Bool(s.cfg.NewOwnerProb) || len(s.w.Owners) == 0 {
		intl := rng.Bool(s.intlShare(day))
		o := s.w.newOwner(Individual, s.w.pickCity(rng, day, intl))
		s.fundOwner(o, day)
		return o
	}
	// Preferential attachment over individuals: weight ∝ owned^1.05.
	best := s.w.Owners[rng.Intn(len(s.w.Owners))]
	for tries := 0; tries < 12; tries++ {
		cand := s.w.Owners[rng.Intn(len(s.w.Owners))]
		if cand.Class != Individual {
			continue
		}
		if best.Class != Individual ||
			math.Pow(float64(len(cand.Hotspots)+1), 1.05)*rng.Float64() >
				math.Pow(float64(len(best.Hotspots)+1), 1.05)*rng.Float64() {
			best = cand
		}
	}
	if best.Class != Individual {
		o := s.w.newOwner(Individual, s.w.pickCity(rng, day, rng.Bool(s.intlShare(day))))
		s.fundOwner(o, day)
		return o
	}
	return best
}

func (p *poolState) ownerHotspots(s *simulator) []int {
	if p.owner == nil {
		return nil
	}
	return p.owner.Hotspots
}

// intlShare ramps the international fraction of new adds from 0 at
// launch day to IntlShareEnd at the end (§4.2).
func (s *simulator) intlShare(day int) float64 {
	if day < s.cfg.InternationalLaunchDay {
		return 0
	}
	span := float64(s.cfg.Days - s.cfg.InternationalLaunchDay)
	return s.cfg.IntlShareEnd * float64(day-s.cfg.InternationalLaunchDay) / span
}

// fundOwner seeds a wallet with fee money via coinbase txns. Emitted
// during planning (earlyBuf), so the wallet exists on-chain before any
// same-day hotspot the regions add for it.
func (s *simulator) fundOwner(o *Owner, day int) {
	s.emit(&chain.DCCoinbase{Payee: o.Address, AmountDC: 500_000_000})
	s.emit(&chain.SecurityCoinbase{Payee: o.Address, AmountBones: 50 * chain.BonesPerHNT})
}

// planAdd creates one hotspot's global identity — owner, city,
// address, the zero-first and outlier flags — and hands the rest
// (placement, line, cheats, plans, transactions) to its region.
func (s *simulator) planAdd(day int) {
	rng := s.rng
	owner := s.chooseOwner(day)

	// Placement: pools and commercial fleets deploy in their city;
	// individuals deploy at home (occasionally travelling).
	city := owner.HomeCity
	if owner.Class == Individual && rng.Bool(0.08) {
		city = s.w.pickCity(rng, day, rng.Bool(s.intlShare(day)))
	}
	if owner.Class == MegaOwner {
		city = s.w.pickCity(rng, day, false) // distributed across the US (Fig 6)
	}

	h := &HotspotState{
		Index:    len(s.w.Hotspots),
		Address:  s.w.newAddress("hs"),
		OwnerIdx: owner.Index,
		City:     city,
		AddedDay: day,
		Online:   true,
		region:   s.w.regionOfCity[city],
	}
	owner.Hotspots = append(owner.Hotspots, h.Index)
	s.w.Hotspots = append(s.w.Hotspots, h)

	// Occasionally the first assertion is the (0,0) GPS-failure
	// artifact that gets corrected later (§4.1). The budget is global,
	// so the coordinator rolls it.
	zeroFirst := s.zeroLeft > 0 && rng.Bool(float64(s.cfg.ZeroZeroCount)/float64(s.cfg.TargetHotspots))
	if zeroFirst {
		s.zeroLeft--
	}
	// The paper's twenty-move outlier: the mega owner's first hotspot.
	outlier := false
	if !s.outlierPlanned && owner.Class == MegaOwner {
		outlier = true
		s.outlierPlanned = true
	}

	r := s.regions[h.region]
	r.hotspots = append(r.hotspots, h.Index)
	r.inbox = append(r.inbox, addOrder{hIdx: h.Index, zeroFirst: zeroFirst, outlier: outlier})
}

// maker labels vendor batches by era.
func maker(day int) string {
	switch {
	case day < 200:
		return "OG-Helium"
	case day < 450:
		return "RAK"
	case day%3 == 0:
		return "Bobcat"
	case day%3 == 1:
		return "Nebra"
	default:
		return "SenseCAP"
	}
}

// addValidator creates a cloud-hosted validator lookalike: appears as
// a hotspot on the chain, never witnesses or ferries data. Validators
// have no location and no radio, so no region simulates them — the
// coordinator finishes them inline.
func (s *simulator) addValidator(day int) {
	rng := s.rng
	owner := s.w.newOwner(ValidatorOp, s.w.usCityIdx[rng.Intn(len(s.w.usCityIdx))])
	s.fundOwner(owner, day)
	h := &HotspotState{
		Index:    len(s.w.Hotspots),
		Address:  s.w.newAddress("va"),
		OwnerIdx: owner.Index,
		City:     owner.HomeCity,
		AddedDay: day,
		Online:   true,
		Cloud:    true,
		region:   -1,
	}
	owner.Hotspots = append(owner.Hotspots, h.Index)
	s.w.Hotspots = append(s.w.Hotspots, h)
	h.Attachment = s.w.Registry.AttachCloud(rng)
	// Validators assert nothing — they are the "hotspots that never
	// transmit packets" of §4.1.
	s.emit(&chain.AddGateway{Gateway: h.Address, Owner: owner.Address, Maker: "validator"})
}

// ---------------------------------------------------------------------------
// Moves (§4.1) & resale (§4.3.3)

// nearestCity finds the closest city within 150 km, or -1.
func (w *World) nearestCity(p geo.Point) int {
	best, bestKm := -1, 150.0
	// Scan majors only — towns are tiny and the re-homing effect is
	// what matters, not exactness.
	for i := range w.Cities {
		if i >= len(majorCities) {
			break
		}
		if d := geo.HaversineKm(p, w.Cities[i].Center); d < bestKm {
			best, bestKm = i, d
		}
	}
	return best
}

type resaleEvent struct {
	Day     int
	Hotspot int
}

// stepResale executes due transfers. Runs after the day barrier:
// buyers are drawn from the global owner roster, and a transfer may
// re-home the hotspot anywhere, so resale stays on the coordinator.
func (s *simulator) stepResale(day int) {
	rng := s.rng
	rest := s.resaleQueue[:0]
	for _, ev := range s.resaleQueue {
		if ev.Day > day {
			rest = append(rest, ev)
			continue
		}
		if ev.Day < day { // missed (should not happen); drop
			continue
		}
		h := s.w.Hotspots[ev.Hotspot]
		seller := s.w.Owners[h.OwnerIdx]
		// Buyer: usually a fresh owner; sometimes an active flipper.
		var buyer *Owner
		if rng.Bool(0.8) || len(s.w.Owners) < 4 {
			intl := rng.Bool(s.intlShare(day)) // exports skew late
			buyer = s.w.newOwner(Individual, s.w.pickCity(rng, day, intl))
			s.fundOwner(buyer, day)
		} else {
			buyer = s.w.Owners[rng.Intn(len(s.w.Owners))]
			if buyer == seller {
				rest = append(rest, resaleEvent{Day: day + 1, Hotspot: ev.Hotspot})
				continue
			}
		}
		amount := int64(0)
		if !rng.Bool(s.cfg.ResaleZeroDCProb) {
			amount = int64(5+rng.Intn(30)) * chain.BonesPerHNT
		}
		s.emit(&chain.TransferHotspot{
			Gateway: h.Address, Seller: seller.Address, Buyer: buyer.Address, AmountBones: amount,
		})
		// Bookkeeping.
		removeHotspot(seller, h.Index)
		buyer.Hotspots = append(buyer.Hotspots, h.Index)
		h.OwnerIdx = buyer.Index
		h.Transfers++
		// Exported hotspots relocate to the buyer's home (Fig 3c).
		if rng.Bool(s.cfg.ResaleExportProb) {
			dest := s.w.placeInCity(rng, buyer.HomeCity)
			h.Moves = append(h.Moves, moveEvent{Day: day + 3 + rng.Intn(20), Dest: dest})
		}
	}
	s.resaleQueue = rest
}

func removeHotspot(o *Owner, idx int) {
	for i, v := range o.Hotspots {
		if v == idx {
			o.Hotspots = append(o.Hotspots[:i], o.Hotspots[i+1:]...)
			return
		}
	}
}

// ---------------------------------------------------------------------------
// OUIs (§5.2)

func (s *simulator) stepOUIs(day int) {
	for _, o := range s.thirdOUIs {
		if o.bornDay == day {
			s.emit(&chain.DCCoinbase{Payee: o.wallet, AmountDC: 1 << 40})
			s.emit(&chain.OUIRegistration{OUI: o.oui, Owner: o.wallet})
		}
	}
}

// ---------------------------------------------------------------------------
// Traffic (§5)

// packetsPerDay models organic traffic growth toward the final
// ~14 pkt/s, plus the HIP10 arbitrage spike (Fig 8).
func (s *simulator) packetsPerDay(day int) (console, third, spam int64) {
	frac := float64(len(s.w.Hotspots)) / float64(s.cfg.TargetHotspots)
	organic := s.cfg.PacketsPerSecondEnd * 86400 * math.Pow(frac, 1.4)
	// Third-party routers ramp late (§5.3.1).
	thirdShare := 0.0
	if day > s.cfg.Days*2/3 {
		thirdShare = (1 - s.cfg.ConsoleShare) * float64(day-s.cfg.Days*2/3) / float64(s.cfg.Days/3)
	}
	console = int64(organic * (1 - thirdShare))
	third = int64(organic * thirdShare)

	// Arbitrage window: DC payments live (Aug 12) → HIP10 (Aug 24),
	// decaying tail to Sep 6 (§5.3.2).
	dcLive := s.dayOf(econ.DCPaymentsLiveDate)
	hip10 := s.dayOf(econ.HIP10Date)
	tailEnd := hip10 + 13
	if day >= dcLive && day < tailEnd {
		mult := s.cfg.ArbitrageMultiplier
		if day >= hip10 {
			mult *= math.Exp(-float64(day-hip10) / 4)
		}
		spam = int64(organic * mult)
	}
	return
}

// dayOf converts a calendar date into a day index of the timeline.
func (s *simulator) dayOf(t time.Time) int {
	return int(t.Sub(s.cfg.Start).Hours() / 24)
}
