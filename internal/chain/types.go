// Package chain implements the simulated Helium blockchain: the
// transaction vocabulary the paper's analyses consume (§3), a
// validating ledger state machine (hotspots, wallets, OUIs, state
// channels), block production at a nominal one block per minute, and
// query helpers for scanning transaction history.
//
// The real chain defines 20 native transaction types; this package
// implements the fourteen that carry the information the measurement
// study uses and reserves identifiers for the rest. Amounts follow the
// real system's units: HNT is held in "bones" (1 HNT = 10^8 bones) and
// Data Credits (DC) are integral, pegged at $0.00001 per DC.
package chain

import "fmt"

// TxnType identifies a native transaction variant.
type TxnType uint8

// The transaction vocabulary. Values are stable; they appear in
// serialized ledgers.
const (
	TxnUnknown TxnType = iota
	TxnAddGateway
	TxnAssertLocation
	TxnTransferHotspot
	TxnPoCRequest
	TxnPoCReceipt
	TxnStateChannelOpen
	TxnStateChannelClose
	TxnPayment
	TxnTokenBurn
	TxnOUI
	TxnRewards
	TxnConsensusGroup
	TxnStakeValidator
	TxnRoutingUpdate
	TxnDCCoinbase
	TxnSecurityCoinbase

	// Reserved identifiers for the remaining native types the study
	// does not analyze (chain vars, price oracle, etc.). They never
	// appear in simulated ledgers but keep the numbering aligned with
	// "20 native transactions".
	txnReserved17
	txnReserved18
	txnReserved19
	txnReserved20
)

var txnNames = map[TxnType]string{
	TxnAddGateway:        "add_gateway",
	TxnAssertLocation:    "assert_location",
	TxnTransferHotspot:   "transfer_hotspot",
	TxnPoCRequest:        "poc_request",
	TxnPoCReceipt:        "poc_receipt",
	TxnStateChannelOpen:  "state_channel_open",
	TxnStateChannelClose: "state_channel_close",
	TxnPayment:           "payment",
	TxnTokenBurn:         "token_burn",
	TxnOUI:               "oui",
	TxnRewards:           "rewards",
	TxnConsensusGroup:    "consensus_group",
	TxnStakeValidator:    "stake_validator",
	TxnRoutingUpdate:     "routing_update",
	TxnDCCoinbase:        "dc_coinbase",
	TxnSecurityCoinbase:  "security_coinbase",
}

// String returns the snake_case name used on the real chain.
func (t TxnType) String() string {
	if n, ok := txnNames[t]; ok {
		return n
	}
	return fmt.Sprintf("txn_type_%d", uint8(t))
}

// ParseTxnType resolves a snake_case transaction name ("payment",
// "state_channel_close", …) to its TxnType.
func ParseTxnType(name string) (TxnType, bool) {
	for tt, n := range txnNames {
		if n == name {
			return tt, true
		}
	}
	return TxnUnknown, false
}

// Monetary units.
const (
	BonesPerHNT = 100_000_000 // 1 HNT = 1e8 bones
	// USDPerDC is the fixed Data Credit price: $0.00001 (§2.4).
	USDPerDC = 0.00001
)

// Fee schedule (in DC), following the real network's implied-burn
// pricing the paper cites.
const (
	// FeeAssertLocationDC is the $10 assert_location fee (§3).
	FeeAssertLocationDC = 1_000_000
	// FeeAddGatewayDC is the $40 gateway onboarding fee. (§7.1's
	// "$40USD cost to re-assert" conflates onboarding and assert; we
	// keep the two fees distinct.)
	FeeAddGatewayDC = 4_000_000
	// FreeAssertsPerHotspot: Helium pays the assert fee for a
	// hotspot's first two moves (§4.1).
	FreeAssertsPerHotspot = 2
	// FeeOUIDC is the cost of purchasing an OUI.
	FeeOUIDC = 10_000_000
	// FeeDCPerByte prices data packets: 1 DC per 24-byte increment,
	// minimum 1 DC per packet.
	DCPacketBytes = 24
)

// State-channel protocol constants (§5.1).
const (
	// StateChannelMinBlocks and MaxBlocks bound a channel's lifetime,
	// per the blockchain-core check the paper quotes (footnote 9).
	StateChannelMinBlocks = 10
	StateChannelMaxBlocks = 10_080 // one week of one-minute blocks
	// StateChannelGraceBlocks is the dispute window after a close in
	// which omitted hotspots may file a signed demand.
	StateChannelGraceBlocks = 10
)

// PoC protocol constants.
const (
	// PoCChallengeIntervalBlocks is how often a hotspot may issue a
	// challenge (§7.1: "every 480 blocks").
	PoCChallengeIntervalBlocks = 480
	// WitnessMinDistanceM is HIP15's witness distance floor (§8.2.1).
	WitnessMinDistanceM = 300
)

// BlockIntervalSec is the nominal block time (§3: one block ≈ 60 s).
const BlockIntervalSec = 60

// BlocksPerDay at the nominal block interval.
const BlocksPerDay = 24 * 60 * 60 / BlockIntervalSec
