package chain

import (
	"bytes"
	"encoding/json"
	"testing"
	"testing/quick"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
)

// Property: every transaction type round-trips through the JSON
// envelope with its payload intact.
func TestTxnEnvelopeRoundTripProperty(t *testing.T) {
	err := quick.Check(func(gw, owner string, lat, lon float64, amount int64, pkts uint16) bool {
		if gw == "" || owner == "" {
			return true
		}
		lat = clampF(lat, -89, 89)
		lon = clampF(lon, -179, 179)
		if amount < 0 {
			amount = -amount
		}
		cell := h3lite.FromLatLon(geo.Point{Lat: lat, Lon: lon}, 12)
		txns := []Txn{
			&AddGateway{Gateway: gw, Owner: owner, Location: cell, Maker: "RAK"},
			&AssertLocation{Gateway: gw, Owner: owner, Location: cell, Nonce: int(pkts%7) + 1},
			&TransferHotspot{Gateway: gw, Seller: owner, Buyer: owner + "2", AmountBones: amount},
			&PoCRequest{Challenger: gw, SecretHash: "h"},
			&PoCReceipt{Challenger: gw, Challengee: owner, ChallengeeLocation: cell,
				Witnesses: []WitnessReport{{Witness: gw, RSSIdBm: -float64(pkts%140) - 1, Channel: int(pkts % 8), Valid: pkts%2 == 0}}},
			&StateChannelOpen{ID: "sc", Owner: owner, OUI: 1, AmountDC: amount + 1, ExpireWithin: 240},
			&StateChannelClose{ID: "sc", Owner: owner, Summaries: []SCSummary{{Hotspot: gw, Packets: int64(pkts), DC: int64(pkts)}}},
			&Payment{Payer: owner, Payee: gw, AmountBones: amount + 1},
			&TokenBurn{Payer: owner, Destination: gw, AmountBones: amount + 1},
			&OUIRegistration{OUI: 3, Owner: owner, Filters: []string{"f"}},
			&Rewards{Epoch: int64(pkts), Entries: []RewardEntry{{Account: owner, Gateway: gw, AmountBones: amount, Kind: RewardWitness}}},
			&DCCoinbase{Payee: owner, AmountDC: amount + 1},
			&SecurityCoinbase{Payee: owner, AmountBones: amount + 1},
		}
		blk := &Block{Height: 5, Txns: txns}
		raw, err := json.Marshal(blk)
		if err != nil {
			return false
		}
		var back Block
		if err := json.Unmarshal(raw, &back); err != nil {
			return false
		}
		if len(back.Txns) != len(txns) {
			return false
		}
		for i := range txns {
			if back.Txns[i].TxnType() != txns[i].TxnType() {
				return false
			}
			if Hash(back.Txns[i]) != Hash(txns[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func clampF(v, lo, hi float64) float64 {
	if v != v || v < lo { // NaN or below
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestUnknownTxnTypeRejected(t *testing.T) {
	raw := []byte(`{"height":1,"txns":[{"type":99,"txn":{}}]}`)
	var b Block
	if err := json.Unmarshal(raw, &b); err == nil {
		t.Fatal("unknown txn type decoded")
	}
}

func TestLargeChainSerializationStable(t *testing.T) {
	// Serialize, replay, serialize again: byte-identical output.
	c := NewChain(DefaultGenesis)
	for h := int64(1); h <= 50; h++ {
		gw := "hs" + string(rune('a'+h%26)) + string(rune('0'+h%10))
		c.AppendBlock(h*10, []Txn{
			&AddGateway{Gateway: gw, Owner: "w"},
			&AssertLocation{Gateway: gw, Owner: "w",
				Location: h3lite.FromLatLon(geo.Point{Lat: float64(h), Lon: float64(h)}, 12), Nonce: 1},
		})
	}
	var first bytes.Buffer
	if _, err := c.WriteTo(&first); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadChain(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if _, err := c2.WriteTo(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("serialization not stable across replay")
	}
}
