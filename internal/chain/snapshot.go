package chain

// Deterministic binary snapshot of the full Ledger state — the payload
// the ETL store's ledger checkpoint persists so a restart replays only
// the unsealed tail instead of the whole chain.
//
// Determinism contract: the same ledger state always encodes to the
// same bytes (map keys are sorted), so two replays can be compared for
// equality by comparing snapshots — the bit-identity check the store's
// checkpoint tests rely on.
//
// Stability contract: the version byte leads the encoding; field order
// for version 1 is frozen. DecodeLedgerSnapshot never panics on
// arbitrary input (FuzzDecodeCheckpoint drives it through the store's
// checkpoint frame) — counts are bounded against remaining input
// before allocation.

import (
	"fmt"
	"sort"

	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/wire"
)

// ledgerSnapshotVersion is the current snapshot encoding version.
const ledgerSnapshotVersion = 1

// Snapshot serializes the complete ledger state. The result is
// deterministic: equal states yield equal bytes.
func (l *Ledger) Snapshot() []byte {
	l.mu.RLock()
	defer l.mu.RUnlock()

	var w wire.Writer
	w.U8(ledgerSnapshotVersion)

	hsKeys := sortedKeys(l.hotspots)
	w.Uvarint(uint64(len(hsKeys)))
	for _, k := range hsKeys {
		h := l.hotspots[k]
		w.Str(h.Address)
		w.Str(h.Owner)
		w.Str(h.Maker)
		w.Varint(h.AddedBlock)
		w.Uvarint(uint64(h.Location))
		w.Varint(int64(h.AssertCount))
		w.Varint(int64(h.TransferCount))
		w.Uvarint(uint64(len(h.LocationHistory)))
		for _, ev := range h.LocationHistory {
			w.Varint(ev.Block)
			w.Uvarint(uint64(ev.Cell))
		}
		w.Uvarint(uint64(len(h.OwnerHistory)))
		for _, ev := range h.OwnerHistory {
			w.Varint(ev.Block)
			w.Str(ev.Owner)
		}
		w.Varint(h.LastChallengeBlock)
		w.Varint(h.LastPoCBlock)
		w.Varint(h.ValidWitnessCount)
		w.Varint(h.DataPackets)
		w.Varint(h.EarnedBones)
		w.Bool(h.Online)
	}

	acctKeys := sortedKeys(l.accounts)
	w.Uvarint(uint64(len(acctKeys)))
	for _, k := range acctKeys {
		a := l.accounts[k]
		w.Str(a.Address)
		w.Varint(a.HNTBones)
		w.Varint(a.DC)
		w.Varint(int64(a.Hotspots))
	}

	ouiKeys := make([]uint32, 0, len(l.ouis))
	for k := range l.ouis {
		ouiKeys = append(ouiKeys, k)
	}
	sort.Slice(ouiKeys, func(i, j int) bool { return ouiKeys[i] < ouiKeys[j] })
	w.Uvarint(uint64(len(ouiKeys)))
	for _, k := range ouiKeys {
		o := l.ouis[k]
		w.Uvarint(uint64(o.OUI))
		w.Str(o.Owner)
		w.Strs(o.Filters)
	}

	chKeys := sortedKeys(l.channels)
	w.Uvarint(uint64(len(chKeys)))
	for _, k := range chKeys {
		ch := l.channels[k]
		w.Str(k)
		w.Str(ch.owner)
		w.Uvarint(uint64(ch.oui))
		w.Varint(ch.stakedDC)
		w.Varint(ch.expireBlock)
	}
	w.Uvarint(uint64(l.nextOUI))

	pdKeys := sortedKeys(l.pendingData)
	w.Uvarint(uint64(len(pdKeys)))
	for _, k := range pdKeys {
		w.Str(k)
		w.Varint(l.pendingData[k])
	}

	valKeys := sortedKeys(l.validators)
	w.Uvarint(uint64(len(valKeys)))
	for _, k := range valKeys {
		w.Str(k)
		w.Str(l.validators[k])
	}
	w.Strs(l.consensus)

	w.Varint(l.dcBurned)
	w.Varint(l.hntMintedBones)
	w.Varint(l.hntBurnedBones)
	w.Varint(l.stakedBones)
	w.F64(l.oracleUSDPerHNT)
	w.Varint(l.pocIntervalBlocks)
	return w.Buf
}

// LedgerFromSnapshot reconstructs a ledger from Snapshot bytes. It
// returns an error — never panics — on truncated or corrupted input.
func LedgerFromSnapshot(data []byte) (*Ledger, error) {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != ledgerSnapshotVersion {
		return nil, fmt.Errorf("chain: unknown ledger snapshot version %d", v)
	}
	l := NewLedger()

	for i, n := 0, r.Count(8); i < n && r.Err() == nil; i++ {
		h := &Hotspot{
			Address:       r.Str(),
			Owner:         r.Str(),
			Maker:         r.Str(),
			AddedBlock:    r.Varint(),
			Location:      h3lite.Cell(r.Uvarint()),
			AssertCount:   int(r.Varint()),
			TransferCount: int(r.Varint()),
		}
		for j, m := 0, r.Count(2); j < m && r.Err() == nil; j++ {
			h.LocationHistory = append(h.LocationHistory, LocationEvent{Block: r.Varint(), Cell: h3lite.Cell(r.Uvarint())})
		}
		for j, m := 0, r.Count(2); j < m && r.Err() == nil; j++ {
			h.OwnerHistory = append(h.OwnerHistory, OwnerEvent{Block: r.Varint(), Owner: r.Str()})
		}
		h.LastChallengeBlock = r.Varint()
		h.LastPoCBlock = r.Varint()
		h.ValidWitnessCount = r.Varint()
		h.DataPackets = r.Varint()
		h.EarnedBones = r.Varint()
		h.Online = r.Bool()
		if r.Err() == nil {
			l.hotspots[h.Address] = h
		}
	}

	for i, n := 0, r.Count(4); i < n && r.Err() == nil; i++ {
		a := &Account{
			Address:  r.Str(),
			HNTBones: r.Varint(),
			DC:       r.Varint(),
			Hotspots: int(r.Varint()),
		}
		if r.Err() == nil {
			l.accounts[a.Address] = a
		}
	}

	for i, n := 0, r.Count(3); i < n && r.Err() == nil; i++ {
		o := &OUIRecord{OUI: uint32(r.Uvarint()), Owner: r.Str(), Filters: r.Strs()}
		if r.Err() == nil {
			l.ouis[o.OUI] = o
		}
	}

	for i, n := 0, r.Count(5); i < n && r.Err() == nil; i++ {
		id := r.Str()
		ch := &channelState{owner: r.Str(), oui: uint32(r.Uvarint()), stakedDC: r.Varint(), expireBlock: r.Varint()}
		if r.Err() == nil {
			l.channels[id] = ch
		}
	}
	l.nextOUI = uint32(r.Uvarint())

	for i, n := 0, r.Count(2); i < n && r.Err() == nil; i++ {
		k := r.Str()
		l.pendingData[k] = r.Varint()
	}
	for i, n := 0, r.Count(2); i < n && r.Err() == nil; i++ {
		k := r.Str()
		l.validators[k] = r.Str()
	}
	l.consensus = r.Strs()

	l.dcBurned = r.Varint()
	l.hntMintedBones = r.Varint()
	l.hntBurnedBones = r.Varint()
	l.stakedBones = r.Varint()
	l.oracleUSDPerHNT = r.F64()
	l.pocIntervalBlocks = r.Varint()
	if r.Err() != nil {
		return nil, fmt.Errorf("chain: ledger snapshot: %w", r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("chain: ledger snapshot: %d trailing bytes", r.Remaining())
	}
	return l, nil
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
