package chain

import (
	"testing"
	"time"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/wire"
)

// binaryTestBlocks covers every transaction variant, empty and
// populated nested slices, zero and negative amounts, and non-ASCII
// strings.
func binaryTestBlocks(t testing.TB) []*Block {
	t.Helper()
	cell := h3lite.FromLatLon(geo.Point{Lat: 32.7, Lon: -117.2}, 8)
	blocks := []*Block{
		{Height: 0, Timestamp: DefaultGenesis, Txns: nil},
		{
			Height:    7,
			Timestamp: DefaultGenesis.Add(7 * time.Minute),
			PrevHash:  "aa11",
			Txns: []Txn{
				&AddGateway{Gateway: "hs-α", Owner: "own-1", Location: cell, Maker: "mk"},
				&AddGateway{Gateway: "hs-2", Owner: "own-1"},
				&AssertLocation{Gateway: "hs-α", Owner: "own-1", Location: cell, Nonce: 1},
				&TransferHotspot{Gateway: "hs-2", Seller: "own-1", Buyer: "own-2", AmountBones: 0},
				&PoCRequest{Challenger: "hs-α", SecretHash: "s3cr3t"},
				&PoCReceipt{
					Challenger: "hs-α", Challengee: "hs-2", ChallengeeLocation: cell,
					Witnesses: []WitnessReport{
						{Witness: "hs-3", RSSIdBm: -108.5, SNRdB: 2.25, Channel: 3, Location: cell, Valid: true},
						{Witness: "hs-4", RSSIdBm: 1_041_313_293, Valid: false, Reason: "too_far"},
					},
				},
				&PoCReceipt{Challenger: "hs-2", Challengee: "hs-α"},
			},
		},
		{
			Height:    9001,
			Timestamp: DefaultGenesis.Add(100 * 24 * time.Hour),
			PrevHash:  "bb22",
			Txns: []Txn{
				&StateChannelOpen{ID: "sc-1", Owner: "rt-1", OUI: 3, AmountDC: 1000, ExpireWithin: 30},
				&StateChannelClose{ID: "sc-1", Owner: "rt-1", Summaries: []SCSummary{
					{Hotspot: "hs-α", Packets: 12, DC: 24},
					{Hotspot: "hs-2", Packets: 0, DC: 0},
				}},
				&Payment{Payer: "own-1", Payee: "own-2", AmountBones: 5},
				&TokenBurn{Payer: "own-2", Destination: "rt-1", AmountBones: 123456789},
				&OUIRegistration{OUI: 4, Owner: "rt-2", Filters: []string{"eui-1", "eui-2"}},
				&OUIRegistration{OUI: 5, Owner: "rt-3"},
				&Rewards{Epoch: 12, Entries: []RewardEntry{
					{Account: "own-1", Gateway: "hs-α", AmountBones: 99, Kind: RewardWitness},
					{Account: "own-2", AmountBones: 1, Kind: RewardConsensus},
				}},
				&Rewards{Epoch: 13},
				&ConsensusGroup{Epoch: 12, Members: []string{"v-1", "v-2"}},
				&RoutingUpdate{OUI: 4, Owner: "rt-2", Filters: []string{"eui-9"}},
				&StakeValidator{Owner: "own-2", Validator: "v-3"},
				&DCCoinbase{Payee: "rt-1", AmountDC: 1_000_000},
				&SecurityCoinbase{Payee: "own-1", AmountBones: -3},
			},
		},
	}
	for _, b := range blocks {
		b.Hash = b.computeHash(nil)
	}
	return blocks
}

func TestBlockBinaryRoundTrip(t *testing.T) {
	for _, b := range binaryTestBlocks(t) {
		enc := EncodeBlock(nil, b)
		got, err := DecodeBlock(enc)
		if err != nil {
			t.Fatalf("DecodeBlock(block %d): %v", b.Height, err)
		}
		if got.Height != b.Height || got.PrevHash != b.PrevHash || got.Hash != b.Hash {
			t.Errorf("block %d header mismatch: got %+v", b.Height, got)
		}
		if !got.Timestamp.Equal(b.Timestamp) {
			t.Errorf("block %d timestamp %v, want %v", b.Height, got.Timestamp, b.Timestamp)
		}
		if len(got.Txns) != len(b.Txns) {
			t.Fatalf("block %d: %d txns, want %d", b.Height, len(got.Txns), len(b.Txns))
		}
		for i := range b.Txns {
			// Nil and empty slices are interchangeable on the wire;
			// compare JSON-marshaled form via the content hash.
			if Hash(got.Txns[i]) != Hash(b.Txns[i]) {
				t.Errorf("block %d txn %d: decode differs\n got %#v\nwant %#v",
					b.Height, i, got.Txns[i], b.Txns[i])
			}
			if got.Txns[i].TxnType() != b.Txns[i].TxnType() {
				t.Errorf("block %d txn %d: type %v, want %v",
					b.Height, i, got.Txns[i].TxnType(), b.Txns[i].TxnType())
			}
		}
		// The recomputed hash must match, so a decoded block chains
		// identically to the original.
		if got.computeHash(nil) != b.computeHash(nil) {
			t.Errorf("block %d: recomputed hash differs after round trip", b.Height)
		}
	}
}

func TestDecodeBlockRejectsCorruption(t *testing.T) {
	b := binaryTestBlocks(t)[1]
	enc := EncodeBlock(nil, b)

	if _, err := DecodeBlock(nil); err == nil {
		t.Error("empty input decoded")
	}
	if _, err := DecodeBlock([]byte{99}); err == nil {
		t.Error("unknown version decoded")
	}
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeBlock(enc[:cut]); err == nil {
			t.Errorf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodeBlock(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing garbage decoded")
	}
}

func TestWireCountBounds(t *testing.T) {
	// A count claiming more elements than bytes remain must error
	// before allocation, not build a huge slice.
	var w wire.Writer
	w.Uvarint(1 << 40)
	r := wire.NewReader(w.Buf)
	if n := r.Count(1); r.Err() == nil || n != 0 {
		t.Errorf("count = %d, err = %v; want 0 and error", n, r.Err())
	}
}

// FuzzDecodeBlock asserts the decoder never panics on arbitrary
// bytes: corrupted on-disk data must come back as an error. Valid
// encodings that decode must re-encode to a decodable block.
func FuzzDecodeBlock(f *testing.F) {
	for _, b := range binaryTestBlocks(f) {
		f.Add(EncodeBlock(nil, b))
	}
	f.Add([]byte{})
	f.Add([]byte{blockCodecVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBlock(data)
		if err != nil {
			return
		}
		// A successfully decoded block must survive a second round
		// trip (the decoder may accept non-minimal varints, so the
		// bytes can differ; the value cannot).
		enc := EncodeBlock(nil, b)
		b2, err := DecodeBlock(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded block failed: %v", err)
		}
		if b2.Height != b.Height || len(b2.Txns) != len(b.Txns) {
			t.Fatalf("round trip changed block: %d/%d txns, heights %d/%d",
				len(b.Txns), len(b2.Txns), b.Height, b2.Height)
		}
		if !b2.Timestamp.Equal(b.Timestamp) || b2.PrevHash != b.PrevHash || b2.Hash != b.Hash {
			t.Fatalf("round trip changed header: %+v vs %+v", b2, b)
		}
		for i := range b.Txns {
			if Hash(b2.Txns[i]) != Hash(b.Txns[i]) {
				t.Fatalf("round trip changed txn %d content: %#v vs %#v", i, b2.Txns[i], b.Txns[i])
			}
		}
		if b2.computeHash(nil) != b.computeHash(nil) {
			t.Fatal("round trip changed the recomputable block hash")
		}
	})
}
