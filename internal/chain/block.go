package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Block is one chain block. Blocks are minted nominally once per
// minute (§3); the simulator may mint sparse blocks (skipping empty
// heights) without affecting any analysis, which all key off height.
type Block struct {
	Height    int64     `json:"height"`
	Timestamp time.Time `json:"timestamp"`
	PrevHash  string    `json:"prev_hash"`
	Hash      string    `json:"hash"`
	Txns      []Txn     `json:"txns"`
}

// computeHash derives the block hash from height, time, parent, and
// transaction hashes. txnHashes, when non-nil, carries precomputed
// Hash(t) values index-aligned with b.Txns (producers that hash
// transactions in parallel pass them through); nil recomputes inline.
func (b *Block) computeHash(txnHashes []string) string {
	h := sha256.New()
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(b.Height))
	binary.BigEndian.PutUint64(buf[8:], uint64(b.Timestamp.UnixNano()))
	h.Write(buf[:])
	h.Write([]byte(b.PrevHash))
	for i, t := range b.Txns {
		if txnHashes != nil {
			h.Write([]byte(txnHashes[i]))
		} else {
			h.Write([]byte(Hash(t)))
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// Chain is an append-only block sequence with its ledger. Appending a
// block validates and applies every transaction atomically from the
// caller's perspective: a block containing any invalid transaction is
// rejected whole.
//
// A Chain is safe for one producer appending blocks concurrently with
// any number of readers (Scan, Blocks, BlocksFrom, subscribers):
// appended blocks are immutable, and the block slice is only read
// under the mutex or via snapshots taken under it.
type Chain struct {
	Genesis time.Time
	ledger  *Ledger

	mu     sync.RWMutex
	blocks []*Block
	subs   map[int]chan struct{}
	nextID int
}

// NewChain creates a chain whose genesis time anchors block heights to
// wall-clock timestamps. The paper's network launched July 29, 2019.
func NewChain(genesis time.Time) *Chain {
	return &Chain{Genesis: genesis, ledger: NewLedger(), subs: make(map[int]chan struct{})}
}

// DefaultGenesis is the first real entry on the Helium blockchain (§3).
var DefaultGenesis = time.Date(2019, 7, 29, 0, 0, 0, 0, time.UTC)

// Ledger exposes the chain's ledger.
func (c *Chain) Ledger() *Ledger { return c.ledger }

// Height returns the height of the last block (-1 if empty).
func (c *Chain) Height() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.heightLocked()
}

func (c *Chain) heightLocked() int64 {
	if len(c.blocks) == 0 {
		return -1
	}
	return c.blocks[len(c.blocks)-1].Height
}

// FirstHeight returns the height of the first block (-1 if empty).
func (c *Chain) FirstHeight() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.blocks) == 0 {
		return -1
	}
	return c.blocks[0].Height
}

// TimeOf returns the wall-clock timestamp for a block height.
func (c *Chain) TimeOf(height int64) time.Time {
	return c.Genesis.Add(time.Duration(height) * BlockIntervalSec * time.Second)
}

// HeightOf returns the block height corresponding to a wall-clock
// time (clamped at 0).
func (c *Chain) HeightOf(t time.Time) int64 {
	h := int64(t.Sub(c.Genesis) / (BlockIntervalSec * time.Second))
	if h < 0 {
		h = 0
	}
	return h
}

// AppendBlock validates all txns against the ledger and appends a new
// block at the given height. Heights must be strictly increasing but
// may be sparse. If any transaction fails validation, no state
// changes and the error identifies the offender.
func (c *Chain) AppendBlock(height int64, txns []Txn) (*Block, error) {
	return c.AppendBlockHashed(height, txns, nil)
}

// AppendBlockHashed is AppendBlock for producers that already hold the
// per-transaction hashes (e.g. computed in parallel while the block
// was assembled): txnHashes[i] must equal Hash(txns[i]), index-aligned
// with txns, or nil to compute them here. The resulting block is
// byte-identical to an AppendBlock of the same transactions.
func (c *Chain) AppendBlockHashed(height int64, txns []Txn, txnHashes []string) (*Block, error) {
	if tip := c.Height(); height <= tip {
		return nil, fmt.Errorf("chain: height %d not beyond tip %d", height, tip)
	}
	if txnHashes != nil && len(txnHashes) != len(txns) {
		return nil, fmt.Errorf("chain: %d txn hashes for %d txns", len(txnHashes), len(txns))
	}
	// Validate-all-then-apply-all is not sufficient when later txns
	// depend on earlier ones in the same block (add_gateway then
	// assert_location), so validate/apply pairwise under one lock and
	// roll back by rebuilding on failure. To keep the common path
	// fast, we instead pre-validate sequentially against a speculative
	// application, accepting that a mid-block failure leaves earlier
	// txns applied — and therefore treat any failure as fatal to the
	// chain build. Simulators construct blocks they know are valid;
	// external callers should validate txns individually first.
	c.ledger.mu.Lock()
	for i, t := range c.ledger.speculative(txns, height) {
		if t != nil {
			c.ledger.mu.Unlock()
			return nil, fmt.Errorf("chain: block %d txn %d (%s): %w", height, i, txns[i].TxnType(), t)
		}
	}
	c.ledger.mu.Unlock()

	c.mu.Lock()
	prev := ""
	if len(c.blocks) > 0 {
		prev = c.blocks[len(c.blocks)-1].Hash
	}
	b := &Block{
		Height:    height,
		Timestamp: c.TimeOf(height),
		PrevHash:  prev,
		Txns:      txns,
	}
	b.Hash = b.computeHash(txnHashes)
	c.blocks = append(c.blocks, b)
	// Coalescing notification: a subscriber that has not drained its
	// signal yet learns about this block on its next poll anyway.
	for _, ch := range c.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	c.mu.Unlock()
	return b, nil
}

// Subscribe registers for append notifications: the returned channel
// receives a (coalesced) signal after each AppendBlock. Consumers pull
// the new blocks with BlocksFrom, so a missed signal never loses data.
// The cancel function unregisters and closes the channel.
func (c *Chain) Subscribe() (<-chan struct{}, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	ch := make(chan struct{}, 1)
	c.subs[id] = ch
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(ch)
		}
	}
}

// speculative applies txns in order, recording the first error; on
// error, previously applied txns in this batch remain applied (see
// AppendBlock). Caller holds l.mu. The returned slice has one entry
// per txn (nil for success); processing stops at the first error.
func (l *Ledger) speculative(txns []Txn, height int64) []error {
	errs := make([]error, len(txns))
	for i, t := range txns {
		if err := l.applyLocked(t, height); err != nil {
			errs[i] = err
			break
		}
	}
	return errs
}

// Blocks returns a copy of the block sequence. The blocks themselves
// are shared and immutable once appended.
func (c *Chain) Blocks() []*Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Block(nil), c.blocks...)
}

// BlocksFrom returns every block with height strictly greater than
// after, in order. Followers keep their last-seen tip and pass it here
// so each poll reads only the new suffix, not the whole history.
func (c *Chain) BlocksFrom(after int64) []*Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i := sort.Search(len(c.blocks), func(i int) bool { return c.blocks[i].Height > after })
	if i == len(c.blocks) {
		return nil
	}
	return append([]*Block(nil), c.blocks[i:]...)
}

// BlockAt returns the block at exactly height, or nil if the chain
// holds none. Shard followers use it to re-derive per-block metadata
// (original intra-block transaction indexes) after a restart, so it is
// a binary search, not a suffix copy.
func (c *Chain) BlockAt(height int64) *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i := sort.Search(len(c.blocks), func(i int) bool { return c.blocks[i].Height >= height })
	if i < len(c.blocks) && c.blocks[i].Height == height {
		return c.blocks[i]
	}
	return nil
}

// snapshot returns the current block slice header; the backing array
// is append-only and blocks are immutable, so iterating the snapshot
// without the lock is safe.
func (c *Chain) snapshot() []*Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks
}

// TxnCount returns the total number of transactions on chain.
func (c *Chain) TxnCount() int64 {
	var n int64
	for _, b := range c.snapshot() {
		n += int64(len(b.Txns))
	}
	return n
}

// TxnMix counts transactions by type.
func (c *Chain) TxnMix() map[TxnType]int64 {
	mix := make(map[TxnType]int64)
	for _, b := range c.snapshot() {
		for _, t := range b.Txns {
			mix[t.TxnType()]++
		}
	}
	return mix
}

// Scan calls fn for every transaction in height order, stopping early
// if fn returns false.
func (c *Chain) Scan(fn func(height int64, t Txn) bool) {
	for _, b := range c.snapshot() {
		for _, t := range b.Txns {
			if !fn(b.Height, t) {
				return
			}
		}
	}
}

// ScanType calls fn for every transaction of the given type.
func (c *Chain) ScanType(tt TxnType, fn func(height int64, t Txn) bool) {
	c.Scan(func(h int64, t Txn) bool {
		if t.TxnType() != tt {
			return true
		}
		return fn(h, t)
	})
}

// ScanTypes calls fn for every transaction whose type is in tts,
// interleaved in chain order (height, then intra-block position).
func (c *Chain) ScanTypes(tts []TxnType, fn func(height int64, t Txn) bool) {
	want := make(map[TxnType]bool, len(tts))
	for _, tt := range tts {
		want[tt] = true
	}
	c.Scan(func(h int64, t Txn) bool {
		if !want[t.TxnType()] {
			return true
		}
		return fn(h, t)
	})
}
