package chain

// Binary block codec: the stable on-disk encoding the ETL store's
// segment files and write-ahead log use. Unlike the JSON-lines chain
// format (codec.go) — which exists for interchange and human
// inspection — this encoding is compact, allocation-lean, and fast to
// decode, which is what makes a cold start from a persisted store
// beat re-parsing and re-indexing the chain file.
//
// Stability contract: the version byte leads every encoded block.
// Field order and varint encodings for version 1 are frozen; new
// fields require a new version, and decoders must keep reading every
// version they ever wrote. TxnType values are already declared stable
// (types.go).
//
// Robustness contract: DecodeBlock must never panic, whatever the
// input — corrupted on-disk bytes return an error. FuzzDecodeBlock
// (binary_test.go) enforces this. Counts read from the wire are
// sanity-checked against the remaining input before allocation, so a
// flipped bit in a length field cannot balloon memory.

import (
	"fmt"
	"time"

	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/wire"
)

// blockCodecVersion is the current binary block encoding version.
const blockCodecVersion = 1

// EncodeBlock appends the binary encoding of b to dst and returns the
// extended slice.
func EncodeBlock(dst []byte, b *Block) []byte {
	w := wire.Writer{Buf: dst}
	w.U8(blockCodecVersion)
	w.Varint(b.Height)
	w.Varint(b.Timestamp.UnixNano())
	w.Str(b.PrevHash)
	w.Str(b.Hash)
	w.Uvarint(uint64(len(b.Txns)))
	for _, t := range b.Txns {
		w.U8(uint8(t.TxnType()))
		encodeTxn(&w, t)
	}
	return w.Buf
}

// DecodeBlock decodes a block previously produced by EncodeBlock. It
// returns an error — never panics — on truncated or corrupted input.
func DecodeBlock(data []byte) (*Block, error) {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != blockCodecVersion {
		return nil, fmt.Errorf("chain: unknown block codec version %d", v)
	}
	b := &Block{}
	b.Height = r.Varint()
	b.Timestamp = time.Unix(0, r.Varint()).UTC()
	b.PrevHash = r.Str()
	b.Hash = r.Str()
	n := r.Count(1)
	if r.Err() != nil {
		return nil, fmt.Errorf("chain: decode block: %w", r.Err())
	}
	b.Txns = make([]Txn, 0, n)
	for i := 0; i < n; i++ {
		tt := TxnType(r.U8())
		if r.Err() != nil {
			return nil, fmt.Errorf("chain: decode block %d txn %d: %w", b.Height, i, r.Err())
		}
		t, err := newTxn(tt)
		if err != nil {
			return nil, fmt.Errorf("chain: decode block %d txn %d: %w", b.Height, i, err)
		}
		decodeTxn(r, t)
		if r.Err() != nil {
			return nil, fmt.Errorf("chain: decode block %d txn %d (%s): %w", b.Height, i, tt, r.Err())
		}
		b.Txns = append(b.Txns, t)
	}
	if n := r.Remaining(); n != 0 {
		return nil, fmt.Errorf("chain: decode block %d: %d trailing bytes", b.Height, n)
	}
	return b, nil
}

func encodeTxn(w *wire.Writer, t Txn) {
	switch v := t.(type) {
	case *AddGateway:
		w.Str(v.Gateway)
		w.Str(v.Owner)
		w.Uvarint(uint64(v.Location))
		w.Str(v.Maker)
	case *AssertLocation:
		w.Str(v.Gateway)
		w.Str(v.Owner)
		w.Uvarint(uint64(v.Location))
		w.Varint(int64(v.Nonce))
	case *TransferHotspot:
		w.Str(v.Gateway)
		w.Str(v.Seller)
		w.Str(v.Buyer)
		w.Varint(v.AmountBones)
	case *PoCRequest:
		w.Str(v.Challenger)
		w.Str(v.SecretHash)
	case *PoCReceipt:
		w.Str(v.Challenger)
		w.Str(v.Challengee)
		w.Uvarint(uint64(v.ChallengeeLocation))
		w.Uvarint(uint64(len(v.Witnesses)))
		for i := range v.Witnesses {
			wr := &v.Witnesses[i]
			w.Str(wr.Witness)
			w.F64(wr.RSSIdBm)
			w.F64(wr.SNRdB)
			w.Varint(int64(wr.Channel))
			w.Uvarint(uint64(wr.Location))
			w.Bool(wr.Valid)
			w.Str(wr.Reason)
		}
	case *StateChannelOpen:
		w.Str(v.ID)
		w.Str(v.Owner)
		w.Uvarint(uint64(v.OUI))
		w.Varint(v.AmountDC)
		w.Varint(v.ExpireWithin)
	case *StateChannelClose:
		w.Str(v.ID)
		w.Str(v.Owner)
		w.Uvarint(uint64(len(v.Summaries)))
		for i := range v.Summaries {
			s := &v.Summaries[i]
			w.Str(s.Hotspot)
			w.Varint(s.Packets)
			w.Varint(s.DC)
		}
	case *Payment:
		w.Str(v.Payer)
		w.Str(v.Payee)
		w.Varint(v.AmountBones)
	case *TokenBurn:
		w.Str(v.Payer)
		w.Str(v.Destination)
		w.Varint(v.AmountBones)
	case *OUIRegistration:
		w.Str(v.Owner)
		w.Uvarint(uint64(v.OUI))
		w.Strs(v.Filters)
	case *Rewards:
		w.Varint(v.Epoch)
		w.Uvarint(uint64(len(v.Entries)))
		for i := range v.Entries {
			e := &v.Entries[i]
			w.Str(e.Account)
			w.Str(e.Gateway)
			w.Varint(e.AmountBones)
			w.U8(uint8(e.Kind))
		}
	case *ConsensusGroup:
		w.Varint(v.Epoch)
		w.Strs(v.Members)
	case *RoutingUpdate:
		w.Str(v.Owner)
		w.Uvarint(uint64(v.OUI))
		w.Strs(v.Filters)
	case *StakeValidator:
		w.Str(v.Owner)
		w.Str(v.Validator)
	case *DCCoinbase:
		w.Str(v.Payee)
		w.Varint(v.AmountDC)
	case *SecurityCoinbase:
		w.Str(v.Payee)
		w.Varint(v.AmountBones)
	default:
		// newTxn and this switch must cover the same set; a miss here
		// is a programming error caught by the round-trip test.
		panic(fmt.Sprintf("chain: encodeTxn: unhandled type %T", t))
	}
}

func decodeTxn(r *wire.Reader, t Txn) {
	switch v := t.(type) {
	case *AddGateway:
		v.Gateway = r.Str()
		v.Owner = r.Str()
		v.Location = h3lite.Cell(r.Uvarint())
		v.Maker = r.Str()
	case *AssertLocation:
		v.Gateway = r.Str()
		v.Owner = r.Str()
		v.Location = h3lite.Cell(r.Uvarint())
		v.Nonce = int(r.Varint())
	case *TransferHotspot:
		v.Gateway = r.Str()
		v.Seller = r.Str()
		v.Buyer = r.Str()
		v.AmountBones = r.Varint()
	case *PoCRequest:
		v.Challenger = r.Str()
		v.SecretHash = r.Str()
	case *PoCReceipt:
		v.Challenger = r.Str()
		v.Challengee = r.Str()
		v.ChallengeeLocation = h3lite.Cell(r.Uvarint())
		n := r.Count(8)
		if r.Err() != nil || n == 0 {
			return
		}
		v.Witnesses = make([]WitnessReport, n)
		for i := range v.Witnesses {
			wr := &v.Witnesses[i]
			wr.Witness = r.Str()
			wr.RSSIdBm = r.F64()
			wr.SNRdB = r.F64()
			wr.Channel = int(r.Varint())
			wr.Location = h3lite.Cell(r.Uvarint())
			wr.Valid = r.Bool()
			wr.Reason = r.Str()
		}
	case *StateChannelOpen:
		v.ID = r.Str()
		v.Owner = r.Str()
		v.OUI = uint32(r.Uvarint())
		v.AmountDC = r.Varint()
		v.ExpireWithin = r.Varint()
	case *StateChannelClose:
		v.ID = r.Str()
		v.Owner = r.Str()
		n := r.Count(3)
		if r.Err() != nil || n == 0 {
			return
		}
		v.Summaries = make([]SCSummary, n)
		for i := range v.Summaries {
			s := &v.Summaries[i]
			s.Hotspot = r.Str()
			s.Packets = r.Varint()
			s.DC = r.Varint()
		}
	case *Payment:
		v.Payer = r.Str()
		v.Payee = r.Str()
		v.AmountBones = r.Varint()
	case *TokenBurn:
		v.Payer = r.Str()
		v.Destination = r.Str()
		v.AmountBones = r.Varint()
	case *OUIRegistration:
		v.Owner = r.Str()
		v.OUI = uint32(r.Uvarint())
		v.Filters = r.Strs()
	case *Rewards:
		v.Epoch = r.Varint()
		n := r.Count(4)
		if r.Err() != nil || n == 0 {
			return
		}
		v.Entries = make([]RewardEntry, n)
		for i := range v.Entries {
			e := &v.Entries[i]
			e.Account = r.Str()
			e.Gateway = r.Str()
			e.AmountBones = r.Varint()
			e.Kind = RewardKind(r.U8())
		}
	case *ConsensusGroup:
		v.Epoch = r.Varint()
		v.Members = r.Strs()
	case *RoutingUpdate:
		v.Owner = r.Str()
		v.OUI = uint32(r.Uvarint())
		v.Filters = r.Strs()
	case *StakeValidator:
		v.Owner = r.Str()
		v.Validator = r.Str()
	case *DCCoinbase:
		v.Payee = r.Str()
		v.AmountDC = r.Varint()
	case *SecurityCoinbase:
		v.Payee = r.Str()
		v.AmountBones = r.Varint()
	default:
		r.Fail(fmt.Errorf("unhandled txn type %T", t))
	}
}
