package chain

import (
	"strings"
	"testing"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
)

func loc(lat, lon float64) h3lite.Cell {
	return h3lite.FromLatLon(geo.Point{Lat: lat, Lon: lon}, 12)
}

func TestAddGateway(t *testing.T) {
	l := NewLedger()
	tx := &AddGateway{Gateway: "hs1", Owner: "w1", Location: loc(33, -117)}
	if err := l.ApplyTxn(tx, 10); err != nil {
		t.Fatal(err)
	}
	h, ok := l.GetHotspot("hs1")
	if !ok {
		t.Fatal("hotspot missing")
	}
	if h.Owner != "w1" || h.AddedBlock != 10 {
		t.Fatalf("hotspot = %+v", h)
	}
	if l.GetAccount("w1").Hotspots != 1 {
		t.Fatal("owner hotspot count not incremented")
	}
	// Duplicate rejected.
	if err := l.ApplyTxn(tx, 11); err == nil {
		t.Fatal("duplicate add_gateway accepted")
	}
}

func TestAddGatewayValidation(t *testing.T) {
	l := NewLedger()
	if err := l.ApplyTxn(&AddGateway{Gateway: "", Owner: "w"}, 1); err == nil {
		t.Fatal("empty gateway accepted")
	}
	if err := l.ApplyTxn(&AddGateway{Gateway: "g", Owner: ""}, 1); err == nil {
		t.Fatal("empty owner accepted")
	}
}

func TestAssertLocationFreeThenPaid(t *testing.T) {
	l := NewLedger()
	if err := l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "w1"}, 1); err != nil {
		t.Fatal(err)
	}
	// First two asserts are free (§4.1).
	for i := 1; i <= 2; i++ {
		tx := &AssertLocation{Gateway: "hs1", Owner: "w1", Location: loc(33, -117), Nonce: i}
		if err := l.ApplyTxn(tx, int64(i+1)); err != nil {
			t.Fatalf("free assert %d: %v", i, err)
		}
	}
	// Third assert requires the fee.
	tx3 := &AssertLocation{Gateway: "hs1", Owner: "w1", Location: loc(34, -118), Nonce: 3}
	if err := l.ApplyTxn(tx3, 5); err == nil {
		t.Fatal("paid assert succeeded with zero DC")
	}
	l.CreditDC("w1", FeeAssertLocationDC)
	if err := l.ApplyTxn(tx3, 6); err != nil {
		t.Fatalf("paid assert with funds: %v", err)
	}
	if l.GetAccount("w1").DC != 0 {
		t.Fatalf("fee not deducted: %d DC left", l.GetAccount("w1").DC)
	}
	h, _ := l.GetHotspot("hs1")
	if h.AssertCount != 3 || len(h.LocationHistory) != 3 {
		t.Fatalf("assert history wrong: %+v", h)
	}
	if l.MoneyTotals().DCBurned != FeeAssertLocationDC {
		t.Fatal("assert fee not burned")
	}
}

func TestAssertLocationNonce(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "w1"}, 1)
	bad := &AssertLocation{Gateway: "hs1", Owner: "w1", Location: loc(1, 1), Nonce: 5}
	if err := l.ApplyTxn(bad, 2); err == nil || !strings.Contains(err.Error(), "nonce") {
		t.Fatalf("bad nonce accepted: %v", err)
	}
}

func TestAssertLocationWrongOwner(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "w1"}, 1)
	tx := &AssertLocation{Gateway: "hs1", Owner: "mallory", Location: loc(1, 1), Nonce: 1}
	if err := l.ApplyTxn(tx, 2); err == nil {
		t.Fatal("wrong owner accepted")
	}
}

func TestTransferHotspot(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "alice"}, 1)
	// Zero-DC transfer (the common case, §4.3.3).
	tx := &TransferHotspot{Gateway: "hs1", Seller: "alice", Buyer: "bob"}
	if err := l.ApplyTxn(tx, 2); err != nil {
		t.Fatal(err)
	}
	h, _ := l.GetHotspot("hs1")
	if h.Owner != "bob" || h.TransferCount != 1 {
		t.Fatalf("transfer not applied: %+v", h)
	}
	if l.GetAccount("alice").Hotspots != 0 || l.GetAccount("bob").Hotspots != 1 {
		t.Fatal("ownership counts wrong")
	}
	// Paid transfer.
	l.CreditHNT("carol", 5*BonesPerHNT)
	paid := &TransferHotspot{Gateway: "hs1", Seller: "bob", Buyer: "carol", AmountBones: 2 * BonesPerHNT}
	if err := l.ApplyTxn(paid, 3); err != nil {
		t.Fatal(err)
	}
	if l.GetAccount("carol").HNTBones != 3*BonesPerHNT || l.GetAccount("bob").HNTBones != 2*BonesPerHNT {
		t.Fatal("payment not moved")
	}
}

func TestTransferHotspotValidation(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "alice"}, 1)
	cases := []*TransferHotspot{
		{Gateway: "nope", Seller: "alice", Buyer: "bob"},
		{Gateway: "hs1", Seller: "mallory", Buyer: "bob"},
		{Gateway: "hs1", Seller: "alice", Buyer: ""},
		{Gateway: "hs1", Seller: "alice", Buyer: "alice"},
		{Gateway: "hs1", Seller: "alice", Buyer: "bob", AmountBones: -1},
		{Gateway: "hs1", Seller: "alice", Buyer: "bob", AmountBones: 1}, // bob has no HNT
	}
	for i, tx := range cases {
		if err := l.ApplyTxn(tx, 2); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestPoCRequestInterval(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "w"}, 1)
	if err := l.ApplyTxn(&PoCRequest{Challenger: "hs1", SecretHash: "x"}, 100); err != nil {
		t.Fatal(err)
	}
	// Too soon.
	if err := l.ApplyTxn(&PoCRequest{Challenger: "hs1", SecretHash: "y"}, 200); err == nil {
		t.Fatal("challenge inside interval accepted")
	}
	// After the 480-block interval.
	if err := l.ApplyTxn(&PoCRequest{Challenger: "hs1", SecretHash: "z"}, 100+PoCChallengeIntervalBlocks); err != nil {
		t.Fatal(err)
	}
}

func TestPoCReceipt(t *testing.T) {
	l := NewLedger()
	for _, hs := range []string{"a", "b", "c"} {
		l.ApplyTxn(&AddGateway{Gateway: hs, Owner: "w"}, 1)
	}
	rc := &PoCReceipt{
		Challenger: "a", Challengee: "b", ChallengeeLocation: loc(33, -117),
		Witnesses: []WitnessReport{
			{Witness: "c", RSSIdBm: -100, Valid: true},
			{Witness: "a", RSSIdBm: -90, Valid: false, Reason: "too_close"},
		},
	}
	if err := l.ApplyTxn(rc, 10); err != nil {
		t.Fatal(err)
	}
	b, _ := l.GetHotspot("b")
	if b.LastPoCBlock != 10 {
		t.Fatal("challengee LastPoCBlock not updated")
	}
	c, _ := l.GetHotspot("c")
	if c.ValidWitnessCount != 1 {
		t.Fatal("valid witness not counted")
	}
	a, _ := l.GetHotspot("a")
	if a.ValidWitnessCount != 0 {
		t.Fatal("invalid witness counted")
	}
	bad := &PoCReceipt{Challenger: "a", Challengee: "ghost"}
	if err := l.ApplyTxn(bad, 11); err == nil {
		t.Fatal("unknown challengee accepted")
	}
}

func TestOUISequence(t *testing.T) {
	l := NewLedger()
	if err := l.ApplyTxn(&OUIRegistration{OUI: 2, Owner: "x"}, 1); err == nil {
		t.Fatal("out-of-sequence OUI accepted")
	}
	if err := l.ApplyTxn(&OUIRegistration{OUI: 1, Owner: "helium"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.ApplyTxn(&OUIRegistration{OUI: 1, Owner: "other"}, 2); err == nil {
		t.Fatal("duplicate OUI accepted")
	}
	if err := l.ApplyTxn(&OUIRegistration{OUI: 2, Owner: "other"}, 2); err != nil {
		t.Fatal(err)
	}
	if got := len(l.OUIs()); got != 2 {
		t.Fatalf("OUIs = %d", got)
	}
}

func TestStateChannelLifecycle(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "w"}, 1)
	l.ApplyTxn(&OUIRegistration{OUI: 1, Owner: "router"}, 1)
	l.CreditDC("router", 1000)

	open := &StateChannelOpen{ID: "sc1", Owner: "router", OUI: 1, AmountDC: 600, ExpireWithin: 240}
	if err := l.ApplyTxn(open, 10); err != nil {
		t.Fatal(err)
	}
	if l.GetAccount("router").DC != 400 {
		t.Fatalf("stake not deducted: %d", l.GetAccount("router").DC)
	}
	if got := l.OpenChannels(); len(got) != 1 || got[0] != "sc1" {
		t.Fatalf("open channels = %v", got)
	}
	if exp := l.ExpiredChannels(100); len(exp) != 0 {
		t.Fatal("channel expired early")
	}
	if exp := l.ExpiredChannels(250); len(exp) != 1 {
		t.Fatal("channel not expired at deadline")
	}

	cl := &StateChannelClose{ID: "sc1", Owner: "router", Summaries: []SCSummary{
		{Hotspot: "hs1", Packets: 42, DC: 100},
	}}
	if err := l.ApplyTxn(cl, 251); err != nil {
		t.Fatal(err)
	}
	// Unspent stake refunded: 400 + (600-100) = 900.
	if l.GetAccount("router").DC != 900 {
		t.Fatalf("refund wrong: %d", l.GetAccount("router").DC)
	}
	if l.MoneyTotals().DCBurned != 100 {
		t.Fatalf("burned = %d", l.MoneyTotals().DCBurned)
	}
	h, _ := l.GetHotspot("hs1")
	if h.DataPackets != 42 {
		t.Fatal("hotspot packet count not credited")
	}
	pending := l.TakePendingData()
	if pending["hs1"] != 100 {
		t.Fatalf("pending data = %v", pending)
	}
	if len(l.TakePendingData()) != 0 {
		t.Fatal("TakePendingData did not drain")
	}
	if len(l.OpenChannels()) != 0 {
		t.Fatal("channel still open after close")
	}
}

func TestStateChannelValidation(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&OUIRegistration{OUI: 1, Owner: "router"}, 1)
	l.CreditDC("router", 1000)
	cases := []*StateChannelOpen{
		{ID: "", Owner: "router", OUI: 1, AmountDC: 10, ExpireWithin: 100},
		{ID: "a", Owner: "router", OUI: 1, AmountDC: 0, ExpireWithin: 100},
		{ID: "b", Owner: "router", OUI: 1, AmountDC: 10, ExpireWithin: 5},      // below min
		{ID: "c", Owner: "router", OUI: 1, AmountDC: 10, ExpireWithin: 20_000}, // above max
		{ID: "d", Owner: "router", OUI: 9, AmountDC: 10, ExpireWithin: 100},    // unknown OUI
		{ID: "e", Owner: "other", OUI: 1, AmountDC: 10, ExpireWithin: 100},     // wrong owner
		{ID: "f", Owner: "router", OUI: 1, AmountDC: 10_000, ExpireWithin: 100},
	}
	for i, tx := range cases {
		if err := l.ApplyTxn(tx, 10); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Overspending close.
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "w"}, 11)
	l.ApplyTxn(&StateChannelOpen{ID: "ok", Owner: "router", OUI: 1, AmountDC: 100, ExpireWithin: 100}, 12)
	over := &StateChannelClose{ID: "ok", Owner: "router", Summaries: []SCSummary{{Hotspot: "hs1", Packets: 1, DC: 500}}}
	if err := l.ApplyTxn(over, 13); err == nil {
		t.Fatal("overspend close accepted")
	}
}

func TestPaymentAndBurn(t *testing.T) {
	l := NewLedger()
	l.CreditHNT("alice", 10*BonesPerHNT)
	if err := l.ApplyTxn(&Payment{Payer: "alice", Payee: "bob", AmountBones: 4 * BonesPerHNT}, 1); err != nil {
		t.Fatal(err)
	}
	if l.GetAccount("bob").HNTBones != 4*BonesPerHNT {
		t.Fatal("payment not delivered")
	}
	if err := l.ApplyTxn(&Payment{Payer: "alice", Payee: "bob", AmountBones: 100 * BonesPerHNT}, 2); err == nil {
		t.Fatal("overdraft accepted")
	}
	// Burn 1 HNT at $15 → 1.5M DC.
	l.SetOraclePrice(15)
	if err := l.ApplyTxn(&TokenBurn{Payer: "alice", Destination: "console", AmountBones: BonesPerHNT}, 3); err != nil {
		t.Fatal(err)
	}
	if dc := l.GetAccount("console").DC; dc != 1_500_000 {
		t.Fatalf("burn credited %d DC, want 1.5M", dc)
	}
	if l.MoneyTotals().HNTBurnedBones != BonesPerHNT {
		t.Fatal("burn not tallied")
	}
}

func TestRewards(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "w"}, 1)
	rw := &Rewards{Epoch: 1, Entries: []RewardEntry{
		{Account: "w", Gateway: "hs1", AmountBones: 100, Kind: RewardWitness},
		{Account: "w", AmountBones: 50, Kind: RewardChallenger},
	}}
	if err := l.ApplyTxn(rw, 30); err != nil {
		t.Fatal(err)
	}
	if l.GetAccount("w").HNTBones != 150 {
		t.Fatal("rewards not credited")
	}
	h, _ := l.GetHotspot("hs1")
	if h.EarnedBones != 100 {
		t.Fatal("gateway earnings not tracked")
	}
	if l.MoneyTotals().HNTMintedBones != 150 {
		t.Fatal("mint not tallied")
	}
	bad := &Rewards{Entries: []RewardEntry{{Account: "w", AmountBones: -5}}}
	if err := l.ApplyTxn(bad, 31); err == nil {
		t.Fatal("negative reward accepted")
	}
}

func TestSetOnline(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "w"}, 1)
	if err := l.SetOnline("hs1", true); err != nil {
		t.Fatal(err)
	}
	h, _ := l.GetHotspot("hs1")
	if !h.Online {
		t.Fatal("online flag not set")
	}
	if err := l.SetOnline("ghost", true); err == nil {
		t.Fatal("unknown hotspot accepted")
	}
}

func TestRewardKindString(t *testing.T) {
	if RewardWitness.String() != "poc_witness" {
		t.Fatal(RewardWitness.String())
	}
	if RewardKind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestTxnTypeString(t *testing.T) {
	if TxnAssertLocation.String() != "assert_location" {
		t.Fatal(TxnAssertLocation.String())
	}
	if TxnType(200).String() != "txn_type_200" {
		t.Fatal(TxnType(200).String())
	}
}

func TestStakeValidator(t *testing.T) {
	l := NewLedger()
	// Insufficient stake rejected.
	if err := l.ApplyTxn(&StakeValidator{Owner: "op", Validator: "v1"}, 1); err == nil {
		t.Fatal("unfunded stake accepted")
	}
	l.CreditHNT("op", 25_000*BonesPerHNT)
	if err := l.ApplyTxn(&StakeValidator{Owner: "op", Validator: "v1"}, 1); err != nil {
		t.Fatal(err)
	}
	if got := l.GetAccount("op").HNTBones; got != 15_000*BonesPerHNT {
		t.Fatalf("post-stake balance = %d", got)
	}
	if l.MoneyTotals().StakedBones != StakeValidatorBones {
		t.Fatal("stake not tallied")
	}
	vs := l.Validators()
	if vs["v1"] != "op" {
		t.Fatalf("validators = %v", vs)
	}
	// Double-stake of the same validator rejected.
	if err := l.ApplyTxn(&StakeValidator{Owner: "op", Validator: "v1"}, 2); err == nil {
		t.Fatal("double stake accepted")
	}
	// Missing fields rejected.
	if err := l.ApplyTxn(&StakeValidator{Owner: "", Validator: "v2"}, 2); err == nil {
		t.Fatal("empty owner accepted")
	}
}

func TestConsensusGroup(t *testing.T) {
	l := NewLedger()
	if err := l.ApplyTxn(&ConsensusGroup{Epoch: 1}, 1); err == nil {
		t.Fatal("empty consensus group accepted")
	}
	if err := l.ApplyTxn(&ConsensusGroup{Epoch: 1, Members: []string{"a", "a"}}, 1); err == nil {
		t.Fatal("duplicate members accepted")
	}
	if err := l.ApplyTxn(&ConsensusGroup{Epoch: 1, Members: []string{"a", "b", "c"}}, 1); err != nil {
		t.Fatal(err)
	}
	got := l.ConsensusGroupMembers()
	if len(got) != 3 || got[0] != "a" {
		t.Fatalf("members = %v", got)
	}
	// A later group replaces the set.
	l.ApplyTxn(&ConsensusGroup{Epoch: 2, Members: []string{"x"}}, 30)
	if got := l.ConsensusGroupMembers(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("members after rotation = %v", got)
	}
}

func TestRoutingUpdate(t *testing.T) {
	l := NewLedger()
	if err := l.ApplyTxn(&RoutingUpdate{OUI: 1, Owner: "r"}, 1); err == nil {
		t.Fatal("update for unknown OUI accepted")
	}
	l.ApplyTxn(&OUIRegistration{OUI: 1, Owner: "router", Filters: []string{"old"}}, 1)
	if err := l.ApplyTxn(&RoutingUpdate{OUI: 1, Owner: "mallory", Filters: []string{"x"}}, 2); err == nil {
		t.Fatal("foreign routing update accepted")
	}
	if err := l.ApplyTxn(&RoutingUpdate{OUI: 1, Owner: "router", Filters: []string{"eui-1", "eui-2"}}, 2); err != nil {
		t.Fatal(err)
	}
	ouis := l.OUIs()
	if len(ouis) != 1 || len(ouis[0].Filters) != 2 || ouis[0].Filters[0] != "eui-1" {
		t.Fatalf("filters = %+v", ouis)
	}
}
