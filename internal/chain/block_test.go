package chain

import (
	"bytes"
	"testing"
	"time"
)

func TestChainAppendAndScan(t *testing.T) {
	c := NewChain(DefaultGenesis)
	if c.Height() != -1 {
		t.Fatal("empty chain height")
	}
	_, err := c.AppendBlock(1, []Txn{
		&AddGateway{Gateway: "hs1", Owner: "w1"},
		&AssertLocation{Gateway: "hs1", Owner: "w1", Location: loc(33, -117), Nonce: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Height() != 1 {
		t.Fatalf("height = %d", c.Height())
	}
	// Sparse heights allowed.
	if _, err := c.AppendBlock(100, []Txn{&AddGateway{Gateway: "hs2", Owner: "w2"}}); err != nil {
		t.Fatal(err)
	}
	// Non-increasing heights rejected.
	if _, err := c.AppendBlock(100, nil); err == nil {
		t.Fatal("duplicate height accepted")
	}
	if _, err := c.AppendBlock(50, nil); err == nil {
		t.Fatal("backwards height accepted")
	}
	if c.TxnCount() != 3 {
		t.Fatalf("txn count = %d", c.TxnCount())
	}
	mix := c.TxnMix()
	if mix[TxnAddGateway] != 2 || mix[TxnAssertLocation] != 1 {
		t.Fatalf("mix = %v", mix)
	}
	var seen int
	c.Scan(func(h int64, tx Txn) bool { seen++; return true })
	if seen != 3 {
		t.Fatalf("scan saw %d", seen)
	}
	seen = 0
	c.ScanType(TxnAddGateway, func(h int64, tx Txn) bool { seen++; return seen < 1 })
	if seen != 1 {
		t.Fatal("ScanType early stop failed")
	}
}

func TestChainRejectsInvalidBlock(t *testing.T) {
	c := NewChain(DefaultGenesis)
	_, err := c.AppendBlock(1, []Txn{
		&AssertLocation{Gateway: "ghost", Owner: "w", Location: loc(1, 1), Nonce: 1},
	})
	if err == nil {
		t.Fatal("invalid block accepted")
	}
	if c.Height() != -1 {
		t.Fatal("failed block advanced the chain")
	}
}

func TestIntraBlockDependency(t *testing.T) {
	// add_gateway followed by assert_location of the same hotspot in
	// one block must work.
	c := NewChain(DefaultGenesis)
	_, err := c.AppendBlock(5, []Txn{
		&AddGateway{Gateway: "hs", Owner: "w"},
		&AssertLocation{Gateway: "hs", Owner: "w", Location: loc(40, -100), Nonce: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := c.Ledger().GetHotspot("hs")
	if h.AssertCount != 1 {
		t.Fatal("intra-block assert lost")
	}
}

func TestBlockHashChaining(t *testing.T) {
	c := NewChain(DefaultGenesis)
	b1, _ := c.AppendBlock(1, []Txn{&AddGateway{Gateway: "a", Owner: "w"}})
	b2, _ := c.AppendBlock(2, []Txn{&AddGateway{Gateway: "b", Owner: "w"}})
	if b2.PrevHash != b1.Hash {
		t.Fatal("prev hash not chained")
	}
	if b1.Hash == b2.Hash {
		t.Fatal("distinct blocks share a hash")
	}
}

func TestTimeHeightConversion(t *testing.T) {
	c := NewChain(DefaultGenesis)
	ts := c.TimeOf(1440) // one day of minutes
	if got := ts.Sub(DefaultGenesis); got != 24*time.Hour {
		t.Fatalf("TimeOf(1440) offset = %v", got)
	}
	if c.HeightOf(ts) != 1440 {
		t.Fatalf("HeightOf round trip = %d", c.HeightOf(ts))
	}
	if c.HeightOf(DefaultGenesis.Add(-time.Hour)) != 0 {
		t.Fatal("pre-genesis height not clamped")
	}
}

func TestChainSerializationRoundTrip(t *testing.T) {
	c := NewChain(DefaultGenesis)
	c.AppendBlock(1, []Txn{
		&AddGateway{Gateway: "hs1", Owner: "w1", Maker: "OG"},
		&OUIRegistration{OUI: 1, Owner: "helium", Filters: []string{"eui-1"}},
		&DCCoinbase{Payee: "helium", AmountDC: 10_000},
		&SecurityCoinbase{Payee: "w1", AmountBones: 5 * BonesPerHNT},
	})
	c.AppendBlock(2, []Txn{
		&AssertLocation{Gateway: "hs1", Owner: "w1", Location: loc(33, -117), Nonce: 1},
		&StateChannelOpen{ID: "sc1", Owner: "helium", OUI: 1, AmountDC: 500, ExpireWithin: 240},
	})
	c.AppendBlock(250, []Txn{
		&PoCRequest{Challenger: "hs1", SecretHash: "s"},
		&PoCReceipt{Challenger: "hs1", Challengee: "hs1", ChallengeeLocation: loc(33, -117),
			Witnesses: []WitnessReport{{Witness: "hs1", RSSIdBm: -101.5, Valid: true}}},
		&StateChannelClose{ID: "sc1", Owner: "helium", Summaries: []SCSummary{{Hotspot: "hs1", Packets: 7, DC: 7}}},
		&Rewards{Epoch: 1, Entries: []RewardEntry{{Account: "w1", Gateway: "hs1", AmountBones: 10, Kind: RewardData}}},
	})

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadChain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Height() != c.Height() || c2.TxnCount() != c.TxnCount() {
		t.Fatalf("round trip mismatch: height %d/%d txns %d/%d",
			c2.Height(), c.Height(), c2.TxnCount(), c.TxnCount())
	}
	// Ledger state must match after replay.
	h1, _ := c.Ledger().GetHotspot("hs1")
	h2, _ := c2.Ledger().GetHotspot("hs1")
	if h1.Location != h2.Location || h1.DataPackets != h2.DataPackets || h1.ValidWitnessCount != h2.ValidWitnessCount {
		t.Fatalf("replayed hotspot differs: %+v vs %+v", h1, h2)
	}
	a1 := c.Ledger().GetAccount("helium")
	a2 := c2.Ledger().GetAccount("helium")
	if a1.DC != a2.DC {
		t.Fatalf("replayed DC differs: %d vs %d", a1.DC, a2.DC)
	}
	// 10,000 coinbase − 500 stake + 493 refund (7 DC spent) = 9,993.
	if a2.DC != 9_993 {
		t.Fatalf("helium DC = %d, want 9993", a2.DC)
	}
	w1, w2 := c.Ledger().GetAccount("w1"), c2.Ledger().GetAccount("w1")
	if w1.HNTBones != w2.HNTBones || w2.HNTBones != 5*BonesPerHNT+10 {
		t.Fatalf("w1 bones = %d/%d", w1.HNTBones, w2.HNTBones)
	}
}

func TestReadChainErrors(t *testing.T) {
	if _, err := ReadChain(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadChain(bytes.NewReader([]byte("not json\n"))); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := ReadChain(bytes.NewReader([]byte("{\"genesis\":\"2019-07-29T00:00:00Z\"}\ngarbage\n"))); err == nil {
		t.Fatal("garbage block accepted")
	}
}

func TestHashStability(t *testing.T) {
	a := &AddGateway{Gateway: "g", Owner: "o"}
	b := &AddGateway{Gateway: "g", Owner: "o"}
	if Hash(a) != Hash(b) {
		t.Fatal("equal txns hash differently")
	}
	c := &AddGateway{Gateway: "g2", Owner: "o"}
	if Hash(a) == Hash(c) {
		t.Fatal("different txns hash equal")
	}
}

func TestSCIDDeterministic(t *testing.T) {
	if SCID("owner", 1) != SCID("owner", 1) {
		t.Fatal("SCID not deterministic")
	}
	if SCID("owner", 1) == SCID("owner", 2) {
		t.Fatal("SCID nonce collision")
	}
}
