package chain

import (
	"sync"
	"testing"
)

func TestBlocksReturnsCopy(t *testing.T) {
	c := NewChain(DefaultGenesis)
	if _, err := c.AppendBlock(1, []Txn{&AddGateway{Gateway: "hs1", Owner: "w"}}); err != nil {
		t.Fatal(err)
	}
	got := c.Blocks()
	got[0] = nil // must not corrupt the chain's own view
	if c.Blocks()[0] == nil {
		t.Fatal("Blocks aliases the internal slice")
	}
	if _, err := c.AppendBlock(2, []Txn{&AddGateway{Gateway: "hs2", Owner: "w"}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("earlier snapshot grew with the chain")
	}
}

func TestBlocksFrom(t *testing.T) {
	c := NewChain(DefaultGenesis)
	for _, h := range []int64{1, 5, 9, 20} {
		if _, err := c.AppendBlock(h, []Txn{&AddGateway{Gateway: "hs" + string(rune('a'+h)), Owner: "w"}}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		after int64
		want  []int64
	}{
		{-1, []int64{1, 5, 9, 20}},
		{0, []int64{1, 5, 9, 20}},
		{1, []int64{5, 9, 20}},
		{6, []int64{9, 20}}, // between sparse heights
		{20, nil},
		{99, nil},
	}
	for _, tc := range cases {
		got := c.BlocksFrom(tc.after)
		if len(got) != len(tc.want) {
			t.Fatalf("BlocksFrom(%d) = %d blocks, want %d", tc.after, len(got), len(tc.want))
		}
		for i, b := range got {
			if b.Height != tc.want[i] {
				t.Fatalf("BlocksFrom(%d)[%d] = height %d, want %d", tc.after, i, b.Height, tc.want[i])
			}
		}
	}
}

func TestSubscribeSignalsAppends(t *testing.T) {
	c := NewChain(DefaultGenesis)
	ch, cancel := c.Subscribe()
	defer cancel()
	if _, err := c.AppendBlock(1, []Txn{&AddGateway{Gateway: "hs1", Owner: "w"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("no signal after append")
	}
	// Signals coalesce: two appends while not draining leave one
	// pending signal, and BlocksFrom recovers both blocks.
	c.AppendBlock(2, []Txn{&AddGateway{Gateway: "hs2", Owner: "w"}})
	c.AppendBlock(3, []Txn{&AddGateway{Gateway: "hs3", Owner: "w"}})
	<-ch
	select {
	case <-ch:
		t.Fatal("signals did not coalesce")
	default:
	}
	if got := c.BlocksFrom(1); len(got) != 2 {
		t.Fatalf("BlocksFrom after coalesced signal = %d blocks", len(got))
	}
}

func TestSubscribeCancelIdempotent(t *testing.T) {
	c := NewChain(DefaultGenesis)
	ch, cancel := c.Subscribe()
	cancel()
	cancel() // second cancel must not panic (double close)
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	// Appends after cancel must not signal or panic.
	if _, err := c.AppendBlock(1, []Txn{&AddGateway{Gateway: "hs1", Owner: "w"}}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentProducerReaders exercises the one-producer /
// many-readers contract under the race detector.
func TestConcurrentProducerReaders(t *testing.T) {
	c := NewChain(DefaultGenesis)
	const blocks = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for h := int64(1); h <= blocks; h++ {
			gw := "hs" + string(rune('a'+h%26)) + string(rune('a'+(h/26)%26)) + string(rune('a'+(h/676)%26))
			if _, err := c.AppendBlock(h, []Txn{&AddGateway{Gateway: gw, Owner: "w"}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	ch, cancel := c.Subscribe()
	defer cancel()
	wg.Add(3)
	go func() {
		defer wg.Done()
		var tip int64 = -1
		var got int
		for got < blocks {
			<-ch
			nb := c.BlocksFrom(tip)
			got += len(nb)
			if len(nb) > 0 {
				tip = nb[len(nb)-1].Height
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.TxnMix()
			c.Scan(func(int64, Txn) bool { return true })
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.Height()
			c.Blocks()
		}
	}()
	wg.Wait()
	if c.TxnCount() != blocks {
		t.Fatalf("txn count = %d", c.TxnCount())
	}
}

func TestLedgerExpiredChannels(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&OUIRegistration{OUI: 1, Owner: "router"}, 1)
	l.CreditDC("router", 10_000)
	// Three channels with staggered deadlines.
	for i, within := range []int64{100, 200, 300} {
		open := &StateChannelOpen{ID: string(rune('a' + i)), Owner: "router", OUI: 1, AmountDC: 10, ExpireWithin: within}
		if err := l.ApplyTxn(open, 10); err != nil {
			t.Fatal(err)
		}
	}
	if exp := l.ExpiredChannels(50); len(exp) != 0 {
		t.Fatalf("expired at 50 = %v", exp)
	}
	// Deadline is inclusive: height == expireBlock counts as expired.
	if exp := l.ExpiredChannels(110); len(exp) != 1 || exp[0] != "a" {
		t.Fatalf("expired at 110 = %v", exp)
	}
	if exp := l.ExpiredChannels(250); len(exp) != 2 {
		t.Fatalf("expired at 250 = %v", exp)
	}
	// Output is sorted for determinism.
	exp := l.ExpiredChannels(1000)
	if len(exp) != 3 || exp[0] != "a" || exp[1] != "b" || exp[2] != "c" {
		t.Fatalf("expired at 1000 = %v", exp)
	}
	// Closing removes a channel from the expired set.
	if err := l.ApplyTxn(&StateChannelClose{ID: "a", Owner: "router"}, 120); err != nil {
		t.Fatal(err)
	}
	if exp := l.ExpiredChannels(1000); len(exp) != 2 {
		t.Fatalf("expired after close = %v", exp)
	}
}

func TestLedgerTakePendingData(t *testing.T) {
	l := NewLedger()
	l.ApplyTxn(&OUIRegistration{OUI: 1, Owner: "router"}, 1)
	l.ApplyTxn(&AddGateway{Gateway: "hs1", Owner: "w"}, 2)
	l.ApplyTxn(&AddGateway{Gateway: "hs2", Owner: "w"}, 2)
	l.CreditDC("router", 10_000)

	if got := l.TakePendingData(); len(got) != 0 {
		t.Fatalf("fresh ledger pending = %v", got)
	}
	// Two closes accumulate per-hotspot DC across channels.
	l.ApplyTxn(&StateChannelOpen{ID: "s1", Owner: "router", OUI: 1, AmountDC: 500, ExpireWithin: 100}, 10)
	l.ApplyTxn(&StateChannelOpen{ID: "s2", Owner: "router", OUI: 1, AmountDC: 500, ExpireWithin: 100}, 10)
	l.ApplyTxn(&StateChannelClose{ID: "s1", Owner: "router", Summaries: []SCSummary{
		{Hotspot: "hs1", Packets: 5, DC: 50},
		{Hotspot: "hs2", Packets: 1, DC: 10},
	}}, 20)
	l.ApplyTxn(&StateChannelClose{ID: "s2", Owner: "router", Summaries: []SCSummary{
		{Hotspot: "hs1", Packets: 2, DC: 25},
	}}, 21)

	got := l.TakePendingData()
	if got["hs1"] != 75 || got["hs2"] != 10 {
		t.Fatalf("pending = %v", got)
	}
	// Drained: a second take is empty, and later closes start fresh.
	if got := l.TakePendingData(); len(got) != 0 {
		t.Fatalf("pending after drain = %v", got)
	}
	l.ApplyTxn(&StateChannelOpen{ID: "s3", Owner: "router", OUI: 1, AmountDC: 100, ExpireWithin: 100}, 30)
	l.ApplyTxn(&StateChannelClose{ID: "s3", Owner: "router", Summaries: []SCSummary{
		{Hotspot: "hs2", Packets: 1, DC: 7},
	}}, 31)
	got = l.TakePendingData()
	if len(got) != 1 || got["hs2"] != 7 {
		t.Fatalf("pending after refill = %v", got)
	}
}
