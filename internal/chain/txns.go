package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/wire"
)

// Txn is one blockchain transaction. Implementations are the concrete
// payload structs below. A Txn validates itself against ledger state
// and then applies its effects; both run inside the ledger's lock
// during block appends.
type Txn interface {
	// TxnType returns the variant tag.
	TxnType() TxnType
	// validate checks the transaction against current ledger state.
	validate(l *Ledger, height int64) error
	// apply mutates ledger state. Called only after validate passes.
	apply(l *Ledger, height int64)
}

// Hash returns a content hash for any transaction, used as its ID. It
// hashes the type tag plus the binary wire encoding — injective per
// variant (length-prefixed strings, fixed-width numbers), and an order
// of magnitude cheaper than marshalling JSON, which matters because
// every generated transaction is hashed once for its block hash.
func Hash(t Txn) string {
	w := wire.Writer{Buf: make([]byte, 0, 256)}
	w.U8(uint8(t.TxnType()))
	encodeTxn(&w, t)
	sum := sha256.Sum256(w.Buf)
	return hex.EncodeToString(sum[:16])
}

// AddGateway registers a new hotspot (§3). Gateway and Owner are
// chainkey addresses; Location may be InvalidCell when the hotspot is
// added before its first location assertion.
type AddGateway struct {
	Gateway  string      `json:"gateway"`
	Owner    string      `json:"owner"`
	Location h3lite.Cell `json:"location,omitempty"`
	// Maker identifies the vendor batch the hotspot shipped in.
	Maker string `json:"maker,omitempty"`
}

func (t *AddGateway) TxnType() TxnType { return TxnAddGateway }

func (t *AddGateway) validate(l *Ledger, height int64) error {
	if t.Gateway == "" || t.Owner == "" {
		return fmt.Errorf("add_gateway: missing gateway or owner")
	}
	if _, ok := l.hotspots[t.Gateway]; ok {
		return fmt.Errorf("add_gateway: hotspot %s already exists", t.Gateway)
	}
	return nil
}

func (t *AddGateway) apply(l *Ledger, height int64) {
	h := &Hotspot{
		Address:    t.Gateway,
		Owner:      t.Owner,
		Maker:      t.Maker,
		AddedBlock: height,
		Location:   t.Location,
	}
	if t.Location != h3lite.InvalidCell {
		h.LocationHistory = append(h.LocationHistory, LocationEvent{Block: height, Cell: t.Location})
	}
	l.hotspots[t.Gateway] = h
	l.account(t.Owner).Hotspots++
}

// AssertLocation publishes or changes a hotspot's location (§3). The
// fee is FeeAssertLocationDC unless the hotspot still has free asserts
// remaining.
type AssertLocation struct {
	Gateway  string      `json:"gateway"`
	Owner    string      `json:"owner"`
	Location h3lite.Cell `json:"location"`
	Nonce    int         `json:"nonce"`
}

func (t *AssertLocation) TxnType() TxnType { return TxnAssertLocation }

func (t *AssertLocation) validate(l *Ledger, height int64) error {
	h, ok := l.hotspots[t.Gateway]
	if !ok {
		return fmt.Errorf("assert_location: unknown hotspot %s", t.Gateway)
	}
	if h.Owner != t.Owner {
		return fmt.Errorf("assert_location: %s not owned by %s", t.Gateway, t.Owner)
	}
	if !t.Location.Valid() {
		return fmt.Errorf("assert_location: invalid cell")
	}
	if t.Nonce != h.AssertCount+1 {
		return fmt.Errorf("assert_location: nonce %d, want %d", t.Nonce, h.AssertCount+1)
	}
	if h.AssertCount >= FreeAssertsPerHotspot {
		if l.account(t.Owner).DC < FeeAssertLocationDC {
			return fmt.Errorf("assert_location: owner %s has %d DC, fee is %d",
				t.Owner, l.account(t.Owner).DC, FeeAssertLocationDC)
		}
	}
	return nil
}

func (t *AssertLocation) apply(l *Ledger, height int64) {
	h := l.hotspots[t.Gateway]
	if h.AssertCount >= FreeAssertsPerHotspot {
		l.account(t.Owner).DC -= FeeAssertLocationDC
		l.dcBurned += FeeAssertLocationDC
	}
	h.AssertCount++
	h.Location = t.Location
	h.LocationHistory = append(h.LocationHistory, LocationEvent{Block: height, Cell: t.Location})
}

// TransferHotspot sells an established hotspot to a new owner (§4.3.3).
// AmountBones is the on-chain payment; the paper finds 95.8% of
// transfers move 0 DC because payment happens off chain.
type TransferHotspot struct {
	Gateway     string `json:"gateway"`
	Seller      string `json:"seller"`
	Buyer       string `json:"buyer"`
	AmountBones int64  `json:"amount_bones"`
}

func (t *TransferHotspot) TxnType() TxnType { return TxnTransferHotspot }

func (t *TransferHotspot) validate(l *Ledger, height int64) error {
	h, ok := l.hotspots[t.Gateway]
	if !ok {
		return fmt.Errorf("transfer_hotspot: unknown hotspot %s", t.Gateway)
	}
	if h.Owner != t.Seller {
		return fmt.Errorf("transfer_hotspot: %s not owned by seller %s", t.Gateway, t.Seller)
	}
	if t.Buyer == "" || t.Buyer == t.Seller {
		return fmt.Errorf("transfer_hotspot: bad buyer")
	}
	if t.AmountBones < 0 {
		return fmt.Errorf("transfer_hotspot: negative amount")
	}
	if t.AmountBones > 0 && l.account(t.Buyer).HNTBones < t.AmountBones {
		return fmt.Errorf("transfer_hotspot: buyer balance %d < %d", l.account(t.Buyer).HNTBones, t.AmountBones)
	}
	return nil
}

func (t *TransferHotspot) apply(l *Ledger, height int64) {
	h := l.hotspots[t.Gateway]
	if t.AmountBones > 0 {
		l.account(t.Buyer).HNTBones -= t.AmountBones
		l.account(t.Seller).HNTBones += t.AmountBones
	}
	l.account(t.Seller).Hotspots--
	l.account(t.Buyer).Hotspots++
	h.Owner = t.Buyer
	h.TransferCount++
	h.OwnerHistory = append(h.OwnerHistory, OwnerEvent{Block: height, Owner: t.Buyer})
}

// PoCRequest announces a challenge (§2.3). The challenger commits to
// an onion secret; the matching PoCReceipt carries the outcome.
type PoCRequest struct {
	Challenger string `json:"challenger"`
	SecretHash string `json:"secret_hash"`
}

func (t *PoCRequest) TxnType() TxnType { return TxnPoCRequest }

func (t *PoCRequest) validate(l *Ledger, height int64) error {
	h, ok := l.hotspots[t.Challenger]
	if !ok {
		return fmt.Errorf("poc_request: unknown challenger %s", t.Challenger)
	}
	if h.LastChallengeBlock > 0 && height-h.LastChallengeBlock < l.pocIntervalBlocks {
		return fmt.Errorf("poc_request: challenger %s challenged %d blocks ago (interval %d)",
			t.Challenger, height-h.LastChallengeBlock, l.pocIntervalBlocks)
	}
	return nil
}

func (t *PoCRequest) apply(l *Ledger, height int64) {
	l.hotspots[t.Challenger].LastChallengeBlock = height
}

// WitnessReport is one witness entry inside a PoCReceipt.
type WitnessReport struct {
	Witness  string      `json:"witness"`
	RSSIdBm  float64     `json:"rssi_dbm"`
	SNRdB    float64     `json:"snr_db"`
	Channel  int         `json:"channel"`
	Location h3lite.Cell `json:"location"` // location claimed at witness time
	Valid    bool        `json:"valid"`    // validity verdict recorded on chain
	Reason   string      `json:"reason,omitempty"`
}

// PoCReceipt records a completed challenge: the challengee transmitted
// and zero or more witnesses reported the packet (§2.3).
type PoCReceipt struct {
	Challenger string `json:"challenger"`
	Challengee string `json:"challengee"`
	// ChallengeeLocation is the asserted location at receipt time.
	ChallengeeLocation h3lite.Cell     `json:"challengee_location"`
	Witnesses          []WitnessReport `json:"witnesses"`
}

func (t *PoCReceipt) TxnType() TxnType { return TxnPoCReceipt }

func (t *PoCReceipt) validate(l *Ledger, height int64) error {
	if _, ok := l.hotspots[t.Challenger]; !ok {
		return fmt.Errorf("poc_receipt: unknown challenger %s", t.Challenger)
	}
	if _, ok := l.hotspots[t.Challengee]; !ok {
		return fmt.Errorf("poc_receipt: unknown challengee %s", t.Challengee)
	}
	for _, w := range t.Witnesses {
		if _, ok := l.hotspots[w.Witness]; !ok {
			return fmt.Errorf("poc_receipt: unknown witness %s", w.Witness)
		}
	}
	return nil
}

func (t *PoCReceipt) apply(l *Ledger, height int64) {
	l.hotspots[t.Challengee].LastPoCBlock = height
	for _, w := range t.Witnesses {
		if w.Valid {
			l.hotspots[w.Witness].ValidWitnessCount++
		}
	}
}

// StateChannelOpen stakes DC for future packet purchases (§5.1).
type StateChannelOpen struct {
	ID           string `json:"id"`
	Owner        string `json:"owner"` // router wallet
	OUI          uint32 `json:"oui"`
	AmountDC     int64  `json:"amount_dc"`
	ExpireWithin int64  `json:"expire_within"` // blocks until close deadline
}

func (t *StateChannelOpen) TxnType() TxnType { return TxnStateChannelOpen }

func (t *StateChannelOpen) validate(l *Ledger, height int64) error {
	if t.ID == "" {
		return fmt.Errorf("state_channel_open: empty id")
	}
	if _, ok := l.channels[t.ID]; ok {
		return fmt.Errorf("state_channel_open: channel %s already open", t.ID)
	}
	if t.ExpireWithin < StateChannelMinBlocks || t.ExpireWithin > StateChannelMaxBlocks {
		return fmt.Errorf("state_channel_open: expire_within %d outside [%d,%d]",
			t.ExpireWithin, StateChannelMinBlocks, StateChannelMaxBlocks)
	}
	if t.AmountDC <= 0 {
		return fmt.Errorf("state_channel_open: non-positive stake")
	}
	oui, ok := l.ouis[t.OUI]
	if !ok {
		return fmt.Errorf("state_channel_open: unknown OUI %d", t.OUI)
	}
	if oui.Owner != t.Owner {
		return fmt.Errorf("state_channel_open: OUI %d not owned by %s", t.OUI, t.Owner)
	}
	if l.account(t.Owner).DC < t.AmountDC {
		return fmt.Errorf("state_channel_open: owner %s has %d DC < stake %d",
			t.Owner, l.account(t.Owner).DC, t.AmountDC)
	}
	return nil
}

func (t *StateChannelOpen) apply(l *Ledger, height int64) {
	l.account(t.Owner).DC -= t.AmountDC
	l.channels[t.ID] = &channelState{
		owner:       t.Owner,
		oui:         t.OUI,
		stakedDC:    t.AmountDC,
		expireBlock: height + t.ExpireWithin,
	}
}

// SCSummary is one hotspot's line item in a state channel close: how
// many packets and DC the router is paying for.
type SCSummary struct {
	Hotspot string `json:"hotspot"`
	Packets int64  `json:"packets"`
	DC      int64  `json:"dc"`
}

// StateChannelClose settles a channel (§5.1): spent DC are burned,
// summarized hotspots are credited data-transfer rewards at the next
// rewards transaction, and unspent stake returns to the router.
type StateChannelClose struct {
	ID        string      `json:"id"`
	Owner     string      `json:"owner"`
	Summaries []SCSummary `json:"summaries"`
}

func (t *StateChannelClose) TxnType() TxnType { return TxnStateChannelClose }

// TotalPackets sums packets over all summaries.
func (t *StateChannelClose) TotalPackets() int64 {
	var n int64
	for _, s := range t.Summaries {
		n += s.Packets
	}
	return n
}

// TotalDC sums DC over all summaries.
func (t *StateChannelClose) TotalDC() int64 {
	var n int64
	for _, s := range t.Summaries {
		n += s.DC
	}
	return n
}

func (t *StateChannelClose) validate(l *Ledger, height int64) error {
	ch, ok := l.channels[t.ID]
	if !ok {
		return fmt.Errorf("state_channel_close: unknown channel %s", t.ID)
	}
	if ch.owner != t.Owner {
		return fmt.Errorf("state_channel_close: channel %s not owned by %s", t.ID, t.Owner)
	}
	spent := t.TotalDC()
	if spent > ch.stakedDC {
		return fmt.Errorf("state_channel_close: spend %d exceeds stake %d", spent, ch.stakedDC)
	}
	for _, s := range t.Summaries {
		if s.Packets < 0 || s.DC < 0 {
			return fmt.Errorf("state_channel_close: negative summary for %s", s.Hotspot)
		}
		if _, ok := l.hotspots[s.Hotspot]; !ok {
			return fmt.Errorf("state_channel_close: unknown hotspot %s", s.Hotspot)
		}
	}
	return nil
}

func (t *StateChannelClose) apply(l *Ledger, height int64) {
	ch := l.channels[t.ID]
	spent := t.TotalDC()
	l.account(t.Owner).DC += ch.stakedDC - spent // refund unspent stake
	l.dcBurned += spent
	for _, s := range t.Summaries {
		l.hotspots[s.Hotspot].DataPackets += s.Packets
		l.pendingData[s.Hotspot] += s.DC
	}
	delete(l.channels, t.ID)
}

// Payment moves HNT between wallets.
type Payment struct {
	Payer       string `json:"payer"`
	Payee       string `json:"payee"`
	AmountBones int64  `json:"amount_bones"`
}

func (t *Payment) TxnType() TxnType { return TxnPayment }

func (t *Payment) validate(l *Ledger, height int64) error {
	if t.AmountBones <= 0 {
		return fmt.Errorf("payment: non-positive amount")
	}
	if l.account(t.Payer).HNTBones < t.AmountBones {
		return fmt.Errorf("payment: payer %s balance %d < %d", t.Payer, l.account(t.Payer).HNTBones, t.AmountBones)
	}
	return nil
}

func (t *Payment) apply(l *Ledger, height int64) {
	l.account(t.Payer).HNTBones -= t.AmountBones
	l.account(t.Payee).HNTBones += t.AmountBones
}

// TokenBurn converts HNT to DC at the oracle price, crediting the
// destination wallet (§5.2: users fund Console accounts this way).
type TokenBurn struct {
	Payer       string `json:"payer"`
	Destination string `json:"destination"`
	AmountBones int64  `json:"amount_bones"`
}

func (t *TokenBurn) TxnType() TxnType { return TxnTokenBurn }

func (t *TokenBurn) validate(l *Ledger, height int64) error {
	if t.AmountBones <= 0 {
		return fmt.Errorf("token_burn: non-positive amount")
	}
	if l.account(t.Payer).HNTBones < t.AmountBones {
		return fmt.Errorf("token_burn: payer balance %d < %d", l.account(t.Payer).HNTBones, t.AmountBones)
	}
	return nil
}

func (t *TokenBurn) apply(l *Ledger, height int64) {
	l.account(t.Payer).HNTBones -= t.AmountBones
	hnt := float64(t.AmountBones) / BonesPerHNT
	dc := int64(math.Round(hnt * l.oracleUSDPerHNT / USDPerDC))
	l.account(t.Destination).DC += dc
	l.hntBurnedBones += t.AmountBones
}

// OUIRegistration purchases an Organizationally Unique Identifier,
// entitling the owner to run a router (§5.2).
type OUIRegistration struct {
	OUI     uint32   `json:"oui"`
	Owner   string   `json:"owner"`
	Filters []string `json:"filters,omitempty"` // device EUI filter list
}

func (t *OUIRegistration) TxnType() TxnType { return TxnOUI }

func (t *OUIRegistration) validate(l *Ledger, height int64) error {
	if t.OUI == 0 {
		return fmt.Errorf("oui: zero OUI")
	}
	if _, ok := l.ouis[t.OUI]; ok {
		return fmt.Errorf("oui: OUI %d already registered", t.OUI)
	}
	if want := l.nextOUI; t.OUI != want {
		return fmt.Errorf("oui: OUI %d out of sequence, want %d", t.OUI, want)
	}
	return nil
}

func (t *OUIRegistration) apply(l *Ledger, height int64) {
	l.ouis[t.OUI] = &OUIRecord{OUI: t.OUI, Owner: t.Owner, Filters: append([]string(nil), t.Filters...)}
	l.nextOUI++
}

// RewardEntry is one wallet's line in a rewards transaction.
type RewardEntry struct {
	Account     string     `json:"account"`
	Gateway     string     `json:"gateway,omitempty"`
	AmountBones int64      `json:"amount_bones"`
	Kind        RewardKind `json:"kind"`
}

// RewardKind classifies what a reward paid for.
type RewardKind uint8

const (
	RewardChallenger RewardKind = iota + 1
	RewardChallengee
	RewardWitness
	RewardData
	RewardConsensus
)

var rewardNames = map[RewardKind]string{
	RewardChallenger: "poc_challenger",
	RewardChallengee: "poc_challengee",
	RewardWitness:    "poc_witness",
	RewardData:       "data_transfer",
	RewardConsensus:  "consensus",
}

func (k RewardKind) String() string {
	if n, ok := rewardNames[k]; ok {
		return n
	}
	return fmt.Sprintf("reward_kind_%d", uint8(k))
}

// Rewards mints HNT to participants for an epoch (§2.4).
type Rewards struct {
	Epoch   int64         `json:"epoch"`
	Entries []RewardEntry `json:"entries"`
}

func (t *Rewards) TxnType() TxnType { return TxnRewards }

func (t *Rewards) validate(l *Ledger, height int64) error {
	for _, e := range t.Entries {
		if e.AmountBones < 0 {
			return fmt.Errorf("rewards: negative entry for %s", e.Account)
		}
	}
	return nil
}

func (t *Rewards) apply(l *Ledger, height int64) {
	for _, e := range t.Entries {
		l.account(e.Account).HNTBones += e.AmountBones
		l.hntMintedBones += e.AmountBones
		if e.Gateway != "" {
			if h, ok := l.hotspots[e.Gateway]; ok {
				h.EarnedBones += e.AmountBones
			}
		}
	}
}

// ConsensusGroup records the miners elected to produce blocks for an
// epoch (§2.2: miners "maintain the Helium blockchain"). The study
// does not analyze consensus, but the transaction appears in real
// chains and rounds out the vocabulary.
type ConsensusGroup struct {
	Epoch   int64    `json:"epoch"`
	Members []string `json:"members"`
}

func (t *ConsensusGroup) TxnType() TxnType { return TxnConsensusGroup }

func (t *ConsensusGroup) validate(l *Ledger, height int64) error {
	if len(t.Members) == 0 {
		return fmt.Errorf("consensus_group: empty membership")
	}
	seen := make(map[string]bool, len(t.Members))
	for _, m := range t.Members {
		if m == "" || seen[m] {
			return fmt.Errorf("consensus_group: empty or duplicate member")
		}
		seen[m] = true
	}
	return nil
}

func (t *ConsensusGroup) apply(l *Ledger, height int64) {
	l.consensus = append([]string(nil), t.Members...)
}

// RoutingUpdate changes an OUI's device filter list — how a router
// owner tells hotspots which EUIs to offer it (§2.2's "filter list in
// the Helium blockchain").
type RoutingUpdate struct {
	OUI     uint32   `json:"oui"`
	Owner   string   `json:"owner"`
	Filters []string `json:"filters"`
}

func (t *RoutingUpdate) TxnType() TxnType { return TxnRoutingUpdate }

func (t *RoutingUpdate) validate(l *Ledger, height int64) error {
	rec, ok := l.ouis[t.OUI]
	if !ok {
		return fmt.Errorf("routing_update: unknown OUI %d", t.OUI)
	}
	if rec.Owner != t.Owner {
		return fmt.Errorf("routing_update: OUI %d not owned by %s", t.OUI, t.Owner)
	}
	return nil
}

func (t *RoutingUpdate) apply(l *Ledger, height int64) {
	l.ouis[t.OUI].Filters = append([]string(nil), t.Filters...)
}

// StakeValidatorBones is the validator stake: 10,000 HNT (HIP25).
const StakeValidatorBones = 10_000 * BonesPerHNT

// StakeValidator locks a validator stake (§2.2: validators were
// ratified in January 2021 and "appear as special-case miners on the
// blockchain"). The stake is deducted from the owner and held by the
// ledger until (out of scope here) unstaking.
type StakeValidator struct {
	Owner     string `json:"owner"`
	Validator string `json:"validator"` // validator node address
}

func (t *StakeValidator) TxnType() TxnType { return TxnStakeValidator }

func (t *StakeValidator) validate(l *Ledger, height int64) error {
	if t.Owner == "" || t.Validator == "" {
		return fmt.Errorf("stake_validator: missing owner or validator")
	}
	if _, ok := l.validators[t.Validator]; ok {
		return fmt.Errorf("stake_validator: %s already staked", t.Validator)
	}
	if l.account(t.Owner).HNTBones < StakeValidatorBones {
		return fmt.Errorf("stake_validator: owner %s holds %d bones, stake is %d",
			t.Owner, l.account(t.Owner).HNTBones, StakeValidatorBones)
	}
	return nil
}

func (t *StakeValidator) apply(l *Ledger, height int64) {
	l.account(t.Owner).HNTBones -= StakeValidatorBones
	l.validators[t.Validator] = t.Owner
	l.stakedBones += StakeValidatorBones
}

// DCCoinbase credits DC directly to a wallet, modelling off-chain
// funding events that the real chain records via its coinbase
// transactions (credit-card DC purchases through the Console, §5.2).
type DCCoinbase struct {
	Payee    string `json:"payee"`
	AmountDC int64  `json:"amount_dc"`
}

func (t *DCCoinbase) TxnType() TxnType { return TxnDCCoinbase }

func (t *DCCoinbase) validate(l *Ledger, height int64) error {
	if t.Payee == "" || t.AmountDC <= 0 {
		return fmt.Errorf("dc_coinbase: bad payee or amount")
	}
	return nil
}

func (t *DCCoinbase) apply(l *Ledger, height int64) {
	l.account(t.Payee).DC += t.AmountDC
}

// SecurityCoinbase credits HNT directly to a wallet, modelling the
// pre-mine / investor allocations that seed wallets with purchase
// capital.
type SecurityCoinbase struct {
	Payee       string `json:"payee"`
	AmountBones int64  `json:"amount_bones"`
}

func (t *SecurityCoinbase) TxnType() TxnType { return TxnSecurityCoinbase }

func (t *SecurityCoinbase) validate(l *Ledger, height int64) error {
	if t.Payee == "" || t.AmountBones <= 0 {
		return fmt.Errorf("security_coinbase: bad payee or amount")
	}
	return nil
}

func (t *SecurityCoinbase) apply(l *Ledger, height int64) {
	l.account(t.Payee).HNTBones += t.AmountBones
}

// scID builds a deterministic state-channel ID.
func SCID(owner string, nonce int64) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(nonce))
	sum := sha256.Sum256(append([]byte(owner), buf[:]...))
	return fmt.Sprintf("sc-%x", sum[:8])
}
