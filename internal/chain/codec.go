package chain

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Serialization: blocks are encoded as JSON lines (one block per
// line), each transaction wrapped in a {"type": ..., "txn": ...}
// envelope so the concrete payload type survives the round trip. The
// format is what cmd/heliumsim writes and cmd/chainalyze reads.

type txnEnvelope struct {
	Type TxnType         `json:"type"`
	Txn  json.RawMessage `json:"txn"`
}

type blockWire struct {
	Height    int64         `json:"height"`
	Timestamp time.Time     `json:"timestamp"`
	PrevHash  string        `json:"prev_hash"`
	Hash      string        `json:"hash"`
	Txns      []txnEnvelope `json:"txns"`
}

// MarshalJSON implements json.Marshaler for Block, wrapping each txn
// in a type envelope.
func (b *Block) MarshalJSON() ([]byte, error) {
	w := blockWire{
		Height:    b.Height,
		Timestamp: b.Timestamp,
		PrevHash:  b.PrevHash,
		Hash:      b.Hash,
		Txns:      make([]txnEnvelope, len(b.Txns)),
	}
	for i, t := range b.Txns {
		raw, err := json.Marshal(t)
		if err != nil {
			return nil, fmt.Errorf("chain: marshal txn %d: %w", i, err)
		}
		w.Txns[i] = txnEnvelope{Type: t.TxnType(), Txn: raw}
	}
	return json.Marshal(w)
}

// newTxn allocates the concrete struct for a type tag.
func newTxn(tt TxnType) (Txn, error) {
	switch tt {
	case TxnAddGateway:
		return &AddGateway{}, nil
	case TxnAssertLocation:
		return &AssertLocation{}, nil
	case TxnTransferHotspot:
		return &TransferHotspot{}, nil
	case TxnPoCRequest:
		return &PoCRequest{}, nil
	case TxnPoCReceipt:
		return &PoCReceipt{}, nil
	case TxnStateChannelOpen:
		return &StateChannelOpen{}, nil
	case TxnStateChannelClose:
		return &StateChannelClose{}, nil
	case TxnPayment:
		return &Payment{}, nil
	case TxnTokenBurn:
		return &TokenBurn{}, nil
	case TxnOUI:
		return &OUIRegistration{}, nil
	case TxnRewards:
		return &Rewards{}, nil
	case TxnConsensusGroup:
		return &ConsensusGroup{}, nil
	case TxnRoutingUpdate:
		return &RoutingUpdate{}, nil
	case TxnStakeValidator:
		return &StakeValidator{}, nil
	case TxnDCCoinbase:
		return &DCCoinbase{}, nil
	case TxnSecurityCoinbase:
		return &SecurityCoinbase{}, nil
	default:
		return nil, fmt.Errorf("chain: cannot decode txn type %d (%s)", uint8(tt), tt)
	}
}

// UnmarshalJSON implements json.Unmarshaler for Block.
func (b *Block) UnmarshalJSON(data []byte) error {
	var w blockWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	b.Height = w.Height
	b.Timestamp = w.Timestamp
	b.PrevHash = w.PrevHash
	b.Hash = w.Hash
	b.Txns = make([]Txn, len(w.Txns))
	for i, env := range w.Txns {
		t, err := newTxn(env.Type)
		if err != nil {
			return fmt.Errorf("chain: block %d txn %d: %w", w.Height, i, err)
		}
		if err := json.Unmarshal(env.Txn, t); err != nil {
			return fmt.Errorf("chain: block %d txn %d payload: %w", w.Height, i, err)
		}
		b.Txns[i] = t
	}
	return nil
}

// WriteTo streams the chain as JSON lines: a header line with the
// genesis time, then one line per block.
func (c *Chain) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	blocks := c.snapshot()
	var n int64
	hdr, err := json.Marshal(struct {
		Genesis time.Time `json:"genesis"`
		Blocks  int       `json:"blocks"`
	}{c.Genesis, len(blocks)})
	if err != nil {
		return 0, err
	}
	m, err := bw.Write(append(hdr, '\n'))
	n += int64(m)
	if err != nil {
		return n, err
	}
	for _, b := range blocks {
		line, err := json.Marshal(b)
		if err != nil {
			return n, err
		}
		m, err = bw.Write(append(line, '\n'))
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadChain reconstructs a chain from the JSON-lines format, replaying
// every block through a fresh ledger so the resulting state matches
// the writer's.
func ReadChain(r io.Reader) (*Chain, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("chain: empty input")
	}
	var hdr struct {
		Genesis time.Time `json:"genesis"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("chain: bad header: %w", err)
	}
	c := NewChain(hdr.Genesis)
	for sc.Scan() {
		var b Block
		if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
			return nil, fmt.Errorf("chain: bad block line: %w", err)
		}
		if _, err := c.AppendBlock(b.Height, b.Txns); err != nil {
			return nil, fmt.Errorf("chain: replay: %w", err)
		}
	}
	return c, sc.Err()
}
