package chain

import (
	"fmt"
	"sort"
	"sync"

	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/names"
)

// LocationEvent is one entry in a hotspot's location history.
type LocationEvent struct {
	Block int64       `json:"block"`
	Cell  h3lite.Cell `json:"cell"`
}

// OwnerEvent is one entry in a hotspot's ownership history.
type OwnerEvent struct {
	Block int64  `json:"block"`
	Owner string `json:"owner"`
}

// Hotspot is the ledger's record of one gateway.
type Hotspot struct {
	Address string `json:"address"`
	Owner   string `json:"owner"`
	Maker   string `json:"maker,omitempty"`

	AddedBlock int64       `json:"added_block"`
	Location   h3lite.Cell `json:"location"`

	AssertCount   int `json:"assert_count"`
	TransferCount int `json:"transfer_count"`

	LocationHistory []LocationEvent `json:"location_history,omitempty"`
	OwnerHistory    []OwnerEvent    `json:"owner_history,omitempty"`

	LastChallengeBlock int64 `json:"last_challenge_block,omitempty"`
	LastPoCBlock       int64 `json:"last_poc_block,omitempty"`
	ValidWitnessCount  int64 `json:"valid_witness_count,omitempty"`
	DataPackets        int64 `json:"data_packets,omitempty"`
	EarnedBones        int64 `json:"earned_bones,omitempty"`

	// Online mirrors the p2p liveness view (§4.2's connected vs
	// online distinction); it is maintained by the simulator, not by
	// transactions.
	Online bool `json:"online"`
}

// Name returns the hotspot's deterministic three-word name.
func (h *Hotspot) Name() string { return names.FromAddress(h.Address) }

// Account is a wallet's balance state.
type Account struct {
	Address  string `json:"address"`
	HNTBones int64  `json:"hnt_bones"`
	DC       int64  `json:"dc"`
	Hotspots int    `json:"hotspots"`
}

// OUIRecord is a registered router identifier.
type OUIRecord struct {
	OUI     uint32   `json:"oui"`
	Owner   string   `json:"owner"`
	Filters []string `json:"filters,omitempty"`
}

// channelState is an open state channel's ledger state.
type channelState struct {
	owner       string
	oui         uint32
	stakedDC    int64
	expireBlock int64
}

// Ledger is the chain state machine. All exported methods are safe for
// concurrent use.
type Ledger struct {
	mu sync.RWMutex

	hotspots map[string]*Hotspot
	accounts map[string]*Account
	ouis     map[uint32]*OUIRecord
	channels map[string]*channelState
	nextOUI  uint32

	// pendingData accumulates DC credited per hotspot since the last
	// rewards epoch, used to apportion data-transfer rewards.
	pendingData map[string]int64

	validators map[string]string // validator address → staking owner
	consensus  []string          // current consensus group members

	dcBurned        int64
	hntMintedBones  int64
	hntBurnedBones  int64
	stakedBones     int64
	oracleUSDPerHNT float64

	pocIntervalBlocks int64
}

// NewLedger returns an empty ledger with the default oracle price and
// PoC challenge interval.
func NewLedger() *Ledger {
	return &Ledger{
		hotspots:          make(map[string]*Hotspot),
		accounts:          make(map[string]*Account),
		ouis:              make(map[uint32]*OUIRecord),
		channels:          make(map[string]*channelState),
		validators:        make(map[string]string),
		pendingData:       make(map[string]int64),
		nextOUI:           1,
		oracleUSDPerHNT:   15.0, // mid of the paper's May 2021 $8.32–19.70 range
		pocIntervalBlocks: PoCChallengeIntervalBlocks,
	}
}

// SetOraclePrice sets the USD/HNT price used by token burns.
func (l *Ledger) SetOraclePrice(usdPerHNT float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if usdPerHNT > 0 {
		l.oracleUSDPerHNT = usdPerHNT
	}
}

// SetPoCInterval overrides the challenge interval (useful for
// compressed-timeline simulations).
func (l *Ledger) SetPoCInterval(blocks int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if blocks > 0 {
		l.pocIntervalBlocks = blocks
	}
}

// account returns (creating if needed) the account record. Caller
// must hold l.mu.
func (l *Ledger) account(addr string) *Account {
	a, ok := l.accounts[addr]
	if !ok {
		a = &Account{Address: addr}
		l.accounts[addr] = a
	}
	return a
}

// ApplyTxn validates and applies a single transaction at the given
// height, returning a validation error without side effects on
// failure.
func (l *Ledger) ApplyTxn(t Txn, height int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applyLocked(t, height)
}

func (l *Ledger) applyLocked(t Txn, height int64) error {
	if err := t.validate(l, height); err != nil {
		return err
	}
	t.apply(l, height)
	return nil
}

// CreditHNT mints bones directly into an account, used to seed
// simulated wallets with purchase capital.
func (l *Ledger) CreditHNT(addr string, bones int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.account(addr).HNTBones += bones
}

// CreditDC adds DC directly (credit-card purchases through the
// Console happen off chain; §5.2).
func (l *Ledger) CreditDC(addr string, dc int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.account(addr).DC += dc
}

// HotspotCount returns the number of registered hotspots.
func (l *Ledger) HotspotCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.hotspots)
}

// GetHotspot returns a copy of the hotspot record, or false.
func (l *Ledger) GetHotspot(addr string) (Hotspot, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	h, ok := l.hotspots[addr]
	if !ok {
		return Hotspot{}, false
	}
	cp := *h
	cp.LocationHistory = append([]LocationEvent(nil), h.LocationHistory...)
	cp.OwnerHistory = append([]OwnerEvent(nil), h.OwnerHistory...)
	return cp, true
}

// Hotspots returns copies of all hotspot records, sorted by address
// for determinism.
func (l *Ledger) Hotspots() []Hotspot {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Hotspot, 0, len(l.hotspots))
	for _, h := range l.hotspots {
		cp := *h
		cp.LocationHistory = append([]LocationEvent(nil), h.LocationHistory...)
		cp.OwnerHistory = append([]OwnerEvent(nil), h.OwnerHistory...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Address < out[j].Address })
	return out
}

// SetOnline flags a hotspot's liveness (driven by the p2p layer).
func (l *Ledger) SetOnline(addr string, online bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.hotspots[addr]
	if !ok {
		return fmt.Errorf("chain: unknown hotspot %s", addr)
	}
	h.Online = online
	return nil
}

// GetAccount returns a copy of the account record (zero value if the
// address has never transacted).
func (l *Ledger) GetAccount(addr string) Account {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if a, ok := l.accounts[addr]; ok {
		return *a
	}
	return Account{Address: addr}
}

// Accounts returns copies of all accounts, sorted by address.
func (l *Ledger) Accounts() []Account {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Account, 0, len(l.accounts))
	for _, a := range l.accounts {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Address < out[j].Address })
	return out
}

// OUIs returns all registered OUIs sorted by number.
func (l *Ledger) OUIs() []OUIRecord {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]OUIRecord, 0, len(l.ouis))
	for _, o := range l.ouis {
		cp := *o
		cp.Filters = append([]string(nil), o.Filters...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OUI < out[j].OUI })
	return out
}

// OpenChannels returns the IDs of currently open state channels.
func (l *Ledger) OpenChannels() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.channels))
	for id := range l.channels {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ExpiredChannels returns channels whose deadline has passed at
// height. Routers are responsible for closing them (§5.1).
func (l *Ledger) ExpiredChannels(height int64) []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []string
	for id, ch := range l.channels {
		if height >= ch.expireBlock {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// TakePendingData drains and returns per-hotspot DC accumulated since
// the last call; the rewards scheduler uses it to apportion
// data-transfer rewards.
func (l *Ledger) TakePendingData() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.pendingData
	l.pendingData = make(map[string]int64)
	return out
}

// Totals reports aggregate monetary counters.
type Totals struct {
	DCBurned       int64
	HNTMintedBones int64
	HNTBurnedBones int64
	StakedBones    int64
}

// MoneyTotals returns the aggregate mint/burn/stake counters.
func (l *Ledger) MoneyTotals() Totals {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return Totals{
		DCBurned:       l.dcBurned,
		HNTMintedBones: l.hntMintedBones,
		HNTBurnedBones: l.hntBurnedBones,
		StakedBones:    l.stakedBones,
	}
}

// ConsensusGroupMembers returns the current block-producer set.
func (l *Ledger) ConsensusGroupMembers() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.consensus...)
}

// Validators returns validator address → staking owner.
func (l *Ledger) Validators() map[string]string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string]string, len(l.validators))
	for k, v := range l.validators {
		out[k] = v
	}
	return out
}
