package plot

import (
	"strings"
	"testing"

	"peoplesnet/internal/geo"
)

func TestCanvasPlotAndRender(t *testing.T) {
	b := geo.BoundingBox{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	c := NewCanvas(b, 20, 10)
	c.Plot(geo.Point{Lat: 5, Lon: 5}, '*')
	c.Plot(geo.Point{Lat: 50, Lon: 50}, 'X') // outside: ignored
	s := c.String()
	if !strings.Contains(s, "*") {
		t.Fatal("plotted point missing")
	}
	if strings.Contains(s, "X") {
		t.Fatal("out-of-viewport point rendered")
	}
	lines := strings.Split(s, "\n")
	if len(lines) != 12 { // border + 10 rows + border
		t.Fatalf("rendered %d lines", len(lines))
	}
	for _, l := range lines {
		if len([]rune(l)) != 22 {
			t.Fatalf("ragged line %q", l)
		}
	}
}

func TestNorthIsUp(t *testing.T) {
	b := geo.BoundingBox{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	c := NewCanvas(b, 10, 10)
	c.Plot(geo.Point{Lat: 9.9, Lon: 5}, 'N')
	c.Plot(geo.Point{Lat: 0.1, Lon: 5}, 'S')
	s := strings.Split(c.String(), "\n")
	nRow, sRow := -1, -1
	for i, l := range s {
		if strings.Contains(l, "N") {
			nRow = i
		}
		if strings.Contains(l, "S") {
			sRow = i
		}
	}
	if nRow < 0 || sRow < 0 || nRow >= sRow {
		t.Fatalf("north row %d, south row %d", nRow, sRow)
	}
}

func TestFitCanvasCoversPoints(t *testing.T) {
	pts := []geo.Point{{Lat: 32.7, Lon: -117.2}, {Lat: 32.8, Lon: -117.1}}
	c := FitCanvas(pts, 40, 20, 0.1)
	for _, p := range pts {
		if _, _, ok := c.cell(p); !ok {
			t.Fatalf("fit canvas excludes %v", p)
		}
	}
	// Degenerate inputs.
	if FitCanvas(nil, 10, 10, 0.1) == nil {
		t.Fatal("nil-point canvas missing")
	}
}

func TestFillAndOutlinePolygon(t *testing.T) {
	b := geo.BoundingBox{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	c := NewCanvas(b, 30, 15)
	square := geo.NewPolygon([]geo.Point{{Lat: 2, Lon: 2}, {Lat: 2, Lon: 8}, {Lat: 8, Lon: 8}, {Lat: 8, Lon: 2}})
	c.FillPolygon(square, '~')
	if !strings.Contains(c.String(), "~") {
		t.Fatal("fill missing")
	}
	// A dot plotted before the fill survives it.
	c2 := NewCanvas(b, 30, 15)
	c2.Plot(geo.Point{Lat: 5, Lon: 5}, '*')
	c2.FillPolygon(square, '~')
	if !strings.Contains(c2.String(), "*") {
		t.Fatal("fill overwrote existing mark")
	}
	c3 := NewCanvas(b, 30, 15)
	c3.Outline(square, '#')
	if strings.Count(c3.String(), "#") < 8 {
		t.Fatal("outline too sparse")
	}
	// Degenerate polygon: no panic, no cells.
	c3.FillPolygon(geo.Polygon{}, 'x')
}

func TestDensityRamp(t *testing.T) {
	b := geo.BoundingBox{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	d := NewDensity(b, 20, 10)
	for i := 0; i < 50; i++ {
		d.Add(geo.Point{Lat: 5, Lon: 5}) // hot cell
	}
	d.Add(geo.Point{Lat: 2, Lon: 2}) // cool cell
	s := d.String()
	if !strings.Contains(s, "@") {
		t.Fatal("hot cell not at peak intensity")
	}
	if !strings.Contains(s, ".") {
		t.Fatal("cool cell not at low intensity")
	}
}

func TestPlotMajority(t *testing.T) {
	b := geo.BoundingBox{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	c := NewCanvas(b, 10, 10)
	// Same cell: two 'o', one 'x' → majority 'o'.
	pts := []geo.Point{{Lat: 5, Lon: 5}, {Lat: 5, Lon: 5}, {Lat: 5, Lon: 5}, {Lat: 1, Lon: 1}}
	marks := []rune{'o', 'o', 'x', 'x'}
	c.PlotMajority(pts, marks)
	s := c.String()
	if strings.Count(s, "o") != 1 || strings.Count(s, "x") != 1 {
		t.Fatalf("majority render wrong:\n%s", s)
	}
	// Mismatched lengths: no-op, no panic.
	c.PlotMajority(pts, marks[:2])
}
