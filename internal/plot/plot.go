// Package plot renders the study's geospatial figures as character
// rasters: coverage shapes over a landmass (Fig 12), walk traces with
// received/lost packets (Fig 15), and scatter layers generally. The
// output is deliberately terminal-grade — the reproduction's figures
// are numbers first, but a glanceable map makes the geometry honest.
package plot

import (
	"math"
	"strings"

	"peoplesnet/internal/geo"
)

// Canvas is a character grid over a lat/lon viewport.
type Canvas struct {
	W, H   int
	bounds geo.BoundingBox
	cells  [][]rune
}

// NewCanvas creates a canvas covering bounds with the given character
// dimensions. Width covers longitude, height latitude (flipped so
// north is up).
func NewCanvas(bounds geo.BoundingBox, w, h int) *Canvas {
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	cells := make([][]rune, h)
	for i := range cells {
		cells[i] = make([]rune, w)
		for j := range cells[i] {
			cells[i][j] = ' '
		}
	}
	return &Canvas{W: w, H: h, bounds: bounds, cells: cells}
}

// FitCanvas builds a canvas sized w×h around the given points with a
// margin.
func FitCanvas(pts []geo.Point, w, h int, marginFrac float64) *Canvas {
	if len(pts) == 0 {
		return NewCanvas(geo.BoundingBox{MinLat: -1, MinLon: -1, MaxLat: 1, MaxLon: 1}, w, h)
	}
	b := geo.BoundsOf(pts)
	dLat := math.Max((b.MaxLat-b.MinLat)*marginFrac, 1e-4)
	dLon := math.Max((b.MaxLon-b.MinLon)*marginFrac, 1e-4)
	b.MinLat -= dLat
	b.MaxLat += dLat
	b.MinLon -= dLon
	b.MaxLon += dLon
	return NewCanvas(b, w, h)
}

// cell maps a point to grid coordinates; ok is false outside the
// viewport.
func (c *Canvas) cell(p geo.Point) (row, col int, ok bool) {
	if !c.bounds.Contains(p) {
		return 0, 0, false
	}
	fx := (p.Lon - c.bounds.MinLon) / (c.bounds.MaxLon - c.bounds.MinLon)
	fy := (p.Lat - c.bounds.MinLat) / (c.bounds.MaxLat - c.bounds.MinLat)
	col = int(fx * float64(c.W-1))
	row = c.H - 1 - int(fy*float64(c.H-1)) // north up
	return row, col, true
}

// Plot marks a single point with ch. Later layers overwrite earlier
// ones.
func (c *Canvas) Plot(p geo.Point, ch rune) {
	if row, col, ok := c.cell(p); ok {
		c.cells[row][col] = ch
	}
}

// PlotMajority marks each cell with the rune that the most points
// voted for — the right way to draw dense packet traces where a cell
// aggregates many outcomes (Fig 15's green/red dots).
func (c *Canvas) PlotMajority(pts []geo.Point, marks []rune) {
	if len(pts) != len(marks) {
		return
	}
	type key struct{ r, c int }
	votes := make(map[key]map[rune]int)
	for i, p := range pts {
		if row, col, ok := c.cell(p); ok {
			k := key{row, col}
			if votes[k] == nil {
				votes[k] = make(map[rune]int)
			}
			votes[k][marks[i]]++
		}
	}
	for k, v := range votes {
		best, bestN := ' ', 0
		for ch, n := range v {
			if n > bestN || (n == bestN && ch < best) {
				best, bestN = ch, n
			}
		}
		c.cells[k.r][k.c] = best
	}
}

// PlotAll marks every point with ch.
func (c *Canvas) PlotAll(pts []geo.Point, ch rune) {
	for _, p := range pts {
		c.Plot(p, ch)
	}
}

// FillPolygon marks every cell whose center lies inside pg, without
// overwriting non-space cells (so outlines and dots stay visible).
func (c *Canvas) FillPolygon(pg geo.Polygon, ch rune) {
	if len(pg.Vertices) < 3 {
		return
	}
	b := pg.Bounds()
	for row := 0; row < c.H; row++ {
		lat := c.bounds.MaxLat - (c.bounds.MaxLat-c.bounds.MinLat)*float64(row)/float64(c.H-1)
		if lat < b.MinLat || lat > b.MaxLat {
			continue
		}
		for col := 0; col < c.W; col++ {
			lon := c.bounds.MinLon + (c.bounds.MaxLon-c.bounds.MinLon)*float64(col)/float64(c.W-1)
			if lon < b.MinLon || lon > b.MaxLon {
				continue
			}
			if c.cells[row][col] == ' ' && pg.Contains(geo.Point{Lat: lat, Lon: lon}) {
				c.cells[row][col] = ch
			}
		}
	}
}

// Outline draws the polygon's edge cells.
func (c *Canvas) Outline(pg geo.Polygon, ch rune) {
	n := len(pg.Vertices)
	if n < 2 {
		return
	}
	for i := 0; i < n; i++ {
		a, b := pg.Vertices[i], pg.Vertices[(i+1)%n]
		steps := c.W + c.H
		for s := 0; s <= steps; s++ {
			f := float64(s) / float64(steps)
			c.Plot(geo.Point{
				Lat: a.Lat + (b.Lat-a.Lat)*f,
				Lon: a.Lon + (b.Lon-a.Lon)*f,
			}, ch)
		}
	}
}

// String renders the canvas with a border.
func (c *Canvas) String() string {
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", c.W) + "+\n")
	for _, row := range c.cells {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", c.W) + "+")
	return sb.String()
}

// Coverage density: count per cell, rendered as intensity ramp.
type Density struct {
	canvas *Canvas
	counts [][]int
	peak   int
}

// NewDensity builds a density layer over the same viewport.
func NewDensity(bounds geo.BoundingBox, w, h int) *Density {
	d := &Density{canvas: NewCanvas(bounds, w, h)}
	d.counts = make([][]int, d.canvas.H)
	for i := range d.counts {
		d.counts[i] = make([]int, d.canvas.W)
	}
	return d
}

// Add accumulates one point.
func (d *Density) Add(p geo.Point) {
	if row, col, ok := d.canvas.cell(p); ok {
		d.counts[row][col]++
		if d.counts[row][col] > d.peak {
			d.peak = d.counts[row][col]
		}
	}
}

// String renders with the intensity ramp " .:-=+*#%@".
func (d *Density) String() string {
	ramp := []rune(" .:-=+*#%@")
	for row := range d.counts {
		for col, n := range d.counts[row] {
			level := 0
			if d.peak > 0 && n > 0 {
				level = 1 + n*(len(ramp)-2)/d.peak
			}
			d.canvas.cells[row][col] = ramp[level]
		}
	}
	return d.canvas.String()
}
