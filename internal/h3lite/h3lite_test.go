package h3lite

import (
	"math"
	"testing"
	"testing/quick"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/stats"
)

func TestEdgeLengths(t *testing.T) {
	// Paper §4.1: res-12 hexes have an average edge length of 9.4 m.
	e12 := EdgeKm(12) * 1000
	if math.Abs(e12-9.4157) > 0.01 {
		t.Fatalf("res-12 edge = %v m, want ~9.4157", e12)
	}
	if EdgeKm(0) != res0EdgeKm {
		t.Fatal("res-0 edge wrong")
	}
	// Each resolution shrinks the edge by sqrt(7).
	for r := 1; r <= MaxRes; r++ {
		ratio := EdgeKm(r-1) / EdgeKm(r)
		if math.Abs(ratio-math.Sqrt(7)) > 1e-9 {
			t.Fatalf("edge ratio at res %d = %v", r, ratio)
		}
	}
}

func TestHexArea(t *testing.T) {
	// The paper quotes "average area of 3.1 m²" for res-12 cells, but
	// that is inconsistent with its own 9.4 m edge figure: a regular
	// hexagon with a 9.4 m edge has area 3√3/2·9.4² ≈ 230 m², and real
	// H3 documents res-12 average area as ~307 m². We test the
	// geometric truth for our lattice.
	a12 := HexAreaKm2(12) * 1e6 // m²
	want := 3 * math.Sqrt(3) / 2 * 9.4157 * 9.4157
	if math.Abs(a12-want)/want > 0.01 {
		t.Fatalf("res-12 area = %v m², want ~%v", a12, want)
	}
}

func TestRoundTripCenterStable(t *testing.T) {
	// Encoding a cell's center must return the same cell.
	r := stats.NewRNG(1)
	for i := 0; i < 2000; i++ {
		p := geo.Point{Lat: r.Float64()*140 - 70, Lon: r.Float64()*360 - 180}
		for _, res := range []int{5, 9, 12} {
			c := FromLatLon(p, res)
			c2 := FromLatLon(c.Center(), res)
			if c != c2 {
				t.Fatalf("center round trip failed at res %d for %v: %v vs %v", res, p, c, c2)
			}
		}
	}
}

func TestEncodingDistanceBound(t *testing.T) {
	// A point is never farther than one edge length from its cell's
	// center (projected distortion adds cos(lat) slack in longitude,
	// so allow a generous multiplier).
	r := stats.NewRNG(2)
	for i := 0; i < 2000; i++ {
		p := geo.Point{Lat: r.Float64()*120 - 60, Lon: r.Float64()*360 - 180}
		c := FromLatLon(p, 12)
		d := geo.HaversineKm(p, c.Center())
		if d > EdgeKm(12)*1.5 {
			t.Fatalf("point %v is %v km from cell center (edge %v km)", p, d, EdgeKm(12))
		}
	}
}

func TestCellValidity(t *testing.T) {
	c := FromLatLon(geo.Point{Lat: 32.7, Lon: -117.1}, 12)
	if !c.Valid() {
		t.Fatal("cell should be valid")
	}
	if InvalidCell.Valid() {
		t.Fatal("InvalidCell should be invalid")
	}
	if c.Res() != 12 {
		t.Fatalf("Res = %d", c.Res())
	}
}

func TestNeighborsAdjacent(t *testing.T) {
	c := FromLatLon(geo.Point{Lat: 40, Lon: -100}, 9)
	for i, n := range c.Neighbors() {
		if GridDistance(c, n) != 1 {
			t.Fatalf("neighbor %d at grid distance %d", i, GridDistance(c, n))
		}
		// Physical adjacency: neighbor centers are ~edge*sqrt(3) apart
		// in projected space.
		d := geo.HaversineKm(c.Center(), n.Center())
		want := EdgeKm(9) * math.Sqrt(3)
		if d > want*1.3 || d < want*0.5 {
			t.Fatalf("neighbor %d center distance = %v km, want ~%v", i, d, want)
		}
	}
}

func TestNeighborsDistinct(t *testing.T) {
	c := FromLatLon(geo.Point{Lat: 40, Lon: -100}, 9)
	seen := map[Cell]bool{c: true}
	for _, n := range c.Neighbors() {
		if seen[n] {
			t.Fatal("duplicate neighbor")
		}
		seen[n] = true
	}
}

func TestRingSizes(t *testing.T) {
	c := FromLatLon(geo.Point{Lat: 33, Lon: -117}, 8)
	for k := 0; k <= 5; k++ {
		ring := c.Ring(k)
		want := 6 * k
		if k == 0 {
			want = 1
		}
		if len(ring) != want {
			t.Fatalf("Ring(%d) has %d cells, want %d", k, len(ring), want)
		}
		for _, rc := range ring {
			if GridDistance(c, rc) != k {
				t.Fatalf("Ring(%d) cell at distance %d", k, GridDistance(c, rc))
			}
		}
	}
}

func TestDiskSize(t *testing.T) {
	c := FromLatLon(geo.Point{Lat: 33, Lon: -117}, 8)
	for k := 0; k <= 4; k++ {
		disk := c.Disk(k)
		want := 1 + 3*k*(k+1)
		if len(disk) != want {
			t.Fatalf("Disk(%d) has %d cells, want %d", k, len(disk), want)
		}
	}
}

func TestGridDistanceProperties(t *testing.T) {
	r := stats.NewRNG(3)
	err := quick.Check(func(seed uint32) bool {
		rr := stats.NewRNG(uint64(seed))
		a := geo.Point{Lat: rr.Float64()*100 - 50, Lon: rr.Float64()*300 - 150}
		b := geo.Point{Lat: a.Lat + rr.Normal(0, 0.1), Lon: a.Lon + rr.Normal(0, 0.1)}
		ca, cb := FromLatLon(a, 9), FromLatLon(b, 9)
		d := GridDistance(ca, cb)
		if d < 0 {
			return false
		}
		if d != GridDistance(cb, ca) { // symmetry
			return false
		}
		if (d == 0) != (ca == cb) { // identity
			return false
		}
		_ = r
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGridDistanceDifferentRes(t *testing.T) {
	a := FromLatLon(geo.Point{Lat: 10, Lon: 10}, 8)
	b := FromLatLon(geo.Point{Lat: 10, Lon: 10}, 9)
	if GridDistance(a, b) != -1 {
		t.Fatal("cross-resolution distance should be -1")
	}
}

func TestParentContainsChildCenter(t *testing.T) {
	r := stats.NewRNG(4)
	for i := 0; i < 500; i++ {
		p := geo.Point{Lat: r.Float64()*120 - 60, Lon: r.Float64()*340 - 170}
		child := FromLatLon(p, 12)
		parent := child.Parent(8)
		if parent.Res() != 8 {
			t.Fatalf("parent res = %d", parent.Res())
		}
		// The child's center must map back into the parent.
		if FromLatLon(child.Center(), 8) != parent {
			t.Fatalf("parent does not contain child center for %v", p)
		}
	}
}

func TestParentSameRes(t *testing.T) {
	c := FromLatLon(geo.Point{Lat: 5, Lon: 5}, 9)
	if c.Parent(9) != c {
		t.Fatal("Parent at same res should be identity")
	}
}

func TestBoundaryVertices(t *testing.T) {
	c := FromLatLon(geo.Point{Lat: 33, Lon: -117}, 10)
	b := c.Boundary()
	if len(b) != 6 {
		t.Fatalf("boundary has %d vertices", len(b))
	}
	center := c.Center()
	for _, v := range b {
		d := geo.HaversineKm(center, v)
		if d > EdgeKm(10)*1.2 || d < EdgeKm(10)*0.5 {
			t.Fatalf("vertex distance = %v km (edge %v)", d, EdgeKm(10))
		}
	}
}

func TestPentagonDistortionIsRare(t *testing.T) {
	r := stats.NewRNG(5)
	distorted := 0
	n := 5000
	for i := 0; i < n; i++ {
		p := geo.Point{Lat: r.Float64()*140 - 70, Lon: r.Float64()*360 - 180}
		if FromLatLon(p, 12).PentagonDistorted() {
			distorted++
		}
	}
	if distorted > n/100 {
		t.Fatalf("pentagon distortion too common: %d/%d", distorted, n)
	}
	// But cells at an anchor are distorted.
	anchor := FromLatLon(geo.Point{Lat: 26.57, Lon: 72}, 12)
	if !anchor.PentagonDistorted() {
		t.Fatal("cell at icosahedron anchor should be distorted")
	}
}

func TestResolutionPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { EdgeKm(-1) },
		func() { EdgeKm(16) },
		func() { FromLatLon(geo.Point{}, 20) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNearbyPointsSameCell(t *testing.T) {
	// Points within a meter of each other land in the same res-9 cell
	// essentially always (res-9 edge ~174 m).
	p := geo.Point{Lat: 32.71570, Lon: -117.16110}
	q := geo.Point{Lat: 32.71571, Lon: -117.16111}
	if FromLatLon(p, 9) != FromLatLon(q, 9) {
		t.Fatal("1 m apart points landed in different res-9 cells")
	}
}

func TestDistantPointsDifferentCells(t *testing.T) {
	p := geo.Point{Lat: 32.7157, Lon: -117.1611}
	q := geo.Point{Lat: 32.7257, Lon: -117.1611} // ~1.1 km north
	if FromLatLon(p, 12) == FromLatLon(q, 12) {
		t.Fatal("1 km apart points landed in same res-12 cell")
	}
}
