// Package h3lite implements a hierarchical hexagonal geospatial index
// modeled on Uber's H3, which Helium uses to record hotspot locations
// on chain (asserted at resolution 12, whose hexagons average a 9.4 m
// edge — paper §4.1).
//
// Like H3, h3lite assigns every (lat, lon) at every resolution 0–15 a
// 64-bit cell ID, supports cell→centroid decoding, neighbor and ring
// traversal, grid distance, and approximate parent lookup. Unlike real
// H3 it lays pointy-top hexagons on a global equirectangular lattice
// rather than projecting an icosahedron gnomonically. The consequence
// is the same one the paper notes for H3 itself (footnote 7): cell
// area varies with position — here with cos(latitude) — which is
// irrelevant to analyses conducted at distances of hundreds of meters
// or more. Edge lengths follow H3's √7 subdivision so that resolution
// 12 cells have the paper's quoted ~9.4 m average edge.
package h3lite

import (
	"fmt"
	"math"

	"peoplesnet/internal/geo"
)

// MaxRes is the finest supported resolution.
const MaxRes = 15

// res0EdgeKm matches H3's resolution-0 average hex edge length.
const res0EdgeKm = 1107.712591

// kmPerDeg is the length of one degree of latitude (and of longitude
// at the equator) on the spherical Earth.
const kmPerDeg = 2 * math.Pi * geo.EarthRadiusKm / 360

// EdgeKm returns the hexagon edge length at the given resolution.
// Each resolution shrinks the edge by √7, as in H3.
func EdgeKm(res int) float64 {
	checkRes(res)
	return res0EdgeKm / math.Pow(math.Sqrt(7), float64(res))
}

// HexAreaKm2 returns the (projected) area of a hexagon at the given
// resolution: 3√3/2 · edge².
func HexAreaKm2(res int) float64 {
	e := EdgeKm(res)
	return 3 * math.Sqrt(3) / 2 * e * e
}

func checkRes(res int) {
	if res < 0 || res > MaxRes {
		panic(fmt.Sprintf("h3lite: resolution %d outside [0,%d]", res, MaxRes))
	}
}

// Cell is a packed 64-bit hex cell identifier:
//
//	bit  63      : always 1 (distinguishes a Cell from the zero value)
//	bits 60–56   : resolution (0–15)
//	bits 55–28   : axial q coordinate, offset by 2^27
//	bits 27–0    : axial r coordinate, offset by 2^27
type Cell uint64

const (
	cellFlag    = uint64(1) << 63
	coordOffset = int64(1) << 27
	coordMask   = (uint64(1) << 28) - 1
)

// InvalidCell is the zero Cell; no valid cell equals it.
const InvalidCell Cell = 0

// Valid reports whether c is a well-formed cell ID.
func (c Cell) Valid() bool {
	if uint64(c)&cellFlag == 0 {
		return false
	}
	return c.Res() <= MaxRes
}

// Res returns the cell's resolution.
func (c Cell) Res() int { return int((uint64(c) >> 56) & 0x1f) }

func (c Cell) axial() (q, r int64) {
	q = int64((uint64(c)>>28)&coordMask) - coordOffset
	r = int64(uint64(c)&coordMask) - coordOffset
	return
}

func makeCell(res int, q, r int64) Cell {
	return Cell(cellFlag |
		uint64(res)<<56 |
		(uint64(q+coordOffset)&coordMask)<<28 |
		uint64(r+coordOffset)&coordMask)
}

// String renders the cell in an H3-flavored hex form.
func (c Cell) String() string { return fmt.Sprintf("%015x", uint64(c)) }

// FromLatLon returns the cell containing p at the given resolution.
func FromLatLon(p geo.Point, res int) Cell {
	checkRes(res)
	size := EdgeKm(res)
	x := p.Lon * kmPerDeg
	y := p.Lat * kmPerDeg
	// Pointy-top axial coordinates.
	qf := (math.Sqrt(3)/3*x - 1.0/3*y) / size
	rf := (2.0 / 3 * y) / size
	q, r := hexRound(qf, rf)
	return makeCell(res, q, r)
}

// hexRound snaps fractional axial coordinates to the nearest hex using
// cube-coordinate rounding.
func hexRound(qf, rf float64) (int64, int64) {
	sf := -qf - rf
	q := math.Round(qf)
	r := math.Round(rf)
	s := math.Round(sf)
	dq := math.Abs(q - qf)
	dr := math.Abs(r - rf)
	ds := math.Abs(s - sf)
	switch {
	case dq > dr && dq > ds:
		q = -r - s
	case dr > ds:
		r = -q - s
	}
	return int64(q), int64(r)
}

// Center returns the centroid of the cell.
func (c Cell) Center() geo.Point {
	size := EdgeKm(c.Res())
	q, r := c.axial()
	x := size * math.Sqrt(3) * (float64(q) + float64(r)/2)
	y := size * 1.5 * float64(r)
	return geo.Point{Lat: y / kmPerDeg, Lon: x / kmPerDeg}
}

// Boundary returns the six vertices of the cell in order.
func (c Cell) Boundary() []geo.Point {
	size := EdgeKm(c.Res())
	center := c.Center()
	cx := center.Lon * kmPerDeg
	cy := center.Lat * kmPerDeg
	verts := make([]geo.Point, 6)
	for i := 0; i < 6; i++ {
		angle := math.Pi/180*60*float64(i) + math.Pi/6 // pointy-top
		x := cx + size*math.Cos(angle)
		y := cy + size*math.Sin(angle)
		verts[i] = geo.Point{Lat: y / kmPerDeg, Lon: x / kmPerDeg}
	}
	return verts
}

// axialDirections are the six hex neighbor offsets.
var axialDirections = [6][2]int64{
	{1, 0}, {1, -1}, {0, -1}, {-1, 0}, {-1, 1}, {0, 1},
}

// Neighbors returns the six adjacent cells at the same resolution.
func (c Cell) Neighbors() [6]Cell {
	q, r := c.axial()
	res := c.Res()
	var out [6]Cell
	for i, d := range axialDirections {
		out[i] = makeCell(res, q+d[0], r+d[1])
	}
	return out
}

// Ring returns the cells exactly k steps from c (the "hollow ring").
// Ring(0) is just c.
func (c Cell) Ring(k int) []Cell {
	if k < 0 {
		panic("h3lite: negative ring radius")
	}
	if k == 0 {
		return []Cell{c}
	}
	res := c.Res()
	q, r := c.axial()
	// Walk to the ring start: k steps in direction 4.
	q += axialDirections[4][0] * int64(k)
	r += axialDirections[4][1] * int64(k)
	out := make([]Cell, 0, 6*k)
	for side := 0; side < 6; side++ {
		for step := 0; step < k; step++ {
			out = append(out, makeCell(res, q, r))
			q += axialDirections[side][0]
			r += axialDirections[side][1]
		}
	}
	return out
}

// Disk returns all cells within k steps of c (the "filled disk"),
// 1 + 3k(k+1) cells in total.
func (c Cell) Disk(k int) []Cell {
	out := make([]Cell, 0, 1+3*k*(k+1))
	for i := 0; i <= k; i++ {
		out = append(out, c.Ring(i)...)
	}
	return out
}

// GridDistance returns the number of hex steps between two cells of
// the same resolution. It returns -1 if resolutions differ.
func GridDistance(a, b Cell) int {
	if a.Res() != b.Res() {
		return -1
	}
	aq, ar := a.axial()
	bq, br := b.axial()
	dq := aq - bq
	dr := ar - br
	ds := (-aq - ar) - (-bq - br)
	return int((abs64(dq) + abs64(dr) + abs64(ds)) / 2)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Parent returns the cell at the coarser resolution parentRes that
// contains c's centroid. Because h3lite lattices are independent per
// resolution (unlike H3's aligned 7:1 subdivision) this is an
// approximate containment: the parent always contains the child's
// center, which is the property chain analyses rely on.
func (c Cell) Parent(parentRes int) Cell {
	checkRes(parentRes)
	if parentRes > c.Res() {
		panic("h3lite: parent resolution finer than cell")
	}
	if parentRes == c.Res() {
		return c
	}
	return FromLatLon(c.Center(), parentRes)
}

// pentagonAnchors approximate the 12 icosahedron vertices where real
// H3 places its pentagonal cells. Cells near these anchors are flagged
// as "pentagonally distorted", reproducing the rare witness-validity
// artifact in the paper's PoC validity list (§8.2.1).
var pentagonAnchors = []geo.Point{
	{Lat: 90, Lon: 0},
	{Lat: 26.57, Lon: 0}, {Lat: 26.57, Lon: 72}, {Lat: 26.57, Lon: 144},
	{Lat: 26.57, Lon: -144}, {Lat: 26.57, Lon: -72},
	{Lat: -26.57, Lon: 36}, {Lat: -26.57, Lon: 108}, {Lat: -26.57, Lon: 180},
	{Lat: -26.57, Lon: -108}, {Lat: -26.57, Lon: -36},
	{Lat: -90, Lon: 0},
}

// PentagonDistorted reports whether the cell lies close enough to one
// of the twelve icosahedron anchor points that H3 distance math would
// be distorted there. The affected zone is two ring-radii around the
// anchor, making the condition rare, as in the real network.
func (c Cell) PentagonDistorted() bool {
	center := c.Center()
	limit := EdgeKm(c.Res()) * 4
	for _, a := range pentagonAnchors {
		if geo.HaversineKm(center, a) <= limit {
			return true
		}
	}
	return false
}
