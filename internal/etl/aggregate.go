package etl

import (
	"peoplesnet/internal/chain"
)

// ClosePoint is one state-channel close: the block it landed in and
// the packets it settled (the Fig 8 series).
type ClosePoint struct {
	Height  int64
	Packets int64
}

// Aggregates are the incrementally-materialized rollups for the hot
// analyses. A snapshot is safe to read and mutate; the store keeps its
// own live copy.
type Aggregates struct {
	// Mix counts transactions by type (§3).
	Mix map[chain.TxnType]int64
	// AddsPerDay buckets add_gateway txns by day index (Fig 5).
	AddsPerDay map[int64]int64
	// AssertsPerGateway counts location assertions per hotspot; moves
	// per hotspot (Fig 2) is asserts−1.
	AssertsPerGateway map[string]int64
	// TransfersPerGateway counts resales per hotspot (Fig 7a).
	TransfersPerGateway map[string]int64
	Transfers           int64
	// ZeroHNTTransfers counts transfers with no on-chain payment
	// (§4.3.3's 95.8%).
	ZeroHNTTransfers int64
	// Closes is the per-close packet series (Fig 8); TotalPackets sums
	// it.
	Closes       []ClosePoint
	TotalPackets int64
}

// aggregates is the store-internal live state plus counters that feed
// Stats.
type aggregates struct {
	Aggregates
	txnCount int64
}

func newAggregates() *aggregates {
	return &aggregates{Aggregates: Aggregates{
		Mix:                 make(map[chain.TxnType]int64),
		AddsPerDay:          make(map[int64]int64),
		AssertsPerGateway:   make(map[string]int64),
		TransfersPerGateway: make(map[string]int64),
	}}
}

// observe folds one transaction into the rollups. Called under the
// store's write lock during ingest — O(1) per txn, which is what makes
// re-analysis after N new blocks O(N) instead of O(chain).
func (a *aggregates) observe(height int64, t chain.Txn) {
	a.txnCount++
	a.Mix[t.TxnType()]++
	switch v := t.(type) {
	case *chain.AddGateway:
		a.AddsPerDay[height/chain.BlocksPerDay]++
	case *chain.AssertLocation:
		a.AssertsPerGateway[v.Gateway]++
	case *chain.TransferHotspot:
		a.Transfers++
		a.TransfersPerGateway[v.Gateway]++
		if v.AmountBones == 0 {
			a.ZeroHNTTransfers++
		}
	case *chain.StateChannelClose:
		pkts := v.TotalPackets()
		a.Closes = append(a.Closes, ClosePoint{Height: height, Packets: pkts})
		a.TotalPackets += pkts
	default:
		// Every other txn type reaches the rollups only through the
		// Mix counter above; per-type columns are added here when a
		// study needs them.
	}
}

// AddsPerDay returns a copy of just the Fig 5 rollup — O(days),
// without the per-hotspot maps the full Aggregates copy carries.
func (s *Store) AddsPerDay() map[int64]int64 {
	s.ensureAgg()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[int64]int64, len(s.agg.AddsPerDay))
	for k, v := range s.agg.AddsPerDay {
		out[k] = v
	}
	return out
}

// Aggregates returns a deep copy of the materialized rollups.
func (s *Store) Aggregates() Aggregates {
	s.ensureAgg()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := Aggregates{
		Mix:                 make(map[chain.TxnType]int64, len(s.agg.Mix)),
		AddsPerDay:          make(map[int64]int64, len(s.agg.AddsPerDay)),
		AssertsPerGateway:   make(map[string]int64, len(s.agg.AssertsPerGateway)),
		TransfersPerGateway: make(map[string]int64, len(s.agg.TransfersPerGateway)),
		Transfers:           s.agg.Transfers,
		ZeroHNTTransfers:    s.agg.ZeroHNTTransfers,
		Closes:              append([]ClosePoint(nil), s.agg.Closes...),
		TotalPackets:        s.agg.TotalPackets,
	}
	for k, v := range s.agg.Mix {
		out.Mix[k] = v
	}
	for k, v := range s.agg.AddsPerDay {
		out.AddsPerDay[k] = v
	}
	for k, v := range s.agg.AssertsPerGateway {
		out.AssertsPerGateway[k] = v
	}
	for k, v := range s.agg.TransfersPerGateway {
		out.TransfersPerGateway[k] = v
	}
	return out
}
