package etl

import (
	"sync"
	"sync/atomic"
	"time"

	"peoplesnet/internal/stats"
)

// Backoff computes capped, jittered exponential retry delays. The bare
// exponential the follower used to run — 1ms, 2ms, 4ms, ... — makes
// every retrier that failed together retry together; the jitter here
// (uniform over the upper half of the window, the classic "equal
// jitter" scheme) decorrelates them while keeping the first delay
// non-degenerate. The zero value is not usable; build one with
// NewBackoff.
type Backoff struct {
	base, max time.Duration

	mu  sync.Mutex
	rng *stats.RNG // guarded by mu
}

// backoffSeq seeds each Backoff differently so concurrent retriers
// (per-shard followers, supervisor restart loops) draw distinct jitter
// without any shared global RNG state.
var backoffSeq atomic.Uint64

// NewBackoff returns a backoff with the given base (first delay) and
// cap. Non-positive arguments fall back to 1ms / 200ms, the follower
// defaults.
func NewBackoff(base, max time.Duration) *Backoff {
	if base <= 0 {
		base = followerBaseDelay
	}
	if max <= 0 {
		max = followerMaxDelay
	}
	return &Backoff{base: base, max: max, rng: stats.NewRNG(0x626b6f66 ^ backoffSeq.Add(1))}
}

// Delay returns the jittered delay for the given 0-based attempt:
// uniform in [w/2, w] where w = min(base<<attempt, max).
func (b *Backoff) Delay(attempt int) time.Duration {
	w := b.base
	for i := 0; i < attempt && w < b.max; i++ {
		w <<= 1
	}
	if w > b.max {
		w = b.max
	}
	half := w / 2
	b.mu.Lock()
	j := time.Duration(b.rng.Int63n(int64(half) + 1))
	b.mu.Unlock()
	return half + j
}
