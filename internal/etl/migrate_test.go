package etl

// v1 → v2 on-disk migration and ledger-checkpoint lifecycle tests.
// These live in the internal package because they forge version-1
// sidecars byte for byte (absolute-uvarint postings, the pre-v2
// format) and inspect segment internals.

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/wire"
)

// writeLegacyPostings re-expands a compressed list into the v1 wire
// form: uvarint count, then absolute uvarint(blk), uvarint(txn) and —
// on typed lists — the type byte, per posting.
func writeLegacyPostings(w *wire.Writer, ps *postings, fixed chain.TxnType) {
	if ps == nil {
		w.Uvarint(0)
		return
	}
	w.Uvarint(uint64(ps.n))
	it := ps.iter(fixed)
	for {
		p, ok := it.next()
		if !ok {
			return
		}
		w.Uvarint(uint64(p.blk))
		w.Uvarint(uint64(p.txn))
		if ps.typed {
			w.U8(uint8(p.tt))
		}
	}
}

// encodeIdxFileV1 serializes a loaded segment's sidecar in the exact
// v1 format: same layout as v2 except the version byte and the
// absolute (uncompressed) posting encoding.
func encodeIdxFileV1(g *segment, c *segAgg, indexRewards bool) []byte {
	var w wire.Writer
	w.U8(idxLegacyCodecVersion)
	w.Bool(indexRewards)
	w.Varint(g.from)
	w.Varint(g.to)
	w.Varint(g.txns)
	w.Varint(g.fromTime.UnixNano())
	w.Varint(g.toTime.UnixNano())

	mixKeys := make([]int, 0, len(g.mix))
	for tt := range g.mix {
		mixKeys = append(mixKeys, int(tt))
	}
	sort.Ints(mixKeys)
	w.Uvarint(uint64(len(mixKeys)))
	for _, tt := range mixKeys {
		w.U8(uint8(tt))
		w.Varint(g.mix[chain.TxnType(tt)])
	}

	typeKeys := make([]int, 0, len(g.byType))
	for tt := range g.byType {
		typeKeys = append(typeKeys, int(tt))
	}
	sort.Ints(typeKeys)
	w.Uvarint(uint64(len(typeKeys)))
	for _, tt := range typeKeys {
		w.U8(uint8(tt))
		writeLegacyPostings(&w, g.byType[chain.TxnType(tt)], chain.TxnType(tt))
	}

	actors := make([]string, 0, len(g.byActor))
	for a := range g.byActor {
		actors = append(actors, a)
	}
	sort.Strings(actors)
	w.Uvarint(uint64(len(actors)))
	for _, a := range actors {
		w.Str(a)
		writeLegacyPostings(&w, g.byActor[a], 0)
	}

	writeLegacyPostings(&w, g.shared, 0)

	days := make([]int64, 0, len(c.addsPerDay))
	for d := range c.addsPerDay {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	w.Uvarint(uint64(len(days)))
	for _, d := range days {
		w.Varint(d)
		w.Varint(c.addsPerDay[d])
	}
	writeStrCounts(&w, c.assertsPerGateway)
	writeStrCounts(&w, c.transfersPerGateway)
	w.Varint(c.transfers)
	w.Varint(c.zeroHNT)
	w.Uvarint(uint64(len(c.closes)))
	for _, cp := range c.closes {
		w.Varint(cp.Height)
		w.Varint(cp.Packets)
	}
	w.Varint(c.totalPackets)

	return appendFrame([]byte(idxMagic), w.Buf)
}

// scanAll maps height → ordered txn hashes through the public scan.
func scanAll(s *Store) map[int64][]string {
	out := make(map[int64][]string)
	s.Scan(All(), Filter{}, func(h int64, t chain.Txn) bool {
		out[h] = append(out[h], chain.Hash(t))
		return true
	})
	return out
}

// buildDiskStore ingests a worldChain into a fresh on-disk store and
// returns the open store and its directory.
func buildDiskStore(t *testing.T, nBlocks int) (*Store, *chain.Chain, string) {
	t.Helper()
	c := worldChain(t, nBlocks)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(dir, Config{SegmentBlocks: 8})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.BulkLoad(c); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	return s, c, dir
}

// downgradeSidecars rewrites every sealed segment's sidecar in the v1
// format, simulating a store written by the previous engine.
func downgradeSidecars(t *testing.T, s *Store, dir string) int {
	t.Helper()
	s.Preload()
	s.mu.RLock()
	sealed := s.sealed
	s.mu.RUnlock()
	n := 0
	for _, g := range sealed {
		if g.broken() || !g.loaded() {
			t.Fatalf("segment [%d,%d] not cleanly loaded before downgrade", g.from, g.to)
		}
		// In-memory sealed segments fold aggregates at append time and
		// never carry a segAgg; recompute it the way durSealLocked does.
		agg := g.agg
		if agg == nil {
			agg = computeSegAgg(g.blocks)
		}
		path := join(dir, idxFileName(segFileName(g.from, g.to)))
		if err := writeFileAtomic(OSFS{}, path, encodeIdxFileV1(g, agg, s.cfg.IndexRewardEntries)); err != nil {
			t.Fatalf("downgrade sidecar [%d,%d]: %v", g.from, g.to, err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no sealed segments to downgrade")
	}
	return n
}

// TestV1SidecarMigration: a store whose sidecars are all version 1
// opens cleanly, answers bit-identically to the in-memory reference,
// upgrades every sidecar in place, and the next open reads pure v2.
func TestV1SidecarMigration(t *testing.T) {
	s, c, dir := buildDiskStore(t, 60)
	want := scanAll(s)
	wantAgg := s.Aggregates()
	nSeg := downgradeSidecars(t, s, dir)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Config{SegmentBlocks: 8})
	if err != nil {
		t.Fatalf("reopen over v1 sidecars: %v", err)
	}
	if got := scanAll(s2); !reflect.DeepEqual(got, want) {
		t.Fatalf("v1-sidecar store content differs: %d vs %d heights", len(got), len(want))
	}
	if gotAgg := s2.Aggregates(); !reflect.DeepEqual(gotAgg, wantAgg) {
		t.Fatalf("v1-sidecar aggregates differ:\n got %+v\nwant %+v", gotAgg, wantAgg)
	}
	ref := FromChain(c)
	if gotAgg, refAgg := s2.Aggregates(), ref.Aggregates(); !reflect.DeepEqual(gotAgg, refAgg) {
		t.Fatalf("migrated aggregates differ from fresh re-index:\n got %+v\nwant %+v", gotAgg, refAgg)
	}
	h := s2.Health()
	if h.SidecarsUpgraded != nSeg {
		t.Fatalf("SidecarsUpgraded = %d, want %d", h.SidecarsUpgraded, nSeg)
	}
	if h.SidecarsRebuilt != 0 || h.Quarantined != 0 || len(h.Gaps) != 0 {
		t.Fatalf("migration reported damage: %+v", h)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close after migration: %v", err)
	}

	// The upgrade republished v2 sidecars: a third open decodes them
	// directly, with nothing left to upgrade.
	s3, err := Open(dir, Config{SegmentBlocks: 8})
	if err != nil {
		t.Fatalf("reopen after upgrade: %v", err)
	}
	defer s3.Close()
	s3.Preload()
	if h := s3.Health(); h.SidecarsUpgraded != 0 || h.SidecarsRebuilt != 0 {
		t.Fatalf("post-upgrade open still rebuilding sidecars: %+v", h)
	}
	if got := scanAll(s3); !reflect.DeepEqual(got, want) {
		t.Fatal("post-upgrade store content differs")
	}
}

// TestCheckpointReplayBitIdentical: a replay resumed from a checkpoint
// produces a ledger whose snapshot is byte-identical to a full replay,
// without loading the checkpoint-covered segments.
func TestCheckpointReplayBitIdentical(t *testing.T) {
	s, _, dir := buildDiskStore(t, 60)
	full, err := s.ReplayLedger()
	if err != nil {
		t.Fatalf("initial replay: %v", err)
	}
	want := full.Snapshot()
	h := s.Health()
	if h.CheckpointHeight < 0 {
		t.Fatalf("healthy replay left no checkpoint: %+v", h)
	}
	if !strings.Contains(h.CheckpointNote, "checkpoint advanced") {
		t.Fatalf("checkpoint note %q, want an advance", h.CheckpointNote)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Config{SegmentBlocks: 8})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	l2, err := s2.ReplayLedger()
	if err != nil {
		t.Fatalf("checkpointed replay: %v", err)
	}
	if !bytes.Equal(l2.Snapshot(), want) {
		t.Fatal("checkpointed replay diverged from full replay (snapshot bytes differ)")
	}
	h2 := s2.Health()
	if !strings.Contains(h2.CheckpointNote, "replayed from checkpoint") {
		t.Fatalf("checkpoint note %q, want a checkpointed replay", h2.CheckpointNote)
	}
	if h2.CheckpointHeight != h.CheckpointHeight {
		t.Fatalf("checkpoint height moved: %d vs %d", h2.CheckpointHeight, h.CheckpointHeight)
	}
	// The O(tail) property: every sealed segment was covered by the
	// checkpoint, so none was materialized.
	if h2.SegmentsLoaded != 0 {
		t.Fatalf("checkpointed replay loaded %d segments, want 0", h2.SegmentsLoaded)
	}
}

// TestTornCheckpointFallsBack: torn, corrupt, and garbage checkpoint
// files all degrade to a full replay with identical results, and the
// healthy replay then repairs the checkpoint in place.
func TestTornCheckpointFallsBack(t *testing.T) {
	s, _, dir := buildDiskStore(t, 60)
	full, err := s.ReplayLedger()
	if err != nil {
		t.Fatalf("initial replay: %v", err)
	}
	want := full.Snapshot()
	wantHeight := s.Health().CheckpointHeight
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	ckpt := join(dir, ckptFileName)
	good, err := OSFS{}.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}

	damage := map[string]func() []byte{
		"torn": func() []byte { return good[:len(good)/2] },
		"bitflip": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)/2] ^= 0x40
			return b
		},
		"garbage": func() []byte { return []byte("not a checkpoint at all") },
		"empty":   func() []byte { return nil },
	}
	for name, mutate := range damage {
		t.Run(name, func(t *testing.T) {
			if err := writeFileAtomic(OSFS{}, ckpt, mutate()); err != nil {
				t.Fatalf("plant damage: %v", err)
			}
			s2, err := Open(dir, Config{SegmentBlocks: 8})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			l2, err := s2.ReplayLedger()
			if err != nil {
				t.Fatalf("replay over %s checkpoint: %v", name, err)
			}
			if !bytes.Equal(l2.Snapshot(), want) {
				t.Fatalf("%s checkpoint changed the replayed ledger", name)
			}
			h := s2.Health()
			if !strings.Contains(h.CheckpointNote, "full replay") {
				t.Fatalf("note %q, want a full-replay fallback", h.CheckpointNote)
			}
			// The healthy full replay rewrote a good checkpoint…
			if h.CheckpointHeight != wantHeight {
				t.Fatalf("checkpoint not repaired: height %d, want %d", h.CheckpointHeight, wantHeight)
			}
			// …that the next open trusts again.
			if hgt, snap, err := decodeCheckpoint(mustRead(t, ckpt)); err != nil || hgt != wantHeight {
				t.Fatalf("repaired checkpoint undecodable: height %d err %v", hgt, err)
			} else if lck, err := chain.LedgerFromSnapshot(snap); err != nil || !bytes.Equal(lck.Snapshot(), want) {
				t.Fatalf("repaired checkpoint snapshot diverges (err %v)", err)
			}
		})
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := OSFS{}.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

// TestLazyColdStart: a reopened store materializes nothing up front; a
// height-scoped scan touches only the overlapping segments, and
// Preload finishes the job.
func TestLazyColdStart(t *testing.T) {
	s, _, dir := buildDiskStore(t, 80)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Config{SegmentBlocks: 8})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	h := s2.Health()
	if h.SegmentsLoaded != 0 {
		t.Fatalf("cold open loaded %d segments, want 0", h.SegmentsLoaded)
	}
	if h.Segments == 0 {
		t.Fatal("cold open sees no segments")
	}

	// One segment's worth of heights: only that stub should load.
	tip := s2.Height()
	n := int64(0)
	s2.Scan(Range{From: tip - 3, To: tip}, Filter{}, func(int64, chain.Txn) bool {
		n++
		return true
	})
	if n == 0 {
		t.Fatal("scoped scan matched nothing")
	}
	mid := s2.Health()
	if mid.SegmentsLoaded == 0 {
		t.Fatal("scoped scan loaded no segments")
	}
	if mid.SegmentsLoaded >= mid.Segments {
		t.Fatalf("scoped scan loaded all %d segments; lazy access is not lazy", mid.Segments)
	}

	s2.Preload()
	if h := s2.Health(); h.SegmentsLoaded != h.Segments {
		t.Fatalf("Preload left %d of %d segments unloaded", h.Segments-h.SegmentsLoaded, h.Segments)
	}
}
