package etl

// Compressed posting lists. v1 stored postings as []pos — 12 bytes per
// entry in memory and two absolute uvarints on disk. At paper scale
// the byActor lists dominate store overhead (ROADMAP "Storage engine
// v2"), so v2 keeps every list delta+varint-encoded end to end: one
// byte buffer per list, identical in memory and in the sidecar, with
// scans decoding lazily through an iterator.
//
// Encoding, per posting (sorted by (blk, txn), no duplicates):
//
//	uvarint(blk - prevBlk)
//	uvarint(txn - prevTxn)  if the block delta is 0 (same block)
//	uvarint(txn)            otherwise (txn index restarts per block)
//	u8(type)                only on "typed" lists (byActor, shared);
//	                        byType lists fix the type by their map key
//
// The encoder starts from (0, 0), so the common first posting (0, 0)
// costs two bytes. Sorted input makes every delta non-negative; dense
// lists (types that appear in every block) approach ~2 bytes/posting
// against 12 for []pos.
//
// Trust boundary: postings built by buildSegment are correct by
// construction; postings decoded from a sidecar pass validate() once
// at load, so iteration never re-checks bounds.

import (
	"encoding/binary"
	"fmt"

	"peoplesnet/internal/chain"
)

// postings is one compressed posting list. typed lists carry a
// per-posting transaction type byte; untyped lists (byType) get their
// type from the map key at iteration.
type postings struct {
	n     int
	typed bool
	buf   []byte

	lastBlk, lastTxn int32 // encoder state
}

// add appends a posting. Positions must arrive sorted by (blk, txn)
// with no duplicates — buildSegment's iteration order.
func (p *postings) add(blk, txn int32, tt chain.TxnType) {
	dblk := uint64(blk - p.lastBlk)
	p.buf = binary.AppendUvarint(p.buf, dblk)
	if dblk == 0 {
		p.buf = binary.AppendUvarint(p.buf, uint64(txn-p.lastTxn))
	} else {
		p.buf = binary.AppendUvarint(p.buf, uint64(txn))
	}
	if p.typed {
		p.buf = append(p.buf, byte(tt))
	}
	p.lastBlk, p.lastTxn = blk, txn
	p.n++
}

// iter returns an iterator positioned before the first posting. For
// untyped lists, fixed supplies the type every posting reports.
func (p *postings) iter(fixed chain.TxnType) postIter {
	return postIter{buf: p.buf, typed: p.typed, tt: fixed}
}

// bytes returns the encoded size of the list.
func (p *postings) bytes() int { return len(p.buf) }

// postIter decodes a postings buffer incrementally. The zero value is
// an exhausted iterator.
type postIter struct {
	buf      []byte
	off      int
	blk, txn int32
	typed    bool
	tt       chain.TxnType // fixed type, or last decoded type byte
}

// next decodes the next posting. ok is false at the end of the list.
// Buffers reaching next have been validated at build or load time, so
// malformed tails terminate the iteration rather than panic.
func (it *postIter) next() (pos, bool) { return it.nextMatch(0) }

// nextMatch decodes postings until one whose type bit is set in mask,
// or the end of the list. mask 0 means no type filter (every posting
// returned). This loop is the per-posting cost of every indexed scan:
// deltas are almost always single-byte varints (adjacent blocks,
// adjacent txns), so the hot path reads one byte and falls back to the
// full decoder only on a continuation bit, and skipped postings never
// leave the loop — for a type-filtered scan over a busy actor that is
// the difference between a function call per posting and one per
// match.
func (it *postIter) nextMatch(mask uint64) (pos, bool) {
	buf, off := it.buf, it.off
	blk, txn, tt := it.blk, it.txn, it.tt
	for off < len(buf) {
		var dblk, dtxn uint64
		if c := buf[off]; c < 0x80 {
			dblk = uint64(c)
			off++
		} else {
			v, n := binary.Uvarint(buf[off:])
			if n <= 0 {
				break
			}
			dblk, off = v, off+n
		}
		if off >= len(buf) {
			break
		}
		if c := buf[off]; c < 0x80 {
			dtxn = uint64(c)
			off++
		} else {
			v, n := binary.Uvarint(buf[off:])
			if n <= 0 {
				break
			}
			dtxn, off = v, off+n
		}
		if dblk == 0 {
			txn += int32(dtxn)
		} else {
			blk += int32(dblk)
			txn = int32(dtxn)
		}
		if it.typed {
			if off >= len(buf) {
				break
			}
			tt = chain.TxnType(buf[off])
			off++
		}
		if mask == 0 || mask&(1<<tt) != 0 {
			it.off, it.blk, it.txn, it.tt = off, blk, txn, tt
			return pos{blk: blk, txn: txn, tt: tt}, true
		}
	}
	it.off = len(buf)
	return pos{}, false
}

// validate walks a decoded postings buffer once, checking that it
// holds exactly p.n entries, strictly increasing in (blk, txn), every
// position in bounds for blocks, and no trailing bytes — after which
// iteration can trust the buffer completely. tt fixes the type untyped
// lists must report; for typed lists each entry's type byte must match
// the transaction it points at, so a damaged sidecar can never
// misclassify a posting.
func (p *postings) validate(blocks []*chain.Block, tt chain.TxnType) error {
	it := p.iter(tt)
	prev := pos{blk: -1, txn: -1}
	count := 0
	for {
		start := it.off
		q, ok := it.next()
		if !ok {
			if start != len(p.buf) {
				return fmt.Errorf("postings: malformed entry at byte %d", start)
			}
			break
		}
		if q.blk < 0 || q.txn < 0 || !less(prev, q) {
			return fmt.Errorf("postings: non-monotonic entry (%d,%d) after (%d,%d)", q.blk, q.txn, prev.blk, prev.txn)
		}
		if int(q.blk) >= len(blocks) || int(q.txn) >= len(blocks[q.blk].Txns) {
			return fmt.Errorf("postings: entry (%d,%d) out of bounds", q.blk, q.txn)
		}
		if got := blocks[q.blk].Txns[q.txn].TxnType(); got != q.tt {
			return fmt.Errorf("postings: entry (%d,%d) typed %v, txn is %v", q.blk, q.txn, q.tt, got)
		}
		prev = q
		count++
	}
	if count != p.n {
		return fmt.Errorf("postings: %d entries decoded, header claims %d", count, p.n)
	}
	return nil
}

// mergePostings iterates the union of sorted posting iterators in
// chain order, skipping duplicate positions, until fn returns false.
// It returns false if fn stopped early. mask, applied inside each
// iterator, drops postings whose type bit is clear before they reach
// the merge (0 disables it); duplicates carry the same type in every
// list, so pre-merge filtering never breaks deduplication.
func mergePostings(its []postIter, mask uint64, fn func(p pos) bool) bool {
	switch len(its) {
	case 0:
		return true
	case 1:
		// Common case (single type or actor): no merge state at all.
		it := its[0]
		for {
			p, ok := it.nextMatch(mask)
			if !ok {
				return true
			}
			if !fn(p) {
				return false
			}
		}
	}
	heads := make([]pos, len(its))
	live := make([]bool, len(its))
	for i := range its {
		heads[i], live[i] = its[i].nextMatch(mask)
	}
	last := pos{blk: -1, txn: -1}
	for {
		best := -1
		for i := range its {
			if !live[i] {
				continue
			}
			if best < 0 || less(heads[i], heads[best]) {
				best = i
			}
		}
		if best < 0 {
			return true
		}
		p := heads[best]
		heads[best], live[best] = its[best].nextMatch(mask)
		if p == last {
			continue
		}
		last = p
		if !fn(p) {
			return false
		}
	}
}
