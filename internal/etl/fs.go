package etl

// FS is the narrow filesystem surface the durable store drives. All
// store I/O flows through it, so tests can substitute a fault-
// injecting implementation (internal/faultfs) and crash the store at
// any byte without touching the OS. The production implementation is
// OSFS.
//
// Durability contract the store relies on:
//
//   - File.Sync flushes written data to stable storage.
//   - Rename atomically replaces newname (the classic
//     write-tmp-then-rename publish).
//   - Append-opened files write at the end.

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable file handle.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the injectable filesystem.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Create truncates or creates name for writing.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// Rename atomically moves oldname to newname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
}

// OSFS is the passthrough FS over package os.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

// IsNotExist reports whether err means a missing file, for any FS.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// join builds an FS path; kept here so FS implementations can assume
// platform-native separators.
func join(elem ...string) string { return filepath.Join(elem...) }
