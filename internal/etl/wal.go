package etl

// Write-ahead log for the unsealed tail. Appends write one whole
// checksummed frame (persist.go's framing) per block in a single
// Write call followed by Sync — a block is acknowledged only after
// both succeed, so recovery's classification is exact:
//
//   - the file ends mid-frame → a crash interrupted a write that was
//     never acknowledged; the torn tail is dropped losslessly.
//   - a structurally complete frame fails its checksum → previously
//     acknowledged data was damaged at rest; everything from that
//     point on is untrustworthy, and the loss is reported as a Gap
//     for Repair to close from the source chain.
//
// The log is rewritten (tmp + fsync + rename) rather than truncated:
// after every seal, shrinking it to the now-empty pending tail, and
// after any append failure, rebuilding it from the store's in-memory
// backlog before new blocks are accepted.

import (
	"errors"
	"strconv"

	"peoplesnet/internal/chain"
)

type wal struct {
	fs   FS
	path string
	w    File // open append handle; nil after a failure or before reset
	// dirty marks the on-disk log as possibly holding a torn or stale
	// tail; the next append must rebuild it before logging anything.
	dirty bool
	depth int   // records in the log
	size  int64 // bytes in the log
}

func newWAL(fsys FS, path string) *wal {
	// dirty until the first reset proves the file matches memory.
	return &wal{fs: fsys, path: path, dirty: true}
}

// append logs one block and fsyncs it. On error the handle is dropped
// and the log marked dirty; the block was not acknowledged.
func (l *wal) append(b *chain.Block) error {
	if l.w == nil || l.dirty {
		return errors.New("wal not open")
	}
	frame := appendFrame(nil, chain.EncodeBlock(nil, b))
	if _, err := l.w.Write(frame); err != nil {
		l.fail()
		return err
	}
	if err := l.w.Sync(); err != nil {
		l.fail()
		return err
	}
	l.depth++
	l.size += int64(len(frame))
	return nil
}

func (l *wal) fail() {
	l.dirty = true
	if l.w != nil {
		_ = l.w.Close() // handle is being abandoned as dirty either way
		l.w = nil
	}
}

// reset rewrites the log to hold exactly blocks and reopens it for
// appending. The old log stays in place until the rename, so a crash
// or failure mid-reset loses nothing.
func (l *wal) reset(blocks []*chain.Block) error {
	l.fail() // close the stale handle; dirty until the rewrite lands
	buf := []byte(walMagic)
	var scratch []byte
	for _, b := range blocks {
		scratch = chain.EncodeBlock(scratch[:0], b)
		buf = appendFrame(buf, scratch)
	}
	if err := writeFileAtomic(l.fs, l.path, buf); err != nil {
		return err
	}
	w, err := l.fs.Append(l.path)
	if err != nil {
		return err
	}
	l.w, l.dirty = w, false
	l.depth, l.size = len(blocks), int64(len(buf))
	return nil
}

// close releases the append handle (flushed state stays on disk).
func (l *wal) close() {
	if l.w != nil {
		_ = l.w.Close() // appends are already fsynced; nothing left to flush
		l.w = nil
	}
	l.dirty = true
}

// walScan is what recovery found in the log.
type walScan struct {
	blocks []*chain.Block
	// torn: the file ended mid-frame (unacknowledged crash tail,
	// dropped losslessly). corrupt: acknowledged data failed its
	// checksum; blocks holds the good prefix and the caller reports an
	// open-ended Gap after it.
	torn    bool
	corrupt bool
	note    string
}

// readWAL scans the log, classifying any damage. A missing file is a
// fresh store.
func readWAL(fsys FS, path string) walScan {
	var scan walScan
	data, err := fsys.ReadFile(path)
	if err != nil {
		if IsNotExist(err) {
			return scan
		}
		scan.corrupt = true
		scan.note = "wal unreadable: " + err.Error()
		return scan
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		// The log is only ever published whole via rename, so a
		// missing or mangled magic is damage, not a crash artifact.
		scan.corrupt = true
		scan.note = "wal magic damaged"
		return scan
	}
	rest := data[len(walMagic):]
	prev := int64(-1)
	for len(rest) > 0 {
		payload, next, err := readFrame(rest)
		if err != nil {
			if errors.Is(err, errFrameTorn) {
				scan.torn = true
				scan.note = "torn wal tail truncated"
			} else {
				scan.corrupt = true
				scan.note = "corrupt wal record after height " + itoa(prev)
			}
			return scan
		}
		b, err := chain.DecodeBlock(payload)
		if err != nil || (prev >= 0 && b.Height <= prev) {
			// The frame checksum passed but the contents are wrong:
			// damage that happens to preserve the CRC, or a logic bug.
			// Either way the record was acknowledged and is now lost.
			scan.corrupt = true
			scan.note = "undecodable wal record after height " + itoa(prev)
			return scan
		}
		scan.blocks = append(scan.blocks, b)
		prev = b.Height
		rest = next
	}
	return scan
}

func itoa(v int64) string {
	if v < 0 {
		return "start"
	}
	return strconv.FormatInt(v, 10)
}
