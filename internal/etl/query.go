package etl

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"peoplesnet/internal/chain"
)

// Range selects block heights [From, To], inclusive. To < 0 means the
// current tip.
type Range struct {
	From, To int64
}

// All selects the whole chain.
func All() Range { return Range{From: 0, To: -1} }

// Filter restricts a scan. Empty fields match everything; Types and
// Actors compose conjunctively (txn type must match AND the txn must
// mention one of the actors).
type Filter struct {
	Types  []chain.TxnType
	Actors []string
}

func (f Filter) empty() bool { return len(f.Types) == 0 && len(f.Actors) == 0 }

// typeSet is nil when no type filter applies.
func (f Filter) typeSet() map[chain.TxnType]bool {
	if len(f.Types) == 0 {
		return nil
	}
	set := make(map[chain.TxnType]bool, len(f.Types))
	for _, tt := range f.Types {
		set[tt] = true
	}
	return set
}

// typeMask packs the type filter into a bitmask over TxnType values so
// a per-posting check is a single AND. Returns 0 when there is no type
// filter or a value doesn't fit (callers then fall back to the map).
func (f Filter) typeMask() uint64 {
	var mask uint64
	for _, tt := range f.Types {
		if tt >= 64 {
			return 0
		}
		mask |= 1 << tt
	}
	return mask
}

// view snapshots the segment list and pending buffer. Both are
// append-only and their elements immutable, so iterating the snapshot
// lock-free is safe, and user callbacks never run under the lock.
func (s *Store) view() ([]*segment, []*chain.Block) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sealed, s.pending
}

// Scan visits every transaction matching the range and filter in
// height order, stopping early if fn returns false. Sealed segments
// resolve through posting lists; only the pending buffer (at most one
// segment's worth of blocks) is scanned linearly.
func (s *Store) Scan(r Range, f Filter, fn func(height int64, t chain.Txn) bool) {
	sealed, pending := s.view()
	to := r.To
	if to < 0 {
		to = math.MaxInt64
	}
	types, mask := f.typeSet(), f.typeMask()
	for _, g := range sealed {
		if !g.overlaps(r.From, to) {
			continue
		}
		if !scanSegment(g, r.From, to, f, types, mask, fn) {
			return
		}
	}
	scanBlocks(pending, r.From, to, f, types, fn)
}

// ScanParallel runs the same visit as Scan but fans segments out to a
// worker pool. fn must be safe for concurrent calls and observes no
// ordering; an fn returning false stops the scan (best effort across
// workers).
//
// workers <= 0 auto-picks: the posting lists and segment counters
// estimate how many transactions the filter will actually match, and
// a scan below the dispatch crossover (few segments, or little
// matched work — see EXPERIMENTS.md "Parallel scan") runs
// sequentially instead of paying per-segment dispatch. Callers should
// pass 0 unless they have measured a better choice.
func (s *Store) ScanParallel(r Range, f Filter, workers int, fn func(height int64, t chain.Txn) bool) {
	sealed, pending := s.view()
	to := r.To
	if to < 0 {
		to = math.MaxInt64
	}
	var overlapping []*segment
	for _, g := range sealed {
		if g.overlaps(r.From, to) {
			overlapping = append(overlapping, g)
		}
	}
	if workers <= 0 {
		// The auto pick reads index counters, which live in segment
		// sidecars — materialize overlapping stubs first (in parallel;
		// on a cold store these loads dominate the scan anyway).
		preloadSegments(overlapping)
		workers = autoWorkers(overlapping, f)
		if workers <= 1 {
			// Below the crossover the ordered sequential visit is
			// strictly better: faster and deterministic.
			s.Scan(r, f, fn)
			return
		}
	}
	types, mask := f.typeSet(), f.typeMask()
	var units []func(visit func(int64, chain.Txn) bool) bool
	for _, g := range overlapping {
		g := g
		units = append(units, func(visit func(int64, chain.Txn) bool) bool {
			return scanSegment(g, r.From, to, f, types, mask, visit)
		})
	}
	if len(pending) > 0 {
		units = append(units, func(visit func(int64, chain.Txn) bool) bool {
			return scanBlocks(pending, r.From, to, f, types, visit)
		})
	}
	if workers > len(units) {
		workers = len(units)
	}
	if len(units) == 0 {
		return
	}
	var stopped atomic.Bool
	visit := func(h int64, t chain.Txn) bool {
		if stopped.Load() {
			return false
		}
		if !fn(h, t) {
			stopped.Store(true)
			return false
		}
		return true
	}
	jobs := make(chan func(func(int64, chain.Txn) bool) bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				if stopped.Load() {
					continue
				}
				u(visit)
			}
		}()
	}
	for _, u := range units {
		jobs <- u
	}
	close(jobs)
	wg.Wait()
}

// The parallel crossover. Measured at 1/20 paper scale (EXPERIMENTS.md
// "Parallel scan"), a full sequential visit of ~31k txns beats the
// 8-worker pool ~3×: per-segment dispatch overhead needs enough
// matched transactions per segment to amortize. Paper scale (~20×)
// clears both bars on unfiltered and type-filtered scans; narrow
// actor queries stay sequential at any scale, which is also right —
// their posting lists are short.
const (
	scanParallelMinSegments = 4
	scanParallelMinTxns     = 1 << 18
	scanParallelMaxWorkers  = 8
)

// autoWorkers sizes the pool from the work the filter will actually
// match, estimated from index counters without touching any block, and
// from the CPUs actually available: on a single-CPU process the pool
// only adds dispatch and contention on top of the same serial work, so
// the auto pick never parallelizes there (EXPERIMENTS.md "Parallel
// scan", 1-core row).
func autoWorkers(segs []*segment, f Filter) int {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 || len(segs) < scanParallelMinSegments {
		return 1
	}
	var est int64
	for _, g := range segs {
		est += estimateMatched(g, f)
	}
	if est < scanParallelMinTxns {
		return 1
	}
	w := len(segs)
	if w > procs {
		w = procs
	}
	if w > scanParallelMaxWorkers {
		w = scanParallelMaxWorkers
	}
	return w
}

// estimateMatched bounds how many of g's transactions the filter can
// match. Conjunctive filters take the smaller dimension. Unloaded or
// broken segments estimate zero — callers preload before estimating.
func estimateMatched(g *segment, f Filter) int64 {
	if !g.loaded() || g.broken() {
		return 0
	}
	if f.empty() {
		return g.txns
	}
	byType, byActor := int64(-1), int64(-1)
	if len(f.Types) > 0 {
		byType = 0
		for _, tt := range f.Types {
			if ps := g.byType[tt]; ps != nil {
				byType += int64(ps.n)
			}
		}
	}
	if len(f.Actors) > 0 {
		byActor = 0
		if g.shared != nil {
			byActor = int64(g.shared.n)
		}
		for _, a := range f.Actors {
			if ps := g.byActor[a]; ps != nil {
				byActor += int64(ps.n)
			}
		}
	}
	switch {
	case byType < 0:
		return byActor
	case byActor < 0 || byType < byActor:
		return byType
	default:
		return byActor
	}
}

// preloadSegments materializes every unloaded stub in segs, fanning
// the file loads out to a small pool. Loads are independent (each owns
// its Once) and gap accounting is order-independent (insertGap), so
// concurrent discovery is safe.
func preloadSegments(segs []*segment) {
	var stubs []*segment
	for _, g := range segs {
		if !g.loaded() {
			stubs = append(stubs, g)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > scanParallelMaxWorkers {
		workers = scanParallelMaxWorkers
	}
	if workers > len(stubs) {
		workers = len(stubs)
	}
	if workers <= 1 {
		for _, g := range stubs {
			g.load()
		}
		return
	}
	jobs := make(chan *segment)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				g.load()
			}
		}()
	}
	for _, g := range stubs {
		jobs <- g
	}
	close(jobs)
	wg.Wait()
}

// scanSegment visits a sealed segment through its indexes. Returns
// false if fn stopped the scan. types/mask are f.typeSet() and
// f.typeMask(), computed once by the caller. The first touch of a stub
// materializes it here; a broken segment matches nothing (its range is
// reported through Gaps).
func scanSegment(g *segment, from, to int64, f Filter, types map[chain.TxnType]bool, mask uint64, fn func(int64, chain.Txn) bool) bool {
	if !g.load() {
		return true
	}
	whole := g.from >= from && g.to <= to
	inRange := func(h int64) bool { return whole || (h >= from && h <= to) }

	if f.empty() {
		blks := g.blocks
		if !whole {
			i := sort.Search(len(blks), func(i int) bool { return blks[i].Height >= from })
			blks = blks[i:]
		}
		for _, b := range blks {
			if b.Height > to {
				return true
			}
			for _, t := range b.Txns {
				if !fn(b.Height, t) {
					return false
				}
			}
		}
		return true
	}

	// emit resolves a matched posting. Only shared-list rewards still
	// need the mention check — every other filter dimension has been
	// decided on posting positions alone, without touching the block.
	needMention := len(f.Actors) > 0 && g.shared.n > 0
	emit := func(p pos) bool {
		b := g.blocks[p.blk]
		if !inRange(b.Height) {
			return b.Height <= to // past the range end: stop
		}
		t := b.Txns[p.txn]
		if needMention && t.TxnType() == chain.TxnRewards && !mentionsAny(t, f.Actors) {
			return true
		}
		return fn(b.Height, t)
	}

	// Iterator slices start in a stack buffer: scanSegment runs once
	// per segment per query, and letting these appends hit the heap
	// showed up as GC time in the indexed-scan benchmarks.
	var itsBuf [4]postIter

	if len(f.Actors) == 0 {
		// Type postings are the answer; no per-posting checks needed.
		// byType lists are untyped — the map key fixes the type each
		// iterator reports.
		typeIts := itsBuf[:0]
		for tt := range types {
			if ps := g.byType[tt]; ps != nil && ps.n > 0 {
				typeIts = append(typeIts, ps.iter(tt))
			}
		}
		return mergePostings(typeIts, 0, emit)
	}

	actorIts := itsBuf[:0]
	for _, a := range f.Actors {
		if ps := g.byActor[a]; ps != nil && ps.n > 0 {
			actorIts = append(actorIts, ps.iter(0))
		}
	}
	// Rewards parked on the shared list (fan-out suppressed) are
	// merged in and filtered by inspecting their entries in emit.
	if g.shared.n > 0 && (types == nil || types[chain.TxnRewards]) {
		actorIts = append(actorIts, g.shared.iter(0))
	}
	switch {
	case types == nil:
		return mergePostings(actorIts, 0, emit)
	case mask != 0:
		// Both dimensions: postings carry their txn type, so the type
		// conjunction happens inside the iterators — rejected postings
		// never load a block or cross a function call.
		return mergePostings(actorIts, mask, emit)
	default:
		return mergePostings(actorIts, 0, func(p pos) bool {
			if !types[p.tt] {
				return true
			}
			return emit(p)
		})
	}
}

// scanBlocks linearly visits unindexed blocks with the filter applied.
func scanBlocks(blocks []*chain.Block, from, to int64, f Filter, types map[chain.TxnType]bool, fn func(int64, chain.Txn) bool) bool {
	i := sort.Search(len(blocks), func(i int) bool { return blocks[i].Height >= from })
	for _, b := range blocks[i:] {
		if b.Height > to {
			return true
		}
		for _, t := range b.Txns {
			if types != nil && !types[t.TxnType()] {
				continue
			}
			if len(f.Actors) > 0 && !mentionsAny(t, f.Actors) {
				continue
			}
			if !fn(b.Height, t) {
				return false
			}
		}
	}
	return true
}

func mentionsAny(t chain.Txn, actors []string) bool {
	for _, a := range actors {
		if mentionsActor(t, a) {
			return true
		}
	}
	return false
}

// --- height ↔ time range index -------------------------------------------

// TimeAt returns the timestamp of the first block at or after height.
// Only the segment covering the height loads (plus successors while
// broken segments are skipped).
func (s *Store) TimeAt(height int64) (time.Time, bool) {
	sealed, pending := s.view()
	i := sort.Search(len(sealed), func(i int) bool { return sealed[i].to >= height })
	for ; i < len(sealed); i++ {
		if !sealed[i].load() {
			continue // broken: the next segment holds the next block
		}
		blks := sealed[i].blocks
		j := sort.Search(len(blks), func(j int) bool { return blks[j].Height >= height })
		if j < len(blks) {
			return blks[j].Timestamp, true
		}
	}
	j := sort.Search(len(pending), func(j int) bool { return pending[j].Height >= height })
	if j < len(pending) {
		return pending[j].Timestamp, true
	}
	return time.Time{}, false
}

// HeightAt returns the height of the last block with a timestamp at
// or before t (-1 if the store starts later). The binary search loads
// the O(log segments) stubs it probes.
func (s *Store) HeightAt(t time.Time) int64 {
	sealed, pending := s.view()
	best := int64(-1)
	// Last segment that starts at or before t. A probe that fails to
	// load sorts as "starts early" — it matches nothing below anyway.
	i := sort.Search(len(sealed), func(i int) bool {
		return sealed[i].load() && sealed[i].fromTime.After(t)
	})
	// Walk back past broken segments to the last one with blocks ≤ t.
	for j := i - 1; j >= 0; j-- {
		if !sealed[j].load() {
			continue
		}
		blks := sealed[j].blocks
		k := sort.Search(len(blks), func(k int) bool { return blks[k].Timestamp.After(t) })
		if k > 0 {
			best = blks[k-1].Height
		}
		break
	}
	j := sort.Search(len(pending), func(j int) bool { return pending[j].Timestamp.After(t) })
	if j > 0 && pending[j-1].Height > best {
		best = pending[j-1].Height
	}
	return best
}

// --- tail subscription ----------------------------------------------------

// Tail is a pull-based subscription over the store's block sequence:
// it replays every block after its start height, then blocks until
// new ones are ingested. Unlike a channel feed it can never drop a
// block, however slow the consumer.
type Tail struct {
	s      *Store
	after  int64
	closed bool // guarded by s.mu
}

// Follow returns a tail positioned after the given height (use -1 to
// replay everything, or Height() to receive only new blocks).
func (s *Store) Follow(after int64) *Tail {
	return &Tail{s: s, after: after}
}

// Next returns the next block, blocking until one is available. It
// returns false after Close.
func (t *Tail) Next() (*chain.Block, bool) {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t.closed {
			return nil, false
		}
		if b := s.blockAfterLocked(t.after); b != nil {
			t.after = b.Height
			return b, true
		}
		s.grown.Wait()
	}
}

// Close unblocks any pending Next, which then returns false.
func (t *Tail) Close() {
	t.s.mu.Lock()
	t.closed = true
	t.s.mu.Unlock()
	t.s.grown.Broadcast()
}

// BlockAt returns the stored block at exactly height, or nil. Only the
// segment covering the height is materialized (lazy stubs stay cold),
// so a resumed follower can re-derive per-block metadata without
// paying for a full load.
func (s *Store) BlockAt(height int64) *chain.Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.blockAfterLocked(height - 1)
	if b == nil || b.Height != height {
		return nil
	}
	return b
}

func (s *Store) blockAfterLocked(after int64) *chain.Block {
	i := sort.Search(len(s.sealed), func(i int) bool { return s.sealed[i].to > after })
	for ; i < len(s.sealed); i++ {
		if !s.sealed[i].load() {
			continue // broken: a tail skips its range like a gap
		}
		blks := s.sealed[i].blocks
		j := sort.Search(len(blks), func(j int) bool { return blks[j].Height > after })
		if j < len(blks) {
			return blks[j]
		}
	}
	j := sort.Search(len(s.pending), func(j int) bool { return s.pending[j].Height > after })
	if j < len(s.pending) {
		return s.pending[j]
	}
	return nil
}
