package etl

import (
	"sync"
	"sync/atomic"
	"time"

	"peoplesnet/internal/chain"
)

// pos addresses one transaction inside a segment: block index, txn
// index, plus the transaction's type so filters can reject a posting
// without loading the block. Posting lists are sorted by (blk, txn),
// which is chain order; at rest they live delta+varint-compressed
// (postings.go) and pos is the decoded currency scans consume.
type pos struct {
	blk, txn int32
	tt       chain.TxnType
}

// segment is an immutable run of consecutive blocks plus its secondary
// indexes. Once sealed nothing in it changes, so readers never lock.
//
// A durable store opens lazily: Open creates one stub per segment file
// (only from/to, parsed from the file name) and the first access
// materializes the rest through load(). Built-in-memory segments
// (seal, repair) have lazy == nil and are always materialized.
type segment struct {
	from, to int64 // block heights (inclusive); known without loading

	// lazy is the on-demand load state; nil means the fields below are
	// valid. After load() returns true they are valid and immutable.
	lazy *lazyState

	blocks           []*chain.Block
	fromTime, toTime time.Time
	txns             int64
	mix              map[chain.TxnType]int64
	byType           map[chain.TxnType]*postings
	byActor          map[string]*postings
	// shared holds postings of transactions whose actor fan-out was
	// suppressed (rewards when Config.IndexRewardEntries is false).
	// Actor queries merge it in and filter by inspecting entries.
	shared *postings
	// agg is the segment's aggregate contribution, decoded from the
	// sidecar (or rebuilt) at load; nil for in-memory segments, whose
	// transactions were observed at append time.
	agg *segAgg
	// aggFolded marks the segment's contribution as merged into the
	// store-wide aggregates. Guarded by the store's mu.
	aggFolded bool
}

// lazyState tracks a stub segment's materialization.
type lazyState struct {
	d    *durable
	name string // segment file name
	once sync.Once
	// done/failed are set (in that order) when the load completes;
	// failed stubs stay in the segment list serving nothing until
	// Repair sweeps them into gaps.
	done   atomic.Bool
	failed bool // valid once done is true
}

// load materializes a stub segment, returning whether its blocks and
// indexes are usable. It is safe to call concurrently and from under
// the store's mu (it never takes store locks); the winner does the
// file I/O, everyone else waits on the Once.
func (g *segment) load() bool {
	if g.lazy == nil {
		return true
	}
	g.lazy.once.Do(func() {
		g.lazy.failed = !g.lazy.d.loadLazy(g)
		g.lazy.done.Store(true)
	})
	return !g.lazy.failed
}

// loaded reports whether the segment is materialized (successfully or
// not) without forcing a load.
func (g *segment) loaded() bool { return g.lazy == nil || g.lazy.done.Load() }

// broken reports whether a load was attempted and failed, without
// forcing one.
func (g *segment) broken() bool {
	return g.lazy != nil && g.lazy.done.Load() && g.lazy.failed
}

func buildSegment(blocks []*chain.Block, indexRewards bool) *segment {
	g := &segment{
		blocks:   blocks,
		from:     blocks[0].Height,
		to:       blocks[len(blocks)-1].Height,
		fromTime: blocks[0].Timestamp,
		toTime:   blocks[len(blocks)-1].Timestamp,
		mix:      make(map[chain.TxnType]int64),
		byType:   make(map[chain.TxnType]*postings),
		byActor:  make(map[string]*postings),
		shared:   &postings{typed: true},
	}
	var seen []string // per-txn dedupe scratch
	for bi, b := range blocks {
		for ti, t := range b.Txns {
			tt := t.TxnType()
			bi32, ti32 := int32(bi), int32(ti)
			g.txns++
			g.mix[tt]++
			tp := g.byType[tt]
			if tp == nil {
				tp = &postings{}
				g.byType[tt] = tp
			}
			tp.add(bi32, ti32, tt)
			if tt == chain.TxnRewards && !indexRewards {
				g.shared.add(bi32, ti32, tt)
				continue
			}
			seen = seen[:0]
			actorsOf(t, func(a string) {
				if a == "" {
					return
				}
				for _, prev := range seen {
					if prev == a {
						return
					}
				}
				seen = append(seen, a)
				ap := g.byActor[a]
				if ap == nil {
					ap = &postings{typed: true}
					g.byActor[a] = ap
				}
				ap.add(bi32, ti32, tt)
			})
		}
	}
	return g
}

func (g *segment) overlaps(from, to int64) bool {
	return g.to >= from && g.from <= to
}

// actorsOf emits every address a transaction mentions — the actors
// whose timelines it belongs on.
func actorsOf(t chain.Txn, emit func(string)) {
	switch v := t.(type) {
	case *chain.AddGateway:
		emit(v.Gateway)
		emit(v.Owner)
	case *chain.AssertLocation:
		emit(v.Gateway)
		emit(v.Owner)
	case *chain.TransferHotspot:
		emit(v.Gateway)
		emit(v.Seller)
		emit(v.Buyer)
	case *chain.PoCRequest:
		emit(v.Challenger)
	case *chain.PoCReceipt:
		emit(v.Challenger)
		emit(v.Challengee)
		for i := range v.Witnesses {
			emit(v.Witnesses[i].Witness)
		}
	case *chain.StateChannelOpen:
		emit(v.Owner)
	case *chain.StateChannelClose:
		emit(v.Owner)
		for i := range v.Summaries {
			emit(v.Summaries[i].Hotspot)
		}
	case *chain.Payment:
		emit(v.Payer)
		emit(v.Payee)
	case *chain.TokenBurn:
		emit(v.Payer)
		emit(v.Destination)
	case *chain.OUIRegistration:
		emit(v.Owner)
	case *chain.Rewards:
		for i := range v.Entries {
			emit(v.Entries[i].Account)
			emit(v.Entries[i].Gateway)
		}
	case *chain.ConsensusGroup:
		for _, m := range v.Members {
			emit(m)
		}
	case *chain.RoutingUpdate:
		emit(v.Owner)
	case *chain.StakeValidator:
		emit(v.Owner)
		emit(v.Validator)
	case *chain.DCCoinbase:
		emit(v.Payee)
	case *chain.SecurityCoinbase:
		emit(v.Payee)
	}
}

// ActorsOf calls emit for every address t mentions, in the txn's own
// field order (possibly with duplicates). It is the single definition
// of "whose timeline does this transaction belong on" — the posting
// builder above, the federation layer's partitioning (internal/fed),
// and actor aggregations all share it.
func ActorsOf(t chain.Txn, emit func(string)) { actorsOf(t, emit) }

// Mentions reports whether t names the actor — the exact predicate
// behind Filter.Actors, exported so federated shards and correctness
// oracles apply identical semantics.
func Mentions(t chain.Txn, actor string) bool { return mentionsActor(t, actor) }

// mentionsActor reports whether t names the actor — used to filter
// shared postings exactly.
func mentionsActor(t chain.Txn, actor string) bool {
	found := false
	actorsOf(t, func(a string) {
		if a == actor {
			found = true
		}
	})
	return found
}

func less(a, b pos) bool {
	if a.blk != b.blk {
		return a.blk < b.blk
	}
	return a.txn < b.txn
}
