package etl

import (
	"time"

	"peoplesnet/internal/chain"
)

// pos addresses one transaction inside a segment: block index, txn
// index, plus the transaction's type so filters can reject a posting
// without loading the block. Posting lists are sorted by (blk, txn),
// which is chain order.
type pos struct {
	blk, txn int32
	tt       chain.TxnType
}

// segment is an immutable run of consecutive blocks plus its
// secondary indexes. Once sealed nothing in it changes, so readers
// never lock.
type segment struct {
	blocks           []*chain.Block
	from, to         int64 // block heights (inclusive)
	fromTime, toTime time.Time
	txns             int64
	mix              map[chain.TxnType]int64
	byType           map[chain.TxnType][]pos
	byActor          map[string][]pos
	// shared holds postings of transactions whose actor fan-out was
	// suppressed (rewards when Config.IndexRewardEntries is false).
	// Actor queries merge it in and filter by inspecting entries.
	shared []pos
}

func buildSegment(blocks []*chain.Block, indexRewards bool) *segment {
	g := &segment{
		blocks:   blocks,
		from:     blocks[0].Height,
		to:       blocks[len(blocks)-1].Height,
		fromTime: blocks[0].Timestamp,
		toTime:   blocks[len(blocks)-1].Timestamp,
		mix:      make(map[chain.TxnType]int64),
		byType:   make(map[chain.TxnType][]pos),
		byActor:  make(map[string][]pos),
	}
	var seen []string // per-txn dedupe scratch
	for bi, b := range blocks {
		for ti, t := range b.Txns {
			tt := t.TxnType()
			p := pos{blk: int32(bi), txn: int32(ti), tt: tt}
			g.txns++
			g.mix[tt]++
			g.byType[tt] = append(g.byType[tt], p)
			if tt == chain.TxnRewards && !indexRewards {
				g.shared = append(g.shared, p)
				continue
			}
			seen = seen[:0]
			actorsOf(t, func(a string) {
				if a == "" {
					return
				}
				for _, prev := range seen {
					if prev == a {
						return
					}
				}
				seen = append(seen, a)
				g.byActor[a] = append(g.byActor[a], p)
			})
		}
	}
	return g
}

func (g *segment) overlaps(from, to int64) bool {
	return g.to >= from && g.from <= to
}

// actorsOf emits every address a transaction mentions — the actors
// whose timelines it belongs on.
func actorsOf(t chain.Txn, emit func(string)) {
	switch v := t.(type) {
	case *chain.AddGateway:
		emit(v.Gateway)
		emit(v.Owner)
	case *chain.AssertLocation:
		emit(v.Gateway)
		emit(v.Owner)
	case *chain.TransferHotspot:
		emit(v.Gateway)
		emit(v.Seller)
		emit(v.Buyer)
	case *chain.PoCRequest:
		emit(v.Challenger)
	case *chain.PoCReceipt:
		emit(v.Challenger)
		emit(v.Challengee)
		for i := range v.Witnesses {
			emit(v.Witnesses[i].Witness)
		}
	case *chain.StateChannelOpen:
		emit(v.Owner)
	case *chain.StateChannelClose:
		emit(v.Owner)
		for i := range v.Summaries {
			emit(v.Summaries[i].Hotspot)
		}
	case *chain.Payment:
		emit(v.Payer)
		emit(v.Payee)
	case *chain.TokenBurn:
		emit(v.Payer)
		emit(v.Destination)
	case *chain.OUIRegistration:
		emit(v.Owner)
	case *chain.Rewards:
		for i := range v.Entries {
			emit(v.Entries[i].Account)
			emit(v.Entries[i].Gateway)
		}
	case *chain.ConsensusGroup:
		for _, m := range v.Members {
			emit(m)
		}
	case *chain.RoutingUpdate:
		emit(v.Owner)
	case *chain.StakeValidator:
		emit(v.Owner)
		emit(v.Validator)
	case *chain.DCCoinbase:
		emit(v.Payee)
	case *chain.SecurityCoinbase:
		emit(v.Payee)
	}
}

// ActorsOf calls emit for every address t mentions, in the txn's own
// field order (possibly with duplicates). It is the single definition
// of "whose timeline does this transaction belong on" — the posting
// builder above, the federation layer's partitioning (internal/fed),
// and actor aggregations all share it.
func ActorsOf(t chain.Txn, emit func(string)) { actorsOf(t, emit) }

// Mentions reports whether t names the actor — the exact predicate
// behind Filter.Actors, exported so federated shards and correctness
// oracles apply identical semantics.
func Mentions(t chain.Txn, actor string) bool { return mentionsActor(t, actor) }

// mentionsActor reports whether t names the actor — used to filter
// shared postings exactly.
func mentionsActor(t chain.Txn, actor string) bool {
	found := false
	actorsOf(t, func(a string) {
		if a == actor {
			found = true
		}
	})
	return found
}

// mergePostings iterates the union of sorted posting lists in chain
// order, skipping duplicate positions, until fn returns false. It
// returns false if fn stopped early.
func mergePostings(lists [][]pos, fn func(p pos) bool) bool {
	switch len(lists) {
	case 0:
		return true
	case 1:
		// Common case (single type or actor): no merge state at all.
		for _, p := range lists[0] {
			if !fn(p) {
				return false
			}
		}
		return true
	}
	idx := make([]int, len(lists))
	last := pos{blk: -1, txn: -1}
	for {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best < 0 || less(l[idx[i]], lists[best][idx[best]]) {
				best = i
			}
		}
		if best < 0 {
			return true
		}
		p := lists[best][idx[best]]
		idx[best]++
		if p == last {
			continue
		}
		last = p
		if !fn(p) {
			return false
		}
	}
}

func less(a, b pos) bool {
	if a.blk != b.blk {
		return a.blk < b.blk
	}
	return a.txn < b.txn
}
