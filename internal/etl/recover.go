package etl

// Open reloads a durable store from its directory in one pass,
// degrading instead of failing: damaged segment files are quarantined
// and reported as Gaps, a torn WAL tail is truncated, a corrupted WAL
// body becomes an open-ended Gap. Repair closes gaps from the source
// chain.

import (
	"fmt"
	"sort"
	"strings"

	"peoplesnet/internal/chain"
)

// Open loads (or initializes) the durable store rooted at dir. It
// never fails on corrupt contents — those are quarantined and surfaced
// through Health and Gaps — only on an unusable directory. cfg.FS
// selects the filesystem (nil means the host's).
func Open(dir string, cfg Config) (*Store, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("etl: open %s: %w", dir, err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("etl: open %s: %w", dir, err)
	}

	s := New(cfg)
	d := &durable{fs: fsys, dir: dir, wal: newWAL(fsys, join(dir, walFileName))}
	s.dur = d

	// Leftover tmp files are unpublished writes from a crash; the
	// published state never references them.
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			fsys.Remove(join(dir, name))
		}
	}

	// Segment files load in name order, which is height order. A file
	// that fails any check is quarantined whole: the store comes up
	// without its range and reports it as a Gap.
	lastTo := int64(-1)
	for _, name := range names {
		from, to, ok := parseSegFileName(name)
		if !ok {
			continue
		}
		g, c, err := d.loadSegment(name, from, to, s.cfg.IndexRewardEntries)
		if err == nil && from <= lastTo {
			err = fmt.Errorf("range [%d,%d] overlaps previous segment ending %d", from, to, lastTo)
		}
		if err != nil {
			d.quarantine(name, from, to, err)
			continue
		}
		s.sealed = append(s.sealed, g)
		s.agg.addSegment(g, c)
		lastTo = to
	}
	d.persisted = len(s.sealed)

	// The WAL holds the unsealed tail. Records at or below the sealed
	// high-water mark are blocks a crash caught between segment publish
	// and WAL reset — already durable, skipped by height.
	scan := readWAL(fsys, d.wal.path)
	d.walRecovery = scan.note
	for _, b := range scan.blocks {
		if b.Height <= lastTo {
			continue
		}
		s.pending = append(s.pending, b)
		s.pendingTxns += int64(len(b.Txns))
		for _, t := range b.Txns {
			s.agg.observe(b.Height, t)
		}
	}

	if len(s.sealed) > 0 {
		s.first = s.sealed[0].from
		s.tip = s.sealed[len(s.sealed)-1].to
	}
	if n := len(s.pending); n > 0 {
		if s.first < 0 {
			s.first = s.pending[0].Height
		}
		s.tip = s.pending[n-1].Height
	}
	if scan.corrupt {
		// Everything after the last good record is untrustworthy; the
		// true tail height is unknowable from local state alone.
		d.gaps = append(d.gaps, Gap{From: s.tip + 1, To: -1})
	}

	// Canonicalize the tail: a WAL big enough to seal seals now (the
	// crash beat the seal to disk), and the log is rewritten to exactly
	// the surviving pending blocks, which also drops any torn tail.
	if len(s.pending) >= s.cfg.SegmentBlocks {
		s.sealLocked() // persists and resets the WAL via durSealLocked
	} else if err := d.wal.reset(s.pending); err != nil {
		d.persistErr = &PersistError{Op: "wal reset", Err: err}
	}
	return s, nil
}

// loadSegment reads one segment file and its sidecar. Block damage is
// an error (caller quarantines); sidecar damage is absorbed by
// rebuilding the indexes from the verified blocks.
func (d *durable) loadSegment(name string, from, to int64, indexRewards bool) (*segment, *segAgg, error) {
	data, err := d.fs.ReadFile(join(d.dir, name))
	if err != nil {
		return nil, nil, err
	}
	blocks, err := decodeSegFile(data, from, to)
	if err != nil {
		return nil, nil, err
	}
	if idx, err := d.fs.ReadFile(join(d.dir, idxFileName(name))); err == nil {
		if g, c, err := decodeIdxFile(idx, blocks, indexRewards); err == nil {
			return g, c, nil
		}
	}
	// Missing or damaged sidecar: the blocks are intact, so this is
	// recoverable locally — rebuild and republish it.
	g := buildSegment(blocks, indexRewards)
	c := computeSegAgg(blocks)
	d.sidecarsRebuilt++
	d.fs.Remove(join(d.dir, idxFileName(name))) // best effort
	writeFileAtomic(d.fs, join(d.dir, idxFileName(name)), encodeIdxFile(g, c, indexRewards))
	return g, c, nil
}

// quarantine moves a damaged segment file (and its sidecar) into the
// quarantine/ subdirectory and records the lost range as a Gap.
func (d *durable) quarantine(name string, from, to int64, cause error) {
	qdir := join(d.dir, "quarantine")
	d.fs.MkdirAll(qdir)
	d.fs.Rename(join(d.dir, name), join(qdir, name))
	idx := idxFileName(name)
	d.fs.Rename(join(d.dir, idx), join(qdir, idx))
	d.quarantined++
	d.gaps = append(d.gaps, Gap{From: from, To: to})
	d.persistErr = &PersistError{Op: "load " + name + " (quarantined)", Err: cause}
}

// Repair closes the store's gaps by re-ingesting the missing heights
// from a source chain, republishing their segment files. Blocks the
// store already holds are never touched. It returns the first persist
// error; unrepairable gaps (heights the chain does not cover) remain
// reported.
func (s *Store) Repair(c *chain.Chain) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dur
	if d == nil || len(d.gaps) == 0 {
		return nil
	}
	s.ledger = c.Ledger()
	var firstErr error
	var remaining []Gap
	for _, gap := range d.gaps {
		to := gap.To
		if to < 0 {
			to = c.Height()
		}
		var missing []*chain.Block
		for _, b := range c.BlocksFrom(gap.From - 1) {
			if b.Height > to {
				break
			}
			if !s.coveredLocked(b.Height) {
				missing = append(missing, b)
			}
		}
		if len(missing) == 0 {
			if gap.To >= 0 && c.Height() < gap.To {
				// The chain cannot vouch for this range; keep reporting.
				remaining = append(remaining, gap)
				if firstErr == nil {
					firstErr = fmt.Errorf("etl: repair: chain tip %d below gap [%d,%d]", c.Height(), gap.From, gap.To)
				}
			}
			continue
		}
		if err := s.repairRunLocked(missing); err != nil {
			remaining = append(remaining, gap)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	d.gaps = remaining
	// Middle-gap repairs append their close points out of order.
	sort.Slice(s.agg.Closes, func(i, j int) bool { return s.agg.Closes[i].Height < s.agg.Closes[j].Height })
	if firstErr == nil && d.persistErr != nil {
		// The store is whole again; clear the quarantine-time note.
		d.persistErr = nil
	}
	s.grown.Broadcast()
	return firstErr
}

// repairRunLocked reinstates one run of missing blocks. Blocks beyond
// the tip go through the normal append path (WAL, then seal); blocks
// filling a middle gap become a sealed segment published immediately.
func (s *Store) repairRunLocked(blocks []*chain.Block) error {
	if blocks[0].Height > s.tip {
		for _, b := range blocks {
			if err := s.appendLocked(b); err != nil {
				return err
			}
		}
		return nil
	}
	g := buildSegment(blocks, s.cfg.IndexRewardEntries)
	if err := s.dur.writeSegment(g, s.cfg.IndexRewardEntries); err != nil {
		return &PersistError{Op: "repair segment " + segFileName(g.from, g.to), Err: err}
	}
	i := sort.Search(len(s.sealed), func(i int) bool { return s.sealed[i].from > g.from })
	s.sealed = append(s.sealed, nil)
	copy(s.sealed[i+1:], s.sealed[i:])
	s.sealed[i] = g
	// The inserted segment is on disk, and unpersisted segments are
	// always the newest (the slice tail), so the persisted prefix grows.
	s.dur.persisted++
	s.agg.addSegment(g, computeSegAgg(blocks))
	if s.first < 0 || g.from < s.first {
		s.first = g.from
	}
	if g.to > s.tip {
		s.tip = g.to
	}
	return nil
}

// coveredLocked reports whether the store holds a block at height h.
func (s *Store) coveredLocked(h int64) bool {
	i := sort.Search(len(s.sealed), func(i int) bool { return s.sealed[i].to >= h })
	if i < len(s.sealed) && s.sealed[i].from <= h {
		blks := s.sealed[i].blocks
		j := sort.Search(len(blks), func(j int) bool { return blks[j].Height >= h })
		if j < len(blks) && blks[j].Height == h {
			return true
		}
	}
	j := sort.Search(len(s.pending), func(j int) bool { return s.pending[j].Height >= h })
	return j < len(s.pending) && s.pending[j].Height == h
}

// ReplayLedger rebuilds ledger state by replaying every stored block
// through a fresh ledger — the durable analogue of ReadChain's replay
// — and attaches it to the store for the View's balance queries.
// Queries that only touch indexes and aggregates don't need it, which
// is why Open leaves the ledger unset.
func (s *Store) ReplayLedger() (*chain.Ledger, error) {
	l := chain.NewLedger()
	var firstErr error
	sealed, pending := s.view()
	apply := func(b *chain.Block) bool {
		for i, t := range b.Txns {
			if err := l.ApplyTxn(t, b.Height); err != nil {
				firstErr = fmt.Errorf("etl: replay block %d txn %d (%s): %w", b.Height, i, t.TxnType(), err)
				return false
			}
		}
		return true
	}
	for _, g := range sealed {
		for _, b := range g.blocks {
			if !apply(b) {
				return nil, firstErr
			}
		}
	}
	for _, b := range pending {
		if !apply(b) {
			return nil, firstErr
		}
	}
	s.SetLedger(l)
	return l, nil
}

// Close flushes the durable state and releases the WAL handle. The
// store stays queryable; only further appends need a reopen. Close on
// a memory-only store is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dur
	if d == nil {
		return nil
	}
	var err error
	if d.persistErr != nil || d.wal.dirty {
		err = s.syncDiskLocked()
	}
	d.wal.close()
	return err
}
