package etl

// Recovery and lazy loading. Open maps the segment directory without
// reading a single segment: each file becomes a stub carrying only the
// height range parsed from its name, and only the WAL tail is read
// eagerly. A stub materializes — blocks verified, sidecar decoded or
// rebuilt — the first time a query touches it, so a cold store answers
// its first indexed query after reading the WAL plus the touched
// segments instead of the whole directory.
//
// Degradation semantics are unchanged from eager open, only deferred:
// a damaged segment file is quarantined and reported as a Gap at the
// moment its load is attempted; a torn WAL tail is truncated; a
// corrupted WAL body becomes an open-ended Gap. A stub whose load
// failed stays in the segment list serving nothing (queries skip it)
// until Repair sweeps it out and closes the gap from a source chain.

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"peoplesnet/internal/chain"
)

// Open loads (or initializes) the durable store rooted at dir. It
// never fails on corrupt contents — those are quarantined and surfaced
// through Health and Gaps as they are discovered — only on an unusable
// directory. cfg.FS selects the filesystem (nil means the host's).
//
// Segment contents load lazily; call Preload to force the v1 eager
// behavior, or let the first queries pay only for what they touch.
func Open(dir string, cfg Config) (*Store, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("etl: open %s: %w", dir, err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("etl: open %s: %w", dir, err)
	}

	s := New(cfg)
	d := &durable{
		fs:           fsys,
		dir:          dir,
		wal:          newWAL(fsys, join(dir, walFileName)),
		indexRewards: s.cfg.IndexRewardEntries,
		ckptHeight:   -1,
	}
	s.dur = d

	// Leftover tmp files are unpublished writes from a crash; the
	// published state never references them.
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			fsys.Remove(join(dir, name))
		}
	}

	// Segment files become stubs in name order, which is height order.
	// The only check possible without reading contents — ranges must
	// not overlap — happens here; everything else waits for the lazy
	// load, which verifies the contents against the name.
	lastTo := int64(-1)
	for _, name := range names {
		from, to, ok := parseSegFileName(name)
		if !ok {
			continue
		}
		if from <= lastTo {
			d.quarantineFile(name, from, to,
				fmt.Errorf("range [%d,%d] overlaps previous segment ending %d", from, to, lastTo))
			continue
		}
		s.sealed = append(s.sealed, &segment{
			from: from, to: to,
			lazy: &lazyState{d: d, name: name},
		})
		lastTo = to
	}
	d.persisted = len(s.sealed)
	// Aggregate contributions fold in when the aggregates are first
	// read (ensureAgg); until then each stub owes one fold.
	s.aggPending = len(s.sealed)

	// The WAL holds the unsealed tail. Records at or below the sealed
	// high-water mark are blocks a crash caught between segment publish
	// and WAL reset — already durable, skipped by height.
	scan := readWAL(fsys, d.wal.path)
	d.setWALRecovery(scan.note)
	for _, b := range scan.blocks {
		if b.Height <= lastTo {
			continue
		}
		s.pending = append(s.pending, b)
		s.pendingTxns += int64(len(b.Txns))
		for _, t := range b.Txns {
			s.agg.observe(b.Height, t)
		}
	}

	if len(s.sealed) > 0 {
		s.first = s.sealed[0].from
		s.tip = s.sealed[len(s.sealed)-1].to
	}
	if n := len(s.pending); n > 0 {
		if s.first < 0 {
			s.first = s.pending[0].Height
		}
		s.tip = s.pending[n-1].Height
	}
	if scan.corrupt {
		// Everything after the last good record is untrustworthy; the
		// true tail height is unknowable from local state alone.
		d.noteGap(Gap{From: s.tip + 1, To: -1})
	}

	// Canonicalize the tail: a WAL big enough to seal seals now (the
	// crash beat the seal to disk), and the log is rewritten to exactly
	// the surviving pending blocks, which also drops any torn tail.
	if len(s.pending) >= s.cfg.SegmentBlocks {
		s.sealLocked() // persists and resets the WAL via durSealLocked
	} else if err := d.wal.reset(s.pending); err != nil {
		d.setPersistErr(&PersistError{Op: "wal reset", Err: err})
	}
	return s, nil
}

// loadLazy materializes one stub: reads and verifies its segment file,
// then decodes (or rebuilds) its sidecar. Called exactly once per stub
// through the lazyState's Once; it takes no store locks. Returns false
// after quarantining an unreadable segment — the stub then serves
// nothing until Repair sweeps it.
func (d *durable) loadLazy(g *segment) bool {
	name := g.lazy.name
	data, err := d.fs.ReadFile(join(d.dir, name))
	if err == nil {
		var blocks []*chain.Block
		if blocks, err = decodeSegFile(data, g.from, g.to); err == nil {
			d.fillSegment(g, name, blocks)
			return true
		}
	}
	d.quarantineFile(name, g.from, g.to, err)
	return false
}

// fillSegment completes a stub from its verified blocks: sidecar
// indexes when the sidecar is sound, otherwise a rebuild from the
// blocks (republishing the sidecar — also how a v1 sidecar upgrades to
// the compressed v2 format in place).
func (d *durable) fillSegment(g *segment, name string, blocks []*chain.Block) {
	upgraded := false
	if idx, err := d.fs.ReadFile(join(d.dir, idxFileName(name))); err == nil {
		dec, c, derr := decodeIdxFile(idx, blocks, d.indexRewards)
		if derr == nil {
			adoptSegment(g, dec, c)
			return
		}
		upgraded = errors.Is(derr, errLegacySidecar)
	}
	built := buildSegment(blocks, d.indexRewards)
	c := computeSegAgg(blocks)
	adoptSegment(g, built, c)
	d.noteSidecarRebuild(upgraded)
	d.fs.Remove(join(d.dir, idxFileName(name))) // best effort
	writeFileAtomic(d.fs, join(d.dir, idxFileName(name)), encodeIdxFile(built, c, d.indexRewards))
}

// adoptSegment copies src's load-derived fields into the stub g. The
// writes happen inside the stub's Once, before done publishes them.
func adoptSegment(g, src *segment, c *segAgg) {
	g.blocks = src.blocks
	g.fromTime, g.toTime = src.fromTime, src.toTime
	g.txns = src.txns
	g.mix = src.mix
	g.byType = src.byType
	g.byActor = src.byActor
	g.shared = src.shared
	g.agg = c
}

// quarantineFile moves a damaged segment file (and its sidecar) into
// the quarantine/ subdirectory and records the lost range as a Gap.
func (d *durable) quarantineFile(name string, from, to int64, cause error) {
	qdir := join(d.dir, "quarantine")
	d.fs.MkdirAll(qdir)
	d.fs.Rename(join(d.dir, name), join(qdir, name))
	idx := idxFileName(name)
	d.fs.Rename(join(d.dir, idx), join(qdir, idx))
	d.noteQuarantine(Gap{From: from, To: to},
		&PersistError{Op: "load " + name + " (quarantined)", Err: cause})
}

// Repair closes the store's gaps by re-ingesting the missing heights
// from a source chain, republishing their segment files. Blocks the
// store already holds are never touched. It returns the first persist
// error; unrepairable gaps (heights the chain does not cover) remain
// reported.
//
// Repair first forces every lazy load, so damage not yet discovered by
// queries is found and closed in the same pass, and broken stubs are
// swept out of the segment list before their ranges are refilled.
func (s *Store) Repair(c *chain.Chain) error {
	s.Preload()
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dur
	if d == nil {
		return nil
	}
	gaps := d.gapList()
	if len(gaps) == 0 {
		return nil
	}
	// Sweep broken stubs. Readers hold lock-free snapshots of the old
	// slice, so it is replaced, never edited in place. Broken stubs are
	// always inside the persisted prefix (they exist because a file
	// did), so the prefix shrinks with them.
	removed := 0
	for _, g := range s.sealed {
		if g.broken() {
			removed++
		}
	}
	if removed > 0 {
		kept := make([]*segment, 0, len(s.sealed)-removed)
		for _, g := range s.sealed {
			if !g.broken() {
				kept = append(kept, g)
			}
		}
		s.sealed = kept
		d.persisted -= removed
		s.first, s.tip = -1, -1
		if len(s.sealed) > 0 {
			s.first = s.sealed[0].from
			s.tip = s.sealed[len(s.sealed)-1].to
		}
		if n := len(s.pending); n > 0 {
			if s.first < 0 {
				s.first = s.pending[0].Height
			}
			s.tip = s.pending[n-1].Height
		}
	}

	s.ledger = c.Ledger()
	var firstErr error
	var remaining []Gap
	for _, gap := range gaps {
		to := gap.To
		if to < 0 {
			to = c.Height()
		}
		var missing []*chain.Block
		for _, b := range c.BlocksFrom(gap.From - 1) {
			if b.Height > to {
				break
			}
			if !s.coveredLocked(b.Height) {
				missing = append(missing, b)
			}
		}
		if len(missing) == 0 {
			if gap.To >= 0 && c.Height() < gap.To {
				// The chain cannot vouch for this range; keep reporting.
				remaining = append(remaining, gap)
				if firstErr == nil {
					firstErr = fmt.Errorf("etl: repair: chain tip %d below gap [%d,%d]", c.Height(), gap.From, gap.To)
				}
			}
			continue
		}
		if err := s.repairRunLocked(missing); err != nil {
			remaining = append(remaining, gap)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	d.replaceGaps(remaining)
	// Middle-gap repairs append their close points out of order.
	sort.Slice(s.agg.Closes, func(i, j int) bool { return s.agg.Closes[i].Height < s.agg.Closes[j].Height })
	if firstErr == nil {
		// The store is whole again; clear the quarantine-time note.
		d.setPersistErr(nil)
	}
	s.grown.Broadcast()
	return firstErr
}

// repairRunLocked reinstates one run of missing blocks. Blocks beyond
// the tip go through the normal append path (WAL, then seal); blocks
// filling a middle gap become a sealed segment published immediately.
func (s *Store) repairRunLocked(blocks []*chain.Block) error {
	if blocks[0].Height > s.tip {
		for _, b := range blocks {
			if err := s.appendLocked(b); err != nil {
				return err
			}
		}
		return nil
	}
	g := buildSegment(blocks, s.cfg.IndexRewardEntries)
	g.aggFolded = true // folded right below; born materialized
	if err := s.dur.writeSegment(g, s.cfg.IndexRewardEntries); err != nil {
		return &PersistError{Op: "repair segment " + segFileName(g.from, g.to), Err: err}
	}
	i := sort.Search(len(s.sealed), func(i int) bool { return s.sealed[i].from > g.from })
	s.sealed = append(s.sealed, nil)
	copy(s.sealed[i+1:], s.sealed[i:])
	s.sealed[i] = g
	// The inserted segment is on disk, and unpersisted segments are
	// always the newest (the slice tail), so the persisted prefix grows.
	s.dur.persisted++
	s.agg.addSegment(g, computeSegAgg(blocks))
	if s.first < 0 || g.from < s.first {
		s.first = g.from
	}
	if g.to > s.tip {
		s.tip = g.to
	}
	return nil
}

// coveredLocked reports whether the store holds a block at height h.
// Stubs load on probe; a broken stub covers nothing.
func (s *Store) coveredLocked(h int64) bool {
	i := sort.Search(len(s.sealed), func(i int) bool { return s.sealed[i].to >= h })
	if i < len(s.sealed) && s.sealed[i].from <= h && s.sealed[i].load() {
		blks := s.sealed[i].blocks
		j := sort.Search(len(blks), func(j int) bool { return blks[j].Height >= h })
		if j < len(blks) && blks[j].Height == h {
			return true
		}
	}
	j := sort.Search(len(s.pending), func(j int) bool { return s.pending[j].Height >= h })
	return j < len(s.pending) && s.pending[j].Height == h
}

// ReplayLedger rebuilds ledger state by replaying stored blocks
// through a ledger — the durable analogue of ReadChain's replay — and
// attaches it to the store for the View's balance queries. Queries
// that only touch indexes and aggregates don't need it, which is why
// Open leaves the ledger unset.
//
// A durable store resumes from its ledger checkpoint when one is
// present and sound, replaying only blocks past it — O(tail) instead
// of O(chain); any checkpoint damage falls back to a full replay
// (Health.CheckpointNote says which happened). After a healthy replay
// that advanced past the checkpoint, a fresh checkpoint is written at
// the sealed boundary, so the next restart pays only for the pending
// tail.
func (s *Store) ReplayLedger() (*chain.Ledger, error) {
	s.mu.RLock()
	d := s.dur
	s.mu.RUnlock()

	l := chain.NewLedger()
	from := int64(-1) // blocks at or below this height are in l already
	ckptUsed := int64(-1)
	var note string
	if d != nil {
		note = "no checkpoint, full replay"
		h, snap, err := d.readCheckpoint()
		switch {
		case err != nil:
			note = "checkpoint unusable, full replay: " + err.Error()
		case h < 0:
			// No checkpoint file; the zero-value note stands.
		default:
			lck, serr := chain.LedgerFromSnapshot(snap)
			if serr != nil {
				note = "checkpoint snapshot undecodable, full replay: " + serr.Error()
			} else if tip := s.Height(); h > tip {
				note = fmt.Sprintf("checkpoint height %d beyond tip %d, full replay", h, tip)
			} else {
				l, from, ckptUsed = lck, h, h
				note = fmt.Sprintf("replayed from checkpoint at height %d", h)
			}
		}
	}

	var firstErr error
	apply := func(b *chain.Block) bool {
		for i, t := range b.Txns {
			if err := l.ApplyTxn(t, b.Height); err != nil {
				firstErr = fmt.Errorf("etl: replay block %d txn %d (%s): %w", b.Height, i, t.TxnType(), err)
				return false
			}
		}
		return true
	}

	sealed, pending := s.view()
	healthy := true
	lastSealed := int64(-1)
	for _, g := range sealed {
		if g.to <= from {
			// Fully covered by the checkpoint: the segment is not even
			// loaded — the heart of the O(tail) restart.
			lastSealed = g.to
			continue
		}
		if !g.load() {
			healthy = false
			continue
		}
		for _, b := range g.blocks {
			if b.Height <= from {
				continue
			}
			if !apply(b) {
				return nil, firstErr
			}
		}
		lastSealed = g.to
	}

	// Advance the checkpoint to the sealed boundary — but only when
	// this replay saw a complete store. A gap or failed load means l is
	// missing transactions; persisting it would bake the hole into
	// every future restart, where leaving the old checkpoint (or none)
	// keeps the fallback path honest.
	if d != nil && healthy && lastSealed > from && len(d.gapList()) == 0 {
		if err := d.writeCheckpoint(lastSealed, l.Snapshot()); err == nil {
			ckptUsed = lastSealed
			note += fmt.Sprintf("; checkpoint advanced to height %d", lastSealed)
		} else {
			note += "; checkpoint write failed: " + err.Error()
		}
	}
	if d != nil {
		d.setCheckpoint(ckptUsed, note)
	}

	for _, b := range pending {
		if b.Height <= from {
			continue
		}
		if !apply(b) {
			return nil, firstErr
		}
	}
	s.SetLedger(l)
	return l, nil
}

// Close flushes the durable state and releases the WAL handle. The
// store stays queryable; only further appends need a reopen. Close on
// a memory-only store is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dur
	if d == nil {
		return nil
	}
	var err error
	if d.persistFailure() != nil || d.wal.dirty {
		err = s.syncDiskLocked()
	}
	d.wal.close()
	return err
}
