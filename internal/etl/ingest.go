package etl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"peoplesnet/internal/chain"
)

// ErrStaleHeight reports an Append at or below the store's tip. The
// store is append-only and never silently skips: callers replaying a
// source must filter by Height() first or treat this as permanent.
var ErrStaleHeight = errors.New("etl: block height not beyond tip")

// Append ingests one block. Heights must be strictly increasing
// (sparse is fine, matching the chain's contract). Blocks are shared,
// not copied — they are immutable once minted.
//
// For a durable store the block is written to the WAL and fsynced
// before it is accepted; a *PersistError return means the store is
// unchanged and the same block may be retried once the fault clears.
func (s *Store) Append(b *chain.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(b)
}

func (s *Store) appendLocked(b *chain.Block) error {
	if b.Height <= s.tip {
		return fmt.Errorf("%w: block %d not beyond tip %d", ErrStaleHeight, b.Height, s.tip)
	}
	if s.dur != nil {
		if err := s.durAppendLocked(b); err != nil {
			return err
		}
	}
	if s.first < 0 {
		s.first = b.Height
	}
	s.tip = b.Height
	s.pending = append(s.pending, b)
	s.pendingTxns += int64(len(b.Txns))
	for _, t := range b.Txns {
		s.agg.observe(b.Height, t)
	}
	s.lastAppend = time.Now()
	if len(s.pending) >= s.cfg.SegmentBlocks {
		s.sealLocked()
	}
	s.grown.Broadcast()
	return nil
}

// sealLocked indexes the pending buffer into a sealed segment. Caller
// holds s.mu and guarantees pending is non-empty. A durable store
// publishes the segment and shrinks the WAL; publish failures are
// absorbed (the blocks stay WAL-durable) and retried later.
func (s *Store) sealLocked() {
	g := buildSegment(s.pending, s.cfg.IndexRewardEntries)
	// The pending blocks were observed at append time, so this
	// segment's contribution is already in the aggregates.
	g.aggFolded = true
	s.sealed = append(s.sealed, g)
	s.pending = nil
	s.pendingTxns = 0
	if s.dur != nil {
		s.durSealLocked()
	}
}

// BulkLoad ingests every block of c beyond the store's tip and adopts
// the chain's ledger. The final partial segment is sealed too, so the
// whole loaded history is indexed. Calling it again after the chain
// has grown ingests only the new suffix.
func (s *Store) BulkLoad(c *chain.Chain) error {
	s.SetLedger(c.Ledger())
	for _, b := range c.BlocksFrom(s.Height()) {
		if err := s.Append(b); err != nil {
			return err
		}
	}
	s.mu.Lock()
	if len(s.pending) > 0 {
		s.sealLocked()
	}
	s.mu.Unlock()
	return nil
}

// Follower streams a live chain into a store from a goroutine. It
// catches up from the store's tip, then ingests each appended block
// as the chain signals it.
type Follower struct {
	s       *Store
	c       *chain.Chain
	cancel  func()
	done    chan struct{}
	stop    chan struct{} // closed by Close; interrupts retry backoff
	backoff *Backoff
	once    sync.Once

	mu  sync.Mutex
	err error
}

// Transient persistence faults back off and retry rather than killing
// a live tail; the source chain retains every block, so a retried
// ingest loses nothing. Anything else (a stale height, a closed
// store) is permanent. Delays are jittered and capped (Backoff) so a
// cluster of followers tripping over the same fault does not retry in
// lock-step.
const (
	followerMaxRetries = 8
	followerBaseDelay  = time.Millisecond
	followerMaxDelay   = 200 * time.Millisecond
)

// FollowChain attaches a follower to a live chain. The returned
// Follower ingests concurrently with the chain's producer until
// Close is called. The store adopts the chain's ledger.
func (s *Store) FollowChain(c *chain.Chain) *Follower {
	s.SetLedger(c.Ledger())
	notify, cancel := c.Subscribe()
	f := &Follower{s: s, c: c, cancel: cancel, done: make(chan struct{}), stop: make(chan struct{}),
		backoff: NewBackoff(followerBaseDelay, followerMaxDelay)}
	go f.run(notify)
	return f
}

func (f *Follower) run(notify <-chan struct{}) {
	defer close(f.done)
	// Catch-up pass; the subscription was registered first, so any
	// block appended during it leaves a pending signal.
	if !f.drain() {
		return
	}
	for range notify {
		if !f.drain() {
			return
		}
	}
}

func (f *Follower) drain() bool {
	for _, b := range f.c.BlocksFrom(f.s.Height()) {
		if err := f.ingest(b); err != nil {
			f.mu.Lock()
			f.err = err
			f.mu.Unlock()
			return false
		}
	}
	return true
}

// ingest appends one block, retrying transient persistence faults
// with capped, jittered exponential backoff. Close interrupts the
// backoff; each retry is counted on the store's health surface.
func (f *Follower) ingest(b *chain.Block) error {
	for attempt := 0; ; attempt++ {
		err := f.s.Append(b)
		var pe *PersistError
		if err == nil || !errors.As(err, &pe) || attempt >= followerMaxRetries {
			return err
		}
		f.s.NoteIngestRetry()
		select {
		case <-f.stop:
			return err
		case <-time.After(f.backoff.Delay(attempt)):
		}
	}
}

// Close stops following, ingests any final suffix, and waits for the
// follower goroutine to exit. It returns the first ingest error, if
// any. Close is idempotent.
func (f *Follower) Close() error {
	f.once.Do(func() {
		close(f.stop) // unblock any retry backoff
		f.cancel()    // closes the notify channel; run drains and exits
		<-f.done
		if f.Err() == nil {
			f.drain() // blocks appended after the last signal we saw
		}
	})
	return f.Err()
}

// Err returns the first ingest error encountered, if any.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
