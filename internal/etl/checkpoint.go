package etl

// Ledger checkpointing. ReplayLedger on a v1 store replayed every
// stored block — O(chain) on every restart. v2 persists a checksummed
// snapshot of the replayed ledger (chain.Ledger.Snapshot) at the
// sealed boundary, so the next replay decodes the snapshot and applies
// only the blocks past it: O(tail), not O(chain).
//
// The checkpoint is advisory: any damage — bad magic, bad frame, a
// snapshot that fails to decode, a height beyond the store's tip —
// falls back to a full replay and is reported through Health's
// CheckpointNote, never an error. A checkpoint is only ever written
// when the replay saw a complete, healthy store (no gaps, no failed
// segment loads), so resuming from one can never bake in missing
// blocks.

import (
	"errors"
	"fmt"

	"peoplesnet/internal/wire"
)

const (
	ckptMagic        = "PNETLCK1"
	ckptCodecVersion = 1
	ckptFileName     = "ledger.ckpt"
)

// encodeCheckpoint serializes a checkpoint: the height the snapshot
// covers (every block at or below it is folded in) and the snapshot
// itself, in one checksummed frame.
func encodeCheckpoint(height int64, snapshot []byte) []byte {
	var w wire.Writer
	w.U8(ckptCodecVersion)
	w.Varint(height)
	w.Bytes(snapshot)
	return appendFrame([]byte(ckptMagic), w.Buf)
}

// decodeCheckpoint parses a checkpoint file. The returned snapshot
// aliases data. It never panics on arbitrary input
// (FuzzDecodeCheckpoint) — any damage is an error, which the caller
// treats as "replay everything".
func decodeCheckpoint(data []byte) (int64, []byte, error) {
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, errors.New("bad checkpoint magic")
	}
	payload, rest, err := readFrame(data[len(ckptMagic):])
	if err != nil {
		return 0, nil, fmt.Errorf("checkpoint frame: %w", err)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%d trailing bytes after checkpoint frame", len(rest))
	}
	r := wire.NewReader(payload)
	if v := r.U8(); r.Err() == nil && v != ckptCodecVersion {
		return 0, nil, fmt.Errorf("unknown checkpoint version %d", v)
	}
	height := r.Varint()
	snapshot := r.Bytes()
	if r.Err() != nil {
		return 0, nil, r.Err()
	}
	if r.Remaining() != 0 {
		return 0, nil, fmt.Errorf("%d trailing bytes in checkpoint payload", r.Remaining())
	}
	if height < 0 {
		return 0, nil, fmt.Errorf("negative checkpoint height %d", height)
	}
	return height, snapshot, nil
}

// readCheckpoint loads the store's checkpoint. A missing file is
// (-1, nil, nil): no checkpoint, not an error.
func (d *durable) readCheckpoint() (int64, []byte, error) {
	data, err := d.fs.ReadFile(join(d.dir, ckptFileName))
	if err != nil {
		if IsNotExist(err) {
			return -1, nil, nil
		}
		return 0, nil, err
	}
	return decodeCheckpoint(data)
}

// writeCheckpoint atomically publishes a checkpoint; a crash mid-write
// leaves the previous one (or none) intact.
func (d *durable) writeCheckpoint(height int64, snapshot []byte) error {
	return writeFileAtomic(d.fs, join(d.dir, ckptFileName), encodeCheckpoint(height, snapshot))
}
