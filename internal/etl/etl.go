// Package etl is the indexing layer between the chain and the
// analysis engine — the stand-in for the DeWi ETL service whose
// Postgres replica every query in the paper actually ran against
// (the paper never scanned raw blocks; §3's footnote credits the
// community ETL for all chain data).
//
// A Store ingests blocks — either bulk-loading a finished chain or
// following a live one as the simulator produces blocks — into an
// append-only sequence of sealed segments plus a small pending buffer.
// Each sealed segment carries secondary indexes over its blocks:
//
//   - per-transaction-type posting lists (§3 txn-mix queries, the
//     Fig 5/7/8 single-type scans),
//   - per-actor posting lists (hotspot address or wallet → its txn
//     timeline, the §4.3 balance-history inference),
//   - a height↔time range index (segment and block granularity).
//
// On top of the segments the store maintains incremental materialized
// aggregates for the hot analyses (transaction mix, location asserts
// per hotspot, transfers, state-channel closes, adds per day), so a
// repeated query costs O(answer) instead of O(chain), and appending N
// blocks then re-querying costs O(N).
//
// Queries run through Scan (ordered, single goroutine) or
// ScanParallel (a worker pool over segments); Follow returns a tail
// subscription that replays history and then streams live blocks. The
// View adapter satisfies internal/core's ChainView, so every existing
// analysis resolves through the indexes unchanged.
package etl

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"peoplesnet/internal/chain"
)

// DefaultSegmentBlocks is the seal threshold. Simulated worlds mint
// one (large) block per simulated day — ~667 blocks for the paper's
// window — so 64-block segments yield enough units for a worker pool
// while keeping the linearly-scanned pending buffer small. Real
// minute-granularity chains would raise this.
const DefaultSegmentBlocks = 64

// Config parameterizes a Store. The zero value is usable: it means
// DefaultSegmentBlocks and memory-lean reward indexing.
type Config struct {
	// SegmentBlocks is how many blocks a segment holds before it is
	// sealed (and indexed). 0 means DefaultSegmentBlocks.
	SegmentBlocks int
	// IndexRewardEntries controls whether rewards transactions are
	// posted under every entry's account and gateway. A paper-scale
	// chain mints to tens of thousands of accounts per epoch, so full
	// reward fan-out costs hundreds of MB; when false (the default),
	// rewards land on a per-segment shared list and actor queries
	// filter them by inspecting entries — exact either way.
	IndexRewardEntries bool
	// FS is the filesystem a durable store (Open) drives. nil means
	// the host filesystem; tests inject internal/faultfs here. Memory
	// stores (New, FromChain) ignore it.
	FS FS
}

// Store is the indexed block store. One goroutine may ingest
// (Append/BulkLoad or a Follower) concurrently with any number of
// readers; sealed segments are immutable, and all mutable state is
// guarded by mu.
type Store struct {
	cfg Config

	mu     sync.RWMutex
	grown  *sync.Cond // broadcast after every Append; tails wait on it
	ledger *chain.Ledger
	sealed []*segment
	// pending holds blocks of the yet-unsealed segment; queries scan
	// it linearly (it is at most SegmentBlocks long).
	pending     []*chain.Block
	pendingTxns int64
	first, tip  int64 // block heights; -1 while empty
	agg         *aggregates
	// aggPending counts sealed segments whose aggregate contribution
	// is not yet folded into agg. A lazy Open owes one fold per stub;
	// ensureAgg settles the debt before any aggregate is read.
	aggPending int
	lastAppend time.Time
	// dur is the persistence state; nil for a memory-only store.
	dur *durable
	// ingestRetries counts transient persist faults retried by whatever
	// feeds this store (Follower, fed nodes) — cumulative, never reset,
	// surfaced in Health so operators can see a flapping disk before it
	// becomes a crash.
	ingestRetries atomic.Int64
}

// NoteIngestRetry counts one retried transient persist fault against
// the store's health surface. Callers that retry *PersistError (the
// chain Follower, federation shard nodes) call it once per retry.
func (s *Store) NoteIngestRetry() { s.ingestRetries.Add(1) }

// IngestRetries reports the cumulative retried-fault count.
func (s *Store) IngestRetries() int64 { return s.ingestRetries.Load() }

// New returns an empty store.
func New(cfg Config) *Store {
	if cfg.SegmentBlocks <= 0 {
		cfg.SegmentBlocks = DefaultSegmentBlocks
	}
	s := &Store{cfg: cfg, first: -1, tip: -1, agg: newAggregates()}
	s.grown = sync.NewCond(&s.mu)
	return s
}

// FromChain bulk-loads a finished chain into a fresh store with the
// default configuration, sharing the chain's ledger.
func FromChain(c *chain.Chain) *Store {
	s := New(Config{})
	s.BulkLoad(c)
	return s
}

// SetLedger attaches the replayed ledger state the View serves.
// BulkLoad and FollowChain call this with the source chain's ledger.
func (s *Store) SetLedger(l *chain.Ledger) {
	s.mu.Lock()
	s.ledger = l
	s.mu.Unlock()
}

// ensureAgg folds every outstanding sealed-segment contribution into
// the live aggregates. Aggregate reads call it first, so a lazily
// opened store materializes on the first aggregate query rather than
// at Open; the common case (nothing pending) is one RLock.
func (s *Store) ensureAgg() {
	s.mu.RLock()
	pending := s.aggPending
	sealed := s.sealed
	s.mu.RUnlock()
	if pending == 0 {
		return
	}
	// Load outside the lock — loads do file I/O and take no store
	// locks — then fold under it. aggFolded makes the fold idempotent
	// against a racing ensureAgg.
	preloadSegments(sealed)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.sealed {
		if g.aggFolded {
			continue
		}
		g.aggFolded = true
		s.aggPending--
		if g.broken() || g.agg == nil {
			continue // nothing to fold; the range is a Gap
		}
		s.agg.addSegment(g, g.agg)
	}
	// Folds land in segment order but after any WAL-tail observations
	// from Open, so the close-point series needs one re-sort.
	sort.SliceStable(s.agg.Closes, func(i, j int) bool {
		return s.agg.Closes[i].Height < s.agg.Closes[j].Height
	})
}

// Preload forces every lazy segment to materialize and folds all
// aggregate contributions — the v1 eager-open behavior, for callers
// that prefer paying the full load up front (Repair does, so damage
// anywhere is discovered in one pass).
func (s *Store) Preload() {
	sealed, _ := s.view()
	preloadSegments(sealed)
	s.ensureAgg()
}

// Stats summarizes the store's shape.
type Stats struct {
	Blocks        int64
	Txns          int64
	Segments      int
	PendingBlocks int
	FirstHeight   int64
	TipHeight     int64
	// TypePostings / ActorPostings count index entries across sealed
	// segments; SharedPostings counts rewards parked on shared lists.
	TypePostings   int64
	ActorPostings  int64
	SharedPostings int64
	// PostingsBytes is the encoded size of every posting list — the
	// compressed index footprint benchmarks and bench-trend track.
	PostingsBytes int64
}

// Stats reports the current store shape. It forces full
// materialization (posting sizes live in segment indexes).
func (s *Store) Stats() Stats {
	s.Preload()
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		PendingBlocks: len(s.pending),
		FirstHeight:   s.first,
		TipHeight:     s.tip,
		Txns:          s.agg.txnCount,
		Blocks:        int64(len(s.pending)),
	}
	for _, g := range s.sealed {
		if g.broken() {
			continue
		}
		st.Segments++
		st.Blocks += int64(len(g.blocks))
		for _, ps := range g.byType {
			st.TypePostings += int64(ps.n)
			st.PostingsBytes += int64(ps.bytes())
		}
		for _, ps := range g.byActor {
			st.ActorPostings += int64(ps.n)
			st.PostingsBytes += int64(ps.bytes())
		}
		if g.shared != nil {
			st.SharedPostings += int64(g.shared.n)
			st.PostingsBytes += int64(g.shared.bytes())
		}
	}
	return st
}

// SegmentInfo describes one sealed segment for the range index.
type SegmentInfo struct {
	FromHeight int64 `json:"from_height"`
	ToHeight   int64 `json:"to_height"`
	Blocks     int   `json:"blocks"`
	Txns       int   `json:"txns"`
	// Loaded reports whether the segment is materialized in memory;
	// false for stubs no query has touched yet. Blocks and Txns are 0
	// until then (only the height range is known from the file name).
	Loaded bool `json:"loaded"`
}

// Segments lists the sealed segments in height order. It never forces
// a load — unloaded stubs report only their height range.
func (s *Store) Segments() []SegmentInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SegmentInfo, len(s.sealed))
	for i, g := range s.sealed {
		info := SegmentInfo{FromHeight: g.from, ToHeight: g.to}
		if g.loaded() && !g.broken() {
			info.Blocks = len(g.blocks)
			info.Txns = int(g.txns)
			info.Loaded = true
		}
		out[i] = info
	}
	return out
}
