package etl

import (
	"bytes"
	"testing"

	"peoplesnet/internal/chain"
)

// FuzzPostingRoundTrip drives the compressed posting codec from both
// sides: a sorted position sequence derived from the input must
// survive encode → iterate bit-exactly, and arbitrary bytes posing as
// an encoded list must never panic — iteration terminates and
// validate rejects, matching the sidecar trust boundary.
func FuzzPostingRoundTrip(f *testing.F) {
	f.Add([]byte{}, true)
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3}, true)
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3, 3}, false)
	f.Add([]byte{5, 0, 0, 7, 255, 255, 9, 9}, true)
	f.Fuzz(func(t *testing.T, data []byte, typed bool) {
		// Derive a strictly increasing (blk, txn) sequence: even first
		// bytes advance within the block, odd ones jump blocks.
		var want []pos
		blk, txn := int32(0), int32(-1)
		for i := 0; i+1 < len(data) && len(want) < 1<<12; i += 2 {
			a, b := data[i], data[i+1]
			if a%2 == 0 {
				txn += int32(b) + 1
			} else {
				blk += int32(a)
				txn = int32(b)
			}
			var tt chain.TxnType
			if typed {
				tt = chain.TxnType(b % 8)
			}
			want = append(want, pos{blk: blk, txn: txn, tt: tt})
		}
		p := &postings{typed: typed}
		for _, q := range want {
			p.add(q.blk, q.txn, q.tt)
		}
		if p.n != len(want) {
			t.Fatalf("encoder counted %d postings, added %d", p.n, len(want))
		}
		it := p.iter(0)
		for i, q := range want {
			got, ok := it.next()
			if !ok {
				t.Fatalf("iterator ended at posting %d of %d", i, len(want))
			}
			if got != q {
				t.Fatalf("posting %d decoded as (%d,%d,%v), want (%d,%d,%v)",
					i, got.blk, got.txn, got.tt, q.blk, q.txn, q.tt)
			}
		}
		if got, ok := it.next(); ok {
			t.Fatalf("iterator produced posting (%d,%d) past the %d encoded", got.blk, got.txn, len(want))
		}

		// Hostile side: the fuzz input itself as a list buffer. Every
		// decoded posting consumes at least two bytes, so the iterator
		// is bounded; validate must reject without panicking (no blocks
		// means any entry is out of bounds).
		hostile := &postings{n: len(data), typed: typed, buf: data}
		hit := hostile.iter(chain.TxnPayment)
		for i := 0; ; i++ {
			if _, ok := hit.next(); !ok {
				break
			}
			if i > len(data) {
				t.Fatal("hostile iterator yielded more postings than input bytes")
			}
		}
		if err := hostile.validate(nil, chain.TxnPayment); err == nil && len(data) > 0 {
			t.Fatal("validate accepted a non-empty list against zero blocks")
		}
	})
}

// FuzzDecodeCheckpoint asserts the checkpoint decoder never panics on
// arbitrary bytes and that anything it accepts is usable: the embedded
// ledger snapshot either fails to decode (full-replay fallback) or
// reaches a byte-stable fixed point under re-encoding.
func FuzzDecodeCheckpoint(f *testing.F) {
	l := chain.NewLedger()
	f.Add(encodeCheckpoint(0, l.Snapshot()))
	l.CreditHNT("fuzz-owner", 1_234_567)
	l.CreditDC("fuzz-router", 99)
	l.SetOraclePrice(1.25)
	f.Add(encodeCheckpoint(4096, l.Snapshot()))
	f.Add([]byte{})
	f.Add([]byte(ckptMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		height, snap, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		if height < 0 {
			t.Fatalf("decoder accepted negative checkpoint height %d", height)
		}
		lgr, err := chain.LedgerFromSnapshot(snap)
		if err != nil {
			return // intact frame, garbage snapshot: the caller replays in full
		}
		s2 := lgr.Snapshot()
		lgr2, err := chain.LedgerFromSnapshot(s2)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if s3 := lgr2.Snapshot(); !bytes.Equal(s2, s3) {
			t.Fatal("ledger snapshot is not a fixed point under re-encoding")
		}
		h2, snap2, err := decodeCheckpoint(encodeCheckpoint(height, s2))
		if err != nil {
			t.Fatalf("re-encoded checkpoint failed to decode: %v", err)
		}
		if h2 != height || !bytes.Equal(snap2, s2) {
			t.Fatalf("checkpoint round trip changed content: height %d vs %d", h2, height)
		}
	})
}
