package etl

// On-disk formats for the durable store. A store directory holds:
//
//	seg-<from>-<to>.seg   sealed segment: the blocks themselves
//	seg-<from>-<to>.idx   index sidecar: posting lists + the segment's
//	                      contribution to the materialized aggregates
//	wal.log               write-ahead log holding the unsealed tail
//	ledger.ckpt           replayed-ledger checkpoint (checkpoint.go)
//	quarantine/           corrupt files moved aside by recovery
//
// Every file is a magic string followed by checksummed frames:
//
//	[u32 len][u32 hcrc][u32 pcrc][payload]
//
// pcrc covers the payload; hcrc covers len and pcrc, so a flipped bit
// in the length field is caught before it misdirects the parse. All
// integers are little-endian; payloads use internal/wire primitives
// and chain.EncodeBlock.
//
// Publication is always write-tmp → fsync → rename, so a reader never
// sees a partially written segment or sidecar. The WAL is the one
// append-in-place file; its recovery semantics live in wal.go.
//
// Crash-ordering contract for a seal: segment file is published, then
// its sidecar, then the WAL is reset to the (now empty) pending tail.
// Recovery therefore handles every intermediate state: a segment with
// no sidecar rebuilds the sidecar from its blocks; a WAL still holding
// blocks that a segment file also covers dedupes them by height.
//
// Sidecar versions: v1 stored posting lists as absolute uvarint pairs;
// v2 stores them delta+varint-compressed (postings.go). A v1 sidecar
// is upgraded in place — rebuilt from its (unchanged, still-v1-format)
// segment blocks and republished as v2 — the first time its segment
// loads. Segment files and the WAL are unversioned by this change.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/wire"
)

const (
	walMagic = "PNETLWL1"
	segMagic = "PNETLSG1"
	idxMagic = "PNETLIX1"

	segCodecVersion       = 1
	idxCodecVersion       = 2
	idxLegacyCodecVersion = 1

	walFileName = "wal.log"
	tmpSuffix   = ".tmp"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PersistError wraps a failed store write. An Append that returns a
// *PersistError left the store's accepted state untouched: the same
// block may be retried once the underlying fault clears, which is what
// the Follower's backoff loop does.
type PersistError struct {
	Op  string
	Err error
}

func (e *PersistError) Error() string { return "etl: persist " + e.Op + ": " + e.Err.Error() }
func (e *PersistError) Unwrap() error { return e.Err }

// frame errors classify what a bad frame means. A torn frame is a
// write that never finished — the tail a crash leaves — and is safe to
// drop because the store never acknowledged it. A corrupt frame fails
// its checksum despite being structurally complete: acknowledged data
// has been damaged, and dropping it is data loss that must be reported.
var (
	errFrameTorn    = errors.New("torn frame")
	errFrameCorrupt = errors.New("corrupt frame")
)

// errLegacySidecar marks a structurally sound v1 sidecar: not damage,
// but a format the store upgrades in place by rebuilding from blocks.
var errLegacySidecar = errors.New("legacy v1 sidecar")

// appendFrame appends one checksummed frame holding payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, castagnoli))
	h := crc32.Checksum(hdr[0:4], castagnoli)
	h = crc32.Update(h, castagnoli, hdr[8:12])
	binary.LittleEndian.PutUint32(hdr[4:], h)
	return append(append(dst, hdr[:]...), payload...)
}

// readFrame consumes one frame from data. A short or checksum-failing
// frame returns errFrameTorn or errFrameCorrupt; the distinction
// drives recovery (truncate silently vs. report a gap). Because frames
// are written front-to-back in single Write calls, a crash can only
// leave a *prefix* of a frame — if the 12 header bytes are present and
// self-consistent, the length is trustworthy and a short payload means
// the crash hit mid-payload; a checksum mismatch on complete bytes can
// only be damage to previously acknowledged data.
func readFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < 12 {
		return nil, nil, errFrameTorn
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	hcrc := binary.LittleEndian.Uint32(data[4:8])
	pcrc := binary.LittleEndian.Uint32(data[8:12])
	h := crc32.Checksum(data[0:4], castagnoli)
	h = crc32.Update(h, castagnoli, data[8:12])
	if h != hcrc {
		return nil, nil, errFrameCorrupt
	}
	if uint64(len(data)-12) < uint64(n) {
		return nil, nil, errFrameTorn
	}
	payload = data[12 : 12+int(n)]
	if crc32.Checksum(payload, castagnoli) != pcrc {
		return nil, nil, errFrameCorrupt
	}
	return payload, data[12+int(n):], nil
}

// --- file naming ----------------------------------------------------------

func segFileName(from, to int64) string {
	return fmt.Sprintf("seg-%016x-%016x.seg", uint64(from), uint64(to))
}

func idxFileName(segName string) string {
	return strings.TrimSuffix(segName, ".seg") + ".idx"
}

// parseSegFileName extracts the height range a segment file claims to
// cover. Lazy open trusts the name for the stub's range (contents are
// verified against it on first load), and the range in the name is
// what recovery reports as the gap when the contents are unreadable.
func parseSegFileName(name string) (from, to int64, ok bool) {
	var f, t uint64
	if _, err := fmt.Sscanf(name, "seg-%016x-%016x.seg", &f, &t); err != nil {
		return 0, 0, false
	}
	if name != segFileName(int64(f), int64(t)) || int64(f) > int64(t) || int64(f) < 0 {
		return 0, 0, false
	}
	return int64(f), int64(t), true
}

// --- durable state --------------------------------------------------------

// durable is the store's persistence state. persisted and the wal are
// guarded by the store's mu (only ingest and recovery touch them); the
// health/recovery fields are guarded by hmu, a leaf lock, because lazy
// segment loads mutate them from reader goroutines that hold no store
// lock. Lock order: s.mu (if held at all) before hmu; nothing is
// called while holding hmu.
type durable struct {
	fs  FS
	dir string
	wal *wal
	// indexRewards mirrors Config.IndexRewardEntries so lazy loads,
	// which run without the store in hand, rebuild sidecars under the
	// right policy. Immutable after Open.
	indexRewards bool

	// persisted counts the prefix of s.sealed already published as
	// segment files; segments past it are durable only through the WAL
	// until a retry succeeds. Lazy stubs are always inside the
	// persisted prefix — they exist because their files do.
	persisted int

	hmu              sync.Mutex
	persistErr       error  // guarded by hmu; last failed disk sync, retried on the next append
	quarantined      int    // guarded by hmu
	sidecarsRebuilt  int    // guarded by hmu; damaged/missing sidecars rebuilt from blocks
	sidecarsUpgraded int    // guarded by hmu; intact v1 sidecars republished as v2
	walRecovery      string // guarded by hmu; note from Open: torn/corrupt WAL classification
	gaps             []Gap  // guarded by hmu
	ckptHeight       int64  // guarded by hmu; ledger checkpoint height in use, -1 none
	ckptNote         string // guarded by hmu; how the last ReplayLedger used the checkpoint
}

// setPersistErr records (or clears) the last persistence failure.
func (d *durable) setPersistErr(err error) {
	d.hmu.Lock()
	d.persistErr = err
	d.hmu.Unlock()
}

// persistFailure returns the last recorded persistence failure.
func (d *durable) persistFailure() error {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	return d.persistErr
}

// noteQuarantine records one quarantined segment and its lost range.
func (d *durable) noteQuarantine(gap Gap, cause error) {
	d.hmu.Lock()
	d.quarantined++
	d.gaps = insertGap(d.gaps, gap)
	d.persistErr = cause
	d.hmu.Unlock()
}

// noteGap records a lost range not tied to a quarantined file (the
// corrupt-WAL open-ended gap).
func (d *durable) noteGap(gap Gap) {
	d.hmu.Lock()
	d.gaps = insertGap(d.gaps, gap)
	d.hmu.Unlock()
}

// insertGap keeps the gap list sorted by From, so concurrent lazy
// loads discovering damage in any order report the same Gaps.
func insertGap(gaps []Gap, g Gap) []Gap {
	i := sort.Search(len(gaps), func(i int) bool { return gaps[i].From > g.From })
	gaps = append(gaps, Gap{})
	copy(gaps[i+1:], gaps[i:])
	gaps[i] = g
	return gaps
}

// noteSidecarRebuild counts a sidecar reconstruction; upgraded
// distinguishes an intact legacy sidecar from a damaged one.
func (d *durable) noteSidecarRebuild(upgraded bool) {
	d.hmu.Lock()
	if upgraded {
		d.sidecarsUpgraded++
	} else {
		d.sidecarsRebuilt++
	}
	d.hmu.Unlock()
}

// setWALRecovery records Open's WAL damage classification.
func (d *durable) setWALRecovery(note string) {
	d.hmu.Lock()
	d.walRecovery = note
	d.hmu.Unlock()
}

// setCheckpoint records the ledger checkpoint state ReplayLedger used
// or wrote.
func (d *durable) setCheckpoint(height int64, note string) {
	d.hmu.Lock()
	d.ckptHeight = height
	d.ckptNote = note
	d.hmu.Unlock()
}

// gapList returns a copy of the recorded gaps.
func (d *durable) gapList() []Gap {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	return append([]Gap(nil), d.gaps...)
}

// replaceGaps swaps the recorded gap set (Repair's remainder).
func (d *durable) replaceGaps(gaps []Gap) {
	d.hmu.Lock()
	d.gaps = gaps
	d.hmu.Unlock()
}

// Gap is a height range the store lost to corruption and cannot serve.
// To == -1 means open-ended: the tail of the log was damaged and the
// true end is unknown. Repair closes gaps from a source chain.
type Gap struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// Health is a snapshot of the store's durability state.
type Health struct {
	Durable       bool   `json:"durable"`
	Dir           string `json:"dir,omitempty"`
	Segments      int    `json:"segments"`
	PendingBlocks int    `json:"pending_blocks"`
	// SegmentsLoaded counts segments materialized in memory; a lazily
	// opened store starts at 0 and climbs as queries touch segments.
	SegmentsLoaded   int   `json:"segments_loaded"`
	WALDepth         int   `json:"wal_depth"`
	WALBytes         int64 `json:"wal_bytes"`
	Quarantined      int   `json:"quarantined"`
	SidecarsRebuilt  int   `json:"sidecars_rebuilt"`
	SidecarsUpgraded int   `json:"sidecars_upgraded,omitempty"`
	Gaps             []Gap `json:"gaps,omitempty"`
	// IngestRetries counts transient persist faults the store's feeder
	// retried (cumulative); a climbing value on a "healthy" store is a
	// flapping disk.
	IngestRetries int64     `json:"ingest_retries,omitempty"`
	LastAppend    time.Time `json:"last_append,omitzero"`
	LastError     string    `json:"last_error,omitempty"`
	WALRecovery   string    `json:"wal_recovery,omitempty"`
	// CheckpointHeight is the ledger checkpoint height the last
	// ReplayLedger used or wrote (-1: none); CheckpointNote says how.
	CheckpointHeight int64  `json:"checkpoint_height"`
	CheckpointNote   string `json:"checkpoint_note,omitempty"`
}

// Health reports the store's durability state. For a memory-only store
// it carries just the shape counters. Broken segments — stubs whose
// lazy load failed — are excluded from Segments, matching the eager
// quarantine accounting: their ranges are in Gaps.
func (s *Store) Health() Health {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := Health{
		PendingBlocks:    len(s.pending),
		IngestRetries:    s.ingestRetries.Load(),
		LastAppend:       s.lastAppend,
		CheckpointHeight: -1,
	}
	for _, g := range s.sealed {
		if g.broken() {
			continue
		}
		h.Segments++
		if g.loaded() {
			h.SegmentsLoaded++
		}
	}
	if d := s.dur; d != nil {
		h.Durable = true
		h.Dir = d.dir
		h.WALDepth = d.wal.depth
		h.WALBytes = d.wal.size
		d.fillHealth(&h)
	}
	return h
}

// fillHealth copies the hmu-guarded durability fields into h.
func (d *durable) fillHealth(h *Health) {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	h.Quarantined = d.quarantined
	h.SidecarsRebuilt = d.sidecarsRebuilt
	h.SidecarsUpgraded = d.sidecarsUpgraded
	h.Gaps = append([]Gap(nil), d.gaps...)
	h.WALRecovery = d.walRecovery
	h.CheckpointHeight = d.ckptHeight
	h.CheckpointNote = d.ckptNote
	if d.persistErr != nil {
		h.LastError = d.persistErr.Error()
	}
}

// Gaps returns the height ranges lost to corruption, if any.
func (s *Store) Gaps() []Gap {
	s.mu.RLock()
	d := s.dur
	s.mu.RUnlock()
	if d == nil {
		return nil
	}
	return d.gapList()
}

// --- atomic file publish --------------------------------------------------

// writeFileAtomic publishes content at path via tmp+fsync+rename.
func writeFileAtomic(fsys FS, path string, content []byte) error {
	tmp := path + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(content); err != nil {
		_ = f.Close() // already failing; the write error wins
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // already failing; the sync error wins
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, path)
}

// --- segment files --------------------------------------------------------

// encodeSegFile serializes a sealed segment's blocks: magic, a header
// frame, then one frame per block.
func encodeSegFile(g *segment) []byte {
	var hdr wire.Writer
	hdr.U8(segCodecVersion)
	hdr.Varint(g.from)
	hdr.Varint(g.to)
	hdr.Uvarint(uint64(len(g.blocks)))
	buf := appendFrame([]byte(segMagic), hdr.Buf)
	var scratch []byte
	for _, b := range g.blocks {
		scratch = chain.EncodeBlock(scratch[:0], b)
		buf = appendFrame(buf, scratch)
	}
	return buf
}

// decodeSegFile parses a segment file back into its blocks. Any
// damage — bad magic, bad frame, undecodable block, heights that
// disagree with the claimed range — returns an error; the caller
// quarantines the file.
func decodeSegFile(data []byte, wantFrom, wantTo int64) ([]*chain.Block, error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, errors.New("bad segment magic")
	}
	payload, rest, err := readFrame(data[len(segMagic):])
	if err != nil {
		return nil, fmt.Errorf("segment header: %w", err)
	}
	r := wire.NewReader(payload)
	if v := r.U8(); r.Err() == nil && v != segCodecVersion {
		return nil, fmt.Errorf("unknown segment version %d", v)
	}
	from, to := r.Varint(), r.Varint()
	nblocks := r.Uvarint()
	if r.Err() != nil {
		return nil, fmt.Errorf("segment header: %w", r.Err())
	}
	if from != wantFrom || to != wantTo {
		return nil, fmt.Errorf("segment header range [%d,%d] disagrees with name [%d,%d]", from, to, wantFrom, wantTo)
	}
	// The block frames follow the header frame; bound the count by the
	// bytes left (12-byte frame header minimum per block) so a damaged
	// count cannot drive a huge allocation.
	if nblocks == 0 || nblocks > uint64(len(rest))/12 {
		return nil, fmt.Errorf("implausible block count %d for %d remaining bytes", nblocks, len(rest))
	}
	n := int(nblocks)
	blocks := make([]*chain.Block, 0, n)
	prev := from - 1
	for i := 0; i < n; i++ {
		payload, rest, err = readFrame(rest)
		if err != nil {
			return nil, fmt.Errorf("segment block %d: %w", i, err)
		}
		b, err := chain.DecodeBlock(payload)
		if err != nil {
			return nil, fmt.Errorf("segment block %d: %w", i, err)
		}
		if b.Height <= prev || b.Height > to {
			return nil, fmt.Errorf("segment block %d height %d outside (%d,%d]", i, b.Height, prev, to)
		}
		prev = b.Height
		blocks = append(blocks, b)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after segment blocks", len(rest))
	}
	if blocks[0].Height != from || blocks[n-1].Height != to {
		return nil, fmt.Errorf("segment blocks span [%d,%d], claimed [%d,%d]",
			blocks[0].Height, blocks[n-1].Height, from, to)
	}
	return blocks, nil
}

// --- index sidecars -------------------------------------------------------

// segAgg is one segment's contribution to the store-wide aggregates.
// Persisting it in the sidecar lets a load merge per-segment sums
// instead of re-observing every transaction — most of the cold-start
// win over re-indexing. (Mix and the txn count are not duplicated
// here: the segment's own mix is the same numbers.)
type segAgg struct {
	addsPerDay          map[int64]int64
	assertsPerGateway   map[string]int64
	transfersPerGateway map[string]int64
	transfers, zeroHNT  int64
	closes              []ClosePoint
	totalPackets        int64
}

// computeSegAgg folds a segment's blocks through the same observe path
// ingest uses, yielding its aggregate contribution.
func computeSegAgg(blocks []*chain.Block) *segAgg {
	scratch := newAggregates()
	for _, b := range blocks {
		for _, t := range b.Txns {
			scratch.observe(b.Height, t)
		}
	}
	return &segAgg{
		addsPerDay:          scratch.AddsPerDay,
		assertsPerGateway:   scratch.AssertsPerGateway,
		transfersPerGateway: scratch.TransfersPerGateway,
		transfers:           scratch.Transfers,
		zeroHNT:             scratch.ZeroHNTTransfers,
		closes:              scratch.Closes,
		totalPackets:        scratch.TotalPackets,
	}
}

// addSegment merges a sealed segment and its contribution into the
// live aggregates.
func (a *aggregates) addSegment(g *segment, c *segAgg) {
	a.txnCount += g.txns
	for tt, n := range g.mix {
		a.Mix[tt] += n
	}
	for d, n := range c.addsPerDay {
		a.AddsPerDay[d] += n
	}
	for k, n := range c.assertsPerGateway {
		a.AssertsPerGateway[k] += n
	}
	for k, n := range c.transfersPerGateway {
		a.TransfersPerGateway[k] += n
	}
	a.Transfers += c.transfers
	a.ZeroHNTTransfers += c.zeroHNT
	a.Closes = append(a.Closes, c.closes...)
	a.TotalPackets += c.totalPackets
}

// encodePostings writes a compressed posting list: its entry count,
// then the delta+varint buffer as an opaque blob. The in-memory and
// on-disk representations are the same bytes.
func encodePostings(w *wire.Writer, p *postings) {
	if p == nil {
		w.Uvarint(0)
		w.Bytes(nil)
		return
	}
	w.Uvarint(uint64(p.n))
	w.Bytes(p.buf)
}

// decodePostings reads a compressed posting list and validates it once
// against the segment's blocks — entry count, monotonic order, bounds,
// and type bytes all checked here so scans can decode without checks.
// The returned buffer aliases the sidecar's bytes (zero copy). A bad
// list fails the Reader; the caller falls back to rebuilding.
func decodePostings(r *wire.Reader, blocks []*chain.Block, typed bool, tt chain.TxnType) *postings {
	n := r.Count(1)
	buf := r.Bytes()
	if r.Err() != nil {
		return nil
	}
	p := &postings{n: n, typed: typed, buf: buf}
	if err := p.validate(blocks, tt); err != nil {
		r.Fail(err)
		return nil
	}
	if n == 0 {
		return nil
	}
	return p
}

// encodeIdxFile serializes a segment's sidecar: indexes plus aggregate
// contribution. Map iteration order is pinned by sorting keys, so the
// same segment always writes identical bytes.
func encodeIdxFile(g *segment, c *segAgg, indexRewards bool) []byte {
	var w wire.Writer
	w.U8(idxCodecVersion)
	w.Bool(indexRewards)
	w.Varint(g.from)
	w.Varint(g.to)
	w.Varint(g.txns)
	w.Varint(g.fromTime.UnixNano())
	w.Varint(g.toTime.UnixNano())

	mixKeys := make([]int, 0, len(g.mix))
	for tt := range g.mix {
		mixKeys = append(mixKeys, int(tt))
	}
	sort.Ints(mixKeys)
	w.Uvarint(uint64(len(mixKeys)))
	for _, tt := range mixKeys {
		w.U8(uint8(tt))
		w.Varint(g.mix[chain.TxnType(tt)])
	}

	typeKeys := make([]int, 0, len(g.byType))
	for tt := range g.byType {
		typeKeys = append(typeKeys, int(tt))
	}
	sort.Ints(typeKeys)
	w.Uvarint(uint64(len(typeKeys)))
	for _, tt := range typeKeys {
		w.U8(uint8(tt))
		encodePostings(&w, g.byType[chain.TxnType(tt)])
	}

	actors := make([]string, 0, len(g.byActor))
	for a := range g.byActor {
		actors = append(actors, a)
	}
	sort.Strings(actors)
	w.Uvarint(uint64(len(actors)))
	for _, a := range actors {
		w.Str(a)
		encodePostings(&w, g.byActor[a])
	}

	encodePostings(&w, g.shared)

	days := make([]int64, 0, len(c.addsPerDay))
	for d := range c.addsPerDay {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	w.Uvarint(uint64(len(days)))
	for _, d := range days {
		w.Varint(d)
		w.Varint(c.addsPerDay[d])
	}
	writeStrCounts(&w, c.assertsPerGateway)
	writeStrCounts(&w, c.transfersPerGateway)
	w.Varint(c.transfers)
	w.Varint(c.zeroHNT)
	w.Uvarint(uint64(len(c.closes)))
	for _, cp := range c.closes {
		w.Varint(cp.Height)
		w.Varint(cp.Packets)
	}
	w.Varint(c.totalPackets)

	return appendFrame([]byte(idxMagic), w.Buf)
}

func writeStrCounts(w *wire.Writer, m map[string]int64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Str(k)
		w.Varint(m[k])
	}
}

// decodeIdxFile reconstructs a segment's indexes and aggregate
// contribution from its sidecar. blocks are the already-verified
// segment blocks; every posting list is validated against them. An
// error here never quarantines anything — the caller falls back to
// rebuilding the sidecar from the blocks (errLegacySidecar marks the
// intact-v1 upgrade case specifically).
func decodeIdxFile(data []byte, blocks []*chain.Block, wantRewards bool) (*segment, *segAgg, error) {
	if len(data) < len(idxMagic) || string(data[:len(idxMagic)]) != idxMagic {
		return nil, nil, errors.New("bad sidecar magic")
	}
	payload, rest, err := readFrame(data[len(idxMagic):])
	if err != nil {
		return nil, nil, fmt.Errorf("sidecar frame: %w", err)
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes after sidecar frame", len(rest))
	}
	r := wire.NewReader(payload)
	if v := r.U8(); r.Err() == nil && v != idxCodecVersion {
		if v == idxLegacyCodecVersion {
			return nil, nil, errLegacySidecar
		}
		return nil, nil, fmt.Errorf("unknown sidecar version %d", v)
	}
	if rewards := r.Bool(); r.Err() == nil && rewards != wantRewards {
		// Built under a different reward-indexing policy: the postings
		// would be shaped wrong for this Config. Rebuild.
		return nil, nil, errors.New("sidecar reward-indexing policy differs")
	}
	g := &segment{
		blocks:  blocks,
		mix:     make(map[chain.TxnType]int64),
		byType:  make(map[chain.TxnType]*postings),
		byActor: make(map[string]*postings),
	}
	g.from = r.Varint()
	g.to = r.Varint()
	g.txns = r.Varint()
	g.fromTime = time.Unix(0, r.Varint()).UTC()
	g.toTime = time.Unix(0, r.Varint()).UTC()
	if r.Err() == nil &&
		(g.from != blocks[0].Height || g.to != blocks[len(blocks)-1].Height) {
		return nil, nil, fmt.Errorf("sidecar range [%d,%d] disagrees with blocks", g.from, g.to)
	}

	for i, n := 0, r.Count(2); i < n && r.Err() == nil; i++ {
		tt := chain.TxnType(r.U8())
		g.mix[tt] = r.Varint()
	}
	for i, n := 0, r.Count(2); i < n && r.Err() == nil; i++ {
		tt := chain.TxnType(r.U8())
		if ps := decodePostings(r, blocks, false, tt); ps != nil {
			g.byType[tt] = ps
		}
	}
	for i, n := 0, r.Count(2); i < n && r.Err() == nil; i++ {
		a := r.Str()
		if ps := decodePostings(r, blocks, true, 0); ps != nil {
			g.byActor[a] = ps
		}
	}
	g.shared = decodePostings(r, blocks, true, 0)
	if g.shared == nil {
		g.shared = &postings{typed: true}
	}

	c := &segAgg{
		addsPerDay:          make(map[int64]int64),
		assertsPerGateway:   make(map[string]int64),
		transfersPerGateway: make(map[string]int64),
	}
	for i, n := 0, r.Count(2); i < n && r.Err() == nil; i++ {
		d := r.Varint()
		c.addsPerDay[d] = r.Varint()
	}
	readStrCounts(r, c.assertsPerGateway)
	readStrCounts(r, c.transfersPerGateway)
	c.transfers = r.Varint()
	c.zeroHNT = r.Varint()
	for i, n := 0, r.Count(2); i < n && r.Err() == nil; i++ {
		cp := ClosePoint{Height: r.Varint(), Packets: r.Varint()}
		c.closes = append(c.closes, cp)
	}
	c.totalPackets = r.Varint()
	if r.Err() != nil {
		return nil, nil, r.Err()
	}
	if r.Remaining() != 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes in sidecar payload", r.Remaining())
	}
	return g, c, nil
}

func readStrCounts(r *wire.Reader, m map[string]int64) {
	for i, n := 0, r.Count(2); i < n && r.Err() == nil; i++ {
		k := r.Str()
		m[k] = r.Varint()
	}
}

// --- seal persistence -----------------------------------------------------

// syncDiskLocked brings the directory in line with memory: publishes
// every sealed segment not yet on disk, then resets the WAL to exactly
// the pending tail. Caller holds s.mu. On success the store's durable
// invariant holds again: every accepted block is in a published
// segment file or in the fsynced WAL.
func (s *Store) syncDiskLocked() error {
	d := s.dur
	for d.persisted < len(s.sealed) {
		g := s.sealed[d.persisted]
		if err := d.writeSegment(g, s.cfg.IndexRewardEntries); err != nil {
			return &PersistError{Op: "segment " + segFileName(g.from, g.to), Err: err}
		}
		d.persisted++
	}
	if err := d.wal.reset(s.pending); err != nil {
		return &PersistError{Op: "wal reset", Err: err}
	}
	d.setPersistErr(nil)
	return nil
}

// writeSegment publishes one sealed segment: blocks first, sidecar
// second, so a crash between the two leaves a rebuildable state.
func (d *durable) writeSegment(g *segment, indexRewards bool) error {
	name := segFileName(g.from, g.to)
	if err := writeFileAtomic(d.fs, join(d.dir, name), encodeSegFile(g)); err != nil {
		return err
	}
	c := computeSegAgg(g.blocks)
	return writeFileAtomic(d.fs, join(d.dir, idxFileName(name)), encodeIdxFile(g, c, indexRewards))
}

// durAppendLocked makes b durable before the in-memory ingest accepts
// it. Caller holds s.mu. A non-nil return means nothing was accepted
// and the same block may be retried.
func (s *Store) durAppendLocked(b *chain.Block) error {
	d := s.dur
	if d.persistFailure() != nil || d.wal.dirty {
		// A previous failure left the disk behind memory. Converge
		// first — the WAL rebuild below re-logs the full backlog
		// (unpersisted sealed segments plus pending), so nothing
		// already accepted can be lost by the retry.
		if err := s.syncDiskLocked(); err != nil {
			d.setPersistErr(err)
			return err
		}
	}
	if err := d.wal.append(b); err != nil {
		perr := &PersistError{Op: "wal append", Err: err}
		d.setPersistErr(perr)
		return perr
	}
	return nil
}

// durSealLocked persists the just-sealed segment and shrinks the WAL.
// Failures are recorded, not returned: the sealed blocks are already
// durable through the WAL, so the seal retries on a later append
// without failing this one.
func (s *Store) durSealLocked() {
	if err := s.syncDiskLocked(); err != nil {
		s.dur.setPersistErr(err)
	}
}
