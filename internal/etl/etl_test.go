package etl

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
)

// worldChain builds a small deterministic chain exercising every
// indexed dimension: gateways with owners, location asserts, payments,
// PoC, rewards (multi-entry), transfers, and state channels.
func worldChain(t testing.TB, nBlocks int) *chain.Chain {
	t.Helper()
	c := chain.NewChain(chain.DefaultGenesis)

	owners := []string{"owner-a", "owner-b", "owner-c"}
	const nHS = 4
	hs := make([]string, nHS)
	hsOwner := make([]string, nHS)
	hsNonce := make([]int, nHS)
	for i := range hs {
		hs[i] = fmt.Sprintf("hs-%d", i)
		hsOwner[i] = owners[i%len(owners)]
	}

	setup := []chain.Txn{
		&chain.DCCoinbase{Payee: "router-1", AmountDC: 1_000_000_000},
		&chain.OUIRegistration{OUI: 1, Owner: "router-1"},
	}
	for _, o := range owners {
		setup = append(setup,
			&chain.SecurityCoinbase{Payee: o, AmountBones: 1_000 * chain.BonesPerHNT},
			&chain.DCCoinbase{Payee: o, AmountDC: 1_000_000_000})
	}
	for i := range hs {
		setup = append(setup, &chain.AddGateway{Gateway: hs[i], Owner: hsOwner[i], Maker: "maker-x"})
	}
	if _, err := c.AppendBlock(0, setup); err != nil {
		t.Fatalf("setup block: %v", err)
	}

	cell := func(i int) h3lite.Cell {
		return h3lite.FromLatLon(geo.Point{Lat: 30 + float64(i), Lon: -100 - float64(i)}, 8)
	}
	var scOpen string
	for h := int64(1); int(h) <= nBlocks; h++ {
		var txns []chain.Txn
		txns = append(txns, &chain.Payment{Payer: "owner-a", Payee: "owner-b", AmountBones: 1})
		if h%3 == 0 {
			txns = append(txns, &chain.PoCReceipt{
				Challenger: hs[0],
				Challengee: hs[1],
				Witnesses:  []chain.WitnessReport{{Witness: hs[2], Valid: true}},
			})
		}
		if h%4 == 0 {
			txns = append(txns, &chain.Rewards{Epoch: h, Entries: []chain.RewardEntry{
				{Account: hsOwner[int(h)%nHS], Gateway: hs[int(h)%nHS], AmountBones: 5, Kind: chain.RewardChallengee},
				{Account: "owner-c", AmountBones: 2, Kind: chain.RewardConsensus},
			}})
		}
		if h%5 == 0 {
			i := int(h) % nHS
			hsNonce[i]++
			txns = append(txns, &chain.AssertLocation{
				Gateway: hs[i], Owner: hsOwner[i], Location: cell(int(h)), Nonce: hsNonce[i],
			})
		}
		if h%7 == 0 {
			i := int(h) % nHS
			seller := hsOwner[i]
			buyer := owners[(int(h)+1)%len(owners)]
			if buyer != seller {
				var amt int64
				if h%14 == 0 {
					amt = 10
				}
				txns = append(txns, &chain.TransferHotspot{
					Gateway: hs[i], Seller: seller, Buyer: buyer, AmountBones: amt,
				})
				hsOwner[i] = buyer
			}
		}
		if h%10 == 0 && scOpen == "" {
			scOpen = chain.SCID("router-1", h)
			txns = append(txns, &chain.StateChannelOpen{
				ID: scOpen, Owner: "router-1", OUI: 1, AmountDC: 1000, ExpireWithin: 30,
			})
		} else if h%10 == 5 && scOpen != "" {
			txns = append(txns, &chain.StateChannelClose{
				ID: scOpen, Owner: "router-1",
				Summaries: []chain.SCSummary{{Hotspot: hs[0], Packets: h, DC: 10}},
			})
			scOpen = ""
		}
		if _, err := c.AppendBlock(h, txns); err != nil {
			t.Fatalf("block %d: %v", h, err)
		}
	}
	return c
}

type txnRef struct {
	height int64
	hash   string
}

func collectChain(c *chain.Chain) []txnRef {
	var out []txnRef
	c.Scan(func(h int64, t chain.Txn) bool {
		out = append(out, txnRef{h, chain.Hash(t)})
		return true
	})
	return out
}

func collectStore(s *Store, r Range, f Filter) []txnRef {
	var out []txnRef
	s.Scan(r, f, func(h int64, t chain.Txn) bool {
		out = append(out, txnRef{h, chain.Hash(t)})
		return true
	})
	return out
}

func TestBulkLoadMatchesChain(t *testing.T) {
	c := worldChain(t, 120)
	s := New(Config{SegmentBlocks: 16})
	if err := s.BulkLoad(c); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}

	if got, want := s.Height(), c.Height(); got != want {
		t.Errorf("Height = %d, want %d", got, want)
	}
	if got, want := s.FirstHeight(), c.FirstHeight(); got != want {
		t.Errorf("FirstHeight = %d, want %d", got, want)
	}
	if got, want := s.TxnCount(), c.TxnCount(); got != want {
		t.Errorf("TxnCount = %d, want %d", got, want)
	}
	if got, want := s.TxnMix(), c.TxnMix(); !reflect.DeepEqual(got, want) {
		t.Errorf("TxnMix = %v, want %v", got, want)
	}
	if s.Ledger() != c.Ledger() {
		t.Error("store did not adopt the chain's ledger")
	}
	if got, want := collectStore(s, All(), Filter{}), collectChain(c); !reflect.DeepEqual(got, want) {
		t.Errorf("full scan: %d txns, want %d (or order differs)", len(got), len(want))
	}

	st := s.Stats()
	// 121 blocks at 16 per segment: 7 full + 1 sealed partial.
	if st.Segments != 8 {
		t.Errorf("Segments = %d, want 8", st.Segments)
	}
	if st.PendingBlocks != 0 {
		t.Errorf("PendingBlocks = %d, want 0 after BulkLoad", st.PendingBlocks)
	}
	if st.Blocks != 121 {
		t.Errorf("Blocks = %d, want 121", st.Blocks)
	}
	segs := s.Segments()
	for i := 1; i < len(segs); i++ {
		if segs[i].FromHeight <= segs[i-1].ToHeight {
			t.Errorf("segments overlap: %+v then %+v", segs[i-1], segs[i])
		}
	}
}

func TestScanTypeMatchesChain(t *testing.T) {
	c := worldChain(t, 120)
	s := FromChain(c)
	v := s.View()
	for tt := range c.TxnMix() {
		var want, got []txnRef
		c.ScanType(tt, func(h int64, t chain.Txn) bool {
			want = append(want, txnRef{h, chain.Hash(t)})
			return true
		})
		v.ScanType(tt, func(h int64, t chain.Txn) bool {
			got = append(got, txnRef{h, chain.Hash(t)})
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ScanType(%s): %d txns, want %d (or order differs)", tt, len(got), len(want))
		}
	}
}

func TestScanActorMatchesChain(t *testing.T) {
	c := worldChain(t, 120)
	for _, indexRewards := range []bool{false, true} {
		s := New(Config{SegmentBlocks: 16, IndexRewardEntries: indexRewards})
		if err := s.BulkLoad(c); err != nil {
			t.Fatal(err)
		}
		v := s.View()
		for _, actor := range []string{"owner-a", "owner-c", "hs-0", "hs-2", "router-1", "nobody"} {
			var want, got []txnRef
			c.Scan(func(h int64, t chain.Txn) bool {
				if mentionsActor(t, actor) {
					want = append(want, txnRef{h, chain.Hash(t)})
				}
				return true
			})
			v.ScanActor(actor, func(h int64, t chain.Txn) bool {
				got = append(got, txnRef{h, chain.Hash(t)})
				return true
			})
			if !reflect.DeepEqual(got, want) {
				t.Errorf("ScanActor(%s, indexRewards=%v): %d txns, want %d (or order differs)",
					actor, indexRewards, len(got), len(want))
			}
		}
	}
}

func TestScanRangeAndFilters(t *testing.T) {
	c := worldChain(t, 120)
	s := New(Config{SegmentBlocks: 16})
	if err := s.BulkLoad(c); err != nil {
		t.Fatal(err)
	}

	count := func(from, to int64, f Filter) (n int) {
		s.Scan(Range{from, to}, f, func(int64, chain.Txn) bool { n++; return true })
		return
	}
	manual := func(from, to int64, match func(chain.Txn) bool) (n int) {
		c.Scan(func(h int64, t chain.Txn) bool {
			if h >= from && h <= to && match(t) {
				n++
			}
			return true
		})
		return
	}

	if got, want := count(20, 50, Filter{}), manual(20, 50, func(chain.Txn) bool { return true }); got != want {
		t.Errorf("range [20,50]: %d, want %d", got, want)
	}
	pay := Filter{Types: []chain.TxnType{chain.TxnPayment}}
	if got, want := count(20, 50, pay), manual(20, 50, func(t chain.Txn) bool { return t.TxnType() == chain.TxnPayment }); got != want {
		t.Errorf("payments in [20,50]: %d, want %d", got, want)
	}
	both := Filter{Types: []chain.TxnType{chain.TxnAssertLocation}, Actors: []string{"hs-0"}}
	if got, want := count(0, 120, both), manual(0, 120, func(t chain.Txn) bool {
		return t.TxnType() == chain.TxnAssertLocation && mentionsActor(t, "hs-0")
	}); got != want {
		t.Errorf("asserts by hs-0: %d, want %d", got, want)
	}

	// Early stop.
	n := 0
	s.Scan(All(), Filter{}, func(int64, chain.Txn) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d txns, want 3", n)
	}
}

func TestScanParallelMatchesScan(t *testing.T) {
	c := worldChain(t, 120)
	s := New(Config{SegmentBlocks: 16})
	if err := s.BulkLoad(c); err != nil {
		t.Fatal(err)
	}
	for _, f := range []Filter{
		{},
		{Types: []chain.TxnType{chain.TxnPayment, chain.TxnRewards}},
		{Actors: []string{"hs-1", "owner-b"}},
	} {
		want := collectStore(s, Range{10, 100}, f)
		var mu sync.Mutex
		var got []txnRef
		s.ScanParallel(Range{10, 100}, f, 4, func(h int64, t chain.Txn) bool {
			mu.Lock()
			got = append(got, txnRef{h, chain.Hash(t)})
			mu.Unlock()
			return true
		})
		sortRefs(want)
		sortRefs(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ScanParallel(%+v): %d txns, want %d", f, len(got), len(want))
		}
	}
}

func sortRefs(rs []txnRef) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].height != rs[j].height {
			return rs[i].height < rs[j].height
		}
		return rs[i].hash < rs[j].hash
	})
}

func TestAggregatesMatchRecompute(t *testing.T) {
	c := worldChain(t, 120)
	s := FromChain(c)
	agg := s.Aggregates()

	want := Aggregates{
		Mix:                 c.TxnMix(),
		AddsPerDay:          map[int64]int64{},
		AssertsPerGateway:   map[string]int64{},
		TransfersPerGateway: map[string]int64{},
	}
	c.Scan(func(h int64, t chain.Txn) bool {
		switch v := t.(type) {
		case *chain.AddGateway:
			want.AddsPerDay[h/chain.BlocksPerDay]++
		case *chain.AssertLocation:
			want.AssertsPerGateway[v.Gateway]++
		case *chain.TransferHotspot:
			want.Transfers++
			want.TransfersPerGateway[v.Gateway]++
			if v.AmountBones == 0 {
				want.ZeroHNTTransfers++
			}
		case *chain.StateChannelClose:
			pkts := v.TotalPackets()
			want.Closes = append(want.Closes, ClosePoint{Height: h, Packets: pkts})
			want.TotalPackets += pkts
		}
		return true
	})
	if !reflect.DeepEqual(agg, want) {
		t.Errorf("Aggregates mismatch:\n got %+v\nwant %+v", agg, want)
	}
	if want.Transfers == 0 || want.TotalPackets == 0 || len(want.AssertsPerGateway) == 0 {
		t.Error("world chain exercised no transfers/closes/asserts; test is vacuous")
	}
}

func TestIncrementalBulkLoad(t *testing.T) {
	c := worldChain(t, 50)
	s := New(Config{SegmentBlocks: 16})
	if err := s.BulkLoad(c); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()

	for h := int64(51); h <= 90; h++ {
		if _, err := c.AppendBlock(h, []chain.Txn{
			&chain.Payment{Payer: "owner-b", Payee: "owner-c", AmountBones: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.BulkLoad(c); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Blocks != before.Blocks+40 {
		t.Errorf("incremental load: %d blocks, want %d", after.Blocks, before.Blocks+40)
	}
	if got, want := collectStore(s, All(), Filter{}), collectChain(c); !reflect.DeepEqual(got, want) {
		t.Errorf("after incremental load: %d txns, want %d", len(got), len(want))
	}
}

func TestAppendRejectsStaleHeight(t *testing.T) {
	s := New(Config{})
	b := &chain.Block{Height: 5, Timestamp: chain.DefaultGenesis}
	if err := s.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(&chain.Block{Height: 5}); err == nil {
		t.Error("duplicate height accepted")
	}
	if err := s.Append(&chain.Block{Height: 3}); err == nil {
		t.Error("lower height accepted")
	}
}

func TestTimeAndHeightIndex(t *testing.T) {
	c := worldChain(t, 60)
	s := New(Config{SegmentBlocks: 16})
	if err := s.BulkLoad(c); err != nil {
		t.Fatal(err)
	}
	for _, h := range []int64{0, 1, 15, 16, 47, 48, 60} {
		ts, ok := s.TimeAt(h)
		if !ok {
			t.Fatalf("TimeAt(%d): not found", h)
		}
		if want := c.TimeOf(h); !ts.Equal(want) {
			t.Errorf("TimeAt(%d) = %v, want %v", h, ts, want)
		}
		if got := s.HeightAt(ts); got != h {
			t.Errorf("HeightAt(TimeAt(%d)) = %d", h, got)
		}
		// Midway to the next block still resolves to h.
		if got := s.HeightAt(ts.Add(30 * time.Second)); got != h {
			t.Errorf("HeightAt(%d + 30s) = %d", h, got)
		}
	}
	if _, ok := s.TimeAt(61); ok {
		t.Error("TimeAt beyond tip succeeded")
	}
	if got := s.HeightAt(chain.DefaultGenesis.Add(-time.Hour)); got != -1 {
		t.Errorf("HeightAt before genesis = %d, want -1", got)
	}
	if got := s.HeightAt(chain.DefaultGenesis.Add(24 * time.Hour)); got != 60 {
		t.Errorf("HeightAt far future = %d, want tip 60", got)
	}
}

func TestFollowTail(t *testing.T) {
	c := worldChain(t, 40)
	s := New(Config{SegmentBlocks: 16})
	if err := s.BulkLoad(c); err != nil {
		t.Fatal(err)
	}

	tail := s.Follow(-1)
	var heights []int64
	for i := 0; i < 41; i++ {
		b, ok := tail.Next()
		if !ok {
			t.Fatal("tail closed during replay")
		}
		heights = append(heights, b.Height)
	}
	for i := 1; i < len(heights); i++ {
		if heights[i] <= heights[i-1] {
			t.Fatalf("tail heights not increasing: %v", heights)
		}
	}

	// Next blocks until the store grows.
	got := make(chan int64, 1)
	go func() {
		if b, ok := tail.Next(); ok {
			got <- b.Height
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Append(&chain.Block{Height: 41, Timestamp: c.TimeOf(41)}); err != nil {
		t.Fatal(err)
	}
	select {
	case h := <-got:
		if h != 41 {
			t.Errorf("tail delivered height %d, want 41", h)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tail did not wake on append")
	}

	// Close unblocks a pending Next.
	done := make(chan bool, 1)
	go func() {
		_, ok := tail.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	tail.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Next returned a block after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Next")
	}
}

// TestFollowChainLive is the acceptance race test: a producer appends
// blocks to a live chain while a follower ingests them and four query
// workers hammer the store concurrently.
func TestFollowChainLive(t *testing.T) {
	c := worldChain(t, 10)
	s := New(Config{SegmentBlocks: 8})
	f := s.FollowChain(c)

	const extra = 200
	var producer sync.WaitGroup
	producer.Add(1)
	go func() {
		defer producer.Done()
		for h := int64(11); h <= 10+extra; h++ {
			txns := []chain.Txn{&chain.Payment{Payer: "owner-a", Payee: "owner-c", AmountBones: 1}}
			if h%4 == 0 {
				txns = append(txns, &chain.Rewards{Epoch: h, Entries: []chain.RewardEntry{
					{Account: "owner-b", AmountBones: 3, Kind: chain.RewardConsensus},
				}})
			}
			if h%9 == 0 {
				txns = append(txns, &chain.AddGateway{
					Gateway: fmt.Sprintf("live-hs-%d", h), Owner: "owner-a",
				})
			}
			if _, err := c.AppendBlock(h, txns); err != nil {
				t.Errorf("producer: %v", err)
				return
			}
		}
	}()

	stop := make(chan struct{})
	var queries sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		queries.Add(1)
		go func() {
			defer queries.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch w {
				case 0:
					s.TxnMix()
					s.Aggregates()
				case 1:
					s.Scan(Range{0, 50}, Filter{Types: []chain.TxnType{chain.TxnPayment}},
						func(int64, chain.Txn) bool { return true })
				case 2:
					s.ScanParallel(All(), Filter{Actors: []string{"owner-a"}}, 4,
						func(int64, chain.Txn) bool { return true })
				case 3:
					s.Stats()
					s.Segments()
					s.TimeAt(s.Height() / 2)
				}
			}
		}()
	}

	producer.Wait()
	if err := f.Close(); err != nil {
		t.Fatalf("follower: %v", err)
	}
	close(stop)
	queries.Wait()

	if got, want := s.Height(), c.Height(); got != want {
		t.Errorf("follower tip %d, want %d", got, want)
	}
	if got, want := s.TxnCount(), c.TxnCount(); got != want {
		t.Errorf("follower txn count %d, want %d", got, want)
	}
	if got, want := collectStore(s, All(), Filter{}), collectChain(c); !reflect.DeepEqual(got, want) {
		t.Errorf("followed store diverges: %d txns, want %d", len(got), len(want))
	}
	if s.Ledger() != c.Ledger() {
		t.Error("follower did not adopt the chain's ledger")
	}
	// Closing again is a no-op.
	if err := f.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestScanParallelAutoPick(t *testing.T) {
	c := worldChain(t, 60)
	s := New(Config{SegmentBlocks: 16})
	if err := s.BulkLoad(c); err != nil {
		t.Fatal(err)
	}

	// A store this small is below the crossover, so workers=0 must
	// take the sequential path — observable through its ordering
	// guarantee, which the worker pool does not make.
	var got, want []txnRef
	s.Scan(All(), Filter{}, func(h int64, tx chain.Txn) bool {
		want = append(want, txnRef{h, chain.Hash(tx)})
		return true
	})
	s.ScanParallel(All(), Filter{}, 0, func(h int64, tx chain.Txn) bool {
		got = append(got, txnRef{h, chain.Hash(tx)})
		return true
	})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("auto ScanParallel below crossover is not the ordered sequential visit")
	}

	if w := autoWorkers(s.sealed, Filter{}); w != 1 {
		t.Errorf("autoWorkers(small store) = %d, want 1", w)
	}

	// Many fat segments clear both bars on an unfiltered scan. The
	// pool is capped by the CPUs actually available — on a single-CPU
	// process the auto pick never parallelizes, so pin GOMAXPROCS for
	// the duration to make the expectation machine-independent.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(16))
	fat := make([]*segment, 12)
	for i := range fat {
		fat[i] = &segment{txns: 1 << 16}
	}
	if w := autoWorkers(fat, Filter{}); w != 8 {
		t.Errorf("autoWorkers(fat, unfiltered) = %d, want 8", w)
	}
	// A single-CPU process always scans sequentially.
	runtime.GOMAXPROCS(1)
	if w := autoWorkers(fat, Filter{}); w != 1 {
		t.Errorf("autoWorkers(fat, 1 CPU) = %d, want 1", w)
	}
	// With a few CPUs the pool is capped at the CPU count.
	runtime.GOMAXPROCS(4)
	if w := autoWorkers(fat, Filter{}); w != 4 {
		t.Errorf("autoWorkers(fat, 4 CPUs) = %d, want 4", w)
	}
	runtime.GOMAXPROCS(16)
	// A narrow actor filter matches almost nothing: sequential.
	if w := autoWorkers(fat, Filter{Actors: []string{"hs-0"}}); w != 1 {
		t.Errorf("autoWorkers(fat, narrow actor) = %d, want 1", w)
	}
	// A conjunctive filter is bounded by its smaller dimension.
	for i := range fat {
		fat[i].byType = map[chain.TxnType]*postings{chain.TxnPayment: {n: 1 << 15}}
	}
	if w := autoWorkers(fat, Filter{Types: []chain.TxnType{chain.TxnPayment}, Actors: []string{"hs-0"}}); w != 1 {
		t.Errorf("autoWorkers(fat, type∧actor) = %d, want 1", w)
	}
	if w := autoWorkers(fat, Filter{Types: []chain.TxnType{chain.TxnPayment}}); w != 8 {
		t.Errorf("autoWorkers(fat, hot type) = %d, want 8", w)
	}
}
