package etl

import (
	"peoplesnet/internal/chain"
)

// Height returns the tip block height, or -1 while the store is empty.
func (s *Store) Height() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tip
}

// FirstHeight returns the lowest ingested height, or -1 while empty.
func (s *Store) FirstHeight() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.first
}

// TxnCount returns the total ingested transactions.
func (s *Store) TxnCount() int64 {
	s.ensureAgg()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.agg.txnCount
}

// TxnMix returns transaction counts by type from the materialized
// aggregate — O(types), not O(chain). On a lazily opened store the
// first call folds outstanding segment contributions (ensureAgg).
func (s *Store) TxnMix() map[chain.TxnType]int64 {
	s.ensureAgg()
	s.mu.RLock()
	defer s.mu.RUnlock()
	mix := make(map[chain.TxnType]int64, len(s.agg.Mix))
	for k, v := range s.agg.Mix {
		mix[k] = v
	}
	return mix
}

// Ledger returns the attached replayed ledger (nil until SetLedger,
// BulkLoad, or FollowChain).
func (s *Store) Ledger() *chain.Ledger {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ledger
}

// View adapts the store to internal/core's ChainView (and
// ActorScanner), so a core.Dataset can run every existing analysis
// against the indexes instead of a raw chain.
type View struct {
	s *Store
}

// View returns the core-facing adapter.
func (s *Store) View() *View { return &View{s: s} }

func (v *View) Height() int64                   { return v.s.Height() }
func (v *View) FirstHeight() int64              { return v.s.FirstHeight() }
func (v *View) TxnCount() int64                 { return v.s.TxnCount() }
func (v *View) TxnMix() map[chain.TxnType]int64 { return v.s.TxnMix() }
func (v *View) Ledger() *chain.Ledger           { return v.s.Ledger() }

// Scan visits every transaction in height order.
func (v *View) Scan(fn func(height int64, t chain.Txn) bool) {
	v.s.Scan(All(), Filter{}, fn)
}

// ScanType visits transactions of one type via its posting lists.
func (v *View) ScanType(tt chain.TxnType, fn func(height int64, t chain.Txn) bool) {
	v.s.Scan(All(), Filter{Types: []chain.TxnType{tt}}, fn)
}

// ScanTypes visits transactions of the given types interleaved in
// chain order — the segment scanner merges the per-type posting lists
// by (block, position), so multi-type folds see the exact ingest
// order.
func (v *View) ScanTypes(tts []chain.TxnType, fn func(height int64, t chain.Txn) bool) {
	v.s.Scan(All(), Filter{Types: append([]chain.TxnType(nil), tts...)}, fn)
}

// ScanActor visits transactions mentioning the actor via its posting
// lists — the fast path behind core.BalanceHistory.
func (v *View) ScanActor(actor string, fn func(height int64, t chain.Txn) bool) {
	v.s.Scan(All(), Filter{Actors: []string{actor}}, fn)
}
