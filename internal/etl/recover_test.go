package etl_test

// Crash-recovery and corruption tests for the durable store. These
// live in the external test package because they drive the store
// through internal/faultfs, which itself imports etl for the FS
// interface.

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
	"peoplesnet/internal/faultfs"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
)

// recoverChain builds a small deterministic chain that exercises every
// persisted dimension: actors, posting lists, and all the aggregate
// rollups (adds, asserts, transfers, rewards, state-channel closes).
func recoverChain(t testing.TB, nBlocks int) *chain.Chain {
	t.Helper()
	c := chain.NewChain(chain.DefaultGenesis)
	owners := []string{"own-a", "own-b", "own-c"}
	const nHS = 4
	hs := make([]string, nHS)
	hsOwner := make([]string, nHS)
	hsNonce := make([]int, nHS)
	setup := []chain.Txn{
		&chain.DCCoinbase{Payee: "router-1", AmountDC: 1_000_000_000},
		&chain.OUIRegistration{OUI: 1, Owner: "router-1"},
	}
	for _, o := range owners {
		setup = append(setup,
			&chain.SecurityCoinbase{Payee: o, AmountBones: 1_000 * chain.BonesPerHNT},
			&chain.DCCoinbase{Payee: o, AmountDC: 1_000_000_000})
	}
	for i := range hs {
		hs[i] = fmt.Sprintf("hs-%d", i)
		hsOwner[i] = owners[i%len(owners)]
		setup = append(setup, &chain.AddGateway{Gateway: hs[i], Owner: hsOwner[i], Maker: "maker-x"})
	}
	if _, err := c.AppendBlock(0, setup); err != nil {
		t.Fatalf("setup block: %v", err)
	}
	var scOpen string
	for h := int64(1); int(h) <= nBlocks; h++ {
		txns := []chain.Txn{&chain.Payment{Payer: "own-a", Payee: "own-b", AmountBones: 1}}
		if h%3 == 0 {
			txns = append(txns, &chain.PoCReceipt{
				Challenger: hs[0], Challengee: hs[1],
				Witnesses: []chain.WitnessReport{{Witness: hs[2], Valid: true}},
			})
		}
		if h%4 == 0 {
			txns = append(txns, &chain.Rewards{Epoch: h, Entries: []chain.RewardEntry{
				{Account: hsOwner[int(h)%nHS], Gateway: hs[int(h)%nHS], AmountBones: 5, Kind: chain.RewardChallengee},
				{Account: "own-c", AmountBones: 2, Kind: chain.RewardConsensus},
			}})
		}
		if h%5 == 0 {
			i := int(h) % nHS
			hsNonce[i]++
			cell := h3lite.FromLatLon(geo.Point{Lat: 30 + float64(h), Lon: -100 - float64(h)}, 8)
			txns = append(txns, &chain.AssertLocation{
				Gateway: hs[i], Owner: hsOwner[i], Location: cell, Nonce: hsNonce[i],
			})
		}
		if h%7 == 0 {
			i := int(h) % nHS
			buyer := owners[(int(h)+1)%len(owners)]
			if buyer != hsOwner[i] {
				var amt int64
				if h%14 == 0 {
					amt = 10
				}
				txns = append(txns, &chain.TransferHotspot{
					Gateway: hs[i], Seller: hsOwner[i], Buyer: buyer, AmountBones: amt,
				})
				hsOwner[i] = buyer
			}
		}
		if h%10 == 0 && scOpen == "" {
			scOpen = chain.SCID("router-1", h)
			txns = append(txns, &chain.StateChannelOpen{
				ID: scOpen, Owner: "router-1", OUI: 1, AmountDC: 1000, ExpireWithin: 30,
			})
		} else if h%10 == 5 && scOpen != "" {
			txns = append(txns, &chain.StateChannelClose{
				ID: scOpen, Owner: "router-1",
				Summaries: []chain.SCSummary{{Hotspot: hs[0], Packets: h, DC: 10}},
			})
			scOpen = ""
		}
		if _, err := c.AppendBlock(h, txns); err != nil {
			t.Fatalf("block %d: %v", h, err)
		}
	}
	return c
}

// hashesByHeight maps height → ordered txn content hashes.
func chainHashes(c *chain.Chain) map[int64][]string {
	out := make(map[int64][]string)
	for _, b := range c.Blocks() {
		hs := make([]string, len(b.Txns))
		for i, t := range b.Txns {
			hs[i] = chain.Hash(t)
		}
		out[b.Height] = hs
	}
	return out
}

func storeHashes(s *etl.Store) map[int64][]string {
	out := make(map[int64][]string)
	s.Scan(etl.All(), etl.Filter{}, func(h int64, t chain.Txn) bool {
		out[h] = append(out[h], chain.Hash(t))
		return true
	})
	return out
}

// requireStoreMatchesChain asserts the store holds exactly the chain's
// content (heights and per-txn hashes), and that the aggregates match
// a fresh re-index.
func requireStoreMatchesChain(t *testing.T, s *etl.Store, c *chain.Chain) {
	t.Helper()
	want, got := chainHashes(c), storeHashes(s)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("store content differs from chain: %d vs %d heights", len(got), len(want))
	}
	if wantAgg, gotAgg := etl.FromChain(c).Aggregates(), s.Aggregates(); !reflect.DeepEqual(wantAgg, gotAgg) {
		t.Fatalf("aggregates differ after recovery:\n got %+v\nwant %+v", gotAgg, wantAgg)
	}
}

func openTest(t *testing.T, dir string, fs etl.FS) *etl.Store {
	t.Helper()
	s, err := etl.Open(dir, etl.Config{SegmentBlocks: 8, FS: fs})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestDurableRoundTrip(t *testing.T) {
	c := recoverChain(t, 30)
	dir := filepath.Join(t.TempDir(), "store")

	s := openTest(t, dir, nil)
	if err := s.BulkLoad(c); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openTest(t, dir, nil)
	defer s2.Close()
	requireStoreMatchesChain(t, s2, c)
	h := s2.Health()
	if !h.Durable || len(h.Gaps) != 0 || h.Quarantined != 0 || h.SidecarsRebuilt != 0 {
		t.Errorf("unhealthy reload: %+v", h)
	}
	if st := s2.Stats(); st.Segments == 0 || st.TypePostings == 0 || st.ActorPostings == 0 {
		t.Errorf("indexes not restored: %+v", st)
	}
	if _, err := s2.ReplayLedger(); err != nil {
		t.Errorf("ReplayLedger: %v", err)
	}
}

func TestReopenWithPendingTail(t *testing.T) {
	c := recoverChain(t, 13) // 14 blocks: one sealed segment of 8, six pending
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, nil)
	for _, b := range c.Blocks() {
		if err := s.Append(b); err != nil {
			t.Fatalf("append %d: %v", b.Height, err)
		}
	}
	s.Close()

	s2 := openTest(t, dir, nil)
	defer s2.Close()
	requireStoreMatchesChain(t, s2, c)
	if h := s2.Health(); h.WALDepth != 6 || h.PendingBlocks != 6 || h.Segments != 1 {
		t.Errorf("tail not restored through WAL: %+v", h)
	}
}

// TestCrashRecoveryMatrix kills the store at every mutating I/O
// operation of a full ingest and proves Open recovers: no panic, no
// gap, every acknowledged block intact, nothing the chain doesn't
// have. Odd crash points also tear the failing write.
func TestCrashRecoveryMatrix(t *testing.T) {
	c := recoverChain(t, 30)
	want := chainHashes(c)

	// A fault-free probe run bounds the matrix.
	probe := faultfs.New(etl.OSFS{}, faultfs.Config{})
	s := openTest(t, filepath.Join(t.TempDir(), "probe"), probe)
	for _, b := range c.Blocks() {
		if err := s.Append(b); err != nil {
			t.Fatalf("probe append %d: %v", b.Height, err)
		}
	}
	s.Close()
	total := probe.Ops()
	if total < 40 {
		t.Fatalf("probe counted only %d ops; matrix would be vacuous", total)
	}

	for k := 1; k <= total; k++ {
		t.Run(fmt.Sprintf("crash-at-op-%03d", k), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			ffs := faultfs.New(etl.OSFS{}, faultfs.Config{
				Seed: int64(k), FailAtOp: k, Crash: true, TornWrite: k%2 == 1,
			})
			s, err := etl.Open(dir, etl.Config{SegmentBlocks: 8, FS: ffs})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			var acked []int64
			for _, b := range c.Blocks() {
				if err := s.Append(b); err != nil {
					if !errors.Is(err, faultfs.ErrInjected) {
						t.Fatalf("append %d failed with non-injected error: %v", b.Height, err)
					}
					break
				}
				acked = append(acked, b.Height)
			}
			// The process "dies" here; reopen against the real fs.
			s2 := openTest(t, dir, nil)
			defer s2.Close()
			if h := s2.Health(); len(h.Gaps) != 0 {
				t.Fatalf("a pure crash must never report corruption gaps, got %+v", h)
			}
			got := storeHashes(s2)
			for _, h := range acked {
				if !reflect.DeepEqual(got[h], want[h]) {
					t.Fatalf("acked block %d lost or damaged: %v", h, got[h])
				}
			}
			for h, hs := range got {
				if !reflect.DeepEqual(hs, want[h]) {
					t.Fatalf("recovered block %d doesn't match chain", h)
				}
			}
			// The store must remain usable for the rest of the chain.
			for _, b := range c.BlocksFrom(s2.Height()) {
				if err := s2.Append(b); err != nil {
					t.Fatalf("post-recovery append %d: %v", b.Height, err)
				}
			}
			requireStoreMatchesChain(t, s2, c)
		})
	}
}

// listStoreFiles returns the store's data files (segments, sidecars,
// WAL) relative to dir.
func listStoreFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := etl.OSFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, n := range names {
		if n != "quarantine" {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// TestBitFlipMatrix flips one random bit in every store file and
// checks the contract: Open never panics and never silently drops
// data — every chain block is either served intact or inside a
// reported gap — and Repair from the source chain restores the store
// to exactly the chain's content.
func TestBitFlipMatrix(t *testing.T) {
	c := recoverChain(t, 30)
	want := chainHashes(c)
	base := filepath.Join(t.TempDir(), "base")
	s := openTest(t, base, nil)
	for _, b := range c.Blocks() {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	files := listStoreFiles(t, base)
	if len(files) < 7 { // 3 segments + 3 sidecars + wal
		t.Fatalf("expected a populated store, found %v", files)
	}
	for _, name := range files {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				dir := copyStore(t, base)
				ffs := faultfs.New(etl.OSFS{}, faultfs.Config{Seed: seed})
				off, err := ffs.CorruptFile(filepath.Join(dir, name))
				if err != nil {
					t.Fatalf("corrupt: %v", err)
				}
				s2 := openTest(t, dir, nil)
				defer s2.Close()
				// Open is lazy: damage surfaces when a segment is first
				// touched. The scan forces every load, so Health read
				// after it reflects the whole store.
				got := storeHashes(s2)
				health := s2.Health()
				inGap := func(h int64) bool {
					for _, g := range health.Gaps {
						if h >= g.From && (g.To < 0 || h <= g.To) {
							return true
						}
					}
					return false
				}
				for h, hs := range want {
					switch {
					case reflect.DeepEqual(got[h], hs):
					case got[h] == nil && inGap(h):
					default:
						t.Fatalf("bit flip at %s+%d silently lost block %d (health %+v)",
							name, off, h, health)
					}
				}
				for h := range got {
					if want[h] == nil {
						t.Fatalf("recovered block %d the chain never had", h)
					}
				}
				if err := s2.Repair(c); err != nil {
					t.Fatalf("Repair: %v", err)
				}
				if g := s2.Gaps(); len(g) != 0 {
					t.Fatalf("gaps survive repair: %v", g)
				}
				requireStoreMatchesChain(t, s2, c)
			})
		}
	}
}

func copyStore(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "copy")
	fs := etl.OSFS{}
	if err := fs.MkdirAll(dst); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "quarantine" {
			continue
		}
		data, err := fs.ReadFile(filepath.Join(src, n))
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create(filepath.Join(dst, n))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestSidecarDamageRebuildsWithoutGap pins the asymmetry: sidecar
// damage is locally recoverable (the blocks are intact) and must not
// quarantine the segment.
func TestSidecarDamageRebuildsWithoutGap(t *testing.T) {
	c := recoverChain(t, 20)
	dir := filepath.Join(t.TempDir(), "store")
	s := openTest(t, dir, nil)
	if err := s.BulkLoad(c); err != nil {
		t.Fatal(err)
	}
	s.Close()

	var idx string
	for _, n := range listStoreFiles(t, dir) {
		if filepath.Ext(n) == ".idx" {
			idx = n
			break
		}
	}
	if idx == "" {
		t.Fatal("no sidecar written")
	}
	ffs := faultfs.New(etl.OSFS{}, faultfs.Config{Seed: 7})
	if _, err := ffs.CorruptFile(filepath.Join(dir, idx)); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, nil)
	defer s2.Close()
	s2.Preload() // rebuilds happen at load time under the lazy open
	h := s2.Health()
	if h.SidecarsRebuilt != 1 || h.Quarantined != 0 || len(h.Gaps) != 0 {
		t.Fatalf("sidecar damage mishandled: %+v", h)
	}
	requireStoreMatchesChain(t, s2, c)

	// The rebuild republishes the sidecar, so the next open is clean.
	s3 := openTest(t, dir, nil)
	defer s3.Close()
	s3.Preload()
	if h := s3.Health(); h.SidecarsRebuilt != 0 {
		t.Errorf("rebuilt sidecar was not republished: %+v", h)
	}
}

// TestFollowerRetriesTransientFault injects a single transient write
// failure under a live follower: the backoff loop must absorb it with
// no error and no lost blocks.
func TestFollowerRetriesTransientFault(t *testing.T) {
	c := recoverChain(t, 24)
	dir := filepath.Join(t.TempDir(), "store")
	// Opening a fresh store costs a handful of ops; op 15 lands inside
	// the block-ingest stretch. Crash is off: exactly one op fails.
	ffs := faultfs.New(etl.OSFS{}, faultfs.Config{Seed: 1, FailAtOp: 15})
	s := openTest(t, dir, ffs)
	defer s.Close()

	f := s.FollowChain(c)
	deadline := time.Now().Add(10 * time.Second)
	for s.Height() < c.Height() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("follower surfaced a transient fault: %v", err)
	}
	if ffs.Ops() < 15 {
		t.Fatalf("fault never fired (%d ops)", ffs.Ops())
	}
	requireStoreMatchesChain(t, s, c)
	if h := s.Health(); h.LastError != "" {
		t.Errorf("health still dirty after retry: %+v", h)
	}
}

// TestFollowerSurfacesPersistentFault: when the disk stays broken the
// retries exhaust and the error is visible on Err, not swallowed.
func TestFollowerSurfacesPersistentFault(t *testing.T) {
	c := recoverChain(t, 10)
	dir := filepath.Join(t.TempDir(), "store")
	ffs := faultfs.New(etl.OSFS{}, faultfs.Config{Seed: 1, FailAtOp: 9, Crash: true})
	s := openTest(t, dir, ffs)
	f := s.FollowChain(c)
	deadline := time.Now().Add(10 * time.Second)
	for f.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	err := f.Close()
	if err == nil || !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Err = %v, want injected persist error", err)
	}
	if h := s.Health(); h.LastError == "" {
		t.Errorf("persistent fault invisible in health: %+v", h)
	}
}

// TestFollowerCloseRacesProducer closes the follower while the
// producer is mid-stream: no deadlock, no error, and everything the
// store holds matches the chain (run under -race).
func TestFollowerCloseRacesProducer(t *testing.T) {
	for round := 0; round < 5; round++ {
		c := chain.NewChain(chain.DefaultGenesis)
		s := etl.New(etl.Config{SegmentBlocks: 4})
		f := s.FollowChain(c)
		prodDone := make(chan error, 1)
		go func() {
			if _, err := c.AppendBlock(0, []chain.Txn{
				&chain.SecurityCoinbase{Payee: "a", AmountBones: 1_000_000},
			}); err != nil {
				prodDone <- err
				return
			}
			for h := int64(1); h < 60; h++ {
				if _, err := c.AppendBlock(h, []chain.Txn{
					&chain.Payment{Payer: "a", Payee: "b", AmountBones: 1},
				}); err != nil {
					prodDone <- err
					return
				}
			}
			prodDone <- nil
		}()
		if round%2 == 1 {
			time.Sleep(time.Duration(round) * 100 * time.Microsecond)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := <-prodDone; err != nil {
			t.Fatalf("producer: %v", err)
		}
		want, got := chainHashes(c), storeHashes(s)
		for h, hs := range got {
			if !reflect.DeepEqual(hs, want[h]) {
				t.Fatalf("store block %d differs from chain", h)
			}
		}
	}
}

// TestAppendNonContiguous pins the explicit-error contract: a stale
// height is ErrStaleHeight and mutates nothing; a forward gap is
// accepted (the chain's heights may be sparse).
func TestAppendNonContiguous(t *testing.T) {
	s := etl.New(etl.Config{})
	if err := s.Append(&chain.Block{Height: 5, Timestamp: chain.DefaultGenesis}); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	for _, h := range []int64{5, 4, 0} {
		err := s.Append(&chain.Block{Height: h, Timestamp: chain.DefaultGenesis})
		if !errors.Is(err, etl.ErrStaleHeight) {
			t.Errorf("Append(%d) = %v, want ErrStaleHeight", h, err)
		}
	}
	if after := s.Stats(); !reflect.DeepEqual(before, after) {
		t.Errorf("rejected appends mutated the store: %+v → %+v", before, after)
	}
	if err := s.Append(&chain.Block{Height: 9, Timestamp: chain.DefaultGenesis}); err != nil {
		t.Errorf("sparse forward height rejected: %v", err)
	}
}

// TestPreloadCrashReopen proves the integrity probe a supervised
// restart runs (Open + Preload) is crash-safe: Preload performs zero
// mutating I/O, so a process dying anywhere inside it — after a crash
// already abandoned one store handle without Close — leaves nothing
// half-written, and the next reopen loads the full content cleanly.
func TestPreloadCrashReopen(t *testing.T) {
	c := recoverChain(t, 30)
	dir := filepath.Join(t.TempDir(), "store")

	// First incarnation ingests and "crashes": no Close, the handle is
	// simply abandoned. The WAL has fsynced every append.
	fs := faultfs.New(etl.OSFS{}, faultfs.Config{})
	s1 := openTest(t, dir, fs)
	for _, b := range c.Blocks() {
		if err := s1.Append(b); err != nil {
			t.Fatalf("append %d: %v", b.Height, err)
		}
	}

	// Second incarnation is the restart probe. Arm a crash fault for
	// the very next mutating op: if Preload (or the queries after it)
	// tried to write anything, the injected fault would surface, and
	// the op counter would move.
	s2 := openTest(t, dir, fs)
	ops := fs.Ops()
	fs.FailAt(1)
	s2.Preload()
	if len(s2.Gaps()) != 0 {
		t.Fatalf("clean store preloaded with gaps: %v", s2.Gaps())
	}
	requireStoreMatchesChain(t, s2, c)
	if got := fs.Ops(); got != ops {
		t.Fatalf("Preload + reads performed %d mutating ops, want 0", got-ops)
	}

	// Third incarnation: the preloading store also died without Close.
	// The reopen must still see the complete, gap-free content.
	fs.Heal()
	s3 := openTest(t, dir, fs)
	defer s3.Close()
	s3.Preload()
	if h := s3.Health(); len(h.Gaps) != 0 || h.Quarantined != 0 {
		t.Fatalf("reopen after abandoned preload unhealthy: %+v", h)
	}
	requireStoreMatchesChain(t, s3, c)
}
