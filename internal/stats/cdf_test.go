package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.P(3); got != 0.6 {
		t.Errorf("P(3) = %v, want 0.6", got)
	}
	if got := c.P(0); got != 0 {
		t.Errorf("P(0) = %v, want 0", got)
	}
	if got := c.P(5); got != 1 {
		t.Errorf("P(5) = %v, want 1", got)
	}
	if got := c.P(2.5); got != 0.4 {
		t.Errorf("P(2.5) = %v, want 0.4", got)
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if c.Median() != 3 {
		t.Errorf("Median = %v", c.Median())
	}
	if c.Mean() != 3 {
		t.Errorf("Mean = %v", c.Mean())
	}
}

func TestCDFAddUnsorted(t *testing.T) {
	c := &CDF{}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		c.Add(v)
	}
	if got := c.Quantile(0.2); got != 1 {
		t.Errorf("Quantile(0.2) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %v, want 5", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := &CDF{}
	if c.P(10) != 0 {
		t.Error("empty CDF P should be 0")
	}
	if c.Mean() != 0 {
		t.Error("empty CDF Mean should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty CDF did not panic")
		}
	}()
	c.Quantile(0.5)
}

// Property: P is monotone non-decreasing and Quantile inverts it.
func TestCDFMonotoneProperty(t *testing.T) {
	r := NewRNG(99)
	err := quick.Check(func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		rr := NewRNG(uint64(seed))
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rr.Normal(0, 100)
		}
		c := NewCDF(samples)
		// Monotonicity at random probes.
		prev := -1.0
		probes := make([]float64, 20)
		for i := range probes {
			probes[i] = r.Normal(0, 150)
		}
		sort.Float64s(probes)
		for _, x := range probes {
			p := c.P(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		// Quantile/P round trip: P(Quantile(q)) >= q.
		for _, q := range []float64{0.1, 0.5, 0.9, 1.0} {
			if c.P(c.Quantile(q)) < q-1e-12 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	a := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	b := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if d := a.KolmogorovSmirnov(b); d > 0.01 {
		t.Fatalf("KS of identical samples = %v", d)
	}
}

func TestKolmogorovSmirnovDisjoint(t *testing.T) {
	a := NewCDF([]float64{1, 2, 3})
	b := NewCDF([]float64{100, 200, 300})
	if d := a.KolmogorovSmirnov(b); d < 0.99 {
		t.Fatalf("KS of disjoint samples = %v, want ~1", d)
	}
}

func TestKolmogorovSmirnovSimilarDistributions(t *testing.T) {
	r := NewRNG(123)
	a, b := &CDF{}, &CDF{}
	for i := 0; i < 5000; i++ {
		a.Add(r.Normal(0, 1))
		b.Add(r.Normal(0, 1))
	}
	if d := a.KolmogorovSmirnov(b); d > 0.05 {
		t.Fatalf("KS of same-distribution samples = %v, want small", d)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("points not monotone")
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("last point y = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestCDFRender(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	s := c.Render("test", "km")
	if s == "" || len(s) < 10 {
		t.Fatalf("render too short: %q", s)
	}
	empty := (&CDF{}).Render("none", "")
	if empty != "none: (no samples)" {
		t.Fatalf("empty render = %q", empty)
	}
}

func TestCDFStdDev(t *testing.T) {
	c := NewCDF([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := c.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}
