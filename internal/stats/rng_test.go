package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed generators diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	child := a.Split("model")
	// The child must be deterministic given the parent's seed.
	b := NewRNG(7)
	child2 := b.Split("model")
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

// TestSplitStableAcrossDraws is the property the sharded simulator
// depends on: a labelled split yields the same stream no matter how
// much of the parent's own stream has been consumed, so worker
// scheduling cannot perturb any shard's randomness.
func TestSplitStableAcrossDraws(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 137; i++ {
		b.Uint64() // advance b's stream only
	}
	b.Split("unrelated") // interleave an unrelated split too
	ca, cb := a.Split("region-07"), b.Split("region-07")
	for i := 0; i < 1000; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("same-label splits diverged at step %d", i)
		}
	}
	// Splitting must not consume the parent stream: a continues
	// exactly where a same-seed generator that never split would be.
	c := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatalf("Split consumed the parent stream (step %d)", i)
		}
	}
}

func TestSplitLabelAndParentIndependence(t *testing.T) {
	matches := func(x, y *RNG) int {
		same := 0
		for i := 0; i < 200; i++ {
			if x.Uint64() == y.Uint64() {
				same++
			}
		}
		return same
	}
	// Distinct labels from one parent decorrelate.
	a := NewRNG(5)
	if n := matches(a.Split("region-00"), a.Split("region-01")); n > 2 {
		t.Fatalf("distinct labels matched %d/200 outputs", n)
	}
	// Same label from distinct parents decorrelates.
	if n := matches(NewRNG(5).Split("x"), NewRNG(6).Split("x")); n > 2 {
		t.Fatalf("distinct parents matched %d/200 outputs", n)
	}
	// A child decorrelates from its parent's own stream.
	p := NewRNG(5)
	if n := matches(p.Split("x"), NewRNG(5)); n > 2 {
		t.Fatalf("child matched parent %d/200 outputs", n)
	}
	// Nested splits are order-sensitive (labels are a path, not a set).
	ab := NewRNG(5).Split("a").Split("b")
	ba := NewRNG(5).Split("b").Split("a")
	if n := matches(ab, ba); n > 2 {
		t.Fatalf("nested split order ignored: %d/200 matches", n)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(6)
	n := 50000
	sum, ss := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	variance := ss/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Errorf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(8)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(0.5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-2) > 0.1 {
		t.Fatalf("Exponential(0.5) mean = %v, want ~2", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.5, 2)
		if v < 1.5 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(10)
	for _, mean := range []float64{0.5, 3, 20, 200} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := NewRNG(11)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(12)
	p := 0.25
	n := 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	got := float64(sum) / float64(n)
	want := (1 - p) / p // mean of failures-before-success
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, got, want)
	}
}

func TestZipfHeadHeavy(t *testing.T) {
	r := NewRNG(13)
	z := NewZipf(100, 1.2)
	counts := make([]int, 101)
	for i := 0; i < 50000; i++ {
		counts[z.Rank(r)]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("rank 1 (%d) not more popular than rank 10 (%d)", counts[1], counts[10])
	}
	if counts[1] <= 0 || counts[100] < 0 {
		t.Fatal("zipf produced impossible counts")
	}
}

func TestZipfRankBounds(t *testing.T) {
	r := NewRNG(14)
	z := NewZipf(5, 1.0)
	for i := 0; i < 10000; i++ {
		rank := z.Rank(r)
		if rank < 1 || rank > 5 {
			t.Fatalf("rank out of bounds: %d", rank)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(15)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	r := NewRNG(16)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.WeightedChoice([]float64{1, 0, 9})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 7 || ratio > 11 {
		t.Fatalf("weight ratio = %v, want ~9", ratio)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(17)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}
