// Package stats provides the statistical primitives shared by the
// simulator and the measurement engine: a deterministic, splittable
// random number generator, empirical CDFs, histograms, quantiles, and
// samplers for the heavy-tailed distributions that appear throughout
// the Helium network (ownership, traffic, relay fan-out).
//
// Everything in this package is deterministic given a seed so that a
// simulated world — and therefore every figure and table derived from
// it — is exactly reproducible.
package stats

import (
	"math"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). It is deliberately not crypto-grade: its job is
// reproducible simulation, not key material. The zero value is not
// usable; construct with NewRNG.
//
// RNG is not safe for concurrent use; Split off independent streams
// for concurrent consumers instead of sharing one generator.
type RNG struct {
	seed uint64
	s    [4]uint64
}

// NewRNG returns a generator seeded from a single 64-bit seed using
// splitmix64 to fill the internal state, as recommended by the
// xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{seed: seed}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator identified by label. The
// child's stream is a pure function of r's construction seed and the
// label: splitting neither consumes r's stream nor depends on how many
// values r has already produced, so concurrent sub-models can be handed
// their streams in any order — worker scheduling included — and always
// receive the same sequences. Distinct labels (and distinct parents)
// give decorrelated streams, and nested splits compose:
// r.Split("a").Split("b") differs from r.Split("b").Split("a").
func (r *RNG) Split(label string) *RNG {
	// FNV-1a over the label, then a splitmix64 finalizer round against
	// the parent seed. The asymmetric mix keeps nested splits
	// non-commutative.
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRNG(mix64(mix64(r.seed+0x9e3779b97f4a7c15) ^ h))
}

// mix64 is the splitmix64 output function: a strong 64-bit finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exponential returns an exponentially distributed value with the
// given rate λ (mean 1/λ).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Pareto returns a Pareto(xm, alpha) distributed value: heavy-tailed,
// minimum xm, tail exponent alpha. Used for ownership and relay
// fan-out tails.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Poisson returns a Poisson-distributed count with the given mean,
// using Knuth's method for small means and a normal approximation for
// large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		n := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of Bernoulli(p) failures before the
// first success (support {0, 1, 2, ...}). p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric with p outside (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf draws from a Zipf distribution over ranks 1..n with exponent s,
// by inversion against the precomputed harmonic CDF in z.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes a Zipf(n, s) sampler. n must be >= 1.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("stats: NewZipf with n < 1")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Rank draws a rank in [1, n].
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Shuffle permutes the n elements addressed by swap using the
// Fisher–Yates algorithm.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// WeightedChoice returns an index in [0, len(weights)) chosen with
// probability proportional to weights[i]. Zero or negative weights are
// treated as zero. It panics if the total weight is not positive.
func (r *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: WeightedChoice with non-positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
