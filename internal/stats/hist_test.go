package stats

import (
	"strings"
	"testing"
)

func TestHistogramCounts(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(0)
	h.Observe(1)
	h.ObserveN(5, 3)
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(0) != 2 || h.Count(1) != 1 || h.Count(5) != 3 {
		t.Fatal("counts wrong")
	}
	if h.Count(99) != 0 {
		t.Fatal("missing value should count 0")
	}
}

func TestHistogramFractions(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 7; i++ {
		h.Observe(0)
	}
	for i := 0; i < 2; i++ {
		h.Observe(1)
	}
	h.Observe(10)
	if got := h.FracExactly(0); got != 0.7 {
		t.Errorf("FracExactly(0) = %v", got)
	}
	if got := h.FracAtMost(1); got != 0.9 {
		t.Errorf("FracAtMost(1) = %v", got)
	}
	if got := h.FracMoreThan(1); got < 0.0999 || got > 0.1001 {
		t.Errorf("FracMoreThan(1) = %v", got)
	}
	if h.Max() != 10 {
		t.Errorf("Max = %d", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.FracAtMost(5) != 0 || h.Max() != 0 || h.Total() != 0 {
		t.Fatal("empty histogram invariants violated")
	}
}

func TestHistogramValuesSorted(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{9, 1, 5, 1, 9, 3} {
		h.Observe(v)
	}
	vs := h.Values()
	want := []int{1, 3, 5, 9}
	if len(vs) != len(want) {
		t.Fatalf("Values = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vs, want)
		}
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(i % 3)
	}
	s := h.Render("moves", 10)
	if !strings.Contains(s, "moves") || !strings.Contains(s, "#") {
		t.Fatalf("render = %q", s)
	}
	capped := h.Render("moves", 2)
	if !strings.Contains(capped, ">=") {
		t.Fatalf("capped render should aggregate tail: %q", capped)
	}
}

func TestTimeSeriesSortAndCumulative(t *testing.T) {
	ts := NewTimeSeries("adds")
	ts.Append(3, 5)
	ts.Append(1, 2)
	ts.Append(2, 3)
	cum := ts.Cumulative()
	if cum.Len() != 3 {
		t.Fatalf("len = %d", cum.Len())
	}
	wantX := []int64{1, 2, 3}
	wantY := []float64{2, 5, 10}
	for i := range wantX {
		if cum.Xs[i] != wantX[i] || cum.Ys[i] != wantY[i] {
			t.Fatalf("cumulative = %v/%v", cum.Xs, cum.Ys)
		}
	}
	if cum.MaxY() != 10 {
		t.Fatalf("MaxY = %v", cum.MaxY())
	}
}

func TestTimeSeriesRender(t *testing.T) {
	ts := NewTimeSeries("traffic")
	for i := int64(0); i < 100; i++ {
		ts.Append(i, float64(i))
	}
	s := ts.Render(20)
	if !strings.Contains(s, "traffic") {
		t.Fatalf("render = %q", s)
	}
	if (&TimeSeries{Name: "x"}).Render(10) != "x: (empty)" {
		t.Fatal("empty series render wrong")
	}
}
