package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function built from a
// sample. It answers both directions: P(X <= x) and the quantile
// function. The zero value is empty; add samples with Add or build one
// from a slice with NewCDF.
type CDF struct {
	sorted  bool
	samples []float64
}

// NewCDF builds an empirical CDF from the given samples. The input
// slice is copied.
func NewCDF(samples []float64) *CDF {
	c := &CDF{samples: append([]float64(nil), samples...)}
	c.sort()
	return c
}

// Add appends a sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Clone returns an independent deep copy, preserving sample order and
// sortedness — a cloned-then-queried CDF is structurally identical to
// the original after the same queries.
func (c *CDF) Clone() *CDF {
	return &CDF{sorted: c.sorted, samples: append([]float64(nil), c.samples...)}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.samples) }

// P returns the empirical P(X <= x). It returns 0 for an empty CDF.
func (c *CDF) P(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-
// rank method. It panics on an empty CDF or out-of-range q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile q outside [0,1]")
	}
	c.sort()
	if q == 0 {
		return c.samples[0]
	}
	i := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.samples) {
		i = len(c.samples) - 1
	}
	return c.samples[i]
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min returns the smallest sample.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		panic("stats: Min of empty CDF")
	}
	c.sort()
	return c.samples[0]
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		panic("stats: Max of empty CDF")
	}
	c.sort()
	return c.samples[len(c.samples)-1]
}

// Mean returns the arithmetic mean of the samples (0 for empty).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range c.samples {
		sum += x
	}
	return sum / float64(len(c.samples))
}

// StdDev returns the population standard deviation of the samples.
func (c *CDF) StdDev() float64 {
	n := len(c.samples)
	if n == 0 {
		return 0
	}
	m := c.Mean()
	ss := 0.0
	for _, x := range c.samples {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Points returns up to n evenly spaced (x, P(X<=x)) points suitable
// for plotting the CDF as a line series. Fewer points are returned if
// the sample is smaller than n.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.sort()
	if n > len(c.samples) {
		n = len(c.samples)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.samples) - 1) / max(n-1, 1)
		pts = append(pts, Point{
			X: c.samples[idx],
			Y: float64(idx+1) / float64(len(c.samples)),
		})
	}
	return pts
}

// Point is a single (x, y) plot point.
type Point struct {
	X, Y float64
}

// Render returns a compact textual rendering of the CDF at a fixed set
// of probe quantiles, for inclusion in experiment reports.
func (c *CDF) Render(label, unit string) string {
	if len(c.samples) == 0 {
		return fmt.Sprintf("%s: (no samples)", label)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d): ", label, len(c.samples))
	for i, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "p%02.0f=%.4g%s", q*100, c.Quantile(q), unit)
	}
	return b.String()
}

// KolmogorovSmirnov returns the two-sample KS statistic between c and
// other: the maximum absolute difference between the two empirical
// CDFs. Used by the relay-randomization analysis (Fig 11) to decide
// whether the observed assignment is consistent with random choice.
func (c *CDF) KolmogorovSmirnov(other *CDF) float64 {
	if c.N() == 0 || other.N() == 0 {
		return 1
	}
	c.sort()
	other.sort()
	maxD := 0.0
	i, j := 0, 0
	na, nb := float64(c.N()), float64(other.N())
	for i < c.N() && j < other.N() {
		// Advance past ties on both sides together so equal values do
		// not create a spurious CDF gap.
		x := math.Min(c.samples[i], other.samples[j])
		for i < c.N() && c.samples[i] == x {
			i++
		}
		for j < other.N() && other.samples[j] == x {
			j++
		}
		d := math.Abs(float64(i)/na - float64(j)/nb)
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}
