package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts integer-valued observations, such as "number of
// moves per hotspot" or "peers per relay". It keeps exact counts per
// value rather than binning, since the distributions in this study are
// small-integer valued with heavy tails.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Observe records one observation of value v.
func (h *Histogram) Observe(v int) { h.ObserveN(v, 1) }

// ObserveN records n observations of value v.
func (h *Histogram) ObserveN(v, n int) {
	h.counts[v] += n
	h.total += n
}

// Shift moves one observation from value `from` to value `to` without
// changing the total — the incremental-view update for "this hotspot's
// move count just went from n-1 to n". A count that reaches zero is
// deleted so the histogram stays structurally identical to one built
// by observing each final value exactly once.
func (h *Histogram) Shift(from, to int) {
	h.counts[from]--
	if h.counts[from] == 0 {
		delete(h.counts, from)
	}
	h.counts[to]++
}

// Clone returns an independent deep copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{counts: make(map[int]int, len(h.counts)), total: h.total}
	for v, n := range h.counts {
		c.counts[v] = n
	}
	return c
}

// Count returns the number of observations of exactly v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// FracAtMost returns the fraction of observations with value <= v.
func (h *Histogram) FracAtMost(v int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for val, c := range h.counts {
		if val <= v {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// FracExactly returns the fraction of observations with value == v.
func (h *Histogram) FracExactly(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// FracMoreThan returns the fraction of observations with value > v.
func (h *Histogram) FracMoreThan(v int) float64 {
	return 1 - h.FracAtMost(v)
}

// Max returns the largest observed value (0 if empty).
func (h *Histogram) Max() int {
	m := 0
	first := true
	for v := range h.counts {
		if first || v > m {
			m = v
			first = false
		}
	}
	return m
}

// Values returns the observed values in ascending order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Render returns a fixed-width textual bar chart of the histogram,
// capped at maxRows rows (remaining values are aggregated into a final
// ">= v" row). Suitable for experiment logs.
func (h *Histogram) Render(label string, maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", label, h.total)
	vs := h.Values()
	peak := 0
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	rows := 0
	for i, v := range vs {
		if maxRows > 0 && rows >= maxRows-1 && i < len(vs)-1 {
			rest := 0
			for _, v2 := range vs[i:] {
				rest += h.counts[v2]
			}
			fmt.Fprintf(&b, "  >=%4d %8d\n", v, rest)
			break
		}
		c := h.counts[v]
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", c*40/peak)
		}
		fmt.Fprintf(&b, "  %6d %8d %s\n", v, c, bar)
		rows++
	}
	return b.String()
}

// TimeSeries is an append-only series of (index, value) pairs, used
// for daily-growth and per-block traffic plots. Indices are abstract
// (day number, block height).
type TimeSeries struct {
	Name   string
	Xs     []int64
	Ys     []float64
	sorted bool
}

// NewTimeSeries returns an empty named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Append adds one point. Points may arrive out of order.
func (t *TimeSeries) Append(x int64, y float64) {
	t.Xs = append(t.Xs, x)
	t.Ys = append(t.Ys, y)
	t.sorted = false
}

// Len returns the number of points.
func (t *TimeSeries) Len() int { return len(t.Xs) }

// Clone returns an independent deep copy, preserving sortedness.
func (t *TimeSeries) Clone() *TimeSeries {
	return &TimeSeries{
		Name:   t.Name,
		Xs:     append([]int64(nil), t.Xs...),
		Ys:     append([]float64(nil), t.Ys...),
		sorted: t.sorted,
	}
}

// Sort orders the series by x.
func (t *TimeSeries) Sort() {
	if t.sorted {
		return
	}
	idx := make([]int, len(t.Xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return t.Xs[idx[a]] < t.Xs[idx[b]] })
	xs := make([]int64, len(t.Xs))
	ys := make([]float64, len(t.Ys))
	for i, j := range idx {
		xs[i] = t.Xs[j]
		ys[i] = t.Ys[j]
	}
	t.Xs, t.Ys = xs, ys
	t.sorted = true
}

// Cumulative returns a new series whose y values are the running sum
// of t's (after sorting by x).
func (t *TimeSeries) Cumulative() *TimeSeries {
	t.Sort()
	out := NewTimeSeries(t.Name + " (cumulative)")
	sum := 0.0
	for i := range t.Xs {
		sum += t.Ys[i]
		out.Append(t.Xs[i], sum)
	}
	out.sorted = true
	return out
}

// MaxY returns the maximum y value (0 for empty).
func (t *TimeSeries) MaxY() float64 {
	m := 0.0
	for i, y := range t.Ys {
		if i == 0 || y > m {
			m = y
		}
	}
	return m
}

// Render returns a sparkline-style textual rendering with at most
// width buckets, averaging y within each bucket.
func (t *TimeSeries) Render(width int) string {
	if t.Len() == 0 || width <= 0 {
		return t.Name + ": (empty)"
	}
	t.Sort()
	minX, maxX := t.Xs[0], t.Xs[len(t.Xs)-1]
	span := maxX - minX
	if span == 0 {
		span = 1
	}
	sums := make([]float64, width)
	counts := make([]int, width)
	for i := range t.Xs {
		b := int((t.Xs[i] - minX) * int64(width-1) / span)
		sums[b] += t.Ys[i]
		counts[b]++
	}
	levels := []rune(" .:-=+*#%@")
	maxAvg := 0.0
	avgs := make([]float64, width)
	for i := range sums {
		if counts[i] > 0 {
			avgs[i] = sums[i] / float64(counts[i])
			if avgs[i] > maxAvg {
				maxAvg = avgs[i]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s [x=%d..%d, max=%.4g] ", t.Name, minX, maxX, maxAvg)
	for i := range avgs {
		l := 0
		if maxAvg > 0 {
			l = int(avgs[i] / maxAvg * float64(len(levels)-1))
		}
		b.WriteRune(levels[l])
	}
	return b.String()
}
