// Package econ implements Helium's crypto-economic machinery to the
// depth the paper's analyses need (§2.4, §5.3.2): the epoch mint
// schedule, the reward split across PoC roles and data transfer, the
// HIP10 cap that ended the August 2020 data-spam arbitrage, the
// burn-and-mint DC peg, and a deterministic HNT price series.
package econ

import (
	"math"
	"sort"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/stats"
)

// EpochBlocks is the reward epoch length in blocks (~30 min).
const EpochBlocks = 30

// MonthlyMintHNT is the pre-halving net emission rate: five million
// HNT per month.
const MonthlyMintHNT = 5_000_000

// EpochMintBones returns the HNT (in bones) minted per epoch.
func EpochMintBones() int64 {
	epochsPerMonth := 30 * 24 * 60 / EpochBlocks // minutes per month / epoch minutes
	return int64(float64(MonthlyMintHNT) / float64(epochsPerMonth) * chain.BonesPerHNT)
}

// RewardSplit is the fraction of each epoch's mint allocated to each
// role. Fractions sum to 1.
type RewardSplit struct {
	Challenger float64
	Challengee float64
	Witness    float64
	Data       float64
	Consensus  float64
	Securities float64
}

// DefaultSplit follows the 2020–21 era allocation the paper describes:
// data transfer 32.5% (§5.3.2), the rest split across PoC roles,
// consensus, and security holders.
func DefaultSplit() RewardSplit {
	return RewardSplit{
		Challenger: 0.0095,
		Challengee: 0.052,
		Witness:    0.2124,
		Data:       0.325,
		Consensus:  0.06,
		Securities: 0.3411,
	}
}

// Sum returns the total of all fractions (≈1).
func (s RewardSplit) Sum() float64 {
	return s.Challenger + s.Challengee + s.Witness + s.Data + s.Consensus + s.Securities
}

// HIP10Date is when usage-based data-transfer rewards (the cap on the
// arbitrage) activated: August 24, 2020 (§5.3.2).
var HIP10Date = time.Date(2020, 8, 24, 0, 0, 0, 0, time.UTC)

// DCPaymentsLiveDate is when DC payments first went live — the start
// of the arbitrage window (§5.3.2).
var DCPaymentsLiveDate = time.Date(2020, 8, 12, 0, 0, 0, 0, time.UTC)

// EpochActivity summarizes what happened during one epoch, the input
// to reward computation.
type EpochActivity struct {
	// ChallengesByChallenger counts challenges each hotspot issued.
	ChallengesByChallenger map[string]int
	// ChallengeesBeaconed counts times each hotspot transmitted a
	// challenge beacon.
	ChallengeesBeaconed map[string]int
	// WitnessQuality accumulates per-hotspot witness credit (valid
	// witnesses, weighted by per-receipt witness count upstream).
	WitnessQuality map[string]float64
	// DataDC is the DC each hotspot earned ferrying packets.
	DataDC map[string]int64
	// ConsensusMembers took part in block production.
	ConsensusMembers []string
}

// RewardPolicy computes epoch rewards.
type RewardPolicy struct {
	Split RewardSplit
	// HIP10 toggles the usage-based data reward cap. When false
	// (pre-Aug 24 2020), the full data pool is shared proportionally
	// regardless of DC value — the arbitrage the paper documents.
	HIP10 bool
	// USDPerHNT is the oracle price used by the HIP10 cap.
	USDPerHNT float64
	// SecuritiesAccount receives the securities tranche.
	SecuritiesAccount string
}

// ownerOf resolves a hotspot address to its reward account; the
// simulator passes a closure over ledger state.
type OwnerResolver func(hotspot string) (owner string, ok bool)

// sortedKeys returns a map's keys in sorted order. Reward entries land
// on the chain, so both the emission order and every floating-point
// accumulation over these maps must be independent of Go's randomized
// map iteration for a generated chain to be bit-reproducible.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ComputeRewards produces the rewards transaction entries for one
// epoch. HIP10 behaviour (§5.3.2):
//
//   - off: the whole Data tranche is divided among hotspots in
//     proportion to DC carried. Spam inflates your share — arbitrage.
//   - on: each hotspot's data reward is capped at the HNT equivalent
//     of the DC it actually burned; surplus flows back to the PoC
//     tranches (challengee + witness, pro rata).
func (p RewardPolicy) ComputeRewards(epoch int64, act EpochActivity, owner OwnerResolver) []chain.RewardEntry {
	mint := float64(EpochMintBones())
	var entries []chain.RewardEntry
	add := func(hotspot string, bones float64, kind chain.RewardKind) {
		if bones < 1 {
			return
		}
		acct, ok := owner(hotspot)
		if !ok {
			return
		}
		entries = append(entries, chain.RewardEntry{
			Account:     acct,
			Gateway:     hotspot,
			AmountBones: int64(bones),
			Kind:        kind,
		})
	}

	// Challenger tranche: flat per challenge (§2.3: "Challenger
	// rewards are fixed").
	challengerPool := mint * p.Split.Challenger
	challengerKeys := sortedKeys(act.ChallengesByChallenger)
	totalChallenges := 0
	for _, hs := range challengerKeys {
		totalChallenges += act.ChallengesByChallenger[hs]
	}
	if totalChallenges > 0 {
		per := challengerPool / float64(totalChallenges)
		for _, hs := range challengerKeys {
			add(hs, per*float64(act.ChallengesByChallenger[hs]), chain.RewardChallenger)
		}
	}

	// Data tranche.
	dataPool := mint * p.Split.Data
	dataKeys := sortedKeys(act.DataDC)
	var totalDC int64
	for _, hs := range dataKeys {
		totalDC += act.DataDC[hs]
	}
	surplus := 0.0
	if totalDC > 0 {
		if !p.HIP10 {
			for _, hs := range dataKeys {
				add(hs, dataPool*float64(act.DataDC[hs])/float64(totalDC), chain.RewardData)
			}
		} else {
			// Cap at DC value in HNT.
			bonesPerDC := chain.USDPerDC / p.USDPerHNT * chain.BonesPerHNT
			spent := 0.0
			for _, hs := range dataKeys {
				dc := act.DataDC[hs]
				share := dataPool * float64(dc) / float64(totalDC)
				cap := float64(dc) * bonesPerDC
				if share > cap {
					share = cap
				}
				spent += share
				add(hs, share, chain.RewardData)
			}
			surplus = dataPool - spent
		}
	} else {
		surplus = dataPool
	}

	// Challengee and witness tranches share any HIP10 surplus pro
	// rata.
	beaconPool := mint * p.Split.Challengee
	witnessPool := mint * p.Split.Witness
	if surplus > 0 {
		total := p.Split.Challengee + p.Split.Witness
		if total > 0 {
			beaconPool += surplus * p.Split.Challengee / total
			witnessPool += surplus * p.Split.Witness / total
		}
	}
	beaconKeys := sortedKeys(act.ChallengeesBeaconed)
	totalBeacons := 0
	for _, hs := range beaconKeys {
		totalBeacons += act.ChallengeesBeaconed[hs]
	}
	if totalBeacons > 0 {
		per := beaconPool / float64(totalBeacons)
		for _, hs := range beaconKeys {
			add(hs, per*float64(act.ChallengeesBeaconed[hs]), chain.RewardChallengee)
		}
	}
	witnessKeys := sortedKeys(act.WitnessQuality)
	totalQuality := 0.0
	for _, hs := range witnessKeys {
		totalQuality += act.WitnessQuality[hs]
	}
	if totalQuality > 0 {
		for _, hs := range witnessKeys {
			add(hs, witnessPool*act.WitnessQuality[hs]/totalQuality, chain.RewardWitness)
		}
	}

	// Consensus tranche.
	if n := len(act.ConsensusMembers); n > 0 {
		per := mint * p.Split.Consensus / float64(n)
		for _, hs := range act.ConsensusMembers {
			add(hs, per, chain.RewardConsensus)
		}
	}

	// Securities tranche goes to the configured account directly.
	if p.SecuritiesAccount != "" {
		entries = append(entries, chain.RewardEntry{
			Account:     p.SecuritiesAccount,
			AmountBones: int64(mint * p.Split.Securities),
			Kind:        chain.RewardConsensus,
		})
	}
	return entries
}

// PriceSeries is a deterministic daily HNT/USD price path.
type PriceSeries struct {
	Start  time.Time
	Prices []float64 // one per day
}

// GeneratePrices builds a geometric-random-walk price path from
// launch: starting around $0.30 in mid-2019, drifting upward through
// the 2021 speculation run, with daily volatility. The May 2021 window
// is rescaled into the paper's observed $8.32–19.70 band.
func GeneratePrices(start time.Time, days int, rng *stats.RNG) PriceSeries {
	prices := make([]float64, days)
	p := 0.30
	for i := 0; i < days; i++ {
		t := float64(i) / float64(days)
		drift := 0.004 + 0.012*t // accelerating speculative drift
		p *= math.Exp(rng.Normal(drift, 0.06))
		if p < 0.05 {
			p = 0.05
		}
		prices[i] = p
	}
	// Rescale so the final month sits in the paper's observed band.
	if days > 30 {
		maxLast := 0.0
		for _, v := range prices[days-30:] {
			if v > maxLast {
				maxLast = v
			}
		}
		if maxLast > 0 {
			scale := 17.0 / maxLast
			for i := range prices {
				prices[i] *= scale
			}
		}
	}
	return PriceSeries{Start: start, Prices: prices}
}

// At returns the price on the given date, clamping outside the range.
func (s PriceSeries) At(t time.Time) float64 {
	if len(s.Prices) == 0 {
		return 1
	}
	d := int(t.Sub(s.Start).Hours() / 24)
	if d < 0 {
		d = 0
	}
	if d >= len(s.Prices) {
		d = len(s.Prices) - 1
	}
	return s.Prices[d]
}

// ArbitrageProfitPerDC returns how many USD of HNT one spammed DC of
// self-traffic yielded under the pre-HIP10 rules, given the share of
// total epoch traffic the spammer controls. Values far above the
// $0.00001 cost of the DC are what made spamming profitable (§5.3.2).
func ArbitrageProfitPerDC(split RewardSplit, usdPerHNT float64, spammerDC, totalDC int64) float64 {
	if totalDC <= 0 || spammerDC <= 0 {
		return 0
	}
	poolHNT := float64(EpochMintBones()) / chain.BonesPerHNT * split.Data
	shareHNT := poolHNT * float64(spammerDC) / float64(totalDC)
	return shareHNT * usdPerHNT / float64(spammerDC)
}
