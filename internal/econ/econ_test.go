package econ

import (
	"math"
	"testing"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/stats"
)

func ownerAll(hs string) (string, bool) { return "owner-" + hs, true }

func TestEpochMint(t *testing.T) {
	bones := EpochMintBones()
	// 5M HNT / month over 1440 epochs/month ≈ 3472 HNT/epoch.
	hnt := float64(bones) / chain.BonesPerHNT
	if math.Abs(hnt-3472.2) > 1 {
		t.Fatalf("epoch mint = %v HNT", hnt)
	}
}

func TestDefaultSplitSums(t *testing.T) {
	if s := DefaultSplit().Sum(); math.Abs(s-1) > 0.001 {
		t.Fatalf("split sums to %v", s)
	}
}

func TestChallengerRewardsFlat(t *testing.T) {
	p := RewardPolicy{Split: DefaultSplit(), HIP10: true, USDPerHNT: 15}
	act := EpochActivity{
		ChallengesByChallenger: map[string]int{"a": 2, "b": 1},
	}
	entries := p.ComputeRewards(1, act, ownerAll)
	var ra, rb int64
	for _, e := range entries {
		if e.Kind == chain.RewardChallenger {
			switch e.Gateway {
			case "a":
				ra = e.AmountBones
			case "b":
				rb = e.AmountBones
			}
		}
	}
	if ra == 0 || rb == 0 {
		t.Fatal("challenger rewards missing")
	}
	if math.Abs(float64(ra)/float64(rb)-2) > 0.01 {
		t.Fatalf("per-challenge reward not flat: %d vs %d", ra, rb)
	}
}

func TestPreHIP10ArbitrageDynamics(t *testing.T) {
	// Pre-HIP10, a spammer with most of the traffic captures most of
	// the (huge) data pool.
	p := RewardPolicy{Split: DefaultSplit(), HIP10: false, USDPerHNT: 0.5}
	act := EpochActivity{
		DataDC: map[string]int64{"spammer": 9000, "honest": 1000},
	}
	entries := p.ComputeRewards(1, act, ownerAll)
	rewards := map[string]int64{}
	for _, e := range entries {
		if e.Kind == chain.RewardData {
			rewards[e.Gateway] = e.AmountBones
		}
	}
	pool := float64(EpochMintBones()) * DefaultSplit().Data
	if got := float64(rewards["spammer"]); math.Abs(got-pool*0.9)/pool > 0.01 {
		t.Fatalf("spammer reward = %v, want 90%% of pool %v", got, pool)
	}
	// The spammer's HNT haul massively exceeds what the DC cost.
	bonesPerDC := chain.USDPerDC / 0.5 * chain.BonesPerHNT
	costBones := 9000 * bonesPerDC
	if float64(rewards["spammer"]) < costBones*10 {
		t.Fatalf("arbitrage not profitable: reward %d vs cost %v", rewards["spammer"], costBones)
	}
}

func TestHIP10CapsDataRewards(t *testing.T) {
	p := RewardPolicy{Split: DefaultSplit(), HIP10: true, USDPerHNT: 0.5}
	act := EpochActivity{
		DataDC:              map[string]int64{"spammer": 9000, "honest": 1000},
		ChallengeesBeaconed: map[string]int{"poc-hs": 1},
		WitnessQuality:      map[string]float64{"w1": 1},
	}
	entries := p.ComputeRewards(1, act, ownerAll)
	bonesPerDC := chain.USDPerDC / 0.5 * chain.BonesPerHNT
	var dataTotal, beacon, witness float64
	for _, e := range entries {
		switch e.Kind {
		case chain.RewardData:
			dataTotal += float64(e.AmountBones)
			cap := float64(9000) * bonesPerDC
			if e.Gateway == "spammer" && float64(e.AmountBones) > cap*1.01 {
				t.Fatalf("spammer reward %d exceeds HIP10 cap %v", e.AmountBones, cap)
			}
		case chain.RewardChallengee:
			beacon += float64(e.AmountBones)
		case chain.RewardWitness:
			witness += float64(e.AmountBones)
		}
	}
	// Surplus flowed to PoC: beacon pool exceeds its base tranche.
	basePool := float64(EpochMintBones()) * DefaultSplit().Challengee
	if beacon <= basePool {
		t.Fatalf("beacon pool %v did not receive surplus (base %v)", beacon, basePool)
	}
	if witness <= float64(EpochMintBones())*DefaultSplit().Witness {
		t.Fatal("witness pool did not receive surplus")
	}
}

func TestNoDataEpochShiftsPoolToPoC(t *testing.T) {
	p := RewardPolicy{Split: DefaultSplit(), HIP10: true, USDPerHNT: 15}
	act := EpochActivity{
		ChallengeesBeaconed: map[string]int{"hs": 1},
		WitnessQuality:      map[string]float64{"w": 1},
	}
	entries := p.ComputeRewards(1, act, ownerAll)
	var beacon float64
	for _, e := range entries {
		if e.Kind == chain.RewardChallengee {
			beacon += float64(e.AmountBones)
		}
	}
	base := float64(EpochMintBones()) * DefaultSplit().Challengee
	if beacon <= base*1.5 {
		t.Fatalf("empty-data epoch beacon pool = %v, want well above base %v", beacon, base)
	}
}

func TestConsensusAndSecurities(t *testing.T) {
	p := RewardPolicy{Split: DefaultSplit(), HIP10: true, USDPerHNT: 15, SecuritiesAccount: "helium-inc"}
	act := EpochActivity{ConsensusMembers: []string{"c1", "c2"}}
	entries := p.ComputeRewards(1, act, ownerAll)
	var consensus int
	var securities int64
	for _, e := range entries {
		if e.Kind == chain.RewardConsensus {
			if e.Account == "helium-inc" {
				securities = e.AmountBones
			} else {
				consensus++
			}
		}
	}
	if consensus != 2 {
		t.Fatalf("consensus entries = %d", consensus)
	}
	want := int64(float64(EpochMintBones()) * DefaultSplit().Securities)
	if securities < want-1 || securities > want+1 {
		t.Fatalf("securities = %d, want ~%d", securities, want)
	}
}

func TestUnresolvableOwnerSkipped(t *testing.T) {
	p := RewardPolicy{Split: DefaultSplit(), HIP10: true, USDPerHNT: 15}
	act := EpochActivity{ChallengesByChallenger: map[string]int{"ghost": 1}}
	entries := p.ComputeRewards(1, act, func(string) (string, bool) { return "", false })
	if len(entries) != 0 {
		t.Fatalf("entries for unresolvable hotspots: %v", entries)
	}
}

func TestPriceSeries(t *testing.T) {
	start := time.Date(2019, 7, 29, 0, 0, 0, 0, time.UTC)
	s := GeneratePrices(start, 670, stats.NewRNG(7))
	if len(s.Prices) != 670 {
		t.Fatalf("len = %d", len(s.Prices))
	}
	for i, p := range s.Prices {
		if p <= 0 || math.IsNaN(p) {
			t.Fatalf("price[%d] = %v", i, p)
		}
	}
	// Final month must sit within a speculative band near the paper's
	// May 2021 range.
	final := s.Prices[len(s.Prices)-30:]
	maxP := 0.0
	for _, p := range final {
		if p > maxP {
			maxP = p
		}
	}
	if maxP < 10 || maxP > 25 {
		t.Fatalf("final month max = %v, want near the $8–20 band", maxP)
	}
	// Early prices are far lower: the speculation run happened.
	if s.Prices[30] > s.Prices[len(s.Prices)-1] {
		t.Fatal("no upward drift")
	}
	// At() clamps.
	if s.At(start.AddDate(0, 0, -10)) != s.Prices[0] {
		t.Fatal("At before start not clamped")
	}
	if s.At(start.AddDate(5, 0, 0)) != s.Prices[len(s.Prices)-1] {
		t.Fatal("At after end not clamped")
	}
	if (PriceSeries{}).At(start) != 1 {
		t.Fatal("empty series fallback")
	}
}

func TestArbitrageProfit(t *testing.T) {
	split := DefaultSplit()
	// A spammer controlling 90% of a small traffic day at $0.50/HNT.
	profit := ArbitrageProfitPerDC(split, 0.5, 9_000, 10_000)
	if profit <= chain.USDPerDC {
		t.Fatalf("arbitrage profit %v per DC not above cost %v", profit, chain.USDPerDC)
	}
	if ArbitrageProfitPerDC(split, 0.5, 0, 100) != 0 || ArbitrageProfitPerDC(split, 0.5, 10, 0) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestHIP10Dates(t *testing.T) {
	if !DCPaymentsLiveDate.Before(HIP10Date) {
		t.Fatal("arbitrage window inverted")
	}
	if HIP10Date.Sub(DCPaymentsLiveDate) != 12*24*time.Hour {
		t.Fatalf("window = %v", HIP10Date.Sub(DCPaymentsLiveDate))
	}
}

// Property: total rewards never exceed the epoch mint (minus the
// tranches with no participants), for arbitrary activity.
func TestRewardsBoundedProperty(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 200; trial++ {
		act := EpochActivity{
			ChallengesByChallenger: map[string]int{},
			ChallengeesBeaconed:    map[string]int{},
			WitnessQuality:         map[string]float64{},
			DataDC:                 map[string]int64{},
		}
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			hs := "hs" + string(rune('a'+i))
			if rng.Bool(0.7) {
				act.ChallengesByChallenger[hs] = 1 + rng.Intn(3)
			}
			if rng.Bool(0.7) {
				act.ChallengeesBeaconed[hs] = 1 + rng.Intn(3)
			}
			if rng.Bool(0.7) {
				act.WitnessQuality[hs] = rng.Float64() * 10
			}
			if rng.Bool(0.5) {
				act.DataDC[hs] = int64(rng.Intn(100000))
			}
		}
		p := RewardPolicy{
			Split:             DefaultSplit(),
			HIP10:             rng.Bool(0.5),
			USDPerHNT:         0.1 + rng.Float64()*20,
			SecuritiesAccount: "sec",
		}
		var total int64
		for _, e := range p.ComputeRewards(int64(trial), act, ownerAll) {
			if e.AmountBones < 0 {
				t.Fatalf("negative reward: %+v", e)
			}
			total += e.AmountBones
		}
		if total > EpochMintBones()+1 {
			t.Fatalf("trial %d: rewards %d exceed mint %d", trial, total, EpochMintBones())
		}
	}
}
