package device

import (
	"math"
	"testing"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/lorawan"
)

func testDevice() *Device {
	var key lorawan.AppKey
	copy(key[:], "another-test-key")
	return New(lorawan.EUIFromUint64(1), lorawan.EUIFromUint64(2), key)
}

// acceptJoin simulates the router side of OTAA for tests.
func acceptJoin(t *testing.T, d *Device) lorawan.SessionKeys {
	t.Helper()
	jrWire := d.BuildJoinRequest()
	jr, err := lorawan.Parse(jrWire)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Verify(d.AppKey[:]); err != nil {
		t.Fatal("join request MIC invalid")
	}
	accept := &lorawan.Frame{MType: lorawan.JoinAcceptType, JoinNonce: 42, DevAddr: 0x48000001}
	if err := d.HandleJoinAccept(accept.Marshal(d.AppKey[:])); err != nil {
		t.Fatal(err)
	}
	return lorawan.DeriveSessionKeys(d.AppKey, jr.DevNonce, 42)
}

func TestJoinLifecycle(t *testing.T) {
	d := testDevice()
	if d.Joined() {
		t.Fatal("fresh device joined")
	}
	if _, err := d.SendCounter(0, geo.Point{}); err != ErrNotJoined {
		t.Fatalf("send before join: %v", err)
	}
	acceptJoin(t, d)
	if !d.Joined() || d.DevAddr() != 0x48000001 {
		t.Fatal("join state wrong")
	}
}

func TestHandleJoinAcceptErrors(t *testing.T) {
	d := testDevice()
	d.BuildJoinRequest()
	// Not a join accept.
	data := &lorawan.Frame{MType: lorawan.UnconfirmedDataDown, DevAddr: 1}
	if err := d.HandleJoinAccept(data.Marshal(d.AppKey[:])); err != ErrNotJoinAccept {
		t.Fatalf("wrong type: %v", err)
	}
	// Bad MIC.
	accept := &lorawan.Frame{MType: lorawan.JoinAcceptType, JoinNonce: 1, DevAddr: 5}
	if err := d.HandleJoinAccept(accept.Marshal([]byte("wrong"))); err == nil {
		t.Fatal("bad MIC accepted")
	}
	// Garbage.
	if err := d.HandleJoinAccept([]byte{1}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCounterAppRoundTrip(t *testing.T) {
	d := testDevice()
	keys := acceptJoin(t, d)
	loc := geo.Point{Lat: 32.7157, Lon: -117.1611}
	wire, err := d.SendCounter(100.5, loc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lorawan.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if f.MType != lorawan.ConfirmedDataUp || f.DevAddr != d.DevAddr() {
		t.Fatalf("frame = %+v", f)
	}
	if err := f.Verify(keys.NwkSKey[:]); err != nil {
		t.Fatal("uplink MIC invalid")
	}
	payload, err := ParseCounterPayload(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if payload.Counter != 1 {
		t.Fatalf("counter = %d", payload.Counter)
	}
	if math.Abs(payload.Lat-loc.Lat) > 1e-4 || math.Abs(payload.Lon-loc.Lon) > 1e-4 {
		t.Fatalf("gps round trip = %v/%v", payload.Lat, payload.Lon)
	}
	if math.Abs(payload.Timestamp-100.5) > 0.01 {
		t.Fatalf("timestamp = %v", payload.Timestamp)
	}
	if _, err := ParseCounterPayload([]byte{1, 2}); err == nil {
		t.Fatal("short payload parsed")
	}
}

func TestAckUpdatesLog(t *testing.T) {
	d := testDevice()
	keys := acceptJoin(t, d)
	wire, _ := d.SendCounter(10, geo.Point{})
	f, _ := lorawan.Parse(wire)
	ack := &lorawan.Frame{
		MType:   lorawan.UnconfirmedDataDown,
		DevAddr: d.DevAddr(),
		FCtrl:   lorawan.FCtrl{ACK: true},
		FCnt:    f.FCnt,
	}
	if err := d.HandleDownlink(ack.Marshal(keys.NwkSKey[:]), 1); err != nil {
		t.Fatal(err)
	}
	log := d.Log()
	if len(log) != 1 || !log[0].Acked || log[0].AckWindow != 1 {
		t.Fatalf("log = %+v", log)
	}
}

func TestAckValidation(t *testing.T) {
	d := testDevice()
	keys := acceptJoin(t, d)
	d.SendCounter(10, geo.Point{})
	// Wrong DevAddr.
	wrongAddr := &lorawan.Frame{MType: lorawan.UnconfirmedDataDown, DevAddr: 0x99, FCtrl: lorawan.FCtrl{ACK: true}, FCnt: 1}
	if err := d.HandleDownlink(wrongAddr.Marshal(keys.NwkSKey[:]), 1); err == nil {
		t.Fatal("foreign downlink accepted")
	}
	// Bad MIC.
	badMic := &lorawan.Frame{MType: lorawan.UnconfirmedDataDown, DevAddr: d.DevAddr(), FCtrl: lorawan.FCtrl{ACK: true}, FCnt: 1}
	if err := d.HandleDownlink(badMic.Marshal([]byte("nope")), 1); err == nil {
		t.Fatal("bad MIC downlink accepted")
	}
	// Stale FCnt does not mark the latest packet.
	d.SendCounter(12, geo.Point{})
	stale := &lorawan.Frame{MType: lorawan.UnconfirmedDataDown, DevAddr: d.DevAddr(), FCtrl: lorawan.FCtrl{ACK: true}, FCnt: 1}
	if err := d.HandleDownlink(stale.Marshal(keys.NwkSKey[:]), 2); err != nil {
		t.Fatal(err)
	}
	log := d.Log()
	if log[len(log)-1].Acked {
		t.Fatal("stale ACK marked the latest packet")
	}
}

func TestNextSendDelay(t *testing.T) {
	// §8.1 footnote: ACK on first try → 1 packet/second; never ACK'd →
	// 1 packet per 2 seconds.
	if NextSendDelay(true, 1) != 1 {
		t.Fatal("RX1 ack should allow 1 s cadence")
	}
	if NextSendDelay(true, 2) != 2 || NextSendDelay(false, 0) != 2 {
		t.Fatal("RX2/NACK should give 2 s cadence")
	}
}

func TestWalkGeometry(t *testing.T) {
	start := geo.Point{Lat: 32.7, Lon: -117.16}
	end := geo.Destination(start, 90, 1) // 1 km east
	w := Walk{Waypoints: []geo.Point{start, end}, SpeedKmh: 4}
	// 1 km at 4 km/h = 900 s.
	if d := w.Duration(); math.Abs(d-900) > 1 {
		t.Fatalf("duration = %v", d)
	}
	if got := w.PositionAt(0); geo.HaversineKm(got, start) > 0.001 {
		t.Fatal("start position wrong")
	}
	mid := w.PositionAt(450)
	if d := geo.HaversineKm(start, mid); math.Abs(d-0.5) > 0.01 {
		t.Fatalf("midpoint distance = %v", d)
	}
	// Past the end clamps.
	if got := w.PositionAt(5000); geo.HaversineKm(got, end) > 0.001 {
		t.Fatal("end position wrong")
	}
}

func TestWalkMultiLeg(t *testing.T) {
	a := geo.Point{Lat: 32.7, Lon: -117.16}
	b := geo.Destination(a, 0, 0.5)
	c := geo.Destination(b, 90, 0.5)
	w := Walk{Waypoints: []geo.Point{a, b, c}, SpeedKmh: 5}
	// Total 1 km at 5 km/h = 720 s; at t=360 walker is at b.
	atB := w.PositionAt(360)
	if geo.HaversineKm(atB, b) > 0.01 {
		t.Fatalf("leg transition = %v, want near %v", atB, b)
	}
}

func TestWalkDegenerate(t *testing.T) {
	if (Walk{}).Duration() != 0 {
		t.Fatal("empty walk duration")
	}
	if !(Walk{}).PositionAt(10).IsZero() {
		t.Fatal("empty walk position")
	}
	single := Walk{Waypoints: []geo.Point{{Lat: 1, Lon: 1}}, SpeedKmh: 4}
	if single.PositionAt(100) != (geo.Point{Lat: 1, Lon: 1}) {
		t.Fatal("single waypoint should pin position")
	}
}
