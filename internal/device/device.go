// Package device models the edge devices of §8's experiments: a
// class-A LoRaWAN device running the paper's free-running counter app
// (send, wait for the 1 s / 2 s ACK windows, send again), with a local
// send log standing in for the SD card the authors compare against
// cloud-side records, and GPS walk traces for the coverage walks
// (§8.2.2).
package device

import (
	"encoding/binary"
	"errors"
	"fmt"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/lorawan"
)

// Device is one class-A edge device. Time is virtual: the experiment
// driver advances it and calls the device at the right instants.
type Device struct {
	DevEUI lorawan.EUI64
	AppEUI lorawan.EUI64
	AppKey lorawan.AppKey

	devNonce uint16
	joined   bool
	devAddr  lorawan.DevAddr
	keys     lorawan.SessionKeys

	fcnt    uint16
	counter uint32

	log []SendRecord
}

// SendRecord is one line of the device's local log — the ground truth
// §8 compares against cloud records.
type SendRecord struct {
	Counter  uint32
	FCnt     uint16
	SentAt   float64 // virtual seconds
	Location geo.Point
	// Acked and AckWindow record the device's view: whether an ACK
	// arrived, and in which window (1 or 2).
	Acked     bool
	AckWindow int
}

// New creates a device with the given identifiers.
func New(devEUI, appEUI lorawan.EUI64, appKey lorawan.AppKey) *Device {
	return &Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: appKey}
}

// Joined reports whether OTAA completed.
func (d *Device) Joined() bool { return d.joined }

// DevAddr returns the session address (zero before join).
func (d *Device) DevAddr() lorawan.DevAddr { return d.devAddr }

// BuildJoinRequest produces the next OTAA join request frame.
func (d *Device) BuildJoinRequest() []byte {
	d.devNonce++
	f := &lorawan.Frame{
		MType:    lorawan.JoinRequestType,
		AppEUI:   d.AppEUI,
		DevEUI:   d.DevEUI,
		DevNonce: d.devNonce,
	}
	return f.Marshal(d.AppKey[:])
}

// Errors.
var (
	ErrNotJoinAccept = errors.New("device: not a join accept")
	ErrNotJoined     = errors.New("device: not joined")
)

// HandleJoinAccept completes OTAA from the downlink frame.
func (d *Device) HandleJoinAccept(wire []byte) error {
	f, err := lorawan.Parse(wire)
	if err != nil {
		return err
	}
	if f.MType != lorawan.JoinAcceptType {
		return ErrNotJoinAccept
	}
	if err := f.Verify(d.AppKey[:]); err != nil {
		return fmt.Errorf("device: join accept MIC: %w", err)
	}
	d.joined = true
	d.devAddr = f.DevAddr
	d.keys = lorawan.DeriveSessionKeys(d.AppKey, d.devNonce, f.JoinNonce)
	return nil
}

// CounterPayload is the app payload of the paper's test app: an
// incrementing counter plus (for walks) a GPS fix and timestamp
// (§8.2.2: "We add GPS coordinates and a timestamp to the app
// payload").
type CounterPayload struct {
	Counter   uint32
	Lat, Lon  float64
	Timestamp float64
}

// marshal packs the payload into 24 bytes.
func (c CounterPayload) marshal() []byte {
	out := make([]byte, 24)
	binary.BigEndian.PutUint32(out[0:4], c.Counter)
	binary.BigEndian.PutUint32(out[4:8], uint32(int32((c.Lat+90)*1e5)))
	binary.BigEndian.PutUint32(out[8:12], uint32(int32((c.Lon+180)*1e5)))
	binary.BigEndian.PutUint64(out[12:20], uint64(c.Timestamp*1000))
	return out
}

// ParseCounterPayload decodes a counter app payload.
func ParseCounterPayload(raw []byte) (CounterPayload, error) {
	if len(raw) < 20 {
		return CounterPayload{}, fmt.Errorf("device: payload too short (%d bytes)", len(raw))
	}
	return CounterPayload{
		Counter:   binary.BigEndian.Uint32(raw[0:4]),
		Lat:       float64(int32(binary.BigEndian.Uint32(raw[4:8])))/1e5 - 90,
		Lon:       float64(int32(binary.BigEndian.Uint32(raw[8:12])))/1e5 - 180,
		Timestamp: float64(binary.BigEndian.Uint64(raw[12:20])) / 1000,
	}, nil
}

// SendCounter builds the next confirmed uplink of the counter app and
// logs it. at is virtual time; loc is where the device is (zero for
// the stationary §8.1 experiment).
func (d *Device) SendCounter(at float64, loc geo.Point) ([]byte, error) {
	if !d.joined {
		return nil, ErrNotJoined
	}
	d.counter++
	d.fcnt++
	payload := CounterPayload{Counter: d.counter, Lat: loc.Lat, Lon: loc.Lon, Timestamp: at}
	f := &lorawan.Frame{
		MType:   lorawan.ConfirmedDataUp,
		DevAddr: d.devAddr,
		FCnt:    d.fcnt,
		FPort:   1,
		Payload: payload.marshal(),
	}
	d.log = append(d.log, SendRecord{
		Counter: d.counter, FCnt: d.fcnt, SentAt: at, Location: loc,
	})
	return f.Marshal(d.keys.NwkSKey[:]), nil
}

// HandleDownlink processes a received downlink; if it is a valid ACK
// for the most recent uplink, the log entry is marked acknowledged.
// window records which RX window delivered it.
func (d *Device) HandleDownlink(wire []byte, window int) error {
	if !d.joined {
		return ErrNotJoined
	}
	f, err := lorawan.Parse(wire)
	if err != nil {
		return err
	}
	if f.DevAddr != d.devAddr {
		return fmt.Errorf("device: downlink for %v, we are %v", f.DevAddr, d.devAddr)
	}
	if err := f.Verify(d.keys.NwkSKey[:]); err != nil {
		return err
	}
	if !f.FCtrl.ACK || len(d.log) == 0 {
		return nil
	}
	last := &d.log[len(d.log)-1]
	if f.FCnt == last.FCnt {
		last.Acked = true
		last.AckWindow = window
	}
	return nil
}

// Log returns the device's send log (the SD card).
func (d *Device) Log() []SendRecord { return append([]SendRecord(nil), d.log...) }

// Counter returns the last counter value sent.
func (d *Device) Counter() uint32 { return d.counter }

// NextSendDelay implements the free-running schedule (§8.1 footnote
// 15): the next send happens right after the prior packet's response
// resolves — 1 s after transmit if ACK'd in RX1, else 2 s.
func NextSendDelay(acked bool, window int) float64 {
	if acked && window == 1 {
		return lorawan.RX1DelaySec
	}
	return lorawan.RX2DelaySec
}

// Walk is a GPS trace: waypoints visited at constant speed.
type Walk struct {
	Waypoints []geo.Point
	SpeedKmh  float64
}

// Duration returns the total walk time in seconds.
func (w Walk) Duration() float64 {
	if w.SpeedKmh <= 0 || len(w.Waypoints) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(w.Waypoints); i++ {
		total += geo.HaversineKm(w.Waypoints[i-1], w.Waypoints[i])
	}
	return total / w.SpeedKmh * 3600
}

// PositionAt returns the walker's location at time t seconds from the
// start, clamping to the endpoints.
func (w Walk) PositionAt(t float64) geo.Point {
	if len(w.Waypoints) == 0 {
		return geo.Point{}
	}
	if len(w.Waypoints) == 1 || w.SpeedKmh <= 0 || t <= 0 {
		return w.Waypoints[0]
	}
	remainingKm := t / 3600 * w.SpeedKmh
	for i := 1; i < len(w.Waypoints); i++ {
		leg := geo.HaversineKm(w.Waypoints[i-1], w.Waypoints[i])
		if remainingKm <= leg {
			if leg == 0 {
				return w.Waypoints[i]
			}
			frac := remainingKm / leg
			bearing := geo.InitialBearing(w.Waypoints[i-1], w.Waypoints[i])
			return geo.Destination(w.Waypoints[i-1], bearing, leg*frac)
		}
		remainingKm -= leg
	}
	return w.Waypoints[len(w.Waypoints)-1]
}
