package hotspot_test

// Full-stack integration: a device's LoRaWAN frames travel through the
// real Semtech UDP forwarder protocol to a miner's gateway server,
// get sold to a real router over state channels, and the router's
// JoinAccept/ACK downlinks ride PULL_RESP back to the forwarder —
// every hop the paper's Figure 1 draws, over actual sockets.

import (
	"testing"
	"time"

	"peoplesnet/internal/chainkey"
	"peoplesnet/internal/device"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/hotspot"
	"peoplesnet/internal/lorawan"
	"peoplesnet/internal/router"
	"peoplesnet/internal/stats"
)

func TestFullStackOverUDP(t *testing.T) {
	rng := stats.NewRNG(1)

	// Cloud side: a Console-style router with a registered device.
	rtr := router.New(router.Config{
		OUI: 1, Owner: "console", Keys: chainkey.Generate(rng),
		LatencySampler: func() float64 { return 0.2 },
	}, rng)
	var appKey lorawan.AppKey
	copy(appKey[:], "full-stack-key!!")
	dev := device.New(lorawan.EUIFromUint64(0xE2E), lorawan.EUIFromUint64(0xA99), appKey)
	rtr.RegisterDevice(router.Device{
		DevEUI: dev.DevEUI, AppEUI: dev.AppEUI, AppKey: appKey, UserID: "tester",
	})
	integ := &router.MemoryIntegration{}
	rtr.SetIntegration(integ)
	dir := router.NewDirectory(rtr)

	// Hotspot: miner + gateway server + forwarder, wired over UDP.
	miner := hotspot.NewMiner("e2e-hotspot", dir)
	gw, gwAddr, err := hotspot.NewGatewayServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	fwd, err := hotspot.NewForwarder([8]byte{0xE2, 0xE2, 0, 0, 0, 0, 0, 1}, gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	if err := fwd.Pull(); err != nil { // open the downlink path
		t.Fatal(err)
	}

	// The miner consumes uplinks from its gateway server and pushes
	// downlinks back through it — the co-residency the paper explains
	// in §2.2.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for up := range gw.Uplinks {
			dl, _, err := miner.HandleUplink(up.RXPK.Data)
			if err != nil || dl == nil {
				continue
			}
			gw.SendDownlink(hotspot.TXPK{
				Imme: true, Freq: 923.3, Powe: 27, Modu: "LORA",
				Datr: "SF9BW500", Codr: "4/5", Size: len(dl), Data: dl,
			})
		}
	}()

	// radioHop pushes a device transmission through the forwarder as
	// if the concentrator had decoded it.
	radioHop := func(frame []byte) {
		t.Helper()
		if err := fwd.Push(hotspot.RXPK{
			Tmst: 1, Freq: 904.3, Stat: 1, Modu: "LORA",
			Datr: "SF9BW125", Codr: "4/5", RSSI: -95, LSNR: 7,
			Size: len(frame), Data: frame,
		}); err != nil {
			t.Fatal(err)
		}
	}
	awaitDownlink := func() []byte {
		t.Helper()
		select {
		case dl := <-fwd.Downlinks:
			return dl.Data
		case <-time.After(3 * time.Second):
			t.Fatal("no downlink arrived")
			return nil
		}
	}

	// OTAA join across the whole stack.
	radioHop(dev.BuildJoinRequest())
	if err := dev.HandleJoinAccept(awaitDownlink()); err != nil {
		t.Fatalf("join accept: %v", err)
	}
	if !dev.Joined() {
		t.Fatal("device did not join")
	}

	// Confirmed uplinks with ACKs.
	const packets = 5
	for i := 0; i < packets; i++ {
		frame, err := dev.SendCounter(float64(i), geo.Point{Lat: 32.7, Lon: -117.1})
		if err != nil {
			t.Fatal(err)
		}
		radioHop(frame)
		if err := dev.HandleDownlink(awaitDownlink(), 1); err != nil {
			t.Fatalf("packet %d ack: %v", i, err)
		}
	}

	// Device-side log: every packet ACK'd.
	for i, rec := range dev.Log() {
		if !rec.Acked {
			t.Fatalf("packet %d not acked", i)
		}
	}
	// Cloud side: payloads delivered, counters intact.
	deadline := time.Now().Add(2 * time.Second)
	for integ.Count() < packets && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	msgs := integ.Messages()
	if len(msgs) != packets {
		t.Fatalf("app got %d messages, want %d", len(msgs), packets)
	}
	for i, m := range msgs {
		payload, err := device.ParseCounterPayload(m.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if payload.Counter != uint32(i+1) {
			t.Fatalf("message %d counter = %d", i, payload.Counter)
		}
		if m.Hotspot != "e2e-hotspot" {
			t.Fatalf("provenance = %q", m.Hotspot)
		}
	}
	// Economics: the miner earned DC for the join + data packets.
	if st := miner.Stats(); st.PacketsSold != packets+1 || st.DCEarned < int64(packets) {
		t.Fatalf("miner stats = %+v", st)
	}
	// The router queued real chain transactions for its channel.
	if txns := rtr.PendingTxns(); len(txns) < 2 {
		t.Fatalf("router emitted %d txns", len(txns))
	}

	gw.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("miner loop did not stop")
	}
}
