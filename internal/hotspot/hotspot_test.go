package hotspot

import (
	"bytes"
	"testing"
	"time"

	"peoplesnet/internal/lorawan"
	"peoplesnet/internal/statechannel"
)

func TestDatagramRoundTrips(t *testing.T) {
	gw := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	cases := []Datagram{
		{Kind: PushData, Token: 7, Gateway: gw, RXPKs: []RXPK{{
			Tmst: 1000, Freq: 904.1, Chan: 1, Stat: 1, Modu: "LORA",
			Datr: "SF9BW125", Codr: "4/5", RSSI: -101, LSNR: 5.5,
			Size: 4, Data: []byte{0xCA, 0xFE, 0x00, 0x01},
		}}},
		{Kind: PullData, Token: 8, Gateway: gw},
		{Kind: PushAck, Token: 7},
		{Kind: PullAck, Token: 8},
		{Kind: TxAck, Token: 9, Gateway: gw},
		{Kind: PullResp, Token: 10, TXPK: &TXPK{
			Imme: true, Freq: 923.3, Powe: 27, Modu: "LORA",
			Datr: "SF9BW500", Codr: "4/5", Size: 3, Data: []byte{1, 2, 3},
		}},
	}
	for _, d := range cases {
		raw, err := d.Marshal()
		if err != nil {
			t.Fatalf("%#x marshal: %v", d.Kind, err)
		}
		got, err := ParseDatagram(raw)
		if err != nil {
			t.Fatalf("%#x parse: %v", d.Kind, err)
		}
		if got.Kind != d.Kind || got.Token != d.Token || got.Gateway != d.Gateway {
			t.Fatalf("%#x header mismatch: %+v", d.Kind, got)
		}
		if d.Kind == PushData {
			if len(got.RXPKs) != 1 || !bytes.Equal(got.RXPKs[0].Data, d.RXPKs[0].Data) ||
				got.RXPKs[0].RSSI != -101 {
				t.Fatalf("rxpk mismatch: %+v", got.RXPKs)
			}
		}
		if d.Kind == PullResp {
			if got.TXPK == nil || !bytes.Equal(got.TXPK.Data, d.TXPK.Data) || got.TXPK.Freq != 923.3 {
				t.Fatalf("txpk mismatch: %+v", got.TXPK)
			}
		}
	}
}

func TestParseDatagramErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{2, 0},
		{1, 0, 0, PushData, 0, 0, 0, 0, 0, 0, 0, 0}, // wrong version
		{2, 0, 0, 0xFF},           // unknown kind
		{2, 0, 0, PushData, 1, 2}, // short EUI
		append([]byte{2, 0, 0, PushData, 1, 2, 3, 4, 5, 6, 7, 8}, []byte("notjson")...),
		append([]byte{2, 0, 0, PullResp}, []byte("still not json")...),
	}
	for i, raw := range bad {
		if _, err := ParseDatagram(raw); err == nil {
			t.Fatalf("case %d parsed", i)
		}
	}
	// PULL_RESP without txpk cannot marshal.
	if _, err := (&Datagram{Kind: PullResp}).Marshal(); err == nil {
		t.Fatal("PULL_RESP without txpk marshalled")
	}
	if _, err := (&Datagram{Kind: 0x77}).Marshal(); err == nil {
		t.Fatal("unknown kind marshalled")
	}
}

func TestForwarderMinerUDPExchange(t *testing.T) {
	server, addr, err := NewGatewayServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	gw := [8]byte{0xAA, 1, 2, 3, 4, 5, 6, 0xBB}
	fwd, err := NewForwarder(gw, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	// Keepalive first (opens the downlink path), then an uplink.
	if err := fwd.Pull(); err != nil {
		t.Fatal(err)
	}
	if _, ok := WaitAck(fwd.Acks, 2*time.Second); !ok {
		t.Fatal("no PULL_ACK")
	}
	rx := RXPK{Tmst: 42, Freq: 904.3, Stat: 1, Modu: "LORA", Datr: "SF9BW125",
		Codr: "4/5", RSSI: -99, Size: 2, Data: []byte{0xBE, 0xEF}}
	if err := fwd.Push(rx); err != nil {
		t.Fatal(err)
	}
	if _, ok := WaitAck(fwd.Acks, 2*time.Second); !ok {
		t.Fatal("no PUSH_ACK")
	}
	select {
	case up := <-server.Uplinks:
		if up.Gateway != gw || !bytes.Equal(up.RXPK.Data, []byte{0xBE, 0xEF}) {
			t.Fatalf("uplink = %+v", up)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("uplink not delivered")
	}

	// Downlink back through PULL_RESP.
	if err := server.SendDownlink(TXPK{Imme: true, Freq: 923.3, Size: 1, Data: []byte{0x01}, Modu: "LORA"}); err != nil {
		t.Fatal(err)
	}
	select {
	case dl := <-fwd.Downlinks:
		if !bytes.Equal(dl.Data, []byte{0x01}) {
			t.Fatalf("downlink = %+v", dl)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("downlink not delivered")
	}
}

func TestSendDownlinkWithoutForwarder(t *testing.T) {
	server, _, err := NewGatewayServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	if err := server.SendDownlink(TXPK{Imme: true}); err == nil {
		t.Fatal("downlink without a known forwarder succeeded")
	}
}

// fakeBuyer implements PacketBuyer for miner tests.
type fakeBuyer struct {
	buy      bool
	downlink []byte
	window   int
	offers   []statechannel.Offer
	released [][]byte
}

func (b *fakeBuyer) OfferPacket(o statechannel.Offer) (statechannel.Purchase, bool) {
	b.offers = append(b.offers, o)
	if !b.buy {
		return statechannel.Purchase{}, false
	}
	return statechannel.Purchase{Offer: o, DC: statechannel.DCForBytes(o.Bytes)}, true
}

func (b *fakeBuyer) ReleasePacket(p statechannel.Purchase, frame []byte) ([]byte, int) {
	b.released = append(b.released, frame)
	return b.downlink, b.window
}

type fakeDir struct{ buyer PacketBuyer }

func (d fakeDir) LookupRouter(lorawan.DevAddr, lorawan.EUI64) (PacketBuyer, bool) {
	if d.buyer == nil {
		return nil, false
	}
	return d.buyer, true
}

func uplinkFrame(t *testing.T) []byte {
	t.Helper()
	f := &lorawan.Frame{
		MType:   lorawan.ConfirmedDataUp,
		DevAddr: 0x11223344,
		FCnt:    5,
		FPort:   1,
		Payload: []byte{9, 9, 9},
	}
	return f.Marshal([]byte("k"))
}

func TestMinerSellsPacket(t *testing.T) {
	buyer := &fakeBuyer{buy: true, downlink: []byte{0xAC}, window: 1}
	m := NewMiner("hs1", fakeDir{buyer})
	frame := uplinkFrame(t)
	dl, window, err := m.HandleUplink(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dl, []byte{0xAC}) || window != 1 {
		t.Fatalf("downlink = %v window = %d", dl, window)
	}
	if len(buyer.offers) != 1 || buyer.offers[0].Hotspot != "hs1" {
		t.Fatalf("offers = %+v", buyer.offers)
	}
	if buyer.offers[0].PacketID != PacketID(frame) {
		t.Fatal("offer packet id mismatch")
	}
	if len(buyer.released) != 1 || !bytes.Equal(buyer.released[0], frame) {
		t.Fatal("payload not released")
	}
	st := m.Stats()
	if st.UplinksSeen != 1 || st.OffersMade != 1 || st.PacketsSold != 1 ||
		st.DCEarned != 1 || st.DownlinksQueued != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMinerRejectedOffer(t *testing.T) {
	buyer := &fakeBuyer{buy: false}
	m := NewMiner("hs1", fakeDir{buyer})
	dl, _, err := m.HandleUplink(uplinkFrame(t))
	if err != nil || dl != nil {
		t.Fatalf("rejected offer: dl=%v err=%v", dl, err)
	}
	st := m.Stats()
	if st.RejectedOffers != 1 || st.PacketsSold != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMinerUnroutedFrame(t *testing.T) {
	m := NewMiner("hs1", fakeDir{nil})
	if _, _, err := m.HandleUplink(uplinkFrame(t)); err == nil {
		t.Fatal("unrouted frame accepted")
	}
	if m.Stats().UnroutedFrames != 1 {
		t.Fatal("unrouted counter not bumped")
	}
}

func TestMinerRejectsGarbageAndDownlinks(t *testing.T) {
	m := NewMiner("hs1", fakeDir{&fakeBuyer{buy: true}})
	if _, _, err := m.HandleUplink([]byte{1, 2}); err == nil {
		t.Fatal("garbage accepted")
	}
	// A downlink frame must be refused.
	f := &lorawan.Frame{MType: lorawan.UnconfirmedDataDown, DevAddr: 1}
	if _, _, err := m.HandleUplink(f.Marshal([]byte("k"))); err == nil {
		t.Fatal("downlink frame accepted as uplink")
	}
}

func TestPacketIDStability(t *testing.T) {
	a := PacketID([]byte{1, 2, 3})
	if a != PacketID([]byte{1, 2, 3}) {
		t.Fatal("packet id unstable")
	}
	if a == PacketID([]byte{1, 2, 4}) {
		t.Fatal("packet id collision")
	}
}

func TestDatrString(t *testing.T) {
	if DatrString(9, 125) != "SF9BW125" {
		t.Fatal(DatrString(9, 125))
	}
}
