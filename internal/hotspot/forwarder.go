package hotspot

import (
	"net"
	"sync"
	"time"
)

// Forwarder is the gateway half of a hotspot: it pushes received
// radio packets to its (co-resident) miner over UDP and maintains the
// PULL_DATA keepalive that lets the miner send downlinks back. This is
// a working implementation of the Semtech protocol over real sockets;
// the fire-and-forget, no-retry behaviour the paper highlights is
// inherent — a lost datagram is simply gone.
type Forwarder struct {
	Gateway [8]byte

	mu     sync.Mutex
	conn   *net.UDPConn
	token  uint16
	closed bool

	// Downlinks delivers PULL_RESP instructions from the miner.
	Downlinks chan TXPK
	// Acks signals PUSH_ACK tokens, so tests can observe delivery.
	Acks chan uint16

	wg sync.WaitGroup
}

// NewForwarder connects to the miner's UDP address.
func NewForwarder(gateway [8]byte, minerAddr string) (*Forwarder, error) {
	raddr, err := net.ResolveUDPAddr("udp", minerAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	f := &Forwarder{
		Gateway:   gateway,
		conn:      conn,
		Downlinks: make(chan TXPK, 64),
		Acks:      make(chan uint16, 64),
	}
	f.wg.Add(1)
	go f.readLoop()
	return f, nil
}

func (f *Forwarder) nextToken() uint16 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.token++
	return f.token
}

func (f *Forwarder) readLoop() {
	defer f.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, err := f.conn.Read(buf)
		if err != nil {
			return
		}
		d, err := ParseDatagram(buf[:n])
		if err != nil {
			continue // tolerate garbage, as the real forwarder does
		}
		switch d.Kind {
		case PushAck, PullAck:
			select {
			case f.Acks <- d.Token:
			default:
			}
		case PullResp:
			// Acknowledge and deliver.
			ack := Datagram{Kind: TxAck, Token: d.Token, Gateway: f.Gateway}
			if raw, err := ack.Marshal(); err == nil {
				f.conn.Write(raw)
			}
			if d.TXPK != nil {
				select {
				case f.Downlinks <- *d.TXPK:
				default:
				}
			}
		}
	}
}

// Push sends received radio packets to the miner (PUSH_DATA). There is
// no retry: delivery is best-effort by design.
func (f *Forwarder) Push(rxpks ...RXPK) error {
	d := Datagram{Kind: PushData, Token: f.nextToken(), Gateway: f.Gateway, RXPKs: rxpks}
	raw, err := d.Marshal()
	if err != nil {
		return err
	}
	_, err = f.conn.Write(raw)
	return err
}

// Pull sends the PULL_DATA keepalive that opens the downlink path.
func (f *Forwarder) Pull() error {
	d := Datagram{Kind: PullData, Token: f.nextToken(), Gateway: f.Gateway}
	raw, err := d.Marshal()
	if err != nil {
		return err
	}
	_, err = f.conn.Write(raw)
	return err
}

// Close shuts the forwarder down.
func (f *Forwarder) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	f.conn.Close()
	f.wg.Wait()
}

// GatewayServer is the miner's UDP endpoint for its forwarder. It
// acknowledges PUSH/PULL, surfaces uplinks, and can send PULL_RESP
// downlinks to the last-seen forwarder address.
type GatewayServer struct {
	mu       sync.Mutex
	conn     *net.UDPConn
	lastAddr *net.UDPAddr
	closed   bool

	// Uplinks delivers received RXPKs with their gateway EUI.
	Uplinks chan Uplink

	wg sync.WaitGroup
}

// Uplink is one received radio packet with provenance.
type Uplink struct {
	Gateway [8]byte
	RXPK    RXPK
}

// NewGatewayServer binds the miner's UDP socket ("127.0.0.1:0" in
// tests) and returns the server and its bound address.
func NewGatewayServer(bind string) (*GatewayServer, string, error) {
	laddr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, "", err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, "", err
	}
	g := &GatewayServer{conn: conn, Uplinks: make(chan Uplink, 256)}
	g.wg.Add(1)
	go g.serve()
	return g, conn.LocalAddr().String(), nil
}

func (g *GatewayServer) serve() {
	defer g.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, addr, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		d, err := ParseDatagram(buf[:n])
		if err != nil {
			continue
		}
		g.mu.Lock()
		g.lastAddr = addr
		g.mu.Unlock()
		switch d.Kind {
		case PushData:
			ack := Datagram{Kind: PushAck, Token: d.Token}
			if raw, err := ack.Marshal(); err == nil {
				g.conn.WriteToUDP(raw, addr)
			}
			for _, r := range d.RXPKs {
				select {
				case g.Uplinks <- Uplink{Gateway: d.Gateway, RXPK: r}:
				default: // drop on overflow, like the real thing
				}
			}
		case PullData:
			ack := Datagram{Kind: PullAck, Token: d.Token}
			if raw, err := ack.Marshal(); err == nil {
				g.conn.WriteToUDP(raw, addr)
			}
		}
	}
}

// SendDownlink issues a PULL_RESP to the forwarder. It fails if no
// forwarder has contacted the server yet (no PULL_DATA keepalive —
// exactly how real downlinks get lost behind silent NAT bindings).
func (g *GatewayServer) SendDownlink(t TXPK) error {
	g.mu.Lock()
	addr := g.lastAddr
	g.mu.Unlock()
	if addr == nil {
		return net.ErrClosed
	}
	d := Datagram{Kind: PullResp, Token: 0, TXPK: &t}
	raw, err := d.Marshal()
	if err != nil {
		return err
	}
	_, err = g.conn.WriteToUDP(raw, addr)
	return err
}

// Close shuts the server down and closes the Uplinks channel, so a
// `for range server.Uplinks` consumer loop terminates.
func (g *GatewayServer) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	g.conn.Close()
	g.wg.Wait() // serve goroutine has exited; no more sends
	close(g.Uplinks)
}

// WaitAck waits for an ack token with a timeout, for tests.
func WaitAck(ch <-chan uint16, timeout time.Duration) (uint16, bool) {
	select {
	case tok := <-ch:
		return tok, true
	case <-time.After(timeout):
		return 0, false
	}
}
