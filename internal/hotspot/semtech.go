// Package hotspot implements the two halves of a Helium hotspot
// (§2.2): the Semtech UDP packet forwarder — the real PROTOCOL.TXT
// wire format whose "purposefully very basic … no retries" design the
// paper quotes as the reason forwarder and miner are co-located — and
// the miner, which bridges received LoRa frames to routers through the
// state-channel offer/purchase protocol and schedules downlinks into
// the class-A receive windows.
package hotspot

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Semtech packet forwarder protocol identifiers (PROTOCOL.TXT).
const (
	ProtocolVersion = 2

	PushData byte = 0x00
	PushAck  byte = 0x01
	PullData byte = 0x02
	PullResp byte = 0x03
	PullAck  byte = 0x04
	TxAck    byte = 0x05
)

// RXPK is one received radio packet, as carried in PUSH_DATA JSON.
// Field names follow the Semtech spec.
type RXPK struct {
	Time string  `json:"time,omitempty"` // ISO 8601 receive time
	Tmst uint32  `json:"tmst"`           // gateway internal timestamp, µs
	Freq float64 `json:"freq"`           // MHz
	Chan int     `json:"chan"`
	RFCh int     `json:"rfch"`
	Stat int     `json:"stat"` // CRC status: 1 OK
	Modu string  `json:"modu"` // "LORA"
	Datr string  `json:"datr"` // e.g. "SF9BW125"
	Codr string  `json:"codr"` // "4/5"
	RSSI float64 `json:"rssi"` // dBm
	LSNR float64 `json:"lsnr"` // dB
	Size int     `json:"size"`
	Data []byte  `json:"data"` // PHY payload (base64 in real JSON; Go handles it)
}

// TXPK is one downlink instruction, as carried in PULL_RESP JSON.
type TXPK struct {
	Imme bool    `json:"imme"` // send immediately
	Tmst uint32  `json:"tmst"` // else at this gateway timestamp, µs
	Freq float64 `json:"freq"`
	RFCh int     `json:"rfch"`
	Powe int     `json:"powe"` // dBm
	Modu string  `json:"modu"`
	Datr string  `json:"datr"`
	Codr string  `json:"codr"`
	Size int     `json:"size"`
	Data []byte  `json:"data"`
}

// Datagram is one parsed forwarder protocol message.
type Datagram struct {
	Version byte
	Token   uint16
	Kind    byte
	Gateway [8]byte // present on PUSH_DATA / PULL_DATA / TX_ACK
	RXPKs   []RXPK  // PUSH_DATA payload
	TXPK    *TXPK   // PULL_RESP payload
}

type pushPayload struct {
	RXPK []RXPK `json:"rxpk"`
}

type pullPayload struct {
	TXPK TXPK `json:"txpk"`
}

// Marshal serializes the datagram to its UDP wire form.
func (d *Datagram) Marshal() ([]byte, error) {
	head := []byte{ProtocolVersion, 0, 0, d.Kind}
	binary.BigEndian.PutUint16(head[1:3], d.Token)
	switch d.Kind {
	case PushData:
		body, err := json.Marshal(pushPayload{RXPK: d.RXPKs})
		if err != nil {
			return nil, err
		}
		return append(append(head, d.Gateway[:]...), body...), nil
	case PullData, TxAck:
		return append(head, d.Gateway[:]...), nil
	case PushAck, PullAck:
		return head, nil
	case PullResp:
		if d.TXPK == nil {
			return nil, fmt.Errorf("hotspot: PULL_RESP without txpk")
		}
		body, err := json.Marshal(pullPayload{TXPK: *d.TXPK})
		if err != nil {
			return nil, err
		}
		return append(head, body...), nil
	default:
		return nil, fmt.Errorf("hotspot: unknown datagram kind %#x", d.Kind)
	}
}

// ParseDatagram decodes a UDP payload.
func ParseDatagram(raw []byte) (*Datagram, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("hotspot: datagram too short (%d bytes)", len(raw))
	}
	d := &Datagram{
		Version: raw[0],
		Token:   binary.BigEndian.Uint16(raw[1:3]),
		Kind:    raw[3],
	}
	if d.Version != ProtocolVersion {
		return nil, fmt.Errorf("hotspot: protocol version %d, want %d", d.Version, ProtocolVersion)
	}
	rest := raw[4:]
	switch d.Kind {
	case PushData:
		if len(rest) < 8 {
			return nil, fmt.Errorf("hotspot: PUSH_DATA missing gateway EUI")
		}
		copy(d.Gateway[:], rest[:8])
		var p pushPayload
		if err := json.Unmarshal(rest[8:], &p); err != nil {
			return nil, fmt.Errorf("hotspot: PUSH_DATA payload: %w", err)
		}
		d.RXPKs = p.RXPK
	case PullData, TxAck:
		if len(rest) < 8 {
			return nil, fmt.Errorf("hotspot: %#x missing gateway EUI", d.Kind)
		}
		copy(d.Gateway[:], rest[:8])
	case PushAck, PullAck:
		// header only
	case PullResp:
		var p pullPayload
		if err := json.Unmarshal(rest, &p); err != nil {
			return nil, fmt.Errorf("hotspot: PULL_RESP payload: %w", err)
		}
		d.TXPK = &p.TXPK
	default:
		return nil, fmt.Errorf("hotspot: unknown datagram kind %#x", d.Kind)
	}
	return d, nil
}

// DatrString renders a LoRa data-rate descriptor ("SF9BW125").
func DatrString(sf int, bwKHz int) string {
	return fmt.Sprintf("SF%dBW%d", sf, bwKHz)
}
