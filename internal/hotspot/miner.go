package hotspot

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"peoplesnet/internal/lorawan"
	"peoplesnet/internal/statechannel"
)

// PacketBuyer is the router-side interface a miner sells packets to.
// Offer carries metadata only; the buyer answers with a purchase
// decision. Release then hands over the payload and collects any
// downlink the router wants transmitted in the device's receive
// window (§5.1, §5.2).
type PacketBuyer interface {
	// OfferPacket returns whether the router buys the described packet.
	OfferPacket(offer statechannel.Offer) (statechannel.Purchase, bool)
	// ReleasePacket delivers the purchased payload. The returned bytes,
	// if any, are a downlink frame to transmit; windowSec is 1 or 2
	// (RX1/RX2).
	ReleasePacket(p statechannel.Purchase, frame []byte) (downlink []byte, windowSec int)
}

// RouterDirectory resolves which router owns a frame, the Helium
// lookup that replaces LoRaWAN's statically configured router (§2.2:
// "Hotspots find Helium-compliant routers by looking up device owners
// using packet metadata and a filter list in the Helium blockchain").
type RouterDirectory interface {
	LookupRouter(devAddr lorawan.DevAddr, devEUI lorawan.EUI64) (PacketBuyer, bool)
}

// MinerStats counts a miner's data-plane activity.
type MinerStats struct {
	UplinksSeen     int64
	OffersMade      int64
	PacketsSold     int64
	DCEarned        int64
	DownlinksQueued int64
	UnroutedFrames  int64
	RejectedOffers  int64
}

// Miner is the blockchain half of a hotspot: it prices and sells
// received frames to routers and queues downlinks for the forwarder.
type Miner struct {
	Address string
	dir     RouterDirectory

	mu    sync.Mutex
	stats MinerStats
}

// NewMiner creates a miner for the hotspot with the given chain
// address.
func NewMiner(address string, dir RouterDirectory) *Miner {
	return &Miner{Address: address, dir: dir}
}

// Stats returns a copy of the miner's counters.
func (m *Miner) Stats() MinerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// PacketID derives the duplicate-detection ID for a frame: routers
// recognize the same packet arriving via different hotspots by
// content (§5.1).
func PacketID(frame []byte) string {
	sum := sha256.Sum256(frame)
	return fmt.Sprintf("pkt-%x", sum[:12])
}

// HandleUplink processes one received radio frame end to end: parse,
// route, offer, release on purchase. It returns the downlink frame to
// transmit (nil if none) and its receive window.
func (m *Miner) HandleUplink(frame []byte) (downlink []byte, windowSec int, err error) {
	m.mu.Lock()
	m.stats.UplinksSeen++
	m.mu.Unlock()

	f, err := lorawan.Parse(frame)
	if err != nil {
		return nil, 0, fmt.Errorf("hotspot: undecodable uplink: %w", err)
	}
	if !f.MType.Uplink() {
		return nil, 0, fmt.Errorf("hotspot: non-uplink frame %v", f.MType)
	}
	buyer, ok := m.dir.LookupRouter(f.DevAddr, f.DevEUI)
	if !ok {
		m.mu.Lock()
		m.stats.UnroutedFrames++
		m.mu.Unlock()
		return nil, 0, fmt.Errorf("hotspot: no router for devaddr %v", f.DevAddr)
	}
	offer := statechannel.Offer{
		Hotspot:  m.Address,
		PacketID: PacketID(frame),
		Bytes:    len(frame),
		DevAddr:  uint32(f.DevAddr),
	}
	m.mu.Lock()
	m.stats.OffersMade++
	m.mu.Unlock()

	purchase, bought := buyer.OfferPacket(offer)
	if !bought {
		m.mu.Lock()
		m.stats.RejectedOffers++
		m.mu.Unlock()
		return nil, 0, nil
	}
	dl, window := buyer.ReleasePacket(purchase, frame)
	m.mu.Lock()
	m.stats.PacketsSold++
	m.stats.DCEarned += purchase.DC
	if dl != nil {
		m.stats.DownlinksQueued++
	}
	m.mu.Unlock()
	return dl, window, nil
}
