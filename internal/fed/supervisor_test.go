package fed

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"peoplesnet/internal/etl"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func historyContains(h []ShardState, want ShardState) bool {
	for _, s := range h {
		if s == want {
			return true
		}
	}
	return false
}

// TestSupervisorBreakerTransitions drives one shard through the full
// breaker state machine: its store cannot open (every restart fails),
// so the shard walks closed (running) -> backoff -> open, then
// half-open probes; once the store heals, a probe succeeds, the shard
// returns to running, and catching up closes the breaker (consecutive
// failures reset to zero). While the breaker is open, queries degrade
// to reported Gaps immediately instead of blocking on restarts.
func TestSupervisorBreakerTransitions(t *testing.T) {
	c := testChain(t)
	base := t.TempDir()

	// Shard 0's "disk": a plain file where the store directory should
	// be, so etl.Open fails until healed.
	badDir := filepath.Join(base, "shard-0")
	if err := os.WriteFile(badDir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	var healed atomic.Bool

	part := ByHeight(2, c.Height())
	cl := FollowChain(c, part, Options{
		PerShardTimeout: time.Minute,
		Quorum:          0.5,
		CacheSize:       -1,
		ShardStore: func(id ShardID) (string, etl.Config) {
			if id == 0 && healed.Load() {
				return filepath.Join(base, "shard-0-healed"), etl.Config{SegmentBlocks: 16}
			}
			return filepath.Join(base, fmt.Sprintf("shard-%d", id)), etl.Config{SegmentBlocks: 16}
		},
	})
	defer cl.Close()

	sup := cl.Supervise(SupervisorOptions{
		ProbeInterval: 2 * time.Millisecond,
		BackoffBase:   time.Millisecond,
		BackoffMax:    4 * time.Millisecond,
		MaxRestarts:   3,
		HalfOpenAfter: 30 * time.Millisecond,
	})

	waitFor(t, 10*time.Second, "breaker to open after 3 consecutive failures", func() bool {
		return sup.ShardState(0) == StateOpen
	})
	st := sup.Status()[0]
	if !historyContains(st.History, StateBackoff) {
		t.Fatalf("no backoff state before the breaker opened: %+v", st)
	}
	if st.Consecutive < 3 {
		t.Fatalf("breaker opened with only %d consecutive failures", st.Consecutive)
	}

	// Open breaker: a full-range query completes immediately with the
	// dead shard degraded to its gap — no blocking on restart cycles.
	gFrom, gTo := part.HeightSpan(0)
	start := time.Now()
	res, err := cl.Query(context.Background(), Query{Kind: KindCount, Range: etl.All()})
	if err != nil {
		t.Fatalf("query with open breaker: %v", err)
	}
	if len(res.Missing) != 1 || res.Missing[0] != 0 {
		t.Fatalf("missing = %v, want [0]", res.Missing)
	}
	if len(res.Gaps) != 1 || res.Gaps[0].From != gFrom || res.Gaps[0].To != gTo {
		t.Fatalf("gaps = %+v, want [[%d, %d]]", res.Gaps, gFrom, gTo)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("open-breaker query took %v — it blocked instead of degrading", waited)
	}

	// The open breaker still probes: a half-open attempt must appear.
	waitFor(t, 10*time.Second, "a half-open probe", func() bool {
		return historyContains(sup.Status()[0].History, StateHalfOpen)
	})

	// Heal the disk: the next probe restart succeeds, the shard runs
	// and catches up, and the failure streak resets.
	healed.Store(true)
	waitFor(t, 10*time.Second, "shard 0 to run again after healing", func() bool {
		return sup.ShardState(0) == StateRunning
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := cl.WaitHeight(ctx, c.Height()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "breaker to close (consecutive failures reset)", func() bool {
		return sup.Status()[0].Consecutive == 0
	})

	res, err = cl.Query(context.Background(), Query{Kind: KindCount, Range: etl.All()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 0 || len(res.Gaps) != 0 {
		t.Fatalf("recovered cluster still degraded: missing=%v gaps=%v", res.Missing, res.Gaps)
	}
	if st := sup.Status()[0]; st.Restarts == 0 {
		t.Fatalf("no restarts recorded through the breaker cycle: %+v", st)
	}
}

// TestSupervisorWaitHeightToleratesDownShard: WaitHeight under
// supervision treats a down shard as "catching up", not a terminal
// error, and still honors its context deadline.
func TestSupervisorWaitHeightToleratesDownShard(t *testing.T) {
	c := testChain(t)
	cl := testCluster(t, c, ByHeight(2, c.Height()), Options{})

	// Unsupervised: killing a shard fails WaitHeight immediately.
	if err := cl.Kill(0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := cl.WaitHeight(ctx, c.Height()); err == nil {
		t.Fatal("unsupervised WaitHeight ignored a dead shard")
	}

	// Supervised: the dead shard counts as not-caught-up; with no way
	// to recover (the chain source is fine, so it will recover) —
	// attach a supervisor and the wait should succeed via restart.
	sup := cl.Supervise(SupervisorOptions{
		ProbeInterval: 2 * time.Millisecond,
		BackoffBase:   time.Millisecond,
		BackoffMax:    4 * time.Millisecond,
	})
	defer sup.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if err := cl.WaitHeight(ctx2, c.Height()); err != nil {
		t.Fatalf("supervised WaitHeight after kill: %v", err)
	}
	if sup.Status()[0].Restarts == 0 {
		t.Fatal("supervisor never restarted the killed shard")
	}
}
