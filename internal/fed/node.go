package fed

import (
	"errors"
	"sync"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// ErrKilled is the error a crashed node reports when it was killed
// deliberately — the chaos / MTTR hook (Cluster.Kill), not a fault of
// its own.
var ErrKilled = errors.New("fed: follower killed")

// errWedged marks a node the supervisor crashed because it was
// lagging with no progress across the watchdog window.
var errWedged = errors.New("fed: follower wedged")

// Source is the block feed a shard node tails: a blocking iterator
// over the producer's block sequence. Next returns the first block
// with height beyond after, blocking until one exists; it returns
// false only after Close. Next is called from a single goroutine (the
// node's ingest loop); Close may race with it. BlockAt is a random
// read of one already-produced block — restarted nodes use it to
// re-derive per-block metadata without re-tailing — and must work
// even after Close.
type Source interface {
	Next(after int64) (*chain.Block, bool)
	BlockAt(height int64) *chain.Block
	Tip() int64
	Close()
}

// NewChainSource tails a live chain.Chain through its subscription:
// the node-facing equivalent of etl's FollowChain, pulling blocks
// with BlocksFrom so a coalesced signal never loses data.
func NewChainSource(c *chain.Chain) Source {
	notify, cancel := c.Subscribe()
	return &chainSource{c: c, notify: notify, cancel: cancel}
}

type chainSource struct {
	c      *chain.Chain
	notify <-chan struct{}
	cancel func()
	// buf holds a fetched suffix not yet handed out; only the ingest
	// goroutine touches it.
	buf []*chain.Block
}

func (s *chainSource) Next(after int64) (*chain.Block, bool) {
	for {
		for len(s.buf) > 0 && s.buf[0].Height <= after {
			s.buf = s.buf[1:]
		}
		if len(s.buf) > 0 {
			b := s.buf[0]
			s.buf = s.buf[1:]
			return b, true
		}
		s.buf = s.c.BlocksFrom(after)
		if len(s.buf) > 0 {
			continue
		}
		if _, ok := <-s.notify; !ok {
			// Canceled. Drain any final suffix appended after the last
			// signal we consumed, then report end of stream.
			s.buf = s.c.BlocksFrom(after)
			if len(s.buf) == 0 {
				return nil, false
			}
		}
	}
}

func (s *chainSource) BlockAt(height int64) *chain.Block { return s.c.BlockAt(height) }
func (s *chainSource) Tip() int64                        { return s.c.Height() }
func (s *chainSource) Close()                            { s.cancel() }

// NewStoreSource tails an upstream etl.Store through its lossless
// Tail (Store.Follow), for topologies where shards hang off a primary
// store rather than the chain producer itself.
func NewStoreSource(up *etl.Store) Source {
	return &storeSource{up: up}
}

type storeSource struct {
	up *etl.Store

	mu     sync.Mutex
	tail   *etl.Tail // guarded by mu
	closed bool      // guarded by mu
}

func (s *storeSource) Next(after int64) (*chain.Block, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	if s.tail == nil {
		// Created on first use so the tail resumes exactly where the
		// node's store left off.
		s.tail = s.up.Follow(after)
	}
	t := s.tail
	s.mu.Unlock()
	return t.Next()
}

func (s *storeSource) BlockAt(height int64) *chain.Block { return s.up.BlockAt(height) }
func (s *storeSource) Tip() int64                        { return s.up.Height() }

func (s *storeSource) Close() {
	s.mu.Lock()
	s.closed = true
	t := s.tail
	s.mu.Unlock()
	if t != nil {
		t.Close()
	}
}

// Node is one shard: an etl.Store holding the partition slice it
// owns, fed by a goroutine tailing the source. Per the package
// invariant it appends a block for every upstream height — original
// header, owned transactions only — so its store tip always equals
// the height it has processed up to.
//
// A node is one incarnation of a shard. Durable shards outlive their
// nodes: when a node crashes, the supervisor builds a fresh Node over
// the same store directory, which resumes from its sealed segments
// and WAL tail and re-tails only the missed suffix.
type Node struct {
	id      ShardID
	part    Partition
	store   *etl.Store
	src     Source
	done    chan struct{}
	stop    chan struct{} // closed by Close/crash; interrupts retry backoff
	durable bool          // store came from etl.Open; graceful Close flushes it
	backoff *etl.Backoff

	srcOnce  sync.Once
	stopOnce sync.Once

	mu sync.RWMutex
	// seq maps a kept transaction to its index in the original
	// upstream block. Txn values are pointers shared with the source
	// blocks, so the interface key is identity, not content. This is
	// what lets a shard answer with upstream-true (height, seq)
	// coordinates even though its own blocks are filtered. The map is
	// memory-only: after a restart it is rebuilt lazily, one height at
	// a time, by re-filtering the source block (rebuildSeqLocked).
	seq map[chain.Txn]int32 // guarded by mu
	err error               // guarded by mu
}

// newNode starts one shard incarnation over the given store (nil
// means a fresh in-memory store).
func newNode(id ShardID, part Partition, src Source, store *etl.Store, durable bool) *Node {
	if store == nil {
		store = etl.New(etl.Config{})
	}
	n := &Node{
		id:      id,
		part:    part,
		store:   store,
		src:     src,
		done:    make(chan struct{}),
		stop:    make(chan struct{}),
		durable: durable,
		backoff: etl.NewBackoff(0, 0),
		seq:     make(map[chain.Txn]int32),
	}
	go n.run()
	return n
}

func (n *Node) run() {
	defer close(n.done)
	after := n.store.Height()
	for {
		b, ok := n.src.Next(after)
		if !ok {
			return
		}
		piece, seqs := n.filter(b)
		n.mu.Lock()
		for i, t := range piece.Txns {
			n.seq[t] = seqs[i]
		}
		n.mu.Unlock()
		if err := n.ingest(piece); err != nil {
			n.setErr(err)
			return
		}
		after = b.Height
	}
}

// ingest appends one block, retrying transient persistence faults
// with capped, jittered exponential backoff (mirroring etl.Follower).
// Close/crash interrupts the backoff; anything past the retry budget
// is permanent and kills the incarnation — the supervisor's problem.
func (n *Node) ingest(b *chain.Block) error {
	const maxRetries = 8
	for attempt := 0; ; attempt++ {
		err := n.store.Append(b)
		var pe *etl.PersistError
		if err == nil || !errors.As(err, &pe) || attempt >= maxRetries {
			return err
		}
		n.store.NoteIngestRetry()
		select {
		case <-n.stop:
			return err
		case <-time.After(n.backoff.Delay(attempt)):
		}
	}
}

// filter projects an upstream block onto this shard: the original
// header with only the owned transactions, plus their original
// intra-block indexes. Height-partitioned shards adopt or blank whole
// blocks without classifying a single transaction.
func (n *Node) filter(b *chain.Block) (*chain.Block, []int32) {
	if n.part.HeightOnly() {
		if n.part.Owns(b.Height, 0) != n.id {
			return n.header(b), nil
		}
		seqs := make([]int32, len(b.Txns))
		for i := range seqs {
			seqs[i] = int32(i)
		}
		return b, seqs
	}
	var txns []chain.Txn
	var seqs []int32
	for i, t := range b.Txns {
		if n.part.Owns(b.Height, RegionOf(t)) == n.id {
			txns = append(txns, t)
			seqs = append(seqs, int32(i))
		}
	}
	if len(txns) == 0 {
		return n.header(b), nil
	}
	h := n.header(b)
	h.Txns = txns
	return h, seqs
}

func (n *Node) header(b *chain.Block) *chain.Block {
	return &chain.Block{Height: b.Height, Timestamp: b.Timestamp, PrevHash: b.PrevHash, Hash: b.Hash}
}

// seqOf returns a kept transaction's index in its upstream block.
// Transactions ingested by this incarnation hit the map directly;
// ones inherited on disk from a previous incarnation miss (the map
// keys on pointer identity, and decoded blocks carry fresh pointers),
// so their whole height is rebuilt from the source on first touch.
func (n *Node) seqOf(height int64, t chain.Txn) int32 {
	n.mu.RLock()
	s, ok := n.seq[t]
	n.mu.RUnlock()
	if ok {
		return s
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.seq[t]; ok {
		return s
	}
	n.rebuildSeqLocked(height)
	return n.seq[t]
}

// rebuildSeqLocked recovers the seq entries for one height after a
// restart. The upstream block still exists at the source; filtering
// it again yields the owned transactions' original indexes in kept
// order, which maps one-to-one onto the stored block's transactions —
// filter is deterministic and Append preserved its order.
func (n *Node) rebuildSeqLocked(height int64) {
	up := n.src.BlockAt(height)
	sb := n.store.BlockAt(height)
	if up == nil || sb == nil {
		return
	}
	_, seqs := n.filter(up)
	if len(seqs) != len(sb.Txns) {
		return
	}
	for i, t := range sb.Txns {
		n.seq[t] = seqs[i]
	}
}

func (n *Node) setErr(err error) {
	n.mu.Lock()
	if n.err == nil {
		n.err = err
	}
	n.mu.Unlock()
}

// Err returns the first ingest error, if any.
func (n *Node) Err() error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.err
}

// Store exposes the node's underlying store (read-only use).
func (n *Node) Store() *etl.Store { return n.store }

// Close stops the ingest loop, waits for it to exit, and — for a
// durable node — flushes the store (sealed index sync, WAL close).
func (n *Node) Close() error {
	n.stopOnce.Do(func() { close(n.stop) })
	n.srcOnce.Do(n.src.Close)
	<-n.done
	if n.durable {
		if cerr := n.store.Close(); cerr != nil && n.Err() == nil {
			return cerr
		}
	}
	return n.Err()
}

// crash kills the incarnation with crash semantics: the error is
// recorded, the ingest loop is joined, and the store is NOT flushed —
// only what the WAL already fsynced survives, exactly what a process
// death leaves behind. The store directory stays reopenable.
func (n *Node) crash(err error) {
	n.setErr(err)
	n.stopOnce.Do(func() { close(n.stop) })
	n.srcOnce.Do(n.src.Close)
	<-n.done
}

// Info snapshots the node for operational surfaces. Lag is filled in
// by the cluster, which knows the source tip.
func (n *Node) Info() ShardInfo {
	st := n.store.Stats()
	info := ShardInfo{
		ID:     n.id,
		Slice:  n.part.Describe(n.id),
		Tip:    st.TipHeight,
		Blocks: st.Blocks,
		Txns:   st.Txns,
		Health: n.store.Health(),
	}
	if err := n.Err(); err != nil {
		info.Err = err.Error()
	}
	return info
}
