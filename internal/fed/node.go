package fed

import (
	"sync"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// Source is the block feed a shard node tails: a blocking iterator
// over the producer's block sequence. Next returns the first block
// with height beyond after, blocking until one exists; it returns
// false only after Close. Next is called from a single goroutine (the
// node's ingest loop); Close may race with it.
type Source interface {
	Next(after int64) (*chain.Block, bool)
	Tip() int64
	Close()
}

// NewChainSource tails a live chain.Chain through its subscription:
// the node-facing equivalent of etl's FollowChain, pulling blocks
// with BlocksFrom so a coalesced signal never loses data.
func NewChainSource(c *chain.Chain) Source {
	notify, cancel := c.Subscribe()
	return &chainSource{c: c, notify: notify, cancel: cancel}
}

type chainSource struct {
	c      *chain.Chain
	notify <-chan struct{}
	cancel func()
	// buf holds a fetched suffix not yet handed out; only the ingest
	// goroutine touches it.
	buf []*chain.Block
}

func (s *chainSource) Next(after int64) (*chain.Block, bool) {
	for {
		for len(s.buf) > 0 && s.buf[0].Height <= after {
			s.buf = s.buf[1:]
		}
		if len(s.buf) > 0 {
			b := s.buf[0]
			s.buf = s.buf[1:]
			return b, true
		}
		s.buf = s.c.BlocksFrom(after)
		if len(s.buf) > 0 {
			continue
		}
		if _, ok := <-s.notify; !ok {
			// Canceled. Drain any final suffix appended after the last
			// signal we consumed, then report end of stream.
			s.buf = s.c.BlocksFrom(after)
			if len(s.buf) == 0 {
				return nil, false
			}
		}
	}
}

func (s *chainSource) Tip() int64 { return s.c.Height() }
func (s *chainSource) Close()     { s.cancel() }

// NewStoreSource tails an upstream etl.Store through its lossless
// Tail (Store.Follow), for topologies where shards hang off a primary
// store rather than the chain producer itself.
func NewStoreSource(up *etl.Store) Source {
	return &storeSource{up: up}
}

type storeSource struct {
	up *etl.Store

	mu     sync.Mutex
	tail   *etl.Tail // guarded by mu
	closed bool      // guarded by mu
}

func (s *storeSource) Next(after int64) (*chain.Block, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	if s.tail == nil {
		// Created on first use so the tail resumes exactly where the
		// node's store left off.
		s.tail = s.up.Follow(after)
	}
	t := s.tail
	s.mu.Unlock()
	return t.Next()
}

func (s *storeSource) Tip() int64 { return s.up.Height() }

func (s *storeSource) Close() {
	s.mu.Lock()
	s.closed = true
	t := s.tail
	s.mu.Unlock()
	if t != nil {
		t.Close()
	}
}

// Node is one shard: an etl.Store holding the partition slice it
// owns, fed by a goroutine tailing the source. Per the package
// invariant it appends a block for every upstream height — original
// header, owned transactions only — so its store tip always equals
// the height it has processed up to.
type Node struct {
	id    ShardID
	part  Partition
	store *etl.Store
	src   Source
	done  chan struct{}

	mu sync.RWMutex
	// seq maps a kept transaction to its index in the original
	// upstream block. Txn values are pointers shared with the source
	// blocks, so the interface key is identity, not content. This is
	// what lets a shard answer with upstream-true (height, seq)
	// coordinates even though its own blocks are filtered.
	seq map[chain.Txn]int32 // guarded by mu
	err error               // guarded by mu
}

func newNode(id ShardID, part Partition, src Source) *Node {
	n := &Node{
		id:    id,
		part:  part,
		store: etl.New(etl.Config{}),
		src:   src,
		done:  make(chan struct{}),
		seq:   make(map[chain.Txn]int32),
	}
	go n.run()
	return n
}

func (n *Node) run() {
	defer close(n.done)
	after := n.store.Height()
	for {
		b, ok := n.src.Next(after)
		if !ok {
			return
		}
		piece, seqs := n.filter(b)
		n.mu.Lock()
		for i, t := range piece.Txns {
			n.seq[t] = seqs[i]
		}
		n.mu.Unlock()
		if err := n.store.Append(piece); err != nil {
			n.mu.Lock()
			n.err = err
			n.mu.Unlock()
			return
		}
		after = b.Height
	}
}

// filter projects an upstream block onto this shard: the original
// header with only the owned transactions, plus their original
// intra-block indexes. Height-partitioned shards adopt or blank whole
// blocks without classifying a single transaction.
func (n *Node) filter(b *chain.Block) (*chain.Block, []int32) {
	if n.part.HeightOnly() {
		if n.part.Owns(b.Height, 0) != n.id {
			return n.header(b), nil
		}
		seqs := make([]int32, len(b.Txns))
		for i := range seqs {
			seqs[i] = int32(i)
		}
		return b, seqs
	}
	var txns []chain.Txn
	var seqs []int32
	for i, t := range b.Txns {
		if n.part.Owns(b.Height, RegionOf(t)) == n.id {
			txns = append(txns, t)
			seqs = append(seqs, int32(i))
		}
	}
	if len(txns) == 0 {
		return n.header(b), nil
	}
	h := n.header(b)
	h.Txns = txns
	return h, seqs
}

func (n *Node) header(b *chain.Block) *chain.Block {
	return &chain.Block{Height: b.Height, Timestamp: b.Timestamp, PrevHash: b.PrevHash, Hash: b.Hash}
}

// seqOf returns a kept transaction's index in its upstream block.
func (n *Node) seqOf(t chain.Txn) int32 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.seq[t]
}

// Err returns the first ingest error, if any.
func (n *Node) Err() error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.err
}

// Store exposes the node's underlying store (read-only use).
func (n *Node) Store() *etl.Store { return n.store }

// Close stops the ingest loop and waits for it to exit.
func (n *Node) Close() error {
	n.src.Close()
	<-n.done
	return n.Err()
}

// Info snapshots the node for operational surfaces. Lag is filled in
// by the cluster, which knows the source tip.
func (n *Node) Info() ShardInfo {
	st := n.store.Stats()
	info := ShardInfo{
		ID:     n.id,
		Slice:  n.part.Describe(n.id),
		Tip:    st.TipHeight,
		Blocks: st.Blocks,
		Txns:   st.Txns,
		Health: n.store.Health(),
	}
	if err := n.Err(); err != nil {
		info.Err = err.Error()
	}
	return info
}
