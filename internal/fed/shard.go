package fed

import (
	"context"
	"sort"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// Shard answers queries for one partition slice. The in-process
// implementation wraps a node slot; tests wrap Shards to inject
// latency and failure.
type Shard interface {
	Info() ShardInfo
	Query(ctx context.Context, q Query) (*Partial, error)
}

// localShard answers from a slot's current node in-process. The node
// is resolved per query, so a supervised restart swaps incarnations
// under the router without rewiring anything.
type localShard struct{ sl *nodeSlot }

func (s *localShard) Info() ShardInfo {
	n := s.sl.current()
	if n == nil {
		return ShardInfo{ID: s.sl.id, Err: s.sl.downErr().Error()}
	}
	return n.Info()
}

// ctxCheckStride is how many visited transactions pass between
// context checks during a scan — frequent enough that a per-shard
// timeout actually interrupts a long scan, rare enough to stay off
// the per-txn fast path.
const ctxCheckStride = 1024

func (s *localShard) Query(ctx context.Context, q Query) (*Partial, error) {
	n := s.sl.current()
	if n == nil {
		// Down shards fail fast — no timeout is burned waiting on them,
		// the router degrades them to Missing/Gaps immediately.
		return nil, s.sl.downErr()
	}
	if err := n.Err(); err != nil {
		return nil, err
	}
	p := &Partial{Shard: n.id, Tip: n.store.Height()}
	var err error
	switch q.Kind {
	case KindCount:
		err = count(ctx, n, q, p)
	case KindMix:
		err = mix(ctx, n, q, p)
	case KindTopActors:
		err = topActors(ctx, n, q, p)
	case KindTxns:
		err = txns(ctx, n, q, p)
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}

// scan visits matching transactions in chain order, honoring the
// query's region restriction and checking ctx every ctxCheckStride
// transactions. fn returning false stops the scan early (not an
// error).
func scan(ctx context.Context, n *Node, q Query, fn func(h int64, t chain.Txn) bool) error {
	var visited int
	var err error
	n.store.Scan(q.Range, q.Filter, func(h int64, t chain.Txn) bool {
		if visited++; visited%ctxCheckStride == 0 {
			if err = ctx.Err(); err != nil {
				return false
			}
		}
		if !q.matchesRegion(t) {
			return true
		}
		return fn(h, t)
	})
	return err
}

// wholeStore reports the query covers the shard's entire store with
// no filter, so materialized aggregates answer in O(1)/O(types)
// without a scan.
func wholeStore(n *Node, q Query) bool {
	if q.HasRegion || len(q.Filter.Types) > 0 || len(q.Filter.Actors) > 0 {
		return false
	}
	first, tip := n.store.FirstHeight(), n.store.Height()
	if first < 0 {
		return false
	}
	return q.Range.From <= first && (q.Range.To < 0 || q.Range.To >= tip)
}

func count(ctx context.Context, n *Node, q Query, p *Partial) error {
	if wholeStore(n, q) {
		p.Count = n.store.TxnCount()
		return nil
	}
	return scan(ctx, n, q, func(int64, chain.Txn) bool {
		p.Count++
		return true
	})
}

func mix(ctx context.Context, n *Node, q Query, p *Partial) error {
	if wholeStore(n, q) {
		p.Mix = n.store.TxnMix()
		return nil
	}
	p.Mix = make(map[chain.TxnType]int64)
	return scan(ctx, n, q, func(_ int64, t chain.Txn) bool {
		p.Mix[t.TxnType()]++
		return true
	})
}

func topActors(ctx context.Context, n *Node, q Query, p *Partial) error {
	counts := make(map[string]int64)
	var seen []string // per-txn dedupe scratch
	err := scan(ctx, n, q, func(_ int64, t chain.Txn) bool {
		seen = seen[:0]
		etl.ActorsOf(t, func(a string) {
			if a == "" {
				return
			}
			for _, prev := range seen {
				if prev == a {
					return
				}
			}
			seen = append(seen, a)
			counts[a]++
		})
		return true
	})
	if err != nil {
		return err
	}
	p.Actors = rankActors(counts)
	return nil
}

// rankActors orders a mention count map by (count desc, actor asc) —
// the one total order every ranking surface in the tier shares, so
// truncation at K is deterministic everywhere.
func rankActors(counts map[string]int64) []ActorCount {
	out := make([]ActorCount, 0, len(counts))
	for a, c := range counts {
		out = append(out, ActorCount{Actor: a, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Actor < out[j].Actor
	})
	return out
}

func txns(ctx context.Context, n *Node, q Query, p *Partial) error {
	limit := q.pageLimit()
	r := q.Range
	if q.Cursor.Height > r.From {
		// Resume scanning at the cursor block, not the range start.
		r.From = q.Cursor.Height
	}
	qr := q
	qr.Range = r
	err := scan(ctx, n, qr, func(h int64, t chain.Txn) bool {
		rec := TxnRec{Height: h, Seq: n.seqOf(h, t), Type: t.TxnType().String(), Hash: chain.Hash(t), Txn: t}
		if rec.cursor().before(q.Cursor) {
			return true
		}
		if len(p.Txns) == limit {
			p.More = true
			return false
		}
		p.Txns = append(p.Txns, rec)
		return true
	})
	return err
}
