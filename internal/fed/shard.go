package fed

import (
	"context"
	"sort"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// Shard answers queries for one partition slice. The in-process
// implementation wraps a Node; tests wrap Shards to inject latency
// and failure.
type Shard interface {
	Info() ShardInfo
	Query(ctx context.Context, q Query) (*Partial, error)
}

// localShard answers from a Node's store in-process.
type localShard struct{ n *Node }

func (s *localShard) Info() ShardInfo { return s.n.Info() }

// ctxCheckStride is how many visited transactions pass between
// context checks during a scan — frequent enough that a per-shard
// timeout actually interrupts a long scan, rare enough to stay off
// the per-txn fast path.
const ctxCheckStride = 1024

func (s *localShard) Query(ctx context.Context, q Query) (*Partial, error) {
	if err := s.n.Err(); err != nil {
		return nil, err
	}
	p := &Partial{Shard: s.n.id, Tip: s.n.store.Height()}
	var err error
	switch q.Kind {
	case KindCount:
		err = s.count(ctx, q, p)
	case KindMix:
		err = s.mix(ctx, q, p)
	case KindTopActors:
		err = s.topActors(ctx, q, p)
	case KindTxns:
		err = s.txns(ctx, q, p)
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}

// scan visits matching transactions in chain order, honoring the
// query's region restriction and checking ctx every ctxCheckStride
// transactions. fn returning false stops the scan early (not an
// error).
func (s *localShard) scan(ctx context.Context, q Query, fn func(h int64, t chain.Txn) bool) error {
	var visited int
	var err error
	s.n.store.Scan(q.Range, q.Filter, func(h int64, t chain.Txn) bool {
		if visited++; visited%ctxCheckStride == 0 {
			if err = ctx.Err(); err != nil {
				return false
			}
		}
		if !q.matchesRegion(t) {
			return true
		}
		return fn(h, t)
	})
	return err
}

// wholeStore reports the query covers the shard's entire store with
// no filter, so materialized aggregates answer in O(1)/O(types)
// without a scan.
func (s *localShard) wholeStore(q Query) bool {
	if q.HasRegion || len(q.Filter.Types) > 0 || len(q.Filter.Actors) > 0 {
		return false
	}
	first, tip := s.n.store.FirstHeight(), s.n.store.Height()
	if first < 0 {
		return false
	}
	return q.Range.From <= first && (q.Range.To < 0 || q.Range.To >= tip)
}

func (s *localShard) count(ctx context.Context, q Query, p *Partial) error {
	if s.wholeStore(q) {
		p.Count = s.n.store.TxnCount()
		return nil
	}
	return s.scan(ctx, q, func(int64, chain.Txn) bool {
		p.Count++
		return true
	})
}

func (s *localShard) mix(ctx context.Context, q Query, p *Partial) error {
	if s.wholeStore(q) {
		p.Mix = s.n.store.TxnMix()
		return nil
	}
	p.Mix = make(map[chain.TxnType]int64)
	return s.scan(ctx, q, func(_ int64, t chain.Txn) bool {
		p.Mix[t.TxnType()]++
		return true
	})
}

func (s *localShard) topActors(ctx context.Context, q Query, p *Partial) error {
	counts := make(map[string]int64)
	var seen []string // per-txn dedupe scratch
	err := s.scan(ctx, q, func(_ int64, t chain.Txn) bool {
		seen = seen[:0]
		etl.ActorsOf(t, func(a string) {
			if a == "" {
				return
			}
			for _, prev := range seen {
				if prev == a {
					return
				}
			}
			seen = append(seen, a)
			counts[a]++
		})
		return true
	})
	if err != nil {
		return err
	}
	p.Actors = rankActors(counts)
	return nil
}

// rankActors orders a mention count map by (count desc, actor asc) —
// the one total order every ranking surface in the tier shares, so
// truncation at K is deterministic everywhere.
func rankActors(counts map[string]int64) []ActorCount {
	out := make([]ActorCount, 0, len(counts))
	for a, c := range counts {
		out = append(out, ActorCount{Actor: a, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Actor < out[j].Actor
	})
	return out
}

func (s *localShard) txns(ctx context.Context, q Query, p *Partial) error {
	limit := q.pageLimit()
	r := q.Range
	if q.Cursor.Height > r.From {
		// Resume scanning at the cursor block, not the range start.
		r.From = q.Cursor.Height
	}
	qr := q
	qr.Range = r
	err := s.scan(ctx, qr, func(h int64, t chain.Txn) bool {
		rec := TxnRec{Height: h, Seq: s.n.seqOf(t), Type: t.TxnType().String(), Hash: chain.Hash(t), Txn: t}
		if rec.cursor().before(q.Cursor) {
			return true
		}
		if len(p.Txns) == limit {
			p.More = true
			return false
		}
		p.Txns = append(p.Txns, rec)
		return true
	})
	return err
}
