package fed

import (
	"sort"

	"peoplesnet/internal/chain"
)

// MergedTail reassembles the upstream block sequence from the
// shards' lossless per-store tails (etl.Tail). Every node appends
// every upstream height, so the merge is a lock-step zip: pull one
// piece per shard, assert the heights line up, and splice the owned
// transactions back into original intra-block order by their
// recorded seq. The result is bit-identical to the producer's blocks
// — same header, same transaction pointers in the same order.
//
// Like the underlying tails it can never drop a block, however slow
// the consumer; the cost of losslessness is that a failed shard
// stalls the merge at its last ingested height until Close.
type MergedTail struct {
	nodes []*Node
	tails []*tailHandle
	dead  bool // a shard was down at creation; Next always returns false
}

// tailHandle is one shard's cursor into its store tail.
type tailHandle struct {
	after int64
	src   Source
}

// Tail returns a merged tail positioned after the given height (-1
// replays everything). Close it when done; a tail left open pins the
// shard stores' condition broadcasts to one extra waiter each. The
// tail is pinned to the node incarnations current at creation; take a
// fresh tail after a supervised restart.
func (cl *Cluster) Tail(after int64) *MergedTail {
	mt := &MergedTail{}
	for _, sl := range cl.slots {
		n := sl.current()
		if n == nil {
			// A down shard can never stream; yield an already-ended tail
			// rather than a nil deref mid-merge.
			mt.dead = true
			continue
		}
		mt.nodes = append(mt.nodes, n)
		mt.tails = append(mt.tails, &tailHandle{after: after, src: NewStoreSource(n.store)})
	}
	return mt
}

// Next returns the next reassembled upstream block, blocking until
// every shard has ingested it. It returns false after Close or if the
// shard streams diverge (a shard died mid-height).
func (mt *MergedTail) Next() (*chain.Block, bool) {
	if mt.dead {
		return nil, false
	}
	pieces := make([]*chain.Block, len(mt.tails))
	for i, th := range mt.tails {
		b, ok := th.src.Next(th.after)
		if !ok {
			return nil, false
		}
		th.after = b.Height
		pieces[i] = b
	}
	h := pieces[0].Height
	for _, p := range pieces {
		if p.Height != h {
			return nil, false
		}
	}
	out := &chain.Block{
		Height:    h,
		Timestamp: pieces[0].Timestamp,
		PrevHash:  pieces[0].PrevHash,
		Hash:      pieces[0].Hash,
	}
	type seqTxn struct {
		seq int32
		t   chain.Txn
	}
	var recs []seqTxn
	for i, p := range pieces {
		for _, t := range p.Txns {
			recs = append(recs, seqTxn{seq: mt.nodes[i].seqOf(h, t), t: t})
		}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].seq < recs[b].seq })
	for _, r := range recs {
		out.Txns = append(out.Txns, r.t)
	}
	return out, true
}

// Close unblocks any pending Next, which then returns false.
func (mt *MergedTail) Close() {
	for _, th := range mt.tails {
		th.src.Close()
	}
}
