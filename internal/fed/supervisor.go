package fed

import (
	"sync"
	"time"

	"peoplesnet/internal/etl"
)

// ShardState is where a shard sits in its supervisor's state machine.
type ShardState string

const (
	// StateRunning: a node is up (healthy or catching up).
	StateRunning ShardState = "running"
	// StateBackoff: the node crashed; a restart is scheduled after a
	// jittered exponential delay.
	StateBackoff ShardState = "backoff"
	// StateOpen: the circuit breaker tripped after MaxRestarts
	// consecutive failed recoveries. No restarts are attempted; the
	// router degrades the shard to reported Gaps instead of feeding a
	// retry storm.
	StateOpen ShardState = "open"
	// StateHalfOpen: after the breaker's dwell, one probe restart is in
	// flight; success closes the breaker, failure reopens it.
	StateHalfOpen ShardState = "half-open"
)

// SupervisorOptions tunes the health-probe / restart / breaker loop.
// The zero value is production-shaped; tests shrink every interval.
type SupervisorOptions struct {
	// ProbeInterval is how often each shard's health is sampled (store
	// tip vs. source tip). Default 25ms.
	ProbeInterval time.Duration
	// WedgeProbes is how many consecutive probes a shard may spend
	// lagging the source with zero progress before it is declared
	// wedged and crash-restarted. Default 8.
	WedgeProbes int
	// BackoffBase/BackoffMax bound the jittered exponential restart
	// delay. Defaults 5ms / 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxRestarts is the breaker threshold K: after this many
	// consecutive failed recoveries (restarts that error out or whose
	// node dies before ever catching up) the shard's breaker opens.
	// Default 5; negative disables the breaker.
	MaxRestarts int
	// HalfOpenAfter is the open breaker's dwell before a single probe
	// restart is tried. Default 2s.
	HalfOpenAfter time.Duration
}

func (o SupervisorOptions) probeInterval() time.Duration {
	if o.ProbeInterval <= 0 {
		return 25 * time.Millisecond
	}
	return o.ProbeInterval
}

func (o SupervisorOptions) wedgeProbes() int {
	if o.WedgeProbes <= 0 {
		return 8
	}
	return o.WedgeProbes
}

func (o SupervisorOptions) backoffBase() time.Duration {
	if o.BackoffBase <= 0 {
		return 5 * time.Millisecond
	}
	return o.BackoffBase
}

func (o SupervisorOptions) backoffMax() time.Duration {
	if o.BackoffMax <= 0 {
		return 500 * time.Millisecond
	}
	return o.BackoffMax
}

func (o SupervisorOptions) maxRestarts() int {
	switch {
	case o.MaxRestarts < 0:
		return 0 // breaker disabled
	case o.MaxRestarts == 0:
		return 5
	}
	return o.MaxRestarts
}

func (o SupervisorOptions) halfOpenAfter() time.Duration {
	if o.HalfOpenAfter <= 0 {
		return 2 * time.Second
	}
	return o.HalfOpenAfter
}

// SupervisorShard is one shard's supervision snapshot for operational
// surfaces (/etl).
type SupervisorShard struct {
	Shard    ShardID    `json:"shard"`
	State    ShardState `json:"state"`
	Restarts int64      `json:"restarts"`
	// Consecutive counts failed recoveries since the shard last caught
	// up; it is what trips the breaker at MaxRestarts.
	Consecutive int          `json:"consecutive_failures,omitempty"`
	LastError   string       `json:"last_error,omitempty"`
	History     []ShardState `json:"history,omitempty"`
}

// supShard is the mutable per-shard supervision record.
type supShard struct {
	state       ShardState
	restarts    int64
	consecutive int
	healthy     bool // current incarnation reached the source tip
	lastErr     string
	history     []ShardState
}

const supHistoryCap = 16

// Supervisor makes a cluster self-healing: one watchdog goroutine per
// shard probes liveness (crashed follower, wedged tail) and restarts
// dead nodes with jittered exponential backoff, tripping a per-shard
// circuit breaker after MaxRestarts consecutive failed recoveries so
// a shard that cannot come back degrades to reported Gaps instead of
// a retry storm. An open breaker still probes: after HalfOpenAfter it
// half-opens for a single restart attempt.
type Supervisor struct {
	cl      *Cluster
	opts    SupervisorOptions
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	backoff *etl.Backoff

	mu     sync.Mutex
	shards []*supShard // guarded by mu
}

func newSupervisor(cl *Cluster, opts SupervisorOptions) *Supervisor {
	shards := make([]*supShard, len(cl.slots))
	for i := range shards {
		shards[i] = &supShard{state: StateRunning, history: []ShardState{StateRunning}}
	}
	s := &Supervisor{
		cl:      cl,
		opts:    opts,
		stop:    make(chan struct{}),
		backoff: etl.NewBackoff(opts.backoffBase(), opts.backoffMax()),
		shards:  shards,
	}
	s.wg.Add(len(cl.slots))
	for _, sl := range cl.slots {
		go s.watch(sl)
	}
	return s
}

// Close stops every watchdog and waits for them; running nodes are
// left running (the cluster owns them). Idempotent.
func (s *Supervisor) Close() {
	s.once.Do(func() {
		close(s.stop)
		s.wg.Wait()
		s.cl.mu.Lock()
		if s.cl.sup == s {
			s.cl.sup = nil
		}
		s.cl.mu.Unlock()
	})
}

// Status snapshots every shard's supervision state.
func (s *Supervisor) Status() []SupervisorShard {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SupervisorShard, len(s.shards))
	for i, sh := range s.shards {
		out[i] = SupervisorShard{
			Shard:       ShardID(i),
			State:       sh.state,
			Restarts:    sh.restarts,
			Consecutive: sh.consecutive,
			LastError:   sh.lastErr,
			History:     append([]ShardState(nil), sh.history...),
		}
	}
	return out
}

// ShardState returns one shard's current state.
func (s *Supervisor) ShardState(id ShardID) ShardState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[id].state
}

// watch is one shard's watchdog loop. It owns the slot: nobody else
// swaps nodes in or out, so current() is stable between its own sets.
func (s *Supervisor) watch(sl *nodeSlot) {
	defer s.wg.Done()
	probe := time.NewTicker(s.opts.probeInterval())
	defer probe.Stop()
	lastTip := int64(-1)
	stalled := 0
	for {
		n := sl.current()
		if n == nil {
			// The initial start failed; drive recovery immediately.
			s.noteDown(sl.id, sl.downErr().Error())
			if !s.recover(sl) {
				return
			}
			lastTip, stalled = -1, 0
			continue
		}
		select {
		case <-s.stop:
			return
		case <-n.done:
			// The follower exited: crashed on an error, was killed, or
			// its source ended under it (producer disconnect). All of
			// them recover the same way — a fresh incarnation that
			// resumes from the store tip.
			msg := "source ended"
			if err := n.Err(); err != nil {
				msg = err.Error()
			}
			s.noteDown(sl.id, msg)
			if !s.recover(sl) {
				return
			}
			lastTip, stalled = -1, 0
		case <-probe.C:
			tip := n.store.Height()
			switch {
			case tip >= n.src.Tip():
				// Caught up: the incarnation proved itself; the breaker's
				// consecutive-failure count resets.
				s.markHealthy(sl.id)
				stalled = 0
			case tip > lastTip:
				stalled = 0
			default:
				// Lagging and not moving. A healthy follower may briefly
				// stall on a slow append, so only a full watchdog window
				// of zero progress counts as wedged.
				if stalled++; stalled >= s.opts.wedgeProbes() {
					n.crash(errWedged)
					s.noteDown(sl.id, errWedged.Error())
					if !s.recover(sl) {
						return
					}
					stalled = 0
					lastTip = -1
					continue
				}
			}
			lastTip = tip
		}
	}
}

// recover drives one shard's restart cycle until a new incarnation is
// up or the supervisor stops (returns false). Each failed attempt
// deepens the backoff; at MaxRestarts consecutive failures the
// breaker opens and attempts slow to one probe per HalfOpenAfter.
func (s *Supervisor) recover(sl *nodeSlot) bool {
	for {
		k := s.snapshot(sl.id)
		if limit := s.opts.maxRestarts(); limit > 0 && k >= limit {
			s.setState(sl.id, StateOpen)
			if !s.sleep(s.opts.halfOpenAfter()) {
				return false
			}
			s.setState(sl.id, StateHalfOpen)
		} else {
			s.setState(sl.id, StateBackoff)
			if !s.sleep(s.backoff.Delay(k)) {
				return false
			}
		}
		n, err := s.cl.startNode(sl.id)
		s.bumpRestarts(sl.id)
		if err != nil {
			s.noteFailure(sl.id, err.Error())
			sl.fail(err)
			continue
		}
		sl.set(n)
		s.setState(sl.id, StateRunning)
		return true
	}
}

// sleep waits d or until the supervisor stops (returns false).
func (s *Supervisor) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.stop:
		return false
	case <-t.C:
		return true
	}
}

func (s *Supervisor) setState(id ShardID, st ShardState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[id]
	if sh.state == st {
		return
	}
	sh.state = st
	sh.history = append(sh.history, st)
	if len(sh.history) > supHistoryCap {
		sh.history = sh.history[len(sh.history)-supHistoryCap:]
	}
	if st == StateRunning {
		// Fresh incarnation: it must catch up before it counts as a
		// successful recovery (markHealthy), so leave consecutive alone.
		sh.healthy = false
	}
}

// noteDown records an incarnation's death. Dying before ever catching
// up counts as a failed recovery toward the breaker; a previously
// healthy node's death starts a new failure streak at one.
func (s *Supervisor) noteDown(id ShardID, msg string) {
	s.mu.Lock()
	sh := s.shards[id]
	if sh.healthy {
		sh.consecutive = 1
	} else {
		sh.consecutive++
	}
	sh.healthy = false
	sh.lastErr = msg
	s.mu.Unlock()
}

// noteFailure records a restart attempt that could not even build a
// node (store open failed).
func (s *Supervisor) noteFailure(id ShardID, msg string) {
	s.mu.Lock()
	sh := s.shards[id]
	sh.consecutive++
	sh.lastErr = msg
	s.mu.Unlock()
}

func (s *Supervisor) markHealthy(id ShardID) {
	s.mu.Lock()
	sh := s.shards[id]
	sh.healthy = true
	sh.consecutive = 0
	sh.lastErr = ""
	s.mu.Unlock()
}

func (s *Supervisor) bumpRestarts(id ShardID) {
	s.mu.Lock()
	s.shards[id].restarts++
	s.mu.Unlock()
}

func (s *Supervisor) snapshot(id ShardID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[id].consecutive
}
