package fed

import (
	"fmt"
	"math"
	"sort"
)

// Partition maps the chain onto shards. Both axes are total: every
// (height, region) pair is owned by exactly one shard, so the shard
// stores tile the transaction set with no overlap and no gaps — the
// property every merge strategy's exactness rests on.
type Partition interface {
	// Name identifies the scheme ("height", "region").
	Name() string
	// NumShards is the cluster size the partition was built for.
	NumShards() int
	// Owns returns the shard owning a transaction at the given height
	// with the given routing region.
	Owns(height int64, region int) ShardID
	// CoversHeights reports whether the shard's slice intersects the
	// height range [from, to].
	CoversHeights(sh ShardID, from, to int64) bool
	// CoversRegion reports whether the shard's slice can contain
	// transactions of the given routing region.
	CoversRegion(sh ShardID, region int) bool
	// HeightOnly reports the partition ignores the region axis, so a
	// node can adopt or skip whole blocks without classifying txns.
	HeightOnly() bool
	// HeightSpan is the height interval the shard can own answers in,
	// used to convert a missing shard into reported gaps. To is
	// math.MaxInt64 for open-ended or region-sliced shards.
	HeightSpan(sh ShardID) (from, to int64)
	// Describe renders the shard's slice for operators.
	Describe(sh ShardID) string
}

// ByHeight partitions [0, tip] into n contiguous height ranges of
// near-equal width; the last range is open-ended so blocks appended
// after the split keep landing on the last shard. tip below n-1 still
// yields n shards (the trailing ones start empty).
func ByHeight(n int, tip int64) Partition {
	if n < 1 {
		n = 1
	}
	if tip < 0 {
		tip = 0
	}
	starts := make([]int64, n)
	span := tip + 1
	for i := 1; i < n; i++ {
		starts[i] = span * int64(i) / int64(n)
	}
	// Degenerate tiny chains can give duplicate starts; nudge them
	// apart so Owns stays a function (later duplicates own nothing
	// real, they just start beyond the tip).
	for i := 1; i < n; i++ {
		if starts[i] <= starts[i-1] {
			starts[i] = starts[i-1] + 1
		}
	}
	return heightPartition{starts: starts}
}

type heightPartition struct {
	// starts[i] is the first height shard i owns; shard i ends at
	// starts[i+1]-1, the last shard is open-ended.
	starts []int64
}

func (p heightPartition) Name() string     { return "height" }
func (p heightPartition) NumShards() int   { return len(p.starts) }
func (p heightPartition) HeightOnly() bool { return true }

func (p heightPartition) Owns(height int64, _ int) ShardID {
	// First shard whose start exceeds height, minus one.
	i := sort.Search(len(p.starts), func(i int) bool { return p.starts[i] > height })
	if i == 0 {
		return 0
	}
	return ShardID(i - 1)
}

func (p heightPartition) HeightSpan(sh ShardID) (int64, int64) {
	from := p.starts[sh]
	to := int64(math.MaxInt64)
	if int(sh)+1 < len(p.starts) {
		to = p.starts[sh+1] - 1
	}
	return from, to
}

func (p heightPartition) CoversHeights(sh ShardID, from, to int64) bool {
	sf, st := p.HeightSpan(sh)
	return st >= from && sf <= to
}

func (p heightPartition) CoversRegion(ShardID, int) bool { return true }

func (p heightPartition) Describe(sh ShardID) string {
	from, to := p.HeightSpan(sh)
	if to == math.MaxInt64 {
		return fmt.Sprintf("heights [%d, ∞)", from)
	}
	return fmt.Sprintf("heights [%d, %d]", from, to)
}

// ByRegion partitions the NumRegions routing regions round-robin
// across n shards: region r lives on shard r mod n. n beyond
// NumRegions leaves the surplus shards empty.
func ByRegion(n int) Partition {
	if n < 1 {
		n = 1
	}
	return regionPartition{n: n}
}

type regionPartition struct{ n int }

func (p regionPartition) Name() string     { return "region" }
func (p regionPartition) NumShards() int   { return p.n }
func (p regionPartition) HeightOnly() bool { return false }

func (p regionPartition) Owns(_ int64, region int) ShardID {
	if region < 0 {
		region = 0
	}
	return ShardID(region % p.n)
}

func (p regionPartition) HeightSpan(ShardID) (int64, int64) { return 0, math.MaxInt64 }

func (p regionPartition) CoversHeights(ShardID, int64, int64) bool { return true }

func (p regionPartition) CoversRegion(sh ShardID, region int) bool {
	return region >= 0 && ShardID(region%p.n) == sh
}

func (p regionPartition) Describe(sh ShardID) string {
	owned := 0
	for r := int(sh); r < NumRegions; r += p.n {
		owned++
	}
	return fmt.Sprintf("regions %d mod %d (%d of %d)", int(sh), p.n, owned, NumRegions)
}
