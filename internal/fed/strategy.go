package fed

import (
	"sync"

	"peoplesnet/internal/chain"
)

// Strategy merges per-shard partials into the federated result. The
// router hands it partials sorted by shard ID, so a deterministic
// strategy yields a deterministic result. Because the partition tiles
// transactions exactly (each txn on exactly one shard), every stock
// strategy is exact, not approximate.
type Strategy interface {
	Name() string
	Merge(q Query, parts []*Partial, res *Result)
}

var (
	strategyMu sync.RWMutex
	strategies = map[Kind]Strategy{
		KindCount:     sumStrategy{},
		KindMix:       mixMergeStrategy{},
		KindTopActors: topKMergeStrategy{},
		KindTxns:      kwayMergeStrategy{},
	}
)

// RegisterStrategy replaces the aggregation strategy for a query
// kind, for deployments that want e.g. sampled or sketched merges.
func RegisterStrategy(k Kind, s Strategy) {
	strategyMu.Lock()
	defer strategyMu.Unlock()
	strategies[k] = s
}

// StrategyFor returns the registered strategy for a kind.
func StrategyFor(k Kind) Strategy {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	return strategies[k]
}

// sumStrategy adds shard counts.
type sumStrategy struct{}

func (sumStrategy) Name() string { return "sum" }

func (sumStrategy) Merge(_ Query, parts []*Partial, res *Result) {
	for _, p := range parts {
		res.Count += p.Count
	}
}

// mixMergeStrategy adds per-type counts.
type mixMergeStrategy struct{}

func (mixMergeStrategy) Name() string { return "mix-merge" }

func (mixMergeStrategy) Merge(_ Query, parts []*Partial, res *Result) {
	res.Mix = make(map[chain.TxnType]int64)
	for _, p := range parts {
		for tt, c := range p.Mix {
			res.Mix[tt] += c
		}
	}
}

// topKMergeStrategy merges complete per-shard rankings, re-ranks, and
// truncates to K. Shards ship full rankings (Partial.Actors), which
// is what makes this an ordered top-k merge rather than the lossy
// union-of-local-top-k heuristic: an actor scattered thinly across
// shards still totals correctly.
type topKMergeStrategy struct{}

func (topKMergeStrategy) Name() string { return "topk-merge" }

func (topKMergeStrategy) Merge(q Query, parts []*Partial, res *Result) {
	acc := make(map[string]int64)
	for _, p := range parts {
		for _, ac := range p.Actors {
			acc[ac.Actor] += ac.Count
		}
	}
	ranked := rankActors(acc)
	if k := q.topK(); len(ranked) > k {
		ranked = ranked[:k]
	}
	res.TopActors = ranked
}

// kwayMergeStrategy merges per-shard chain-ordered pages by (height,
// seq) into one page. Each shard fetched up to the same page limit,
// so the merged page's records are all <= any truncated shard's last
// key — a truncated shard can never be hiding a record that belonged
// on this page, which makes cursor pagination gap-free.
type kwayMergeStrategy struct{}

func (kwayMergeStrategy) Name() string { return "kway-merge" }

func (kwayMergeStrategy) Merge(q Query, parts []*Partial, res *Result) {
	limit := q.pageLimit()
	idx := make([]int, len(parts))
	leftover := func() bool {
		for i, p := range parts {
			if idx[i] < len(p.Txns) || p.More {
				return true
			}
		}
		return false
	}
	for len(res.Txns) < limit {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p.Txns) {
				continue
			}
			if best < 0 || p.Txns[idx[i]].cursor().before(parts[best].Txns[idx[best]].cursor()) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		res.Txns = append(res.Txns, parts[best].Txns[idx[best]])
		idx[best]++
	}
	if leftover() {
		res.HasMore = true
		last := res.Txns[len(res.Txns)-1].cursor()
		res.Next = Cursor{Height: last.Height, Seq: last.Seq + 1}
	}
}
