package fed

import (
	"context"
	"sync/atomic"
	"testing"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// countingShard is a stubShard that counts fan-out arrivals, so tests
// can prove a cache hit never reached the shards.
type countingShard struct {
	p     Partial
	calls atomic.Int64
}

func (s *countingShard) Info() ShardInfo { return ShardInfo{ID: s.p.Shard, Tip: s.p.Tip} }

func (s *countingShard) Query(context.Context, Query) (*Partial, error) {
	s.calls.Add(1)
	p := s.p
	return &p, nil
}

// TestRouterResultCache: the second identical query at the same tip
// is answered from the cache (no shard fan-out, Cached set), and a
// tip advance invalidates every entry.
func TestRouterResultCache(t *testing.T) {
	tip := atomic.Int64{}
	tip.Store(99)
	a := &countingShard{p: Partial{Shard: 0, Tip: 99, Count: 10}}
	b := &countingShard{p: Partial{Shard: 1, Tip: 99, Count: 3}}
	part := ByHeight(2, 99)
	rt := NewRouter(part, []Shard{a, b}, Options{}, tip.Load)

	q := Query{Kind: KindCount, Range: etl.All()}
	res, err := rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("first query reported Cached")
	}
	if res.Count != 13 {
		t.Fatalf("count %d, want 13", res.Count)
	}
	if got := a.calls.Load() + b.calls.Load(); got != 2 {
		t.Fatalf("first query reached %d shards, want 2", got)
	}

	res2, err := rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("second identical query at the same tip missed the cache")
	}
	if res2.Count != 13 || res2.Strategy != res.Strategy {
		t.Fatalf("cached result diverged: %+v vs %+v", res2, res)
	}
	if got := a.calls.Load() + b.calls.Load(); got != 2 {
		t.Fatalf("cache hit still fanned out (shard calls %d, want 2)", got)
	}
	st := rt.CacheStats()
	if !st.Enabled || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v, want enabled with 1 hit / 1 miss / 1 entry", st)
	}

	// Tip advance: the same fingerprint must miss and refan.
	tip.Store(100)
	res3, err := rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cached {
		t.Fatal("query after tip advance served a stale cached answer")
	}
	if got := a.calls.Load() + b.calls.Load(); got != 4 {
		t.Fatalf("post-advance query reached %d shard calls, want 4", got)
	}
	if st := rt.CacheStats(); st.Misses != 2 || st.Tip != 100 {
		t.Fatalf("cache stats after advance = %+v, want 2 misses at tip 100", st)
	}
}

// TestRouterCacheSkipsDegraded: results with missing or stale shards
// are never admitted, so a recovered shard is consulted next time.
func TestRouterCacheSkipsDegraded(t *testing.T) {
	part := ByHeight(2, 99)
	fresh := &countingShard{p: Partial{Shard: 0, Tip: 99, Count: 10}}
	lagged := &countingShard{p: Partial{Shard: 1, Tip: 40, Count: 3}}
	rt := NewRouter(part, []Shard{fresh, lagged}, Options{LagBudget: 8}, func() int64 { return 99 })

	q := Query{Kind: KindCount, Range: etl.All()}
	res, err := rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stale) == 0 {
		t.Fatal("expected a stale shard in the setup result")
	}
	res, err = rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("degraded (stale-shard) result was replayed from cache")
	}
	if st := rt.CacheStats(); st.Entries != 0 {
		t.Fatalf("cache holds %d entries, want 0 after degraded-only queries", st.Entries)
	}
}

// TestRouterCacheDisabled: negative CacheSize turns the cache off, and
// a router without a source-tip probe never engages it.
func TestRouterCacheDisabled(t *testing.T) {
	part := ByHeight(1, 99)
	sh := &countingShard{p: Partial{Shard: 0, Tip: 99, Count: 5}}
	rt := NewRouter(part, []Shard{sh}, Options{CacheSize: -1}, func() int64 { return 99 })
	for i := 0; i < 2; i++ {
		res, err := rt.Query(context.Background(), Query{Kind: KindCount, Range: etl.All()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("disabled cache served a hit")
		}
	}
	if sh.calls.Load() != 2 {
		t.Fatalf("disabled cache absorbed fan-out: %d shard calls, want 2", sh.calls.Load())
	}
	if st := rt.CacheStats(); st.Enabled {
		t.Fatalf("CacheStats = %+v, want disabled", st)
	}

	noTip := NewRouter(part, []Shard{sh}, Options{}, nil)
	if st := noTip.CacheStats(); st.Enabled {
		t.Fatal("router without a source-tip probe enabled its cache")
	}
}

// TestCacheKeyNormalization: filter field order and defaulted knobs do
// not split entries, while semantically different queries never
// collide.
func TestCacheKeyNormalization(t *testing.T) {
	base := Query{Kind: KindCount, Range: etl.All(),
		Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPayment, chain.TxnRewards}, Actors: []string{"b", "a"}}}
	reordered := base
	reordered.Filter = etl.Filter{Types: []chain.TxnType{chain.TxnRewards, chain.TxnPayment}, Actors: []string{"a", "b"}}
	if cacheKey(base) != cacheKey(reordered) {
		t.Fatalf("filter order split the key:\n%s\n%s", cacheKey(base), cacheKey(reordered))
	}

	if cacheKey(Query{Kind: KindTopActors, Range: etl.All()}) !=
		cacheKey(Query{Kind: KindTopActors, Range: etl.All(), K: defaultTopK}) {
		t.Fatal("explicit default K split the key")
	}
	if cacheKey(Query{Kind: KindTxns, Range: etl.All()}) !=
		cacheKey(Query{Kind: KindTxns, Range: etl.All(), Limit: defaultPageLimit}) {
		t.Fatal("explicit default Limit split the key")
	}

	distinct := []Query{
		{Kind: KindCount, Range: etl.All()},
		{Kind: KindMix, Range: etl.All()},
		{Kind: KindCount, Range: etl.Range{From: 1, To: -1}},
		{Kind: KindCount, Range: etl.All(), Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPayment}}},
		{Kind: KindCount, Range: etl.All(), Filter: etl.Filter{Actors: []string{"a"}}},
		{Kind: KindCount, Range: etl.All(), HasRegion: true, Region: 0},
		{Kind: KindCount, Range: etl.All(), HasRegion: true, Region: 1},
		{Kind: KindTxns, Range: etl.All(), Cursor: Cursor{Height: 5, Seq: 1}},
		{Kind: KindTxns, Range: etl.All(), Limit: 7},
		{Kind: KindTopActors, Range: etl.All(), K: 3},
	}
	seen := map[string]int{}
	for i, q := range distinct {
		k := cacheKey(q)
		if j, dup := seen[k]; dup {
			t.Fatalf("queries %d and %d collide on key %s", j, i, k)
		}
		seen[k] = i
	}
}

// TestCacheLRUEviction: the oldest untouched entry leaves first.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	r := &Result{Count: 1}
	c.put("a", 9, r)
	c.put("b", 9, r)
	if c.get("a", 9) == nil { // refresh "a"; "b" is now oldest
		t.Fatal("entry a missing before eviction")
	}
	c.put("c", 9, r)
	if c.get("b", 9) != nil {
		t.Fatal("LRU kept b, the least recently used entry")
	}
	if c.get("a", 9) == nil || c.get("c", 9) == nil {
		t.Fatal("LRU evicted a survivor")
	}
	if st := c.stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 at capacity", st.Entries)
	}
}
