package fed

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// countingShard is a stubShard that counts fan-out arrivals, so tests
// can prove a cache hit never reached the shards.
type countingShard struct {
	p     Partial
	calls atomic.Int64
}

func (s *countingShard) Info() ShardInfo { return ShardInfo{ID: s.p.Shard, Tip: s.p.Tip} }

func (s *countingShard) Query(context.Context, Query) (*Partial, error) {
	s.calls.Add(1)
	p := s.p
	return &p, nil
}

// TestRouterResultCache: the second identical query at the same tip
// is answered from the cache (no shard fan-out, Cached set), and a
// tip advance invalidates every entry.
func TestRouterResultCache(t *testing.T) {
	tip := atomic.Int64{}
	tip.Store(99)
	a := &countingShard{p: Partial{Shard: 0, Tip: 99, Count: 10}}
	b := &countingShard{p: Partial{Shard: 1, Tip: 99, Count: 3}}
	part := ByHeight(2, 99)
	rt := NewRouter(part, []Shard{a, b}, Options{}, tip.Load)

	q := Query{Kind: KindCount, Range: etl.All()}
	res, err := rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("first query reported Cached")
	}
	if res.Count != 13 {
		t.Fatalf("count %d, want 13", res.Count)
	}
	if got := a.calls.Load() + b.calls.Load(); got != 2 {
		t.Fatalf("first query reached %d shards, want 2", got)
	}

	res2, err := rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("second identical query at the same tip missed the cache")
	}
	if res2.Count != 13 || res2.Strategy != res.Strategy {
		t.Fatalf("cached result diverged: %+v vs %+v", res2, res)
	}
	if got := a.calls.Load() + b.calls.Load(); got != 2 {
		t.Fatalf("cache hit still fanned out (shard calls %d, want 2)", got)
	}
	st := rt.CacheStats()
	if !st.Enabled || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v, want enabled with 1 hit / 1 miss / 1 entry", st)
	}

	// Tip advance: the same fingerprint must miss and refan.
	tip.Store(100)
	res3, err := rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cached {
		t.Fatal("query after tip advance served a stale cached answer")
	}
	if got := a.calls.Load() + b.calls.Load(); got != 4 {
		t.Fatalf("post-advance query reached %d shard calls, want 4", got)
	}
	if st := rt.CacheStats(); st.Misses != 2 || st.Tip != 100 {
		t.Fatalf("cache stats after advance = %+v, want 2 misses at tip 100", st)
	}
}

// TestRouterCacheSkipsDegraded: results with missing or stale shards
// are never admitted, so a recovered shard is consulted next time.
func TestRouterCacheSkipsDegraded(t *testing.T) {
	part := ByHeight(2, 99)
	fresh := &countingShard{p: Partial{Shard: 0, Tip: 99, Count: 10}}
	lagged := &countingShard{p: Partial{Shard: 1, Tip: 40, Count: 3}}
	rt := NewRouter(part, []Shard{fresh, lagged}, Options{LagBudget: 8}, func() int64 { return 99 })

	q := Query{Kind: KindCount, Range: etl.All()}
	res, err := rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stale) == 0 {
		t.Fatal("expected a stale shard in the setup result")
	}
	res, err = rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("degraded (stale-shard) result was replayed from cache")
	}
	if st := rt.CacheStats(); st.Entries != 0 {
		t.Fatalf("cache holds %d entries, want 0 after degraded-only queries", st.Entries)
	}
}

// TestRouterCacheDisabled: negative CacheSize turns the cache off, and
// a router without a source-tip probe never engages it.
func TestRouterCacheDisabled(t *testing.T) {
	part := ByHeight(1, 99)
	sh := &countingShard{p: Partial{Shard: 0, Tip: 99, Count: 5}}
	rt := NewRouter(part, []Shard{sh}, Options{CacheSize: -1}, func() int64 { return 99 })
	for i := 0; i < 2; i++ {
		res, err := rt.Query(context.Background(), Query{Kind: KindCount, Range: etl.All()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("disabled cache served a hit")
		}
	}
	if sh.calls.Load() != 2 {
		t.Fatalf("disabled cache absorbed fan-out: %d shard calls, want 2", sh.calls.Load())
	}
	if st := rt.CacheStats(); st.Enabled {
		t.Fatalf("CacheStats = %+v, want disabled", st)
	}

	noTip := NewRouter(part, []Shard{sh}, Options{}, nil)
	if st := noTip.CacheStats(); st.Enabled {
		t.Fatal("router without a source-tip probe enabled its cache")
	}
}

// TestCacheKeyNormalization: filter field order and defaulted knobs do
// not split entries, while semantically different queries never
// collide.
func TestCacheKeyNormalization(t *testing.T) {
	base := Query{Kind: KindCount, Range: etl.All(),
		Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPayment, chain.TxnRewards}, Actors: []string{"b", "a"}}}
	reordered := base
	reordered.Filter = etl.Filter{Types: []chain.TxnType{chain.TxnRewards, chain.TxnPayment}, Actors: []string{"a", "b"}}
	if cacheKey(base) != cacheKey(reordered) {
		t.Fatalf("filter order split the key:\n%s\n%s", cacheKey(base), cacheKey(reordered))
	}

	if cacheKey(Query{Kind: KindTopActors, Range: etl.All()}) !=
		cacheKey(Query{Kind: KindTopActors, Range: etl.All(), K: defaultTopK}) {
		t.Fatal("explicit default K split the key")
	}
	if cacheKey(Query{Kind: KindTxns, Range: etl.All()}) !=
		cacheKey(Query{Kind: KindTxns, Range: etl.All(), Limit: defaultPageLimit}) {
		t.Fatal("explicit default Limit split the key")
	}

	distinct := []Query{
		{Kind: KindCount, Range: etl.All()},
		{Kind: KindMix, Range: etl.All()},
		{Kind: KindCount, Range: etl.Range{From: 1, To: -1}},
		{Kind: KindCount, Range: etl.All(), Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPayment}}},
		{Kind: KindCount, Range: etl.All(), Filter: etl.Filter{Actors: []string{"a"}}},
		{Kind: KindCount, Range: etl.All(), HasRegion: true, Region: 0},
		{Kind: KindCount, Range: etl.All(), HasRegion: true, Region: 1},
		{Kind: KindTxns, Range: etl.All(), Cursor: Cursor{Height: 5, Seq: 1}},
		{Kind: KindTxns, Range: etl.All(), Limit: 7},
		{Kind: KindTopActors, Range: etl.All(), K: 3},
	}
	seen := map[string]int{}
	for i, q := range distinct {
		k := cacheKey(q)
		if j, dup := seen[k]; dup {
			t.Fatalf("queries %d and %d collide on key %s", j, i, k)
		}
		seen[k] = i
	}
}

// flakyShard delegates until failed, then errors on every query —
// the serve-stale outage model.
type flakyShard struct {
	inner Shard
	fail  atomic.Bool
}

func (s *flakyShard) Info() ShardInfo { return s.inner.Info() }

func (s *flakyShard) Query(ctx context.Context, q Query) (*Partial, error) {
	if s.fail.Load() {
		return nil, errors.New("shard down")
	}
	return s.inner.Query(ctx, q)
}

// TestRouterServeStaleOnOutage: with a TTL set, a complete cached
// answer from an older tip is served — flagged Cached + ServedStale,
// down shards reported in Stale — when planned shards are
// unavailable, on both the below-quorum and the degraded-but-quorate
// paths.
func TestRouterServeStaleOnOutage(t *testing.T) {
	for _, quorum := range []float64{1, 0.5} {
		tip := atomic.Int64{}
		tip.Store(99)
		a := &countingShard{p: Partial{Shard: 0, Tip: 99, Count: 10}}
		b := &flakyShard{inner: &countingShard{p: Partial{Shard: 1, Tip: 99, Count: 3}}}
		part := ByHeight(2, 99)
		rt := NewRouter(part, []Shard{a, b}, Options{Quorum: quorum, CacheTTL: time.Minute}, tip.Load)

		q := Query{Kind: KindCount, Range: etl.All()}
		if _, err := rt.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}

		// Outage plus a tip advance: the fresh path misses, the fan-out
		// loses shard 1, and the cached complete answer steps in.
		b.fail.Store(true)
		tip.Store(100)
		res, err := rt.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("quorum %.1f: outage query failed instead of serving stale: %v", quorum, err)
		}
		if !res.Cached || !res.ServedStale {
			t.Fatalf("quorum %.1f: flags = cached %v stale-served %v, want both", quorum, res.Cached, res.ServedStale)
		}
		if res.Count != 13 {
			t.Fatalf("quorum %.1f: stale count %d, want the cached 13", quorum, res.Count)
		}
		if len(res.Missing) != 0 || len(res.Gaps) != 0 {
			t.Fatalf("quorum %.1f: served-stale result still degraded: missing=%v gaps=%v", quorum, res.Missing, res.Gaps)
		}
		if len(res.Stale) != 1 || res.Stale[0] != (ShardLag{Shard: 1, Tip: 99, Behind: 1}) {
			t.Fatalf("quorum %.1f: stale = %+v, want shard 1 at cached tip 99", quorum, res.Stale)
		}
		if st := rt.CacheStats(); st.StaleHits != 1 {
			t.Fatalf("quorum %.1f: stale hits = %d, want 1", quorum, st.StaleHits)
		}

		// Recovery: the next query at the live tip fans out normally and
		// is fresh again.
		b.fail.Store(false)
		res, err = rt.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached || res.ServedStale {
			t.Fatalf("quorum %.1f: recovered query still flagged cached=%v stale=%v", quorum, res.Cached, res.ServedStale)
		}
	}
}

// TestRouterServeStaleRespectsTTL: an expired entry is never served
// during an outage, and with TTL zero (the default) the serve-stale
// path does not exist at all.
func TestRouterServeStaleRespectsTTL(t *testing.T) {
	build := func(ttl time.Duration, tip *atomic.Int64) (*Router, *flakyShard) {
		a := &countingShard{p: Partial{Shard: 0, Tip: 99, Count: 10}}
		b := &flakyShard{inner: &countingShard{p: Partial{Shard: 1, Tip: 99, Count: 3}}}
		return NewRouter(ByHeight(2, 99), []Shard{a, b}, Options{CacheTTL: ttl}, tip.Load), b
	}

	// Expired entry: the outage query fails quorum rather than serving
	// an answer past its TTL.
	tip := atomic.Int64{}
	tip.Store(99)
	rt, b := build(5*time.Millisecond, &tip)
	q := Query{Kind: KindCount, Range: etl.All()}
	if _, err := rt.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	b.fail.Store(true)
	tip.Store(100)
	if _, err := rt.Query(context.Background(), q); err == nil {
		t.Fatal("outage query served a result past its TTL")
	}

	// TTL zero: original semantics — tip advance flushes, outage fails.
	tip2 := atomic.Int64{}
	tip2.Store(99)
	rt2, b2 := build(0, &tip2)
	if _, err := rt2.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	b2.fail.Store(true)
	tip2.Store(100)
	if _, err := rt2.Query(context.Background(), q); err == nil {
		t.Fatal("TTL-zero cache served stale during an outage")
	}
}

// TestCacheTTLExpiresFreshHits: even same-tip lookups miss once the
// entry ages past the TTL.
func TestCacheTTLExpiresFreshHits(t *testing.T) {
	c := newResultCache(2, 5*time.Millisecond)
	c.put("a", 9, &Result{Count: 1})
	if c.get("a", 9) == nil {
		t.Fatal("entry missing inside its TTL")
	}
	time.Sleep(15 * time.Millisecond)
	if c.get("a", 9) != nil {
		t.Fatal("expired entry served as a fresh hit")
	}
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("expired entry still resident: %+v", st)
	}
}

// TestCacheLRUEviction: the oldest untouched entry leaves first.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 0)
	r := &Result{Count: 1}
	c.put("a", 9, r)
	c.put("b", 9, r)
	if c.get("a", 9) == nil { // refresh "a"; "b" is now oldest
		t.Fatal("entry a missing before eviction")
	}
	c.put("c", 9, r)
	if c.get("b", 9) != nil {
		t.Fatal("LRU kept b, the least recently used entry")
	}
	if c.get("a", 9) == nil || c.get("c", 9) == nil {
		t.Fatal("LRU evicted a survivor")
	}
	if st := c.stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 at capacity", st.Entries)
	}
}
