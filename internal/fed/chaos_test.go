package fed

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
	"peoplesnet/internal/faultfs"
)

// chaosHarness wires a durable supervised cluster over per-shard
// fault-injecting filesystems: each shard gets its own directory and
// faultfs.FS, and the same FS carries across node incarnations — the
// crash kills the process, the disk survives.
type chaosHarness struct {
	dirs []string
	fss  []*faultfs.FS

	mu    sync.Mutex
	stall map[ShardID]bool // armed: next Next() on the shard blocks until crash
	drop  map[ShardID]bool // armed: next Next() on the shard reports end of stream
}

func newChaosHarness(t testing.TB, shards int, seed int64, torn bool) *chaosHarness {
	t.Helper()
	h := &chaosHarness{stall: map[ShardID]bool{}, drop: map[ShardID]bool{}}
	base := t.TempDir()
	for i := 0; i < shards; i++ {
		h.dirs = append(h.dirs, filepath.Join(base, fmt.Sprintf("shard-%d", i)))
		h.fss = append(h.fss, faultfs.New(etl.OSFS{}, faultfs.Config{
			Seed: seed + int64(i), Crash: true, TornWrite: torn,
		}))
	}
	return h
}

// options builds the cluster options: durable shards over the fault
// filesystems (healed at every restart — the supervised "new process"
// sees a working disk) and no result cache, so every verification
// answer is recomputed from the recovered stores.
func (h *chaosHarness) options() Options {
	return Options{
		PerShardTimeout: time.Minute,
		CacheSize:       -1,
		ShardStore: func(id ShardID) (string, etl.Config) {
			h.fss[id].Heal()
			return h.dirs[id], etl.Config{FS: h.fss[id], SegmentBlocks: 16}
		},
		WrapSource: h.wrap,
	}
}

func (h *chaosHarness) wrap(id ShardID, src Source) Source {
	return &chaosSource{Source: src, h: h, id: id, closed: make(chan struct{})}
}

func (h *chaosHarness) armStall(id ShardID) {
	h.mu.Lock()
	h.stall[id] = true
	h.mu.Unlock()
}

func (h *chaosHarness) armDrop(id ShardID) {
	h.mu.Lock()
	h.drop[id] = true
	h.mu.Unlock()
}

// claim consumes an armed fault so it fires exactly once: the victim
// incarnation trips it, the restarted one runs clean.
func (h *chaosHarness) claim(m map[ShardID]bool, id ShardID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !m[id] {
		return false
	}
	delete(m, id)
	return true
}

// corruptSegment flips one bit in the shard's first sealed segment
// file — silent media damage at rest.
func (h *chaosHarness) corruptSegment(t *testing.T, id ShardID) {
	t.Helper()
	names, err := h.fss[id].ReadDir(h.dirs[id])
	if err != nil {
		t.Fatalf("shard %d readdir: %v", id, err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".seg") {
			if _, err := h.fss[id].CorruptFile(filepath.Join(h.dirs[id], name)); err != nil {
				t.Fatalf("corrupt %s: %v", name, err)
			}
			return
		}
	}
	t.Fatalf("shard %d has no sealed segment to corrupt (names: %v)", id, names)
}

// chaosSource is the fed-layer fault injector: it can stall (Next
// blocks until the supervisor declares the node wedged and crashes
// it) or disconnect (Next reports end of stream, as if the producer
// hung up). BlockAt and Tip always pass through — the watchdog and
// seq recovery see the real source.
type chaosSource struct {
	Source
	h      *chaosHarness
	id     ShardID
	closed chan struct{}
	once   sync.Once
}

func (s *chaosSource) Next(after int64) (*chain.Block, bool) {
	if s.h.claim(s.h.drop, s.id) {
		return nil, false
	}
	if s.h.claim(s.h.stall, s.id) {
		<-s.closed
		return nil, false
	}
	return s.Source.Next(after)
}

func (s *chaosSource) Close() {
	s.once.Do(func() { close(s.closed) })
	s.Source.Close()
}

// fastSupervision shrinks every supervisor interval to test scale.
func fastSupervision() SupervisorOptions {
	return SupervisorOptions{
		ProbeInterval: 2 * time.Millisecond,
		WedgeProbes:   5,
		BackoffBase:   time.Millisecond,
		BackoffMax:    20 * time.Millisecond,
		MaxRestarts:   50,
		HalfOpenAfter: 50 * time.Millisecond,
	}
}

func chaosWait(t *testing.T, cl *Cluster, height int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := cl.WaitHeight(ctx, height); err != nil {
		t.Fatalf("reconvergence to height %d: %v", height, err)
	}
}

// verifyMatrix proves the recovered cluster is bit-identical to the
// raw-chain reference on the full query corpus, with no degradation
// and nothing served from a cache.
func verifyMatrix(t *testing.T, cl *Cluster, blocks []*chain.Block, matrix []Query) {
	t.Helper()
	for i, q := range matrix {
		res, err := cl.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("post-recovery query %d (%s): %v", i, q.Kind, err)
		}
		if len(res.Missing) > 0 || len(res.Gaps) > 0 {
			t.Fatalf("post-recovery query %d (%s): missing=%v gaps=%v", i, q.Kind, res.Missing, res.Gaps)
		}
		if res.Cached {
			t.Fatalf("post-recovery query %d (%s) was served from a cache", i, q.Kind)
		}
		assertSameResult(t, fmt.Sprintf("post-recovery query %d (%s)", i, q.Kind), res, Reference(blocks, q))
	}
}

// chaosFault is one way to hurt shard 0 mid-tail.
type chaosFault struct {
	name string
	torn bool
	arm  func(t *testing.T, h *chaosHarness, cl *Cluster)
}

func chaosFaults() []chaosFault {
	return []chaosFault{
		{name: "kill-mid-tail", arm: func(t *testing.T, _ *chaosHarness, cl *Cluster) {
			if err := cl.Kill(0); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "crash-persist-fault", arm: func(_ *testing.T, h *chaosHarness, _ *Cluster) {
			h.fss[0].FailAt(3)
		}},
		{name: "torn-wal-write", torn: true, arm: func(_ *testing.T, h *chaosHarness, _ *Cluster) {
			h.fss[0].FailAt(3)
		}},
		{name: "bit-flip-sealed-segment", arm: func(t *testing.T, h *chaosHarness, cl *Cluster) {
			// Corrupt first (the file is at rest; the running node never
			// rereads it), then kill: the restart discovers the damage,
			// wipes, and re-ingests cold from the source.
			h.corruptSegment(t, 0)
			if err := cl.Kill(0); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "stalled-shard", arm: func(_ *testing.T, h *chaosHarness, _ *Cluster) {
			h.armStall(0)
		}},
		{name: "producer-disconnect", arm: func(_ *testing.T, h *chaosHarness, _ *Cluster) {
			h.armDrop(0)
		}},
	}
}

// runChaosScenario replays the world into a live chain with a durable
// supervised cluster tailing it, injects the fault at the halfway
// point, finishes the replay, and requires full reconvergence with
// bit-identical answers.
func runChaosScenario(t *testing.T, part Partition, f chaosFault, seed int64) {
	src := testChain(t)
	blocks := src.Blocks()
	matrix := queryMatrix(src)

	h := newChaosHarness(t, part.NumShards(), seed, f.torn)
	live := chain.NewChain(src.Genesis)
	cl := FollowChain(live, part, h.options())
	defer cl.Close()
	sup := cl.Supervise(fastSupervision())

	half := len(blocks) / 2
	for _, b := range blocks[:half] {
		if _, err := live.AppendBlock(b.Height, b.Txns); err != nil {
			t.Fatalf("replay height %d: %v", b.Height, err)
		}
	}
	chaosWait(t, cl, blocks[half-1].Height)

	f.arm(t, h, cl)

	for _, b := range blocks[half:] {
		if _, err := live.AppendBlock(b.Height, b.Txns); err != nil {
			t.Fatalf("replay height %d: %v", b.Height, err)
		}
	}
	chaosWait(t, cl, live.Height())

	verifyMatrix(t, cl, live.Blocks(), matrix)

	st := sup.Status()
	if st[0].Restarts == 0 {
		t.Fatalf("fault %s never forced a restart of shard 0: %+v", f.name, st[0])
	}
	if st[0].State != StateRunning {
		t.Fatalf("shard 0 ended in state %s, want running: %+v", st[0].State, st[0])
	}
}

// TestFedChaosMatrix runs every fault kind against the smoke layouts:
// a shard is hurt mid-tail, the supervisor restarts it, and the
// recovered cluster answers the full query corpus bit-identically to
// the reference. Meant to run under -race (make chaos-smoke).
func TestFedChaosMatrix(t *testing.T) {
	c := testChain(t)
	for _, part := range []Partition{ByHeight(4, c.Height()), ByRegion(4)} {
		for fi, f := range chaosFaults() {
			f := f
			t.Run(part.Name()+"/"+f.name, func(t *testing.T) {
				runChaosScenario(t, part, f, 0x9a05+int64(fi)*101)
			})
		}
	}
}

// TestFedChaosKillAllLayouts sweeps the kill fault across every shard
// layout of the bit-identical property test, including the one with
// entirely empty shards.
func TestFedChaosKillAllLayouts(t *testing.T) {
	if testing.Short() {
		t.Skip("full layout sweep is the long half of the chaos matrix")
	}
	c := testChain(t)
	kill := chaosFaults()[0]
	seed := int64(0x51117)
	for name, part := range testPartitions(c.Height()) {
		seed++
		part := part
		t.Run(name, func(t *testing.T) {
			runChaosScenario(t, part, kill, seed)
		})
	}
}

// TestDurableFollowerResume pins the checkpoint-resume property the
// MTTR experiment depends on: a killed durable shard comes back
// reading its sealed segments and WAL tail, and re-tails only the
// missed suffix — it does not re-ingest from genesis.
func TestDurableFollowerResume(t *testing.T) {
	src := testChain(t)
	blocks := src.Blocks()

	h := newChaosHarness(t, 2, 0xd00d, false)
	live := chain.NewChain(src.Genesis)
	part := ByHeight(2, blocks[len(blocks)-1].Height)
	cl := FollowChain(live, part, h.options())
	defer cl.Close()
	cl.Supervise(fastSupervision())

	half := len(blocks) / 2
	for _, b := range blocks[:half] {
		if _, err := live.AppendBlock(b.Height, b.Txns); err != nil {
			t.Fatal(err)
		}
	}
	chaosWait(t, cl, blocks[half-1].Height)

	if err := cl.Kill(0); err != nil {
		t.Fatal(err)
	}
	chaosWait(t, cl, blocks[half-1].Height)

	// The restarted incarnation resumed from durable state: its store
	// was not rebuilt from genesis, so its first height predates the
	// kill. (A cold rebuild would also pass WaitHeight; this assertion
	// is what separates resume from re-ingest.)
	n := cl.slots[0].current()
	if n == nil {
		t.Fatal("shard 0 has no node after recovery")
	}
	if first := n.store.FirstHeight(); first != blocks[0].Height {
		t.Fatalf("recovered store starts at %d, want %d (resume, not cold rebuild)", first, blocks[0].Height)
	}
	if n.store.Height() < blocks[half-1].Height {
		t.Fatalf("recovered store tip %d below pre-kill tip %d", n.store.Height(), blocks[half-1].Height)
	}

	for _, b := range blocks[half:] {
		if _, err := live.AppendBlock(b.Height, b.Txns); err != nil {
			t.Fatal(err)
		}
	}
	chaosWait(t, cl, live.Height())
	verifyMatrix(t, cl, live.Blocks(), queryMatrix(src))
}
