package fed

import (
	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
)

// NumRegions is the fixed size of the geographic routing vocabulary.
// It deliberately matches the simulator's 24-region world
// decomposition (internal/simnet): a region partition then aligns
// with where activity is actually generated, so PoC traffic for one
// metro lands on one shard.
const NumRegions = 24

// RegionOf maps a transaction to its routing region. Located
// transactions (gateway adds/asserts, PoC receipts) use their
// asserted cell; everything else hashes its home actor — the first
// address the transaction mentions — so one actor's unlocated
// activity (payments, rewards entries aside) stays on one shard.
// Transactions with neither a location nor an actor land in region 0.
func RegionOf(t chain.Txn) int {
	if c, ok := txnCell(t); ok {
		return regionOfPoint(c.Center())
	}
	if a := homeActor(t); a != "" {
		return regionOfActor(a)
	}
	return 0
}

// txnCell extracts the location a transaction asserts, if any.
func txnCell(t chain.Txn) (h3lite.Cell, bool) {
	switch v := t.(type) {
	case *chain.AddGateway:
		if v.Location.Valid() {
			return v.Location, true
		}
	case *chain.AssertLocation:
		if v.Location.Valid() {
			return v.Location, true
		}
	case *chain.PoCReceipt:
		if v.ChallengeeLocation.Valid() {
			return v.ChallengeeLocation, true
		}
	default:
		// Every other variant routes by home actor.
	}
	return h3lite.InvalidCell, false
}

// homeActor returns the first address the transaction mentions —
// etl.ActorsOf emits in field order, so this is stable per variant.
func homeActor(t chain.Txn) string {
	first := ""
	etl.ActorsOf(t, func(a string) {
		if first == "" {
			first = a
		}
	})
	return first
}

// regionOfPoint maps a location onto the region set with the same
// ~4°×4° grid hash the simulator partitions the world with
// (simnet.regionOfPoint) — kept bit-identical so fed regions coincide
// with simulation regions.
func regionOfPoint(p geo.Point) int {
	gy := uint64((p.Lat + 90) / 4)
	gx := uint64((p.Lon + 180) / 4)
	h := gy*0x9e3779b97f4a7c15 ^ gx*0xc2b2ae3d27d4eb4f
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % NumRegions)
}

// regionOfActor spreads unlocated activity over the regions by
// address hash (FNV-1a).
func regionOfActor(a string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	return int(h % NumRegions)
}
