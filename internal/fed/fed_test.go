package fed

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
	"peoplesnet/internal/simnet"
)

var (
	worldOnce  sync.Once
	worldChain *chain.Chain
	worldErr   error
)

// testChain generates one scaled-down world per test binary.
func testChain(t testing.TB) *chain.Chain {
	t.Helper()
	worldOnce.Do(func() {
		cfg := simnet.TestConfig(7)
		cfg.Days = 200
		cfg.TargetHotspots = 300
		res, err := simnet.Generate(cfg)
		if err != nil {
			worldErr = err
			return
		}
		worldChain = res.Chain
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return worldChain
}

// testCluster builds a cluster over c and waits until every shard has
// ingested the current tip.
func testCluster(t testing.TB, c *chain.Chain, part Partition, opts Options) *Cluster {
	t.Helper()
	cl := FollowChain(c, part, opts)
	t.Cleanup(func() {
		if err := cl.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := cl.WaitHeight(ctx, c.Height()); err != nil {
		t.Fatalf("cluster catch-up: %v", err)
	}
	return cl
}

// sampleActors picks well-known addresses off the chain so actor
// filters hit real posting lists.
func sampleActors(c *chain.Chain, n int) []string {
	var actors []string
	seen := map[string]bool{}
	c.Scan(func(_ int64, t chain.Txn) bool {
		etl.ActorsOf(t, func(a string) {
			if a != "" && !seen[a] && len(actors) < n {
				seen[a] = true
				actors = append(actors, a)
			}
		})
		return len(actors) < n
	})
	return actors
}

// busiestRegion returns the routing region with the most txns, so
// region-scoped queries in the matrix are never trivially empty.
func busiestRegion(c *chain.Chain) int {
	counts := make([]int64, NumRegions)
	c.Scan(func(_ int64, t chain.Txn) bool {
		counts[RegionOf(t)]++
		return true
	})
	best := 0
	for r, n := range counts {
		if n > counts[best] {
			best = r
		}
	}
	return best
}

// queryMatrix is the property-test corpus: every kind, crossed with
// full/partial ranges, type and actor filters, and region scoping.
func queryMatrix(c *chain.Chain) []Query {
	tip := c.Height()
	actors := sampleActors(c, 3)
	region := busiestRegion(c)
	return []Query{
		{Kind: KindCount, Range: etl.All()},
		{Kind: KindMix, Range: etl.All()},
		{Kind: KindCount, Range: etl.Range{From: tip / 4, To: tip / 2}},
		{Kind: KindMix, Range: etl.Range{From: tip / 3, To: -1}},
		{Kind: KindCount, Range: etl.All(), Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPoCReceipt}}},
		{Kind: KindMix, Range: etl.Range{From: 0, To: tip * 3 / 4}, Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPayment, chain.TxnRewards}}},
		{Kind: KindCount, Range: etl.All(), Filter: etl.Filter{Actors: actors[:1]}},
		{Kind: KindCount, Range: etl.Range{From: tip / 5, To: -1}, Filter: etl.Filter{Types: []chain.TxnType{chain.TxnAssertLocation}, Actors: actors}},
		{Kind: KindTxns, Range: etl.All(), Limit: 64},
		{Kind: KindTxns, Range: etl.Range{From: tip / 3, To: 2 * tip / 3}, Filter: etl.Filter{Types: []chain.TxnType{chain.TxnAddGateway, chain.TxnAssertLocation}}, Limit: 32},
		{Kind: KindTxns, Range: etl.All(), Filter: etl.Filter{Actors: actors[1:2]}, Limit: 16},
		{Kind: KindTopActors, Range: etl.All(), K: 12},
		{Kind: KindTopActors, Range: etl.Range{From: 0, To: tip / 2}, Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPoCReceipt}}, K: 8},
		{Kind: KindCount, Range: etl.All(), HasRegion: true, Region: region},
		{Kind: KindMix, Range: etl.Range{From: tip / 6, To: -1}, HasRegion: true, Region: region},
		{Kind: KindTxns, Range: etl.All(), HasRegion: true, Region: region, Limit: 50},
		{Kind: KindTopActors, Range: etl.All(), HasRegion: true, Region: region, K: 10},
		// Height-scoped narrow window (the routing-precision case for
		// height partitions).
		{Kind: KindCount, Range: etl.Range{From: tip - tip/8, To: -1}},
		{Kind: KindTxns, Range: etl.Range{From: tip - tip/8, To: -1}, Limit: 40},
		// Empty answer: a range beyond the tip.
		{Kind: KindCount, Range: etl.Range{From: tip + 100, To: tip + 200}},
	}
}

// testPartitions is the shard-layout corpus of the property test.
func testPartitions(tip int64) map[string]Partition {
	parts := map[string]Partition{}
	for _, n := range []int{1, 2, 4, 8} {
		parts[fmt.Sprintf("height-%d", n)] = ByHeight(n, tip)
		parts[fmt.Sprintf("region-%d", n)] = ByRegion(n)
	}
	// More shards than regions: shards 24+ own nothing at all.
	parts["region-30-empty-shards"] = ByRegion(30)
	return parts
}

func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Count != want.Count {
		t.Errorf("%s: count %d, want %d", label, got.Count, want.Count)
	}
	if len(got.Mix) != len(want.Mix) {
		t.Errorf("%s: mix has %d types, want %d", label, len(got.Mix), len(want.Mix))
	}
	for tt, n := range want.Mix {
		if got.Mix[tt] != n {
			t.Errorf("%s: mix[%s] = %d, want %d", label, tt, got.Mix[tt], n)
		}
	}
	if len(got.TopActors) != len(want.TopActors) {
		t.Fatalf("%s: %d top actors, want %d", label, len(got.TopActors), len(want.TopActors))
	}
	for i, ac := range want.TopActors {
		if got.TopActors[i] != ac {
			t.Errorf("%s: top actor %d = %+v, want %+v", label, i, got.TopActors[i], ac)
		}
	}
	if len(got.Txns) != len(want.Txns) {
		t.Fatalf("%s: %d txns, want %d", label, len(got.Txns), len(want.Txns))
	}
	for i, rec := range want.Txns {
		g := got.Txns[i]
		if g.Height != rec.Height || g.Seq != rec.Seq || g.Hash != rec.Hash || g.Type != rec.Type {
			t.Errorf("%s: txn %d = (%d,%d,%s,%s), want (%d,%d,%s,%s)",
				label, i, g.Height, g.Seq, g.Type, g.Hash, rec.Height, rec.Seq, rec.Type, rec.Hash)
		}
	}
	if got.HasMore != want.HasMore {
		t.Errorf("%s: has_more %v, want %v", label, got.HasMore, want.HasMore)
	}
	if want.HasMore && got.Next != want.Next {
		t.Errorf("%s: next cursor %v, want %v", label, got.Next, want.Next)
	}
}

// TestFederatedBitIdentical is the core correctness property:
// federated answers are bit-identical to the raw-chain reference for
// every strategy under every shard layout, including layouts with
// entirely empty shards.
func TestFederatedBitIdentical(t *testing.T) {
	c := testChain(t)
	blocks := c.Blocks()
	matrix := queryMatrix(c)
	for name, part := range testPartitions(c.Height()) {
		t.Run(name, func(t *testing.T) {
			cl := testCluster(t, c, part, Options{})
			for i, q := range matrix {
				res, err := cl.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("query %d (%s): %v", i, q.Kind, err)
				}
				if len(res.Missing) > 0 || len(res.Gaps) > 0 {
					t.Fatalf("query %d (%s): unexpected missing=%v gaps=%v", i, q.Kind, res.Missing, res.Gaps)
				}
				assertSameResult(t, fmt.Sprintf("query %d (%s)", i, q.Kind), res, Reference(blocks, q))
			}
		})
	}
}

// TestFederationSmoke is the make-check matrix: 4 in-process shards
// per scheme, full query matrix, meant to run under -race.
func TestFederationSmoke(t *testing.T) {
	c := testChain(t)
	blocks := c.Blocks()
	matrix := queryMatrix(c)
	for _, part := range []Partition{ByHeight(4, c.Height()), ByRegion(4)} {
		t.Run(part.Name(), func(t *testing.T) {
			cl := testCluster(t, c, part, Options{PerShardTimeout: time.Minute})
			for i, q := range matrix {
				res, err := cl.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("query %d (%s): %v", i, q.Kind, err)
				}
				assertSameResult(t, fmt.Sprintf("query %d (%s)", i, q.Kind), res, Reference(blocks, q))
			}
		})
	}
}

// TestFederatedPaginationWalk pages through the full listing with a
// small page size and checks the concatenation is the entire
// single-store listing, in order, with no duplicates or holes.
func TestFederatedPaginationWalk(t *testing.T) {
	c := testChain(t)
	blocks := c.Blocks()
	want := Reference(blocks, Query{Kind: KindTxns, Range: etl.All(), Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPoCReceipt, chain.TxnPayment}}, Limit: 1 << 30})
	for name, part := range map[string]Partition{"height": ByHeight(4, c.Height()), "region": ByRegion(4)} {
		t.Run(name, func(t *testing.T) {
			cl := testCluster(t, c, part, Options{})
			var walked []TxnRec
			q := Query{Kind: KindTxns, Range: etl.All(), Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPoCReceipt, chain.TxnPayment}}, Limit: 37}
			for pages := 0; ; pages++ {
				if pages > len(want.Txns)/37+2 {
					t.Fatal("pagination never terminated")
				}
				res, err := cl.Query(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				walked = append(walked, res.Txns...)
				if !res.HasMore {
					break
				}
				q.Cursor = res.Next
			}
			if len(walked) != len(want.Txns) {
				t.Fatalf("walked %d txns, want %d", len(walked), len(want.Txns))
			}
			for i, rec := range want.Txns {
				if walked[i].Height != rec.Height || walked[i].Seq != rec.Seq || walked[i].Hash != rec.Hash {
					t.Fatalf("walked txn %d = (%d,%d,%s), want (%d,%d,%s)",
						i, walked[i].Height, walked[i].Seq, walked[i].Hash, rec.Height, rec.Seq, rec.Hash)
				}
			}
		})
	}
}

// slowShard delays every query long enough to trip the per-shard
// timeout.
type slowShard struct {
	Shard
	delay time.Duration
}

func (s slowShard) Query(ctx context.Context, q Query) (*Partial, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(s.delay):
	}
	return s.Shard.Query(ctx, q)
}

// TestGapReportingAndQuorum: a shard that misses its timeout degrades
// to reported gaps when the quorum allows, and fails the query when
// it does not.
func TestGapReportingAndQuorum(t *testing.T) {
	c := testChain(t)
	blocks := c.Blocks()
	part := ByHeight(4, c.Height())
	cl := testCluster(t, c, part, Options{})

	shards := make([]Shard, len(cl.router.shards))
	copy(shards, cl.router.shards)
	shards[1] = slowShard{Shard: shards[1], delay: time.Minute}

	q := Query{Kind: KindCount, Range: etl.All()}
	want := Reference(blocks, q)

	// Quorum 0.5: three of four shards answering is a degraded
	// success with the missing shard's span reported as a gap.
	rt := NewRouter(part, shards, Options{PerShardTimeout: 20 * time.Millisecond, Quorum: 0.5}, c.Height)
	res, err := rt.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 1 || res.Missing[0] != 1 {
		t.Fatalf("missing = %v, want [1]", res.Missing)
	}
	if len(res.Gaps) != 1 {
		t.Fatalf("gaps = %v, want exactly one", res.Gaps)
	}
	gFrom, gTo := part.HeightSpan(1)
	if res.Gaps[0].From != gFrom || res.Gaps[0].To != gTo {
		t.Fatalf("gap = %+v, want [%d, %d]", res.Gaps[0], gFrom, gTo)
	}
	// The answered shards' counts must equal reference minus the
	// missing shard's span.
	missingSpan := Reference(blocks, Query{Kind: KindCount, Range: etl.Range{From: gFrom, To: gTo}})
	if res.Count != want.Count-missingSpan.Count {
		t.Fatalf("degraded count %d, want %d", res.Count, want.Count-missingSpan.Count)
	}

	// A region-scoped query that doesn't plan the slow shard is
	// unaffected: gaps only ever cover planned shards.
	narrow := Query{Kind: KindCount, Range: etl.Range{From: 0, To: gFrom - 1}}
	res, err = rt.Query(context.Background(), narrow)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 0 || len(res.Gaps) != 0 {
		t.Fatalf("narrow query hit the slow shard: missing=%v gaps=%v", res.Missing, res.Gaps)
	}
	assertSameResult(t, "narrow", res, Reference(blocks, narrow))

	// Full quorum: the same timeout now fails the query.
	strict := NewRouter(part, shards, Options{PerShardTimeout: 20 * time.Millisecond, Quorum: 1}, c.Height)
	if _, err := strict.Query(context.Background(), q); err == nil {
		t.Fatal("want quorum failure, got success")
	}
}

// stubShard returns a canned partial, for router-level staleness
// accounting.
type stubShard struct{ p Partial }

func (s stubShard) Info() ShardInfo                                { return ShardInfo{ID: s.p.Shard, Tip: s.p.Tip} }
func (s stubShard) Query(context.Context, Query) (*Partial, error) { p := s.p; return &p, nil }

// TestStaleShardSurfaced: a shard answering from a store beyond the
// lag budget is flagged in Result.Stale, not awaited and not dropped.
func TestStaleShardSurfaced(t *testing.T) {
	part := ByHeight(2, 99)
	fresh := stubShard{p: Partial{Shard: 0, Tip: 99, Count: 10}}
	stale := stubShard{p: Partial{Shard: 1, Tip: 40, Count: 3}}
	rt := NewRouter(part, []Shard{fresh, stale}, Options{LagBudget: 8}, func() int64 { return 99 })
	res, err := rt.Query(context.Background(), Query{Kind: KindCount, Range: etl.All()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 13 {
		t.Fatalf("count %d, want 13", res.Count)
	}
	if len(res.Stale) != 1 || res.Stale[0] != (ShardLag{Shard: 1, Tip: 40, Behind: 59}) {
		t.Fatalf("stale = %+v, want shard 1 behind 59", res.Stale)
	}
	// Within budget: nothing flagged.
	rt = NewRouter(part, []Shard{fresh, stale}, Options{LagBudget: 60}, func() int64 { return 99 })
	if res, _ = rt.Query(context.Background(), Query{Kind: KindCount, Range: etl.All()}); len(res.Stale) != 0 {
		t.Fatalf("stale = %+v, want none within budget", res.Stale)
	}
}

// TestRoutingPrecision: scoped queries only plan the shards whose
// slice can answer, and nearly all planned shards contribute.
func TestRoutingPrecision(t *testing.T) {
	c := testChain(t)
	tip := c.Height()

	hp := ByHeight(4, tip)
	hcl := testCluster(t, c, hp, Options{})
	// A query aligned to shard 0's slice plans exactly that shard.
	_, s0end := hp.HeightSpan(0)
	q := Query{Kind: KindCount, Range: etl.Range{From: 0, To: s0end}}
	if planned := hcl.Plan(q); len(planned) != 1 {
		t.Fatalf("height-scoped query planned %v shards, want exactly 1 of 4", planned)
	}
	res, err := hcl.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Precision(); p < 0.9 {
		t.Fatalf("height-scoped precision %.2f, want >= 0.9", p)
	}

	rcl := testCluster(t, c, ByRegion(4), Options{})
	rq := Query{Kind: KindCount, Range: etl.All(), HasRegion: true, Region: busiestRegion(c)}
	if planned := rcl.Plan(rq); len(planned) != 1 {
		t.Fatalf("region-scoped query planned %v shards, want exactly 1 of 4", planned)
	}
	res, err = rcl.Query(context.Background(), rq)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Precision(); p != 1 {
		t.Fatalf("region-scoped precision %.2f, want 1", p)
	}
}

// TestLiveFollowAndMergedTail replays the world into a fresh chain
// while a cluster follows it live, then checks (a) post-catch-up
// queries match the reference and (b) the merged tail reassembled the
// exact block sequence — headers, hashes, and intra-block txn order.
func TestLiveFollowAndMergedTail(t *testing.T) {
	src := testChain(t)
	blocks := src.Blocks()

	live := chain.NewChain(src.Genesis)
	cl := FollowChain(live, ByRegion(3), Options{})
	defer cl.Close()
	tail := cl.Tail(-1)
	defer tail.Close()

	type tailed struct {
		blocks []*chain.Block
		err    error
	}
	collected := make(chan tailed, 1)
	go func() {
		var got tailed
		for len(got.blocks) < len(blocks) {
			b, ok := tail.Next()
			if !ok {
				got.err = fmt.Errorf("merged tail ended after %d blocks", len(got.blocks))
				break
			}
			got.blocks = append(got.blocks, b)
		}
		collected <- got
	}()

	for _, b := range blocks {
		if _, err := live.AppendBlock(b.Height, b.Txns); err != nil {
			t.Fatalf("replay height %d: %v", b.Height, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := cl.WaitHeight(ctx, live.Height()); err != nil {
		t.Fatal(err)
	}

	q := Query{Kind: KindMix, Range: etl.All()}
	res, err := cl.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "live mix", res, Reference(live.Blocks(), q))

	got := <-collected
	if got.err != nil {
		t.Fatal(got.err)
	}
	liveBlocks := live.Blocks()
	for i, want := range liveBlocks {
		b := got.blocks[i]
		if b.Height != want.Height || b.Hash != want.Hash || len(b.Txns) != len(want.Txns) {
			t.Fatalf("tail block %d = (h=%d, %s, %d txns), want (h=%d, %s, %d txns)",
				i, b.Height, b.Hash, len(b.Txns), want.Height, want.Hash, len(want.Txns))
		}
		for j := range want.Txns {
			if b.Txns[j] != want.Txns[j] {
				t.Fatalf("tail block %d txn %d out of order", i, j)
			}
		}
	}
}

// TestShardInfoLag: cluster shard snapshots report lag relative to
// the source tip.
func TestShardInfoLag(t *testing.T) {
	c := testChain(t)
	cl := testCluster(t, c, ByHeight(4, c.Height()), Options{})
	infos := cl.Shards()
	if len(infos) != 4 {
		t.Fatalf("%d shard infos, want 4", len(infos))
	}
	var txns int64
	for _, info := range infos {
		if info.Lag != 0 {
			t.Fatalf("caught-up shard %d reports lag %d", info.ID, info.Lag)
		}
		if info.Tip != c.Height() {
			t.Fatalf("shard %d tip %d, want %d", info.ID, info.Tip, c.Height())
		}
		if info.Err != "" {
			t.Fatalf("shard %d error: %s", info.ID, info.Err)
		}
		txns += info.Txns
	}
	if want := c.TxnCount(); txns != want {
		t.Fatalf("shards hold %d txns total, want %d (exact tiling)", txns, want)
	}
}

// TestCursorRoundTrip pins the wire form of cursors.
func TestCursorRoundTrip(t *testing.T) {
	for _, c := range []Cursor{{}, {Height: 42, Seq: 7}, {Height: 1 << 40, Seq: 2147483647}} {
		got, err := ParseCursor(c.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("round trip %v -> %v", c, got)
		}
	}
	if _, err := ParseCursor("nonsense"); err == nil {
		t.Fatal("want error for bad cursor")
	}
}
