package fed

import (
	"context"
	"fmt"
	"testing"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// benchCluster shares caught-up clusters across benchmark iterations.
func benchCluster(b *testing.B, c *chain.Chain, part Partition) *Cluster {
	b.Helper()
	cl := FollowChain(c, part, Options{})
	b.Cleanup(func() { cl.Close() })
	if err := cl.WaitHeight(context.Background(), c.Height()); err != nil {
		b.Fatal(err)
	}
	return cl
}

func benchQuery(b *testing.B, cl *Cluster, q Query) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Query(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFedCountFull(b *testing.B) {
	c := testChain(b)
	for _, n := range []int{1, 2, 4, 8} {
		cl := benchCluster(b, c, ByRegion(n))
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchQuery(b, cl, Query{Kind: KindCount, Range: etl.All(), Filter: etl.Filter{Types: []chain.TxnType{chain.TxnPoCReceipt}}})
		})
	}
}

func BenchmarkFedTxnsPage(b *testing.B) {
	c := testChain(b)
	for _, n := range []int{1, 2, 4, 8} {
		cl := benchCluster(b, c, ByHeight(n, c.Height()))
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchQuery(b, cl, Query{Kind: KindTxns, Range: etl.All(), Limit: 100})
		})
	}
}

func BenchmarkFedTopActors(b *testing.B) {
	c := testChain(b)
	for _, n := range []int{1, 2, 4, 8} {
		cl := benchCluster(b, c, ByRegion(n))
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchQuery(b, cl, Query{Kind: KindTopActors, Range: etl.All(), K: 10})
		})
	}
}
