package fed

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"peoplesnet/internal/etl"
)

// Router plans federated queries against a partition, fans them out
// to shards in parallel, and merges the partials with the kind's
// strategy.
type Router struct {
	part   Partition
	shards []Shard // indexed by ShardID
	opts   Options
	// sourceTip reports the producer's tip for lag accounting; nil
	// falls back to the highest tip any answering shard reported.
	sourceTip func() int64
	// cache replays complete merged answers keyed by (query
	// fingerprint, source tip); nil when disabled or when no sourceTip
	// is available to key entries against.
	cache *resultCache
}

// NewRouter builds a router over shards (indexed by ShardID, one per
// partition slice).
func NewRouter(part Partition, shards []Shard, opts Options, sourceTip func() int64) *Router {
	if len(shards) != part.NumShards() {
		panic(fmt.Sprintf("fed: %d shards for a %d-shard partition", len(shards), part.NumShards()))
	}
	rt := &Router{part: part, shards: shards, opts: opts, sourceTip: sourceTip}
	// The cache keys entries by source tip, so it needs a cheap tip
	// probe; without one (sourceTip nil) it stays off.
	if size := opts.cacheSize(); size > 0 && sourceTip != nil {
		rt.cache = newResultCache(size, opts.CacheTTL)
	}
	return rt
}

// CacheStats reports the result cache's hit/miss counters; the zero
// value (Enabled false) when the cache is disabled.
func (rt *Router) CacheStats() CacheStats {
	if rt.cache == nil {
		return CacheStats{}
	}
	return rt.cache.stats()
}

// Plan selects the shards whose partition slice can contain answers:
// the routing-precision step. A shard is planned iff its slice
// intersects the query's height range and, for region-restricted
// queries, can own the region.
func (rt *Router) Plan(q Query) []ShardID {
	from, to := q.Range.From, q.Range.To
	if to < 0 {
		to = math.MaxInt64
	}
	var planned []ShardID
	for id := range rt.shards {
		sh := ShardID(id)
		if !rt.part.CoversHeights(sh, from, to) {
			continue
		}
		if q.HasRegion && !rt.part.CoversRegion(sh, q.Region) {
			continue
		}
		planned = append(planned, sh)
	}
	return planned
}

// Query runs one federated query: plan, parallel fan-out with
// per-shard timeouts, quorum check, then strategy merge. Shards that
// fail or time out degrade to Result.Missing + Result.Gaps as long as
// the quorum holds; answering shards beyond the lag budget are
// flagged in Result.Stale, never awaited.
func (rt *Router) Query(ctx context.Context, q Query) (*Result, error) {
	start := time.Now()
	var key string
	if rt.cache != nil {
		key = cacheKey(q)
		if hit := rt.cache.get(key, rt.sourceTip()); hit != nil {
			// Shallow copy so the caller's view carries its own Cached
			// flag and Elapsed without touching the stored entry.
			cp := *hit
			cp.Cached = true
			cp.Elapsed = time.Since(start)
			return &cp, nil
		}
	}
	planned := rt.Plan(q)
	res := &Result{Planned: planned}

	type reply struct {
		id  ShardID
		p   *Partial
		err error
	}
	replies := make(chan reply, len(planned))
	for _, id := range planned {
		go func(id ShardID) {
			qctx := ctx
			if rt.opts.PerShardTimeout > 0 {
				var cancel context.CancelFunc
				qctx, cancel = context.WithTimeout(ctx, rt.opts.PerShardTimeout)
				defer cancel()
			}
			p, err := rt.shards[id].Query(qctx, q)
			replies <- reply{id: id, p: p, err: err}
		}(id)
	}

	var parts []*Partial
	for range planned {
		r := <-replies
		if r.err != nil {
			res.Missing = append(res.Missing, r.id)
			continue
		}
		parts = append(parts, r.p)
	}
	// Deterministic merge order regardless of arrival order.
	sort.Slice(parts, func(i, j int) bool { return parts[i].Shard < parts[j].Shard })
	sort.Slice(res.Missing, func(i, j int) bool { return res.Missing[i] < res.Missing[j] })

	srcTip := int64(-1)
	if rt.sourceTip != nil {
		srcTip = rt.sourceTip()
	} else {
		for _, p := range parts {
			if p.Tip > srcTip {
				srcTip = p.Tip
			}
		}
	}

	if quo := rt.opts.quorum(); len(planned) > 0 && float64(len(parts)) < quo*float64(len(planned)) {
		if st := rt.serveStale(key, res.Missing, srcTip, start); st != nil {
			return st, nil
		}
		return nil, fmt.Errorf("fed: %d/%d shards answered, below quorum %.2f", len(parts), len(planned), quo)
	}
	if len(res.Missing) > 0 {
		// Shards are down (crashed, breaker open, timed out) but quorum
		// holds. A complete answer from an older tip, if one is still
		// within its TTL, beats degrading to gaps.
		if st := rt.serveStale(key, res.Missing, srcTip, start); st != nil {
			return st, nil
		}
	}
	res.Gaps = rt.gapsFor(q, res.Missing)
	for _, p := range parts {
		if behind := srcTip - p.Tip; behind > rt.opts.LagBudget {
			res.Stale = append(res.Stale, ShardLag{Shard: p.Shard, Tip: p.Tip, Behind: behind})
		}
	}

	st := StrategyFor(q.Kind)
	res.Strategy = st.Name()
	st.Merge(q, parts, res)
	for _, p := range parts {
		if contributed(q.Kind, p) {
			res.Contributing++
		}
	}
	res.Elapsed = time.Since(start)
	if rt.cache != nil && len(res.Missing) == 0 && len(res.Stale) == 0 {
		// Only complete answers are cacheable: a result with gaps or
		// stale shards should be recomputed next time, not replayed.
		// Keyed at the tip observed during this query — if the source
		// advanced mid-flight the entry lands under the fresh tip and
		// the next lookup still matches.
		cp := *res
		rt.cache.put(key, srcTip, &cp)
	}
	return res, nil
}

// serveStale tries the outage fallback: a complete cached answer for
// the same query computed at an older tip, still within the cache
// TTL. The copy is flagged Cached + ServedStale, and the down shards
// are reported in Stale at the entry's tip — the caller sees exactly
// how old its answer is and who was unavailable.
func (rt *Router) serveStale(key string, down []ShardID, srcTip int64, start time.Time) *Result {
	if rt.cache == nil {
		return nil
	}
	hit, asOf, ok := rt.cache.stale(key)
	if !ok {
		return nil
	}
	cp := *hit
	cp.Cached = true
	cp.ServedStale = true
	cp.Stale = make([]ShardLag, 0, len(down))
	for _, id := range down {
		cp.Stale = append(cp.Stale, ShardLag{Shard: id, Tip: asOf, Behind: srcTip - asOf})
	}
	cp.Elapsed = time.Since(start)
	return &cp
}

// gapsFor converts missing shards into the height intervals of the
// query they leave unanswered: the shard's height span intersected
// with the query range, merged where adjacent. For region-sliced
// shards the span is the whole query range — a missing region shard
// can hide answers at any height.
func (rt *Router) gapsFor(q Query, missing []ShardID) []etl.Gap {
	if len(missing) == 0 {
		return nil
	}
	qFrom, qTo := q.Range.From, q.Range.To
	if qTo < 0 {
		qTo = math.MaxInt64
	}
	var gaps []etl.Gap
	for _, id := range missing {
		from, to := rt.part.HeightSpan(id)
		if from < qFrom {
			from = qFrom
		}
		if to > qTo {
			to = qTo
		}
		if from > to {
			continue
		}
		g := etl.Gap{From: from, To: to}
		if to == math.MaxInt64 {
			g.To = -1 // open-ended, matching etl's gap convention
		}
		gaps = append(gaps, g)
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i].From < gaps[j].From })
	// Coalesce adjacent/overlapping spans (height partitions produce
	// back-to-back ranges when neighboring shards both miss).
	merged := gaps[:0]
	for _, g := range gaps {
		if n := len(merged); n > 0 {
			prev := &merged[n-1]
			if prev.To == -1 {
				continue
			}
			if g.From <= prev.To+1 {
				if g.To == -1 || g.To > prev.To {
					prev.To = g.To
				}
				continue
			}
		}
		merged = append(merged, g)
	}
	return merged
}

// contributed reports whether a shard's partial holds any answers —
// the numerator of routing precision.
func contributed(k Kind, p *Partial) bool {
	switch k {
	case KindCount:
		return p.Count > 0
	case KindMix:
		return len(p.Mix) > 0
	case KindTopActors:
		return len(p.Actors) > 0
	case KindTxns:
		return len(p.Txns) > 0
	}
	return false
}
