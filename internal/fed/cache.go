package fed

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"

	"peoplesnet/internal/chain"
)

// defaultCacheSize is the entry cap when Options.CacheSize is zero.
const defaultCacheSize = 256

// resultCache is a small LRU of merged federated answers, keyed by
// (query fingerprint, source tip). The tip is not part of the map key:
// the cache holds entries for exactly one tip at a time and flushes
// wholesale the moment it observes a newer one, so a tip advance
// invalidates everything at once and stale answers can never be
// served. Only complete results — no missing shards, no stale shards —
// are admitted; a degraded answer should be recomputed, not replayed.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	tip     int64
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(size int) *resultCache {
	return &resultCache{
		cap:     size,
		tip:     -1,
		order:   list.New(),
		entries: make(map[string]*list.Element, size),
	}
}

// get returns the cached result for key at tip, or nil. A tip newer
// than the cache's flushes it first, so the lookup always misses
// across a tip advance.
func (c *resultCache) get(key string, tip int64) *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncTipLocked(tip)
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res
}

// put stores res for key at tip, evicting the least recently used
// entry at capacity.
func (c *resultCache) put(key string, tip int64, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncTipLocked(tip)
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// syncTipLocked flushes every entry when the observed tip moves. A
// lower tip than the cache's is treated the same way — the source
// regressed (rebuild, test harness), and cached answers for the old
// tip are equally void.
func (c *resultCache) syncTipLocked(tip int64) {
	if tip == c.tip {
		return
	}
	c.tip = tip
	c.order.Init()
	c.entries = make(map[string]*list.Element, c.cap)
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Enabled: true,
		Hits:    c.hits,
		Misses:  c.misses,
		Entries: c.order.Len(),
		Cap:     c.cap,
		Tip:     c.tip,
	}
}

// CacheStats is an operational snapshot of the router's result cache,
// surfaced on the explorer's /etl endpoint.
type CacheStats struct {
	Enabled bool  `json:"enabled"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
	Cap     int   `json:"cap"`
	// Tip is the source tip the live entries were computed at; -1
	// before the first lookup.
	Tip int64 `json:"tip"`
}

// cacheKey fingerprints a query deterministically: two queries with
// the same answer set produce the same key regardless of field
// ordering inside the filter, and defaulted knobs (K, Limit) are
// resolved so explicit and implicit defaults share an entry.
func cacheKey(q Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k%d|r%d:%d", q.Kind, q.Range.From, q.Range.To)
	if len(q.Filter.Types) > 0 {
		types := make([]chain.TxnType, len(q.Filter.Types))
		copy(types, q.Filter.Types)
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		b.WriteString("|t")
		for _, tt := range types {
			fmt.Fprintf(&b, ",%d", tt)
		}
	}
	if len(q.Filter.Actors) > 0 {
		actors := make([]string, len(q.Filter.Actors))
		copy(actors, q.Filter.Actors)
		sort.Strings(actors)
		b.WriteString("|a")
		for _, a := range actors {
			fmt.Fprintf(&b, ",%q", a)
		}
	}
	if q.HasRegion {
		fmt.Fprintf(&b, "|g%d", q.Region)
	}
	switch q.Kind {
	case KindTopActors:
		fmt.Fprintf(&b, "|k%d", q.topK())
	case KindTxns:
		fmt.Fprintf(&b, "|c%s|l%d", q.Cursor, q.pageLimit())
	}
	return b.String()
}
