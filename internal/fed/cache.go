package fed

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"peoplesnet/internal/chain"
)

// defaultCacheSize is the entry cap when Options.CacheSize is zero.
const defaultCacheSize = 256

// resultCache is a small LRU of merged federated answers keyed by a
// query fingerprint, each entry stamped with the source tip it was
// computed at and its store time.
//
// A fresh hit requires the entry's tip to equal the current source
// tip (and the entry to be within TTL when one is set), so stale
// answers are never served as fresh. With TTL zero the cache keeps
// the original semantics exactly: it holds entries for one tip at a
// time and flushes wholesale the moment it observes a newer one. With
// a positive TTL, entries from older tips survive (until evicted or
// expired) to back the router's serve-stale-on-outage path: when
// planned shards are down, a complete answer from an older tip beats
// a gap, as long as it is within TTL and flagged ServedStale.
//
// Only complete results — no missing shards, no stale shards — are
// admitted; a degraded answer should be recomputed, not replayed.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ttl       time.Duration
	tip       int64
	order     *list.List // front = most recently used; values are *cacheEntry
	entries   map[string]*list.Element
	hits      int64
	misses    int64
	staleHits int64
}

type cacheEntry struct {
	key string
	tip int64 // source tip the result was computed at
	at  time.Time
	res *Result
}

func newResultCache(size int, ttl time.Duration) *resultCache {
	return &resultCache{
		cap:     size,
		ttl:     ttl,
		tip:     -1,
		order:   list.New(),
		entries: make(map[string]*list.Element, size),
	}
}

// get returns the cached result for key computed at exactly tip (the
// fresh path), or nil.
func (c *resultCache) get(key string, tip int64) *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeTipLocked(tip)
	if el, ok := c.entries[key]; ok {
		ce := el.Value.(*cacheEntry)
		switch {
		case c.expiredLocked(ce):
			c.removeLocked(el)
		case ce.tip == tip:
			c.hits++
			c.order.MoveToFront(el)
			return ce.res
		}
	}
	c.misses++
	return nil
}

// stale returns a complete cached result for key regardless of the
// tip it was computed at, provided it is within TTL — the
// serve-stale-on-outage path. Callers must flag the result
// ServedStale. Returns the entry's tip so staleness can be reported.
func (c *resultCache) stale(key string) (*Result, int64, bool) {
	if c.ttl <= 0 {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, 0, false
	}
	ce := el.Value.(*cacheEntry)
	if c.expiredLocked(ce) {
		c.removeLocked(el)
		return nil, 0, false
	}
	c.staleHits++
	c.order.MoveToFront(el)
	return ce.res, ce.tip, true
}

// put stores res for key at tip, evicting the least recently used
// entry at capacity.
func (c *resultCache) put(key string, tip int64, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeTipLocked(tip)
	if el, ok := c.entries[key]; ok {
		ce := el.Value.(*cacheEntry)
		ce.res, ce.tip, ce.at = res, tip, time.Now()
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, tip: tip, at: time.Now(), res: res})
	if c.order.Len() > c.cap {
		c.removeLocked(c.order.Back())
	}
}

// observeTipLocked tracks the latest source tip. Without a TTL it
// also flushes every entry when the tip moves — the original
// single-tip semantics, where a tip advance (or regression: rebuild,
// test harness) voids everything at once. With a TTL, entries carry
// their own tip and age out individually, so older-tip entries stay
// for the serve-stale path.
func (c *resultCache) observeTipLocked(tip int64) {
	if tip == c.tip {
		return
	}
	c.tip = tip
	if c.ttl <= 0 {
		c.order.Init()
		c.entries = make(map[string]*list.Element, c.cap)
	}
}

func (c *resultCache) expiredLocked(ce *cacheEntry) bool {
	return c.ttl > 0 && time.Since(ce.at) > c.ttl
}

func (c *resultCache) removeLocked(el *list.Element) {
	c.order.Remove(el)
	delete(c.entries, el.Value.(*cacheEntry).key)
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Enabled:   true,
		Hits:      c.hits,
		Misses:    c.misses,
		StaleHits: c.staleHits,
		Entries:   c.order.Len(),
		Cap:       c.cap,
		TTL:       c.ttl,
		Tip:       c.tip,
	}
}

// CacheStats is an operational snapshot of the router's result cache,
// surfaced on the explorer's /etl endpoint.
type CacheStats struct {
	Enabled bool  `json:"enabled"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	// StaleHits counts answers served from an older tip during a shard
	// outage (Result.ServedStale).
	StaleHits int64 `json:"stale_hits,omitempty"`
	Entries   int   `json:"entries"`
	Cap       int   `json:"cap"`
	// TTL is the per-entry lifetime; 0 means entries live until the
	// source tip advances.
	TTL time.Duration `json:"ttl_ns,omitempty"`
	// Tip is the latest source tip the cache has observed; -1 before
	// the first lookup.
	Tip int64 `json:"tip"`
}

// cacheKey fingerprints a query deterministically: two queries with
// the same answer set produce the same key regardless of field
// ordering inside the filter, and defaulted knobs (K, Limit) are
// resolved so explicit and implicit defaults share an entry.
func cacheKey(q Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k%d|r%d:%d", q.Kind, q.Range.From, q.Range.To)
	if len(q.Filter.Types) > 0 {
		types := make([]chain.TxnType, len(q.Filter.Types))
		copy(types, q.Filter.Types)
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		b.WriteString("|t")
		for _, tt := range types {
			fmt.Fprintf(&b, ",%d", tt)
		}
	}
	if len(q.Filter.Actors) > 0 {
		actors := make([]string, len(q.Filter.Actors))
		copy(actors, q.Filter.Actors)
		sort.Strings(actors)
		b.WriteString("|a")
		for _, a := range actors {
			fmt.Fprintf(&b, ",%q", a)
		}
	}
	if q.HasRegion {
		fmt.Fprintf(&b, "|g%d", q.Region)
	}
	switch q.Kind {
	case KindTopActors:
		fmt.Fprintf(&b, "|k%d", q.topK())
	case KindTxns:
		fmt.Fprintf(&b, "|c%s|l%d", q.Cursor, q.pageLimit())
	}
	return b.String()
}
