// Package fed is the federated query tier: N shard nodes — each an
// etl.Store follower tailing the same producer, owning one slice of a
// partition — behind a router that plans each query against the
// partition (hitting only shards whose slice can contain answers),
// fans it out in parallel with per-shard timeouts, and merges partial
// results through pluggable aggregation strategies.
//
// The design invariant that makes everything else simple: every node
// appends EVERY upstream height to its store, keeping the original
// block header (height, timestamp, hashes) and only the transactions
// its partition slice owns — possibly none. Lag is therefore uniform
// (source tip minus store tip, in blocks) across shards, the merged
// tail reassembles the exact upstream block sequence without gaps,
// and a query fanned to all shards is always correct because
// non-owning shards contribute empty partials.
//
// Stragglers never block a result: shards that miss their per-shard
// timeout are reported as height gaps (quorum permitting), and shards
// trailing the source beyond the lag budget are surfaced as stale in
// the result rather than awaited.
package fed

import (
	"fmt"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// ShardID indexes a shard within its cluster, 0-based and dense.
type ShardID int

// Kind selects what a Query computes; each kind has a registered
// aggregation strategy that merges per-shard partials.
type Kind uint8

const (
	// KindCount counts matching transactions.
	KindCount Kind = iota
	// KindMix counts matching transactions by type.
	KindMix
	// KindTopActors ranks the actors mentioned by matching
	// transactions; Query.K bounds the result.
	KindTopActors
	// KindTxns lists matching transactions in chain order with cursor
	// pagination; Query.Limit bounds the page.
	KindTxns
)

func (k Kind) String() string {
	switch k {
	case KindCount:
		return "count"
	case KindMix:
		return "mix"
	case KindTopActors:
		return "top-actors"
	case KindTxns:
		return "txns"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Cursor is an inclusive resume position for KindTxns pages: the
// first record with (Height, Seq) >= (Cursor.Height, Cursor.Seq) is
// the first one delivered. The zero value starts from the beginning.
// Seq is the transaction's index within its original upstream block,
// so cursors are stable across any shard layout.
type Cursor struct {
	Height int64
	Seq    int32
}

func (c Cursor) String() string { return fmt.Sprintf("%d-%d", c.Height, c.Seq) }

// ParseCursor parses the "height-seq" form produced by
// Cursor.String.
func ParseCursor(s string) (Cursor, error) {
	var c Cursor
	if _, err := fmt.Sscanf(s, "%d-%d", &c.Height, &c.Seq); err != nil {
		return Cursor{}, fmt.Errorf("fed: bad cursor %q: %w", s, err)
	}
	return c, nil
}

// before reports whether c orders strictly before o.
func (c Cursor) before(o Cursor) bool {
	if c.Height != o.Height {
		return c.Height < o.Height
	}
	return c.Seq < o.Seq
}

// Query is one federated request.
type Query struct {
	Kind   Kind
	Range  etl.Range
	Filter etl.Filter
	// HasRegion restricts the query to transactions whose RegionOf is
	// Region — the geographic axis region partitions route on.
	HasRegion bool
	Region    int
	// K bounds KindTopActors results (<= 0 means 10).
	K int
	// Cursor and Limit page KindTxns results (Limit <= 0 means 100).
	Cursor Cursor
	Limit  int
}

const (
	defaultTopK      = 10
	defaultPageLimit = 100
)

func (q Query) topK() int {
	if q.K <= 0 {
		return defaultTopK
	}
	return q.K
}

func (q Query) pageLimit() int {
	if q.Limit <= 0 {
		return defaultPageLimit
	}
	return q.Limit
}

// matchesRegion applies the query's region restriction to one txn.
func (q Query) matchesRegion(t chain.Txn) bool {
	return !q.HasRegion || RegionOf(t) == q.Region
}

// TxnRec is one listed transaction: its chain position plus enough
// identity (content hash) for byte-for-byte comparison against any
// other source of the same listing.
type TxnRec struct {
	Height int64     `json:"height"`
	Seq    int32     `json:"seq"`
	Type   string    `json:"type"`
	Hash   string    `json:"hash"`
	Txn    chain.Txn `json:"txn"`
}

func (r TxnRec) cursor() Cursor { return Cursor{Height: r.Height, Seq: r.Seq} }

// ActorCount is one entry of an actor ranking.
type ActorCount struct {
	Actor string `json:"actor"`
	Count int64  `json:"count"`
}

// Partial is one shard's contribution to a query, merged by the
// kind's Strategy. Only the fields for the query's kind are set.
type Partial struct {
	Shard ShardID
	// Tip is the shard store's tip height when it answered, for
	// staleness accounting.
	Tip   int64
	Count int64
	Mix   map[chain.TxnType]int64
	// Actors is the shard's complete mention ranking (not truncated
	// to K): global top-k over per-shard top-k lists is lossy, and
	// each transaction lives on exactly one shard, so merging the
	// full lists keeps the federated ranking exact.
	Actors []ActorCount
	Txns   []TxnRec
	// More reports the shard had further matching transactions beyond
	// its page limit.
	More bool
}

// ShardInfo describes one shard for operational surfaces (/etl).
type ShardInfo struct {
	ID     ShardID    `json:"id"`
	Slice  string     `json:"slice"`
	Tip    int64      `json:"tip"`
	Blocks int64      `json:"blocks"`
	Txns   int64      `json:"txns"`
	Lag    int64      `json:"lag_blocks"`
	Err    string     `json:"error,omitempty"`
	Health etl.Health `json:"health"`
}

// ShardLag marks a shard that answered from a store trailing the
// source beyond the lag budget.
type ShardLag struct {
	Shard  ShardID `json:"shard"`
	Tip    int64   `json:"tip"`
	Behind int64   `json:"behind"`
}

// Result is a merged federated answer plus the routing and staleness
// facts a caller needs to judge it.
type Result struct {
	Count     int64
	Mix       map[chain.TxnType]int64
	TopActors []ActorCount
	Txns      []TxnRec
	// Next resumes the listing after this page; valid when HasMore.
	Next    Cursor
	HasMore bool

	// Strategy names the aggregation that merged the partials.
	Strategy string
	// Planned lists the shards the router selected; Contributing is
	// how many of them returned non-empty partials.
	Planned      []ShardID
	Contributing int
	// Stale lists answering shards beyond the lag budget; Missing
	// lists planned shards that failed or timed out, whose unanswered
	// height spans appear in Gaps.
	Stale   []ShardLag
	Missing []ShardID
	Gaps    []etl.Gap
	Elapsed time.Duration
	// Cached reports the answer was replayed from the router's result
	// cache rather than fanned out to shards.
	Cached bool
	// ServedStale reports the serve-stale-on-outage path: planned
	// shards were down (crashed, breaker open, timed out), but a
	// complete cached answer within the cache TTL existed, so it was
	// returned — Cached set, the unavailable shards listed in Stale at
	// the cached tip — instead of degrading to Gaps.
	ServedStale bool
}

// Precision is the routing precision of this query: the fraction of
// planned shards that actually held answers (Snippet-3 sense — shards
// hit vs. shards needed). A query with no matches anywhere scores 1:
// the router cannot be blamed for an empty answer.
func (r *Result) Precision() float64 {
	if len(r.Planned) == 0 || r.Contributing == 0 {
		return 1
	}
	return float64(r.Contributing) / float64(len(r.Planned))
}

// Options tunes a router.
type Options struct {
	// PerShardTimeout bounds each shard's query (0 means no per-shard
	// bound beyond the caller's context).
	PerShardTimeout time.Duration
	// Quorum is the minimum fraction of planned shards that must
	// answer for a result to be returned at all (0 means 1.0 — every
	// planned shard). Below quorum the query fails; at or above it,
	// missing shards degrade to reported Gaps.
	Quorum float64
	// LagBudget is how many blocks a shard's store may trail the
	// source before its answers are flagged in Result.Stale.
	LagBudget int64
	// CacheSize caps the router's result cache (entries). 0 means the
	// default (256); negative disables caching. The cache only engages
	// when the router has a source-tip probe to key entries against.
	CacheSize int
	// CacheTTL bounds a cache entry's age. Zero keeps the PR-7
	// semantics: entries live until the source tip advances and are
	// never served across tips. A positive TTL additionally enables
	// serve-stale-on-outage: when planned shards are unavailable, a
	// complete cached answer computed at an older tip is returned —
	// flagged Cached + ServedStale with the down shards in Stale —
	// instead of degrading to Gaps, for as long as the entry is within
	// its TTL.
	CacheTTL time.Duration

	// ShardStore, when set, makes shard nodes durable: it returns the
	// directory and etl config for a shard's store, and the node runs
	// on etl.Open(dir, cfg) instead of an in-memory store. It is called
	// at node start and again at every supervised restart, so a chaos
	// harness can heal or swap the filesystem between incarnations. A
	// restarted node resumes from its sealed segments and WAL tail and
	// re-tails only the blocks it missed.
	ShardStore func(id ShardID) (dir string, cfg etl.Config)
	// WrapSource, when set, wraps each node's block source — the
	// fed-layer fault-injection hook (stalls, disconnects) and the
	// place to hang metrics. Called once per node incarnation.
	WrapSource func(id ShardID, src Source) Source
}

func (o Options) quorum() float64 {
	if o.Quorum <= 0 {
		return 1
	}
	return o.Quorum
}

func (o Options) cacheSize() int {
	if o.CacheSize < 0 {
		return 0
	}
	if o.CacheSize == 0 {
		return defaultCacheSize
	}
	return o.CacheSize
}
