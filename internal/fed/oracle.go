package fed

import (
	"math"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// Reference computes the federation-independent answer to q straight
// from the raw chain: no stores, no indexes, no shards — a direct
// walk of the producer's blocks. It is the oracle the correctness
// gates (router property tests, cmd/fedload -verify) compare
// federated results against, deliberately sharing no query-path code
// with the tier it checks beyond the actor and region vocabularies.
func Reference(blocks []*chain.Block, q Query) *Result {
	res := &Result{Strategy: "reference"}
	switch q.Kind {
	case KindMix:
		res.Mix = make(map[chain.TxnType]int64)
	case KindTopActors:
		// counted below
	case KindCount, KindTxns:
		// counted below
	}
	counts := make(map[string]int64)
	var seen []string
	limit := q.pageLimit()

	refScan(blocks, q, func(h int64, seq int32, t chain.Txn) bool {
		switch q.Kind {
		case KindCount:
			res.Count++
		case KindMix:
			res.Mix[t.TxnType()]++
		case KindTopActors:
			seen = seen[:0]
			etl.ActorsOf(t, func(a string) {
				if a == "" {
					return
				}
				for _, prev := range seen {
					if prev == a {
						return
					}
				}
				seen = append(seen, a)
				counts[a]++
			})
		case KindTxns:
			rec := TxnRec{Height: h, Seq: seq, Type: t.TxnType().String(), Hash: chain.Hash(t), Txn: t}
			if rec.cursor().before(q.Cursor) {
				return true
			}
			if len(res.Txns) == limit {
				res.HasMore = true
				last := res.Txns[len(res.Txns)-1].cursor()
				res.Next = Cursor{Height: last.Height, Seq: last.Seq + 1}
				return false
			}
			res.Txns = append(res.Txns, rec)
		}
		return true
	})
	if q.Kind == KindTopActors {
		ranked := rankActors(counts)
		if k := q.topK(); len(ranked) > k {
			ranked = ranked[:k]
		}
		res.TopActors = ranked
	}
	return res
}

// refScan visits matching transactions in chain order with their
// intra-block index, applying the range, filter, and region
// restriction by direct inspection.
func refScan(blocks []*chain.Block, q Query, fn func(h int64, seq int32, t chain.Txn) bool) {
	to := q.Range.To
	if to < 0 {
		to = math.MaxInt64
	}
	for _, b := range blocks {
		if b.Height < q.Range.From {
			continue
		}
		if b.Height > to {
			return
		}
		for i, t := range b.Txns {
			if len(q.Filter.Types) > 0 && !typeIn(t.TxnType(), q.Filter.Types) {
				continue
			}
			if len(q.Filter.Actors) > 0 && !mentionsAnyActor(t, q.Filter.Actors) {
				continue
			}
			if !q.matchesRegion(t) {
				continue
			}
			if !fn(b.Height, int32(i), t) {
				return
			}
		}
	}
}

func typeIn(tt chain.TxnType, types []chain.TxnType) bool {
	for _, want := range types {
		if tt == want {
			return true
		}
	}
	return false
}

func mentionsAnyActor(t chain.Txn, actors []string) bool {
	for _, a := range actors {
		if etl.Mentions(t, a) {
			return true
		}
	}
	return false
}
