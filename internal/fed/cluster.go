package fed

import (
	"context"
	"errors"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// Cluster bundles a partition's worth of in-process shard nodes with
// the router fronting them — the single-binary deployment of the
// federated tier, and the topology cmd/explorer and cmd/fedload run.
type Cluster struct {
	part      Partition
	nodes     []*Node
	router    *Router
	sourceTip func() int64
}

// FollowChain builds a cluster whose nodes tail a live producer
// chain, one node per partition slice. Nodes ingest concurrently;
// use WaitHeight to synchronize with a known tip.
func FollowChain(c *chain.Chain, part Partition, opts Options) *Cluster {
	return build(part, opts, c.Height, func() Source { return NewChainSource(c) })
}

// FollowStore builds a cluster whose nodes tail an upstream etl.Store
// through its lossless Tail.
func FollowStore(up *etl.Store, part Partition, opts Options) *Cluster {
	return build(part, opts, up.Height, func() Source { return NewStoreSource(up) })
}

func build(part Partition, opts Options, tip func() int64, newSource func() Source) *Cluster {
	n := part.NumShards()
	cl := &Cluster{part: part, sourceTip: tip}
	shards := make([]Shard, n)
	for i := 0; i < n; i++ {
		node := newNode(ShardID(i), part, newSource())
		cl.nodes = append(cl.nodes, node)
		shards[i] = &localShard{n: node}
	}
	cl.router = NewRouter(part, shards, opts, tip)
	return cl
}

// Query routes one federated query through the cluster.
func (cl *Cluster) Query(ctx context.Context, q Query) (*Result, error) {
	return cl.router.Query(ctx, q)
}

// Plan exposes the router's shard selection (for precision studies).
func (cl *Cluster) Plan(q Query) []ShardID { return cl.router.Plan(q) }

// Partition returns the cluster's partition.
func (cl *Cluster) Partition() Partition { return cl.part }

// Router returns the cluster's router.
func (cl *Cluster) Router() *Router { return cl.router }

// Shards snapshots every shard's operational state with lag relative
// to the source tip — the /etl health surface.
func (cl *Cluster) Shards() []ShardInfo {
	tip := cl.sourceTip()
	out := make([]ShardInfo, len(cl.nodes))
	for i, n := range cl.nodes {
		info := n.Info()
		if lag := tip - info.Tip; lag > 0 {
			info.Lag = lag
		}
		out[i] = info
	}
	return out
}

// WaitHeight blocks until every node's store has ingested through
// height, a node fails, or the context expires. Nodes append every
// upstream height, so store tips are exact progress markers.
func (cl *Cluster) WaitHeight(ctx context.Context, height int64) error {
	for {
		caughtUp := true
		for _, n := range cl.nodes {
			if err := n.Err(); err != nil {
				return err
			}
			if n.store.Height() < height {
				caughtUp = false
			}
		}
		if caughtUp {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// Close stops every node and returns any ingest error.
func (cl *Cluster) Close() error {
	var errs []error
	for _, n := range cl.nodes {
		if err := n.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
