package fed

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/etl"
)

// nodeSlot is one shard's stable identity across node incarnations:
// the router and merged tail address the slot, the supervisor swaps
// the Node behind it when a crashed follower is restarted. A slot
// with a nil node is a shard that is down (its last start failed).
type nodeSlot struct {
	id ShardID

	mu  sync.RWMutex
	n   *Node // guarded by mu
	err error // guarded by mu — last start failure while n is nil
}

func (sl *nodeSlot) current() *Node {
	sl.mu.RLock()
	defer sl.mu.RUnlock()
	return sl.n
}

func (sl *nodeSlot) set(n *Node) {
	sl.mu.Lock()
	sl.n = n
	sl.err = nil
	sl.mu.Unlock()
}

func (sl *nodeSlot) fail(err error) {
	sl.mu.Lock()
	sl.n = nil
	sl.err = err
	sl.mu.Unlock()
}

// downErr describes why the slot is unqueryable when no node is up.
func (sl *nodeSlot) downErr() error {
	sl.mu.RLock()
	defer sl.mu.RUnlock()
	if sl.err != nil {
		return fmt.Errorf("fed: shard %d down: %w", sl.id, sl.err)
	}
	return fmt.Errorf("fed: shard %d down", sl.id)
}

// Cluster bundles a partition's worth of in-process shard nodes with
// the router fronting them — the single-binary deployment of the
// federated tier, and the topology cmd/explorer and cmd/fedload run.
// With Options.ShardStore set the nodes are durable, and a Supervisor
// (see Supervise) can restart crashed or wedged ones in place.
type Cluster struct {
	part      Partition
	opts      Options
	slots     []*nodeSlot
	router    *Router
	sourceTip func() int64
	newSource func() Source

	mu  sync.Mutex
	sup *Supervisor // guarded by mu
}

// FollowChain builds a cluster whose nodes tail a live producer
// chain, one node per partition slice. Nodes ingest concurrently;
// use WaitHeight to synchronize with a known tip.
func FollowChain(c *chain.Chain, part Partition, opts Options) *Cluster {
	return build(part, opts, c.Height, func() Source { return NewChainSource(c) })
}

// FollowStore builds a cluster whose nodes tail an upstream etl.Store
// through its lossless Tail.
func FollowStore(up *etl.Store, part Partition, opts Options) *Cluster {
	return build(part, opts, up.Height, func() Source { return NewStoreSource(up) })
}

func build(part Partition, opts Options, tip func() int64, newSource func() Source) *Cluster {
	n := part.NumShards()
	cl := &Cluster{part: part, opts: opts, sourceTip: tip, newSource: newSource}
	shards := make([]Shard, n)
	for i := 0; i < n; i++ {
		sl := &nodeSlot{id: ShardID(i)}
		if node, err := cl.startNode(sl.id); err != nil {
			// The shard stays down (queries report it Missing); an
			// attached supervisor will keep retrying the start.
			sl.fail(err)
		} else {
			sl.set(node)
		}
		cl.slots = append(cl.slots, sl)
		shards[i] = &localShard{sl: sl}
	}
	cl.router = NewRouter(part, shards, opts, tip)
	return cl
}

// startNode builds one shard incarnation: (re)open its store, wrap a
// fresh source, start the ingest loop. It is the restart path too —
// the supervisor calls it after a crash, and ShardStore/WrapSource
// are consulted again for the new incarnation.
func (cl *Cluster) startNode(id ShardID) (*Node, error) {
	store, durable, err := cl.openStore(id)
	if err != nil {
		return nil, err
	}
	src := cl.newSource()
	if cl.opts.WrapSource != nil {
		src = cl.opts.WrapSource(id, src)
	}
	return newNode(id, cl.part, src, store, durable), nil
}

// openStore opens the shard's store per Options.ShardStore (nil means
// a fresh in-memory node). A durable open forces every lazy segment
// load immediately (Preload) so damage left by the previous
// incarnation is discovered now, not mid-query; a store with gaps
// cannot serve bit-identical answers — and a follower only re-tails
// past its tip, so it could never refill a middle gap — so the
// directory is wiped and the shard re-ingests cold from the source.
func (cl *Cluster) openStore(id ShardID) (*etl.Store, bool, error) {
	if cl.opts.ShardStore == nil {
		return nil, false, nil
	}
	dir, cfg := cl.opts.ShardStore(id)
	s, err := etl.Open(dir, cfg)
	if err != nil {
		return nil, false, err
	}
	s.Preload()
	if len(s.Gaps()) > 0 {
		_ = s.Close()
		if err := wipeStoreDir(cfg, dir); err != nil {
			return nil, false, fmt.Errorf("fed: shard %d: wiping damaged store: %w", id, err)
		}
		if s, err = etl.Open(dir, cfg); err != nil {
			return nil, false, err
		}
	}
	return s, true, nil
}

// wipeStoreDir removes the store files in dir so Open starts empty.
// Quarantined segments live in a subdirectory and are left in place
// for forensics; Remove on it fails and is ignored like any other
// best-effort deletion — Open only believes files it can parse.
func wipeStoreDir(cfg etl.Config, dir string) error {
	fs := cfg.FS
	if fs == nil {
		fs = etl.OSFS{}
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		if etl.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, name := range names {
		_ = fs.Remove(dir + "/" + name)
	}
	return nil
}

// Query routes one federated query through the cluster.
func (cl *Cluster) Query(ctx context.Context, q Query) (*Result, error) {
	return cl.router.Query(ctx, q)
}

// Plan exposes the router's shard selection (for precision studies).
func (cl *Cluster) Plan(q Query) []ShardID { return cl.router.Plan(q) }

// Partition returns the cluster's partition.
func (cl *Cluster) Partition() Partition { return cl.part }

// Router returns the cluster's router.
func (cl *Cluster) Router() *Router { return cl.router }

// Supervise attaches a supervisor that health-probes every shard and
// restarts crashed or wedged nodes. At most one supervisor may be
// attached; Close (of the cluster or the supervisor) detaches it.
func (cl *Cluster) Supervise(opts SupervisorOptions) *Supervisor {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.sup != nil {
		return cl.sup
	}
	cl.sup = newSupervisor(cl, opts)
	return cl.sup
}

// Supervisor returns the attached supervisor, or nil.
func (cl *Cluster) Supervisor() *Supervisor {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.sup
}

// Kill crashes one shard's follower in place — the chaos and MTTR
// hook. The node dies with crash semantics (no store flush; only what
// the WAL fsynced survives), exactly like a process death. With a
// supervisor attached the shard restarts and re-tails; without one it
// stays down and queries report it Missing.
func (cl *Cluster) Kill(id ShardID) error {
	if int(id) < 0 || int(id) >= len(cl.slots) {
		return fmt.Errorf("fed: no shard %d", id)
	}
	n := cl.slots[id].current()
	if n == nil {
		return fmt.Errorf("fed: shard %d already down", id)
	}
	n.crash(ErrKilled)
	return nil
}

// Shards snapshots every shard's operational state with lag relative
// to the source tip — the /etl health surface.
func (cl *Cluster) Shards() []ShardInfo {
	tip := cl.sourceTip()
	out := make([]ShardInfo, len(cl.slots))
	for i, sl := range cl.slots {
		n := sl.current()
		if n == nil {
			out[i] = ShardInfo{ID: sl.id, Slice: cl.part.Describe(sl.id), Err: sl.downErr().Error()}
			continue
		}
		info := n.Info()
		if lag := tip - info.Tip; lag > 0 {
			info.Lag = lag
		}
		out[i] = info
	}
	return out
}

// WaitHeight blocks until every node's store has ingested through
// height, a node fails, or the context expires. Nodes append every
// upstream height, so store tips are exact progress markers. With a
// supervisor attached, a down or crashed shard is treated as "not
// caught up yet" — it will be restarted and resume — rather than a
// terminal error; the context bounds how long recovery may take.
func (cl *Cluster) WaitHeight(ctx context.Context, height int64) error {
	for {
		supervised := cl.Supervisor() != nil
		caughtUp := true
		for _, sl := range cl.slots {
			n := sl.current()
			if n == nil {
				if !supervised {
					return sl.downErr()
				}
				caughtUp = false
				continue
			}
			if err := n.Err(); err != nil {
				if !supervised {
					return err
				}
				caughtUp = false
				continue
			}
			if n.store.Height() < height {
				caughtUp = false
			}
		}
		if caughtUp {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// Close stops the supervisor (if any), then every node, and returns
// any ingest error.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	sup := cl.sup
	cl.sup = nil
	cl.mu.Unlock()
	if sup != nil {
		sup.Close()
	}
	var errs []error
	for _, sl := range cl.slots {
		n := sl.current()
		if n == nil {
			continue
		}
		if err := n.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
