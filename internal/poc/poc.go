// Package poc implements Helium's Proof-of-Coverage protocol (§2.3):
// challenge scheduling, beacon transmission over the radio model,
// witness collection, and the on-chain witness validity rules (§8.2.1)
// — plus the cheating behaviours the paper's §7 case studies uncover
// (silent movers, RSSI forgers, gossip cliques), so that the incentive
// audit has something real to find.
package poc

import (
	"fmt"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/radio"
	"peoplesnet/internal/stats"
)

// CheatProfile configures a hotspot's dishonest behaviours.
type CheatProfile struct {
	// ForgeRSSI inflates reported RSSI by 10–30 dB to look like a
	// "better" witness.
	ForgeRSSI bool
	// AbsurdRSSI occasionally reports a garbage value like the paper's
	// 1,041,313,293 dBm (§7.2) — a buggy driver or naive cheat.
	AbsurdRSSI bool
	// Clique joins a gossip ring: members share challenge secrets out
	// of band and "witness" each other's beacons regardless of radio
	// reception (§7.2). Zero means no clique.
	Clique int
}

// AbsurdRSSIValue is the literal broken witness report from §7.2.
const AbsurdRSSIValue = 1_041_313_293

// Site is one hotspot as the PoC engine sees it. Asserted is the
// on-chain location; Actual is physical truth. They differ for silent
// movers (§7.1).
type Site struct {
	Address  string
	Asserted geo.Point
	Actual   geo.Point
	Cell     h3lite.Cell // asserted res-12 cell
	Online   bool
	Env      radio.Environment
	GainDBi  float64
	Cheat    CheatProfile
}

// SilentMover reports whether the site's physical location has drifted
// more than thresholdKm from its asserted location.
func (s *Site) SilentMover(thresholdKm float64) bool {
	return geo.HaversineKm(s.Asserted, s.Actual) > thresholdKm
}

// Engine runs challenges over a fleet of sites.
type Engine struct {
	// Validity knobs, defaulting to the paper's rules.
	MinWitnessDistM  float64 // HIP15 floor (300 m)
	MaxPlausibleRSSI float64 // hard ceiling before "too high"
	MinPlausibleRSSI float64 // floor before "too low"
	// FreeSpaceMarginDB: a witness whose RSSI beats free-space loss at
	// the asserted distance by more than this margin is implausibly
	// strong ("several heuristics", §8.2.1).
	FreeSpaceMarginDB float64
	// ConsiderRadiusKm bounds the candidate witness search.
	ConsiderRadiusKm float64
	// MaxCandidates, when positive, subsamples the candidate witness
	// set — a performance valve for dense metros in whole-world
	// simulations (reception odds per candidate are unchanged).
	MaxCandidates int
	// TxPowerDBm is the beacon transmit power.
	TxPowerDBm float64
	// FreqMHz for path loss.
	FreqMHz float64
	// Channels in the regional plan (witnesses claiming other channels
	// are invalid).
	Channels int
	// DisableValidity turns all witness filtering off (ablation).
	DisableValidity bool
	// DisableHIP15 turns only the 300 m rule off (ablation).
	DisableHIP15 bool
}

// NewEngine returns an engine with the paper's parameters.
func NewEngine() *Engine {
	return &Engine{
		MinWitnessDistM:   chain.WitnessMinDistanceM,
		MaxPlausibleRSSI:  -40,
		MinPlausibleRSSI:  -139,
		FreeSpaceMarginDB: 10,
		ConsiderRadiusKm:  120, // beyond the paper's 60–110 km Lake Michigan outliers
		TxPowerDBm:        27,
		FreqMHz:           915,
		Channels:          8,
	}
}

// Fleet is an indexed set of sites.
type Fleet struct {
	Sites []*Site
	index *geo.SpatialIndex
}

// NewFleet indexes the sites by their actual (physical) locations,
// because radio reception happens where the hardware really is.
func NewFleet(sites []*Site) *Fleet {
	f := &Fleet{Sites: sites, index: geo.NewSpatialIndex(30)}
	for i, s := range sites {
		f.index.Add(i, s.Actual)
	}
	return f
}

// Near returns sites physically within radiusKm of p.
func (f *Fleet) Near(p geo.Point, radiusKm float64) []*Site {
	ids := f.index.Near(p, radiusKm)
	out := make([]*Site, 0, len(ids))
	for _, id := range ids {
		out = append(out, f.Sites[id])
	}
	return out
}

// Receipt is the engine's output for one challenge, mirroring the
// on-chain poc_receipt.
type Receipt struct {
	Challenger string
	Challengee string
	// ChallengeeAsserted / Actual expose both locations for audits.
	ChallengeeAsserted geo.Point
	ChallengeeActual   geo.Point
	ChallengeeCell     h3lite.Cell
	Witnesses          []chain.WitnessReport
	// WitnessAsserted records each witness's asserted location in
	// order, for geometry-based audits.
	WitnessAsserted []geo.Point
}

// ToTxn converts the receipt to its chain transaction.
func (r *Receipt) ToTxn() *chain.PoCReceipt {
	return &chain.PoCReceipt{
		Challenger:         r.Challenger,
		Challengee:         r.Challengee,
		ChallengeeLocation: r.ChallengeeCell,
		Witnesses:          r.Witnesses,
	}
}

// RunChallenge executes one challenge: challengee beacons from its
// actual location; physically nearby online sites roll reception
// through the radio model; clique members inject fake witnesses; every
// report is then passed through the validity rules against asserted
// locations — exactly the information asymmetry the paper exploits.
func (e *Engine) RunChallenge(f *Fleet, challenger, challengee *Site, rng *stats.RNG) Receipt {
	rcpt := Receipt{
		Challenger:         challenger.Address,
		Challengee:         challengee.Address,
		ChallengeeAsserted: challengee.Asserted,
		ChallengeeActual:   challengee.Actual,
		ChallengeeCell:     challengee.Cell,
	}
	channel := rng.Intn(e.Channels)
	candidates := f.Near(challengee.Actual, e.ConsiderRadiusKm)
	if e.MaxCandidates > 0 && len(candidates) > e.MaxCandidates {
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		candidates = candidates[:e.MaxCandidates]
	}
	for _, w := range candidates {
		if w == challengee || !w.Online {
			continue
		}
		distKm := geo.HaversineKm(challengee.Actual, w.Actual)
		env := worseEnv(challengee.Env, w.Env)
		link := radio.Link{
			TxPowerDBm: e.TxPowerDBm,
			TxGainDBi:  challengee.GainDBi,
			RxGainDBi:  w.GainDBi,
			Model:      radio.NewPathLoss(env, e.FreqMHz),
		}
		rssi := link.RSSI(distKm, rng)
		received := radio.Delivered(rssi, radio.SF9, radio.BW125, rng)
		inClique := challengee.Cheat.Clique != 0 && challengee.Cheat.Clique == w.Cheat.Clique
		if !received && !inClique {
			continue
		}
		report := chain.WitnessReport{
			Witness:  w.Address,
			RSSIdBm:  rssi,
			SNRdB:    rng.Normal(5, 4),
			Channel:  channel,
			Location: h3lite.FromLatLon(w.Asserted, 12),
		}
		if !received && inClique {
			// Gossiped secret: fabricate a plausible reception.
			report.RSSIdBm = rng.Normal(-105, 8)
		}
		if w.Cheat.ForgeRSSI {
			report.RSSIdBm += 10 + rng.Float64()*20
		}
		if w.Cheat.AbsurdRSSI && rng.Bool(0.08) {
			report.RSSIdBm = AbsurdRSSIValue
		}
		report.Valid, report.Reason = e.JudgeWitness(challengee, w.Asserted, report)
		rcpt.Witnesses = append(rcpt.Witnesses, report)
		rcpt.WitnessAsserted = append(rcpt.WitnessAsserted, w.Asserted)
	}
	return rcpt
}

// worseEnv picks the harsher of two local environments for a link.
func worseEnv(a, b radio.Environment) radio.Environment {
	if a > b {
		return a
	}
	return b
}

// JudgeWitness applies the §8.2.1 validity list to one report, using
// only on-chain knowledge: the challengee's and witness's *asserted*
// locations. Returns (valid, reason) where reason names the first
// failed rule.
func (e *Engine) JudgeWitness(challengee *Site, witnessAsserted geo.Point, rep chain.WitnessReport) (bool, string) {
	if e.DisableValidity {
		return true, ""
	}
	assertedKm := geo.HaversineKm(challengee.Asserted, witnessAsserted)
	if !e.DisableHIP15 && assertedKm*1000 < e.MinWitnessDistM {
		return false, "too_close"
	}
	if rep.Channel < 0 || rep.Channel >= e.Channels {
		return false, "wrong_channel"
	}
	if rep.RSSIdBm > e.MaxPlausibleRSSI {
		return false, "rssi_too_high"
	}
	// Free-space plausibility: nothing can arrive stronger than
	// free-space loss at the asserted distance allows (plus margin).
	if assertedKm > 0 {
		best := e.TxPowerDBm + 12 /* generous combined gain */ - radio.FSPLdB(assertedKm, e.FreqMHz)
		if rep.RSSIdBm > best+e.FreeSpaceMarginDB {
			return false, "rssi_too_high"
		}
	}
	if rep.RSSIdBm < e.MinPlausibleRSSI {
		return false, "rssi_too_low"
	}
	if rep.Location.Valid() && rep.Location.PentagonDistorted() {
		return false, "pentagonal_distortion"
	}
	return true, ""
}

// Scheduler tracks which hotspots may challenge at a given block,
// enforcing the 480-block spacing (§7.1).
type Scheduler struct {
	IntervalBlocks int64
	last           map[string]int64
}

// NewScheduler returns a scheduler with the production interval.
func NewScheduler() *Scheduler {
	return &Scheduler{IntervalBlocks: chain.PoCChallengeIntervalBlocks, last: make(map[string]int64)}
}

// Eligible reports whether the hotspot may issue a challenge at
// height.
func (s *Scheduler) Eligible(addr string, height int64) bool {
	last, ok := s.last[addr]
	return !ok || height-last >= s.IntervalBlocks
}

// Record notes that the hotspot challenged at height.
func (s *Scheduler) Record(addr string, height int64) { s.last[addr] = height }

// PickChallengee selects a random online site other than the
// challenger (challenges "can be acted on any other hotspot in the
// world", §2.3).
func PickChallengee(f *Fleet, challenger *Site, rng *stats.RNG) (*Site, error) {
	online := 0
	for _, s := range f.Sites {
		if s.Online && s != challenger {
			online++
		}
	}
	if online == 0 {
		return nil, fmt.Errorf("poc: no eligible challengee")
	}
	k := rng.Intn(online)
	for _, s := range f.Sites {
		if s.Online && s != challenger {
			if k == 0 {
				return s, nil
			}
			k--
		}
	}
	return nil, fmt.Errorf("poc: unreachable")
}
