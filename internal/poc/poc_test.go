package poc

import (
	"testing"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/radio"
	"peoplesnet/internal/stats"
)

// site creates an honest online site at (lat, lon).
func site(addr string, lat, lon float64) *Site {
	p := geo.Point{Lat: lat, Lon: lon}
	return &Site{
		Address:  addr,
		Asserted: p,
		Actual:   p,
		Cell:     h3lite.FromLatLon(p, 12),
		Online:   true,
		Env:      radio.Suburban,
		GainDBi:  3,
	}
}

// offset returns a point d km east of (lat, lon).
func offset(lat, lon, dKm float64) geo.Point {
	return geo.Destination(geo.Point{Lat: lat, Lon: lon}, 90, dKm)
}

func TestChallengeProducesWitnesses(t *testing.T) {
	rng := stats.NewRNG(1)
	// A challengee ringed by hotspots 1–3 km away: several should
	// witness at suburban ranges.
	challengee := site("target", 33, -117)
	sites := []*Site{challengee, site("challenger", 33.5, -117)}
	for i := 0; i < 8; i++ {
		p := geo.Destination(geo.Point{Lat: 33, Lon: -117}, float64(i)*45, 1+float64(i)*0.25)
		s := site("w", p.Lat, p.Lon)
		s.Address = s.Address + string(rune('0'+i))
		s.Asserted, s.Actual = p, p
		sites = append(sites, s)
	}
	f := NewFleet(sites)
	e := NewEngine()
	rcpt := e.RunChallenge(f, sites[1], challengee, rng)
	if rcpt.Challenger != "challenger" || rcpt.Challengee != "target" {
		t.Fatalf("receipt = %+v", rcpt)
	}
	if len(rcpt.Witnesses) == 0 {
		t.Fatal("no witnesses at 1-3 km suburban range")
	}
	valid := 0
	for _, w := range rcpt.Witnesses {
		if w.Valid {
			valid++
		}
	}
	if valid == 0 {
		t.Fatal("no valid witnesses")
	}
	// Conversion to chain txn.
	txn := rcpt.ToTxn()
	if txn.Challengee != "target" || len(txn.Witnesses) != len(rcpt.Witnesses) {
		t.Fatal("ToTxn mismatch")
	}
}

func TestHIP15TooClose(t *testing.T) {
	e := NewEngine()
	challengee := site("c", 33, -117)
	// Witness asserted 100 m away: invalid.
	wLoc := offset(33, -117, 0.1)
	valid, reason := e.JudgeWitness(challengee, wLoc, chain.WitnessReport{RSSIdBm: -80, Channel: 1})
	if valid || reason != "too_close" {
		t.Fatalf("100 m witness: valid=%v reason=%q", valid, reason)
	}
	// 500 m away: allowed (other rules permitting).
	wLoc2 := offset(33, -117, 0.5)
	valid2, _ := e.JudgeWitness(challengee, wLoc2, chain.WitnessReport{RSSIdBm: -90, Channel: 1})
	if !valid2 {
		t.Fatal("500 m witness rejected")
	}
	// Ablation: HIP15 off admits the close witness.
	e.DisableHIP15 = true
	valid3, _ := e.JudgeWitness(challengee, wLoc, chain.WitnessReport{RSSIdBm: -80, Channel: 1})
	if !valid3 {
		t.Fatal("HIP15-disabled close witness rejected")
	}
}

func TestRSSIHeuristics(t *testing.T) {
	e := NewEngine()
	challengee := site("c", 33, -117)
	far := offset(33, -117, 20)
	// Absurd value (§7.2).
	valid, reason := e.JudgeWitness(challengee, far, chain.WitnessReport{RSSIdBm: AbsurdRSSIValue, Channel: 0})
	if valid || reason != "rssi_too_high" {
		t.Fatalf("absurd RSSI: valid=%v reason=%q", valid, reason)
	}
	// Physically impossible: -50 dBm at 20 km beats free space.
	valid, reason = e.JudgeWitness(challengee, far, chain.WitnessReport{RSSIdBm: -50, Channel: 0})
	if valid || reason != "rssi_too_high" {
		t.Fatalf("impossible RSSI: valid=%v reason=%q", valid, reason)
	}
	// Too weak to be a real decode.
	valid, reason = e.JudgeWitness(challengee, far, chain.WitnessReport{RSSIdBm: -150, Channel: 0})
	if valid || reason != "rssi_too_low" {
		t.Fatalf("weak RSSI: valid=%v reason=%q", valid, reason)
	}
	// Plausible value passes.
	valid, _ = e.JudgeWitness(challengee, far, chain.WitnessReport{RSSIdBm: -115, Channel: 0})
	if !valid {
		t.Fatal("plausible RSSI rejected")
	}
}

func TestWrongChannel(t *testing.T) {
	e := NewEngine()
	challengee := site("c", 33, -117)
	w := offset(33, -117, 5)
	valid, reason := e.JudgeWitness(challengee, w, chain.WitnessReport{RSSIdBm: -100, Channel: 99})
	if valid || reason != "wrong_channel" {
		t.Fatalf("wrong channel: valid=%v reason=%q", valid, reason)
	}
}

func TestDisableValidity(t *testing.T) {
	e := NewEngine()
	e.DisableValidity = true
	challengee := site("c", 33, -117)
	valid, _ := e.JudgeWitness(challengee, offset(33, -117, 0.05), chain.WitnessReport{RSSIdBm: AbsurdRSSIValue, Channel: 99})
	if !valid {
		t.Fatal("validity-disabled engine rejected a witness")
	}
}

func TestGossipCliqueWitnessesWithoutReception(t *testing.T) {
	rng := stats.NewRNG(2)
	// Clique members 200 km apart cannot hear each other, but both
	// report witnessing.
	a := site("clique-a", 33, -117)
	a.Cheat.Clique = 7
	b := site("clique-b", 34.8, -117) // ~200 km north
	b.Cheat.Clique = 7
	challenger := site("challenger", 40, -100)
	f := NewFleet([]*Site{a, b, challenger})
	e := NewEngine()
	e.ConsiderRadiusKm = 300 // let the clique be found
	seen := false
	for i := 0; i < 20 && !seen; i++ {
		rcpt := e.RunChallenge(f, challenger, a, rng)
		for _, w := range rcpt.Witnesses {
			if w.Witness == "clique-b" {
				seen = true
			}
		}
	}
	if !seen {
		t.Fatal("clique member never fabricated a witness")
	}
	// An honest pair at that distance never witnesses.
	honestA := site("honest-a", 33, -110)
	honestB := site("honest-b", 34.8, -110)
	f2 := NewFleet([]*Site{honestA, honestB, challenger})
	for i := 0; i < 20; i++ {
		rcpt := e.RunChallenge(f2, challenger, honestA, rng)
		for _, w := range rcpt.Witnesses {
			if w.Witness == "honest-b" {
				t.Fatal("honest witness at 200 km")
			}
		}
	}
}

func TestSilentMoverGeometry(t *testing.T) {
	rng := stats.NewRNG(3)
	// Mover asserted in "Florida" but physically in "Pennsylvania";
	// its witnesses cluster around the actual location (§7.1).
	mover := site("joyful-pink-skunk", 28, -81) // asserted: Florida
	mover.Actual = geo.Point{Lat: 40.3, Lon: -76.9}
	if !mover.SilentMover(100) {
		t.Fatal("mover not detected by SilentMover")
	}
	neighbors := []*Site{mover, site("challenger", 45, -90)}
	for i := 0; i < 6; i++ {
		p := geo.Destination(mover.Actual, float64(i)*60, 2)
		s := site("pa-w", p.Lat, p.Lon)
		s.Address += string(rune('0' + i))
		s.Asserted, s.Actual = p, p
		neighbors = append(neighbors, s)
	}
	f := NewFleet(neighbors)
	e := NewEngine()
	rcpt := e.RunChallenge(f, neighbors[1], mover, rng)
	if len(rcpt.Witnesses) == 0 {
		t.Fatal("mover produced no witnesses at its actual location")
	}
	// The audit's signal: witnesses' asserted locations are ~1500 km
	// from the challengee's asserted location.
	for _, wp := range rcpt.WitnessAsserted {
		if geo.HaversineKm(wp, mover.Asserted) < 1000 {
			t.Fatal("witness unexpectedly near the asserted location")
		}
	}
}

func TestScheduler(t *testing.T) {
	s := NewScheduler()
	if !s.Eligible("a", 100) {
		t.Fatal("fresh hotspot not eligible")
	}
	s.Record("a", 100)
	if s.Eligible("a", 100+chain.PoCChallengeIntervalBlocks-1) {
		t.Fatal("eligible inside interval")
	}
	if !s.Eligible("a", 100+chain.PoCChallengeIntervalBlocks) {
		t.Fatal("not eligible after interval")
	}
	if !s.Eligible("b", 101) {
		t.Fatal("other hotspot affected")
	}
}

func TestPickChallengee(t *testing.T) {
	rng := stats.NewRNG(4)
	a, b, c := site("a", 1, 1), site("b", 2, 2), site("c", 3, 3)
	c.Online = false
	f := NewFleet([]*Site{a, b, c})
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		got, err := PickChallengee(f, a, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[got.Address]++
	}
	if counts["a"] != 0 {
		t.Fatal("challenger picked itself")
	}
	if counts["c"] != 0 {
		t.Fatal("offline hotspot picked")
	}
	if counts["b"] != 200 {
		t.Fatalf("counts = %v", counts)
	}
	// No eligible challengee.
	lone := NewFleet([]*Site{a})
	if _, err := PickChallengee(lone, a, rng); err == nil {
		t.Fatal("no-challengee case not an error")
	}
}

func TestOfflineSitesDoNotWitness(t *testing.T) {
	rng := stats.NewRNG(5)
	challengee := site("c", 33, -117)
	off := site("off", 33.01, -117)
	off.Online = false
	f := NewFleet([]*Site{challengee, off, site("challenger", 34, -117)})
	e := NewEngine()
	for i := 0; i < 10; i++ {
		rcpt := e.RunChallenge(f, f.Sites[2], challengee, rng)
		for _, w := range rcpt.Witnesses {
			if w.Witness == "off" {
				t.Fatal("offline hotspot witnessed")
			}
		}
	}
}
