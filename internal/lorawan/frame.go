// Package lorawan implements the slice of the LoRaWAN MAC that the
// Helium data plane exercises: OTAA join (§2.2), uplink/downlink data
// frames with frame counters and MICs, the class-A receive windows
// whose 1 s/2 s deadlines constrain router placement (§5.2), and
// Helium's OUI-based routing lookup that overloads LoRaWAN
// identifiers.
//
// Frames marshal to a compact binary wire format patterned after the
// real PHYPayload layout (MHDR | MACPayload | MIC) so that packet
// forwarders can carry them as opaque bytes, and parse lazily in the
// style of layered packet decoders: header first, payload on demand.
package lorawan

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// MType is the LoRaWAN message type carried in the MHDR.
type MType uint8

// LoRaWAN message types.
const (
	JoinRequestType MType = iota
	JoinAcceptType
	UnconfirmedDataUp
	UnconfirmedDataDown
	ConfirmedDataUp
	ConfirmedDataDown
	rfu
	Proprietary
)

func (m MType) String() string {
	switch m {
	case JoinRequestType:
		return "JoinRequest"
	case JoinAcceptType:
		return "JoinAccept"
	case UnconfirmedDataUp:
		return "UnconfirmedDataUp"
	case UnconfirmedDataDown:
		return "UnconfirmedDataDown"
	case ConfirmedDataUp:
		return "ConfirmedDataUp"
	case ConfirmedDataDown:
		return "ConfirmedDataDown"
	case Proprietary:
		return "Proprietary"
	default:
		return fmt.Sprintf("MType(%d)", uint8(m))
	}
}

// Uplink reports whether the message type flows device→network.
func (m MType) Uplink() bool {
	return m == JoinRequestType || m == UnconfirmedDataUp || m == ConfirmedDataUp
}

// Confirmed reports whether the message type demands an ACK.
func (m MType) Confirmed() bool {
	return m == ConfirmedDataUp || m == ConfirmedDataDown
}

// EUI64 is an 8-byte extended unique identifier (DevEUI / AppEUI).
type EUI64 [8]byte

func (e EUI64) String() string { return fmt.Sprintf("%016x", e[:]) }

// EUIFromUint64 packs a uint64 big-endian.
func EUIFromUint64(v uint64) EUI64 {
	var e EUI64
	binary.BigEndian.PutUint64(e[:], v)
	return e
}

// DevAddr is the 4-byte network session address assigned at join.
type DevAddr uint32

func (d DevAddr) String() string { return fmt.Sprintf("%08x", uint32(d)) }

// AppKey is the 16-byte root key provisioned into a device.
type AppKey [16]byte

// SessionKeys are derived at join.
type SessionKeys struct {
	NwkSKey [16]byte
	AppSKey [16]byte
}

// DeriveSessionKeys derives network and application session keys from
// the root key and the join nonces, using HMAC-SHA256 in place of the
// spec's AES construction (equivalent strength, stdlib-only).
func DeriveSessionKeys(appKey AppKey, devNonce uint16, joinNonce uint32) SessionKeys {
	derive := func(label byte) [16]byte {
		mac := hmac.New(sha256.New, appKey[:])
		var buf [7]byte
		buf[0] = label
		binary.BigEndian.PutUint16(buf[1:3], devNonce)
		binary.BigEndian.PutUint32(buf[3:7], joinNonce)
		mac.Write(buf[:])
		var out [16]byte
		copy(out[:], mac.Sum(nil))
		return out
	}
	return SessionKeys{NwkSKey: derive(0x01), AppSKey: derive(0x02)}
}

// Receive window offsets after the end of an uplink (§5.2: "two
// acknowledgment windows, at precisely 1 s and 2 s").
const (
	RX1DelaySec = 1
	RX2DelaySec = 2
)

// Frame is a decoded LoRaWAN frame. JoinRequest fields are populated
// for JoinRequestType, DevAddr/FCnt/payload fields otherwise.
type Frame struct {
	MType MType

	// Join request fields.
	AppEUI   EUI64
	DevEUI   EUI64
	DevNonce uint16

	// Join accept fields.
	JoinNonce uint32

	// Data frame fields.
	DevAddr DevAddr
	FCtrl   FCtrl
	FCnt    uint16
	FPort   uint8
	Payload []byte

	// MIC is the 4-byte integrity code over everything above.
	MIC [4]byte
}

// FCtrl carries the frame control bits used by the study.
type FCtrl struct {
	ADR bool
	ACK bool // downlink: acknowledges a confirmed uplink
}

func (f FCtrl) byteVal() byte {
	var b byte
	if f.ADR {
		b |= 0x80
	}
	if f.ACK {
		b |= 0x20
	}
	return b
}

func fctrlFromByte(b byte) FCtrl {
	return FCtrl{ADR: b&0x80 != 0, ACK: b&0x20 != 0}
}

// computeMIC calculates the integrity code with the given key over the
// serialized frame sans MIC.
func computeMIC(key []byte, body []byte) [4]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	var mic [4]byte
	copy(mic[:], mac.Sum(nil))
	return mic
}

// Errors returned by the codec.
var (
	ErrShortFrame = errors.New("lorawan: frame too short")
	ErrBadMIC     = errors.New("lorawan: MIC verification failed")
)

// Marshal serializes the frame and appends a MIC computed with key.
// For join requests the key is the AppKey; for data frames it is the
// NwkSKey.
func (f *Frame) Marshal(key []byte) []byte {
	body := f.marshalBody()
	mic := computeMIC(key, body)
	f.MIC = mic
	return append(body, mic[:]...)
}

func (f *Frame) marshalBody() []byte {
	switch f.MType {
	case JoinRequestType:
		out := make([]byte, 1+8+8+2)
		out[0] = byte(f.MType) << 5
		copy(out[1:9], f.AppEUI[:])
		copy(out[9:17], f.DevEUI[:])
		binary.LittleEndian.PutUint16(out[17:19], f.DevNonce)
		return out
	case JoinAcceptType:
		out := make([]byte, 1+4+4)
		out[0] = byte(f.MType) << 5
		binary.LittleEndian.PutUint32(out[1:5], f.JoinNonce)
		binary.LittleEndian.PutUint32(out[5:9], uint32(f.DevAddr))
		return out
	default:
		out := make([]byte, 1+4+1+2+1, 9+1+len(f.Payload))
		out[0] = byte(f.MType) << 5
		binary.LittleEndian.PutUint32(out[1:5], uint32(f.DevAddr))
		out[5] = f.FCtrl.byteVal()
		binary.LittleEndian.PutUint16(out[6:8], f.FCnt)
		out[8] = f.FPort
		return append(out, f.Payload...)
	}
}

// Parse decodes a wire frame without verifying the MIC (hotspots relay
// frames they cannot verify; only the owning router holds keys).
func Parse(wire []byte) (*Frame, error) {
	if len(wire) < 5 {
		return nil, ErrShortFrame
	}
	body, micBytes := wire[:len(wire)-4], wire[len(wire)-4:]
	f := &Frame{MType: MType(body[0] >> 5)}
	copy(f.MIC[:], micBytes)
	switch f.MType {
	case JoinRequestType:
		if len(body) < 19 {
			return nil, ErrShortFrame
		}
		copy(f.AppEUI[:], body[1:9])
		copy(f.DevEUI[:], body[9:17])
		f.DevNonce = binary.LittleEndian.Uint16(body[17:19])
	case JoinAcceptType:
		if len(body) < 9 {
			return nil, ErrShortFrame
		}
		f.JoinNonce = binary.LittleEndian.Uint32(body[1:5])
		f.DevAddr = DevAddr(binary.LittleEndian.Uint32(body[5:9]))
	default:
		if len(body) < 9 {
			return nil, ErrShortFrame
		}
		f.DevAddr = DevAddr(binary.LittleEndian.Uint32(body[1:5]))
		f.FCtrl = fctrlFromByte(body[5])
		f.FCnt = binary.LittleEndian.Uint16(body[6:8])
		f.FPort = body[8]
		f.Payload = append([]byte(nil), body[9:]...)
	}
	return f, nil
}

// Verify checks the frame's MIC against key. The frame must have been
// produced by Parse or Marshal.
func (f *Frame) Verify(key []byte) error {
	want := computeMIC(key, f.marshalBody())
	if !hmac.Equal(want[:], f.MIC[:]) {
		return ErrBadMIC
	}
	return nil
}
