package lorawan

import (
	"bytes"
	"testing"
	"testing/quick"
)

var testKey = []byte("0123456789abcdef")

func TestJoinRequestRoundTrip(t *testing.T) {
	f := &Frame{
		MType:    JoinRequestType,
		AppEUI:   EUIFromUint64(0x70B3D57ED0000001),
		DevEUI:   EUIFromUint64(0x70B3D57ED0001234),
		DevNonce: 0xBEEF,
	}
	wire := f.Marshal(testKey)
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.MType != JoinRequestType || got.AppEUI != f.AppEUI || got.DevEUI != f.DevEUI || got.DevNonce != 0xBEEF {
		t.Fatalf("round trip = %+v", got)
	}
	if err := got.Verify(testKey); err != nil {
		t.Fatal(err)
	}
}

func TestJoinAcceptRoundTrip(t *testing.T) {
	f := &Frame{MType: JoinAcceptType, JoinNonce: 777, DevAddr: 0xDEADBEEF}
	got, err := Parse(f.Marshal(testKey))
	if err != nil {
		t.Fatal(err)
	}
	if got.JoinNonce != 777 || got.DevAddr != 0xDEADBEEF {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	f := &Frame{
		MType:   ConfirmedDataUp,
		DevAddr: 0x01020304,
		FCtrl:   FCtrl{ADR: true},
		FCnt:    42,
		FPort:   2,
		Payload: []byte{0xCA, 0xFE, 0x00, 0x01},
	}
	wire := f.Marshal(testKey)
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.MType != ConfirmedDataUp || got.DevAddr != f.DevAddr || got.FCnt != 42 ||
		got.FPort != 2 || !bytes.Equal(got.Payload, f.Payload) || !got.FCtrl.ADR || got.FCtrl.ACK {
		t.Fatalf("round trip = %+v", got)
	}
	if err := got.Verify(testKey); err != nil {
		t.Fatal(err)
	}
}

func TestMICDetectsTampering(t *testing.T) {
	f := &Frame{MType: UnconfirmedDataUp, DevAddr: 1, FCnt: 1, FPort: 1, Payload: []byte{1, 2, 3}}
	wire := f.Marshal(testKey)
	wire[10] ^= 0xFF // flip a payload byte
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(testKey); err == nil {
		t.Fatal("tampered frame verified")
	}
	// Wrong key also fails.
	clean, _ := Parse(f.Marshal(testKey))
	if err := clean.Verify([]byte("another-key-1234")); err == nil {
		t.Fatal("wrong key verified")
	}
}

func TestParseShortFrames(t *testing.T) {
	for _, wire := range [][]byte{nil, {1}, {1, 2, 3, 4}, make([]byte, 8)} {
		if _, err := Parse(wire); err == nil {
			t.Fatalf("short frame %v accepted", wire)
		}
	}
	// A join request truncated below its fixed size.
	f := &Frame{MType: JoinRequestType}
	wire := f.Marshal(testKey)
	if _, err := Parse(wire[:12]); err == nil {
		t.Fatal("truncated join request accepted")
	}
}

func TestACKFlag(t *testing.T) {
	f := &Frame{MType: UnconfirmedDataDown, DevAddr: 9, FCtrl: FCtrl{ACK: true}}
	got, _ := Parse(f.Marshal(testKey))
	if !got.FCtrl.ACK {
		t.Fatal("ACK flag lost")
	}
}

func TestSessionKeyDerivation(t *testing.T) {
	var appKey AppKey
	copy(appKey[:], "secret-app-key!!")
	a := DeriveSessionKeys(appKey, 1, 100)
	b := DeriveSessionKeys(appKey, 1, 100)
	if a != b {
		t.Fatal("derivation not deterministic")
	}
	c := DeriveSessionKeys(appKey, 2, 100)
	if a == c {
		t.Fatal("different nonce produced same keys")
	}
	if a.NwkSKey == a.AppSKey {
		t.Fatal("network and app keys identical")
	}
}

func TestMTypeHelpers(t *testing.T) {
	if !ConfirmedDataUp.Uplink() || ConfirmedDataDown.Uplink() {
		t.Fatal("Uplink classification wrong")
	}
	if !ConfirmedDataUp.Confirmed() || UnconfirmedDataUp.Confirmed() {
		t.Fatal("Confirmed classification wrong")
	}
	if JoinRequestType.String() != "JoinRequest" || MType(6).String() != "MType(6)" {
		t.Fatal("String() wrong")
	}
}

// Property: any data frame round-trips exactly.
func TestDataFrameRoundTripProperty(t *testing.T) {
	err := quick.Check(func(addr uint32, fcnt uint16, port uint8, payload []byte, adr, ack bool) bool {
		if len(payload) > 242 { // LoRaWAN max payload
			payload = payload[:242]
		}
		f := &Frame{
			MType:   UnconfirmedDataUp,
			DevAddr: DevAddr(addr),
			FCtrl:   FCtrl{ADR: adr, ACK: ack},
			FCnt:    fcnt,
			FPort:   port,
			Payload: payload,
		}
		got, err := Parse(f.Marshal(testKey))
		if err != nil {
			return false
		}
		return got.DevAddr == f.DevAddr && got.FCnt == fcnt && got.FPort == port &&
			bytes.Equal(got.Payload, payload) && got.FCtrl == f.FCtrl &&
			got.Verify(testKey) == nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEUIString(t *testing.T) {
	e := EUIFromUint64(0x1234)
	if e.String() != "0000000000001234" {
		t.Fatal(e.String())
	}
	if DevAddr(0xAB).String() != "000000ab" {
		t.Fatal(DevAddr(0xAB).String())
	}
}

func TestRXWindowConstants(t *testing.T) {
	if RX1DelaySec != 1 || RX2DelaySec != 2 {
		t.Fatal("receive window constants must match LoRaWAN class A")
	}
}
