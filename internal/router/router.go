// Package router implements a Helium router — and its hosted flavour,
// the Console (§2.2, §5.2): OTAA device onboarding, session and
// frame-counter tracking, the state-channel purchase policy (including
// duplicate-copy buying), per-user Data Credit accounting at cost,
// downlink/ACK scheduling against the 1 s / 2 s class-A windows, and
// application delivery through pluggable integrations (§5.2's "numerous
// integrations", including a real HTTP one).
package router

import (
	"fmt"
	"sync"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/chainkey"
	"peoplesnet/internal/hotspot"
	"peoplesnet/internal/lorawan"
	"peoplesnet/internal/statechannel"
	"peoplesnet/internal/stats"
)

// AppMessage is one decoded uplink delivered to an application.
type AppMessage struct {
	UserID  string
	DevEUI  lorawan.EUI64
	DevAddr lorawan.DevAddr
	FCnt    uint16
	FPort   uint8
	Payload []byte
	Hotspot string // which hotspot sold us this copy first
	RSSI    float64
}

// Integration receives application messages (§5.2).
type Integration interface {
	Deliver(AppMessage) error
}

// Device is a registered edge device.
type Device struct {
	DevEUI lorawan.EUI64
	AppEUI lorawan.EUI64
	AppKey lorawan.AppKey
	UserID string
}

// session is live OTAA state for a joined device.
type session struct {
	dev      *Device
	devAddr  lorawan.DevAddr
	keys     lorawan.SessionKeys
	lastFCnt uint16
	seenAny  bool
}

// Config parameterizes a router.
type Config struct {
	OUI   uint32
	Owner string // wallet address
	Keys  *chainkey.Keypair
	// ChannelLifetimeBlocks is the open-to-deadline length. The
	// Console closes roughly every 120 blocks on 240-block channels
	// (Fig 8, §5.1).
	ChannelLifetimeBlocks int64
	// ChannelStakeDC staked per channel.
	ChannelStakeDC int64
	// MaxCopies bounds duplicate purchases of one packet (<=0:
	// unlimited, the paper's observed default).
	MaxCopies int
	// LatencySampler returns the router's response latency in seconds
	// for one transaction; decides which RX window (if any) an ACK
	// makes (§5.2's five-step under-1s dance). Nil means always ~0.2 s.
	LatencySampler func() float64
	// ChargeUsers bills device owners DC per delivered packet.
	ChargeUsers bool
}

// Router is a live router instance. It implements
// hotspot.PacketBuyer.
type Router struct {
	cfg Config

	mu        sync.Mutex
	devices   map[lorawan.EUI64]*Device
	sessions  map[lorawan.DevAddr]*session
	users     map[string]int64 // DC balances
	nextAddr  uint32
	scNonce   int64
	channel   *statechannel.Channel
	height    int64
	pending   []chain.Txn
	delivered map[string]bool // packetID → already delivered to app
	blocklist *statechannel.Blocklist
	integ     Integration
	rng       *stats.RNG

	// Counters.
	packetsBought int64
	packetsToApp  int64
	acksRX1       int64
	acksRX2       int64
	acksMissed    int64
	joinsAccepted int64
}

// New creates a router and queues its OUI registration transaction.
func New(cfg Config, rng *stats.RNG) *Router {
	if cfg.ChannelLifetimeBlocks == 0 {
		cfg.ChannelLifetimeBlocks = 240
	}
	if cfg.ChannelStakeDC == 0 {
		cfg.ChannelStakeDC = 1_000_000
	}
	r := &Router{
		cfg:       cfg,
		devices:   make(map[lorawan.EUI64]*Device),
		sessions:  make(map[lorawan.DevAddr]*session),
		users:     make(map[string]int64),
		delivered: make(map[string]bool),
		blocklist: statechannel.NewBlocklist(),
		rng:       rng,
	}
	r.pending = append(r.pending, &chain.OUIRegistration{OUI: cfg.OUI, Owner: cfg.Owner})
	return r
}

// SetIntegration installs the application delivery hook.
func (r *Router) SetIntegration(i Integration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.integ = i
}

// Blocklist exposes the router's hotspot blocklist.
func (r *Router) Blocklist() *statechannel.Blocklist { return r.blocklist }

// RegisterDevice enrolls a device under a user account (the Console
// "register a new device" step, §2.1).
func (r *Router) RegisterDevice(d Device) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := d
	r.devices[d.DevEUI] = &cp
}

// FundUser deposits DC into a user's Console balance (§2.1 "deposit
// money in their Console account").
func (r *Router) FundUser(userID string, dc int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.users[userID] += dc
}

// UserBalance returns a user's remaining DC.
func (r *Router) UserBalance(userID string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.users[userID]
}

// OwnsDevAddr reports whether the router holds a session for the
// address — the directory lookup hotspots perform (§2.2).
func (r *Router) OwnsDevAddr(a lorawan.DevAddr) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sessions[a]
	return ok
}

// OwnsDevEUI reports whether the device is registered here (used to
// route join requests).
func (r *Router) OwnsDevEUI(e lorawan.EUI64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.devices[e]
	return ok
}

// OnBlock advances the router's view of chain height, closing expired
// channels (routers are responsible for closing, §5.1).
func (r *Router) OnBlock(height int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.height = height
	if r.channel != nil && height >= r.channel.ExpiresAt {
		r.pending = append(r.pending, r.channel.Close(nil))
		r.channel = nil
	}
}

// CloseChannelNow force-closes the active channel (the Console's
// ~120-block early close habit, Fig 8).
func (r *Router) CloseChannelNow() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.channel != nil {
		r.pending = append(r.pending, r.channel.Close(nil))
		r.channel = nil
	}
}

// PendingTxns drains transactions the router wants on chain.
func (r *Router) PendingTxns() []chain.Txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.pending
	r.pending = nil
	return out
}

// ensureChannel opens a state channel if none is active. Caller holds
// r.mu.
func (r *Router) ensureChannel() *statechannel.Channel {
	if r.channel == nil {
		r.scNonce++
		ch, openTxn := statechannel.Open(r.cfg.Owner, r.cfg.OUI, r.scNonce,
			r.cfg.ChannelStakeDC, r.height, r.cfg.ChannelLifetimeBlocks)
		r.channel = ch
		r.pending = append(r.pending, openTxn)
	}
	return r.channel
}

// OfferPacket implements hotspot.PacketBuyer: the purchase decision.
func (r *Router) OfferPacket(o statechannel.Offer) (statechannel.Purchase, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.blocklist.Blocked(o.Hotspot) {
		return statechannel.Purchase{}, false
	}
	// Refuse traffic for users who are out of DC.
	if r.cfg.ChargeUsers {
		if sess, ok := r.sessions[lorawan.DevAddr(o.DevAddr)]; ok {
			if r.users[sess.dev.UserID] < statechannel.DCForBytes(o.Bytes) {
				return statechannel.Purchase{}, false
			}
		}
	}
	ch := r.ensureChannel()
	p, err := ch.Buy(o, r.cfg.MaxCopies, r.cfg.Keys)
	if err != nil {
		if err == statechannel.ErrChannelExhausted {
			// Roll the channel and retry once.
			r.pending = append(r.pending, ch.Close(nil))
			r.channel = nil
			p, err = r.ensureChannel().Buy(o, r.cfg.MaxCopies, r.cfg.Keys)
		}
		if err != nil {
			return statechannel.Purchase{}, false
		}
	}
	r.packetsBought++
	return p, true
}

// latency samples the router's processing latency.
func (r *Router) latency() float64 {
	if r.cfg.LatencySampler != nil {
		return r.cfg.LatencySampler()
	}
	return 0.2
}

// ReleasePacket implements hotspot.PacketBuyer: payload ingestion,
// app delivery, and downlink/ACK scheduling.
func (r *Router) ReleasePacket(p statechannel.Purchase, frame []byte) ([]byte, int) {
	f, err := lorawan.Parse(frame)
	if err != nil {
		return nil, 0
	}
	switch f.MType {
	case lorawan.JoinRequestType:
		return r.handleJoin(f, p)
	case lorawan.ConfirmedDataUp, lorawan.UnconfirmedDataUp:
		downlink, window, msg := r.handleData(f, p)
		if msg != nil {
			r.mu.Lock()
			integ := r.integ
			r.mu.Unlock()
			if integ != nil {
				_ = integ.Deliver(*msg)
			}
		}
		return downlink, window
	default:
		return nil, 0
	}
}

func (r *Router) handleJoin(f *lorawan.Frame, p statechannel.Purchase) ([]byte, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	dev, ok := r.devices[f.DevEUI]
	if !ok || dev.AppEUI != f.AppEUI {
		return nil, 0
	}
	if err := f.Verify(dev.AppKey[:]); err != nil {
		return nil, 0
	}
	r.nextAddr++
	addr := lorawan.DevAddr(0x48000000 | r.nextAddr) // Helium NetID prefix flavour
	joinNonce := uint32(r.rng.Uint64())
	sess := &session{
		dev:     dev,
		devAddr: addr,
		keys:    lorawan.DeriveSessionKeys(dev.AppKey, f.DevNonce, joinNonce),
	}
	r.sessions[addr] = sess
	r.joinsAccepted++
	accept := &lorawan.Frame{MType: lorawan.JoinAcceptType, JoinNonce: joinNonce, DevAddr: addr}
	wire := accept.Marshal(dev.AppKey[:])
	return wire, r.windowFor(r.latency())
}

func (r *Router) handleData(f *lorawan.Frame, p statechannel.Purchase) ([]byte, int, *AppMessage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.sessions[f.DevAddr]
	if !ok {
		return nil, 0, nil
	}
	if err := f.Verify(sess.keys.NwkSKey[:]); err != nil {
		return nil, 0, nil
	}
	// Deliver to the application once per packet (duplicate copies are
	// paid for but not re-delivered, §5.1/§5.3).
	var msg *AppMessage
	pid := p.Offer.PacketID
	if !r.delivered[pid] && (!sess.seenAny || f.FCnt != sess.lastFCnt) {
		r.delivered[pid] = true
		sess.lastFCnt = f.FCnt
		sess.seenAny = true
		if r.cfg.ChargeUsers {
			r.users[sess.dev.UserID] -= p.DC
		}
		r.packetsToApp++
		msg = &AppMessage{
			UserID:  sess.dev.UserID,
			DevEUI:  sess.dev.DevEUI,
			DevAddr: f.DevAddr,
			FCnt:    f.FCnt,
			FPort:   f.FPort,
			Payload: append([]byte(nil), f.Payload...),
			Hotspot: p.Offer.Hotspot,
		}
	}
	// ACK policy for confirmed uplinks.
	if f.MType != lorawan.ConfirmedDataUp {
		return nil, 0, msg
	}
	window := r.windowFor(r.latency())
	if window == 0 {
		r.acksMissed++
		return nil, 0, msg
	}
	if window == 1 {
		r.acksRX1++
	} else {
		r.acksRX2++
	}
	ack := &lorawan.Frame{
		MType:   lorawan.UnconfirmedDataDown,
		DevAddr: f.DevAddr,
		FCtrl:   lorawan.FCtrl{ACK: true},
		FCnt:    f.FCnt,
	}
	return ack.Marshal(sess.keys.NwkSKey[:]), window, msg
}

// windowFor maps a latency sample to the receive window it can make:
// 1 (RX1, <1 s), 2 (RX2, <2 s), or 0 (missed both).
func (r *Router) windowFor(latencySec float64) int {
	switch {
	case latencySec < lorawan.RX1DelaySec:
		return 1
	case latencySec < lorawan.RX2DelaySec:
		return 2
	default:
		return 0
	}
}

// HandleDemand arbitrates a hotspot's grace-period claim that a close
// omitted its purchases (§5.1). A demand backed by validly signed
// purchases amends the close and queues the amended transaction; a
// demand the router's own key cannot verify is a lie, and the only
// recourse the protocol gives the router is the blocklist.
func (r *Router) HandleDemand(cl *chain.StateChannelClose, d statechannel.Demand, closeHeight, demandHeight int64) (*chain.StateChannelClose, bool) {
	if !statechannel.WithinGrace(closeHeight, demandHeight) {
		return cl, false
	}
	amended, ok := statechannel.Arbitrate(cl, d, r.cfg.Keys.Public)
	if !ok {
		r.blocklist.Add(d.Hotspot, "invalid state-channel demand")
		return cl, false
	}
	r.mu.Lock()
	r.pending = append(r.pending, amended)
	r.mu.Unlock()
	return amended, true
}

// Stats reports router counters.
type Stats struct {
	PacketsBought int64
	PacketsToApp  int64
	AcksRX1       int64
	AcksRX2       int64
	AcksMissed    int64
	JoinsAccepted int64
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		PacketsBought: r.packetsBought,
		PacketsToApp:  r.packetsToApp,
		AcksRX1:       r.acksRX1,
		AcksRX2:       r.acksRX2,
		AcksMissed:    r.acksMissed,
		JoinsAccepted: r.joinsAccepted,
	}
}

// Directory routes frames to routers by DevAddr (sessions) or DevEUI
// (joins) — the blockchain filter-list lookup (§2.2).
type Directory struct {
	mu      sync.Mutex
	routers []*Router
}

// NewDirectory builds a directory over the given routers.
func NewDirectory(routers ...*Router) *Directory {
	return &Directory{routers: routers}
}

// Add registers another router.
func (d *Directory) Add(r *Router) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.routers = append(d.routers, r)
}

// LookupRouter implements hotspot.RouterDirectory.
func (d *Directory) LookupRouter(addr lorawan.DevAddr, devEUI lorawan.EUI64) (hotspot.PacketBuyer, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.routers {
		if r.OwnsDevAddr(addr) {
			return r, true
		}
	}
	// Join requests carry no DevAddr; route by DevEUI.
	var zero lorawan.EUI64
	if devEUI != zero {
		for _, r := range d.routers {
			if r.OwnsDevEUI(devEUI) {
				return r, true
			}
		}
	}
	return nil, false
}

// String describes the directory.
func (d *Directory) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return fmt.Sprintf("directory(%d routers)", len(d.routers))
}
