package router

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/chainkey"
	"peoplesnet/internal/lorawan"
	"peoplesnet/internal/statechannel"
	"peoplesnet/internal/stats"
)

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rng := stats.NewRNG(99)
	if cfg.Keys == nil {
		cfg.Keys = chainkey.Generate(rng)
	}
	if cfg.OUI == 0 {
		cfg.OUI = 1
	}
	if cfg.Owner == "" {
		cfg.Owner = "console"
	}
	return New(cfg, rng)
}

var (
	devEUI = lorawan.EUIFromUint64(0x70B3D57ED0001234)
	appEUI = lorawan.EUIFromUint64(0x70B3D57ED0000001)
)

func testAppKey() lorawan.AppKey {
	var k lorawan.AppKey
	copy(k[:], "sixteen-byte-key")
	return k
}

// join performs OTAA and returns the assigned DevAddr and session keys.
func join(t *testing.T, r *Router) (lorawan.DevAddr, lorawan.SessionKeys) {
	t.Helper()
	key := testAppKey()
	jr := &lorawan.Frame{MType: lorawan.JoinRequestType, AppEUI: appEUI, DevEUI: devEUI, DevNonce: 1}
	wire := jr.Marshal(key[:])
	p, ok := r.OfferPacket(statechannel.Offer{Hotspot: "hs1", PacketID: "join-1", Bytes: len(wire)})
	if !ok {
		t.Fatal("join offer rejected")
	}
	dl, window := r.ReleasePacket(p, wire)
	if dl == nil || window == 0 {
		t.Fatal("no join accept")
	}
	accept, err := lorawan.Parse(dl)
	if err != nil || accept.MType != lorawan.JoinAcceptType {
		t.Fatalf("join accept = %+v, %v", accept, err)
	}
	if err := accept.Verify(key[:]); err != nil {
		t.Fatal("join accept MIC invalid")
	}
	return accept.DevAddr, lorawan.DeriveSessionKeys(key, 1, accept.JoinNonce)
}

func uplink(addr lorawan.DevAddr, keys lorawan.SessionKeys, fcnt uint16, confirmed bool, payload []byte) []byte {
	mt := lorawan.UnconfirmedDataUp
	if confirmed {
		mt = lorawan.ConfirmedDataUp
	}
	f := &lorawan.Frame{MType: mt, DevAddr: addr, FCnt: fcnt, FPort: 1, Payload: payload}
	return f.Marshal(keys.NwkSKey[:])
}

func TestJoinFlow(t *testing.T) {
	r := newTestRouter(t, Config{})
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "alice"})
	addr, _ := join(t, r)
	if !r.OwnsDevAddr(addr) {
		t.Fatal("session not registered")
	}
	if !r.OwnsDevEUI(devEUI) {
		t.Fatal("device not registered")
	}
	if r.Stats().JoinsAccepted != 1 {
		t.Fatal("join not counted")
	}
}

func TestJoinRejectsUnknownDeviceAndBadMIC(t *testing.T) {
	r := newTestRouter(t, Config{})
	key := testAppKey()
	// Unknown device.
	jr := &lorawan.Frame{MType: lorawan.JoinRequestType, AppEUI: appEUI, DevEUI: devEUI, DevNonce: 1}
	p, _ := r.OfferPacket(statechannel.Offer{Hotspot: "h", PacketID: "x", Bytes: 23})
	if dl, _ := r.ReleasePacket(p, jr.Marshal(key[:])); dl != nil {
		t.Fatal("unknown device joined")
	}
	// Known device, wrong key.
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "alice"})
	wire := jr.Marshal([]byte("wrong-key-000000"))
	p2, _ := r.OfferPacket(statechannel.Offer{Hotspot: "h", PacketID: "y", Bytes: len(wire)})
	if dl, _ := r.ReleasePacket(p2, wire); dl != nil {
		t.Fatal("bad MIC joined")
	}
}

func TestConfirmedUplinkGetsAck(t *testing.T) {
	r := newTestRouter(t, Config{LatencySampler: func() float64 { return 0.3 }})
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "alice"})
	integ := &MemoryIntegration{}
	r.SetIntegration(integ)
	addr, keys := join(t, r)

	wire := uplink(addr, keys, 1, true, []byte{0xAB})
	p, ok := r.OfferPacket(statechannel.Offer{Hotspot: "hs1", PacketID: "p1", Bytes: len(wire), DevAddr: uint32(addr)})
	if !ok {
		t.Fatal("offer rejected")
	}
	dl, window := r.ReleasePacket(p, wire)
	if dl == nil || window != 1 {
		t.Fatalf("ack = %v window %d", dl, window)
	}
	ack, _ := lorawan.Parse(dl)
	if !ack.FCtrl.ACK || ack.DevAddr != addr || ack.FCnt != 1 {
		t.Fatalf("ack frame = %+v", ack)
	}
	if integ.Count() != 1 || !bytes.Equal(integ.Messages()[0].Payload, []byte{0xAB}) {
		t.Fatalf("integration got %+v", integ.Messages())
	}
	st := r.Stats()
	if st.AcksRX1 != 1 || st.PacketsToApp != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLatencyWindows(t *testing.T) {
	lat := 0.0
	r := newTestRouter(t, Config{LatencySampler: func() float64 { return lat }})
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "u"})
	addr, keys := join(t, r)
	cases := []struct {
		latency float64
		window  int
	}{
		{0.5, 1}, {1.5, 2}, {2.5, 0},
	}
	for i, c := range cases {
		lat = c.latency
		wire := uplink(addr, keys, uint16(10+i), true, []byte{1})
		p, _ := r.OfferPacket(statechannel.Offer{Hotspot: "h", PacketID: string(rune('a' + i)), Bytes: len(wire), DevAddr: uint32(addr)})
		dl, window := r.ReleasePacket(p, wire)
		if window != c.window {
			t.Fatalf("latency %v: window = %d, want %d", c.latency, window, c.window)
		}
		if (c.window == 0) != (dl == nil) {
			t.Fatalf("latency %v: dl presence mismatch", c.latency)
		}
	}
	st := r.Stats()
	if st.AcksRX1 < 1 || st.AcksRX2 != 1 || st.AcksMissed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplicateCopyPurchasedOnceDelivered(t *testing.T) {
	r := newTestRouter(t, Config{MaxCopies: 3})
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "u"})
	integ := &MemoryIntegration{}
	r.SetIntegration(integ)
	addr, keys := join(t, r)
	wire := uplink(addr, keys, 7, false, []byte{1, 2})
	// Three hotspots heard the same packet.
	for _, hs := range []string{"hs-a", "hs-b", "hs-c"} {
		p, ok := r.OfferPacket(statechannel.Offer{Hotspot: hs, PacketID: "same-packet", Bytes: len(wire), DevAddr: uint32(addr)})
		if !ok {
			t.Fatalf("copy from %s rejected", hs)
		}
		r.ReleasePacket(p, wire)
	}
	// A fourth copy exceeds MaxCopies.
	if _, ok := r.OfferPacket(statechannel.Offer{Hotspot: "hs-d", PacketID: "same-packet", Bytes: len(wire), DevAddr: uint32(addr)}); ok {
		t.Fatal("fourth copy bought")
	}
	if integ.Count() != 1 {
		t.Fatalf("app deliveries = %d, want 1", integ.Count())
	}
	if got := r.Stats().PacketsBought; got != 4 { // join + 3 copies
		t.Fatalf("bought = %d", got)
	}
}

func TestUserChargingAndCutoff(t *testing.T) {
	r := newTestRouter(t, Config{ChargeUsers: true})
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "alice"})
	r.FundUser("alice", 2)
	addr, keys := join(t, r)
	for i := 0; i < 2; i++ {
		wire := uplink(addr, keys, uint16(i+1), false, []byte{byte(i)})
		p, ok := r.OfferPacket(statechannel.Offer{Hotspot: "h", PacketID: string(rune('a' + i)), Bytes: len(wire), DevAddr: uint32(addr)})
		if !ok {
			t.Fatalf("packet %d rejected with balance %d", i, r.UserBalance("alice"))
		}
		r.ReleasePacket(p, wire)
	}
	if r.UserBalance("alice") != 0 {
		t.Fatalf("balance = %d", r.UserBalance("alice"))
	}
	// Broke user: offers refused.
	wire := uplink(addr, keys, 9, false, []byte{9})
	if _, ok := r.OfferPacket(statechannel.Offer{Hotspot: "h", PacketID: "z", Bytes: len(wire), DevAddr: uint32(addr)}); ok {
		t.Fatal("offer accepted for broke user")
	}
}

func TestBlocklistRefusesOffers(t *testing.T) {
	r := newTestRouter(t, Config{})
	r.Blocklist().Add("liar", "claimed unsent packets")
	if _, ok := r.OfferPacket(statechannel.Offer{Hotspot: "liar", PacketID: "p", Bytes: 10}); ok {
		t.Fatal("blocklisted hotspot's offer accepted")
	}
}

func TestChannelLifecycleTxns(t *testing.T) {
	r := newTestRouter(t, Config{ChannelLifetimeBlocks: 240, ChannelStakeDC: 10})
	// Initial pending: OUI registration.
	txns := r.PendingTxns()
	if len(txns) != 1 || txns[0].TxnType() != chain.TxnOUI {
		t.Fatalf("initial txns = %v", txns)
	}
	// First purchase opens a channel.
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "u"})
	join(t, r)
	txns = r.PendingTxns()
	if len(txns) != 1 || txns[0].TxnType() != chain.TxnStateChannelOpen {
		t.Fatalf("post-join txns = %v", txns)
	}
	// Exhausting the tiny stake rolls the channel: close + open.
	addr := lorawan.DevAddr(0) // unknown session is fine for Offer-only
	for i := 0; i < 12; i++ {
		r.OfferPacket(statechannel.Offer{Hotspot: "h", PacketID: string(rune(i)), Bytes: 24, DevAddr: uint32(addr)})
	}
	var kinds []chain.TxnType
	for _, tx := range r.PendingTxns() {
		kinds = append(kinds, tx.TxnType())
	}
	foundClose, foundOpen := false, false
	for _, k := range kinds {
		if k == chain.TxnStateChannelClose {
			foundClose = true
		}
		if k == chain.TxnStateChannelOpen {
			foundOpen = true
		}
	}
	if !foundClose || !foundOpen {
		t.Fatalf("channel roll txns = %v", kinds)
	}
	// Expiry close via OnBlock.
	r.OnBlock(10_000)
	txns = r.PendingTxns()
	if len(txns) != 1 || txns[0].TxnType() != chain.TxnStateChannelClose {
		t.Fatalf("expiry txns = %v", txns)
	}
	// CloseChannelNow with no channel is a no-op.
	r.CloseChannelNow()
	if len(r.PendingTxns()) != 0 {
		t.Fatal("spurious close")
	}
}

func TestHTTPIntegration(t *testing.T) {
	var got wireMessage
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		json.NewDecoder(req.Body).Decode(&got)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	integ := NewHTTPIntegration(srv.URL)
	err := integ.Deliver(AppMessage{UserID: "alice", FCnt: 3, FPort: 2, Payload: []byte{7}})
	if err != nil {
		t.Fatal(err)
	}
	if got.UserID != "alice" || got.FCnt != 3 || len(got.Payload) != 1 {
		t.Fatalf("posted = %+v", got)
	}
	// Failing endpoint reports an error.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	if err := NewHTTPIntegration(bad.URL).Deliver(AppMessage{}); err == nil {
		t.Fatal("500 not reported")
	}
}

func TestDirectoryRouting(t *testing.T) {
	r1 := newTestRouter(t, Config{OUI: 1, Owner: "console"})
	r2 := newTestRouter(t, Config{OUI: 3, Owner: "third-party"})
	r2.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "bob"})
	d := NewDirectory(r1)
	d.Add(r2)
	// Join routes by DevEUI to r2.
	buyer, ok := d.LookupRouter(0, devEUI)
	if !ok || buyer != hotspotBuyer(r2) {
		t.Fatal("join lookup failed")
	}
	// Data for an unknown address finds nothing.
	if _, ok := d.LookupRouter(0x12345678, lorawan.EUI64{}); ok {
		t.Fatal("unknown devaddr routed")
	}
	// After join, the address routes to r2.
	addr, _ := join(t, r2)
	buyer, ok = d.LookupRouter(addr, lorawan.EUI64{})
	if !ok || buyer != hotspotBuyer(r2) {
		t.Fatal("session lookup failed")
	}
	if d.String() != "directory(2 routers)" {
		t.Fatal(d.String())
	}
}

// hotspotBuyer adapts for interface comparison.
func hotspotBuyer(r *Router) interface {
	OfferPacket(statechannel.Offer) (statechannel.Purchase, bool)
} {
	return r
}

func TestRetransmissionSameFCnt(t *testing.T) {
	// A device that missed its ACK retransmits the same FCnt. The
	// router buys the copy (hotspots get paid), re-ACKs, but delivers
	// to the application only once (§5.1/§5.3's dedup caveat).
	r := newTestRouter(t, Config{LatencySampler: func() float64 { return 0.2 }})
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "u"})
	integ := &MemoryIntegration{}
	r.SetIntegration(integ)
	addr, keys := join(t, r)

	wire := uplink(addr, keys, 3, true, []byte{0xAA})
	for attempt := 0; attempt < 3; attempt++ {
		p, ok := r.OfferPacket(statechannel.Offer{
			Hotspot: "hs1", PacketID: "retx", Bytes: len(wire), DevAddr: uint32(addr),
		})
		if !ok {
			t.Fatalf("attempt %d rejected", attempt)
		}
		dl, window := r.ReleasePacket(p, wire)
		if dl == nil || window == 0 {
			t.Fatalf("attempt %d: no ACK", attempt)
		}
	}
	if integ.Count() != 1 {
		t.Fatalf("retransmissions delivered %d times", integ.Count())
	}
	st := r.Stats()
	if st.PacketsBought != 4 { // join + 3 copies
		t.Fatalf("bought = %d", st.PacketsBought)
	}
}

func TestFCntAdvanceRedelivers(t *testing.T) {
	// A new FCnt with fresh content is a new packet even on the same
	// session.
	r := newTestRouter(t, Config{})
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "u"})
	integ := &MemoryIntegration{}
	r.SetIntegration(integ)
	addr, keys := join(t, r)
	for fcnt := uint16(1); fcnt <= 3; fcnt++ {
		wire := uplink(addr, keys, fcnt, false, []byte{byte(fcnt)})
		p, _ := r.OfferPacket(statechannel.Offer{
			Hotspot: "hs", PacketID: string(rune('p' + fcnt)), Bytes: len(wire), DevAddr: uint32(addr),
		})
		r.ReleasePacket(p, wire)
	}
	if integ.Count() != 3 {
		t.Fatalf("delivered %d of 3 distinct packets", integ.Count())
	}
}

func TestHandleDemandArbitration(t *testing.T) {
	r := newTestRouter(t, Config{})
	r.RegisterDevice(Device{DevEUI: devEUI, AppEUI: appEUI, AppKey: testAppKey(), UserID: "u"})
	addr, keys := join(t, r)

	// Two hotspots sell copies; the router "accidentally" omits one
	// from its close.
	var victimPurchases []statechannel.Purchase
	for i := 0; i < 3; i++ {
		wire := uplink(addr, keys, uint16(i+1), false, []byte{byte(i)})
		p, ok := r.OfferPacket(statechannel.Offer{
			Hotspot: "victim", PacketID: string(rune('v' + i)), Bytes: len(wire), DevAddr: uint32(addr),
		})
		if !ok {
			t.Fatal("offer rejected")
		}
		r.ReleasePacket(p, wire)
		victimPurchases = append(victimPurchases, p)
	}
	r.CloseChannelNow()
	var cl *chain.StateChannelClose
	for _, tx := range r.PendingTxns() {
		if c, ok := tx.(*chain.StateChannelClose); ok {
			cl = c
		}
	}
	if cl == nil {
		t.Fatal("no close emitted")
	}
	// Strip the victim from the close to simulate the omission.
	var stripped chain.StateChannelClose
	stripped = *cl
	stripped.Summaries = nil
	for _, s := range cl.Summaries {
		if s.Hotspot != "victim" {
			stripped.Summaries = append(stripped.Summaries, s)
		}
	}

	// Valid demand inside the grace window: close amended, txn queued.
	demand := statechannel.Demand{Hotspot: "victim", ChannelID: cl.ID, Purchases: victimPurchases}
	amended, ok := r.HandleDemand(&stripped, demand, 100, 105)
	if !ok {
		t.Fatal("valid demand rejected")
	}
	found := false
	for _, s := range amended.Summaries {
		if s.Hotspot == "victim" && s.Packets == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("amended close = %+v", amended.Summaries)
	}
	if txns := r.PendingTxns(); len(txns) != 1 || txns[0].TxnType() != chain.TxnStateChannelClose {
		t.Fatalf("amended close not queued: %v", txns)
	}

	// Late demand: refused, no blocklist (the window simply closed).
	if _, ok := r.HandleDemand(&stripped, demand, 100, 200); ok {
		t.Fatal("late demand accepted")
	}
	if r.Blocklist().Blocked("victim") {
		t.Fatal("late demand blocklisted an honest hotspot")
	}

	// Forged demand: refused AND blocklisted (§5.1's only recourse).
	forged := demand
	forged.Hotspot = "liar"
	if _, ok := r.HandleDemand(&stripped, forged, 100, 105); ok {
		t.Fatal("forged demand accepted")
	}
	if !r.Blocklist().Blocked("liar") {
		t.Fatal("lying hotspot not blocklisted")
	}
	// And future offers from the liar are refused.
	if _, ok := r.OfferPacket(statechannel.Offer{Hotspot: "liar", PacketID: "zz", Bytes: 10}); ok {
		t.Fatal("blocklisted liar's offer accepted")
	}
}
