package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// MemoryIntegration buffers delivered messages in memory — the default
// application sink for simulations and tests.
type MemoryIntegration struct {
	mu   sync.Mutex
	msgs []AppMessage
}

// Deliver implements Integration.
func (m *MemoryIntegration) Deliver(msg AppMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.msgs = append(m.msgs, msg)
	return nil
}

// Messages returns a copy of everything delivered so far.
func (m *MemoryIntegration) Messages() []AppMessage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AppMessage(nil), m.msgs...)
}

// Count returns the number of delivered messages.
func (m *MemoryIntegration) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.msgs)
}

// HTTPIntegration POSTs each message as JSON to an endpoint — the
// Console's HTTP integration (§2.1: payloads reach application users
// "via HTTP (or numerous other means)").
type HTTPIntegration struct {
	URL    string
	Client *http.Client
}

// NewHTTPIntegration builds an HTTP integration with a short timeout.
func NewHTTPIntegration(url string) *HTTPIntegration {
	return &HTTPIntegration{
		URL:    url,
		Client: &http.Client{Timeout: 5 * time.Second},
	}
}

// wireMessage is the JSON shape posted to the application.
type wireMessage struct {
	UserID  string  `json:"user_id"`
	DevEUI  string  `json:"dev_eui"`
	DevAddr string  `json:"dev_addr"`
	FCnt    uint16  `json:"fcnt"`
	FPort   uint8   `json:"fport"`
	Payload []byte  `json:"payload"`
	Hotspot string  `json:"hotspot"`
	RSSI    float64 `json:"rssi"`
}

// Deliver implements Integration.
func (h *HTTPIntegration) Deliver(msg AppMessage) error {
	body, err := json.Marshal(wireMessage{
		UserID:  msg.UserID,
		DevEUI:  msg.DevEUI.String(),
		DevAddr: msg.DevAddr.String(),
		FCnt:    msg.FCnt,
		FPort:   msg.FPort,
		Payload: msg.Payload,
		Hotspot: msg.Hotspot,
		RSSI:    msg.RSSI,
	})
	if err != nil {
		return err
	}
	resp, err := h.Client.Post(h.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("router: integration endpoint returned %s", resp.Status)
	}
	return nil
}
