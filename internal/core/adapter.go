package core

import (
	"peoplesnet/internal/simnet"
)

// FromSimulation adapts a generated world into the analysis dataset,
// deriving the IP metadata the paper collects with zannotate/as2org
// from the simulated attachments.
func FromSimulation(res *simnet.Result) *Dataset {
	meta := make(map[string]HotspotMeta, len(res.World.Hotspots))
	for _, h := range res.World.Hotspots {
		m := HotspotMeta{
			City:    res.World.Cities[h.City].Name,
			Country: res.World.Cities[h.City].Country,
			NATed:   h.Attachment.NATed,
			Cloud:   h.Cloud,
			ASN:     h.Attachment.ASN,
		}
		if h.Attachment.ISP != nil {
			m.ISP = h.Attachment.ISP.Name
		}
		if h.Attachment.NATed {
			m.ASN = 0 // NAT'd hotspots are invisible to the IP census
		}
		meta[h.Address] = m
	}
	return &Dataset{
		Chain:     res.Chain,
		Peerbook:  res.Peerbook,
		Meta:      meta,
		PoCWeight: res.Cfg.PoCWeight,
	}
}
