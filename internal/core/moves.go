package core

import (
	"sort"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/stats"
)

// MoveRecord is one relocation: consecutive location assertions of a
// hotspot.
type MoveRecord struct {
	Hotspot    string
	FromBlock  int64
	ToBlock    int64
	From       geo.Point
	To         geo.Point
	DistanceKm float64
}

// MoveAnalysis reproduces §4.1: Figures 2 (moves per hotspot),
// 3 (move distances, long-distance classes, (0,0) artifacts), and
// 4 (block intervals between relocations).
type MoveAnalysis struct {
	Hotspots int

	// MovesPerHotspot is Fig 2. A "move" is an assertion after the
	// first.
	MovesPerHotspot *stats.Histogram
	NeverMovedFrac  float64
	AtMostTwoFrac   float64
	MoreThanFive    float64
	MaxMoves        int
	MaxMover        string

	// DistancesKm is Fig 3a/b; LongMoves lists every >500 km move
	// (Fig 3c).
	DistancesKm *stats.CDF
	LongMoves   []MoveRecord

	// IntervalBlocks is Fig 4.
	IntervalBlocks *stats.CDF
	WithinDayFrac  float64
	WithinWeekFrac float64
	WithinMoFrac   float64

	// (0,0) artifacts (§4.1).
	ZeroAssertions   int
	ZeroFirstAsserts int
	ZeroFirstFrac    float64
	StillAtZero      int
}

// AnalyzeMoves scans location histories out of the replayed ledger.
func (d *Dataset) AnalyzeMoves() MoveAnalysis {
	a := MoveAnalysis{
		MovesPerHotspot: stats.NewHistogram(),
		DistancesKm:     &stats.CDF{},
		IntervalBlocks:  &stats.CDF{},
	}
	for _, h := range d.Chain.Ledger().Hotspots() {
		hist := h.LocationHistory
		if len(hist) == 0 {
			continue // never asserted (validators)
		}
		a.Hotspots++
		moves := len(hist) - 1
		a.MovesPerHotspot.Observe(moves)
		if moves > a.MaxMoves {
			a.MaxMoves = moves
			a.MaxMover = h.Address
		}
		last := hist[len(hist)-1].Cell.Center()
		if last.IsZero() {
			a.StillAtZero++
		}
		for i, ev := range hist {
			p := ev.Cell.Center()
			// The H3 cell containing exactly (0,0) has a centroid a few
			// meters off; treat anything within one cell of null island
			// as a (0,0) assertion.
			if geo.HaversineKm(p, geo.Point{}) < 0.05 {
				a.ZeroAssertions++
				if i == 0 {
					a.ZeroFirstAsserts++
				}
			}
			if i == 0 {
				continue
			}
			from := hist[i-1].Cell.Center()
			dist := geo.HaversineKm(from, p)
			a.DistancesKm.Add(dist)
			a.IntervalBlocks.Add(float64(ev.Block - hist[i-1].Block))
			if dist > 500 {
				a.LongMoves = append(a.LongMoves, MoveRecord{
					Hotspot: h.Address, FromBlock: hist[i-1].Block, ToBlock: ev.Block,
					From: from, To: p, DistanceKm: dist,
				})
			}
		}
	}
	if a.Hotspots > 0 {
		a.NeverMovedFrac = a.MovesPerHotspot.FracExactly(0)
		a.AtMostTwoFrac = a.MovesPerHotspot.FracAtMost(2)
		a.MoreThanFive = a.MovesPerHotspot.FracMoreThan(5)
	}
	if a.ZeroAssertions > 0 {
		a.ZeroFirstFrac = float64(a.ZeroFirstAsserts) / float64(a.ZeroAssertions)
	}
	if a.IntervalBlocks.N() > 0 {
		a.WithinDayFrac = a.IntervalBlocks.P(chain.BlocksPerDay)
		a.WithinWeekFrac = a.IntervalBlocks.P(7 * chain.BlocksPerDay)
		a.WithinMoFrac = a.IntervalBlocks.P(30 * chain.BlocksPerDay)
	}
	sort.Slice(a.LongMoves, func(i, j int) bool { return a.LongMoves[i].DistanceKm > a.LongMoves[j].DistanceKm })
	return a
}

// GrowthAnalysis reproduces Fig 5 from the chain: hotspots added per
// day and cumulatively.
type GrowthAnalysis struct {
	Daily      *stats.TimeSeries // adds per day
	Cumulative *stats.TimeSeries
	Total      int64
	// PeakDaily is the largest single-day batch.
	PeakDaily float64
	// FinalRate is the mean adds/day over the last 30 days.
	FinalRate float64
	// ByMaker counts adds per hardware vendor — Fig 5's observation
	// that "new production runs ('batches') are quickly placed into
	// service" shows up as maker eras.
	ByMaker map[string]int64
	// FirstMakerDay records when each vendor's first unit appeared.
	FirstMakerDay map[string]int64
}

// AnalyzeGrowth buckets add_gateway transactions by day.
func (d *Dataset) AnalyzeGrowth() GrowthAnalysis {
	perDay := make(map[int64]float64)
	byMaker := make(map[string]int64)
	firstMaker := make(map[string]int64)
	var total int64
	d.Chain.ScanType(chain.TxnAddGateway, func(h int64, t chain.Txn) bool {
		day := h / chain.BlocksPerDay
		perDay[day]++
		total++
		if m := t.(*chain.AddGateway).Maker; m != "" {
			byMaker[m]++
			if cur, ok := firstMaker[m]; !ok || day < cur {
				firstMaker[m] = day
			}
		}
		return true
	})
	g := GrowthAnalysis{
		Daily:         stats.NewTimeSeries("hotspot adds/day"),
		Total:         total,
		ByMaker:       byMaker,
		FirstMakerDay: firstMaker,
	}
	for day, n := range perDay {
		g.Daily.Append(day, n)
		if n > g.PeakDaily {
			g.PeakDaily = n
		}
	}
	g.Daily.Sort()
	g.Cumulative = g.Daily.Cumulative()
	// Final 30-day rate.
	if n := g.Daily.Len(); n > 0 {
		lastDay := g.Daily.Xs[n-1]
		sum, days := 0.0, 0.0
		for i := n - 1; i >= 0 && g.Daily.Xs[i] > lastDay-30; i-- {
			sum += g.Daily.Ys[i]
			days++
		}
		if days > 0 {
			g.FinalRate = sum / days
		}
	}
	return g
}
