package core

import (
	"sort"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/h3lite"
	"peoplesnet/internal/stats"
)

// MoveRecord is one relocation: consecutive location assertions of a
// hotspot.
type MoveRecord struct {
	Hotspot    string
	FromBlock  int64
	ToBlock    int64
	From       geo.Point
	To         geo.Point
	DistanceKm float64
}

// MoveAnalysis reproduces §4.1: Figures 2 (moves per hotspot),
// 3 (move distances, long-distance classes, (0,0) artifacts), and
// 4 (block intervals between relocations).
type MoveAnalysis struct {
	Hotspots int

	// MovesPerHotspot is Fig 2. A "move" is an assertion after the
	// first.
	MovesPerHotspot *stats.Histogram
	NeverMovedFrac  float64
	AtMostTwoFrac   float64
	MoreThanFive    float64
	MaxMoves        int
	MaxMover        string

	// DistancesKm is Fig 3a/b; LongMoves lists every >500 km move
	// (Fig 3c).
	DistancesKm *stats.CDF
	LongMoves   []MoveRecord

	// IntervalBlocks is Fig 4.
	IntervalBlocks *stats.CDF
	WithinDayFrac  float64
	WithinWeekFrac float64
	WithinMoFrac   float64

	// (0,0) artifacts (§4.1).
	ZeroAssertions   int
	ZeroFirstAsserts int
	ZeroFirstFrac    float64
	StillAtZero      int
}

// moveTrack is the per-hotspot slice of MovesState: enough of the
// location history to extend it by one assertion.
type moveTrack struct {
	events    int
	prevPoint geo.Point
	prevBlock int64
	atZero    bool
}

// MovesState is the §4.1 fold: it consumes add_gateway and
// assert_location transactions in chain order and maintains every
// Fig 2–4 aggregate incrementally. The batch path folds the whole
// chain; the live path extends the same state block by block.
type MovesState struct {
	tracks    map[string]*moveTrack
	hotspots  int
	perMoves  *stats.Histogram
	maxMoves  int
	maxMover  string
	dist      *stats.CDF
	intervals *stats.CDF
	longMoves []MoveRecord
	zeroAss   int
	zeroFirst int
	atZero    int
}

// NewMovesState returns an empty fold state.
func NewMovesState() *MovesState {
	return &MovesState{
		tracks:    make(map[string]*moveTrack),
		perMoves:  stats.NewHistogram(),
		dist:      &stats.CDF{},
		intervals: &stats.CDF{},
	}
}

// movesTxnTypes are the transaction types MovesState consumes.
var movesTxnTypes = []chain.TxnType{chain.TxnAddGateway, chain.TxnAssertLocation}

// ApplyTxn folds one transaction. Non-location transactions are
// ignored, as is an add_gateway that publishes no location (the ledger
// records no location event for those either).
func (st *MovesState) ApplyTxn(height int64, t chain.Txn) {
	switch v := t.(type) {
	case *chain.AddGateway:
		if v.Location != h3lite.InvalidCell {
			st.observe(v.Gateway, height, v.Location)
		}
	case *chain.AssertLocation:
		st.observe(v.Gateway, height, v.Location)
	default:
		// Every other transaction type leaves location state alone.
	}
}

// observe extends one hotspot's location history by one event,
// updating every aggregate the batch scan would have derived from the
// full history.
func (st *MovesState) observe(gw string, height int64, cell h3lite.Cell) {
	tr := st.tracks[gw]
	if tr == nil {
		tr = &moveTrack{}
		st.tracks[gw] = tr
		st.hotspots++
	}
	p := cell.Center()
	// The H3 cell containing exactly (0,0) has a centroid a few
	// meters off; treat anything within one cell of null island as a
	// (0,0) assertion.
	if geo.HaversineKm(p, geo.Point{}) < 0.05 {
		st.zeroAss++
		if tr.events == 0 {
			st.zeroFirst++
		}
	}
	exactZero := p.IsZero()
	if tr.events == 0 {
		st.perMoves.Observe(0)
		if exactZero {
			st.atZero++
		}
	} else {
		moves := tr.events // history length grows to events+1, so moves = events
		st.perMoves.Shift(moves-1, moves)
		if moves > st.maxMoves || (moves == st.maxMoves && gw < st.maxMover) {
			st.maxMoves = moves
			st.maxMover = gw
		}
		d := geo.HaversineKm(tr.prevPoint, p)
		st.dist.Add(d)
		st.intervals.Add(float64(height - tr.prevBlock))
		if d > 500 {
			st.longMoves = append(st.longMoves, MoveRecord{
				Hotspot: gw, FromBlock: tr.prevBlock, ToBlock: height,
				From: tr.prevPoint, To: p, DistanceKm: d,
			})
		}
		if tr.atZero != exactZero {
			if exactZero {
				st.atZero++
			} else {
				st.atZero--
			}
		}
	}
	tr.atZero = exactZero
	tr.prevPoint = p
	tr.prevBlock = height
	tr.events++
}

// TotalMoves returns the number of relocations folded so far (the
// windowed live views difference it per block).
func (st *MovesState) TotalMoves() int64 { return int64(st.dist.N()) }

// Finalize materializes the §4.1 analysis. The state is not consumed:
// aggregates are cloned, so a live view can keep folding after a
// snapshot.
func (st *MovesState) Finalize() MoveAnalysis {
	a := MoveAnalysis{
		Hotspots:         st.hotspots,
		MovesPerHotspot:  st.perMoves.Clone(),
		MaxMoves:         st.maxMoves,
		MaxMover:         st.maxMover,
		DistancesKm:      st.dist.Clone(),
		LongMoves:        append([]MoveRecord(nil), st.longMoves...),
		IntervalBlocks:   st.intervals.Clone(),
		ZeroAssertions:   st.zeroAss,
		ZeroFirstAsserts: st.zeroFirst,
		StillAtZero:      st.atZero,
	}
	if a.Hotspots > 0 {
		a.NeverMovedFrac = a.MovesPerHotspot.FracExactly(0)
		a.AtMostTwoFrac = a.MovesPerHotspot.FracAtMost(2)
		a.MoreThanFive = a.MovesPerHotspot.FracMoreThan(5)
	}
	if a.ZeroAssertions > 0 {
		a.ZeroFirstFrac = float64(a.ZeroFirstAsserts) / float64(a.ZeroAssertions)
	}
	if a.IntervalBlocks.N() > 0 {
		a.WithinDayFrac = a.IntervalBlocks.P(chain.BlocksPerDay)
		a.WithinWeekFrac = a.IntervalBlocks.P(7 * chain.BlocksPerDay)
		a.WithinMoFrac = a.IntervalBlocks.P(30 * chain.BlocksPerDay)
	}
	sort.Slice(a.LongMoves, func(i, j int) bool {
		mi, mj := a.LongMoves[i], a.LongMoves[j]
		if mi.DistanceKm != mj.DistanceKm {
			return mi.DistanceKm > mj.DistanceKm
		}
		if mi.Hotspot != mj.Hotspot {
			return mi.Hotspot < mj.Hotspot
		}
		return mi.ToBlock < mj.ToBlock
	})
	return a
}

// AnalyzeMoves folds the chain's location assertions from genesis —
// the same fold the live view runs incrementally, so the two agree
// bit for bit at equal heights.
func (d *Dataset) AnalyzeMoves() MoveAnalysis {
	st := NewMovesState()
	d.scanTypes(movesTxnTypes, func(h int64, t chain.Txn) bool {
		st.ApplyTxn(h, t)
		return true
	})
	return st.Finalize()
}

// GrowthAnalysis reproduces Fig 5 from the chain: hotspots added per
// day and cumulatively.
type GrowthAnalysis struct {
	Daily      *stats.TimeSeries // adds per day
	Cumulative *stats.TimeSeries
	Total      int64
	// PeakDaily is the largest single-day batch.
	PeakDaily float64
	// FinalRate is the mean adds/day over the last 30 days.
	FinalRate float64
	// ByMaker counts adds per hardware vendor — Fig 5's observation
	// that "new production runs ('batches') are quickly placed into
	// service" shows up as maker eras.
	ByMaker map[string]int64
	// FirstMakerDay records when each vendor's first unit appeared.
	FirstMakerDay map[string]int64
}

// GrowthState is the Fig 5 fold: add_gateway transactions bucketed by
// day, maker tallies, and the running peak.
type GrowthState struct {
	perDay     map[int64]float64
	byMaker    map[string]int64
	firstMaker map[string]int64
	total      int64
	peak       float64
}

// NewGrowthState returns an empty fold state.
func NewGrowthState() *GrowthState {
	return &GrowthState{
		perDay:     make(map[int64]float64),
		byMaker:    make(map[string]int64),
		firstMaker: make(map[string]int64),
	}
}

// ApplyTxn folds one transaction; anything but add_gateway is ignored.
func (st *GrowthState) ApplyTxn(height int64, t chain.Txn) {
	ag, ok := t.(*chain.AddGateway)
	if !ok {
		return
	}
	day := height / chain.BlocksPerDay
	st.perDay[day]++
	if st.perDay[day] > st.peak {
		st.peak = st.perDay[day]
	}
	st.total++
	if m := ag.Maker; m != "" {
		st.byMaker[m]++
		if cur, ok := st.firstMaker[m]; !ok || day < cur {
			st.firstMaker[m] = day
		}
	}
}

// Total returns the hotspots added so far.
func (st *GrowthState) Total() int64 { return st.total }

// Finalize materializes Fig 5. Maps are copied and the day series is
// rebuilt, so the state keeps folding after a snapshot.
func (st *GrowthState) Finalize() GrowthAnalysis {
	g := GrowthAnalysis{
		Daily:         stats.NewTimeSeries("hotspot adds/day"),
		Total:         st.total,
		PeakDaily:     st.peak,
		ByMaker:       make(map[string]int64, len(st.byMaker)),
		FirstMakerDay: make(map[string]int64, len(st.firstMaker)),
	}
	for m, n := range st.byMaker {
		g.ByMaker[m] = n
	}
	for m, d := range st.firstMaker {
		g.FirstMakerDay[m] = d
	}
	for day, n := range st.perDay {
		g.Daily.Append(day, n)
	}
	g.Daily.Sort()
	g.Cumulative = g.Daily.Cumulative()
	// Final 30-day rate.
	if n := g.Daily.Len(); n > 0 {
		lastDay := g.Daily.Xs[n-1]
		sum, days := 0.0, 0.0
		for i := n - 1; i >= 0 && g.Daily.Xs[i] > lastDay-30; i-- {
			sum += g.Daily.Ys[i]
			days++
		}
		if days > 0 {
			g.FinalRate = sum / days
		}
	}
	return g
}

// AnalyzeGrowth folds add_gateway transactions from genesis — the
// identical fold the live view extends per block.
func (d *Dataset) AnalyzeGrowth() GrowthAnalysis {
	st := NewGrowthState()
	d.Chain.ScanType(chain.TxnAddGateway, func(h int64, t chain.Txn) bool {
		st.ApplyTxn(h, t)
		return true
	})
	return st.Finalize()
}
