package core

import (
	"testing"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/simnet"
	"peoplesnet/internal/stats"
)

var cachedDataset *Dataset

// testDataset generates (once) a scaled world and adapts it.
func testDataset(t *testing.T) *Dataset {
	t.Helper()
	if cachedDataset == nil {
		res, err := simnet.Generate(simnet.TestConfig(99))
		if err != nil {
			t.Fatal(err)
		}
		cachedDataset = FromSimulation(res)
	}
	return cachedDataset
}

func TestChainSummary(t *testing.T) {
	d := testDataset(t)
	s := d.SummarizeChain()
	if s.TotalTxns == 0 || s.PoCTxns == 0 {
		t.Fatal("empty summary")
	}
	// §3: ~99.2% of transactions are PoC.
	if s.PoCFraction < 0.97 || s.PoCFraction > 0.9999 {
		t.Fatalf("PoC fraction = %v, want ≈0.992", s.PoCFraction)
	}
	if s.ByType[chain.TxnAddGateway] == 0 {
		t.Fatal("no add_gateway in mix")
	}
}

func TestMoveAnalysis(t *testing.T) {
	d := testDataset(t)
	a := d.AnalyzeMoves()
	if a.Hotspots == 0 {
		t.Fatal("no hotspots analyzed")
	}
	// Fig 2 shape: most hotspots never move; few move more than five
	// times.
	if a.NeverMovedFrac < 0.5 || a.NeverMovedFrac > 0.9 {
		t.Fatalf("never-moved = %v, want ≈0.72", a.NeverMovedFrac)
	}
	if a.AtMostTwoFrac < a.NeverMovedFrac {
		t.Fatal("CDF inconsistency")
	}
	if a.MoreThanFive > 0.1 {
		t.Fatalf("more-than-five = %v, want small", a.MoreThanFive)
	}
	// The 20-move outlier exists.
	if a.MaxMoves < 10 {
		t.Fatalf("max moves = %d, want the outlier", a.MaxMoves)
	}
	// Fig 3: both short and long moves appear; long moves include
	// intercontinental exports.
	if a.DistancesKm.N() == 0 {
		t.Fatal("no move distances")
	}
	if len(a.LongMoves) == 0 {
		t.Fatal("no >500 km moves")
	}
	if a.LongMoves[0].DistanceKm < 2000 {
		t.Fatalf("longest move only %v km; exports should cross oceans", a.LongMoves[0].DistanceKm)
	}
	// Fig 4: interval fractions are ordered and nontrivial.
	if !(a.WithinDayFrac <= a.WithinWeekFrac && a.WithinWeekFrac <= a.WithinMoFrac) {
		t.Fatal("interval fractions not monotone")
	}
	if a.WithinDayFrac < 0.05 || a.WithinMoFrac > 0.95 {
		t.Fatalf("interval fractions day=%v month=%v", a.WithinDayFrac, a.WithinMoFrac)
	}
	// (0,0) artifacts: mostly first-time assertions (paper: 89%).
	if a.ZeroAssertions == 0 {
		t.Fatal("no (0,0) assertions")
	}
	if a.ZeroFirstFrac < 0.6 {
		t.Fatalf("zero-first fraction = %v, want ≈0.89", a.ZeroFirstFrac)
	}
	// Nobody stays at (0,0) (paper: no online hotspots remain there
	// aside from unfixed initializations; our sim fixes all).
	if float64(a.StillAtZero) > float64(a.ZeroAssertions)*0.5 {
		t.Fatalf("%d hotspots stuck at (0,0)", a.StillAtZero)
	}
}

func TestGrowthAnalysis(t *testing.T) {
	d := testDataset(t)
	g := d.AnalyzeGrowth()
	if g.Total == 0 || g.Daily.Len() == 0 {
		t.Fatal("no growth data")
	}
	// Cumulative ends at the total.
	if got := g.Cumulative.Ys[g.Cumulative.Len()-1]; int64(got) != g.Total {
		t.Fatalf("cumulative end %v != total %d", got, g.Total)
	}
	// Exponential shape: final rate well above the early rate.
	early := g.Daily.Ys[0]
	if g.FinalRate < early {
		t.Fatalf("no growth acceleration: early %v final %v", early, g.FinalRate)
	}
}

func TestOwnershipAnalysis(t *testing.T) {
	d := testDataset(t)
	o := d.AnalyzeOwnership()
	if o.Owners == 0 {
		t.Fatal("no owners")
	}
	if o.OwnOneFrac < 0.4 {
		t.Fatalf("own-one = %v, want ≈0.62", o.OwnOneFrac)
	}
	if o.AtMostThree < 0.7 {
		t.Fatalf("at-most-three = %v, want ≈0.84", o.AtMostThree)
	}
	if o.MaxOwned < 20 {
		t.Fatalf("max owned = %d", o.MaxOwned)
	}
	if len(o.Bulk) == 0 {
		t.Fatal("no bulk owners")
	}
	// §4.3 classification finds both commercial fleets and pools.
	var commercial, pool int
	for _, b := range o.Bulk {
		switch b.Class {
		case LikelyCommercial:
			commercial++
		case LikelyMiningPool:
			pool++
		}
	}
	if commercial == 0 {
		t.Fatal("no likely-commercial owners found")
	}
	if pool == 0 {
		t.Fatal("no likely-mining-pool owners found")
	}
	if SmallHolder.String() == "" || InferredClass(99).String() != "unknown" {
		t.Fatal("class strings wrong")
	}
}

func TestResaleAnalysis(t *testing.T) {
	d := testDataset(t)
	r := d.AnalyzeResale(200)
	if r.TotalTransfers == 0 {
		t.Fatal("no transfers")
	}
	// Fig 7a: ≥95% of transferred hotspots change hands ≤2 times.
	if r.AtMostTwoFrac < 0.85 {
		t.Fatalf("at-most-two transfers = %v, want ≈0.954", r.AtMostTwoFrac)
	}
	// 95.8% zero-DC.
	if r.ZeroDCFrac < 0.9 {
		t.Fatalf("zero-DC = %v", r.ZeroDCFrac)
	}
	if r.TransferredFrac <= 0 || r.TransferredFrac > 0.2 {
		t.Fatalf("transferred fraction = %v, want ≈0.086", r.TransferredFrac)
	}
	if len(r.TopTraders) == 0 || r.TopTraders[0].Bought+r.TopTraders[0].Sold == 0 {
		t.Fatal("trader ranking empty")
	}
	if r.PerMonth.Len() == 0 {
		t.Fatal("no monthly series")
	}
	// Resale only exists after its introduction (~month 16).
	if r.PerMonth.Xs[0] < 15 {
		t.Fatalf("transfers before the feature existed (month %d)", r.PerMonth.Xs[0])
	}
}

func TestTrafficAnalysis(t *testing.T) {
	d := testDataset(t)
	tr := d.AnalyzeTraffic()
	if tr.TotalPackets == 0 || tr.PerClose.Len() == 0 {
		t.Fatal("no traffic")
	}
	// §5.2: Console dominates state-channel activity (81.18%).
	if tr.ConsoleShare < 0.6 || tr.ConsoleShare > 0.95 {
		t.Fatalf("console share = %v, want ≈0.81", tr.ConsoleShare)
	}
	// The arbitrage spike is detected in the right era (Aug–Sep 2020 ≈
	// blocks 545k–575k at 1440 blocks/day).
	if tr.SpikeStartBlock == 0 {
		t.Fatal("no spike found")
	}
	spikeDay := tr.SpikeStartBlock / chain.BlocksPerDay
	if spikeDay < 360 || spikeDay > 420 {
		t.Fatalf("spike at day %d, want ≈380", spikeDay)
	}
	if tr.FinalPktPerSec <= 0 {
		t.Fatal("no final traffic rate")
	}
}

func TestRouterAnalysis(t *testing.T) {
	d := testDataset(t)
	r := d.AnalyzeRouters()
	// Paper: 10 OUIs, OUI 1 and 2 are Helium's.
	if r.ConsoleOUIs != 2 {
		t.Fatalf("console OUIs = %d", r.ConsoleOUIs)
	}
	if r.OUIs != 2+len(r.ThirdPartyOUI) || r.OUIs < 4 {
		t.Fatalf("OUIs = %d", r.OUIs)
	}
}

func TestISPAnalysis(t *testing.T) {
	d := testDataset(t)
	a := d.AnalyzeISPs(15)
	if len(a.TopISPs) != 15 {
		t.Fatalf("top ISPs = %d rows", len(a.TopISPs))
	}
	// Table 1's head: at test scale the top spot can flip between the
	// big three within sampling noise, but the head must be the big
	// cable/fiber carriers and Spectrum must rank well above the
	// mid-table entrants.
	head := map[string]bool{a.TopISPs[0].ISP: true, a.TopISPs[1].ISP: true, a.TopISPs[2].ISP: true}
	if !head["Spectrum"] {
		t.Fatalf("Spectrum not in top 3: %+v", a.TopISPs[:3])
	}
	for _, big := range []string{"Spectrum", "Comcast", "Verizon"} {
		if !head[big] {
			t.Fatalf("%s not in top 3: %+v", big, a.TopISPs[:3])
		}
	}
	// Fig 9: many ASNs, heavy head.
	if len(a.ASNs) < 20 {
		t.Fatalf("ASNs = %d", len(a.ASNs))
	}
	if a.ASNs[0].Hotspots < a.ASNs[len(a.ASNs)-1].Hotspots {
		t.Fatal("ASN list not descending")
	}
	// §6.1: a large share of cities rely on one ASN.
	if a.Cities == 0 || a.SingleASNCities == 0 {
		t.Fatalf("city stats empty: %+v", a)
	}
	frac := float64(a.SingleASNCities) / float64(a.Cities)
	if frac < 0.2 {
		t.Fatalf("single-ASN city fraction = %v, want ≈0.40", frac)
	}
	if a.SingleASNMulti == 0 || a.SingleASNMulti > a.SingleASNCities {
		t.Fatalf("single-ASN multi = %d of %d", a.SingleASNMulti, a.SingleASNCities)
	}
	if a.CloudHotspots == 0 {
		t.Fatal("no cloud hotspots detected")
	}
}

func TestOutageImpact(t *testing.T) {
	d := testDataset(t)
	// Find any city with Spectrum presence for the LA-style case.
	best := OutageImpact{}
	for _, m := range d.Meta {
		if m.ISP == "Spectrum" && m.City != "" {
			o := d.AssessOutage(m.City, "Spectrum")
			if o.Affected > best.Affected {
				best = o
			}
		}
	}
	if best.Affected == 0 {
		t.Skip("no Spectrum city in this world")
	}
	if best.Fraction <= 0 || best.Fraction > 1 {
		t.Fatalf("impact = %+v", best)
	}
}

func TestRelayAnalysisKS(t *testing.T) {
	d := testDataset(t)
	a := d.AnalyzeRelays(5, stats.NewRNG(3))
	if a.Stats.Total == 0 || a.Stats.Relayed == 0 {
		t.Fatal("no relay data")
	}
	frac := a.Stats.RelayedFraction()
	if frac < 0.4 || frac > 0.7 {
		t.Fatalf("relayed fraction = %v, want ≈0.55", frac)
	}
	// Fig 11's conclusion: actual assignment is statistically
	// indistinguishable from random.
	if len(a.RandomTrials) != 5 {
		t.Fatalf("trials = %d", len(a.RandomTrials))
	}
	if a.MaxKS > 0.12 {
		t.Fatalf("KS vs random = %v; relay selection should look random", a.MaxKS)
	}
}

func TestIncentiveAudit(t *testing.T) {
	d := testDataset(t)
	audit := d.AuditIncentives(1, 100)
	// The sim plants silent movers; the audit must find at least one
	// by pure receipt geometry.
	if len(audit.SilentMovers) == 0 {
		t.Fatal("no silent movers found")
	}
	for _, f := range audit.SilentMovers {
		if f.MedianWitnessKm <= 100 {
			t.Fatalf("flagged mover below threshold: %+v", f)
		}
	}
	// RSSI forgers / absurd reporters exist and are flagged.
	if len(audit.LyingWitness) == 0 {
		t.Fatal("no lying witnesses found")
	}
}

func TestPoCWeightDefault(t *testing.T) {
	d := &Dataset{Chain: chain.NewChain(chain.DefaultGenesis)}
	if d.pocWeight() != 1 {
		t.Fatal("zero weight should default to 1")
	}
	s := d.SummarizeChain()
	if s.TotalTxns != 0 || s.PoCFraction != 0 {
		t.Fatal("empty chain summary wrong")
	}
}

func TestGrowthMakerEras(t *testing.T) {
	d := testDataset(t)
	g := d.AnalyzeGrowth()
	if len(g.ByMaker) < 3 {
		t.Fatalf("makers = %v", g.ByMaker)
	}
	// The original Helium batch precedes every third-party vendor.
	og, ok := g.FirstMakerDay["OG-Helium"]
	if !ok {
		t.Fatal("no original-batch hotspots")
	}
	for maker, first := range g.FirstMakerDay {
		if maker != "OG-Helium" && maker != "validator" && first < og {
			t.Fatalf("%s appeared (day %d) before the original batch (day %d)", maker, first, og)
		}
	}
}

func TestISPBanImpact(t *testing.T) {
	d := testDataset(t)
	ban := d.AssessISPBan("Spectrum", "US")
	if ban.CountryPublic == 0 || ban.VisibleAffected == 0 {
		t.Fatalf("ban impact empty: %+v", ban)
	}
	if ban.Fraction <= 0 || ban.Fraction > 0.7 {
		t.Fatalf("Spectrum impact = %v, want a substantial minority  [paper: ≥17%%]", ban.Fraction)
	}
	// A foreign ISP has no US exposure.
	if got := d.AssessISPBan("Virgin Media", "US"); got.VisibleAffected != 0 {
		t.Fatalf("Virgin Media in the US: %+v", got)
	}
}

func TestLightTransition(t *testing.T) {
	d := testDataset(t)
	none := d.AssessLightTransition(0)
	if none.VisibleAfter != none.VisibleBefore {
		t.Fatal("zero conversion changed visibility")
	}
	half := d.AssessLightTransition(0.5)
	frac := float64(half.VisibleAfter) / float64(half.VisibleBefore)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("half conversion left %v visible", frac)
	}
	if half.RelayedLost == 0 {
		t.Fatal("no relayed hotspots lost to the transition")
	}
	all := d.AssessLightTransition(1)
	if all.VisibleAfter != 0 {
		t.Fatalf("full conversion left %d visible", all.VisibleAfter)
	}
	empty := (&Dataset{}).AssessLightTransition(0.5)
	if empty.VisibleBefore != 0 {
		t.Fatal("nil peerbook mishandled")
	}
}

func TestBalanceHistoryHeuristic(t *testing.T) {
	d := testDataset(t)
	o := d.AnalyzeOwnership()
	// Find one pool and one commercial owner from the classifier.
	var pool, commercial string
	for _, b := range o.Bulk {
		if pool == "" && b.Class == LikelyMiningPool {
			pool = b.Address
		}
		if commercial == "" && b.Class == LikelyCommercial {
			commercial = b.Address
		}
	}
	if pool == "" || commercial == "" {
		t.Fatal("classifier found no pool/commercial pair")
	}
	poolTS := d.BalanceHistory(pool)
	commTS := d.BalanceHistory(commercial)
	if poolTS.Len() == 0 || commTS.Len() == 0 {
		t.Fatal("empty balance histories")
	}
	// §4.3: pools encash (sawtooth balance); application operators
	// accumulate.
	poolDraws := Encashes(poolTS)
	commDraws := Encashes(commTS)
	if poolDraws < 3 {
		t.Fatalf("pool drawdowns = %d, want a sawtooth", poolDraws)
	}
	if commDraws > poolDraws/2 {
		t.Fatalf("commercial drawdowns %d not clearly below pool's %d", commDraws, poolDraws)
	}
	// Reconstructed final balance matches the ledger.
	commTS.Sort()
	final := commTS.Ys[commTS.Len()-1]
	ledgerBal := float64(d.Chain.Ledger().GetAccount(commercial).HNTBones)
	if final != ledgerBal {
		t.Fatalf("reconstructed balance %v != ledger %v", final, ledgerBal)
	}
}
