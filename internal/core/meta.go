package core

import (
	"sort"

	"peoplesnet/internal/p2p"
	"peoplesnet/internal/stats"
)

// ISPAnalysis reproduces §6.1: Table 1, Fig 9, and the single-ASN
// city statistics, all from the dataset's IP metadata (only hotspots
// with public IPs count, as in the paper's zannotate pass).
type ISPAnalysis struct {
	// TopISPs is Table 1.
	TopISPs []ISPRow
	// ASNs is Fig 9, descending by count.
	ASNs []ASNRow
	// Cities with at least one public hotspot; SingleASNCities rely on
	// exactly one; SingleASNMulti have ≥2 hotspots on that single ASN.
	Cities          int
	SingleASNCities int
	SingleASNMulti  int
	CloudHotspots   int
	PublicHotspots  int
}

// ISPRow is one Table 1 row.
type ISPRow struct {
	ISP      string
	Hotspots int
}

// ASNRow is one Fig 9 point.
type ASNRow struct {
	ASN      uint32
	Hotspots int
}

// AnalyzeISPs tallies the metadata.
func (d *Dataset) AnalyzeISPs(topN int) ISPAnalysis {
	a := ISPAnalysis{}
	byISP := make(map[string]int)
	byASN := make(map[uint32]int)
	type cityStat struct {
		asns     map[uint32]bool
		hotspots int
	}
	cities := make(map[string]*cityStat)
	for _, m := range d.Meta {
		if m.Cloud {
			a.CloudHotspots++
		}
		if m.NATed || m.ASN == 0 {
			continue
		}
		a.PublicHotspots++
		byISP[m.ISP]++
		byASN[m.ASN]++
		if m.City != "" {
			cs := cities[m.City]
			if cs == nil {
				cs = &cityStat{asns: make(map[uint32]bool)}
				cities[m.City] = cs
			}
			cs.asns[m.ASN] = true
			cs.hotspots++
		}
	}
	for isp, n := range byISP {
		a.TopISPs = append(a.TopISPs, ISPRow{ISP: isp, Hotspots: n})
	}
	sort.Slice(a.TopISPs, func(i, j int) bool {
		if a.TopISPs[i].Hotspots != a.TopISPs[j].Hotspots {
			return a.TopISPs[i].Hotspots > a.TopISPs[j].Hotspots
		}
		return a.TopISPs[i].ISP < a.TopISPs[j].ISP
	})
	if topN > 0 && len(a.TopISPs) > topN {
		a.TopISPs = a.TopISPs[:topN]
	}
	for asn, n := range byASN {
		a.ASNs = append(a.ASNs, ASNRow{ASN: asn, Hotspots: n})
	}
	sort.Slice(a.ASNs, func(i, j int) bool {
		if a.ASNs[i].Hotspots != a.ASNs[j].Hotspots {
			return a.ASNs[i].Hotspots > a.ASNs[j].Hotspots
		}
		return a.ASNs[i].ASN < a.ASNs[j].ASN
	})
	for _, cs := range cities {
		a.Cities++
		if len(cs.asns) == 1 {
			a.SingleASNCities++
			if cs.hotspots >= 2 {
				a.SingleASNMulti++
			}
		}
	}
	return a
}

// OutageImpact reproduces the §6.1 Spectrum/Los Angeles case: how
// many of a city's hotspots ride the named ISP.
type OutageImpact struct {
	City         string
	ISP          string
	CityHotspots int
	Affected     int
	Fraction     float64
}

// AssessOutage counts a city's exposure to one provider.
func (d *Dataset) AssessOutage(city, isp string) OutageImpact {
	o := OutageImpact{City: city, ISP: isp}
	for _, m := range d.Meta {
		if m.City != city {
			continue
		}
		o.CityHotspots++
		if m.ISP == isp {
			o.Affected++
		}
	}
	if o.CityHotspots > 0 {
		o.Fraction = float64(o.Affected) / float64(o.CityHotspots)
	}
	return o
}

// BanImpact reproduces §9.1's legal thought experiment: if an ISP
// enforced its residential terms of service against Helium hotspots
// ("running any type of server"), what share of a country's fleet
// falls offline? The paper estimates "at least 17% of the US hotspots"
// for Spectrum — "at least" because NAT'd hotspots on the same ISP are
// invisible to the IP census, exactly as here.
type BanImpact struct {
	ISP     string
	Country string
	// VisibleAffected counts public-IP hotspots on the ISP;
	// CountryPublic is the public-IP denominator the paper uses.
	VisibleAffected int
	CountryPublic   int
	Fraction        float64
}

// AssessISPBan computes the §9.1 scenario for one provider.
func (d *Dataset) AssessISPBan(isp, country string) BanImpact {
	b := BanImpact{ISP: isp, Country: country}
	for _, m := range d.Meta {
		if m.Country != country || m.NATed || m.ASN == 0 {
			continue
		}
		b.CountryPublic++
		if m.ISP == isp {
			b.VisibleAffected++
		}
	}
	if b.CountryPublic > 0 {
		b.Fraction = float64(b.VisibleAffected) / float64(b.CountryPublic)
	}
	return b
}

// LightTransition quantifies the paper's footnote-10 warning: once
// HIP25 validators ship and hotspots convert to "light" nodes, only
// validators keep a fully connected p2p graph, and the §6 analyses
// lose sight of converted hotspots.
type LightTransition struct {
	ConvertFrac float64
	// VisibleBefore/After count peerbook entries observable by a
	// DeWi-style monitor.
	VisibleBefore int
	VisibleAfter  int
	// RelayedLost counts relayed (NAT'd) hotspots that disappear from
	// the relay analysis entirely.
	RelayedLost int
}

// AssessLightTransition simulates converting convertFrac of the swarm
// to light nodes (deterministically by peer-ID hash, so the result is
// reproducible without an RNG).
func (d *Dataset) AssessLightTransition(convertFrac float64) LightTransition {
	lt := LightTransition{ConvertFrac: convertFrac}
	if d.Peerbook == nil {
		return lt
	}
	threshold := uint32(convertFrac * 4294967295)
	for _, e := range d.Peerbook.Entries() {
		lt.VisibleBefore++
		h := fnv32(string(e.Peer))
		if h <= threshold {
			if e.Addr.Relayed() {
				lt.RelayedLost++
			}
			continue // converted: invisible
		}
		lt.VisibleAfter++
	}
	return lt
}

func fnv32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// RelayAnalysis reproduces §6.2 / Figures 10 and 11.
type RelayAnalysis struct {
	Stats p2p.RelayStats
	// RandomTrials holds the distance CDFs of the randomized
	// reassignments (Fig 11b).
	RandomTrials []*stats.CDF
	// MaxKS is the largest KS statistic between the actual distance
	// distribution and any random trial — small values mean the
	// network assigns relays randomly, the paper's conclusion.
	MaxKS float64
}

// AnalyzeRelays runs the peerbook analyses with nTrials randomized
// reassignments.
func (d *Dataset) AnalyzeRelays(nTrials int, rng *stats.RNG) RelayAnalysis {
	a := RelayAnalysis{Stats: p2p.AnalyzeRelays(d.Peerbook)}
	for i := 0; i < nTrials; i++ {
		trial := p2p.RandomizedAssignment(d.Peerbook, rng)
		a.RandomTrials = append(a.RandomTrials, trial)
		if ks := a.Stats.DistancesKm.KolmogorovSmirnov(trial); ks > a.MaxKS {
			a.MaxKS = ks
		}
	}
	return a
}
