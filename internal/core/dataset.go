// Package core is the paper's primary contribution re-implemented as
// a library: the measurement engine that turns a Helium ledger, a p2p
// peerbook, and IP-level metadata into every table and figure of the
// study — hotspot moves and growth (§4), ownership and resale (§4.3),
// traffic through state channels (§5), ISP/ASN concentration and relay
// topology (§6), incentive audits (§7), and coverage models (§8.2).
package core

import (
	"peoplesnet/internal/chain"
	"peoplesnet/internal/p2p"
)

// HotspotMeta is the side information the paper gathers outside the
// chain: the hotspot's IP-derived ASN and ISP (zannotate + as2org),
// its city, and whether it is NAT'd or cloud-hosted.
type HotspotMeta struct {
	City    string
	Country string
	ISP     string
	ASN     uint32
	NATed   bool
	Cloud   bool
}

// ChainView is the read surface the analyses consume. *chain.Chain
// implements it by scanning blocks; *etl.Store implements it over a
// segmented index, so the same analysis code resolves through posting
// lists and materialized aggregates instead of full rescans.
type ChainView interface {
	// Height of the last block (-1 if empty).
	Height() int64
	// FirstHeight of the first block (-1 if empty).
	FirstHeight() int64
	// TxnCount is the total number of transactions.
	TxnCount() int64
	// TxnMix counts transactions by type.
	TxnMix() map[chain.TxnType]int64
	// Ledger exposes the replayed ledger state.
	Ledger() *chain.Ledger
	// Scan visits every transaction in height order until fn returns
	// false.
	Scan(fn func(height int64, t chain.Txn) bool)
	// ScanType visits every transaction of one type in height order.
	ScanType(tt chain.TxnType, fn func(height int64, t chain.Txn) bool)
}

// ActorScanner is an optional ChainView extension: a view that can
// enumerate only the transactions mentioning one actor (a hotspot or
// wallet address). Analyses that walk a single wallet's history use it
// when available instead of scanning the whole chain.
type ActorScanner interface {
	ScanActor(actor string, fn func(height int64, t chain.Txn) bool)
}

// TypesScanner is an optional ChainView extension: a view that can
// enumerate the transactions of several types interleaved in chain
// order (height, then intra-block position). The fold-form analyses
// use it so batch and live paths consume transactions in the identical
// order — the property that makes their outputs bit-identical.
type TypesScanner interface {
	ScanTypes(tts []chain.TxnType, fn func(height int64, t chain.Txn) bool)
}

// scanTypes visits every transaction whose type is in tts, in chain
// order, through the view's TypesScanner when it has one and a
// filtered full scan otherwise.
func (d *Dataset) scanTypes(tts []chain.TxnType, fn func(height int64, t chain.Txn) bool) {
	if ts, ok := d.Chain.(TypesScanner); ok {
		ts.ScanTypes(tts, fn)
		return
	}
	want := make(map[chain.TxnType]bool, len(tts))
	for _, tt := range tts {
		want[tt] = true
	}
	d.Chain.Scan(func(h int64, t chain.Txn) bool {
		if !want[t.TxnType()] {
			return true
		}
		return fn(h, t)
	})
}

// Dataset bundles everything the analyses consume.
type Dataset struct {
	Chain    ChainView
	Peerbook *p2p.Peerbook
	// Meta maps hotspot address → measurement metadata. Analyses that
	// need it degrade gracefully when entries are missing.
	Meta map[string]HotspotMeta
	// PoCWeight is the notional number of real PoC transactions each
	// materialized receipt represents (1 for an unsampled chain).
	PoCWeight float64
}

// pocWeight returns the effective sampling weight.
func (d *Dataset) pocWeight() float64 {
	if d.PoCWeight <= 0 {
		return 1
	}
	return d.PoCWeight
}

// ChainSummary reproduces §3's headline numbers: total transactions
// and the PoC share.
type ChainSummary struct {
	TotalTxns    int64
	PoCTxns      int64
	PoCFraction  float64
	ByType       map[chain.TxnType]int64
	FirstBlock   int64
	HighestBlock int64
}

// SummaryState is the §3 transaction-mix fold: raw per-type counts
// plus the height extent. The batch path seeds it from a materialized
// TxnMix in O(types); the live path grows it one block at a time.
// Either way Finalize applies the PoC weighting exactly once, so there
// is a single implementation of the §3 math.
type SummaryState struct {
	counts     map[chain.TxnType]int64
	first, tip int64
}

// NewSummaryState returns an empty fold state.
func NewSummaryState() *SummaryState {
	return &SummaryState{counts: make(map[chain.TxnType]int64), first: -1, tip: -1}
}

// ApplyBlock folds one block's transactions into the mix.
func (st *SummaryState) ApplyBlock(b *chain.Block) {
	if st.first < 0 {
		st.first = b.Height
	}
	st.tip = b.Height
	for _, t := range b.Txns {
		st.counts[t.TxnType()]++
	}
}

// seed installs a precomputed mix and extent (the batch path).
func (st *SummaryState) seed(mix map[chain.TxnType]int64, first, tip int64) {
	for tt, n := range mix {
		st.counts[tt] += n
	}
	st.first, st.tip = first, tip
}

// Txns returns the raw (unweighted) transaction count folded so far.
func (st *SummaryState) Txns() int64 {
	var n int64
	for _, c := range st.counts {
		n += c
	}
	return n
}

// Finalize materializes the §3 summary, scaling sampled PoC
// transactions by the dataset's weight. The state is not consumed.
func (st *SummaryState) Finalize(pocWeight float64) ChainSummary {
	if pocWeight <= 0 {
		pocWeight = 1
	}
	s := ChainSummary{ByType: make(map[chain.TxnType]int64, len(st.counts)), HighestBlock: st.tip}
	if st.first >= 0 {
		s.FirstBlock = st.first
	}
	for tt, n := range st.counts {
		c := n
		if tt == chain.TxnPoCRequest || tt == chain.TxnPoCReceipt {
			c = int64(float64(n) * pocWeight)
			s.PoCTxns += c
		}
		s.ByType[tt] = c
		s.TotalTxns += c
	}
	if s.TotalTxns > 0 {
		s.PoCFraction = float64(s.PoCTxns) / float64(s.TotalTxns)
	}
	return s
}

// SummarizeChain computes the §3 transaction mix as a fold seeded from
// the view's materialized aggregate (O(types), not O(chain)).
func (d *Dataset) SummarizeChain() ChainSummary {
	st := NewSummaryState()
	st.seed(d.Chain.TxnMix(), d.Chain.FirstHeight(), d.Chain.Height())
	return st.Finalize(d.pocWeight())
}
