package core

import (
	"sort"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/stats"
)

// OwnerProfile is the per-wallet view §4.3 works from.
type OwnerProfile struct {
	Address     string
	Hotspots    int
	HNTBones    int64
	DataPackets int64
	// Cities the owner's hotspots sit in (geographic spread, Fig 6).
	Cities int
	// Class is the §4.3 inference: commercial operators carry data
	// and hold HNT; mining pools hold many hotspots, carry no data,
	// and encash.
	Class InferredClass
}

// InferredClass is the behavioural classification of §4.3.
type InferredClass int

// Inferred owner classes.
const (
	SmallHolder InferredClass = iota // ≤3 hotspots
	LikelyCommercial
	LikelyMiningPool
	LargeHolder // many hotspots, indeterminate
)

func (c InferredClass) String() string {
	switch c {
	case SmallHolder:
		return "small-holder"
	case LikelyCommercial:
		return "likely-commercial"
	case LikelyMiningPool:
		return "likely-mining-pool"
	case LargeHolder:
		return "large-holder"
	default:
		return "unknown"
	}
}

// OwnershipAnalysis reproduces §4.3's decentralization statistics.
type OwnershipAnalysis struct {
	Owners       int
	Hotspots     int
	PerOwner     *stats.Histogram
	OwnOneFrac   float64
	OwnTwoFrac   float64
	OwnThreeFrac float64
	AtMostThree  float64
	FiveOrMore   float64
	MaxOwned     int
	MaxOwner     string
	// Bulk owners sorted by fleet size (input to Fig 6 and the §4.3.1
	// commercial identification).
	Bulk []OwnerProfile
}

// AnalyzeOwnership tallies hotspots per wallet from the ledger and
// classifies bulk owners by the paper's balance/data heuristics.
func (d *Dataset) AnalyzeOwnership() OwnershipAnalysis {
	return AnalyzeOwnershipLedger(d.Chain.Ledger(), d.Meta)
}

// AnalyzeOwnershipLedger is the §4.3 computation over any replayed
// ledger. The live view calls it against its replica ledger — the
// ledger itself is the incremental state, so both paths run this one
// O(hotspots) walk at snapshot time. Ties (largest owner, equal fleet
// sizes in Bulk) break toward the smaller address so the result is
// identical regardless of map iteration order.
func AnalyzeOwnershipLedger(ledger *chain.Ledger, meta map[string]HotspotMeta) OwnershipAnalysis {
	type acc struct {
		hotspots int
		data     int64
		cities   map[string]bool
	}
	owners := make(map[string]*acc)
	for _, h := range ledger.Hotspots() {
		a := owners[h.Owner]
		if a == nil {
			a = &acc{cities: make(map[string]bool)}
			owners[h.Owner] = a
		}
		a.hotspots++
		a.data += h.DataPackets
		if m, ok := meta[h.Address]; ok {
			a.cities[m.City] = true
		}
	}
	o := OwnershipAnalysis{PerOwner: stats.NewHistogram()}
	for addr, a := range owners {
		o.Owners++
		o.Hotspots += a.hotspots
		o.PerOwner.Observe(a.hotspots)
		if a.hotspots > o.MaxOwned || (a.hotspots == o.MaxOwned && addr < o.MaxOwner) {
			o.MaxOwned = a.hotspots
			o.MaxOwner = addr
		}
		if a.hotspots >= 10 {
			p := OwnerProfile{
				Address:     addr,
				Hotspots:    a.hotspots,
				HNTBones:    ledger.GetAccount(addr).HNTBones,
				DataPackets: a.data,
				Cities:      len(a.cities),
			}
			p.Class = classifyOwner(p)
			o.Bulk = append(o.Bulk, p)
		}
	}
	if o.Owners > 0 {
		o.OwnOneFrac = o.PerOwner.FracExactly(1)
		o.OwnTwoFrac = o.PerOwner.FracExactly(2)
		o.OwnThreeFrac = o.PerOwner.FracExactly(3)
		o.AtMostThree = o.PerOwner.FracAtMost(3)
		o.FiveOrMore = o.PerOwner.FracMoreThan(4)
	}
	sort.Slice(o.Bulk, func(i, j int) bool {
		if o.Bulk[i].Hotspots != o.Bulk[j].Hotspots {
			return o.Bulk[i].Hotspots > o.Bulk[j].Hotspots
		}
		return o.Bulk[i].Address < o.Bulk[j].Address
	})
	return o
}

// classifyOwner applies §4.3's inference: data movers holding HNT look
// commercial; sizeable fleets that never engage in data transactions
// look like coverage-mining pools (their balances stay low relative to
// earnings because they encash, but an absolute balance test is too
// brittle — a pool's unswept week of rewards can be large).
func classifyOwner(p OwnerProfile) InferredClass {
	switch {
	case p.DataPackets > 0 && p.HNTBones > 100*chain.BonesPerHNT:
		return LikelyCommercial
	case p.DataPackets == 0 && p.Hotspots >= 20:
		return LikelyMiningPool
	default:
		return LargeHolder
	}
}

// BalanceHistory reconstructs a wallet's HNT balance over time from
// the chain — the "common inference from HNT balances over time"
// methodology of §4.3: application operators' balances climb and stay;
// pool operators' balances sawtooth as they encash.
func (d *Dataset) BalanceHistory(owner string) *stats.TimeSeries {
	ts := stats.NewTimeSeries("HNT balance (bones): " + owner)
	var balance int64
	// An indexed view walks only the owner's posting list instead of
	// the whole chain; the switch below filters identically either way.
	scan := d.Chain.Scan
	if as, ok := d.Chain.(ActorScanner); ok {
		scan = func(fn func(height int64, t chain.Txn) bool) { as.ScanActor(owner, fn) }
	}
	scan(func(h int64, t chain.Txn) bool {
		before := balance
		switch v := t.(type) {
		case *chain.SecurityCoinbase:
			if v.Payee == owner {
				balance += v.AmountBones
			}
		case *chain.Rewards:
			for _, e := range v.Entries {
				if e.Account == owner {
					balance += e.AmountBones
				}
			}
		case *chain.Payment:
			if v.Payer == owner {
				balance -= v.AmountBones
			}
			if v.Payee == owner {
				balance += v.AmountBones
			}
		case *chain.TokenBurn:
			if v.Payer == owner {
				balance -= v.AmountBones
			}
		case *chain.TransferHotspot:
			if v.AmountBones > 0 {
				if v.Buyer == owner {
					balance -= v.AmountBones
				}
				if v.Seller == owner {
					balance += v.AmountBones
				}
			}
		case *chain.StakeValidator:
			if v.Owner == owner {
				balance -= chain.StakeValidatorBones
			}
		default:
			// Gateway, PoC, OUI, routing, and state-channel txns move
			// DC or state, never an HNT balance.
		}
		if balance != before {
			ts.Append(h, float64(balance))
		}
		return true
	})
	return ts
}

// Encashes applies the §4.3 heuristic to a balance history: a wallet
// that repeatedly sheds most of its accumulated balance is cashing
// out. It reports how many large drawdowns (≥50% of the running peak)
// occurred.
func Encashes(ts *stats.TimeSeries) (drawdowns int) {
	ts.Sort()
	peak := 0.0
	for _, y := range ts.Ys {
		if y > peak {
			peak = y
		}
		if peak > 0 && y < peak*0.5 {
			drawdowns++
			peak = y // re-arm on the new base
		}
	}
	return
}

// ResaleAnalysis reproduces §4.3.3 / Fig 7.
type ResaleAnalysis struct {
	TotalTransfers      int64
	TransferredHotspots int
	TransferredFrac     float64
	// TransfersPerHotspot is Fig 7a.
	TransfersPerHotspot *stats.Histogram
	AtMostTwoFrac       float64
	// TopTraders is Fig 7b: the most active buyers/sellers.
	TopTraders []TraderProfile
	// PerMonth is Fig 7c: transfer transactions over time (x = month
	// index from genesis).
	PerMonth *stats.TimeSeries
	// ZeroDCFrac: transfers with no on-chain payment (95.8%).
	ZeroDCFrac float64
}

// TraderProfile counts one wallet's resale activity.
type TraderProfile struct {
	Address string
	Bought  int
	Sold    int
}

// ResaleState is the §4.3.3 fold: transfer_hotspot transactions
// tallied per hotspot, per trader, and per month.
type ResaleState struct {
	total      int64
	zero       int64
	perHotspot map[string]int
	traders    map[string]*TraderProfile
	perMonth   map[int64]float64
}

// NewResaleState returns an empty fold state.
func NewResaleState() *ResaleState {
	return &ResaleState{
		perHotspot: make(map[string]int),
		traders:    make(map[string]*TraderProfile),
		perMonth:   make(map[int64]float64),
	}
}

// ApplyTxn folds one transaction; anything but transfer_hotspot is
// ignored.
func (st *ResaleState) ApplyTxn(height int64, t chain.Txn) {
	tr, ok := t.(*chain.TransferHotspot)
	if !ok {
		return
	}
	st.total++
	st.perHotspot[tr.Gateway]++
	if tr.AmountBones == 0 {
		st.zero++
	}
	for _, who := range []struct {
		addr string
		sell bool
	}{{tr.Seller, true}, {tr.Buyer, false}} {
		tp := st.traders[who.addr]
		if tp == nil {
			tp = &TraderProfile{Address: who.addr}
			st.traders[who.addr] = tp
		}
		if who.sell {
			tp.Sold++
		} else {
			tp.Bought++
		}
	}
	st.perMonth[height/(30*chain.BlocksPerDay)]++
}

// Total returns the transfers folded so far.
func (st *ResaleState) Total() int64 { return st.total }

// Finalize materializes Fig 7 against the given total hotspot count
// (the denominator of TransferredFrac comes from the ledger, not the
// fold). The state keeps folding after a snapshot. The trader ranking
// is totally ordered (activity, then address), so the topN cut is
// deterministic.
func (st *ResaleState) Finalize(topN, hotspotCount int) ResaleAnalysis {
	r := ResaleAnalysis{
		TotalTransfers:      st.total,
		TransfersPerHotspot: stats.NewHistogram(),
		PerMonth:            stats.NewTimeSeries("hotspot transfers/month"),
	}
	for _, n := range st.perHotspot {
		r.TransfersPerHotspot.Observe(n)
	}
	r.TransferredHotspots = len(st.perHotspot)
	if hotspotCount > 0 {
		r.TransferredFrac = float64(r.TransferredHotspots) / float64(hotspotCount)
	}
	if r.TotalTransfers > 0 {
		r.ZeroDCFrac = float64(st.zero) / float64(r.TotalTransfers)
		r.AtMostTwoFrac = r.TransfersPerHotspot.FracAtMost(2)
	}
	for m, n := range st.perMonth {
		r.PerMonth.Append(m, n)
	}
	r.PerMonth.Sort()
	for _, tp := range st.traders {
		r.TopTraders = append(r.TopTraders, *tp)
	}
	sort.Slice(r.TopTraders, func(i, j int) bool {
		ti, tj := r.TopTraders[i], r.TopTraders[j]
		if ti.Bought+ti.Sold != tj.Bought+tj.Sold {
			return ti.Bought+ti.Sold > tj.Bought+tj.Sold
		}
		return ti.Address < tj.Address
	})
	if topN > 0 && len(r.TopTraders) > topN {
		r.TopTraders = r.TopTraders[:topN]
	}
	return r
}

// AnalyzeResale folds transfer_hotspot transactions from genesis —
// the identical fold the live view extends per block.
func (d *Dataset) AnalyzeResale(topN int) ResaleAnalysis {
	st := NewResaleState()
	d.Chain.ScanType(chain.TxnTransferHotspot, func(h int64, t chain.Txn) bool {
		st.ApplyTxn(h, t)
		return true
	})
	return st.Finalize(topN, d.Chain.Ledger().HotspotCount())
}
