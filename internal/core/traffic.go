package core

import (
	"sort"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/stats"
)

// TrafficAnalysis reproduces §5 / Fig 8: packets per state-channel
// close over chain time, the Console's share, and the arbitrage
// spike.
type TrafficAnalysis struct {
	// PerClose is Fig 8: x = block height, y = packets in that close.
	PerClose *stats.TimeSeries
	// TotalPackets over the whole chain.
	TotalPackets int64
	// ConsoleShare is the fraction of close transactions belonging to
	// OUI 1 and 2 (§5.2: 81.18%).
	ConsoleShare float64
	// FinalPktPerSec is the aggregate user traffic rate over the last
	// week of the chain (paper: ≈14 pkt/s).
	FinalPktPerSec float64
	// SpikeStart/End bound the largest sustained traffic spike (the
	// §5.3.2 arbitrage window), in block heights; zero if none found.
	SpikeStartBlock int64
	SpikeEndBlock   int64
	SpikePeak       float64
}

// AnalyzeTraffic scans state-channel closes.
func (d *Dataset) AnalyzeTraffic() TrafficAnalysis {
	t := TrafficAnalysis{PerClose: stats.NewTimeSeries("packets per SC close")}
	// Map owner wallets to OUIs for the Console share.
	ouiOf := make(map[string]uint32)
	for _, o := range d.Chain.Ledger().OUIs() {
		if _, taken := ouiOf[o.Owner]; !taken || o.OUI < ouiOf[o.Owner] {
			ouiOf[o.Owner] = o.OUI
		}
	}
	var closes, consoleCloses int64
	var tip int64 = d.Chain.Height()
	var lastWeekPkts int64
	d.Chain.ScanType(chain.TxnStateChannelClose, func(h int64, tx chain.Txn) bool {
		cl := tx.(*chain.StateChannelClose)
		pkts := cl.TotalPackets()
		t.PerClose.Append(h, float64(pkts))
		t.TotalPackets += pkts
		closes++
		if oui := ouiOf[cl.Owner]; oui == 1 || oui == 2 {
			consoleCloses++
		}
		if h > tip-7*chain.BlocksPerDay {
			lastWeekPkts += pkts
		}
		return true
	})
	if closes > 0 {
		t.ConsoleShare = float64(consoleCloses) / float64(closes)
	}
	if tip > 0 {
		t.FinalPktPerSec = float64(lastWeekPkts) / (7 * 24 * 3600)
	}
	t.detectSpike()
	return t
}

// detectSpike finds the largest contiguous run of closes whose packet
// counts exceed 5× a *local* baseline (the median of a surrounding
// window). A local baseline is essential: organic traffic grows
// orders of magnitude over the timeline, so a global threshold would
// flag the healthy end of the series instead of the August 2020
// anomaly.
func (t *TrafficAnalysis) detectSpike() {
	t.PerClose.Sort()
	n := t.PerClose.Len()
	if n < 10 {
		return
	}
	const window = 150
	baseline := make([]float64, n)
	buf := make([]float64, 0, 2*window+1)
	for i := range baseline {
		lo, hi := i-window, i+window
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		buf = append(buf[:0], t.PerClose.Ys[lo:hi]...)
		sort.Float64s(buf)
		baseline[i] = buf[len(buf)/2]
		if baseline[i] <= 0 {
			baseline[i] = 1
		}
	}
	// Score each hot run by its excess volume above baseline and keep
	// the biggest. Scoring by run *length* would let the noisy early
	// chain (closes of a handful of packets over a baseline of one)
	// outrank the arbitrage anomaly.
	bestScore, curStart := 0.0, -1
	for i := 0; i <= n; i++ {
		hot := i < n && t.PerClose.Ys[i] > 5*baseline[i]
		if hot && curStart < 0 {
			curStart = i
		}
		if !hot && curStart >= 0 {
			score, peak := 0.0, 0.0
			for k := curStart; k < i; k++ {
				score += t.PerClose.Ys[k] - baseline[k]
				if t.PerClose.Ys[k] > peak {
					peak = t.PerClose.Ys[k]
				}
			}
			if score > bestScore {
				bestScore = score
				t.SpikeStartBlock = t.PerClose.Xs[curStart]
				t.SpikeEndBlock = t.PerClose.Xs[i-1]
				t.SpikePeak = peak
			}
			curStart = -1
		}
	}
}

// RouterAnalysis reproduces §5.2: who runs routers.
type RouterAnalysis struct {
	OUIs          int
	ConsoleOUIs   int
	ConsoleOwner  string
	ThirdPartyOUI []uint32
}

// AnalyzeRouters lists the OUI registry.
func (d *Dataset) AnalyzeRouters() RouterAnalysis {
	r := RouterAnalysis{}
	for _, o := range d.Chain.Ledger().OUIs() {
		r.OUIs++
		if o.OUI <= 2 {
			r.ConsoleOUIs++
			r.ConsoleOwner = o.Owner
		} else {
			r.ThirdPartyOUI = append(r.ThirdPartyOUI, o.OUI)
		}
	}
	return r
}
