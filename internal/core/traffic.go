package core

import (
	"sort"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/stats"
)

// TrafficAnalysis reproduces §5 / Fig 8: packets per state-channel
// close over chain time, the Console's share, and the arbitrage
// spike.
type TrafficAnalysis struct {
	// PerClose is Fig 8: x = block height, y = packets in that close.
	PerClose *stats.TimeSeries
	// TotalPackets over the whole chain.
	TotalPackets int64
	// ConsoleShare is the fraction of close transactions belonging to
	// OUI 1 and 2 (§5.2: 81.18%).
	ConsoleShare float64
	// FinalPktPerSec is the aggregate user traffic rate over the last
	// week of the chain (paper: ≈14 pkt/s).
	FinalPktPerSec float64
	// SpikeStart/End bound the largest sustained traffic spike (the
	// §5.3.2 arbitrage window), in block heights; zero if none found.
	SpikeStartBlock int64
	SpikeEndBlock   int64
	SpikePeak       float64
}

// trafficPoint is one state-channel close held in the trailing-week
// window.
type trafficPoint struct {
	height int64
	pkts   int64
}

// TrafficState is the §5 fold: per-close series, totals, per-owner
// close counts (the Console share is resolved against the ledger's
// OUI registry at finalize time, because an OUI may register after
// its first close), and a deque of the closes inside the trailing
// week of the current tip.
type TrafficState struct {
	perClose      *stats.TimeSeries
	totalPackets  int64
	closes        int64
	closesByOwner map[string]int64
	win           []trafficPoint
	winHead       int
	winSum        int64
}

// NewTrafficState returns an empty fold state.
func NewTrafficState() *TrafficState {
	return &TrafficState{
		perClose:      stats.NewTimeSeries("packets per SC close"),
		closesByOwner: make(map[string]int64),
	}
}

// ApplyTxn folds one transaction; anything but state_channel_close is
// ignored.
func (st *TrafficState) ApplyTxn(height int64, t chain.Txn) {
	cl, ok := t.(*chain.StateChannelClose)
	if !ok {
		return
	}
	pkts := cl.TotalPackets()
	st.perClose.Append(height, float64(pkts))
	st.totalPackets += pkts
	st.closes++
	st.closesByOwner[cl.Owner]++
	st.evict(height)
	st.win = append(st.win, trafficPoint{height, pkts})
	st.winSum += pkts
}

// evict drops window entries at or before tip minus one week. The tip
// only grows, so evicting against an intermediate height never drops
// an entry a later finalize would still want.
func (st *TrafficState) evict(tip int64) {
	cut := tip - 7*chain.BlocksPerDay
	for st.winHead < len(st.win) && st.win[st.winHead].height <= cut {
		st.winSum -= st.win[st.winHead].pkts
		st.winHead++
	}
	if st.winHead > len(st.win)/2 && st.winHead > 32 {
		st.win = append(st.win[:0:0], st.win[st.winHead:]...)
		st.winHead = 0
	}
}

// Finalize materializes §5 at the given tip, resolving the Console
// share against the ledger's OUI registry. The per-close series is
// cloned before the spike detector sorts it, so the state keeps
// folding after a snapshot.
func (st *TrafficState) Finalize(tip int64, ledger *chain.Ledger) TrafficAnalysis {
	t := TrafficAnalysis{
		PerClose:     st.perClose.Clone(),
		TotalPackets: st.totalPackets,
	}
	// Map owner wallets to OUIs for the Console share.
	ouiOf := make(map[string]uint32)
	for _, o := range ledger.OUIs() {
		if _, taken := ouiOf[o.Owner]; !taken || o.OUI < ouiOf[o.Owner] {
			ouiOf[o.Owner] = o.OUI
		}
	}
	var consoleCloses int64
	for owner, n := range st.closesByOwner {
		if oui := ouiOf[owner]; oui == 1 || oui == 2 {
			consoleCloses += n
		}
	}
	if st.closes > 0 {
		t.ConsoleShare = float64(consoleCloses) / float64(st.closes)
	}
	st.evict(tip)
	if tip > 0 {
		t.FinalPktPerSec = float64(st.winSum) / (7 * 24 * 3600)
	}
	t.detectSpike()
	return t
}

// AnalyzeTraffic folds state-channel closes from genesis — the
// identical fold the live view extends per block.
func (d *Dataset) AnalyzeTraffic() TrafficAnalysis {
	st := NewTrafficState()
	d.Chain.ScanType(chain.TxnStateChannelClose, func(h int64, tx chain.Txn) bool {
		st.ApplyTxn(h, tx)
		return true
	})
	return st.Finalize(d.Chain.Height(), d.Chain.Ledger())
}

// detectSpike finds the largest contiguous run of closes whose packet
// counts exceed 5× a *local* baseline (the median of a surrounding
// window). A local baseline is essential: organic traffic grows
// orders of magnitude over the timeline, so a global threshold would
// flag the healthy end of the series instead of the August 2020
// anomaly.
func (t *TrafficAnalysis) detectSpike() {
	t.PerClose.Sort()
	n := t.PerClose.Len()
	if n < 10 {
		return
	}
	const window = 150
	baseline := make([]float64, n)
	buf := make([]float64, 0, 2*window+1)
	for i := range baseline {
		lo, hi := i-window, i+window
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		buf = append(buf[:0], t.PerClose.Ys[lo:hi]...)
		sort.Float64s(buf)
		baseline[i] = buf[len(buf)/2]
		if baseline[i] <= 0 {
			baseline[i] = 1
		}
	}
	// Score each hot run by its excess volume above baseline and keep
	// the biggest. Scoring by run *length* would let the noisy early
	// chain (closes of a handful of packets over a baseline of one)
	// outrank the arbitrage anomaly.
	bestScore, curStart := 0.0, -1
	for i := 0; i <= n; i++ {
		hot := i < n && t.PerClose.Ys[i] > 5*baseline[i]
		if hot && curStart < 0 {
			curStart = i
		}
		if !hot && curStart >= 0 {
			score, peak := 0.0, 0.0
			for k := curStart; k < i; k++ {
				score += t.PerClose.Ys[k] - baseline[k]
				if t.PerClose.Ys[k] > peak {
					peak = t.PerClose.Ys[k]
				}
			}
			if score > bestScore {
				bestScore = score
				t.SpikeStartBlock = t.PerClose.Xs[curStart]
				t.SpikeEndBlock = t.PerClose.Xs[i-1]
				t.SpikePeak = peak
			}
			curStart = -1
		}
	}
}

// RouterAnalysis reproduces §5.2: who runs routers.
type RouterAnalysis struct {
	OUIs          int
	ConsoleOUIs   int
	ConsoleOwner  string
	ThirdPartyOUI []uint32
}

// AnalyzeRouters lists the OUI registry.
func (d *Dataset) AnalyzeRouters() RouterAnalysis {
	r := RouterAnalysis{}
	for _, o := range d.Chain.Ledger().OUIs() {
		r.OUIs++
		if o.OUI <= 2 {
			r.ConsoleOUIs++
			r.ConsoleOwner = o.Owner
		} else {
			r.ThirdPartyOUI = append(r.ThirdPartyOUI, o.OUI)
		}
	}
	return r
}
