package core

// MeasureOptions carries the analysis thresholds that used to be magic
// numbers at the Measure call site. The batch path (peoplesnet.Measure)
// and the live path (internal/live) share one value, so a dashboard and
// a report rendered from the same options agree on every cutoff.
type MeasureOptions struct {
	// ResaleTopN bounds the Fig 7b top-trader list.
	ResaleTopN int
	// ISPTopN bounds the Table 1 top-ISP list.
	ISPTopN int
	// PoCWeight, when positive, overrides the dataset's notional
	// transactions-per-sampled-receipt weight (used when measuring a
	// bare store with no World attached).
	PoCWeight float64
}

// DefaultMeasureOptions returns the paper's cutoffs: the top 200
// traders and the top 15 ISPs.
func DefaultMeasureOptions() MeasureOptions {
	return MeasureOptions{ResaleTopN: 200, ISPTopN: 15}
}

// Normalized fills zero fields with the defaults so a partially
// populated options value keeps the paper's cutoffs.
func (o MeasureOptions) Normalized() MeasureOptions {
	d := DefaultMeasureOptions()
	if o.ResaleTopN == 0 {
		o.ResaleTopN = d.ResaleTopN
	}
	if o.ISPTopN == 0 {
		o.ISPTopN = d.ISPTopN
	}
	return o
}
