package core

import (
	"sort"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/radio"
)

// SilentMoverFinding is one §7.1 case: a hotspot whose witnesses sit
// impossibly far from its asserted location.
type SilentMoverFinding struct {
	Hotspot string
	// AssertedAt is the on-chain location.
	AssertedAt geo.Point
	// WitnessCentroid is where its witnesses actually cluster.
	WitnessCentroid geo.Point
	// MedianWitnessKm is the median asserted-location→witness
	// distance across its receipts.
	MedianWitnessKm float64
	Receipts        int
}

// LyingWitnessFinding is one §7.2 case: a witness reporting physically
// impossible RSSI.
type LyingWitnessFinding struct {
	Witness   string
	MaxRSSI   float64
	Reports   int
	Absurd    int // reports above the EIRP ceiling
	TooStrong int // reports beating free-space at the asserted distance
}

// IncentiveAudit bundles §7's findings.
type IncentiveAudit struct {
	SilentMovers []SilentMoverFinding
	LyingWitness []LyingWitnessFinding
	// CliqueSuspects lists witness pairs that repeatedly "witness"
	// each other at distances beyond plausible radio range.
	CliqueSuspects []CliquePair
}

// CliquePair is a suspicious mutual-witnessing pair.
type CliquePair struct {
	A, B       string
	Count      int
	MeanDistKm float64
}

// AuditIncentives scans PoC receipts for the paper's two case-study
// patterns plus gossip-clique candidates. minReceipts is the number of
// *contradicting* receipts (median witness distance beyond silentKm)
// required before flagging a silent mover — one guards against radio
// flukes; silentKm is the distance beyond which witnessing is deemed
// physically impossible (the paper's examples are hundreds of km).
func (d *Dataset) AuditIncentives(minReceipts int, silentKm float64) IncentiveAudit {
	type moverAcc struct {
		asserted geo.Point
		// flagReceipts counts receipts whose *median* witness distance
		// exceeds silentKm; a silent mover's post-move receipts all
		// do, while pre-move history stays clean — so detection is
		// per-receipt, not lifetime-averaged (§7.1's method: match the
		// asserted location against where each challenge was actually
		// witnessed).
		flagReceipts int
		receipts     int
		worstMedian  float64
		sumLat       float64
		sumLon       float64
		nWit         int
	}
	movers := make(map[string]*moverAcc)
	type liarAcc struct {
		max       float64
		reports   int
		absurd    int
		tooStrong int
	}
	liars := make(map[string]*liarAcc)
	type pairKey struct{ a, b string }
	pairs := make(map[pairKey]*CliquePair)

	d.Chain.ScanType(chain.TxnPoCReceipt, func(_ int64, t chain.Txn) bool {
		r := t.(*chain.PoCReceipt)
		if !r.ChallengeeLocation.Valid() || len(r.Witnesses) == 0 {
			return true
		}
		asserted := r.ChallengeeLocation.Center()
		if asserted.IsZero() || geo.HaversineKm(asserted, geo.Point{}) < 0.05 {
			return true // (0,0) artifacts are a GPS failure, not a §7.1 cheat
		}
		acc := movers[r.Challengee]
		if acc == nil {
			acc = &moverAcc{}
			movers[r.Challengee] = acc
		}
		acc.asserted = asserted
		acc.receipts++
		var receiptDists []float64
		for _, w := range r.Witnesses {
			if !w.Location.Valid() {
				continue
			}
			wLoc := w.Location.Center()
			dist := geo.HaversineKm(asserted, wLoc)
			receiptDists = append(receiptDists, dist)
			acc.sumLat += wLoc.Lat
			acc.sumLon += wLoc.Lon
			acc.nWit++

			// Lying-witness heuristics.
			la := liars[w.Witness]
			if la == nil {
				la = &liarAcc{max: -999} // RSSIs are negative; 0 would mask them
				liars[w.Witness] = la
			}
			la.reports++
			if w.RSSIdBm > la.max {
				la.max = w.RSSIdBm
			}
			if w.RSSIdBm > radio.EIRPLimitDBm {
				la.absurd++
			} else if dist > 0.3 {
				best := 27.0 + 12 - radio.FSPLdB(dist, 915)
				if w.RSSIdBm > best+10 {
					la.tooStrong++
				}
			}

			// Repeated witnessing at beyond-plausible-radio range is the
			// gossip-clique signature (§7.2). The bar is far lower than
			// the silent-mover threshold: even elevated installs top out
			// well under 50 km, so repeated 15 km+ "receptions" between
			// the same pair are suspect.
			if dist > silentKm/6 {
				a, b := r.Challengee, w.Witness
				if a > b {
					a, b = b, a
				}
				p := pairs[pairKey{a, b}]
				if p == nil {
					p = &CliquePair{A: a, B: b}
					pairs[pairKey{a, b}] = p
				}
				p.Count++
				p.MeanDistKm += (dist - p.MeanDistKm) / float64(p.Count)
			}
		}
		if len(receiptDists) > 0 {
			sort.Float64s(receiptDists)
			med := receiptDists[len(receiptDists)/2]
			if med > silentKm {
				acc.flagReceipts++
				if med > acc.worstMedian {
					acc.worstMedian = med
				}
			}
		}
		return true
	})

	var audit IncentiveAudit
	for addr, acc := range movers {
		if acc.flagReceipts < minReceipts || acc.nWit == 0 {
			continue
		}
		audit.SilentMovers = append(audit.SilentMovers, SilentMoverFinding{
			Hotspot:    addr,
			AssertedAt: acc.asserted,
			WitnessCentroid: geo.Point{
				Lat: acc.sumLat / float64(acc.nWit),
				Lon: acc.sumLon / float64(acc.nWit),
			},
			MedianWitnessKm: acc.worstMedian,
			Receipts:        acc.flagReceipts,
		})
	}
	for addr, la := range liars {
		if la.absurd > 0 || la.tooStrong >= 2 {
			audit.LyingWitness = append(audit.LyingWitness, LyingWitnessFinding{
				Witness: addr, MaxRSSI: la.max, Reports: la.reports,
				Absurd: la.absurd, TooStrong: la.tooStrong,
			})
		}
	}
	for _, p := range pairs {
		if p.Count >= 2 {
			audit.CliqueSuspects = append(audit.CliqueSuspects, *p)
		}
	}
	// The findings come out of map iteration, so every sort needs a
	// total order — ties broken by address — or the report's order
	// would vary with the process's map seed.
	sort.Slice(audit.SilentMovers, func(i, j int) bool {
		a, b := audit.SilentMovers[i], audit.SilentMovers[j]
		if a.MedianWitnessKm != b.MedianWitnessKm {
			return a.MedianWitnessKm > b.MedianWitnessKm
		}
		return a.Hotspot < b.Hotspot
	})
	sort.Slice(audit.LyingWitness, func(i, j int) bool {
		a, b := audit.LyingWitness[i], audit.LyingWitness[j]
		if a.MaxRSSI != b.MaxRSSI {
			return a.MaxRSSI > b.MaxRSSI
		}
		return a.Witness < b.Witness
	})
	sort.Slice(audit.CliqueSuspects, func(i, j int) bool {
		a, b := audit.CliqueSuspects[i], audit.CliqueSuspects[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return audit
}
