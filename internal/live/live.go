// Package live maintains the paper's §3–§6 analyses as incremental
// materialized views over an etl.Store — the regime the DeWi ETL
// service actually ran in: a dashboard that keeps up with ingest
// instead of rescanning history. A Study subscribes to the store's
// block tail and folds each new block into the same per-analysis
// states the batch path (`peoplesnet.Measure`) folds from genesis, so
// `Snapshot()` at height H is bit-identical to a batch measurement of
// the chain prefix up to H. Per-update cost is O(transactions in the
// new block), never O(chain).
package live

import (
	"fmt"
	"sync"

	"peoplesnet/internal/chain"
	"peoplesnet/internal/core"
	"peoplesnet/internal/etl"
)

// Options configures a Study.
type Options struct {
	// Meta is the hotspot measurement metadata (city, ISP, …) the
	// ownership analysis groups by. May be nil for a bare store.
	Meta map[string]core.HotspotMeta
	// PoCWeight is the notional transactions-per-sampled-receipt
	// weight (1 when unset), matching core.Dataset.PoCWeight.
	PoCWeight float64
	// Measure carries the shared batch/live analysis cutoffs. Zero
	// fields take the paper defaults; a positive Measure.PoCWeight
	// overrides PoCWeight above.
	Measure core.MeasureOptions
	// WindowDays is the trailing-window length for the windowed
	// growth/move/resale views (default 30).
	WindowDays int
}

// Study is the live measurement suite: a ledger replica plus one fold
// state per analysis, extended block by block.
type Study struct {
	opts Options

	mu        sync.Mutex
	ledger    *chain.Ledger
	summary   *core.SummaryState
	moves     *core.MovesState
	growth    *core.GrowthState
	resale    *core.ResaleState
	traffic   *core.TrafficState
	winAdds   *dayRing
	winMoves  *dayRing
	winXfers  *dayRing
	first     int64
	height    int64
	blocks    int64
	txns      int64
	applyErrs int64
	firstErr  error

	store     *etl.Store
	tail      *etl.Tail
	done      chan struct{}
	closeOnce sync.Once
}

// Snapshot is one consistent materialization of every live view, plus
// the staleness bookkeeping a dashboard needs.
type Snapshot struct {
	// Height/FirstHeight bound the folded prefix (-1 while empty).
	Height      int64
	FirstHeight int64
	// Blocks and Txns count what has been folded.
	Blocks int64
	Txns   int64
	// StoreTip is the subscribed store's tip at snapshot time (-1 for
	// a detached study); LagBlocks is how far the views trail it.
	StoreTip  int64
	LagBlocks int64
	// ApplyErrs counts transactions the ledger replica rejected (0 on
	// a healthy chain; nonzero means the replica diverged).
	ApplyErrs int64

	Summary   core.ChainSummary
	Moves     core.MoveAnalysis
	Growth    core.GrowthAnalysis
	Ownership core.OwnershipAnalysis
	Resale    core.ResaleAnalysis
	Traffic   core.TrafficAnalysis

	Window WindowSnapshot
}

// New returns a detached Study: the caller feeds it blocks through
// ApplyBlock (tests and benchmarks do this synchronously).
func New(opts Options) *Study {
	opts.Measure = opts.Measure.Normalized()
	if opts.WindowDays <= 0 {
		opts.WindowDays = 30
	}
	return &Study{
		opts:     opts,
		ledger:   chain.NewLedger(),
		summary:  core.NewSummaryState(),
		moves:    core.NewMovesState(),
		growth:   core.NewGrowthState(),
		resale:   core.NewResaleState(),
		traffic:  core.NewTrafficState(),
		winAdds:  newDayRing(opts.WindowDays),
		winMoves: newDayRing(opts.WindowDays),
		winXfers: newDayRing(opts.WindowDays),
		first:    -1,
		height:   -1,
	}
}

// Attach builds a Study subscribed to the store's block tail from
// genesis: it replays every stored block, then folds new ones as they
// are ingested. Stop it with Close.
func Attach(s *etl.Store, opts Options) *Study {
	st := New(opts)
	st.store = s
	st.tail = s.Follow(-1)
	st.done = make(chan struct{})
	go st.run()
	return st
}

// run drains the tail until Close. Tail.Next blocks without dropping,
// so the study sees every block exactly once however slow a snapshot
// consumer is.
func (st *Study) run() {
	defer close(st.done)
	for {
		b, ok := st.tail.Next()
		if !ok {
			return
		}
		st.ApplyBlock(b)
	}
}

// Close detaches from the store and waits for the fold goroutine to
// stop. It is a no-op for a detached Study.
func (st *Study) Close() {
	if st.tail == nil {
		return
	}
	st.closeOnce.Do(func() {
		st.tail.Close()
		<-st.done
	})
}

// ApplyBlock folds one block into every view: O(len(b.Txns)) plus a
// constant number of ring-buffer slots. Blocks at or below the
// current height are ignored, so a replayed prefix cannot double
// count.
func (st *Study) ApplyBlock(b *chain.Block) {
	if b == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if b.Height <= st.height {
		return
	}
	addsBefore := st.growth.Total()
	movesBefore := st.moves.TotalMoves()
	xfersBefore := st.resale.Total()
	st.summary.ApplyBlock(b)
	for _, t := range b.Txns {
		if err := st.ledger.ApplyTxn(t, b.Height); err != nil {
			st.applyErrs++
			if st.firstErr == nil {
				st.firstErr = fmt.Errorf("live: replica apply block %d (%s): %w", b.Height, t.TxnType(), err)
			}
		}
		st.moves.ApplyTxn(b.Height, t)
		st.growth.ApplyTxn(b.Height, t)
		st.resale.ApplyTxn(b.Height, t)
		st.traffic.ApplyTxn(b.Height, t)
	}
	if st.first < 0 {
		st.first = b.Height
	}
	st.height = b.Height
	st.blocks++
	st.txns += int64(len(b.Txns))
	day := b.Height / chain.BlocksPerDay
	st.winAdds.observe(day, float64(st.growth.Total()-addsBefore))
	st.winMoves.observe(day, float64(st.moves.TotalMoves()-movesBefore))
	st.winXfers.observe(day, float64(st.resale.Total()-xfersBefore))
}

// Height returns the height of the last folded block (-1 while
// empty).
func (st *Study) Height() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.height
}

// Lag returns how many blocks the views trail the subscribed store's
// tip (0 for a detached or caught-up study).
func (st *Study) Lag() int64 {
	if st.store == nil {
		return 0
	}
	tip := st.store.Height()
	st.mu.Lock()
	defer st.mu.Unlock()
	if lag := tip - st.height; lag > 0 {
		return lag
	}
	return 0
}

// Err returns the first ledger-replica divergence, if any.
func (st *Study) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.firstErr
}

// pocWeight resolves the effective PoC sampling weight.
func (st *Study) pocWeight() float64 {
	if st.opts.Measure.PoCWeight > 0 {
		return st.opts.Measure.PoCWeight
	}
	if st.opts.PoCWeight > 0 {
		return st.opts.PoCWeight
	}
	return 1
}

// Snapshot materializes every view at the study's current height. The
// result shares no mutable state with the study, which keeps folding;
// cost is O(hotspots + owners + closes), independent of chain length
// scans.
func (st *Study) Snapshot() Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	sn := Snapshot{
		Height:      st.height,
		FirstHeight: st.first,
		Blocks:      st.blocks,
		Txns:        st.txns,
		StoreTip:    -1,
		ApplyErrs:   st.applyErrs,
		Summary:     st.summary.Finalize(st.pocWeight()),
		Moves:       st.moves.Finalize(),
		Growth:      st.growth.Finalize(),
		Ownership:   core.AnalyzeOwnershipLedger(st.ledger, st.opts.Meta),
		Resale:      st.resale.Finalize(st.opts.Measure.ResaleTopN, st.ledger.HotspotCount()),
		Traffic:     st.traffic.Finalize(st.height, st.ledger),
		Window: WindowSnapshot{
			Days:      st.opts.WindowDays,
			TipDay:    -1,
			Adds:      st.winAdds.sum(),
			Moves:     st.winMoves.sum(),
			Transfers: st.winXfers.sum(),
		},
	}
	if st.height >= 0 {
		sn.Window.TipDay = st.height / chain.BlocksPerDay
	}
	if st.store != nil {
		sn.StoreTip = st.store.Height()
		if lag := sn.StoreTip - sn.Height; lag > 0 {
			sn.LagBlocks = lag
		}
	}
	return sn
}
