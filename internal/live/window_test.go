package live

import (
	"math/rand"
	"testing"
)

// brute recomputes a trailing-window sum from a full event list: the
// oracle the ring is checked against.
func brute(events map[int64]float64, tip int64, n int) float64 {
	sum := 0.0
	for d, v := range events {
		if d > tip-int64(n) && d <= tip {
			sum += v
		}
	}
	return sum
}

// TestDayRingBoundaryEviction pins the exact eviction edge: a day-0
// contribution is still inside a 30-day window at day 29 and gone at
// day 30.
func TestDayRingBoundaryEviction(t *testing.T) {
	r := newDayRing(30)
	r.observe(0, 5)
	r.observe(29, 0) // advance only
	if got := r.sum(); got != 5 {
		t.Fatalf("day 29: sum = %v, want 5 (day 0 still in window)", got)
	}
	r.observe(30, 0)
	if got := r.sum(); got != 0 {
		t.Fatalf("day 30: sum = %v, want 0 (day 0 evicted)", got)
	}
}

// TestDayRingSameDayAccumulates pins that multiple observations of
// one day share a bucket and leave together.
func TestDayRingSameDayAccumulates(t *testing.T) {
	r := newDayRing(7)
	r.observe(3, 1)
	r.observe(3, 2)
	r.observe(3, 4)
	if got := r.sum(); got != 7 {
		t.Fatalf("sum = %v, want 7", got)
	}
	r.observe(10, 1) // day 3 leaves exactly at day 10 (window (3,10])
	if got := r.sum(); got != 1 {
		t.Fatalf("after jump: sum = %v, want 1", got)
	}
}

// TestDayRingLongJump pins that a gap of at least the window length
// empties the ring rather than leaving stale slots behind.
func TestDayRingLongJump(t *testing.T) {
	r := newDayRing(5)
	for d := int64(0); d < 5; d++ {
		r.observe(d, 1)
	}
	if got := r.sum(); got != 5 {
		t.Fatalf("warm ring: sum = %v, want 5", got)
	}
	r.observe(1000, 2)
	if got := r.sum(); got != 2 {
		t.Fatalf("after long jump: sum = %v, want 2", got)
	}
}

// TestDayRingMatchesBruteForce drives the ring with a random monotone
// day sequence (including same-day repeats, unit steps, and jumps
// straddling the window length) and checks the running sum against a
// full recompute at every step.
func TestDayRingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 30
	r := newDayRing(n)
	events := make(map[int64]float64)
	day := int64(0)
	for i := 0; i < 5000; i++ {
		switch rng.Intn(10) {
		case 0: // long jump, occasionally past the whole window
			day += int64(rng.Intn(2*n + 1))
		case 1, 2, 3: // same day again
		default:
			day++
		}
		v := float64(rng.Intn(5))
		r.observe(day, v)
		events[day] += v
		if got, want := r.sum(), brute(events, day, n); got != want {
			t.Fatalf("step %d (day %d): ring sum = %v, brute force = %v", i, day, got, want)
		}
	}
}
