package live

// WindowSnapshot is the trailing-N-day view the batch path cannot
// express without a rescan: activity totals over the last Days days
// of chain time (the window is (TipDay-Days, TipDay]).
type WindowSnapshot struct {
	// Days is the window length; TipDay the day of the last folded
	// block (-1 while empty).
	Days   int
	TipDay int64
	// Adds, Moves, Transfers are the hotspots added, relocations
	// asserted, and hotspots resold inside the window.
	Adds      float64
	Moves     float64
	Transfers float64
}

// dayRing accumulates one number per chain day over a trailing window
// of n days. Slot day%n holds that day's contribution; advancing the
// tip evicts the days that fall out of the window and keeps a running
// total, so both observe and sum are O(1) amortized.
type dayRing struct {
	n      int
	days   []int64 // day stamp per slot, -1 when empty
	vals   []float64
	total  float64
	curDay int64
}

func newDayRing(n int) *dayRing {
	r := &dayRing{n: n, days: make([]int64, n), vals: make([]float64, n), curDay: -1}
	for i := range r.days {
		r.days[i] = -1
	}
	return r
}

// advance rolls the window tip forward to day, evicting every slot
// whose day drops out of (day-n, day]. A jump of n or more days
// empties the whole ring.
func (r *dayRing) advance(day int64) {
	if day <= r.curDay {
		return
	}
	if r.curDay < 0 || day-r.curDay >= int64(r.n) {
		for i := range r.days {
			r.days[i] = -1
			r.vals[i] = 0
		}
		r.total = 0
		r.curDay = day
		return
	}
	for d := r.curDay + 1; d <= day; d++ {
		slot := int(d % int64(r.n))
		if r.days[slot] >= 0 {
			r.total -= r.vals[slot]
		}
		r.days[slot] = -1
		r.vals[slot] = 0
	}
	r.curDay = day
}

// observe adds v to day's bucket, first advancing the tip to day.
// Chain heights are monotone, so a day is never observed after it has
// been evicted.
func (r *dayRing) observe(day int64, v float64) {
	r.advance(day)
	slot := int(day % int64(r.n))
	if r.days[slot] != day {
		r.days[slot] = day
		r.vals[slot] = 0
	}
	r.vals[slot] += v
	r.total += v
}

// sum returns the total over the trailing window.
func (r *dayRing) sum() float64 { return r.total }
