package live_test

// Prefix-equivalence suite: the live Study folded block-by-block must
// be bit-identical (reflect.DeepEqual, unexported fields included) to
// a batch measurement of the same chain prefix, at every height, in
// every delivery mode — synchronous ApplyBlock, a store tail, and a
// store tail surviving a transient disk fault mid-ingest. Run under
// -race via `make live-smoke`.

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"peoplesnet"
	"peoplesnet/internal/chain"
	"peoplesnet/internal/core"
	"peoplesnet/internal/etl"
	"peoplesnet/internal/faultfs"
	"peoplesnet/internal/live"
	"peoplesnet/internal/simnet"
)

// smallWorld generates a reduced-timeline world: one block per
// simulated day, every transaction family exercised.
func smallWorld(t testing.TB, days int, seed uint64) *simnet.Result {
	t.Helper()
	cfg := simnet.TestConfig(seed)
	cfg.Days = days
	w, err := simnet.Generate(cfg)
	if err != nil {
		t.Fatalf("generate world: %v", err)
	}
	return w
}

// batchViews is the batch-path measurement of one chain prefix: a
// fresh store over blocks ≤ h, its ledger replayed from genesis, and
// the six fold-form analyses run the way peoplesnet.Measure runs
// them.
type batchViews struct {
	Summary   core.ChainSummary
	Moves     core.MoveAnalysis
	Growth    core.GrowthAnalysis
	Ownership core.OwnershipAnalysis
	Resale    core.ResaleAnalysis
	Traffic   core.TrafficAnalysis
}

func batchPrefix(t testing.TB, blocks []*chain.Block, h int64, meta map[string]core.HotspotMeta, pw float64, topN int) batchViews {
	t.Helper()
	s := etl.New(etl.Config{})
	for _, b := range blocks {
		if b.Height > h {
			break
		}
		if err := s.Append(b); err != nil {
			t.Fatalf("append block %d: %v", b.Height, err)
		}
	}
	l, err := s.ReplayLedger()
	if err != nil {
		t.Fatalf("replay ledger at height %d: %v", h, err)
	}
	s.SetLedger(l)
	d := &core.Dataset{Chain: s.View(), Meta: meta, PoCWeight: pw}
	return batchViews{
		Summary:   d.SummarizeChain(),
		Moves:     d.AnalyzeMoves(),
		Growth:    d.AnalyzeGrowth(),
		Ownership: d.AnalyzeOwnership(),
		Resale:    d.AnalyzeResale(topN),
		Traffic:   d.AnalyzeTraffic(),
	}
}

// requireEqual deep-compares the live snapshot with the batch views,
// reporting the first diverging analysis by name.
func requireEqual(t testing.TB, h int64, sn live.Snapshot, want batchViews) {
	t.Helper()
	for _, c := range []struct {
		name      string
		got, want interface{}
	}{
		{"Summary", sn.Summary, want.Summary},
		{"Moves", sn.Moves, want.Moves},
		{"Growth", sn.Growth, want.Growth},
		{"Ownership", sn.Ownership, want.Ownership},
		{"Resale", sn.Resale, want.Resale},
		{"Traffic", sn.Traffic, want.Traffic},
	} {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Fatalf("height %d: live %s diverges from batch\n live: %+v\nbatch: %+v", h, c.name, c.got, c.want)
		}
	}
}

// TestLiveStudyPrefixEquivalence replays a world block-by-block into
// a detached Study and pins Snapshot() bit-identical to the batch
// measurement of the same prefix at every single height, including
// the empty prefix.
func TestLiveStudyPrefixEquivalence(t *testing.T) {
	w := smallWorld(t, 120, 11)
	md := core.FromSimulation(w)
	blocks := w.Chain.Blocks()

	st := live.New(live.Options{Meta: md.Meta, PoCWeight: md.PoCWeight})
	requireEqual(t, -1, st.Snapshot(), batchPrefix(t, blocks, -1, md.Meta, md.PoCWeight, 200))
	for _, b := range blocks {
		st.ApplyBlock(b)
		sn := st.Snapshot()
		if sn.Height != b.Height {
			t.Fatalf("snapshot height = %d, want %d", sn.Height, b.Height)
		}
		requireEqual(t, b.Height, sn, batchPrefix(t, blocks, b.Height, md.Meta, md.PoCWeight, 200))
	}
	if err := st.Err(); err != nil {
		t.Fatalf("ledger replica diverged: %v", err)
	}
}

// TestLiveStudyMatchesMeasure pins the live snapshot at the chain tip
// against the real public batch path — peoplesnet.Measure over the
// same world, whose ledger is the simulator's original rather than a
// replica — for the six live-maintained analyses.
func TestLiveStudyMatchesMeasure(t *testing.T) {
	w := smallWorld(t, 150, 3)
	md := core.FromSimulation(w)

	st := live.New(live.Options{Meta: md.Meta, PoCWeight: md.PoCWeight})
	for _, b := range w.Chain.Blocks() {
		st.ApplyBlock(b)
	}
	sn := st.Snapshot()
	batch := peoplesnet.Measure(w)
	requireEqual(t, sn.Height, sn, batchViews{
		Summary:   batch.Summary,
		Moves:     batch.Moves,
		Growth:    batch.Growth,
		Ownership: batch.Ownership,
		Resale:    batch.Resale,
		Traffic:   batch.Traffic,
	})
	if err := st.Err(); err != nil {
		t.Fatalf("ledger replica diverged from simulator ledger: %v", err)
	}
	if sn.ApplyErrs != 0 {
		t.Fatalf("replica rejected %d transactions", sn.ApplyErrs)
	}
}

// waitHeight polls until the study has folded up to h or the deadline
// passes.
func waitHeight(st *live.Study, h int64, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for st.Height() < h {
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// TestLiveStudyFollowsStore attaches a Study to a store tail while
// the store is bulk-loaded underneath it, then checks convergence and
// equivalence at the tip.
func TestLiveStudyFollowsStore(t *testing.T) {
	w := smallWorld(t, 100, 5)
	md := core.FromSimulation(w)

	s := etl.New(etl.Config{})
	st := live.Attach(s, live.Options{Meta: md.Meta, PoCWeight: md.PoCWeight})
	defer st.Close()
	if err := s.BulkLoad(w.Chain); err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	if !waitHeight(st, w.Chain.Height(), 30*time.Second) {
		t.Fatalf("study stuck at height %d, store tip %d", st.Height(), s.Height())
	}
	sn := st.Snapshot()
	if sn.LagBlocks != 0 || sn.StoreTip != w.Chain.Height() {
		t.Fatalf("staleness fields: lag=%d tip=%d, want 0 and %d", sn.LagBlocks, sn.StoreTip, w.Chain.Height())
	}
	requireEqual(t, sn.Height, sn, batchPrefix(t, w.Chain.Blocks(), w.Chain.Height(), md.Meta, md.PoCWeight, 200))
}

// TestLiveStudyFollowerRetry injects one transient disk fault under a
// durable store being fed by a chain Follower while a live Study
// tails it: the Follower's retry must be invisible to the views — no
// lost or double-counted blocks, snapshot still bit-identical to
// batch.
func TestLiveStudyFollowerRetry(t *testing.T) {
	w := smallWorld(t, 80, 7)
	md := core.FromSimulation(w)
	dir := filepath.Join(t.TempDir(), "store")
	// Opening a fresh store costs a handful of ops; op 15 lands inside
	// the block-ingest stretch. Crash is off: exactly one op fails.
	ffs := faultfs.New(etl.OSFS{}, faultfs.Config{Seed: 1, FailAtOp: 15})
	s, err := etl.Open(dir, etl.Config{SegmentBlocks: 8, FS: ffs})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer s.Close()

	st := live.Attach(s, live.Options{Meta: md.Meta, PoCWeight: md.PoCWeight})
	defer st.Close()
	f := s.FollowChain(w.Chain)
	if !waitHeight(st, w.Chain.Height(), 30*time.Second) {
		t.Fatalf("study stuck at height %d, store tip %d", st.Height(), s.Height())
	}
	if err := f.Close(); err != nil {
		t.Fatalf("follower surfaced a transient fault: %v", err)
	}
	if ffs.Ops() < 15 {
		t.Fatalf("fault never fired (%d ops)", ffs.Ops())
	}
	sn := st.Snapshot()
	if sn.Blocks != int64(len(w.Chain.Blocks())) {
		t.Fatalf("folded %d blocks, chain has %d", sn.Blocks, len(w.Chain.Blocks()))
	}
	requireEqual(t, sn.Height, sn, batchPrefix(t, w.Chain.Blocks(), w.Chain.Height(), md.Meta, md.PoCWeight, 200))
}

// TestLiveStudyWindowBruteForce replays a world and, at every height,
// checks the trailing-30-day window totals against a brute-force
// recount of the relevant transactions over the same prefix — the
// windowed view the batch path cannot express without a rescan.
func TestLiveStudyWindowBruteForce(t *testing.T) {
	cfg := simnet.TestConfig(9)
	cfg.Days = 140
	cfg.ResaleStartDay = 60 // default 500 would leave the transfer window empty
	w, err := simnet.Generate(cfg)
	if err != nil {
		t.Fatalf("generate world: %v", err)
	}
	const days = 30
	st := live.New(live.Options{WindowDays: days})

	var adds, moves, xfers []int64 // event days, in chain order
	locEvents := make(map[string]int)
	count := func(evs []int64, tipDay int64) float64 {
		n := 0.0
		for _, d := range evs {
			if d > tipDay-days && d <= tipDay {
				n++
			}
		}
		return n
	}
	for _, b := range w.Chain.Blocks() {
		day := b.Height / chain.BlocksPerDay
		for _, txn := range b.Txns {
			switch v := txn.(type) {
			case *chain.AddGateway:
				adds = append(adds, day)
				if v.Location != 0 {
					locEvents[v.Gateway]++
				}
			case *chain.AssertLocation:
				if locEvents[v.Gateway] > 0 {
					moves = append(moves, day)
				}
				locEvents[v.Gateway]++
			case *chain.TransferHotspot:
				xfers = append(xfers, day)
			default:
			}
		}
		st.ApplyBlock(b)
		win := st.Snapshot().Window
		if win.TipDay != day || win.Days != days {
			t.Fatalf("window meta = (tip %d, %d days), want (%d, %d)", win.TipDay, win.Days, day, days)
		}
		if got, want := win.Adds, count(adds, day); got != want {
			t.Fatalf("day %d: window adds = %v, brute force = %v", day, got, want)
		}
		if got, want := win.Moves, count(moves, day); got != want {
			t.Fatalf("day %d: window moves = %v, brute force = %v", day, got, want)
		}
		if got, want := win.Transfers, count(xfers, day); got != want {
			t.Fatalf("day %d: window transfers = %v, brute force = %v", day, got, want)
		}
	}
	if len(adds) == 0 || len(moves) == 0 || len(xfers) == 0 {
		t.Fatalf("world exercised nothing: %d adds, %d moves, %d transfers", len(adds), len(moves), len(xfers))
	}
}

// TestLiveStudyCloseUnblocks pins Close() semantics: it must unblock
// the tail goroutine promptly and be idempotent.
func TestLiveStudyCloseUnblocks(t *testing.T) {
	s := etl.New(etl.Config{})
	st := live.Attach(s, live.Options{})
	done := make(chan struct{})
	go func() {
		st.Close()
		st.Close() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not unblock the tail goroutine")
	}
}
