package ipgeo

import (
	"net/netip"
	"testing"

	"peoplesnet/internal/stats"
)

func newReg(seed uint64) (*Registry, *stats.RNG) {
	rng := stats.NewRNG(seed)
	return NewRegistry(rng, 440), rng
}

func TestRegistrySize(t *testing.T) {
	r, _ := newReg(1)
	// 17 major + 440 tail ≈ the paper's 454 ASNs (Fig 9).
	if got := len(r.ISPs()); got != 457 {
		t.Fatalf("registry has %d ISPs", got)
	}
	seen := make(map[uint32]bool)
	for _, isp := range r.ISPs() {
		if seen[isp.ASN] {
			t.Fatalf("duplicate ASN %d", isp.ASN)
		}
		seen[isp.ASN] = true
	}
}

func TestByASNAndLookupIP(t *testing.T) {
	r, rng := newReg(2)
	spectrum := r.ISPs()[0]
	if spectrum.Name != "Spectrum" {
		t.Fatalf("first ISP = %s", spectrum.Name)
	}
	got, ok := r.ByASN(spectrum.ASN)
	if !ok || got.Name != "Spectrum" {
		t.Fatal("ByASN failed")
	}
	if _, ok := r.ByASN(999999); ok {
		t.Fatal("unknown ASN resolved")
	}
	// Allocate an IP and resolve it back (the zannotate step).
	att := r.Attach(Market{City: "x", ISPs: []*ISP{spectrum}}, rng)
	for att.NATed { // retry until we land a public line
		att = r.Attach(Market{City: "x", ISPs: []*ISP{spectrum}}, rng)
	}
	if asn := r.LookupIP(att.PublicIP); asn != spectrum.ASN {
		t.Fatalf("LookupIP(%v) = %d, want %d", att.PublicIP, asn, spectrum.ASN)
	}
	if r.LookupIP(netip.MustParseAddr("8.8.8.8")) != 0 {
		t.Fatal("foreign IP resolved to an ASN")
	}
}

func TestAttachDistributions(t *testing.T) {
	r, rng := newReg(3)
	m := Market{City: "bigcity", ISPs: r.ISPs()[:3]} // Spectrum, Comcast, Verizon
	var atts []Attachment
	nated := 0
	for i := 0; i < 5000; i++ {
		a := r.Attach(m, rng)
		atts = append(atts, a)
		if a.NATed {
			nated++
			if a.PublicIP.IsValid() {
				t.Fatal("NAT'd attachment has a public IP")
			}
		} else {
			if !a.PublicIP.IsValid() {
				t.Fatal("public attachment missing IP")
			}
			if a.Port != HotspotPort {
				t.Fatalf("port = %d", a.Port)
			}
		}
	}
	// NAT fraction should be near the share-weighted mean (~0.58).
	frac := float64(nated) / 5000
	if frac < 0.5 || frac > 0.68 {
		t.Fatalf("NAT fraction = %v", frac)
	}
	top := TopISPs(atts, 3)
	if len(top) != 3 || top[0].Name != "Spectrum" || top[1].Name != "Comcast" || top[2].Name != "Verizon" {
		t.Fatalf("top ISPs = %+v", top)
	}
}

func TestAttachEmptyMarket(t *testing.T) {
	r, rng := newReg(4)
	a := r.Attach(Market{}, rng)
	if !a.NATed || a.ISP != nil {
		t.Fatalf("empty market attachment = %+v", a)
	}
}

func TestAttachCloud(t *testing.T) {
	r, rng := newReg(5)
	counts := map[string]int{}
	for i := 0; i < 500; i++ {
		a := r.AttachCloud(rng)
		if a.NATed || !a.PublicIP.IsValid() {
			t.Fatal("cloud attachment should be public")
		}
		counts[a.ISP.Name]++
	}
	if counts["DigitalOcean"] == 0 || counts["Amazon"] == 0 {
		t.Fatalf("cloud mix = %v", counts)
	}
	if counts["DigitalOcean"] < counts["Amazon"] {
		t.Fatalf("DigitalOcean (%d) should dominate Amazon (%d) per the paper", counts["DigitalOcean"], counts["Amazon"])
	}
}

func TestBuildMarketSizes(t *testing.T) {
	r, rng := newReg(6)
	small := r.BuildMarket("village", "US", 20_000, rng)
	if len(small.ISPs) != 1 {
		t.Fatalf("small city market = %d ISPs", len(small.ISPs))
	}
	big := r.BuildMarket("metropolis", "US", 5_000_000, rng)
	if len(big.ISPs) < 3 {
		t.Fatalf("big city market = %d ISPs", len(big.ISPs))
	}
	// No cloud providers in residential markets.
	for _, isp := range big.ISPs {
		if isp.Kind == Cloud {
			t.Fatal("cloud ISP in a city market")
		}
	}
	// Unknown country falls back to the global pool.
	exotic := r.BuildMarket("somewhere", "ZZ", 50_000, rng)
	if len(exotic.ISPs) == 0 {
		t.Fatal("no fallback providers")
	}
}

func TestMarketsDiffer(t *testing.T) {
	r, rng := newReg(7)
	singles := 0
	n := 500
	for i := 0; i < n; i++ {
		pop := 10_000
		if i%5 == 0 {
			pop = 1_000_000
		}
		m := r.BuildMarket("city", "US", pop, rng)
		if len(m.ISPs) == 1 {
			singles++
		}
	}
	// Around §6.1's 40% single-ASN cities: our mix of small cities
	// should give a large single-provider fraction.
	if singles < n/4 {
		t.Fatalf("only %d/%d single-provider cities", singles, n)
	}
}

func TestOutage(t *testing.T) {
	r, _ := newReg(8)
	if r.IsDown("Spectrum", "Los Angeles") {
		t.Fatal("outage before SetOutage")
	}
	r.SetOutage("Spectrum", "Los Angeles", true)
	if !r.IsDown("Spectrum", "Los Angeles") {
		t.Fatal("outage not recorded")
	}
	if r.IsDown("Spectrum", "San Diego") || r.IsDown("Comcast", "Los Angeles") {
		t.Fatal("outage leaked to other keys")
	}
	r.SetOutage("Spectrum", "Los Angeles", false)
	if r.IsDown("Spectrum", "Los Angeles") {
		t.Fatal("outage not cleared")
	}
}

func TestASNDistribution(t *testing.T) {
	r, rng := newReg(9)
	market := Market{City: "c", ISPs: r.ISPs()[:5]}
	var atts []Attachment
	for i := 0; i < 3000; i++ {
		atts = append(atts, r.Attach(market, rng))
	}
	dist := ASNDistribution(atts)
	if len(dist) == 0 || len(dist) > 5 {
		t.Fatalf("distribution over %d ASNs", len(dist))
	}
	for i := 1; i < len(dist); i++ {
		if dist[i].Hotspots > dist[i-1].Hotspots {
			t.Fatal("distribution not sorted descending")
		}
	}
	// NAT'd attachments are excluded (they have no public IP to map).
	total := 0
	for _, d := range dist {
		total += d.Hotspots
	}
	public := 0
	for _, a := range atts {
		if !a.NATed {
			public++
		}
	}
	if total != public {
		t.Fatalf("distribution total %d != public %d", total, public)
	}
}

func TestKindString(t *testing.T) {
	if Cable.String() != "cable" || Cloud.String() != "cloud" || Kind(42).String() != "kind_42" {
		t.Fatal("Kind strings wrong")
	}
}
