// Package ipgeo synthesizes the Internet context around hotspot
// backhaul that §6 of the paper measures with zannotate, Route Views,
// and CAIDA's as2org: an ASN/organization registry, per-city ISP
// markets with realistic concentration, public-IP vs NAT'd attachment,
// cloud-hosted ASNs (the validators the paper spots on Digital Ocean
// and Amazon), and regional outage injection (the 2020 Spectrum Los
// Angeles outage case).
package ipgeo

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"peoplesnet/internal/stats"
)

// Kind classifies an access network.
type Kind int

// Access network kinds.
const (
	Cable Kind = iota
	DSL
	Fiber
	WirelessISP
	Cloud
)

func (k Kind) String() string {
	switch k {
	case Cable:
		return "cable"
	case DSL:
		return "dsl"
	case Fiber:
		return "fiber"
	case WirelessISP:
		return "wireless"
	case Cloud:
		return "cloud"
	default:
		return fmt.Sprintf("kind_%d", int(k))
	}
}

// ISP is one provider organization. An ISP may announce several ASNs
// in the real world; the synthetic registry gives each one ASN, which
// is all the paper's per-ASN analyses need.
type ISP struct {
	Name    string
	ASN     uint32
	Kind    Kind
	Country string // ISO-like country tag; "US", "UK", "ES", ...
	// NATProb is the probability that a subscriber line does not get
	// an inbound-reachable public IP (CGNAT, router defaults). The
	// paper finds 55.48% of hotspots relayed (§6.2); residential cable
	// dominates that.
	NATProb float64
	// Share weights the ISP inside its country's market.
	Share float64
	// prefix is the synthetic /16 this ASN announces.
	prefix netip.Prefix
}

// Registry is the synthetic Internet: ISPs, their ASNs and prefixes,
// and helpers to attach subscribers and resolve IPs back to ASNs (the
// zannotate step).
type Registry struct {
	mu      sync.Mutex
	isps    []*ISP
	byASN   map[uint32]*ISP
	nextIP  map[uint32]uint32 // per-ASN host counter
	outages map[string]bool   // "ISPName/City" → down
}

// majorISPs reproduces Table 1's cast with country tags and access
// kinds. Shares are proportional to the paper's observed hotspot
// counts, so sampling subscribers from city markets reproduces the
// table's ordering.
var majorISPs = []ISP{
	{Name: "Spectrum", Kind: Cable, Country: "US", NATProb: 0.62, Share: 2497},
	{Name: "Comcast", Kind: Cable, Country: "US", NATProb: 0.60, Share: 1922},
	{Name: "Verizon", Kind: Fiber, Country: "US", NATProb: 0.48, Share: 1590},
	{Name: "Cablevision", Kind: Cable, Country: "US", NATProb: 0.58, Share: 450},
	{Name: "AT&T", Kind: DSL, Country: "US", NATProb: 0.55, Share: 338},
	{Name: "Virgin Media", Kind: Cable, Country: "UK", NATProb: 0.60, Share: 333},
	{Name: "Cox", Kind: Cable, Country: "US", NATProb: 0.58, Share: 314},
	{Name: "Level 3", Kind: Fiber, Country: "US", NATProb: 0.20, Share: 202},
	{Name: "Sky UK", Kind: DSL, Country: "UK", NATProb: 0.57, Share: 199},
	{Name: "Telefonica", Kind: DSL, Country: "ES", NATProb: 0.57, Share: 199},
	{Name: "CenturyLink", Kind: DSL, Country: "US", NATProb: 0.55, Share: 188},
	{Name: "TELUS", Kind: Fiber, Country: "CA", NATProb: 0.50, Share: 185},
	{Name: "RCN", Kind: Cable, Country: "US", NATProb: 0.55, Share: 154},
	{Name: "Frontier", Kind: DSL, Country: "US", NATProb: 0.55, Share: 146},
	{Name: "Google Fiber", Kind: Fiber, Country: "US", NATProb: 0.35, Share: 142},
	// Cloud ASNs: the paper attributes these to validators (§6.1).
	{Name: "DigitalOcean", Kind: Cloud, Country: "US", NATProb: 0, Share: 72},
	{Name: "Amazon", Kind: Cloud, Country: "US", NATProb: 0, Share: 44},
}

// NewRegistry builds the registry: the major ISPs above plus a long
// tail of small regional providers (the paper sees 454 ASNs total,
// most hosting one or two hotspots — Fig 9).
func NewRegistry(rng *stats.RNG, tailASNs int) *Registry {
	r := &Registry{
		byASN:   make(map[uint32]*ISP),
		nextIP:  make(map[uint32]uint32),
		outages: make(map[string]bool),
	}
	asn := uint32(7000)
	addISP := func(tpl ISP) *ISP {
		isp := tpl
		isp.ASN = asn
		// Give each ASN a distinct synthetic /16 out of 84.0.0.0/8
		// onward — never used for real routing, just parseable.
		hi := byte(84 + (asn-7000)/256)
		lo := byte((asn - 7000) % 256)
		isp.prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{hi, lo, 0, 0}), 16)
		asn++
		r.isps = append(r.isps, &isp)
		r.byASN[isp.ASN] = &isp
		return &isp
	}
	for _, tpl := range majorISPs {
		addISP(tpl)
	}
	countries := []string{"US", "US", "US", "UK", "DE", "FR", "ES", "IT", "NL", "CA", "CN", "AU"}
	kinds := []Kind{Cable, DSL, Fiber, WirelessISP}
	for i := 0; i < tailASNs; i++ {
		addISP(ISP{
			Name:    fmt.Sprintf("Regional-%03d", i),
			Kind:    kinds[rng.Intn(len(kinds))],
			Country: countries[rng.Intn(len(countries))],
			NATProb: 0.35 + rng.Float64()*0.4,
			Share:   0.5 + rng.Pareto(0.5, 1.3), // heavy tail of tiny providers
		})
	}
	return r
}

// ISPs returns all providers.
func (r *Registry) ISPs() []*ISP { return r.isps }

// ByASN resolves an ASN to its ISP (the as2org step).
func (r *Registry) ByASN(asn uint32) (*ISP, bool) {
	isp, ok := r.byASN[asn]
	return isp, ok
}

// LookupIP resolves an address back to its announcing ASN (the
// zannotate step). Returns 0 if no synthetic prefix contains it.
func (r *Registry) LookupIP(addr netip.Addr) uint32 {
	for _, isp := range r.isps {
		if isp.prefix.Contains(addr) {
			return isp.ASN
		}
	}
	return 0
}

// Market is the set of ISPs serving one city, with local shares.
type Market struct {
	City string
	ISPs []*ISP
}

// BuildMarket selects the providers serving a city. Cities are
// assigned 1–4 providers; smaller cities more often have a single
// provider (reproducing §6.1's 1,588 of 3,958 single-ASN cities).
// Providers are drawn from the city's country, falling back to the
// global tail.
func (r *Registry) BuildMarket(city, country string, population int, rng *stats.RNG) Market {
	var candidates []*ISP
	for _, isp := range r.isps {
		if isp.Kind == Cloud {
			continue
		}
		if isp.Country == country {
			candidates = append(candidates, isp)
		}
	}
	if len(candidates) == 0 {
		for _, isp := range r.isps {
			if isp.Kind != Cloud {
				candidates = append(candidates, isp)
			}
		}
	}
	// Number of providers scales weakly with population. Even small
	// towns often have a cable + DSL duopoly; the paper finds only
	// ~40% of hotspot-hosting cities on a single ASN (§6.1).
	n := 1
	switch {
	case population > 2_000_000:
		n = 3 + rng.Intn(2)
	case population > 400_000:
		n = 2 + rng.Intn(2)
	case population > 50_000:
		n = 1 + rng.Intn(2)
	default:
		if rng.Bool(0.6) {
			n = 2
		}
	}
	if n > len(candidates) {
		n = len(candidates)
	}
	// Weighted sample without replacement. Membership uses the same
	// NAT-compensated weight as Attach so that the *public* hotspot
	// counts across all cities track the calibrated shares (Table 1
	// counts public IPs only).
	chosen := make([]*ISP, 0, n)
	pool := append([]*ISP(nil), candidates...)
	for len(chosen) < n && len(pool) > 0 {
		weights := make([]float64, len(pool))
		for i, isp := range pool {
			pub := 1 - isp.NATProb
			if pub < 0.05 {
				pub = 0.05
			}
			weights[i] = isp.Share / pub
		}
		i := rng.WeightedChoice(weights)
		chosen = append(chosen, pool[i])
		pool = append(pool[:i], pool[i+1:]...)
	}
	return Market{City: city, ISPs: chosen}
}

// Attachment describes one subscriber line.
type Attachment struct {
	ISP      *ISP
	ASN      uint32
	PublicIP netip.Addr // zero value when NAT'd
	NATed    bool
	Port     int // Helium's well-known hotspot port when public
}

// HotspotPort is the port Helium miners listen on (§9.1: "They
// attempt to use a unique port, 44158").
const HotspotPort = 44158

// Attach provisions a subscriber in the market: picks a provider by
// local share, rolls NAT, and allocates a public IP when reachable.
func (r *Registry) Attach(m Market, rng *stats.RNG) Attachment {
	att := AttachLine(m, rng)
	r.AssignIP(&att)
	return att
}

// AttachLine picks the subscriber line only — provider by local
// share, NAT roll — without allocating a public IP. It touches no
// Registry state, so concurrent workers may call it with their own
// RNGs; the caller later runs AssignIP on the reachable attachments in
// a deterministic order (IP allocation is a sequential per-ASN
// counter, so allocation order is part of the world's identity).
func AttachLine(m Market, rng *stats.RNG) Attachment {
	if len(m.ISPs) == 0 {
		return Attachment{NATed: true}
	}
	// Table 1 counts hotspots with public IPs, and the calibrated
	// Share values come from that table — so weight subscriptions by
	// Share/(1−NATProb) to make the post-NAT public counts track the
	// shares.
	weights := make([]float64, len(m.ISPs))
	for i, isp := range m.ISPs {
		pub := 1 - isp.NATProb
		if pub < 0.05 {
			pub = 0.05
		}
		weights[i] = isp.Share / pub
	}
	isp := m.ISPs[rng.WeightedChoice(weights)]
	att := Attachment{ISP: isp, ASN: isp.ASN, Port: HotspotPort}
	if rng.Bool(isp.NATProb) {
		att.NATed = true
	}
	return att
}

// AssignIP allocates the attachment's public IP if it is reachable
// (non-NAT, provider known) and still unassigned.
func (r *Registry) AssignIP(att *Attachment) {
	if att.NATed || att.ISP == nil || att.PublicIP.IsValid() {
		return
	}
	att.PublicIP = r.allocIP(att.ISP)
}

// AttachCloud provisions a cloud-hosted node (validators).
func (r *Registry) AttachCloud(rng *stats.RNG) Attachment {
	var clouds []*ISP
	for _, isp := range r.isps {
		if isp.Kind == Cloud {
			clouds = append(clouds, isp)
		}
	}
	if len(clouds) == 0 {
		return Attachment{NATed: true}
	}
	weights := make([]float64, len(clouds))
	for i, c := range clouds {
		weights[i] = c.Share
	}
	isp := clouds[rng.WeightedChoice(weights)]
	return Attachment{ISP: isp, ASN: isp.ASN, PublicIP: r.allocIP(isp), Port: HotspotPort}
}

// allocIP hands out sequential host addresses from the ISP's prefix.
func (r *Registry) allocIP(isp *ISP) netip.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.nextIP[isp.ASN] + 1
	r.nextIP[isp.ASN] = n
	base := isp.prefix.Addr().As4()
	return netip.AddrFrom4([4]byte{base[0], base[1], byte(n >> 8), byte(n)})
}

// SetOutage marks an ISP down (or up) in a city. While down,
// IsDown(isp, city) is true; the simulator knocks affected hotspots
// offline, reproducing the Spectrum/Los Angeles scenario (§6.1).
func (r *Registry) SetOutage(ispName, city string, down bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := ispName + "/" + city
	if down {
		r.outages[key] = true
	} else {
		delete(r.outages, key)
	}
}

// IsDown reports whether the ISP is in outage in the city.
func (r *Registry) IsDown(ispName, city string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.outages[ispName+"/"+city]
}

// TopISPs tallies attachments by ISP name and returns the n providers
// with the most public-IP hotspots, descending — Table 1.
func TopISPs(atts []Attachment, n int) []ISPCount {
	counts := make(map[string]int)
	for _, a := range atts {
		if a.ISP == nil || a.NATed {
			continue
		}
		counts[a.ISP.Name]++
	}
	out := make([]ISPCount, 0, len(counts))
	for name, c := range counts {
		out = append(out, ISPCount{Name: name, Hotspots: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hotspots != out[j].Hotspots {
			return out[i].Hotspots > out[j].Hotspots
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ISPCount is one row of Table 1.
type ISPCount struct {
	Name     string
	Hotspots int
}

// ASNDistribution tallies attachments by ASN, descending — Fig 9.
func ASNDistribution(atts []Attachment) []ASNCount {
	counts := make(map[uint32]int)
	for _, a := range atts {
		if a.NATed || a.ASN == 0 {
			continue
		}
		counts[a.ASN]++
	}
	out := make([]ASNCount, 0, len(counts))
	for asn, c := range counts {
		out = append(out, ASNCount{ASN: asn, Hotspots: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hotspots != out[j].Hotspots {
			return out[i].Hotspots > out[j].Hotspots
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// ASNCount is one point of Fig 9.
type ASNCount struct {
	ASN      uint32
	Hotspots int
}
