package chainkey

import (
	"testing"

	"peoplesnet/internal/stats"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(stats.NewRNG(42))
	b := Generate(stats.NewRNG(42))
	if a.Address() != b.Address() {
		t.Fatal("same seed produced different keys")
	}
	c := Generate(stats.NewRNG(43))
	if a.Address() == c.Address() {
		t.Fatal("different seeds produced same key")
	}
}

func TestSignVerify(t *testing.T) {
	k := Generate(stats.NewRNG(1))
	msg := []byte("state_channel_close payload")
	sig := k.Sign(msg)
	if !Verify(k.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(k.Public, []byte("tampered"), sig) {
		t.Fatal("tampered message accepted")
	}
	other := Generate(stats.NewRNG(2))
	if Verify(other.Public, msg, sig) {
		t.Fatal("wrong key accepted")
	}
}

func TestVerifyStrict(t *testing.T) {
	k := Generate(stats.NewRNG(3))
	msg := []byte("m")
	if err := VerifyStrict(k.Public, msg, k.Sign(msg)); err != nil {
		t.Fatalf("VerifyStrict on valid sig: %v", err)
	}
	if err := VerifyStrict(k.Public, msg, make([]byte, 64)); err == nil {
		t.Fatal("VerifyStrict accepted zero signature")
	}
}

func TestVerifyShortKey(t *testing.T) {
	if Verify([]byte{1, 2, 3}, []byte("m"), make([]byte, 64)) {
		t.Fatal("short public key accepted")
	}
}

func TestAddressFormat(t *testing.T) {
	k := Generate(stats.NewRNG(4))
	addr := k.Address()
	if !ValidAddress(addr) {
		t.Fatalf("generated address %q is invalid", addr)
	}
	if ValidAddress("bogus") || ValidAddress("sim1!!!!") || ValidAddress("") {
		t.Fatal("invalid addresses accepted")
	}
	if AddressOf(k.Public) != addr {
		t.Fatal("AddressOf disagrees with Address")
	}
}

func TestAddressUniqueness(t *testing.T) {
	rng := stats.NewRNG(5)
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		addr := Generate(rng).Address()
		if seen[addr] {
			t.Fatalf("duplicate address %q", addr)
		}
		seen[addr] = true
	}
}
