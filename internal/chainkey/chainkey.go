// Package chainkey provides the key material used on the simulated
// Helium blockchain: ed25519 keypairs, base32-flavored addresses, and
// detached signatures over transaction payloads. Wallets (owner
// accounts), hotspots, routers/OUIs, and devices all identify
// themselves with a chainkey address.
package chainkey

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base32"
	"errors"
	"fmt"

	"peoplesnet/internal/stats"
)

// AddressPrefix distinguishes simulated addresses from anything real.
const AddressPrefix = "sim1"

var addrEncoding = base32.StdEncoding.WithPadding(base32.NoPadding)

// Keypair is an ed25519 signing identity.
type Keypair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// Generate creates a keypair from the deterministic RNG. Simulation
// keys must be reproducible from the world seed, so generation draws
// the 32-byte seed from rng rather than crypto/rand.
func Generate(rng *stats.RNG) *Keypair {
	seed := make([]byte, ed25519.SeedSize)
	for i := 0; i < len(seed); i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8 && i+j < len(seed); j++ {
			seed[i+j] = byte(v >> (8 * j))
		}
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Keypair{
		Public:  priv.Public().(ed25519.PublicKey),
		private: priv,
	}
}

// Address returns the wallet/hotspot address for the public key:
// "sim1" + base32(sha256(pub)[:20]).
func (k *Keypair) Address() string { return AddressOf(k.Public) }

// AddressOf derives the address for any public key.
func AddressOf(pub ed25519.PublicKey) string {
	sum := sha256.Sum256(pub)
	return AddressPrefix + addrEncoding.EncodeToString(sum[:20])
}

// ValidAddress reports whether s is syntactically a simulated address.
func ValidAddress(s string) bool {
	if len(s) < len(AddressPrefix)+4 || s[:len(AddressPrefix)] != AddressPrefix {
		return false
	}
	raw, err := addrEncoding.DecodeString(s[len(AddressPrefix):])
	return err == nil && len(raw) == 20
}

// Sign returns a detached ed25519 signature over msg.
func (k *Keypair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Verify checks sig over msg against pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// ErrBadSignature is returned by VerifyStrict on failure.
var ErrBadSignature = errors.New("chainkey: signature verification failed")

// VerifyStrict is Verify returning a descriptive error.
func VerifyStrict(pub ed25519.PublicKey, msg, sig []byte) error {
	if !Verify(pub, msg, sig) {
		return fmt.Errorf("%w (pubkey %x…)", ErrBadSignature, shortPrefix(pub))
	}
	return nil
}

func shortPrefix(b []byte) []byte {
	if len(b) > 4 {
		return b[:4]
	}
	return b
}
