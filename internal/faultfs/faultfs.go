// Package faultfs wraps an etl.FS with deterministic, seedable I/O
// faults for crash-recovery testing. Every state-mutating operation
// (create, append-open, write, sync, rename, remove) increments an op
// counter; configuring FailAtOp = k makes the k-th such op fail with
// ErrInjected. With Crash set, every later mutating op fails too —
// modeling a process that died at that point — so a test can enumerate
// k over a workload's full op count and prove recovery from every
// crash site. TornWrite makes the failing write persist a
// seeded-random prefix of its buffer first, the way a real crash tears
// a partially flushed write. CorruptFile flips a seeded-random bit in
// a file at rest, modeling silent media damage. Heal and FailAt extend
// a single FS into a multi-crash schedule: arm a fault, let the
// process under test die on it, Heal at the supervised restart, arm
// the next — the disk survives the process, as in real node churn.
//
// The wrapper is deterministic: the same seed and workload produce
// the same faults, so every matrix failure reproduces exactly.
package faultfs

import (
	"errors"
	"sync"

	"peoplesnet/internal/etl"
	"peoplesnet/internal/stats"
)

// ErrInjected is the error every injected fault returns.
var ErrInjected = errors.New("faultfs: injected fault")

// Config selects which faults fire.
type Config struct {
	// Seed drives the deterministic RNG behind TornWrite prefixes and
	// CorruptFile bit choices.
	Seed int64
	// FailAtOp makes the k-th mutating operation (1-based) fail; 0
	// injects nothing.
	FailAtOp int
	// Crash makes every mutating op after the first failure fail too,
	// modeling a dead process rather than a transient fault.
	Crash bool
	// TornWrite makes a failing Write persist a random prefix of its
	// buffer before reporting failure.
	TornWrite bool
}

// FS wraps an inner etl.FS with fault injection.
type FS struct {
	inner etl.FS
	cfg   Config

	mu     sync.Mutex
	ops    int
	failed bool
	rng    *stats.RNG
}

// New wraps inner with the given fault plan.
func New(inner etl.FS, cfg Config) *FS {
	return &FS{inner: inner, cfg: cfg, rng: stats.NewRNG(uint64(cfg.Seed))}
}

// Ops returns how many mutating operations have been attempted. A
// fault-free passthrough run's final count bounds the crash matrix.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Heal clears any tripped fault and disarms the plan: every later op
// succeeds. Supervised-restart tests call it when the "process" comes
// back up — the crash killed the process, not the disk — so the same
// FS (and op counter) carries across incarnations.
func (f *FS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failed = false
	f.cfg.FailAtOp = 0
}

// FailAt re-arms the plan at runtime: the k-th mutating op from now
// fails (k is 1-based, relative to the current counter). Crash and
// TornWrite keep their configured values. Together with Heal this
// turns one FS into a full crash schedule — arm, crash, heal at
// restart, arm again — without rebuilding stores on a fresh wrapper.
func (f *FS) FailAt(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failed = false
	f.cfg.FailAtOp = f.ops + k
}

// step counts one mutating op and reports whether it must fail.
func (f *FS) step() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.failed && f.cfg.Crash {
		return true
	}
	if f.cfg.FailAtOp > 0 && f.ops == f.cfg.FailAtOp {
		f.failed = true
		return true
	}
	return false
}

// tornLen picks how much of a failing write persists.
func (f *FS) tornLen(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.cfg.TornWrite || n == 0 {
		return 0
	}
	return f.rng.Intn(n)
}

func (f *FS) MkdirAll(dir string) error            { return f.inner.MkdirAll(dir) }
func (f *FS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }
func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

func (f *FS) Create(name string) (etl.File, error) {
	if f.step() {
		return nil, ErrInjected
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) Append(name string) (etl.File, error) {
	if f.step() {
		return nil, ErrInjected
	}
	inner, err := f.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) Rename(oldname, newname string) error {
	if f.step() {
		return ErrInjected
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FS) Remove(name string) error {
	if f.step() {
		return ErrInjected
	}
	return f.inner.Remove(name)
}

// file wraps an inner handle so writes and syncs hit the fault plan.
type file struct {
	fs    *FS
	inner etl.File
}

func (h *file) Write(p []byte) (int, error) {
	if h.fs.step() {
		if n := h.fs.tornLen(len(p)); n > 0 {
			h.inner.Write(p[:n])
		}
		return 0, ErrInjected
	}
	return h.inner.Write(p)
}

func (h *file) Sync() error {
	if h.fs.step() {
		return ErrInjected
	}
	return h.inner.Sync()
}

func (h *file) Close() error { return h.inner.Close() }

// CorruptFile flips one seeded-random bit of name in place, through
// the inner FS (bypassing fault counting). It reports the chosen byte
// offset so failures print reproducibly.
func (f *FS) CorruptFile(name string) (offset int, err error) {
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, errors.New("faultfs: cannot corrupt empty file")
	}
	f.mu.Lock()
	offset = f.rng.Intn(len(data))
	bit := uint(f.rng.Intn(8))
	f.mu.Unlock()
	data[offset] ^= 1 << bit
	w, err := f.inner.Create(name)
	if err != nil {
		return offset, err
	}
	if _, err := w.Write(data); err != nil {
		_ = w.Close() // already failing; the write error wins
		return offset, err
	}
	if err := w.Sync(); err != nil {
		_ = w.Close() // already failing; the sync error wins
		return offset, err
	}
	return offset, w.Close()
}
