package fieldtest

import (
	"fmt"

	"peoplesnet/internal/device"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/radio"
	"peoplesnet/internal/stats"
)

// Scenario builders reproducing the paper's §8 setups. Coordinates are
// synthetic stand-ins for the authors' San Diego locations; what
// matters is the geometry (hotspot density, distances), the
// environment class, and the backhaul reliability mix.

// BestCase reproduces §8.1's first experiment: an unmodified hotspot
// on good campus backhaul, a stationary dev board nearby, ~24 virtual
// hours of free-running counter traffic, and multi-hour backhaul
// outages around a firmware release. Between outages nearly every
// packet gets through; the outages drag overall PRR to ≈0.69.
func BestCase(seed uint64) Config {
	center := geo.Point{Lat: 32.8812, Lon: -117.2344} // campus-ish
	return Config{
		Hotspots: []Hotspot{
			// The owned hotspot: close, public IP, reliable.
			{Address: "own-hotspot", Loc: geo.Destination(center, 45, 0.25), Env: radio.Urban, GainDBi: 3, Online: true, BackhaulDropProb: 0.02},
			// Distant third-party hotspots that rarely matter.
			{Address: "third-party-1", Loc: geo.Destination(center, 200, 2.4), Env: radio.Urban, GainDBi: 3, Online: true, Relayed: true, BackhaulDropProb: 0.3},
			{Address: "third-party-2", Loc: geo.Destination(center, 320, 3.1), Env: radio.Urban, GainDBi: 3, Online: true, Relayed: true, BackhaulDropProb: 0.3},
		},
		DeviceLoc:   center,
		DurationSec: 24 * 3600,
		// ~7.3 h of firmware-update outage across the day → overall
		// PRR ≈ (24−7.3)/24 · 0.98 ≈ 0.68.
		Outages: []Outage{
			{Start: 6 * 3600, End: 8 * 3600},
			{Start: 12.2 * 3600, End: 14.7 * 3600},
			{Start: 19 * 3600, End: 21.8 * 3600},
		},
		RouterLatencyBase:   0.25,
		RouterLatencyJit:    0.5,
		RelayPenaltySec:     1.1,
		DownlinkExtraLossDB: 6,
		StaticShadowing:     true,
		Seed:                seed,
	}
}

// Residential reproduces §8.1's September re-run: denser neighbourhood
// (at least six hotspots ferry data, Fig 16), no firmware outages, but
// a heavily relayed hotspot mix whose per-packet backhaul flakiness
// yields PRR ≈ 0.73 with mostly short miss runs.
func Residential(seed uint64) Config {
	center := geo.Point{Lat: 32.7485, Lon: -117.1305}
	rng := stats.NewRNG(seed ^ 0x5eed)
	hs := make([]Hotspot, 0, 9)
	for i := 0; i < 8; i++ {
		bearing := float64(i) * 45
		dist := 0.9 + rng.Float64()*1.0
		relayed := rng.Bool(0.55) // §6.2's relay prevalence
		drop := 0.3
		if relayed {
			drop = 0.55
		}
		hs = append(hs, Hotspot{
			Address:          fmt.Sprintf("res-hs-%d", i),
			Loc:              geo.Destination(center, bearing, dist),
			Env:              radio.Urban,
			GainDBi:          1 + rng.Float64()*3,
			Relayed:          relayed,
			Online:           true,
			BackhaulDropProb: drop,
		})
	}
	// The authors' own hotspot: same structure (strong RSSI ≈ −55) but
	// NAT'd, relayed, and flaky — "rarely chosen by the Console".
	hs = append(hs, Hotspot{
		Address: "authors-own", Loc: geo.Destination(center, 10, 0.02),
		Env: radio.DenseUrban, GainDBi: 0, Relayed: true, Online: true,
		BackhaulDropProb: 0.27,
	})
	return Config{
		Hotspots:            hs,
		DeviceLoc:           center,
		DurationSec:         8 * 3600,
		RouterLatencyBase:   0.25,
		RouterLatencyJit:    0.45,
		RelayPenaltySec:     1.1,
		DownlinkExtraLossDB: 6,
		StaticShadowing:     true,
		Seed:                seed,
	}
}

// walkLoop builds a rectangular neighbourhood walk around center.
func walkLoop(center geo.Point, legKm float64) *device.Walk {
	a := geo.Destination(center, 0, legKm/2)
	b := geo.Destination(a, 90, legKm)
	c := geo.Destination(b, 180, legKm)
	d := geo.Destination(c, 270, legKm)
	return &device.Walk{
		Waypoints: []geo.Point{a, b, c, d, a},
		SpeedKmh:  4.5,
	}
}

// UrbanWalk reproduces Fig 15a / Table 2: a walk through an urban
// neighbourhood with moderate hotspot density. Expected PRR ≈ 0.73,
// zero incorrect ACKs, ~13% incorrect NACKs.
func UrbanWalk(seed uint64) Config {
	center := geo.Point{Lat: 32.7157, Lon: -117.1611}
	rng := stats.NewRNG(seed ^ 0x0b1)
	walk := walkLoop(center, 1.4)
	// Hotspots line the walked streets — the paper's Fig 15a shows
	// blue coverage circles hugging most of the route with an
	// uncovered stretch where the red (lost) dots cluster. Covering
	// ~72% of the loop with street-adjacent hotspots reproduces both
	// the ≈73% PRR and the contiguous loss runs.
	hs := hotspotsAlongWalk(walk, "urb-hs", 0.02, 0.72, 9, 0.33,
		radio.Urban, 0.3, 0.55, 0.55, rng)
	return Config{
		Hotspots:            hs,
		Walk:                walk,
		DurationSec:         2 * 3600,
		RouterLatencyBase:   0.3,
		RouterLatencyJit:    0.5,
		RelayPenaltySec:     1.1,
		DownlinkExtraLossDB: 0,
		Seed:                seed,
	}
}

// SuburbanWalk reproduces Fig 15b / Table 3: a sparser suburban area.
// Expected PRR ≈ 0.78 with a higher incorrect-NACK rate (the cloud
// hears the device more often than the device hears the cloud).
func SuburbanWalk(seed uint64) Config {
	center := geo.Point{Lat: 32.8328, Lon: -117.2713}
	rng := stats.NewRNG(seed ^ 0x50b)
	walk := walkLoop(center, 2.1)
	// Sparser than the urban walk but with longer suburban reach:
	// six hotspots cover ~78% of the loop (Fig 15b).
	hs := hotspotsAlongWalk(walk, "sub-hs", 0.0, 0.78, 6, 1.62,
		radio.Suburban, 0.38, 0.58, 0.5, rng)
	return Config{
		Hotspots:            hs,
		Walk:                walk,
		DurationSec:         1 * 3600,
		RouterLatencyBase:   0.3,
		RouterLatencyJit:    0.6,
		RelayPenaltySec:     1.3,
		DownlinkExtraLossDB: 0,
		Seed:                seed,
	}
}

// hotspotsAlongWalk places n hotspots just off the walked path,
// covering the [fromFrac, toFrac] stretch of the walk and leaving the
// rest bare. offKm sets how far from the path each hotspot sits.
// dropPublic/dropRelayed are backhaul loss probabilities; relayedProb
// matches §6.2's relay prevalence.
func hotspotsAlongWalk(w *device.Walk, prefix string, fromFrac, toFrac float64,
	n int, offKm float64, env radio.Environment,
	dropPublic, dropRelayed, relayedProb float64, rng *stats.RNG) []Hotspot {
	total := w.Duration()
	hs := make([]Hotspot, 0, n)
	for i := 0; i < n; i++ {
		frac := fromFrac + (toFrac-fromFrac)*(float64(i)+0.5)/float64(n)
		p := w.PositionAt(frac * total)
		// Alternate between street-front installs (the walk passes
		// right by them, populating the within-300 m bucket of the
		// HIP15 accuracy check) and installs deeper into the blocks.
		off := offKm * (0.6 + rng.Float64()*0.8)
		near := i%3 == 0
		if near {
			off = 0.1 + rng.Float64()*0.15
		}
		loc := geo.Destination(p, rng.Float64()*360, off)
		relayed := rng.Bool(relayedProb)
		drop := dropPublic
		if relayed {
			drop = dropRelayed
		}
		if near {
			// Street-front installs are residential NAT'd boxes — the
			// paper's own strong-RSSI hotspot was relayed and rarely
			// chosen by the Console (Fig 16).
			relayed = true
			drop = dropRelayed + 0.18
		}
		hs = append(hs, Hotspot{
			Address:          fmt.Sprintf("%s-%d", prefix, i),
			Loc:              loc,
			Env:              env,
			GainDBi:          1.5 + rng.Float64()*3,
			Relayed:          relayed,
			Online:           true,
			BackhaulDropProb: drop,
		})
	}
	return hs
}
