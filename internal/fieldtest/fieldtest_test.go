package fieldtest

import (
	"testing"

	"peoplesnet/internal/geo"
	"peoplesnet/internal/radio"
)

func TestBestCaseScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("24 virtual hours; skipped in -short")
	}
	res, err := Run(BestCase(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent < 1000 {
		t.Fatalf("only %d packets in 24 h", res.Sent)
	}
	prr := res.PRR()
	// Paper §8.1: 68.61% in the outage-affected run. Shape target:
	// PRR noticeably below perfect, above half.
	if prr < 0.55 || prr > 0.85 {
		t.Fatalf("best-case PRR = %v, want ~0.69", prr)
	}
	// Outage windows force long miss runs.
	_, _, longest := res.MissRunStats()
	if longest < 100 {
		t.Fatalf("longest miss run = %d; outages should produce multi-hour gaps", longest)
	}
	if res.IncorrectAck != 0 {
		t.Fatalf("incorrect ACKs = %d, paper found none", res.IncorrectAck)
	}
}

func TestResidentialScenario(t *testing.T) {
	res, err := Run(Residential(2))
	if err != nil {
		t.Fatal(err)
	}
	prr := res.PRR()
	// Paper: 73.2% with no significant gaps; mostly single misses.
	if prr < 0.6 || prr > 0.9 {
		t.Fatalf("residential PRR = %v, want ~0.73", prr)
	}
	single, atMostDouble, longest := res.MissRunStats()
	if single < 0.5 {
		t.Fatalf("single-miss fraction = %v, want most misses isolated", single)
	}
	if atMostDouble < single {
		t.Fatal("miss-run fractions inconsistent")
	}
	if longest > 100 {
		t.Fatalf("longest run = %d; no outages configured", longest)
	}
}

func TestWalkScenarios(t *testing.T) {
	urban, err := Run(UrbanWalk(3))
	if err != nil {
		t.Fatal(err)
	}
	suburban, err := Run(SuburbanWalk(3))
	if err != nil {
		t.Fatal(err)
	}
	if urban.Sent < 300 || suburban.Sent < 200 {
		t.Fatalf("sent counts: urban %d suburban %d", urban.Sent, suburban.Sent)
	}
	for name, r := range map[string]*Result{"urban": urban, "suburban": suburban} {
		prr := r.PRR()
		if prr < 0.5 || prr > 0.95 {
			t.Fatalf("%s PRR = %v", name, prr)
		}
		if r.IncorrectAck != 0 {
			t.Fatalf("%s incorrect ACKs = %d, paper found none", name, r.IncorrectAck)
		}
		if r.IncorrectNack == 0 {
			t.Fatalf("%s has no incorrect NACKs; downlink asymmetry should produce some", name)
		}
		total := r.CorrectAck + r.CorrectNack + r.IncorrectAck + r.IncorrectNack
		if total != r.Sent {
			t.Fatalf("%s validity cells (%d) != sent (%d)", name, total, r.Sent)
		}
	}
}

func TestHIP15AccuracyComputation(t *testing.T) {
	cfg := UrbanWalk(4)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	within, outside := res.HIP15Accuracy(cfg.Hotspots)
	// The paper's point: the 300 m promise is unreliable — the
	// within-radius prediction is barely better than a coin flip
	// (55.5%), while absence prediction is decent (79.6%). Require the
	// qualitative ordering.
	if within <= 0 || within > 0.98 {
		t.Fatalf("within-radius accuracy = %v", within)
	}
	if outside <= 0 {
		t.Fatalf("outside accuracy = %v", outside)
	}
}

func TestAckValidityTableShape(t *testing.T) {
	res, err := Run(UrbanWalk(5))
	if err != nil {
		t.Fatal(err)
	}
	// Table 2's key qualitative findings: correct ACKs are the
	// plurality, no false ACKs, false NACKs are a nontrivial minority.
	if res.CorrectAck == 0 || res.CorrectNack == 0 {
		t.Fatalf("degenerate table: %+v", res)
	}
	fracIncorrectNack := float64(res.IncorrectNack) / float64(res.Sent)
	if fracIncorrectNack < 0.02 || fracIncorrectNack > 0.45 {
		t.Fatalf("incorrect NACK fraction = %v, want roughly 10-25%%", fracIncorrectNack)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("no hotspots accepted")
	}
	cfg := Config{
		Hotspots:    []Hotspot{{Address: "x", Loc: geo.Point{Lat: 1, Lon: 1}, Env: radio.Rural, Online: true}},
		DeviceLoc:   geo.Point{Lat: 1, Lon: 1.001},
		DurationSec: 0,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero duration accepted")
	}
	// Device too far from any hotspot: join fails with a clear error.
	far := Config{
		Hotspots:    []Hotspot{{Address: "x", Loc: geo.Point{Lat: 1, Lon: 1}, Env: radio.Urban, Online: true}},
		DeviceLoc:   geo.Point{Lat: 5, Lon: 5},
		DurationSec: 60,
	}
	if _, err := Run(far); err == nil {
		t.Fatal("unjoinable config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(Residential(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Residential(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Sent != b.Sent || a.CloudReceived != b.CloudReceived || a.CorrectAck != b.CorrectAck {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Run(Residential(43))
	if err != nil {
		t.Fatal(err)
	}
	if a.Sent == c.Sent && a.CloudReceived == c.CloudReceived && a.CorrectAck == c.CorrectAck {
		t.Fatal("different seeds produced identical results")
	}
}

func TestFig16Diagnostics(t *testing.T) {
	res, err := Run(Residential(7))
	if err != nil {
		t.Fatal(err)
	}
	// Fig 16: multiple hotspots ferry data for the residential sensor.
	if len(res.Ferried) < 2 {
		t.Fatalf("only %d hotspots ferried data", len(res.Ferried))
	}
	total := 0
	for hs, n := range res.Ferried {
		total += n
		cdf := res.RSSIByHotspot[hs]
		if cdf == nil || cdf.N() != n {
			t.Fatalf("RSSI samples for %s = %v, deliveries %d", hs, cdf, n)
		}
		// RSSIs are LoRa-plausible.
		if cdf.Max() > -20 || cdf.Min() < -150 {
			t.Fatalf("%s RSSI range [%v, %v]", hs, cdf.Min(), cdf.Max())
		}
	}
	// Duplicate copies mean ferried totals exceed cloud receptions.
	if total < res.CloudReceived {
		t.Fatalf("ferried %d < received %d", total, res.CloudReceived)
	}
	// The strong nearby hotspot reports much higher RSSI than the ring
	// (the paper's -55 vs -90..-120 spread).
	own, ok := res.RSSIByHotspot["authors-own"]
	if ok && own.N() > 10 {
		for hs, cdf := range res.RSSIByHotspot {
			if hs != "authors-own" && cdf.N() > 10 && cdf.Median() > own.Median() {
				t.Fatalf("ring hotspot %s median %v above own hotspot %v", hs, cdf.Median(), own.Median())
			}
		}
	}
}
