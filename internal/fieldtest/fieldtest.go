// Package fieldtest drives the paper's §8 empirical experiments in
// virtual time: the best-case stationary test (§8.1, 68.61% / 73.2%
// PRR with outage and miss-run structure), and the urban/suburban
// coverage walks (§8.2.2, Fig 15) with their ACK/NACK validity tables
// (Tables 2 and 3) and HIP15 prediction accuracy.
//
// The driver wires real components together — a device producing
// LoRaWAN frames, hotspots reselling them to a router through state
// channels, the router ACKing into class-A windows — with the radio
// model deciding which hotspots hear which transmissions.
package fieldtest

import (
	"fmt"
	"math"
	"sort"

	"peoplesnet/internal/chainkey"
	"peoplesnet/internal/device"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/hotspot"
	"peoplesnet/internal/lorawan"
	"peoplesnet/internal/radio"
	"peoplesnet/internal/router"
	"peoplesnet/internal/stats"
)

// Hotspot is one gateway in the experiment's neighbourhood.
type Hotspot struct {
	Address string
	Loc     geo.Point
	Env     radio.Environment
	GainDBi float64
	// Relayed hotspots add backhaul latency to the router's ACK path
	// (the paper's own hotspot was "rarely chosen... perhaps because
	// this hotspot is on a NAT'd residential connection and is
	// relayed", Fig 16).
	Relayed bool
	// Online gates backhaul; radio may still work while the cloud
	// path is down.
	Online bool
	// BackhaulDropProb is the per-packet probability that the
	// forwarder→miner→router path loses the packet even though the
	// radio decoded it: the no-retry UDP protocol, NAT bindings, and
	// relay flakiness the paper blames for unreliability (§2.2, §6.2).
	BackhaulDropProb float64
}

// Outage is a backhaul outage window in virtual seconds.
type Outage struct{ Start, End float64 }

// Config parameterizes one experiment run.
type Config struct {
	Hotspots []Hotspot
	// Walk, if non-nil, moves the device; otherwise it stays at
	// DeviceLoc.
	Walk      *device.Walk
	DeviceLoc geo.Point
	// DurationSec is the experiment length in virtual seconds. For
	// walks, the walk duration is used if shorter.
	DurationSec float64
	// Outages knock every hotspot's backhaul out (§8.1's ~2 h gaps
	// around a firmware release).
	Outages []Outage
	// RouterLatencyBase/Jitter shape the ACK-latency sample; relayed
	// hotspots add RelayPenaltySec.
	RouterLatencyBase float64
	RouterLatencyJit  float64
	RelayPenaltySec   float64
	// DownlinkLossProb adds downlink-specific loss beyond the PHY
	// asymmetry (gateway → device is harder, [21]).
	DownlinkExtraLossDB float64
	// StaticShadowing freezes one log-normal shadowing draw per
	// device↔hotspot link for the whole run, with only small fast
	// fading per packet. Physically right for a stationary device
	// (§8.1); walks leave it off because the geometry changes.
	StaticShadowing bool
	// Seed drives all randomness.
	Seed uint64
}

// PacketOutcome records one packet's fate on both sides of the
// network, the raw material of Tables 2–3 and Fig 15.
type PacketOutcome struct {
	Counter   uint32
	SentAt    float64
	Loc       geo.Point
	Receivers int  // hotspots that decoded the uplink
	Cloud     bool // payload reached the application (green dot)
	Acked     bool // device saw an ACK
	AckWindow int
}

// Result aggregates an experiment.
type Result struct {
	Packets []PacketOutcome

	Sent          int
	CloudReceived int

	// ACK validity (Tables 2, 3).
	CorrectAck    int // acked and cloud received
	CorrectNack   int // no ack, not received
	IncorrectAck  int // acked but never reached cloud
	IncorrectNack int // no ack, but cloud has it

	// Miss-run structure (§8.1): lengths of consecutive missed
	// packets.
	MissRuns []int

	// Ferried counts deliveries per hotspot and RSSIByHotspot tracks
	// the uplink RSSIs each reported — the Fig 16 appendix diagnostics
	// ("at least six different hotspots ferry data from this sensor...
	// RSSI ranging from -120 to -55").
	Ferried       map[string]int
	RSSIByHotspot map[string]*stats.CDF
}

// PRR returns the packet reception ratio (cloud side).
func (r *Result) PRR() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.CloudReceived) / float64(r.Sent)
}

// MissRunStats summarizes the miss-run distribution as (fraction of
// misses in runs of exactly 1, fraction in runs ≤2, longest run).
func (r *Result) MissRunStats() (single, atMostDouble float64, longest int) {
	totalMissed := 0
	inSingles, inDoubles := 0, 0
	for _, run := range r.MissRuns {
		totalMissed += run
		if run == 1 {
			inSingles += run
		}
		if run <= 2 {
			inDoubles += run
		}
		if run > longest {
			longest = run
		}
	}
	if totalMissed == 0 {
		return 0, 0, 0
	}
	return float64(inSingles) / float64(totalMissed), float64(inDoubles) / float64(totalMissed), longest
}

// HIP15Accuracy evaluates the 300 m coverage promise against the
// packet record (§8.2.2): prediction accuracy when the device was
// within 300 m of some hotspot, and when it was not.
func (r *Result) HIP15Accuracy(hotspots []Hotspot) (withinAcc, outsideAcc float64) {
	var withinTotal, withinOK, outsideTotal, outsideOK int
	for _, p := range r.Packets {
		within := false
		for _, h := range hotspots {
			if geo.HaversineM(p.Loc, h.Loc) <= 300 {
				within = true
				break
			}
		}
		if within {
			withinTotal++
			if p.Cloud {
				withinOK++
			}
		} else {
			outsideTotal++
			if !p.Cloud {
				outsideOK++
			}
		}
	}
	if withinTotal > 0 {
		withinAcc = float64(withinOK) / float64(withinTotal)
	}
	if outsideTotal > 0 {
		outsideAcc = float64(outsideOK) / float64(outsideTotal)
	}
	return
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Hotspots) == 0 {
		return nil, fmt.Errorf("fieldtest: no hotspots")
	}
	rng := stats.NewRNG(cfg.Seed)
	devRNG := rng.Split("devices")
	radioRNG := rng.Split("radio")
	routerRNG := rng.Split("router")

	// Router with a latency sampler that the driver parameterizes per
	// packet (base + jitter + relay penalty via closure state).
	extraLatency := 0.0
	rtr := router.New(router.Config{
		OUI:   1,
		Owner: "console",
		Keys:  chainkey.Generate(routerRNG),
		LatencySampler: func() float64 {
			l := cfg.RouterLatencyBase + routerRNG.Exponential(1/maxf(cfg.RouterLatencyJit, 1e-9))
			return l + extraLatency
		},
	}, routerRNG)

	var appKey lorawan.AppKey
	copy(appKey[:], "fieldtest-appkey")
	dev := device.New(lorawan.EUIFromUint64(0xD0), lorawan.EUIFromUint64(0xA0), appKey)
	rtr.RegisterDevice(router.Device{
		DevEUI: dev.DevEUI, AppEUI: dev.AppEUI, AppKey: appKey, UserID: "experimenter",
	})
	dir := router.NewDirectory(rtr)
	miners := make([]*hotspot.Miner, len(cfg.Hotspots))
	for i, h := range cfg.Hotspots {
		miners[i] = hotspot.NewMiner(h.Address, dir)
	}

	pos := func(t float64) geo.Point {
		if cfg.Walk != nil {
			return cfg.Walk.PositionAt(t)
		}
		return cfg.DeviceLoc
	}
	inOutage := func(t float64) bool {
		for _, o := range cfg.Outages {
			if t >= o.Start && t < o.End {
				return true
			}
		}
		return false
	}

	duration := cfg.DurationSec
	if cfg.Walk != nil {
		if wd := cfg.Walk.Duration(); duration == 0 || (wd > 0 && wd < duration) {
			duration = wd
		}
	}
	if duration <= 0 {
		return nil, fmt.Errorf("fieldtest: non-positive duration")
	}

	// Shadowing is reciprocal: the same obstruction attenuates uplink
	// and downlink alike, so each packet draws ONE shadow value per
	// device↔hotspot link, shared by both directions (plus a small
	// per-direction fast fade). Stationary runs freeze the draw for
	// the whole experiment (§8.1); walks redraw per packet because the
	// geometry changes.
	shadow := make([]float64, len(cfg.Hotspots))
	sigmaOf := func(h Hotspot) float64 {
		if cfg.StaticShadowing {
			return 7
		}
		switch h.Env {
		case radio.Urban, radio.DenseUrban:
			return 8
		case radio.Suburban:
			return 6
		default:
			return 4
		}
	}
	for i, h := range cfg.Hotspots {
		shadow[i] = radioRNG.Normal(0, sigmaOf(h))
	}
	// Walks evolve each link's shadow as an AR(1) process: shadowing
	// decorrelates over tens of meters of movement, not per packet.
	// Independent per-packet redraws would let a dozen out-of-range
	// hotspots take turns getting lucky, erasing the contiguous
	// dead zones the paper's walk maps show (Fig 15).
	const shadowRho = 0.975
	resampleShadow := func() {
		for i, h := range cfg.Hotspots {
			sigma := sigmaOf(h)
			shadow[i] = shadowRho*shadow[i] +
				math.Sqrt(1-shadowRho*shadowRho)*radioRNG.Normal(0, sigma)
		}
	}

	// linkRSSI computes the received power on the device↔hotspot link
	// in either direction using the current shadow draw.
	linkRSSI := func(hIdx int, p geo.Point, up bool) float64 {
		h := cfg.Hotspots[hIdx]
		link := radio.Link{Model: radio.NewPathLoss(h.Env, 915)}
		if up {
			link.TxPowerDBm, link.TxGainDBi, link.RxGainDBi = 20, 0, h.GainDBi
		} else {
			link.TxPowerDBm, link.TxGainDBi, link.RxGainDBi = 27, h.GainDBi, 0
			link.NoiseFigure = cfg.DownlinkExtraLossDB
		}
		dist := geo.HaversineKm(p, h.Loc)
		return link.RSSI(dist, nil) + shadow[hIdx] + radioRNG.Normal(0, 1.5)
	}

	// uplinkReceivers returns the indexes of hotspots that decode a
	// transmission from p, strongest first.
	uplinkReceivers := func(p geo.Point) []int {
		type rx struct {
			idx  int
			rssi float64
		}
		var rxs []rx
		for i := range cfg.Hotspots {
			rssi := linkRSSI(i, p, true)
			if radio.Delivered(rssi, radio.SF9, radio.BW125, radioRNG) {
				rxs = append(rxs, rx{i, rssi})
			}
		}
		sort.Slice(rxs, func(a, b int) bool { return rxs[a].rssi > rxs[b].rssi })
		out := make([]int, len(rxs))
		for i, r := range rxs {
			out[i] = r.idx
		}
		return out
	}

	// deliverDownlink models the gateway→device path with extra loss
	// for the asymmetry.
	deliverDownlink := func(hIdx int, p geo.Point) bool {
		rssi := linkRSSI(hIdx, p, false)
		return radio.Delivered(rssi, radio.SF9, radio.BW500, radioRNG)
	}

	// Join: keep trying until a hotspot carries the join exchange.
	t := 0.0
	for !dev.Joined() && t < duration {
		if !cfg.StaticShadowing {
			resampleShadow()
		}
		jr := dev.BuildJoinRequest()
		receivers := uplinkReceivers(pos(t))
		if len(receivers) > 0 && !inOutage(t) {
			hIdx := receivers[0]
			if cfg.Hotspots[hIdx].Online && !radioRNG.Bool(cfg.Hotspots[hIdx].BackhaulDropProb) {
				extraLatency = relayPenalty(cfg, hIdx)
				dl, _, err := miners[hIdx].HandleUplink(jr)
				if err == nil && dl != nil && deliverDownlink(hIdx, pos(t)) {
					if err := dev.HandleJoinAccept(dl); err != nil {
						return nil, err
					}
				}
			}
		}
		t += 5
	}
	if !dev.Joined() {
		return nil, fmt.Errorf("fieldtest: device never joined (no coverage at start)")
	}

	res := &Result{Ferried: map[string]int{}, RSSIByHotspot: map[string]*stats.CDF{}}
	missRun := 0
	_ = devRNG
	for t < duration {
		if !cfg.StaticShadowing {
			resampleShadow()
		}
		p := pos(t)
		frame, err := dev.SendCounter(t, p)
		if err != nil {
			return nil, err
		}
		res.Sent++
		out := PacketOutcome{Counter: dev.Counter(), SentAt: t, Loc: p}

		receivers := uplinkReceivers(p)
		out.Receivers = len(receivers)
		acked := false
		window := 0
		if len(receivers) > 0 && !inOutage(t) {
			// Every receiving hotspot offers its copy; the router's
			// dedup means one app delivery. The ACK rides back through
			// the first hotspot the router purchased from (strongest).
			var ackDl []byte
			ackVia := -1
			for _, hIdx := range receivers {
				if !cfg.Hotspots[hIdx].Online {
					continue
				}
				if radioRNG.Bool(cfg.Hotspots[hIdx].BackhaulDropProb) {
					continue
				}
				extraLatency = relayPenalty(cfg, hIdx)
				dl, w, err := miners[hIdx].HandleUplink(frame)
				if err != nil {
					continue
				}
				out.Cloud = true
				name := cfg.Hotspots[hIdx].Address
				res.Ferried[name]++
				cdf := res.RSSIByHotspot[name]
				if cdf == nil {
					cdf = &stats.CDF{}
					res.RSSIByHotspot[name] = cdf
				}
				cdf.Add(linkRSSI(hIdx, p, true))
				if dl != nil && ackDl == nil {
					ackDl, window, ackVia = dl, w, hIdx
				}
			}
			if ackDl != nil && ackVia >= 0 && deliverDownlink(ackVia, p) {
				if err := dev.HandleDownlink(ackDl, window); err == nil {
					log := dev.Log()
					acked = log[len(log)-1].Acked
				}
			}
		}
		out.Acked = acked
		out.AckWindow = window
		res.Packets = append(res.Packets, out)

		if out.Cloud {
			res.CloudReceived++
			if missRun > 0 {
				res.MissRuns = append(res.MissRuns, missRun)
				missRun = 0
			}
		} else {
			missRun++
		}
		switch {
		case out.Acked && out.Cloud:
			res.CorrectAck++
		case !out.Acked && !out.Cloud:
			res.CorrectNack++
		case out.Acked && !out.Cloud:
			res.IncorrectAck++
		default:
			res.IncorrectNack++
		}

		t += radio.Airtime(len(frame), radio.SF9, radio.BW125) + device.NextSendDelay(acked, window)
	}
	if missRun > 0 {
		res.MissRuns = append(res.MissRuns, missRun)
	}
	return res, nil
}

func relayPenalty(cfg Config, hIdx int) float64 {
	if cfg.Hotspots[hIdx].Relayed {
		return cfg.RelayPenaltySec
	}
	return 0
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
