package radio

// Collision resolution. LoRa's chirp modulation gives strong capture:
// when two transmissions overlap on the same channel and spreading
// factor, the stronger one still decodes if it leads by roughly 6 dB
// (the co-SF rejection threshold); transmissions on different SFs are
// quasi-orthogonal and survive each other. Dense free-running senders
// — exactly the §8.1 counter app — collide this way.

// CaptureThresholdDB is the co-channel, co-SF power advantage needed
// for the stronger frame to survive an overlap.
const CaptureThresholdDB = 6

// Transmission describes one on-air frame for collision arbitration.
type Transmission struct {
	ID      int
	Channel int
	SF      SpreadingFactor
	RSSIdBm float64 // at the receiver doing the arbitration
	// Start and End bound the frame on air, in seconds.
	Start, End float64
}

// overlaps reports whether two transmissions intersect in time.
func overlaps(a, b Transmission) bool {
	return a.Start < b.End && b.Start < a.End
}

// interferes reports whether b can corrupt a: same channel, same SF
// (different SFs are quasi-orthogonal), overlapping in time.
func interferes(a, b Transmission) bool {
	return a.ID != b.ID && a.Channel == b.Channel && a.SF == b.SF && overlaps(a, b)
}

// Survivors returns the IDs of transmissions that decode despite
// overlaps, applying the capture rule pairwise: a frame survives if it
// beats every interferer by CaptureThresholdDB.
func Survivors(txs []Transmission) []int {
	var out []int
	for _, a := range txs {
		ok := true
		for _, b := range txs {
			if !interferes(a, b) {
				continue
			}
			if a.RSSIdBm < b.RSSIdBm+CaptureThresholdDB {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, a.ID)
		}
	}
	return out
}
