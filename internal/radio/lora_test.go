package radio

import (
	"math"
	"testing"

	"peoplesnet/internal/stats"
)

func TestSensitivityOrdering(t *testing.T) {
	// Higher SF = better sensitivity (more negative).
	prev := 0.0
	for sf := SF7; sf <= SF12; sf++ {
		s := Sensitivity(sf, BW125)
		if sf > SF7 && s >= prev {
			t.Fatalf("sensitivity not monotone at %v: %v >= %v", sf, s, prev)
		}
		prev = s
	}
	// Wider bandwidth = worse sensitivity.
	if Sensitivity(SF9, BW500) <= Sensitivity(SF9, BW125) {
		t.Fatal("BW500 should be less sensitive than BW125")
	}
}

func TestSensitivityValues(t *testing.T) {
	if got := Sensitivity(SF12, BW125); got != -137 {
		t.Fatalf("SF12/125 sensitivity = %v", got)
	}
	if got := Sensitivity(SF7, BW125); got != -123 {
		t.Fatalf("SF7/125 sensitivity = %v", got)
	}
}

func TestAirtimeKnownValue(t *testing.T) {
	// SF7/125kHz, 20-byte payload ≈ 56.6 ms (standard LoRa calculator
	// output with 8-symbol preamble, explicit header, CR4/5, CRC).
	got := Airtime(20, SF7, BW125) * 1000
	if math.Abs(got-56.6) > 1 {
		t.Fatalf("airtime SF7/20B = %v ms, want ~56.6", got)
	}
	// SF12/125kHz, 20 bytes ≈ 1.32 s.
	got12 := Airtime(20, SF12, BW125)
	if math.Abs(got12-1.32) > 0.15 {
		t.Fatalf("airtime SF12/20B = %v s, want ~1.32", got12)
	}
}

func TestAirtimeMonotonicity(t *testing.T) {
	for sf := SF7; sf < SF12; sf++ {
		if Airtime(20, sf, BW125) >= Airtime(20, sf+1, BW125) {
			t.Fatalf("airtime should grow with SF (at %v)", sf)
		}
	}
	if Airtime(10, SF9, BW125) >= Airtime(100, SF9, BW125) {
		t.Fatal("airtime should grow with payload")
	}
	if Airtime(20, SF9, BW500) >= Airtime(20, SF9, BW125) {
		t.Fatal("airtime should shrink with bandwidth")
	}
	if Airtime(-1, SF9, BW125) != 0 || Airtime(10, SpreadingFactor(99), BW125) != 0 {
		t.Fatal("invalid inputs should yield 0")
	}
}

func TestFSPL(t *testing.T) {
	// 1 km @ 915 MHz ≈ 91.7 dB.
	got := FSPLdB(1, 915)
	if math.Abs(got-91.7) > 0.3 {
		t.Fatalf("FSPL(1km, 915MHz) = %v", got)
	}
	// +6 dB per distance doubling.
	if d := FSPLdB(2, 915) - FSPLdB(1, 915); math.Abs(d-6.02) > 0.05 {
		t.Fatalf("doubling delta = %v", d)
	}
	if FSPLdB(0, 915) != 0 || FSPLdB(-5, 915) != 0 {
		t.Fatal("non-positive distance should yield 0")
	}
}

func TestFSPLRangeM(t *testing.T) {
	// Paper §8.2.1: at witness RSSI −108 dBm and sensitivity −134 dBm
	// the growth is ≈20 m.
	got := FSPLRangeM(-108, DeviceSensitivityDBm)
	if math.Abs(got-19.95) > 0.1 {
		t.Fatalf("FSPLRangeM(-108, -134) = %v m, want ~20", got)
	}
	if FSPLRangeM(-140, -134) != 0 {
		t.Fatal("negative margin should yield 0 range")
	}
}

func TestPathLossMonotone(t *testing.T) {
	m := NewPathLoss(Urban, 915)
	prev := -1.0
	for _, d := range []float64{0.05, 0.1, 0.3, 1, 3, 10} {
		loss := m.MedianLossDB(d)
		if loss <= prev {
			t.Fatalf("path loss not monotone at %v km", d)
		}
		prev = loss
	}
}

func TestPathLossEnvironmentOrdering(t *testing.T) {
	// At the same distance, harsher environments lose more.
	d := 2.0
	envs := []Environment{FreeSpace, Rural, Suburban, Urban, DenseUrban}
	prev := -1.0
	for _, e := range envs {
		loss := NewPathLoss(e, 915).MedianLossDB(d)
		if loss <= prev {
			t.Fatalf("%v loss %v not above previous %v", e, loss, prev)
		}
		prev = loss
	}
}

func TestShadowingVariance(t *testing.T) {
	m := NewPathLoss(Urban, 915)
	rng := stats.NewRNG(1)
	med := m.MedianLossDB(1)
	varied := false
	for i := 0; i < 100; i++ {
		if math.Abs(m.SampleLossDB(1, rng)-med) > 1 {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("shadowing produced no variation")
	}
	if m.SampleLossDB(1, nil) != med {
		t.Fatal("nil rng should return median")
	}
}

func TestLinkRSSIAndRange(t *testing.T) {
	link := Link{
		TxPowerDBm: 27, TxGainDBi: 3, RxGainDBi: 3,
		Model: NewPathLoss(FreeSpace, 915),
	}
	// Free space: generous range, tens of km at SF12.
	r := link.MaxRangeKm(SF12, BW125)
	if r < 15 {
		t.Fatalf("free-space SF12 range = %v km, want > 15", r)
	}
	// Urban range collapses to a few km.
	urban := link
	urban.Model = NewPathLoss(Urban, 915)
	ru := urban.MaxRangeKm(SF12, BW125)
	if ru >= r || ru > 10 || ru < 0.5 {
		t.Fatalf("urban SF12 range = %v km (free space %v)", ru, r)
	}
	// RSSI at the range boundary equals sensitivity.
	rssi := urban.RSSI(ru, nil)
	if math.Abs(rssi-Sensitivity(SF12, BW125)) > 0.1 {
		t.Fatalf("RSSI at max range = %v", rssi)
	}
}

func TestDelivered(t *testing.T) {
	rng := stats.NewRNG(2)
	sens := Sensitivity(SF9, BW125)
	if !Delivered(sens+10, SF9, BW125, rng) {
		t.Fatal("strong signal not delivered")
	}
	if Delivered(sens-10, SF9, BW125, rng) {
		t.Fatal("weak signal delivered")
	}
	// In the roll-off window delivery is probabilistic.
	hits := 0
	for i := 0; i < 1000; i++ {
		if Delivered(sens, SF9, BW125, rng) {
			hits++
		}
	}
	if hits < 300 || hits > 700 {
		t.Fatalf("at-sensitivity delivery rate = %d/1000, want ~500", hits)
	}
	// Deterministic midpoint without rng.
	if !Delivered(sens+0.1, SF9, BW125, nil) {
		t.Fatal("nil-rng midpoint should threshold at 0.5")
	}
}

func TestRegions(t *testing.T) {
	us := US915()
	if len(us.UplinkMHz) != 8 || len(us.DownlinkMHz) != 8 {
		t.Fatalf("US915 channels = %d up / %d down", len(us.UplinkMHz), len(us.DownlinkMHz))
	}
	if us.UplinkMHz[0] != 903.9 {
		t.Fatalf("US915 first uplink = %v", us.UplinkMHz[0])
	}
	if us.DefaultBWDown != BW500 {
		t.Fatal("US915 downlink should be 500 kHz")
	}
	eu := EU868()
	if len(eu.UplinkMHz) != 3 || eu.MaxEIRPdBm != 16 {
		t.Fatalf("EU868 = %+v", eu)
	}
}

func TestSpreadingFactorValid(t *testing.T) {
	if !SF7.Valid() || !SF12.Valid() {
		t.Fatal("valid SFs rejected")
	}
	if SpreadingFactor(6).Valid() || SpreadingFactor(13).Valid() {
		t.Fatal("invalid SFs accepted")
	}
	if SF9.String() != "SF9" {
		t.Fatal(SF9.String())
	}
}
