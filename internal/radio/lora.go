// Package radio models the LoRa physical layer well enough to drive
// the study's coverage and reliability experiments: spreading factors
// and airtime, per-SF receiver sensitivity, free-space and log-
// distance path loss with shadowing, regional channel plans, EIRP
// limits, and the uplink/downlink asymmetry the paper cites (§8.2,
// [21]) when classifying false NACKs.
package radio

import (
	"fmt"
	"math"

	"peoplesnet/internal/stats"
)

// SpreadingFactor is the LoRa chirp spreading factor.
type SpreadingFactor int

// Valid spreading factors.
const (
	SF7 SpreadingFactor = 7 + iota
	SF8
	SF9
	SF10
	SF11
	SF12
)

// Valid reports whether sf is one of SF7..SF12.
func (sf SpreadingFactor) Valid() bool { return sf >= SF7 && sf <= SF12 }

func (sf SpreadingFactor) String() string { return fmt.Sprintf("SF%d", int(sf)) }

// Bandwidth in Hz.
type Bandwidth int

// Standard LoRa bandwidths.
const (
	BW125 Bandwidth = 125_000
	BW250 Bandwidth = 250_000
	BW500 Bandwidth = 500_000
)

// Sensitivity returns the receiver sensitivity in dBm for a typical
// SX1276-class LoRa radio at the given SF and bandwidth. Values follow
// the Semtech datasheet for BW125 and scale +3 dB per bandwidth
// doubling.
func Sensitivity(sf SpreadingFactor, bw Bandwidth) float64 {
	base := map[SpreadingFactor]float64{
		SF7: -123, SF8: -126, SF9: -129, SF10: -132, SF11: -134.5, SF12: -137,
	}[sf]
	switch bw {
	case BW250:
		base += 3
	case BW500:
		base += 6
	}
	return base
}

// DeviceSensitivityDBm is the receiver sensitivity of the paper's
// reference edge hardware (ST B-L072Z-LRWAN1 / Murata module), used by
// the Witness-RSSI coverage model: s = −134 dBm (§8.2.1).
const DeviceSensitivityDBm = -134

// EIRPLimitDBm is the FCC Part 15 EIRP cap the paper cites when
// calling out absurd witness RSSIs (§7.2).
const EIRPLimitDBm = 36

// Airtime returns the on-air duration in seconds of a LoRa frame with
// the given payload length, following the SX1272/76 datasheet formula
// (preamble 8 symbols, explicit header, CR 4/5, low-data-rate
// optimization enabled for SF11/SF12 at BW125).
func Airtime(payloadBytes int, sf SpreadingFactor, bw Bandwidth) float64 {
	if !sf.Valid() || payloadBytes < 0 {
		return 0
	}
	de := 0.0
	if bw == BW125 && sf >= SF11 {
		de = 1
	}
	tSym := math.Pow(2, float64(sf)) / float64(bw)
	preamble := (8 + 4.25) * tSym
	num := 8.0*float64(payloadBytes) - 4*float64(sf) + 28 + 16 // CRC on, header on
	den := 4 * (float64(sf) - 2*de)
	nPayload := 8 + math.Max(math.Ceil(num/den)*5, 0) // CR 4/5 => (CR+4)=5
	return preamble + nPayload*tSym
}

// Region is a regulatory channel plan.
type Region struct {
	Name          string
	UplinkMHz     []float64 // uplink channel center frequencies
	DownlinkMHz   []float64 // RX1 downlink frequencies (US915 shifts bands)
	MaxEIRPdBm    float64
	DefaultSF     SpreadingFactor
	DefaultBWUp   Bandwidth
	DefaultBWDown Bandwidth
}

// US915 returns sub-band 2 of the US channel plan (channels 8–15 plus
// the 500 kHz channel 65), which is what Helium uses in the US.
func US915() Region {
	up := make([]float64, 8)
	for i := range up {
		up[i] = 903.9 + 0.2*float64(i)
	}
	down := make([]float64, 8)
	for i := range down {
		down[i] = 923.3 + 0.6*float64(i)
	}
	return Region{
		Name:          "US915",
		UplinkMHz:     up,
		DownlinkMHz:   down,
		MaxEIRPdBm:    30, // 4 W EIRP for end devices with dwell limits
		DefaultSF:     SF9,
		DefaultBWUp:   BW125,
		DefaultBWDown: BW500,
	}
}

// EU868 returns the three mandatory EU868 channels.
func EU868() Region {
	return Region{
		Name:          "EU868",
		UplinkMHz:     []float64{868.1, 868.3, 868.5},
		DownlinkMHz:   []float64{868.1, 868.3, 868.5},
		MaxEIRPdBm:    16,
		DefaultSF:     SF9,
		DefaultBWUp:   BW125,
		DefaultBWDown: BW125,
	}
}

// FSPLdB returns free-space path loss in dB for a distance in km and
// frequency in MHz.
func FSPLdB(distKm, freqMHz float64) float64 {
	if distKm <= 0 {
		return 0
	}
	return 20*math.Log10(distKm) + 20*math.Log10(freqMHz) + 32.44
}

// FSPLRangeM inverts the paper's simplified free-space growth formula
// (§8.2.1): given a link budget w−s in dB, the extra range in meters
// is d = 10^((w−s)/20). The paper applies this with w the witness RSSI
// and s the device sensitivity; at the median w = −108 dBm it yields
// ≈20 m.
func FSPLRangeM(witnessRSSIdBm, sensitivityDBm float64) float64 {
	margin := witnessRSSIdBm - sensitivityDBm
	if margin <= 0 {
		return 0
	}
	return math.Pow(10, margin/20)
}

// Environment selects a log-distance path-loss preset. Exponents and
// shadowing follow common LPWAN measurement literature: free space
// n=2.0, rural n≈2.7, suburban n≈3.0, urban n≈3.5 with heavier
// shadowing.
type Environment int

// Environments.
const (
	FreeSpace Environment = iota
	Rural
	Suburban
	Urban
	DenseUrban
)

func (e Environment) String() string {
	switch e {
	case FreeSpace:
		return "free-space"
	case Rural:
		return "rural"
	case Suburban:
		return "suburban"
	case Urban:
		return "urban"
	case DenseUrban:
		return "dense-urban"
	default:
		return fmt.Sprintf("environment_%d", int(e))
	}
}

// params returns (path-loss exponent, shadowing σ in dB, clutter loss
// C in dB). The clutter term captures building penetration and street
// canyon losses that a pure log-distance exponent misses; the
// combination is tuned so SF12 ranges land where LPWAN field studies
// put them: tens of km rural, ~5–10 km suburban, ~2 km urban.
func (e Environment) params() (n, sigma, clutter float64) {
	switch e {
	case FreeSpace:
		return 2.0, 0, 0
	case Rural:
		return 3.0, 4, 5
	case Suburban:
		return 3.2, 6, 15
	case Urban:
		return 3.5, 8, 25
	case DenseUrban:
		return 3.8, 10, 35
	default:
		return 3.2, 6, 15
	}
}

// PathLossModel computes deterministic median path loss plus, when a
// generator is supplied, log-normal shadowing. The model is
// log-distance anchored at 1 m free-space loss with an additive
// environment clutter term:
//
//	PL(d) = FSPL(1 m) + 10·n·log10(d/1 m) + C
type PathLossModel struct {
	Env     Environment
	FreqMHz float64
}

// NewPathLoss returns a model for env at the given frequency.
func NewPathLoss(env Environment, freqMHz float64) PathLossModel {
	return PathLossModel{Env: env, FreqMHz: freqMHz}
}

// MedianLossDB returns the median path loss at distKm.
func (m PathLossModel) MedianLossDB(distKm float64) float64 {
	if distKm <= 0 {
		return 0
	}
	n, _, clutter := m.Env.params()
	fspl1m := FSPLdB(0.001, m.FreqMHz)
	if distKm <= 0.001 {
		return FSPLdB(distKm, m.FreqMHz)
	}
	return fspl1m + 10*n*math.Log10(distKm/0.001) + clutter
}

// SampleLossDB returns the median loss plus a log-normal shadowing
// draw from rng. A nil rng returns the median.
func (m PathLossModel) SampleLossDB(distKm float64, rng *stats.RNG) float64 {
	loss := m.MedianLossDB(distKm)
	if rng != nil {
		_, sigma, _ := m.Env.params()
		loss += rng.Normal(0, sigma)
	}
	return loss
}

// Link describes a radio link budget between a transmitter and
// receiver.
type Link struct {
	TxPowerDBm  float64
	TxGainDBi   float64
	RxGainDBi   float64
	NoiseFigure float64 // extra loss at the receiver (cheap antennas, enclosure)
	Model       PathLossModel
}

// RSSI returns the received signal strength for the link at distKm,
// with shadowing when rng is non-nil.
func (l Link) RSSI(distKm float64, rng *stats.RNG) float64 {
	return l.TxPowerDBm + l.TxGainDBi + l.RxGainDBi - l.NoiseFigure -
		l.Model.SampleLossDB(distKm, rng)
}

// Delivered reports whether a frame at the given RSSI is decodable at
// sf/bw, applying a soft roll-off near sensitivity: links with ≥3 dB
// margin always decode, links more than 3 dB below sensitivity never
// do, and the window between degrades linearly. This mirrors the PER
// cliff seen in LoRa field measurements.
func Delivered(rssiDBm float64, sf SpreadingFactor, bw Bandwidth, rng *stats.RNG) bool {
	sens := Sensitivity(sf, bw)
	margin := rssiDBm - sens
	switch {
	case margin >= 3:
		return true
	case margin <= -3:
		return false
	default:
		p := (margin + 3) / 6
		if rng == nil {
			return p >= 0.5
		}
		return rng.Bool(p)
	}
}

// MaxRangeKm returns the distance at which the link's median RSSI
// falls to the sensitivity at sf/bw, found by bisection. It answers
// "how far can this environment carry LoRa", e.g. the Murata guidance
// of 15–20 km line-of-sight the paper quotes (§8.2.1).
func (l Link) MaxRangeKm(sf SpreadingFactor, bw Bandwidth) float64 {
	sens := Sensitivity(sf, bw)
	lo, hi := 0.001, 1000.0
	if l.RSSI(hi, nil) >= sens {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if l.RSSI(mid, nil) >= sens {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
