package radio

import "testing"

func tx(id, ch int, sf SpreadingFactor, rssi, start, end float64) Transmission {
	return Transmission{ID: id, Channel: ch, SF: sf, RSSIdBm: rssi, Start: start, End: end}
}

func survivorSet(txs []Transmission) map[int]bool {
	out := map[int]bool{}
	for _, id := range Survivors(txs) {
		out[id] = true
	}
	return out
}

func TestNoOverlapAllSurvive(t *testing.T) {
	s := survivorSet([]Transmission{
		tx(1, 0, SF9, -100, 0, 1),
		tx(2, 0, SF9, -100, 2, 3),
	})
	if !s[1] || !s[2] {
		t.Fatalf("non-overlapping frames lost: %v", s)
	}
}

func TestCaptureStrongWins(t *testing.T) {
	s := survivorSet([]Transmission{
		tx(1, 0, SF9, -90, 0, 1), // 10 dB stronger
		tx(2, 0, SF9, -100, 0, 1),
	})
	if !s[1] {
		t.Fatal("strong frame lost")
	}
	if s[2] {
		t.Fatal("weak frame survived capture")
	}
}

func TestMutualDestructionNearEqual(t *testing.T) {
	s := survivorSet([]Transmission{
		tx(1, 0, SF9, -100, 0, 1),
		tx(2, 0, SF9, -101, 0, 1), // within 6 dB: both die
	})
	if s[1] || s[2] {
		t.Fatalf("near-equal colliders should both die: %v", s)
	}
}

func TestDifferentChannelsOrthogonal(t *testing.T) {
	s := survivorSet([]Transmission{
		tx(1, 0, SF9, -100, 0, 1),
		tx(2, 1, SF9, -100, 0, 1),
	})
	if !s[1] || !s[2] {
		t.Fatal("different channels should not interfere")
	}
}

func TestDifferentSFsQuasiOrthogonal(t *testing.T) {
	s := survivorSet([]Transmission{
		tx(1, 0, SF7, -100, 0, 1),
		tx(2, 0, SF12, -100, 0, 1),
	})
	if !s[1] || !s[2] {
		t.Fatal("different SFs should not interfere")
	}
}

func TestPartialOverlapStillCollides(t *testing.T) {
	s := survivorSet([]Transmission{
		tx(1, 0, SF9, -100, 0, 1),
		tx(2, 0, SF9, -100, 0.9, 1.9),
	})
	if s[1] || s[2] {
		t.Fatal("partial overlap at equal power should kill both")
	}
}

func TestThreeWayCapture(t *testing.T) {
	// One dominant frame over two weak overlapping ones.
	s := survivorSet([]Transmission{
		tx(1, 0, SF9, -80, 0, 1),
		tx(2, 0, SF9, -100, 0, 1),
		tx(3, 0, SF9, -99, 0.5, 1.5),
	})
	if !s[1] || s[2] || s[3] {
		t.Fatalf("three-way capture wrong: %v", s)
	}
}
