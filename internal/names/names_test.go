package names

import (
	"strings"
	"testing"
)

func TestDeterministic(t *testing.T) {
	if FromAddress("abc") != FromAddress("abc") {
		t.Fatal("same address produced different names")
	}
}

func TestThreeWords(t *testing.T) {
	for _, addr := range []string{"a", "hotspot-1", "sim1XYZ", ""} {
		name := FromAddress(addr)
		if parts := strings.Split(name, " "); len(parts) != 3 {
			t.Fatalf("name %q does not have three words", name)
		}
	}
}

func TestDistribution(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		seen[FromAddress(strings.Repeat("x", i%50)+string(rune('a'+i%26))+string(rune(i)))] = true
	}
	if len(seen) < 1500 {
		t.Fatalf("only %d distinct names in 2000 addresses", len(seen))
	}
}

func TestSlug(t *testing.T) {
	if Slug("Joyful Pink Skunk") != "joyful-pink-skunk" {
		t.Fatalf("slug = %q", Slug("Joyful Pink Skunk"))
	}
}

func TestCombinations(t *testing.T) {
	if Combinations() < 100000 {
		t.Fatalf("name space too small: %d", Combinations())
	}
}
