// Package names generates the three-word "Adjective Color Animal"
// hotspot names that Helium assigns deterministically from a hotspot's
// public key (the paper's pseudonymized examples: "Joyful Pink Skunk",
// "Striped Yellow Bird"). Names are derived by hashing the hotspot
// address, so a given hotspot always renders the same name.
package names

import (
	"crypto/sha256"
	"encoding/binary"
	"strings"
)

var adjectives = []string{
	"Joyful", "Striped", "Brave", "Quick", "Silent", "Mellow", "Rough",
	"Gentle", "Witty", "Fluffy", "Ancient", "Bright", "Curved", "Dapper",
	"Eager", "Faint", "Glorious", "Hidden", "Icy", "Jolly", "Keen",
	"Lively", "Magic", "Noisy", "Odd", "Proud", "Quiet", "Rapid",
	"Shiny", "Tiny", "Upbeat", "Vast", "Wild", "Young", "Zesty",
	"Atomic", "Boxy", "Clever", "Dizzy", "Electric", "Fancy", "Grand",
	"Humble", "Iron", "Jumpy", "Kind", "Long", "Micro", "Narrow",
	"Oblong", "Polished", "Quaint", "Rustic", "Steep", "Tart", "Urban",
	"Velvet", "Warm", "Exotic", "Zany", "Cheerful", "Docile", "Restless",
	"Sunny",
}

var colors = []string{
	"Pink", "Yellow", "Crimson", "Azure", "Emerald", "Golden", "Ivory",
	"Jade", "Lavender", "Maroon", "Navy", "Olive", "Pearl", "Ruby",
	"Sapphire", "Teal", "Umber", "Violet", "White", "Amber", "Bronze",
	"Copper", "Denim", "Ebony", "Fuchsia", "Gray", "Hazel", "Indigo",
	"Khaki", "Lime", "Magenta", "Orange", "Plum", "Rose", "Scarlet",
	"Tangerine", "Aquamarine", "Blue", "Coral", "Daffodil", "Green",
	"Honey", "Lemon", "Mauve", "Obsidian", "Peach", "Red", "Silver",
	"Taupe", "Vanilla", "Wheat", "Cherry", "Mint", "Mocha", "Onyx",
	"Paisley", "Quartz", "Rainbow", "Sand", "Tawny", "Berry", "Carbon",
	"Flaxen", "Glossy",
}

var animals = []string{
	"Skunk", "Bird", "Otter", "Badger", "Cobra", "Dolphin", "Eagle",
	"Falcon", "Gecko", "Hedgehog", "Iguana", "Jaguar", "Koala", "Lemur",
	"Mole", "Narwhal", "Ocelot", "Panda", "Quail", "Raccoon", "Seal",
	"Tapir", "Urchin", "Vulture", "Walrus", "Yak", "Zebra", "Antelope",
	"Beaver", "Chipmunk", "Dragonfly", "Elephant", "Finch", "Giraffe",
	"Hamster", "Impala", "Jellyfish", "Kangaroo", "Llama", "Mantis",
	"Newt", "Octopus", "Pelican", "Rabbit", "Sparrow", "Toad",
	"Unicorn", "Viper", "Wombat", "Swan", "Bear", "Crow", "Deer",
	"Ermine", "Fox", "Goose", "Heron", "Ibis", "Jay", "Kiwi", "Lynx",
	"Moose", "Owl", "Puma",
}

// FromAddress derives the deterministic three-word name for a hotspot
// address.
func FromAddress(address string) string {
	sum := sha256.Sum256([]byte(address))
	a := binary.BigEndian.Uint32(sum[0:4])
	c := binary.BigEndian.Uint32(sum[4:8])
	n := binary.BigEndian.Uint32(sum[8:12])
	return adjectives[a%uint32(len(adjectives))] + " " +
		colors[c%uint32(len(colors))] + " " +
		animals[n%uint32(len(animals))]
}

// Slug returns the dash-joined lower-case form used in URLs
// ("joyful-pink-skunk").
func Slug(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}

// Combinations returns the size of the name space.
func Combinations() int {
	return len(adjectives) * len(colors) * len(animals)
}
