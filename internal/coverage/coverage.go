// Package coverage implements §8.2.1's incentive-derived coverage
// models: the explorer's dots-on-a-map view, the HIP15 300 m radius
// model (Fig 12b), witness convex hulls (Fig 12c), hulls with the
// 25 km witness-distance cutoff (Fig 12d), and the final radial +
// RSSI-grown model (Fig 12e) — each evaluated as a percentage of the
// contiguous-US landmass — together with the valid-witness distance
// and RSSI distributions of Figures 13 and 14.
package coverage

import (
	"peoplesnet/internal/chain"
	"peoplesnet/internal/geo"
	"peoplesnet/internal/radio"
	"peoplesnet/internal/stats"
)

// Witness is one witness report with decoded geometry.
type Witness struct {
	Location geo.Point
	RSSIdBm  float64
	Valid    bool
}

// Challenge is one PoC event with decoded geometry: the raw material
// of every witness-based coverage model.
type Challenge struct {
	Challengee geo.Point
	Witnesses  []Witness
}

// FromChain extracts challenges from poc_receipt transactions,
// decoding H3 cells back to coordinates exactly as the paper does
// (§4.1).
func FromChain(c *chain.Chain) []Challenge {
	var out []Challenge
	c.ScanType(chain.TxnPoCReceipt, func(_ int64, t chain.Txn) bool {
		r := t.(*chain.PoCReceipt)
		if !r.ChallengeeLocation.Valid() {
			return true
		}
		ch := Challenge{Challengee: r.ChallengeeLocation.Center()}
		for _, w := range r.Witnesses {
			if !w.Location.Valid() {
				continue
			}
			ch.Witnesses = append(ch.Witnesses, Witness{
				Location: w.Location.Center(),
				RSSIdBm:  w.RSSIdBm,
				Valid:    w.Valid,
			})
		}
		out = append(out, ch)
		return true
	})
	return out
}

// Model identifies one of the paper's coverage models.
type Model int

// The Fig 12 model family.
const (
	ModelRadius300m Model = iota // Fig 12b
	ModelConvexHull              // Fig 12c
	ModelHull25km                // Fig 12d
	ModelRadialRSSI              // Fig 12e
)

func (m Model) String() string {
	switch m {
	case ModelRadius300m:
		return "300m-radius"
	case ModelConvexHull:
		return "convex-hull"
	case ModelHull25km:
		return "hull-25km"
	case ModelRadialRSSI:
		return "radial+rssi"
	default:
		return "unknown-model"
	}
}

// WitnessCutoffKm is the revised hull model's distance prune (§8.2.1:
// "we choose a generous 25 km cutoff").
const WitnessCutoffKm = 25

// Estimator evaluates coverage models against a landmass.
type Estimator struct {
	Landmass geo.Polygon
	// CellKm is the raster resolution; 15–25 km is plenty for
	// CONUS-scale percentages.
	CellKm float64
	// SensitivityDBm feeds the RSSI growth term; the paper uses the
	// ST hardware's −134 dBm.
	SensitivityDBm float64
}

// NewConusEstimator returns the paper's configuration.
func NewConusEstimator() Estimator {
	return Estimator{
		Landmass:       geo.ContiguousUS(),
		CellKm:         20,
		SensitivityDBm: radio.DeviceSensitivityDBm,
	}
}

// Radius300m builds the HIP15 disc model from hotspot locations
// (Fig 12b).
func (e Estimator) Radius300m(hotspots []geo.Point) geo.CoverageResult {
	cs := &geo.CoverageSet{}
	for _, p := range hotspots {
		if p.IsZero() || !p.Valid() {
			continue
		}
		cs.AddCircle(p, 0.3)
	}
	return e.evaluate(cs)
}

// hullFor returns the hull polygon for one challenge under a witness
// filter, or an empty polygon if fewer than 3 usable points.
func hullFor(ch Challenge, maxDistKm float64) ([]geo.Point, geo.Polygon) {
	pts := []geo.Point{ch.Challengee}
	for _, w := range ch.Witnesses {
		if !w.Valid {
			continue
		}
		if maxDistKm > 0 && geo.HaversineKm(ch.Challengee, w.Location) > maxDistKm {
			continue
		}
		pts = append(pts, w.Location)
	}
	return pts, geo.ConvexHull(pts)
}

// ConvexHulls builds the witness-hull model (Fig 12c), or the 25 km
// pruned variant when cutoffKm > 0 (Fig 12d).
func (e Estimator) ConvexHulls(challenges []Challenge, cutoffKm float64) geo.CoverageResult {
	cs := &geo.CoverageSet{}
	for _, ch := range challenges {
		_, hull := hullFor(ch, cutoffKm)
		cs.AddPolygon(hull)
	}
	return e.evaluate(cs)
}

// RadialRSSI builds the final model (Fig 12e): pruned hulls, plus a
// disc at every hull-vertex witness with radius equal to its distance
// to the challengee, grown by the free-space RSSI term
// d = 10^((w−s)/20) meters.
func (e Estimator) RadialRSSI(challenges []Challenge) geo.CoverageResult {
	cs := &geo.CoverageSet{}
	for _, ch := range challenges {
		pts, hull := hullFor(ch, WitnessCutoffKm)
		cs.AddPolygon(hull)
		// Vertex witnesses: each hull vertex that is a witness (not
		// the challengee) radiates its challenge distance.
		onHull := make(map[geo.Point]bool, len(hull.Vertices))
		for _, v := range hull.Vertices {
			onHull[v] = true
		}
		for _, p := range pts[1:] { // skip challengee
			if len(hull.Vertices) >= 3 && !onHull[p] {
				continue // interior witnesses covered by the hull
			}
			radiusKm := geo.HaversineKm(p, ch.Challengee)
			// Find the witness's RSSI for the growth term.
			growM := 0.0
			for _, w := range ch.Witnesses {
				if w.Location == p && w.Valid {
					growM = radio.FSPLRangeM(w.RSSIdBm, e.SensitivityDBm)
					break
				}
			}
			total := radiusKm + growM/1000
			if total > 0 {
				cs.AddCircle(p, total)
			}
		}
	}
	return e.evaluate(cs)
}

func (e Estimator) evaluate(cs *geo.CoverageSet) geo.CoverageResult {
	return geo.Raster{Landmass: e.Landmass, CellKm: e.CellKm}.Evaluate(cs)
}

// WitnessDistanceCDF builds Fig 13: the distribution of distances
// between challengees and their purportedly valid witnesses.
func WitnessDistanceCDF(challenges []Challenge) *stats.CDF {
	cdf := &stats.CDF{}
	for _, ch := range challenges {
		for _, w := range ch.Witnesses {
			if w.Valid {
				cdf.Add(geo.HaversineKm(ch.Challengee, w.Location))
			}
		}
	}
	return cdf
}

// WitnessRSSICDF builds Fig 14: the distribution of RSSIs reported by
// valid witnesses.
func WitnessRSSICDF(challenges []Challenge) *stats.CDF {
	cdf := &stats.CDF{}
	for _, ch := range challenges {
		for _, w := range ch.Witnesses {
			if w.Valid {
				cdf.Add(w.RSSIdBm)
			}
		}
	}
	return cdf
}

// Summary bundles the whole Fig 12 family for reporting.
type Summary struct {
	Hotspots      int
	Challenges    int
	Radius300m    geo.CoverageResult
	ConvexHull    geo.CoverageResult
	Hull25km      geo.CoverageResult
	RadialRSSI    geo.CoverageResult
	WitnessDistKm *stats.CDF
	WitnessRSSI   *stats.CDF
}

// HullPolygons returns the per-challenge hull polygons (with the
// cutoff applied), for map rendering — the explorer serves them as
// GeoJSON.
func HullPolygons(challenges []Challenge, cutoffKm float64) []geo.Polygon {
	var out []geo.Polygon
	for _, ch := range challenges {
		if _, hull := hullFor(ch, cutoffKm); len(hull.Vertices) >= 3 {
			out = append(out, hull)
		}
	}
	return out
}

// Evaluate runs every model.
func (e Estimator) Evaluate(hotspots []geo.Point, challenges []Challenge) Summary {
	return Summary{
		Hotspots:      len(hotspots),
		Challenges:    len(challenges),
		Radius300m:    e.Radius300m(hotspots),
		ConvexHull:    e.ConvexHulls(challenges, 0),
		Hull25km:      e.ConvexHulls(challenges, WitnessCutoffKm),
		RadialRSSI:    e.RadialRSSI(challenges),
		WitnessDistKm: WitnessDistanceCDF(challenges),
		WitnessRSSI:   WitnessRSSICDF(challenges),
	}
}
